// Tests for the real-solver balancing driver (run_real_balancing) and
// assertion-contract death tests for key invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "balance/real_driver.hpp"
#include "net/serializer.hpp"
#include "nonlocal/grid2d.hpp"
#include "nonlocal/serial_solver.hpp"
#include "sim/capacity_trace.hpp"

namespace bal = nlh::balance;
namespace dist = nlh::dist;

namespace {

dist::dist_config cfg33() {
  dist::dist_config c;
  c.sd_rows = c.sd_cols = 3;
  c.sd_size = 6;
  c.epsilon_factor = 2;
  return c;
}

}  // namespace

TEST(RealDriver, RunsAndKeepsSolutionCorrect) {
  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(cfg33(),
                           dist::ownership_map(t, 2, {0, 0, 0, 0, 0, 0, 0, 1, 1}));
  solver.set_initial_condition();

  bal::real_balance_config rcfg;
  rcfg.steps_per_iteration = 2;
  rcfg.iterations = 2;
  const auto log = bal::run_real_balancing(solver, rcfg);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(solver.current_step(), 4);

  // Bookkeeping invariants per iteration.
  for (const auto& e : log) {
    int before = 0, after = 0;
    for (int c : e.sd_counts_before) before += c;
    for (int c : e.sd_counts_after) after += c;
    EXPECT_EQ(before, 9);
    EXPECT_EQ(after, 9);
    ASSERT_EQ(e.busy_fraction.size(), 2u);
    for (double f : e.busy_fraction) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-6);
    }
    if (e.sds_moved > 0) EXPECT_GT(e.migration_bytes, 0u);
  }

  // Solution still matches the serial reference after all migrations.
  nlh::nonlocal::solver_config scfg;
  scfg.n = 18;
  scfg.epsilon_factor = 2;
  nlh::nonlocal::serial_solver ref(scfg);
  ref.set_initial_condition();
  for (int k = 0; k < 4; ++k) ref.step(k);
  const auto mine = solver.gather();
  const auto& g = solver.grid();
  double maxdiff = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      maxdiff = std::max(maxdiff,
                         std::abs(mine[g.flat(i, j)] - ref.field()[g.flat(i, j)]));
  EXPECT_LT(maxdiff, 1e-11);
}

TEST(RealDriver, OwnershipStaysInSyncWithSolver) {
  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(cfg33(),
                           dist::ownership_map(t, 3, {0, 0, 0, 0, 0, 1, 2, 2, 2}));
  solver.set_initial_condition();
  bal::real_balance_config rcfg;
  rcfg.steps_per_iteration = 1;
  rcfg.iterations = 3;
  const auto log = bal::run_real_balancing(solver, rcfg);
  // The last iteration's after-counts are the solver's current counts.
  EXPECT_EQ(log.back().sd_counts_after, solver.owners().sd_counts());
}

// ------------------------------------------------- assertion death tests ----

using DeathTest = ::testing::Test;

TEST(DeathTest, ArchiveUnderrunAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nlh::net::archive_writer w;
  w.write(1);
  const auto buf = w.take();
  nlh::net::archive_reader r(buf);
  r.read<int>();
  EXPECT_DEATH(r.read<double>(), "underrun");
}

TEST(DeathTest, GridOutOfBoundsAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nlh::nonlocal::grid2d g(4, 0.25);
  EXPECT_DEATH(g.flat(100, 0), "NLH_ASSERT");
}

TEST(DeathTest, TilingRejectsSdSmallerThanHorizon) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(dist::tiling(2, 2, 2, 4), "horizon");
}

TEST(DeathTest, CapacityTraceRejectsUnorderedSegments) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nlh::sim::capacity_trace t;
  t.add_segment(0.0, 1.0);
  EXPECT_DEATH(t.add_segment(0.0, 2.0), "out of order");
}

TEST(DeathTest, OwnershipRejectsBadNodeId) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const dist::tiling t(2, 2, 8, 2);
  EXPECT_DEATH(dist::ownership_map(t, 2, {0, 1, 2, 0}), "out of range");
}

// Tests for the vectorized kernel subsystem (src/nonlocal/kernel/): stencil
// canonicalization, run compilation invariants, bitwise/ULP agreement of the
// scalar / row_run / simd / avx512 backends across horizon factors,
// non-square rects and rects touching the ghost border, and the blocked
// execution plan (cache-model clamping, blocked == unblocked bitwise).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/serial_solver.hpp"
#include "nonlocal/steady_state.hpp"
#include "support/rng.hpp"

namespace nl = nlh::nonlocal;

namespace {

/// Deterministic pseudo-random field over the whole padded box, collar
/// included, so boundary-touching rects read non-trivial ghost values.
std::vector<double> random_field(const nl::grid2d& g, unsigned seed) {
  auto u = g.make_field();
  nlh::support::rng r(seed);
  for (auto& v : u) v = r.uniform(-1.0, 1.0);
  return u;
}

/// Apply via the raw plan entry point with an explicit backend.
std::vector<double> apply_backend(const nl::grid2d& g, const nl::stencil_plan& plan,
                                  double c, const std::vector<double>& u,
                                  const nl::dp_rect& rect, nl::kernel_backend b) {
  auto out = g.make_field();
  nl::apply_nonlocal_operator_raw(u.data(), out.data(), g.stride(), g.ghost(), plan, c,
                                  rect, b);
  return out;
}

/// Absolute tolerance for cross-backend comparison: the backends sum the
/// same entries in the same order but with different association of the
/// center term (and FMA on the simd path), so agreement is a few ULPs of
/// the natural magnitude scale c * weight_sum * max|u|, not bitwise.
double agreement_tol(const nl::stencil_plan& plan, double c, double umax) {
  return 1e-12 * c * plan.weight_sum() * umax;
}

void expect_rect_near(const nl::grid2d& g, const std::vector<double>& a,
                      const std::vector<double>& b, const nl::dp_rect& rect,
                      double tol) {
  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j)
      ASSERT_NEAR(a[g.flat(i, j)], b[g.flat(i, j)], tol)
          << "at (" << i << ", " << j << ")";
}

/// Every selectable backend (unavailable ones dispatch through their
/// documented fallback chain, so each is always safe to request).
constexpr nl::kernel_backend kAllBackends[] = {
    nl::kernel_backend::scalar, nl::kernel_backend::row_run,
    nl::kernel_backend::simd, nl::kernel_backend::avx512};

}  // namespace

// ------------------------------------------------------------- canonical ----

TEST(Stencil, EntriesAreCanonicalRowMajor) {
  for (const int f : {2, 3, 8}) {
    nl::grid2d g(32, static_cast<double>(f) / 32);
    nl::stencil st(g, nl::influence{});
    const auto& e = st.entries();
    ASSERT_FALSE(e.empty());
    EXPECT_TRUE(std::is_sorted(e.begin(), e.end(), nl::stencil_entry_less));
    // No duplicates and no center entry.
    for (std::size_t k = 1; k < e.size(); ++k)
      EXPECT_TRUE(e[k - 1].di != e[k].di || e[k - 1].dj != e[k].dj);
    for (const auto& entry : e) EXPECT_TRUE(entry.di != 0 || entry.dj != 0);
  }
}

// ------------------------------------------------------------ plan layout ----

TEST(StencilPlan, RunsReconstructEntriesExactly) {
  for (const int f : {2, 4, 8, 16}) {
    nl::grid2d g(2 * f, static_cast<double>(f) / (2 * f));
    nl::stencil st(g, nl::influence(nl::influence_kind::gaussian));
    nl::stencil_plan plan(st);

    ASSERT_EQ(plan.size(), st.size());
    ASSERT_EQ(plan.weights().size(), st.size());

    // Expand runs back into (di, dj, w) and compare against the stencil.
    std::vector<nl::stencil_entry> rebuilt;
    for (const auto& r : plan.runs()) {
      ASSERT_GE(r.length, 1);
      for (int e = 0; e < r.length; ++e)
        rebuilt.push_back(nl::stencil_entry{
            r.di, r.dj_begin + e,
            plan.weights()[static_cast<std::size_t>(r.weight_index + e)]});
    }
    ASSERT_EQ(rebuilt.size(), st.entries().size());
    for (std::size_t k = 0; k < rebuilt.size(); ++k) {
      EXPECT_EQ(rebuilt[k].di, st.entries()[k].di);
      EXPECT_EQ(rebuilt[k].dj, st.entries()[k].dj);
      EXPECT_EQ(rebuilt[k].w, st.entries()[k].w);  // exact copy, not recompute
    }
  }
}

TEST(StencilPlan, RunsAreMaximal) {
  // Adjacent runs must not be mergeable: a new run starts only on a di
  // change or a dj gap (the center row splits around the excluded (0,0)).
  nl::grid2d g(32, 4.0 / 32);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto& runs = plan.runs();
  for (std::size_t k = 1; k < runs.size(); ++k) {
    const bool same_di = runs[k - 1].di == runs[k].di;
    if (same_di)
      EXPECT_GT(runs[k].dj_begin, runs[k - 1].dj_begin + runs[k - 1].length);
    else
      EXPECT_LT(runs[k - 1].di, runs[k].di);
  }
  // One run per di row except di == 0, which has exactly two.
  int center_runs = 0;
  for (const auto& r : runs)
    if (r.di == 0) ++center_runs;
  EXPECT_EQ(center_runs, 2);
}

TEST(StencilPlan, PreservesWeightSumReachAndStableDt) {
  nl::grid2d g(24, 3.0 / 24);
  nl::stencil st(g, nl::influence(nl::influence_kind::linear));
  nl::stencil_plan plan(st);
  EXPECT_EQ(plan.weight_sum(), st.weight_sum());
  EXPECT_EQ(plan.reach(), st.reach());
  const double c = 7.5;
  EXPECT_EQ(nl::stable_dt(c, plan), nl::stable_dt(c, st));
}

// ------------------------------------------------------- backend agreement ----

TEST(KernelBackends, ScalarBackendIsBitwiseTheLegacyKernel) {
  for (const int f : {2, 4, 8, 16}) {
    const int n = 32;
    nl::grid2d g(n, static_cast<double>(f) / n);
    nl::stencil st(g, nl::influence{});
    nl::stencil_plan plan(st);
    const auto u = random_field(g, 1234 + static_cast<unsigned>(f));
    const nl::dp_rect all{0, n, 0, n};

    auto legacy = g.make_field();
    nl::apply_nonlocal_operator(g, st, 2.5, u, legacy, all);
    const auto scalar = apply_backend(g, plan, 2.5, u, all, nl::kernel_backend::scalar);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(legacy[g.flat(i, j)], scalar[g.flat(i, j)]);
  }
}

TEST(KernelBackends, AgreeAcrossEpsilonFactors) {
  for (const int f : {2, 4, 8, 16}) {
    const int n = 48;
    nl::grid2d g(n, static_cast<double>(f) / n);
    nl::stencil st(g, nl::influence{});
    nl::stencil_plan plan(st);
    const auto u = random_field(g, 42 + static_cast<unsigned>(f));
    const double c = 1.75;
    const nl::dp_rect all{0, n, 0, n};
    const double tol = agreement_tol(plan, c, 1.0);

    const auto scalar = apply_backend(g, plan, c, u, all, nl::kernel_backend::scalar);
    for (const auto b : {nl::kernel_backend::row_run, nl::kernel_backend::simd,
                         nl::kernel_backend::avx512}) {
      const auto out = apply_backend(g, plan, c, u, all, b);
      expect_rect_near(g, scalar, out, all, tol);
    }
  }
}

TEST(KernelBackends, AgreeOnNonSquareRects) {
  const int n = 40;
  nl::grid2d g(n, 4.0 / n);
  nl::stencil st(g, nl::influence(nl::influence_kind::gaussian));
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 7);
  const double c = 3.0;
  const double tol = agreement_tol(plan, c, 1.0);

  // Wide, tall, thin strips and a single DP — including odd widths that
  // exercise the SIMD remainder lanes.
  const nl::dp_rect rects[] = {
      {3, 7, 0, n}, {0, n, 5, 9}, {11, 12, 2, 37}, {4, 31, 17, 18}, {20, 21, 20, 21},
  };
  for (const auto& rect : rects) {
    const auto scalar = apply_backend(g, plan, c, u, rect, nl::kernel_backend::scalar);
    for (const auto b : {nl::kernel_backend::row_run, nl::kernel_backend::simd,
                         nl::kernel_backend::avx512}) {
      const auto out = apply_backend(g, plan, c, u, rect, b);
      expect_rect_near(g, scalar, out, rect, tol);
    }
  }
}

TEST(KernelBackends, AgreeOnRectsTouchingGhostBorder) {
  const int n = 36;
  nl::grid2d g(n, 6.0 / n);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 99);  // collar holds non-zero ghost values
  const double c = 0.8;
  const double tol = agreement_tol(plan, c, 1.0);

  // Every edge and corner of the interior, where the reads reach maximally
  // into the ghost collar.
  const nl::dp_rect rects[] = {
      {0, 2, 0, n},          // top edge
      {n - 2, n, 0, n},      // bottom edge
      {0, n, 0, 2},          // left edge
      {0, n, n - 2, n},      // right edge
      {0, 3, 0, 3},          // top-left corner
      {n - 3, n, n - 3, n},  // bottom-right corner
  };
  for (const auto& rect : rects) {
    const auto scalar = apply_backend(g, plan, c, u, rect, nl::kernel_backend::scalar);
    for (const auto b : {nl::kernel_backend::row_run, nl::kernel_backend::simd,
                         nl::kernel_backend::avx512}) {
      const auto out = apply_backend(g, plan, c, u, rect, b);
      expect_rect_near(g, scalar, out, rect, tol);
    }
  }
}

TEST(KernelBackends, RectPartitionInvariantBitwise) {
  // The bitwise serial/distributed guarantee (DESIGN.md) needs every
  // backend to produce identical bits for a DP whether it was computed as
  // part of a full-width row or of a narrow SD rectangle — i.e. regardless
  // of where the DP falls relative to vector-body/tail boundaries.
  const int n = 40;
  nl::grid2d g(n, 4.0 / n);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 21);
  const double c = 1.1;

  for (const auto b : kAllBackends) {
    const auto full =
        apply_backend(g, plan, c, u, {0, n, 0, n}, nl::kernel_backend(b));
    // Vertical strips of width 5 force different body/tail splits, plus a
    // horizontal split at an odd row.
    auto split = g.make_field();
    for (int cb = 0; cb < n; cb += 5) {
      nl::apply_nonlocal_operator_raw(u.data(), split.data(), g.stride(), g.ghost(),
                                      plan, c, {0, 13, cb, std::min(cb + 5, n)}, b);
      nl::apply_nonlocal_operator_raw(u.data(), split.data(), g.stride(), g.ghost(),
                                      plan, c, {13, n, cb, std::min(cb + 5, n)}, b);
    }
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(full[g.flat(i, j)], split[g.flat(i, j)])
            << nl::kernel_backend_name(b) << " at (" << i << ", " << j << ")";
  }
}

TEST(KernelBackends, AllZeroOnConstantField) {
  // sum w*(u_j - u_i) and sum w*u_j - W*u_i both vanish analytically on a
  // constant field; numerically the hoisted form leaves only rounding noise.
  const int n = 24;
  nl::grid2d g(n, 4.0 / n);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  auto u = g.make_field();
  for (auto& v : u) v = 3.7;
  const nl::dp_rect all{0, n, 0, n};
  for (const auto b : kAllBackends) {
    const auto out = apply_backend(g, plan, 5.0, u, all, b);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) ASSERT_NEAR(out[g.flat(i, j)], 0.0, 1e-12);
  }
}

// ---------------------------------------------------------------- dispatch ----

TEST(KernelDispatch, DefaultBackendEntryPointMatchesExplicit) {
  const int n = 20;
  nl::grid2d g(n, 2.0 / n);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 5);
  const nl::dp_rect all{0, n, 0, n};

  const auto saved = nl::kernel_default_backend();
  for (const auto b : kAllBackends) {
    nl::set_kernel_default_backend(b);
    EXPECT_EQ(nl::kernel_default_backend(), b);
    auto via_default = g.make_field();
    nl::apply_nonlocal_operator_raw(u.data(), via_default.data(), g.stride(),
                                    g.ghost(), plan, 1.3, all);
    const auto explicit_out = apply_backend(g, plan, 1.3, u, all, b);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(via_default[g.flat(i, j)], explicit_out[g.flat(i, j)]);
  }
  nl::set_kernel_default_backend(saved);
}

TEST(KernelDispatch, BackendNamesRoundTrip) {
  for (const auto b : kAllBackends) {
    const auto parsed = nl::parse_kernel_backend(nl::kernel_backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(nl::parse_kernel_backend("avx2048").has_value());
  EXPECT_FALSE(nl::parse_kernel_backend("").has_value());
}

TEST(KernelDispatch, SimdAvailabilityIsConsistent) {
  // Whatever the build/CPU, dispatch must execute: simd either runs
  // intrinsics or falls back to row_run, never aborts.
  const int level = nl::kernel_simd_compiled_level();
  EXPECT_GE(level, 0);
  EXPECT_LE(level, 2);
  if (nl::kernel_simd_available()) EXPECT_GT(level, 0);

  nl::grid2d g(8, 2.0 / 8);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 11);
  const auto out =
      apply_backend(g, plan, 1.0, u, {0, 8, 0, 8}, nl::kernel_backend::simd);
  EXPECT_EQ(out.size(), g.total());
}

TEST(KernelDispatch, Avx512AvailabilityIsConsistent) {
  // Same contract as simd: requesting avx512 either runs AVX-512F
  // intrinsics or walks the simd -> row_run fallback chain, never aborts.
  const int level = nl::kernel_avx512_compiled_level();
  EXPECT_GE(level, 0);
  EXPECT_LE(level, 1);
  if (nl::kernel_avx512_available()) EXPECT_EQ(level, 1);

  nl::grid2d g(8, 2.0 / 8);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const auto u = random_field(g, 13);
  const auto out =
      apply_backend(g, plan, 1.0, u, {0, 8, 0, 8}, nl::kernel_backend::avx512);
  EXPECT_EQ(out.size(), g.total());
}

// ----------------------------------------------------------- blocked plan ----

TEST(KernelBlockPlan, ProbedGeometryIsSane) {
  const auto cg = nl::probe_cache_geometry();
  EXPECT_GE(cg.l1d_bytes, 4ll * 1024);
  EXPECT_LE(cg.l1d_bytes, 1ll * 1024 * 1024 * 1024);
  EXPECT_GE(cg.l2_bytes, 4ll * 1024);
  EXPECT_LE(cg.l2_bytes, 1ll * 1024 * 1024 * 1024);
}

TEST(KernelBlockPlan, GeometryClampsDegenerateInputs) {
  // The derivation must be total: any (reach, tuning, cache) combination —
  // zero caches, absurd reaches, out-of-range overrides — yields dims
  // inside the documented bounds.
  const nl::cache_geometry cases[] = {
      {0, 0}, {-5, -5}, {1, 1}, {48 * 1024, 2 * 1024 * 1024},
      {1ll << 40, 1ll << 41}};
  for (const auto& cache : cases) {
    for (const int reach : {-3, 0, 1, 8, 64, 100000}) {
      const auto g = nl::compute_block_geometry(reach, nl::kernel_tuning{}, cache);
      // Derived tiles never starve the widest vector body.
      EXPECT_GE(g.col_tile, nl::kernel_derived_min_col_tile);
      EXPECT_LE(g.col_tile, nl::kernel_max_col_tile);
      EXPECT_EQ(g.col_tile % nl::kernel_min_col_tile, 0);
      EXPECT_GE(g.row_block, nl::kernel_min_row_block);
      EXPECT_LE(g.row_block, nl::kernel_max_row_block);
    }
  }

  // Explicit overrides are honored but clamped, never trusted blindly.
  nl::kernel_tuning t;
  t.row_block = 1;
  t.col_tile = 1;
  auto g = nl::compute_block_geometry(8, t, {48 * 1024, 2 * 1024 * 1024});
  EXPECT_EQ(g.row_block, nl::kernel_min_row_block);
  EXPECT_EQ(g.col_tile, nl::kernel_min_col_tile);
  t.row_block = 1 << 30;
  t.col_tile = 1 << 30;
  g = nl::compute_block_geometry(8, t, {48 * 1024, 2 * 1024 * 1024});
  EXPECT_EQ(g.row_block, nl::kernel_max_row_block);
  EXPECT_EQ(g.col_tile, nl::kernel_max_col_tile);
  t.row_block = 24;
  t.col_tile = 64;
  g = nl::compute_block_geometry(8, t, {48 * 1024, 2 * 1024 * 1024});
  EXPECT_EQ(g.row_block, 24);
  EXPECT_EQ(g.col_tile, 64);
  // Off-quantum explicit tiles are aligned down to the tile quantum.
  t.col_tile = 48;
  g = nl::compute_block_geometry(8, t, {48 * 1024, 2 * 1024 * 1024});
  EXPECT_EQ(g.col_tile, nl::kernel_min_col_tile);

  // A tighter cache budget can only narrow the derived tile.
  const auto wide =
      nl::compute_block_geometry(8, nl::kernel_tuning{}, {256 * 1024, 8 * 1024 * 1024});
  const auto narrow =
      nl::compute_block_geometry(8, nl::kernel_tuning{}, {8 * 1024, 64 * 1024});
  EXPECT_LE(narrow.col_tile, wide.col_tile);
}

TEST(KernelBlockPlan, CountBlocksMatchesAlignedIteration) {
  nl::block_geometry g;
  g.row_block = 4;
  g.col_tile = 16;
  EXPECT_EQ(nl::count_blocks(g, 0, 8, 0, 32), 4);   // 2 row blocks x 2 tiles
  EXPECT_EQ(nl::count_blocks(g, 0, 4, 0, 16), 1);
  EXPECT_EQ(nl::count_blocks(g, 0, 0, 0, 16), 0);   // empty
  // Off-boundary origins get a leading partial block per dimension.
  EXPECT_EQ(nl::count_blocks(g, 2, 6, 8, 24), 4);
  EXPECT_EQ(nl::count_blocks(g, 3, 4, 15, 16), 1);
  // Aligned spans of a decomposition sum to the full-rect count.
  EXPECT_EQ(nl::count_blocks(g, 0, 5, 0, 32) + nl::count_blocks(g, 5, 8, 0, 32),
            nl::count_blocks(g, 0, 8, 0, 32) + 2);  // row split off-boundary
}

TEST(KernelBlocking, BlockedMatchesUnblockedBitwiseOnAwkwardRects) {
  // Blocking only reorders which DP is computed when; each DP's
  // accumulation chain is unchanged, so a plan with aggressive blocking
  // must reproduce the single-block (pre-blocking) execution bit for bit —
  // for every backend, on every awkward rect shape: single rows, widths
  // below/off the tile size, and a reach exceeding the rect height.
  const int n = 56;
  nl::grid2d g(n, 8.0 / n);  // reach 8: wider than several rects below
  nl::stencil st(g, nl::influence{});

  nl::stencil_plan blocked(st);
  nl::kernel_tuning tight;
  tight.row_block = nl::kernel_min_row_block;  // 4-row blocks
  tight.col_tile = nl::kernel_min_col_tile;    // 32-col tiles
  blocked.set_tuning(tight);

  nl::stencil_plan unblocked(st);
  unblocked.set_tuning(nl::kernel_tuning_unblocked());

  const auto u = random_field(g, 77);
  const double c = 2.25;
  const nl::dp_rect rects[] = {
      {0, 1, 0, n},        // 1-row rect, full width
      {5, 6, 3, 11},       // 1-row rect, width < tile
      {10, 16, 20, 33},    // width % tile != 0, reach > height
      {0, n, 0, n},        // full interior, n % tile != 0
      {2, 7, 0, 32},       // aligned tile, off-boundary rows
      {17, 18, 17, 18},    // single DP
  };
  for (const auto b : kAllBackends) {
    for (const auto& rect : rects) {
      const auto got = apply_backend(g, blocked, c, u, rect, b);
      const auto want = apply_backend(g, unblocked, c, u, rect, b);
      for (int i = rect.row_begin; i < rect.row_end; ++i)
        for (int j = rect.col_begin; j < rect.col_end; ++j)
          ASSERT_EQ(got[g.flat(i, j)], want[g.flat(i, j)])
              << nl::kernel_backend_name(b) << " at (" << i << ", " << j << ")";
    }
  }
}

TEST(KernelBlocking, StripDecompositionInvariantUnderBlocking) {
  // The distributed solver's fine strips must see the same absolute block
  // boundaries as the full-rect sweep: partition invariance has to hold
  // not just for the default geometry (RectPartitionInvariantBitwise) but
  // under any explicit blocking.
  const int n = 48;
  nl::grid2d g(n, 6.0 / n);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  nl::kernel_tuning tight;
  tight.row_block = 8;
  tight.col_tile = 32;
  plan.set_tuning(tight);
  const auto u = random_field(g, 31);
  const double c = 1.6;

  for (const auto b : kAllBackends) {
    const auto full = apply_backend(g, plan, c, u, {0, n, 0, n}, b);
    auto split = g.make_field();
    // Strip widths 7 and 9: both off the block boundaries, forcing leading
    // partial blocks inside most strips.
    for (int cb = 0; cb < n; cb += 7) {
      nl::apply_nonlocal_operator_raw(u.data(), split.data(), g.stride(), g.ghost(),
                                      plan, c, {0, 9, cb, std::min(cb + 7, n)}, b);
      nl::apply_nonlocal_operator_raw(u.data(), split.data(), g.stride(), g.ghost(),
                                      plan, c, {9, n, cb, std::min(cb + 7, n)}, b);
    }
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(full[g.flat(i, j)], split[g.flat(i, j)])
            << nl::kernel_backend_name(b) << " at (" << i << ", " << j << ")";
  }
}

// ------------------------------------------------------- solver integration ----

TEST(KernelSolvers, SerialSolverErrorIsBackendIndependent) {
  // The measured discretization error must not depend on which backend
  // evaluated the operator (beyond FP noise far below the error itself).
  nl::solver_config cfg;
  cfg.n = 24;
  cfg.epsilon_factor = 3;
  cfg.num_steps = 10;

  const auto saved = nl::kernel_default_backend();
  nl::set_kernel_default_backend(nl::kernel_backend::scalar);
  const auto ref = nl::serial_solver(cfg).run();
  for (const auto b : {nl::kernel_backend::row_run, nl::kernel_backend::simd,
                       nl::kernel_backend::avx512}) {
    nl::set_kernel_default_backend(b);
    const auto res = nl::serial_solver(cfg).run();
    EXPECT_NEAR(res.total_error_e, ref.total_error_e,
                1e-9 * std::abs(ref.total_error_e));
    EXPECT_NEAR(res.final_ek, ref.final_ek, 1e-9 * std::abs(ref.final_ek));
  }
  nl::set_kernel_default_backend(saved);
}

TEST(KernelSolvers, SolverTuningNeverChangesResults) {
  // solver_config::tuning reshapes execution order only: a solver under an
  // aggressive explicit block geometry must reproduce the default-geometry
  // solver bitwise, and its kernel counters must reflect the blocked sweep.
  nl::solver_config cfg;
  cfg.n = 40;
  cfg.epsilon_factor = 8;
  cfg.num_steps = 5;

  nl::serial_solver ref(cfg);
  ref.set_initial_condition();

  cfg.tuning.row_block = nl::kernel_min_row_block;
  cfg.tuning.col_tile = nl::kernel_min_col_tile;
  nl::serial_solver tuned(cfg);
  tuned.set_initial_condition();

  for (int k = 0; k < cfg.num_steps; ++k) {
    ref.step(k);
    tuned.step(k);
  }
  ASSERT_EQ(ref.field().size(), tuned.field().size());
  for (std::size_t i = 0; i < ref.field().size(); ++i)
    ASSERT_EQ(ref.field()[i], tuned.field()[i]) << "at flat index " << i;

  EXPECT_EQ(tuned.kernel_plan().blocking().row_block, nl::kernel_min_row_block);
  EXPECT_EQ(tuned.kernel_plan().blocking().col_tile, nl::kernel_min_col_tile);
  const auto& ks = tuned.kernel_stats();
  EXPECT_EQ(ks.applies, static_cast<std::uint64_t>(cfg.num_steps));
  EXPECT_EQ(ks.dps, static_cast<std::uint64_t>(cfg.num_steps) * cfg.n * cfg.n);
  // 40 rows / 4-row blocks * 40 cols / 32-col tiles = 10 * 2 blocks/apply.
  EXPECT_EQ(ks.blocks, static_cast<std::uint64_t>(cfg.num_steps) * 10 * 2);
  EXPECT_GT(ks.seconds, 0.0);
  EXPECT_GT(ks.mdps(), 0.0);
}

TEST(KernelSolvers, SteadyStateConvergesThroughPlanOverload) {
  nl::grid2d g(16, 2.0 / 16);
  nl::stencil st(g, nl::influence{});
  nl::stencil_plan plan(st);
  const double c = nl::influence{}.scaling_constant(2, 1.0, g.epsilon());
  const auto [b, ustar] = nl::manufactured_steady_problem(g, plan, c);
  auto u = g.make_field();
  const auto res = nl::solve_steady_state(g, plan, c, b, u);
  ASSERT_TRUE(res.converged);
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      EXPECT_NEAR(u[g.flat(i, j)], ustar[g.flat(i, j)], 1e-7);
}

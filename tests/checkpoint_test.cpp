// Checkpoint/restart tests for the distributed solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dist/dist_solver.hpp"

namespace dist = nlh::dist;

namespace {

dist::dist_config small_config() {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  return cfg;
}

double max_field_diff(const dist::dist_solver& a, const dist::dist_solver& b) {
  const auto fa = a.gather();
  const auto fb = b.gather();
  const auto& g = a.grid();
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(fa[g.flat(i, j)] - fb[g.flat(i, j)]));
  return m;
}

}  // namespace

TEST(Checkpoint, RoundTripPreservesState) {
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(small_config(), dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.run(3);
  const auto state = solver.checkpoint();

  dist::dist_solver restored(small_config(), dist::ownership_map(t, 2, {0, 0, 1, 1}));
  restored.restore(state);
  EXPECT_EQ(restored.current_step(), 3);
  EXPECT_EQ(restored.owners().raw(), solver.owners().raw());
  EXPECT_DOUBLE_EQ(max_field_diff(solver, restored), 0.0);
}

TEST(Checkpoint, RestartContinuesIdentically) {
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver straight(small_config(), dist::ownership_map(t, 2, {0, 1, 0, 1}));
  straight.set_initial_condition();
  straight.run(5);

  dist::dist_solver first_half(small_config(), dist::ownership_map(t, 2, {0, 1, 0, 1}));
  first_half.set_initial_condition();
  first_half.run(2);
  const auto state = first_half.checkpoint();

  dist::dist_solver second_half(small_config(),
                                dist::ownership_map(t, 2, {0, 1, 0, 1}));
  second_half.restore(state);
  second_half.run(3);
  EXPECT_EQ(second_half.current_step(), 5);
  EXPECT_LT(max_field_diff(straight, second_half), 1e-14);
}

TEST(Checkpoint, CapturesMigratedOwnership) {
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(small_config(), dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.run(1);
  solver.migrate_sd(0, 1);
  const auto state = solver.checkpoint();

  dist::dist_solver restored(small_config(), dist::ownership_map(t, 2, {0, 0, 1, 1}));
  restored.restore(state);
  EXPECT_EQ(restored.owners().owner(0), 1);
  restored.run(2);  // must run cleanly under the restored ownership
  solver.run(2);
  EXPECT_LT(max_field_diff(solver, restored), 1e-14);
}

TEST(Checkpoint, StateIsSelfContainedBytes) {
  const dist::tiling t(2, 2, 8, 2);
  auto cfg = small_config();
  cfg.checkpoint.codec = "raw";  // the ablation codec keeps the size class
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 1, 0}));
  solver.set_initial_condition();
  const auto state = solver.checkpoint();
  // 4 SDs x 64 interior doubles plus headers: sanity-check the size class.
  EXPECT_GT(state.size(), 4u * 64u * 8u);
  EXPECT_LT(state.size(), 4u * 64u * 8u + 1024u);

  // The default delta codec must come in under raw on this field
  // (docs/checkpoint.md; the hard ratio gate lives in bench/micro_checkpoint).
  dist::dist_solver compressed(small_config(),
                               dist::ownership_map(t, 2, {0, 1, 1, 0}));
  compressed.set_initial_condition();
  EXPECT_LT(compressed.checkpoint().size(), state.size());
}

TEST(Checkpoint, RestoreAfterMigrationRecompilesThePlan) {
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(small_config(), dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.run(2);               // compiles the initial plan
  solver.migrate_sd(1, 0);     // epoch-tagged migration dirties it
  solver.run(1);               // recompile under the migrated ownership
  const auto state = solver.checkpoint();

  dist::dist_solver restored(small_config(),
                             dist::ownership_map(t, 2, {0, 0, 1, 1}));
  restored.set_initial_condition();
  restored.run(1);
  const auto compiles_before = restored.plan_compiles();
  EXPECT_EQ(compiles_before, 1u);

  // restore() adopts the checkpoint's migrated ownership, so the cached
  // step plan is stale: the next step must recompile, exactly once.
  restored.restore(state);
  EXPECT_EQ(restored.owners().owner(1), 0);
  restored.run(2);
  EXPECT_EQ(restored.plan_compiles(), compiles_before + 1);

  solver.run(2);
  EXPECT_LT(max_field_diff(solver, restored), 1e-14);
}

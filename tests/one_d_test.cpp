// Tests for the 1-D nonlocal diffusion companion model (eq. 2, d = 1).

#include <gtest/gtest.h>

#include <cmath>

#include "nonlocal/one_d.hpp"

namespace nl = nlh::nonlocal;

TEST(Grid1d, Geometry) {
  nl::grid1d g(10, 0.3);  // h = 0.1, ghost = ceil(3) = 3
  EXPECT_DOUBLE_EQ(g.h(), 0.1);
  EXPECT_EQ(g.ghost(), 3);
  EXPECT_EQ(g.total(), 16u);
  EXPECT_DOUBLE_EQ(g.x(0), 0.05);
  EXPECT_DOUBLE_EQ(g.cell_volume(), 0.1);
  EXPECT_EQ(g.flat(-3), 0u);
  EXPECT_EQ(g.flat(12), 15u);
}

TEST(Stencil1d, OffsetsAndWeights) {
  nl::grid1d g(16, 3.0 / 16);
  nl::stencil1d st(g, nl::influence{});
  EXPECT_EQ(st.entries().size(), 6u);  // dj in {-3..3} \ {0}
  EXPECT_EQ(st.reach(), 3);
  EXPECT_NEAR(st.weight_sum(), 6.0 * g.cell_volume(), 1e-15);
}

TEST(Stencil1d, WeightSumApproachesIntervalLength) {
  // sum J h over the discrete ball -> |B_eps| = 2 eps for J = 1.
  nl::grid1d g(1024, 32.0 / 1024);
  nl::stencil1d st(g, nl::influence{});
  EXPECT_NEAR(st.weight_sum(), 2.0 * g.epsilon(), 0.05 * 2.0 * g.epsilon());
}

TEST(Solver1d, ConstantFieldHasZeroOperator) {
  nl::solver_config_1d cfg;
  cfg.n = 32;
  cfg.epsilon_factor = 3;
  nl::serial_solver_1d s(cfg);
  auto u = s.grid().make_field();
  for (auto& v : u) v = 2.5;
  auto out = s.grid().make_field();
  s.apply_operator(u, out);
  for (int i = 0; i < s.grid().n(); ++i)
    EXPECT_NEAR(out[s.grid().flat(i)], 0.0, 1e-12);
}

TEST(Solver1d, OperatorApproximatesSecondDerivative) {
  // u = x^2: L_h[u] -> k u'' = 2k away from the boundary. The midpoint
  // quadrature over the ball carries a 1 + 3/(2g) overestimate, so the
  // horizon must span many cells (g = 32 -> ~4.7%) for a 10% tolerance.
  nl::solver_config_1d cfg;
  cfg.n = 512;
  cfg.epsilon_factor = 32;
  cfg.conductivity = 1.5;
  nl::serial_solver_1d s(cfg);
  const auto& g = s.grid();
  auto u = g.make_field();
  for (int i = -g.ghost(); i < g.n() + g.ghost(); ++i) u[g.flat(i)] = g.x(i) * g.x(i);
  auto out = g.make_field();
  s.apply_operator(u, out);
  EXPECT_NEAR(out[g.flat(g.n() / 2)], 2.0 * cfg.conductivity,
              0.1 * 2.0 * cfg.conductivity);
}

TEST(Solver1d, TracksManufacturedSolution) {
  nl::solver_config_1d cfg;
  cfg.n = 64;
  cfg.epsilon_factor = 4;
  cfg.num_steps = 10;
  const auto res = nl::serial_solver_1d(cfg).run();
  EXPECT_LT(res.max_relative_error, 1e-3);
}

TEST(Solver1d, ErrorDecreasesWithMesh) {
  double prev = 1e9;
  for (int n : {16, 32, 64, 128}) {
    nl::solver_config_1d cfg;
    cfg.n = n;
    cfg.epsilon_factor = 2;
    cfg.num_steps = 8;
    const auto res = nl::serial_solver_1d(cfg).run();
    EXPECT_LT(res.total_error_e, prev) << "n=" << n;
    prev = res.total_error_e;
  }
}

TEST(Solver1d, BoundaryStaysZero) {
  nl::solver_config_1d cfg;
  cfg.n = 32;
  cfg.epsilon_factor = 3;
  cfg.num_steps = 6;
  nl::serial_solver_1d s(cfg);
  s.set_initial_condition();
  for (int k = 0; k < 6; ++k) s.step(k);
  const auto& g = s.grid();
  for (int i = -g.ghost(); i < 0; ++i)
    EXPECT_DOUBLE_EQ(s.field()[g.flat(i)], 0.0);
  for (int i = g.n(); i < g.n() + g.ghost(); ++i)
    EXPECT_DOUBLE_EQ(s.field()[g.flat(i)], 0.0);
}

TEST(Solver1d, ScalingConstantMatchesEq2) {
  // d = 1, J = 1: c = k / (eps^3 M2) with M2 = 1/3.
  nl::solver_config_1d cfg;
  cfg.n = 32;
  cfg.epsilon_factor = 4;
  cfg.conductivity = 2.0;
  nl::serial_solver_1d s(cfg);
  const double eps = 4.0 / 32;
  EXPECT_NEAR(s.scaling_constant(), 2.0 * 3.0 / (eps * eps * eps), 1e-9);
}

TEST(Solver1d, AllKernelsStable) {
  for (auto kind : {nl::influence_kind::constant, nl::influence_kind::linear,
                    nl::influence_kind::gaussian}) {
    nl::solver_config_1d cfg;
    cfg.n = 48;
    cfg.epsilon_factor = 3;
    cfg.num_steps = 10;
    cfg.kind = kind;
    nl::serial_solver_1d s(cfg);
    const auto res = s.run();
    EXPECT_LT(res.max_relative_error, 1e-2) << static_cast<int>(kind);
    for (double v : s.field()) EXPECT_TRUE(std::isfinite(v));
  }
}

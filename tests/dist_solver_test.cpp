// Integration tests: the fully asynchronous distributed solver must
// reproduce the serial reference for every decomposition, ownership and
// thread count; ghost traffic must match the SD geometry.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dist/dist_solver.hpp"
#include "nonlocal/serial_solver.hpp"
#include "partition/multilevel.hpp"
#include "partition/mesh_dual.hpp"

namespace dist = nlh::dist;
namespace nl = nlh::nonlocal;

namespace {

/// Serial reference on the same mesh / dt as a dist_config.
std::vector<double> serial_reference(const dist::dist_config& cfg, int steps) {
  nl::solver_config scfg;
  scfg.n = cfg.sd_cols * cfg.sd_size;
  scfg.epsilon_factor = cfg.epsilon_factor;
  scfg.conductivity = cfg.conductivity;
  scfg.dt = cfg.dt;
  scfg.dt_safety = cfg.dt_safety;
  scfg.num_steps = steps;
  scfg.kind = cfg.kind;
  nl::serial_solver s(scfg);
  s.set_initial_condition();
  for (int k = 0; k < steps; ++k) s.step(k);
  return s.field();
}

double max_abs_diff(const nl::grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(a[g.flat(i, j)] - b[g.flat(i, j)]));
  return m;
}

}  // namespace

TEST(DistSolver, SingleNodeMatchesSerial) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  dist::dist_solver solver(cfg, dist::ownership_map::single_node(
                                    dist::tiling(2, 2, 8, 2)));
  solver.set_initial_condition();
  solver.run(3);
  const auto ref = serial_reference(cfg, 3);
  EXPECT_LT(max_abs_diff(solver.grid(), solver.gather(), ref), 1e-12);
}

TEST(DistSolver, NoGhostTrafficOnSingleNode) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  dist::dist_solver solver(cfg, dist::ownership_map::single_node(
                                    dist::tiling(2, 2, 8, 2)));
  solver.set_initial_condition();
  solver.run(2);
  EXPECT_EQ(solver.ghost_bytes(), 0u);
}

TEST(DistSolver, TwoNodesMatchSerial) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  // Left column node 0, right column node 1.
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.run(3);
  const auto ref = serial_reference(cfg, 3);
  EXPECT_LT(max_abs_diff(solver.grid(), solver.gather(), ref), 1e-12);
  EXPECT_GT(solver.ghost_bytes(), 0u);
}

TEST(DistSolver, GhostBytesMatchGeometry) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.step();
  // Crossing edges: vertical boundary between the two columns. Per step:
  // 4 side strips (8x2 DPs, both directions across two SD rows) and
  // 4 corner strips (2x2). Payload = doubles + 8-byte vector length header.
  const std::uint64_t side = 8 * 2 * 8 + 8;
  const std::uint64_t corner = 2 * 2 * 8 + 8;
  EXPECT_EQ(solver.ghost_bytes(), 4 * side + 4 * corner);
}

TEST(DistSolver, MigrationPreservesSolution) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.run(2);
  solver.migrate_sd(1, 1);  // move an SD mid-run
  EXPECT_EQ(solver.owners().owner(1), 1);
  solver.run(2);
  const auto ref = serial_reference(cfg, 4);
  EXPECT_LT(max_abs_diff(solver.grid(), solver.gather(), ref), 1e-12);
}

TEST(DistSolver, MigrationToSelfIsNoop) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  const auto before = solver.comm().total_bytes();
  solver.migrate_sd(0, 0);
  EXPECT_EQ(solver.comm().total_bytes(), before);
}

TEST(DistSolver, BusyCountersRespond) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 12;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 12, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.reset_busy_counters();
  solver.run(3);
  for (int l = 0; l < 2; ++l) {
    const double f = solver.busy_fraction(l);
    EXPECT_GT(f, 0.0) << "locality " << l;
    EXPECT_LE(f, 1.0 + 1e-6);
  }
}

// The headline property, swept over decompositions / node counts / threads:
// distributed == serial to round-off for every configuration.
using DistParam = std::tuple<int /*sd grid*/, int /*sd size*/, int /*nodes*/,
                             int /*threads*/, int /*steps*/>;

class DistEquivalence : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistEquivalence, MatchesSerialReference) {
  const auto [sdg, sds, nodes, threads, steps] = GetParam();
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = sdg;
  cfg.sd_size = sds;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = threads;
  const dist::tiling t(sdg, sdg, sds, 2);

  // Partition the SD dual graph METIS-style for the ownership.
  nlh::partition::mesh_dual_options mopt;
  mopt.sd_rows = sdg;
  mopt.sd_cols = sdg;
  mopt.sd_size = sds;
  mopt.ghost_width = 2;
  auto dual = nlh::partition::build_mesh_dual(mopt);
  nlh::partition::partition_options popt;
  popt.k = nodes;
  const auto part = nlh::partition::multilevel_partition(dual, popt);

  dist::dist_solver solver(cfg, dist::ownership_map::from_partition(t, nodes, part));
  solver.set_initial_condition();
  solver.run(steps);
  const auto ref = serial_reference(cfg, steps);
  EXPECT_LT(max_abs_diff(solver.grid(), solver.gather(), ref), 1e-11)
      << sdg << "x" << sdg << " SDs, " << nodes << " nodes, " << threads
      << " threads";
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, DistEquivalence,
    ::testing::Values(DistParam{2, 8, 1, 1, 3}, DistParam{2, 8, 2, 1, 3},
                      DistParam{2, 8, 4, 1, 3}, DistParam{3, 6, 2, 1, 3},
                      DistParam{3, 6, 3, 2, 3}, DistParam{4, 4, 4, 1, 2},
                      DistParam{4, 4, 2, 2, 4}, DistParam{2, 8, 2, 2, 5},
                      DistParam{4, 8, 4, 1, 2}, DistParam{5, 4, 4, 1, 2}));

// Same equivalence property across influence functions and horizon sizes:
// the physics configuration must not matter to the distribution machinery.
using PhysicsParam = std::tuple<nl::influence_kind, int /*eps factor*/>;

class DistPhysicsEquivalence : public ::testing::TestWithParam<PhysicsParam> {};

TEST_P(DistPhysicsEquivalence, MatchesSerialReference) {
  const auto [kind, eps_factor] = GetParam();
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = eps_factor;
  cfg.kind = kind;
  const dist::tiling t(2, 2, 8, eps_factor);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 1, 0}));
  solver.set_initial_condition();
  solver.run(3);
  const auto ref = serial_reference(cfg, 3);
  EXPECT_LT(max_abs_diff(solver.grid(), solver.gather(), ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndHorizons, DistPhysicsEquivalence,
    ::testing::Combine(::testing::Values(nl::influence_kind::constant,
                                         nl::influence_kind::linear,
                                         nl::influence_kind::gaussian),
                       ::testing::Values(2, 4, 8)));

// Tests for the futurization primitives: future/promise, then-continuations,
// when_all, exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "amt/future.hpp"

namespace amt = nlh::amt;

TEST(Future, ReadyAfterSetValue) {
  amt::promise<int> p;
  auto f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(7);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 7);
}

TEST(Future, GetConsumes) {
  auto f = amt::make_ready_future<int>(3);
  EXPECT_EQ(f.get(), 3);
  EXPECT_FALSE(f.valid());
}

TEST(Future, VoidSpecialization) {
  amt::promise<void> p;
  auto f = p.get_future();
  EXPECT_FALSE(f.is_ready());
  p.set_value();
  EXPECT_TRUE(f.is_ready());
  f.get();  // no throw
}

TEST(Future, MakeReadyFuture) {
  auto f = amt::make_ready_future<std::string>(std::string("hi"));
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), "hi");
  auto v = amt::make_ready_future();
  EXPECT_TRUE(v.is_ready());
}

TEST(Future, MoveOnlyValue) {
  amt::promise<std::unique_ptr<int>> p;
  auto f = p.get_future();
  p.set_value(std::make_unique<int>(5));
  auto ptr = f.get();
  ASSERT_TRUE(ptr);
  EXPECT_EQ(*ptr, 5);
}

TEST(Future, ThenOnReadyRunsInline) {
  auto f = amt::make_ready_future<int>(10);
  bool ran = false;
  auto g = f.then([&](amt::future<int> r) {
    ran = true;
    return r.get() * 2;
  });
  EXPECT_TRUE(ran);  // continuation ran inline during then()
  EXPECT_EQ(g.get(), 20);
}

TEST(Future, ThenBeforeReadyRunsOnSet) {
  amt::promise<int> p;
  auto f = p.get_future();
  std::atomic<int> result{0};
  auto g = f.then([&](amt::future<int> r) { result = r.get() + 1; });
  EXPECT_EQ(result.load(), 0);
  p.set_value(41);
  EXPECT_EQ(result.load(), 42);
  EXPECT_TRUE(g.is_ready());
}

TEST(Future, ThenChains) {
  amt::promise<int> p;
  auto f = p.get_future()
               .then([](amt::future<int> r) { return r.get() + 1; })
               .then([](amt::future<int> r) { return r.get() * 3; });
  p.set_value(1);
  EXPECT_EQ(f.get(), 6);
}

TEST(Future, ExceptionPropagatesThroughGet) {
  amt::promise<int> p;
  auto f = p.get_future();
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, ExceptionPropagatesThroughThen) {
  amt::promise<int> p;
  auto f = p.get_future().then([](amt::future<int> r) { return r.get(); });
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, ThrowingContinuationSetsException) {
  auto f = amt::make_ready_future<int>(1).then(
      [](amt::future<int>) -> int { throw std::logic_error("inside"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(Future, CrossThreadFulfillment) {
  amt::promise<int> p;
  auto f = p.get_future();
  std::thread t([&] { p.set_value(99); });
  EXPECT_EQ(f.get(), 99);
  t.join();
}

TEST(Future, WaitBlocksUntilReady) {
  amt::promise<void> p;
  auto f = p.get_future();
  std::thread t([&] { p.set_value(); });
  f.wait();
  EXPECT_TRUE(f.is_ready());
  t.join();
}

TEST(WhenAll, EmptyIsImmediatelyReady) {
  auto f = amt::when_all(std::vector<amt::future<int>>{});
  EXPECT_TRUE(f.is_ready());
  EXPECT_TRUE(f.get().empty());
}

TEST(WhenAll, AllReadyInputs) {
  std::vector<amt::future<int>> fs;
  for (int i = 0; i < 5; ++i) fs.push_back(amt::make_ready_future<int>(i));
  auto all = amt::when_all(std::move(fs));
  ASSERT_TRUE(all.is_ready());
  auto out = all.get();
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].get(), i);
}

TEST(WhenAll, MixedReadiness) {
  amt::promise<int> p1, p2;
  std::vector<amt::future<int>> fs;
  fs.push_back(p1.get_future());
  fs.push_back(amt::make_ready_future<int>(7));
  fs.push_back(p2.get_future());
  auto all = amt::when_all(std::move(fs));
  EXPECT_FALSE(all.is_ready());
  p1.set_value(1);
  EXPECT_FALSE(all.is_ready());
  p2.set_value(2);
  ASSERT_TRUE(all.is_ready());
  auto out = all.get();
  EXPECT_EQ(out[0].get(), 1);
  EXPECT_EQ(out[1].get(), 7);
  EXPECT_EQ(out[2].get(), 2);
}

TEST(WhenAll, VoidFutures) {
  amt::promise<void> p;
  std::vector<amt::future<void>> fs;
  fs.push_back(p.get_future());
  fs.push_back(amt::make_ready_future());
  auto all = amt::when_all(std::move(fs));
  EXPECT_FALSE(all.is_ready());
  p.set_value();
  EXPECT_TRUE(all.is_ready());
}

TEST(WhenAll, ManyFuturesFromThreads) {
  constexpr int n = 64;
  std::vector<amt::promise<int>> ps(n);
  std::vector<amt::future<int>> fs;
  for (auto& p : ps) fs.push_back(p.get_future());
  auto all = amt::when_all(std::move(fs));
  std::thread t([&] {
    for (int i = 0; i < n; ++i) ps[static_cast<std::size_t>(i)].set_value(i);
  });
  auto out = all.get();
  t.join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  long long sum = 0;
  for (auto& f : out) sum += f.get();
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(WaitAll, BlocksForAll) {
  amt::promise<void> p;
  std::vector<amt::future<void>> fs;
  fs.push_back(amt::make_ready_future());
  fs.push_back(p.get_future());
  std::thread t([&] { p.set_value(); });
  amt::wait_all(fs);
  for (auto& f : fs) EXPECT_TRUE(f.is_ready());
  t.join();
}

TEST(Future, PaperListingOneExample) {
  // Listing 1 of the paper: a+b+c+d via two async adds. Reproduced with
  // promises standing in for async (the pool version lives in amt_pool_test).
  auto add = [](int x, int y) { return x + y; };
  auto a_add_b = amt::make_ready_future<int>(add(1, 2));
  auto c_add_d = amt::make_ready_future<int>(add(3, 4));
  EXPECT_EQ(a_add_b.get() + c_add_d.get(), 10);
}

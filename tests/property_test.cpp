// Randomized property tests (TEST_P over seeds): cluster-simulator
// scheduling invariants, serializer round trips, mailbox linearity and
// balancer conservation under random scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "balance/balancer.hpp"
#include "net/comm_world.hpp"
#include "net/serializer.hpp"
#include "partition/partitioner.hpp"
#include "sim/cluster_sim.hpp"
#include "support/rng.hpp"

namespace sim = nlh::sim;
namespace net = nlh::net;
namespace bal = nlh::balance;
namespace dist = nlh::dist;

// ------------------------------------------- cluster_sim random-DAG sweep ----

class ClusterSimProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClusterSimProperty, SchedulingInvariantsHold) {
  nlh::support::rng gen(GetParam());
  const int nodes = gen.uniform_int(1, 4);
  const int cores = gen.uniform_int(1, 3);
  sim::cluster_sim cs(nodes, cores);
  for (int n = 0; n < nodes; ++n) cs.set_speed(n, gen.uniform(0.5, 2.0));

  // Random layered DAG: deps point only backwards.
  const int tasks = gen.uniform_int(10, 60);
  std::vector<int> ids;
  std::vector<double> works;
  std::vector<int> task_node;
  for (int i = 0; i < tasks; ++i) {
    std::vector<int> deps;
    const int ndeps = gen.uniform_int(0, std::min<int>(3, static_cast<int>(ids.size())));
    for (int d = 0; d < ndeps; ++d)
      deps.push_back(ids[static_cast<std::size_t>(
          gen.uniform_u64(0, ids.size() - 1))]);
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    const int node = gen.uniform_int(0, nodes - 1);
    const double work = gen.uniform(0.0, 10.0);
    ids.push_back(cs.add_task(node, work, deps));
    works.push_back(work);
    task_node.push_back(node);
  }
  // A few random messages between existing tasks.
  const int msgs = gen.uniform_int(0, 10);
  for (int m = 0; m < msgs; ++m) {
    const auto a = static_cast<int>(gen.uniform_u64(0, ids.size() - 1));
    const auto b = static_cast<int>(gen.uniform_u64(0, ids.size() - 1));
    if (a < b) cs.add_message(ids[static_cast<std::size_t>(a)],
                              ids[static_cast<std::size_t>(b)],
                              gen.uniform(0.0, 1e4));
  }
  cs.run();

  // Invariant 1: every task starts at/after its ready moment, finishes
  // at/after it starts, and the makespan covers all finishes.
  for (int id : ids) {
    EXPECT_GE(cs.task_start(id), 0.0);
    EXPECT_GE(cs.task_finish(id), cs.task_start(id));
    EXPECT_LE(cs.task_finish(id), cs.makespan() + 1e-9);
  }

  // Invariant 2: per-node busy time never exceeds cores * makespan, and
  // total busy time equals the sum of task durations.
  double total_busy = 0.0;
  for (int n = 0; n < nodes; ++n) {
    const double busy = cs.node_busy_time(n);
    EXPECT_LE(busy, cores * cs.makespan() + 1e-9);
    total_busy += busy;
  }
  double total_duration = 0.0;
  for (int id : ids) total_duration += cs.task_finish(id) - cs.task_start(id);
  EXPECT_NEAR(total_busy, total_duration, 1e-6);

  // Invariant 3: makespan is bounded below by each node's work at its speed
  // spread over its cores.
  std::vector<double> node_work(static_cast<std::size_t>(nodes), 0.0);
  for (std::size_t i = 0; i < ids.size(); ++i)
    node_work[static_cast<std::size_t>(task_node[i])] +=
        cs.task_finish(ids[i]) - cs.task_start(ids[i]);
  for (int n = 0; n < nodes; ++n)
    EXPECT_GE(cs.makespan() + 1e-9, node_work[static_cast<std::size_t>(n)] / cores);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterSimProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 10u, 20u, 30u,
                                           40u, 50u));

// ------------------------------------------------- serializer random sweep ----

class SerializerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializerProperty, RandomRoundTrip) {
  nlh::support::rng gen(GetParam());
  net::archive_writer w;
  std::vector<int> ints;
  std::vector<std::vector<double>> vecs;
  std::vector<std::string> strs;
  const int ops = 30;
  std::vector<int> kinds;
  for (int op = 0; op < ops; ++op) {
    const int kind = gen.uniform_int(0, 2);
    kinds.push_back(kind);
    if (kind == 0) {
      ints.push_back(gen.uniform_int(-1000000, 1000000));
      w.write(ints.back());
    } else if (kind == 1) {
      std::vector<double> v(gen.uniform_u64(0, 50));
      for (auto& x : v) x = gen.normal();
      vecs.push_back(v);
      w.write(v);
    } else {
      std::string s;
      const auto len = gen.uniform_u64(0, 40);
      for (std::uint64_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>('a' + gen.uniform_int(0, 25)));
      strs.push_back(s);
      w.write(s);
    }
  }
  const auto buf = w.take();
  net::archive_reader r(buf);
  std::size_t ii = 0, vi = 0, si = 0;
  for (int kind : kinds) {
    if (kind == 0)
      EXPECT_EQ(r.read<int>(), ints[ii++]);
    else if (kind == 1)
      EXPECT_EQ(r.read_vector<double>(), vecs[vi++]);
    else
      EXPECT_EQ(r.read_string(), strs[si++]);
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --------------------------------------------------- mailbox random sweep ----

class MailboxProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MailboxProperty, EveryMessageMatchesExactlyOneReceive) {
  nlh::support::rng gen(GetParam());
  net::comm_world world(3);
  struct pending {
    int src, dst;
    std::uint64_t tag;
    int value;
  };
  std::vector<pending> plan;
  for (int i = 0; i < 60; ++i)
    plan.push_back(pending{gen.uniform_int(0, 2), gen.uniform_int(0, 2),
                           gen.uniform_u64(0, 5), i});

  // Random interleaving of sends and receives over the same plan.
  auto recv_order = plan;
  for (std::size_t i = recv_order.size(); i > 1; --i)
    std::swap(recv_order[i - 1], recv_order[gen.uniform_u64(0, i - 1)]);

  std::map<std::tuple<int, int, std::uint64_t>, std::vector<int>> sent_fifo;
  std::vector<std::pair<pending, nlh::amt::future<net::byte_buffer>>> recvs;
  std::size_t send_i = 0, recv_i = 0;
  while (send_i < plan.size() || recv_i < recv_order.size()) {
    const bool do_send =
        recv_i >= recv_order.size() ||
        (send_i < plan.size() && gen.next_double() < 0.5);
    if (do_send) {
      const auto& p = plan[send_i++];
      net::archive_writer w;
      w.write(p.value);
      world.send(p.src, p.dst, p.tag, w.take());
      sent_fifo[{p.src, p.dst, p.tag}].push_back(p.value);
    } else {
      const auto& p = recv_order[recv_i++];
      recvs.emplace_back(p, world.recv(p.dst, p.src, p.tag));
    }
  }
  // Every receive resolves (the plan and recv_order are permutations of the
  // same multiset of keys) and values per key arrive in FIFO order.
  std::map<std::tuple<int, int, std::uint64_t>, std::vector<int>> got;
  for (auto& [p, fut] : recvs) {
    ASSERT_TRUE(fut.is_ready());
    const auto buf = fut.get();
    net::archive_reader r(buf);
    got[{p.src, p.dst, p.tag}].push_back(r.read<int>());
  }
  for (auto& [key, values] : got) {
    auto expected = sent_fifo[key];
    auto actual = values;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MailboxProperty,
                         ::testing::Values(7u, 14u, 21u, 28u, 35u));

// ------------------------------------------------ balancer random sweep ----

class BalancerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BalancerProperty, ConservationAndValidityUnderRandomBusyTimes) {
  nlh::support::rng gen(GetParam());
  const int grid = gen.uniform_int(4, 8);
  const int nodes = gen.uniform_int(2, 4);
  dist::tiling t(grid, grid, 10, 2);
  auto own = dist::ownership_map::from_partition(
      t, nodes, nlh::partition::block_partition(grid, grid, nodes));

  for (int round = 0; round < 3; ++round) {
    std::vector<double> busy(static_cast<std::size_t>(nodes));
    for (auto& b : busy) b = gen.uniform(0.1, 2.0);
    const auto rep = bal::balance_step(t, own, busy);

    int total = 0;
    for (int c : own.sd_counts()) total += c;
    EXPECT_EQ(total, t.num_sds());
    for (int sd = 0; sd < t.num_sds(); ++sd) {
      EXPECT_GE(own.owner(sd), 0);
      EXPECT_LT(own.owner(sd), nodes);
    }
    // No node is ever emptied.
    for (int c : own.sd_counts()) EXPECT_GE(c, 1);
    (void)rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancerProperty,
                         ::testing::Values(3u, 6u, 9u, 12u, 15u, 18u, 21u, 24u));

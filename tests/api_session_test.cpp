// Tests for the nlh::api facade: scenario registry, session_options /
// dist_config validation with actionable messages, the per-step observer,
// runtime metrics, and the headline property driven entirely through the
// facade — the session-built distributed solve reproduces the session-built
// serial reference bitwise, for every kernel backend and also for
// scenarios other than the manufactured default.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "api/session.hpp"
#include "dist/dist_solver.hpp"
#include "nonlocal/kernel/backend.hpp"

namespace api = nlh::api;
namespace nl = nlh::nonlocal;

namespace {

/// Restores the process-wide kernel backend on scope exit, so backend
/// sweeps cannot leak into other tests.
class backend_guard {
 public:
  backend_guard() : saved_(nl::kernel_default_backend()) {}
  ~backend_guard() { nl::set_kernel_default_backend(saved_); }

 private:
  nl::kernel_backend saved_;
};

/// True when some validation message mentions `needle`.
bool mentions(const std::vector<std::string>& errs, const std::string& needle) {
  return std::any_of(errs.begin(), errs.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

/// Bitwise max |a - b| over the interior.
double max_abs_diff(const nl::grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(a[g.flat(i, j)] - b[g.flat(i, j)]));
  return m;
}

api::session_options small_options(const std::string& scenario) {
  api::session_options opt;
  opt.scenario = scenario;
  opt.n = 16;
  opt.epsilon_factor = 2;
  opt.num_steps = 3;
  opt.sd_grid = 2;
  opt.nodes = 2;
  return opt;
}

}  // namespace

// ----------------------------------------------------------------- registry --

TEST(ScenarioRegistry, SeededWithBuiltins) {
  const auto names = api::scenario_names();
  for (const char* expected : {"crack", "gaussian_pulse", "lshape", "manufactured"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(ScenarioRegistry, LookupReturnsWorkingScenario) {
  const auto scn = api::make_scenario("manufactured");
  ASSERT_NE(scn, nullptr);
  EXPECT_EQ(scn->name(), "manufactured");
  EXPECT_TRUE(scn->has_exact());
  EXPECT_FALSE(api::make_scenario("gaussian_pulse")->has_exact());
}

TEST(ScenarioRegistry, UnknownNameThrowsListingKnownOnes) {
  try {
    api::make_scenario("definitely-not-registered");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("definitely-not-registered"), std::string::npos) << msg;
    EXPECT_NE(msg.find("manufactured"), std::string::npos) << msg;
  }
}

TEST(ScenarioRegistry, UserRegistrationIsVisible) {
  api::register_scenario("test_pulse", [] {
    return std::make_shared<const api::gaussian_pulse_scenario>(0.25, 0.25, 0.05);
  });
  EXPECT_EQ(api::make_scenario("test_pulse")->name(), "gaussian_pulse");
  const auto names = api::scenario_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test_pulse"), names.end());
}

TEST(ScenarioRegistry, MaskAndWorkHooks) {
  const auto lshape = api::make_scenario("lshape");
  const auto mask = lshape->sd_mask(4, 4);
  ASSERT_EQ(mask.size(), 16u);
  // Top-right quadrant void.
  EXPECT_EQ(mask[3], 0);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[15], 1);

  const api::crack_scenario crack(0.02, 0.25, 0.98, 0.25, 0.5);
  const auto work = crack.sd_work(4, 4);
  ASSERT_EQ(work.size(), 16u);
  // The horizontal crack at y = 0.25 crosses the second SD row.
  EXPECT_DOUBLE_EQ(work[4], 0.5);
  EXPECT_DOUBLE_EQ(work[12], 1.0);
}

// --------------------------------------------------------------- validation --

TEST(SessionValidation, AcceptsDefaults) {
  EXPECT_TRUE(api::session::validate(api::session_options{}).empty());
}

TEST(SessionValidation, MessagesNameTheOffendingField) {
  api::session_options opt;
  opt.scenario = "nope";
  opt.n = 0;
  opt.epsilon_factor = 0;
  opt.dt_safety = 0.0;
  opt.num_steps = 0;
  opt.kernel_backend = "warp-drive";
  const auto errs = api::session::validate(opt);
  EXPECT_TRUE(mentions(errs, "session_options.scenario")) << errs.size();
  EXPECT_TRUE(mentions(errs, "session_options.n"));
  EXPECT_TRUE(mentions(errs, "session_options.epsilon_factor"));
  EXPECT_TRUE(mentions(errs, "session_options.dt_safety"));
  EXPECT_TRUE(mentions(errs, "session_options.num_steps"));
  EXPECT_TRUE(mentions(errs, "session_options.kernel_backend"));
}

TEST(SessionValidation, DistributedGeometryChecks) {
  auto opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  opt.n = 30;  // not divisible by sd_grid = 2? it is; use sd_grid 4
  opt.sd_grid = 4;
  EXPECT_TRUE(mentions(api::session::validate(opt), "not divisible by sd_grid"));

  opt.n = 16;
  opt.sd_grid = 8;  // SD side 2 < ghost width 4
  opt.epsilon_factor = 4;
  EXPECT_TRUE(mentions(api::session::validate(opt), "smaller than the ghost width"));

  opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  opt.nodes = 5;  // > 4 SDs
  EXPECT_TRUE(mentions(api::session::validate(opt), "active SDs"));

  opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  opt.integrator = nl::time_integrator::rk4_classic;
  EXPECT_TRUE(mentions(api::session::validate(opt), "forward Euler"));

  opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  opt.partitioner = api::partition_strategy::recursive_bisection;
  opt.sd_grid = 4;  // 16 SDs
  opt.nodes = 3;
  EXPECT_TRUE(mentions(api::session::validate(opt), "power-of-two"));
}

TEST(SessionValidation, ConstructorThrowsWithAllProblems) {
  api::session_options opt;
  opt.n = -1;
  opt.num_steps = 0;
  try {
    api::session s(opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("session_options.n"), std::string::npos) << msg;
    EXPECT_NE(msg.find("session_options.num_steps"), std::string::npos) << msg;
  }
}

TEST(DistConfigValidation, MessagesNameTheOffendingField) {
  nlh::dist::dist_config cfg;
  cfg.sd_size = 0;
  cfg.dt_safety = 0.0;
  const auto errs = nlh::dist::validate(cfg);
  EXPECT_TRUE(mentions(errs, "dist_config.sd_size"));
  EXPECT_TRUE(mentions(errs, "dist_config.dt_safety"));

  cfg = nlh::dist::dist_config{};
  cfg.sd_size = 4;
  cfg.epsilon_factor = 6;
  EXPECT_TRUE(mentions(nlh::dist::validate(cfg), "dist_config.epsilon_factor"));

  EXPECT_TRUE(nlh::dist::validate(nlh::dist::dist_config{}).empty());
}

TEST(DistConfigValidation, SolverConstructionThrowsInsteadOfAsserting) {
  nlh::dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 4;
  cfg.epsilon_factor = 6;  // ghost wider than the SD: previously a deep assert
  const nlh::dist::tiling t(2, 2, 4, 2);
  EXPECT_THROW(
      nlh::dist::dist_solver(cfg, nlh::dist::ownership_map::single_node(t)),
      std::invalid_argument);
}

// --------------------------------------------------- parity through the facade --

// The acceptance property: a facade-built distributed solve reproduces the
// facade-built serial reference bitwise, per kernel backend.
class SessionParityPerBackend : public ::testing::TestWithParam<nl::kernel_backend> {};

TEST_P(SessionParityPerBackend, DistributedMatchesSerialBitwise) {
  backend_guard guard;
  auto opt = small_options("manufactured");
  opt.kernel_backend = nl::kernel_backend_name(GetParam());

  opt.mode = api::execution_mode::serial;
  api::session serial(opt);
  serial.solver().run(opt.num_steps);

  opt.mode = api::execution_mode::distributed;
  opt.threads_per_locality = 2;
  api::session dist(opt);
  dist.solver().run(opt.num_steps);

  EXPECT_GT(dist.solver().ghost_bytes(), 0u);
  EXPECT_EQ(max_abs_diff(serial.solver().grid(), serial.solver().field(),
                         dist.solver().field()),
            0.0)
      << "backend " << opt.kernel_backend;
}

INSTANTIATE_TEST_SUITE_P(Backends, SessionParityPerBackend,
                         ::testing::Values(nl::kernel_backend::scalar,
                                           nl::kernel_backend::row_run,
                                           nl::kernel_backend::simd));

// The scenario routing itself must not break parity: a zero-source pulse
// (nothing manufactured anywhere in the chain) agrees bitwise too.
TEST(SessionParity, GaussianPulseScenarioMatchesBitwise) {
  auto opt = small_options("gaussian_pulse");
  opt.mode = api::execution_mode::serial;
  api::session serial(opt);
  serial.solver().run(opt.num_steps);

  opt.mode = api::execution_mode::distributed;
  api::session dist(opt);
  dist.solver().run(opt.num_steps);

  EXPECT_EQ(max_abs_diff(serial.solver().grid(), serial.solver().field(),
                         dist.solver().field()),
            0.0);
}

// ------------------------------------------------------- observer + metrics --

TEST(SolverHandle, ObserverFiresOncePerStep) {
  auto opt = small_options("manufactured");
  api::session session(opt);
  auto& solver = session.solver();

  std::vector<api::step_event> events;
  solver.set_observer([&](const api::step_event& e) { events.push_back(e); });
  solver.run(5);

  ASSERT_EQ(events.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(events[static_cast<std::size_t>(k)].step, k + 1);
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(k)].t,
                     (k + 1) * solver.dt());
  }
  EXPECT_EQ(solver.current_step(), 5);
}

TEST(SolverHandle, MetricsReportProgressAndBackend) {
  auto opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  api::session session(opt);
  auto& solver = session.solver();
  solver.run(2);

  const auto m = solver.metrics();
  EXPECT_EQ(m.steps, 2);
  EXPECT_GT(m.dt, 0.0);
  EXPECT_GT(m.ghost_bytes, 0u);
  EXPECT_GE(m.wall_seconds, 0.0);
  EXPECT_FALSE(m.kernel_backend.empty());
}

TEST(SolverHandle, ErrorVsExactRequiresExactSolution) {
  auto opt = small_options("manufactured");
  api::session with_exact(opt);
  with_exact.solver().run(2);
  EXPECT_GT(with_exact.solver().error_vs_exact(), 0.0);
  EXPECT_GT(with_exact.solver().error_ek_vs_exact(), 0.0);

  api::session without(small_options("gaussian_pulse"));
  without.solver().run(1);
  EXPECT_THROW(without.solver().error_vs_exact(), std::logic_error);
}

// --------------------------------------------------------- masked scenarios --

TEST(Session, LshapeScenarioShapesThePartition) {
  auto opt = small_options("lshape");
  opt.mode = api::execution_mode::distributed;
  opt.n = 32;
  opt.sd_grid = 4;
  api::session session(opt);

  EXPECT_EQ(session.mask().num_active(), 12);  // 16 - top-right quadrant
  EXPECT_EQ(session.ownership().num_nodes(), 2);
  EXPECT_EQ(static_cast<int>(session.partition().size()), 16);
  // Inactive SDs (top-right quadrant of the 4x4 SD grid) park on node 0.
  const auto& t = session.sd_tiling();
  for (int r = 0; r < 2; ++r)
    for (int c = 2; c < 4; ++c)
      EXPECT_EQ(session.partition()[static_cast<std::size_t>(t.sd_at(r, c))], 0);
  EXPECT_GE(session.partition_balance(), 1.0);
}

TEST(Session, DistributionAccessorsThrowInSerialMode) {
  api::session session(small_options("manufactured"));
  EXPECT_THROW(session.sd_tiling(), std::logic_error);
  EXPECT_THROW(session.ownership(), std::logic_error);
  EXPECT_THROW(session.mask(), std::logic_error);
}

// Closed-loop balancing tests: the Fig. 14 experiment (imbalanced start on
// symmetric nodes converges within 3 iterations), heterogeneous clusters,
// and balancing wired to the real distributed solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "balance/balancer.hpp"
#include "balance/sim_driver.hpp"
#include "dist/dist_solver.hpp"
#include "model/capacity.hpp"
#include "nonlocal/serial_solver.hpp"
#include "support/stats.hpp"

namespace bal = nlh::balance;
namespace dist = nlh::dist;

namespace {

/// The paper's Fig. 14 starting point: 5x5 SDs, 4 nodes, highly imbalanced
/// (node 0 owns almost everything, the others one corner SD each).
dist::ownership_map fig14_start(const dist::tiling& t) {
  std::vector<int> owner(static_cast<std::size_t>(t.num_sds()), 0);
  owner[static_cast<std::size_t>(t.sd_at(0, t.sd_cols() - 1))] = 1;
  owner[static_cast<std::size_t>(t.sd_at(t.sd_rows() - 1, 0))] = 2;
  owner[static_cast<std::size_t>(t.sd_at(t.sd_rows() - 1, t.sd_cols() - 1))] = 3;
  return dist::ownership_map(t, 4, owner);
}

}  // namespace

TEST(SimBalancing, Fig14ConvergesWithinThreeIterations) {
  dist::tiling t(5, 5, 4, 1);
  auto own = fig14_start(t);
  bal::sim_balance_config cfg;
  cfg.steps_per_iteration = 4;
  cfg.max_iterations = 6;
  cfg.cov_tol = 0.08;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(4, 1.0);
  const auto log = bal::run_sim_balancing(t, own, cfg);

  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(log.back().converged);
  // The paper: "within 3 iterations ... nearly balanced". Our iterations
  // that actually move SDs must number <= 3.
  int balancing_iterations = 0;
  for (const auto& e : log) balancing_iterations += e.sds_moved > 0 ? 1 : 0;
  EXPECT_LE(balancing_iterations, 3);

  // Final distribution on symmetric nodes: 25 SDs over 4 nodes -> 6 or 7 each.
  const auto counts = own.sd_counts();
  for (int c : counts) {
    EXPECT_GE(c, 5);
    EXPECT_LE(c, 8);
  }
}

TEST(SimBalancing, SdCountConservedThroughout) {
  dist::tiling t(5, 5, 4, 1);
  auto own = fig14_start(t);
  bal::sim_balance_config cfg;
  cfg.max_iterations = 5;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(4, 1.0);
  const auto log = bal::run_sim_balancing(t, own, cfg);
  for (const auto& e : log) {
    int before = 0, after = 0;
    for (int c : e.sd_counts_before) before += c;
    for (int c : e.sd_counts_after) after += c;
    EXPECT_EQ(before, t.num_sds());
    EXPECT_EQ(after, t.num_sds());
  }
}

TEST(SimBalancing, CovDecreasesAcrossIterations) {
  dist::tiling t(6, 6, 4, 1);
  std::vector<int> owner(36, 0);
  for (int sd = 18; sd < 36; ++sd) owner[static_cast<std::size_t>(sd)] = 1 + (sd % 3);
  dist::ownership_map own(t, 4, owner);
  bal::sim_balance_config cfg;
  cfg.max_iterations = 6;
  cfg.cov_tol = 0.02;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(4, 1.0);
  const auto log = bal::run_sim_balancing(t, own, cfg);
  ASSERT_GE(log.size(), 2u);
  EXPECT_LT(log.back().busy_cov, log.front().busy_cov);
}

TEST(SimBalancing, HeterogeneousClusterGetsProportionalSds) {
  // 1:3 speed ratio on two nodes: the fast node should end up with roughly
  // three times the SDs.
  dist::tiling t(8, 8, 4, 1);
  std::vector<int> owner(64, 0);
  for (int sd = 0; sd < 64; ++sd)
    if (t.sd_col(sd) >= 4) owner[static_cast<std::size_t>(sd)] = 1;
  dist::ownership_map own(t, 2, owner);
  bal::sim_balance_config cfg;
  cfg.max_iterations = 8;
  cfg.cov_tol = 0.05;
  cfg.cluster.node_capacity = nlh::model::heterogeneous_cluster({1.0, 3.0});
  const auto log = bal::run_sim_balancing(t, own, cfg);
  const auto counts = own.sd_counts();
  // Ideal split: 16 / 48.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 1.0);
  (void)log;
}

TEST(SimBalancing, ContiguityPreservedAfterBalancing) {
  dist::tiling t(6, 6, 4, 1);
  auto own = fig14_start(dist::tiling(6, 6, 4, 1));
  bal::sim_balance_config cfg;
  cfg.max_iterations = 6;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(4, 1.0);
  bal::run_sim_balancing(t, own, cfg);
  for (int node = 0; node < 4; ++node) {
    const auto sds = own.sds_of(node);
    ASSERT_FALSE(sds.empty()) << node;
    std::vector<char> seen(static_cast<std::size_t>(t.num_sds()), 0);
    std::vector<int> stack{sds.front()};
    seen[static_cast<std::size_t>(sds.front())] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const auto& [d, nb] : t.neighbors(u))
        if (own.owner(nb) == node && !seen[static_cast<std::size_t>(nb)]) {
          seen[static_cast<std::size_t>(nb)] = 1;
          ++reached;
          stack.push_back(nb);
        }
    }
    EXPECT_EQ(reached, sds.size()) << "node " << node << " SP fragmented";
  }
}

TEST(SimBalancing, StepInterferenceTriggersRebalance) {
  // A node that slows down mid-run sheds SDs once the balancer sees its
  // busy time dominate.
  dist::tiling t(6, 6, 2, 1);
  std::vector<int> owner(36);
  for (int sd = 0; sd < 36; ++sd) owner[static_cast<std::size_t>(sd)] = t.sd_col(sd) / 3;
  dist::ownership_map own(t, 2, owner);
  bal::sim_balance_config cfg;
  cfg.max_iterations = 6;
  cfg.cov_tol = 0.03;
  // Node 0 at quarter speed for the whole window.
  cfg.cluster.node_capacity = nlh::model::heterogeneous_cluster({0.25, 1.0});
  bal::run_sim_balancing(t, own, cfg);
  const auto counts = own.sd_counts();
  EXPECT_LT(counts[0], counts[1]);
}

TEST(RealSolverBalancing, BusyDrivenMigrationKeepsSolutionCorrect) {
  // End-to-end on the real solver: measure busy fractions, run Algorithm 1
  // with dist_solver::migrate_sd as the migration callback, keep stepping,
  // and verify the solution still matches the serial reference.
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 3;
  cfg.sd_size = 6;
  cfg.epsilon_factor = 2;
  const dist::tiling t(3, 3, 6, 2);
  // Imbalanced start: node 0 owns 7 SDs, node 1 owns 2.
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 0, 0, 0, 0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.reset_busy_counters();
  solver.run(2);

  std::vector<double> busy{solver.busy_fraction(0), solver.busy_fraction(1)};
  auto own_copy = solver.owners();
  bal::balance_step(t, own_copy, busy, {}, [&](const bal::sd_move& m) {
    solver.migrate_sd(m.sd, m.to_node);
  });
  solver.reset_busy_counters();
  solver.run(2);

  nlh::nonlocal::solver_config scfg;
  scfg.n = 18;
  scfg.epsilon_factor = 2;
  scfg.num_steps = 4;
  nlh::nonlocal::serial_solver ref(scfg);
  ref.set_initial_condition();
  for (int k = 0; k < 4; ++k) ref.step(k);

  const auto mine = solver.gather();
  const auto& g = solver.grid();
  double maxdiff = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      maxdiff = std::max(maxdiff,
                         std::abs(mine[g.flat(i, j)] - ref.field()[g.flat(i, j)]));
  EXPECT_LT(maxdiff, 1e-11);
  // The ownership recorded in the solver matches the copy the balancer made.
  EXPECT_EQ(solver.owners().raw(), own_copy.raw());
}

TEST(BalanceStepContract, MigrateCallbackMatchesReportedMovesInOrder) {
  // The documented migrate-callback contract (balancer.hpp): exactly one
  // synchronous invocation per move, in exactly balance_report::moves
  // order, with identical values — the property the live auto_rebalancer
  // relies on to keep the solver's ownership in lockstep with the report.
  dist::tiling t(5, 5, 4, 1);
  auto own = fig14_start(t);
  const std::vector<double> busy{0.9, 0.1, 0.1, 0.1};

  std::vector<bal::sd_move> seen;
  const auto rep = bal::balance_step(t, own, busy, {},
                                     [&](const bal::sd_move& m) {
                                       seen.push_back(m);
                                     });

  ASSERT_FALSE(rep.moves.empty());
  ASSERT_EQ(seen.size(), rep.moves.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].sd, rep.moves[i].sd) << "callback order diverged at " << i;
    EXPECT_EQ(seen[i].from_node, rep.moves[i].from_node);
    EXPECT_EQ(seen[i].to_node, rep.moves[i].to_node);
    EXPECT_NE(seen[i].from_node, seen[i].to_node);
  }
}

TEST(BalanceStepContract, MaxMovesCapsMovesAndKeepsReportConsistent) {
  dist::tiling t(5, 5, 4, 1);
  const std::vector<double> busy{0.9, 0.1, 0.1, 0.1};

  // Uncapped run for reference: the imbalanced start needs many moves.
  auto own_free = fig14_start(t);
  const auto rep_free = bal::balance_step(t, own_free, busy, {});
  ASSERT_GT(rep_free.moves.size(), 3u);

  bal::balance_options opts;
  opts.max_moves = 3;
  auto own = fig14_start(t);
  int callbacks = 0;
  const auto rep = bal::balance_step(t, own, busy, opts,
                                     [&](const bal::sd_move&) { ++callbacks; });

  // The cap binds, the callback count matches, and the capped prefix is
  // exactly what the uncapped walk would have done first.
  EXPECT_EQ(rep.moves.size(), 3u);
  EXPECT_EQ(callbacks, 3);
  for (std::size_t i = 0; i < rep.moves.size(); ++i) {
    EXPECT_EQ(rep.moves[i].sd, rep_free.moves[i].sd);
    EXPECT_EQ(rep.moves[i].to_node, rep_free.moves[i].to_node);
  }
  // sd_counts_after reflects the capped ownership, conserving the total.
  EXPECT_EQ(rep.sd_counts_after, own.sd_counts());
  int total = 0;
  for (int c : rep.sd_counts_after) total += c;
  EXPECT_EQ(total, t.num_sds());
}

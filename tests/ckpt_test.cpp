// Tests for the src/ckpt/ subsystem (docs/checkpoint.md): frame codecs
// (bitwise-lossless round trips, incremental frames, compression of sparse
// change), the checkpoint_store, the LRU hibernation_manager, the
// dist_solver incremental checkpoint chain and the api-level
// hibernate -> restore -> run == uninterrupted-run guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <random>
#include <vector>

#include "api/batch.hpp"
#include "api/session.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/hibernation.hpp"
#include "ckpt/store.hpp"
#include "dist/dist_solver.hpp"

namespace api = nlh::api;
namespace ckpt = nlh::ckpt;
namespace dist = nlh::dist;
namespace net = nlh::net;

namespace {

// Bitwise equality, not numeric: distinguishes -0.0 from 0.0 and compares
// NaN payloads — the codec guarantee under test.
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool snapshot_has(const nlh::obs::metrics_snapshot& s, const std::string& name) {
  for (const auto& [k, v] : s.counters)
    if (k == name) return true;
  for (const auto& [k, v] : s.gauges)
    if (k == name) return true;
  for (const auto& [k, v] : s.histograms)
    if (k == name) return true;
  return false;
}

std::vector<double> awkward_values() {
  return {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1.0 / 3.0,
      std::numeric_limits<double>::min(),         // smallest normal
      std::numeric_limits<double>::denorm_min(),  // smallest denormal
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::epsilon(),
      6.02214076e23,
      -2.718281828459045e-100,
  };
}

std::vector<double> codec_round_trip(const ckpt::codec& c,
                                     const std::vector<double>& vals,
                                     const std::vector<double>* prev,
                                     ckpt::frame_stats* stats = nullptr) {
  net::archive_writer w;
  const auto s = c.encode(vals.data(), vals.size(),
                          prev ? prev->data() : nullptr, w);
  if (stats) *stats = s;
  EXPECT_EQ(s.raw_bytes, vals.size() * sizeof(double));
  const auto buf = w.take();
  EXPECT_EQ(s.encoded_bytes, buf.size());
  net::archive_reader r(buf);
  std::vector<double> out(vals.size());
  c.decode(r, out.data(), out.size(), prev ? prev->data() : nullptr);
  EXPECT_TRUE(r.exhausted()) << c.name() << ": frame is not self-delimiting";
  return out;
}

}  // namespace

// ------------------------------------------------------- codec primitives --

TEST(CkptCodecDetail, IeeeKeyIsAnOrderPreservingBijection) {
  using ckpt::detail::ieee_key;
  using ckpt::detail::ieee_unkey;
  const std::vector<double> ordered{
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::max(), -1.0,
      -std::numeric_limits<double>::denorm_min(), -0.0, 0.0,
      std::numeric_limits<double>::denorm_min(), 1.0,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    std::uint64_t bits_in, bits_out;
    std::memcpy(&bits_in, &ordered[i], 8);
    const double back = ieee_unkey(ieee_key(ordered[i]));
    std::memcpy(&bits_out, &back, 8);
    EXPECT_EQ(bits_in, bits_out);
    // Order preservation: -0.0 < 0.0 in key space is fine (distinct
    // keys); everything numerically ordered must stay ordered.
    if (i > 0 && ordered[i - 1] < ordered[i])
      EXPECT_LT(ieee_key(ordered[i - 1]), ieee_key(ordered[i]));
  }
  // Total on arbitrary bit patterns (NaNs included).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t nb, rb;
  std::memcpy(&nb, &nan, 8);
  const double rn = ieee_unkey(ieee_key(nan));
  std::memcpy(&rb, &rn, 8);
  EXPECT_EQ(nb, rb);
}

TEST(CkptCodecDetail, ZigzagVarintRoundTrip) {
  using namespace ckpt::detail;
  const std::vector<std::uint64_t> cases{
      0u, 1u, 2u, 127u, 128u, 16384u, static_cast<std::uint64_t>(-1),
      static_cast<std::uint64_t>(-2), 1ull << 62, (1ull << 63) - 1, 1ull << 63};
  net::archive_writer w;
  for (const auto v : cases) write_varint(w, zigzag(v));
  const auto buf = w.take();
  net::archive_reader r(buf);
  for (const auto v : cases) EXPECT_EQ(unzigzag(read_varint(r)), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(CkptCodecDetail, FixedPointLatticeAcceptsAndRejects) {
  using ckpt::detail::fixed_point_lattice;
  std::vector<std::int64_t> q;
  int scale = 0;
  const std::vector<double> on{0.0, 0.25, -1.5, 1024.0, 3.75};
  ASSERT_TRUE(fixed_point_lattice(on.data(), on.size(), q, scale));
  ASSERT_EQ(q.size(), on.size());
  for (std::size_t i = 0; i < on.size(); ++i)
    EXPECT_EQ(std::ldexp(static_cast<double>(q[i]), scale), on[i]);

  const std::vector<double> nan_frame{1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(fixed_point_lattice(nan_frame.data(), nan_frame.size(), q, scale));
  const std::vector<double> neg_zero{1.0, -0.0};
  EXPECT_FALSE(fixed_point_lattice(neg_zero.data(), neg_zero.size(), q, scale));
}

// ---------------------------------------------------------- codec framing --

TEST(CkptCodec, RegistryHasRawAndDelta) {
  const auto names = ckpt::codec_names();
  EXPECT_EQ(names, (std::vector<std::string>{"delta", "raw"}));
  for (const auto& n : names) {
    ASSERT_NE(ckpt::find_codec(n), nullptr);
    EXPECT_EQ(ckpt::find_codec(n)->name(), n);
  }
  EXPECT_EQ(ckpt::find_codec("zstd"), nullptr);
}

TEST(CkptCodec, EveryCodecRoundTripsAwkwardValuesBitwise) {
  const auto vals = awkward_values();
  for (const auto& name : ckpt::codec_names()) {
    const auto& c = *ckpt::find_codec(name);
    EXPECT_TRUE(same_bits(codec_round_trip(c, vals, nullptr), vals))
        << name << " (self-contained)";
    // Incremental frame against a baseline of the same awkward values,
    // shifted by one so most entries actually differ.
    auto prev = vals;
    std::rotate(prev.begin(), prev.begin() + 1, prev.end());
    EXPECT_TRUE(same_bits(codec_round_trip(c, vals, &prev), vals))
        << name << " (vs baseline)";
  }
}

TEST(CkptCodec, EveryCodecRoundTripsRandomFramesBitwise) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uni(-1e6, 1e6);
  for (const auto& name : ckpt::codec_names()) {
    const auto& c = *ckpt::find_codec(name);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{1000}}) {
      std::vector<double> vals(n), prev(n);
      for (auto& v : vals) v = uni(rng);
      for (auto& v : prev) v = uni(rng);
      EXPECT_TRUE(same_bits(codec_round_trip(c, vals, nullptr), vals))
          << name << " n=" << n;
      EXPECT_TRUE(same_bits(codec_round_trip(c, vals, &prev), vals))
          << name << " n=" << n << " (vs baseline)";
    }
  }
}

TEST(CkptCodec, DeltaUsesLatticeModeOnGridValues) {
  // Values on a dyadic lattice (what a forward-Euler field of lattice
  // initial data stays on for a while) take the fixed-point path.
  std::vector<double> vals(256);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<double>(static_cast<int>(i) - 100) * 0.125;
  ckpt::frame_stats s;
  EXPECT_TRUE(same_bits(codec_round_trip(ckpt::delta_codec(), vals, nullptr, &s),
                        vals));
  EXPECT_EQ(s.mode, 'f');

  // A NaN anywhere forces the IEEE-key fallback; still bitwise.
  vals[13] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(same_bits(codec_round_trip(ckpt::delta_codec(), vals, nullptr, &s),
                        vals));
  EXPECT_EQ(s.mode, 'b');
}

TEST(CkptCodec, DeltaCompressesZeroRunsAndSparseChange) {
  // Self-contained frame, mostly exact zeros: the RLE fast path must beat
  // raw by a wide margin (this is the compact-support far field).
  std::vector<double> vals(4096, 0.0);
  for (std::size_t i = 2000; i < 2032; ++i)
    vals[i] = static_cast<double>(i) * 0.25;
  ckpt::frame_stats s;
  EXPECT_TRUE(same_bits(codec_round_trip(ckpt::delta_codec(), vals, nullptr, &s),
                        vals));
  EXPECT_LT(s.encoded_bytes * 8, s.raw_bytes);  // > 8x on 99% zeros

  // Incremental frame where only a few entries moved since the baseline:
  // unchanged stretches are zero deltas and RLE away.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  std::vector<double> prev(4096);
  for (auto& v : prev) v = uni(rng);
  auto next = prev;
  for (std::size_t i = 100; i < 110; ++i) next[i] += 0.5;
  EXPECT_TRUE(same_bits(codec_round_trip(ckpt::delta_codec(), next, &prev, &s),
                        next));
  EXPECT_LT(s.encoded_bytes * 8, s.raw_bytes);
}

TEST(CkptCodec, RawIsExactlyPayloadPlusHeader) {
  std::vector<double> vals(100, 3.14);
  ckpt::frame_stats s;
  codec_round_trip(ckpt::raw_codec(), vals, nullptr, &s);
  EXPECT_EQ(s.mode, 'r');
  EXPECT_GE(s.encoded_bytes, vals.size() * sizeof(double));
  EXPECT_LE(s.encoded_bytes, vals.size() * sizeof(double) + 16);
}

// ------------------------------------------------------------------ store --

TEST(CkptStore, PutGetEraseRoundTrip) {
  // Purged on close, so reusing a fixed scratch path across runs is fine.
  ckpt::checkpoint_store store(std::filesystem::temp_directory_path() /
                               "nlh-ckpt-store-test");
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.contains("a"));

  net::byte_buffer blob;
  for (int i = 0; i < 300; ++i) blob.push_back(static_cast<std::byte>(i & 0xff));
  store.put("a", blob);
  store.put("b", net::byte_buffer(10, std::byte{0x5a}));
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store.bytes_on_disk(), 310u);

  auto back = store.acquire_buffer();
  store.get("a", back);
  EXPECT_EQ(back, blob);
  store.release_buffer(std::move(back));

  // Overwrite replaces, erase drops.
  store.put("a", net::byte_buffer(4, std::byte{1}));
  EXPECT_EQ(store.bytes_on_disk(), 14u);
  store.erase("a");
  EXPECT_FALSE(store.contains("a"));
  EXPECT_EQ(store.size(), 1u);
}

// ----------------------------------------------------- hibernation manager --

namespace {

/// Minimal "session" for manager unit tests: a vector of doubles that is
/// either resident or released.
struct fake_session {
  std::vector<double> state;
  bool resident = true;

  ckpt::hibernation_manager::callbacks callbacks() {
    ckpt::hibernation_manager::callbacks cb;
    cb.snapshot_and_release = [this](net::byte_buffer reuse) {
      net::archive_writer w(std::move(reuse));
      w.write(state);
      ckpt::snapshot_blob b;
      b.raw_bytes = state.size() * sizeof(double);
      b.bytes = w.take();
      state.clear();
      resident = false;
      return b;
    };
    cb.restore = [this](const net::byte_buffer& bytes) {
      net::archive_reader r(bytes);
      r.read_vector_into(state);
      resident = true;
    };
    return cb;
  }
};

}  // namespace

TEST(CkptHibernation, EvictsLeastRecentlyUsedParkedSession) {
  ckpt::hibernation_options opt;
  opt.resident_cap = 2;
  ckpt::hibernation_manager mgr(opt);

  fake_session a{{1.0}}, b{{2.0}}, c{{3.0}};
  mgr.add_session("a", a.callbacks());
  mgr.add_session("b", b.callbacks());
  EXPECT_EQ(mgr.resident_count(), 2u);
  EXPECT_EQ(mgr.hibernated_count(), 0u);

  // Registering a third parked session exceeds the cap: "a" is the LRU
  // (registered first, never touched since) and must go cold.
  mgr.add_session("c", c.callbacks());
  EXPECT_EQ(mgr.session_count(), 3u);
  EXPECT_EQ(mgr.resident_count(), 2u);
  EXPECT_TRUE(mgr.hibernated("a"));
  EXPECT_FALSE(a.resident);
  EXPECT_TRUE(b.resident);
  EXPECT_TRUE(c.resident);

  // Touch "b" (making "c" the LRU), then wake "a": "c" is evicted, not "b".
  mgr.activate("b");
  mgr.park("b");
  mgr.activate("a");
  mgr.park("a");
  EXPECT_TRUE(a.resident);
  EXPECT_EQ(a.state, std::vector<double>{1.0});
  EXPECT_TRUE(mgr.hibernated("c"));
  EXPECT_FALSE(c.resident);
  EXPECT_TRUE(b.resident);

  const auto st = mgr.current_stats();
  EXPECT_EQ(st.hibernates, 2u);
  EXPECT_EQ(st.restores, 1u);
  EXPECT_GT(st.bytes_raw, 0u);
  EXPECT_GT(st.bytes_encoded, 0u);
}

TEST(CkptHibernation, ActiveSessionsAreNeverEvicted) {
  ckpt::hibernation_options opt;
  opt.resident_cap = 1;
  ckpt::hibernation_manager mgr(opt);

  fake_session a{{1.0}}, b{{2.0}};
  mgr.add_session("a", a.callbacks());
  mgr.activate("a");  // pin
  mgr.add_session("b", b.callbacks());
  // "a" is active: the cap must fall on parked "b", even though "a" is
  // older.
  EXPECT_TRUE(a.resident);
  EXPECT_TRUE(mgr.hibernated("b"));

  mgr.park("a");
  EXPECT_FALSE(mgr.hibernate("missing"));
  EXPECT_TRUE(mgr.hibernate("a"));
  EXPECT_FALSE(mgr.hibernate("a"));  // already cold
  EXPECT_EQ(mgr.resident_count(), 0u);
  EXPECT_GT(mgr.store().bytes_on_disk(), 0u);
}

TEST(CkptHibernation, MetricsExposeCkptInstruments) {
  ckpt::hibernation_options opt;
  opt.resident_cap = 1;
  ckpt::hibernation_manager mgr(opt);
  fake_session a{{1.0, 2.0}}, b{{3.0}};
  mgr.add_session("a", a.callbacks());
  mgr.add_session("b", b.callbacks());
  mgr.activate("a");
  mgr.park("a");

  nlh::obs::metrics_snapshot snap;
  mgr.metrics_into(snap);
  for (const char* key :
       {"ckpt/hibernates", "ckpt/restores", "ckpt/bytes_raw",
        "ckpt/bytes_encoded", "ckpt/compression_ratio", "ckpt/sessions",
        "ckpt/resident", "ckpt/hibernated", "ckpt/bytes_on_disk",
        "ckpt/hibernate_seconds", "ckpt/restore_seconds"})
    EXPECT_TRUE(snapshot_has(snap, key)) << key;
}

TEST(CkptHibernation, OptionsValidateActionably) {
  ckpt::hibernation_options opt;
  EXPECT_TRUE(opt.validate().empty());
  opt.resident_cap = 0;
  EXPECT_NE(opt.validate().find("resident_cap"), std::string::npos);
  opt.resident_cap = 1;
  opt.codec = "zstd";
  EXPECT_NE(opt.validate().find("codec"), std::string::npos);
}

// --------------------------------------------- dist incremental checkpoints --

namespace {

dist::dist_config chain_config(const std::string& codec = "delta",
                               bool incremental = true) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  cfg.checkpoint.codec = codec;
  cfg.checkpoint.incremental = incremental;
  return cfg;
}

std::vector<double> run_and_gather(const net::byte_buffer& blob, int extra_steps,
                                   const dist::dist_config& cfg) {
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver s(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  s.restore(blob);
  if (extra_steps > 0) s.run(extra_steps);
  return s.gather();
}

}  // namespace

TEST(CkptIncremental, DeltaChainRestoresBitwiseEqualToFull) {
  const auto cfg = chain_config();
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.run(2);
  const auto c1 = solver.checkpoint();  // chain anchor: full frames
  solver.run(3);
  const auto c2 = solver.checkpoint();       // delta frames vs c1
  const auto full = solver.checkpoint_full();  // self-contained reference
  EXPECT_LT(c2.size(), full.size());  // the chain actually saved bytes

  // Restoring the chain (anchor, then delta) must land bitwise on the
  // same state as the self-contained snapshot.
  const dist::tiling t2(2, 2, 8, 2);
  dist::dist_solver chained(cfg, dist::ownership_map(t2, 2, {0, 0, 1, 1}));
  chained.restore(c1);
  chained.restore(c2);
  EXPECT_EQ(chained.current_step(), 5);
  EXPECT_TRUE(same_bits(chained.gather(), run_and_gather(full, 0, cfg)));
  EXPECT_TRUE(same_bits(chained.gather(), solver.gather()));

  // And continue identically.
  chained.run(4);
  solver.run(4);
  EXPECT_TRUE(same_bits(chained.gather(), solver.gather()));
}

TEST(CkptIncremental, EveryCodecMatchesRawSelfContainedState) {
  // checkpoint_full() through each codec restores to bitwise-identical
  // fields — codec choice is an encoding detail, never physics.
  std::vector<std::vector<double>> fields;
  for (const auto& codec : ckpt::codec_names()) {
    const auto cfg = chain_config(codec, false);
    const dist::tiling t(2, 2, 8, 2);
    dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
    solver.set_initial_condition();
    solver.run(4);
    fields.push_back(run_and_gather(solver.checkpoint_full(), 2, cfg));
  }
  for (std::size_t i = 1; i < fields.size(); ++i)
    EXPECT_TRUE(same_bits(fields[0], fields[i]));
}

TEST(CkptIncremental, MigratedSdFallsBackToFullFrameAndRestores) {
  const auto cfg = chain_config();
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.run(1);
  const auto c1 = solver.checkpoint();  // anchor
  solver.migrate_sd(0, 1);              // epoch bump: SD 0 diverges from anchor
  solver.run(2);
  const auto c2 = solver.checkpoint();  // SD 0 full frame, others delta

  const dist::tiling t2(2, 2, 8, 2);
  dist::dist_solver restored(cfg, dist::ownership_map(t2, 2, {0, 0, 1, 1}));
  restored.restore(c1);
  restored.restore(c2);
  EXPECT_EQ(restored.current_step(), 3);
  EXPECT_EQ(restored.owners().owner(0), 1);
  EXPECT_TRUE(same_bits(restored.gather(), solver.gather()));
  restored.run(2);
  solver.run(2);
  EXPECT_TRUE(same_bits(restored.gather(), solver.gather()));
}

// -------------------------------------------- api hibernate/restore bitwise --

namespace {

api::session_options small_options(api::execution_mode mode,
                                   const std::string& backend,
                                   const std::string& schedule,
                                   const std::string& codec) {
  api::session_options o;
  o.scenario = "gaussian_pulse";
  o.mode = mode;
  o.n = 16;
  o.epsilon_factor = 2;
  o.sd_grid = 2;
  o.nodes = 2;
  o.kernel_backend = backend;
  o.overlap_schedule = schedule;
  o.hibernation.enabled = true;
  o.hibernation.codec = codec;
  return o;
}

std::vector<double> uninterrupted_field(api::session_options o, int steps) {
  o.hibernation.enabled = false;
  api::session s(o);
  s.solver().run(steps);
  return s.solver().field();
}

}  // namespace

TEST(CkptSession, HibernateRestoreRunIsBitwiseInvisible) {
  // Sample the mode x backend x schedule x codec space (full sweep lives
  // in the nightly soak): each case must be bitwise equal to the
  // uninterrupted run.
  const struct {
    api::execution_mode mode;
    const char* backend;
    const char* schedule;
    const char* codec;
  } cases[] = {
      {api::execution_mode::serial, "scalar", "per_direction", "delta"},
      {api::execution_mode::serial, "simd", "per_direction", "raw"},
      {api::execution_mode::distributed, "scalar", "per_direction", "delta"},
      {api::execution_mode::distributed, "simd", "bulk_sync", "delta"},
      {api::execution_mode::distributed, "row_run", "coarse", "raw"},
  };
  for (const auto& c : cases) {
    const auto o = small_options(c.mode, c.backend, c.schedule, c.codec);
    api::session s(o);
    auto& h = s.solver();
    h.run(3);
    h.hibernate();
    EXPECT_TRUE(h.hibernated());
    h.run(4);  // transparent restore inside the stepping body
    EXPECT_FALSE(h.hibernated());
    EXPECT_EQ(h.current_step(), 7);
    EXPECT_TRUE(same_bits(h.field(), uninterrupted_field(o, 7)))
        << "mode=" << static_cast<int>(c.mode) << " backend=" << c.backend
        << " schedule=" << c.schedule << " codec=" << c.codec;
    const auto m = h.metrics();
    EXPECT_EQ(m.hibernates, 1u);
    EXPECT_EQ(m.restores, 1u);
  }
}

TEST(CkptSession, LockFreeAccessorsSurviveHibernation) {
  const auto o = small_options(api::execution_mode::distributed, "scalar",
                               "per_direction", "delta");
  api::session s(o);
  auto& h = s.solver();
  h.run(2);
  const auto n = h.grid().n();
  const auto dt = h.dt();
  const auto backend = h.backend();
  h.hibernate();
  // grid()/dt()/backend() are documented lock-free: they must not restore.
  EXPECT_EQ(h.grid().n(), n);
  EXPECT_EQ(h.dt(), dt);
  EXPECT_EQ(h.backend(), backend);
  EXPECT_TRUE(h.hibernated());
  // A solver-state reader does restore.
  EXPECT_EQ(h.current_step(), 2);
  EXPECT_FALSE(h.hibernated());
}

TEST(CkptSession, HibernateWithoutOptInThrows) {
  api::session_options o;
  o.n = 16;
  api::session s(o);
  EXPECT_THROW(s.solver().hibernate(), std::logic_error);
}

TEST(CkptSession, InvalidHibernationOptionsAreRejected) {
  api::session_options o;
  o.n = 16;
  o.hibernation.enabled = true;
  o.hibernation.codec = "zstd";
  try {
    api::session s(o);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hibernation.codec"),
              std::string::npos);
  }
}

// ------------------------------------------------- batch tenant hibernation --

TEST(CkptBatch, TenantsExceedResidentCapAndResumeBitwise) {
  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 2;
  bopt.hibernation.enabled = true;
  bopt.hibernation.resident_cap = 2;
  api::batch_runner runner(bopt);

  api::session_options so;
  so.scenario = "gaussian_pulse";
  so.n = 16;
  so.epsilon_factor = 2;

  // 8 persistent tenants, 4x the resident cap, 3 steps each.
  constexpr int kTenants = 8;
  for (int i = 0; i < kTenants; ++i) {
    api::batch_job job;
    job.options = so;
    job.num_steps = 3;
    job.session_key = "tenant-" + std::to_string(i);
    runner.submit(std::move(job));
  }
  runner.wait_all();
  ASSERT_NE(runner.hibernation(), nullptr);
  EXPECT_EQ(runner.tenant_count(), static_cast<std::size_t>(kTenants));
  EXPECT_EQ(runner.hibernation()->session_count(),
            static_cast<std::size_t>(kTenants));
  EXPECT_LE(runner.hibernation()->resident_count(),
            bopt.hibernation.resident_cap);
  EXPECT_GE(runner.hibernation()->hibernated_count(),
            static_cast<std::size_t>(kTenants) - bopt.hibernation.resident_cap);

  // Second job on tenant-0 (long hibernated by now): it must resume where
  // it stopped and stay bitwise equal to an uninterrupted 6-step run.
  std::vector<double> resumed;
  api::batch_job job;
  job.options = so;
  job.num_steps = 3;
  job.session_key = "tenant-0";
  job.on_complete = [&](api::session& s) { resumed = s.solver().field(); };
  auto fut = runner.submit(std::move(job));
  const auto res = fut.get();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.metrics.steps, 6);
  EXPECT_TRUE(same_bits(resumed, uninterrupted_field(so, 6)));

  const auto st = runner.hibernation()->current_stats();
  EXPECT_GE(st.hibernates, static_cast<std::uint64_t>(
                               kTenants - static_cast<int>(
                                              bopt.hibernation.resident_cap)));
  EXPECT_GE(st.restores, 1u);
  EXPECT_GT(st.bytes_raw, st.bytes_encoded);  // delta actually compressed

  // The runner's snapshot carries the ckpt/* view for the soak to grep.
  const auto snap = runner.metrics_snapshot();
  EXPECT_TRUE(snapshot_has(snap, "ckpt/hibernates"));
  EXPECT_TRUE(snapshot_has(snap, "api/batch/tenants"));
}

TEST(CkptBatch, SameKeyJobsRunSeriallyAndAccumulateSteps) {
  api::batch_options bopt;
  bopt.pool_threads = 4;
  bopt.max_concurrent_jobs = 4;
  bopt.hibernation.enabled = true;
  bopt.hibernation.resident_cap = 1;
  api::batch_runner runner(bopt);

  api::session_options so;
  so.scenario = "gaussian_pulse";
  so.n = 16;
  so.epsilon_factor = 2;

  // Many concurrent submissions against one key: serialized execution
  // means the final step counter is exactly the sum.
  std::vector<nlh::amt::future<api::batch_job_result>> futs;
  for (int i = 0; i < 6; ++i) {
    api::batch_job job;
    job.options = so;
    job.num_steps = 2;
    job.session_key = "shared";
    futs.push_back(runner.submit(std::move(job)));
  }
  int max_steps = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    max_steps = std::max(max_steps, r.metrics.steps);
  }
  EXPECT_EQ(max_steps, 12);
  EXPECT_EQ(runner.tenant_count(), 1u);
  EXPECT_EQ(runner.aggregate().total_steps, 12);
}

TEST(CkptBatch, EphemeralJobsIgnoreHibernation) {
  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 2;
  bopt.hibernation.enabled = true;
  bopt.hibernation.resident_cap = 1;
  api::batch_runner runner(bopt);

  api::session_options so;
  so.n = 16;
  api::batch_job job;
  job.options = so;
  job.num_steps = 2;  // no session_key
  const auto res = runner.submit(std::move(job)).get();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(runner.tenant_count(), 0u);
  EXPECT_EQ(runner.hibernation()->session_count(), 0u);
}

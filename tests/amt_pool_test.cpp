// Tests for the work-stealing thread pool, async/dataflow launch and
// busy-time accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "amt/async.hpp"
#include "amt/thread_pool.hpp"

namespace amt = nlh::amt;

TEST(ThreadPool, ExecutesPostedTasks) {
  amt::thread_pool pool(2);
  std::atomic<int> count{0};
  amt::promise<void> done;
  constexpr int n = 100;
  for (int i = 0; i < n; ++i)
    pool.post([&] {
      if (count.fetch_add(1) + 1 == n) done.set_value();
    });
  done.get_future().get();
  EXPECT_EQ(count.load(), n);
  EXPECT_GE(pool.tasks_executed(), static_cast<std::uint64_t>(n));
}

TEST(ThreadPool, AsyncReturnsValue) {
  amt::thread_pool pool(1);
  auto f = amt::async(pool, [](int a, int b) { return a + b; }, 20, 22);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AsyncVoid) {
  amt::thread_pool pool(1);
  std::atomic<bool> ran{false};
  auto f = amt::async(pool, [&] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, AsyncPropagatesException) {
  amt::thread_pool pool(1);
  auto f = amt::async(pool, []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, PaperListingOneWithAsync) {
  // Listing 1 of the paper executed on the mini-AMT runtime.
  amt::thread_pool pool(2);
  auto add = [](int one, int second) { return one + second; };
  auto a_add_b = amt::async(pool, add, 1, 2);
  auto c_add_d = amt::async(pool, add, 3, 4);
  const int result = a_add_b.get() + c_add_d.get();
  EXPECT_EQ(result, 10);
}

TEST(ThreadPool, NestedSpawnsComplete) {
  amt::thread_pool pool(2);
  std::atomic<int> leaf_count{0};
  amt::promise<void> done;
  constexpr int width = 8;
  for (int i = 0; i < width; ++i) {
    pool.post([&] {
      // Tasks spawned from workers go to the local deque (tests stealing).
      for (int j = 0; j < width; ++j)
        pool.post([&] {
          if (leaf_count.fetch_add(1) + 1 == width * width) done.set_value();
        });
    });
  }
  done.get_future().get();
  EXPECT_EQ(leaf_count.load(), width * width);
}

TEST(ThreadPool, HelpingWaitSingleThreadNoDeadlock) {
  // A single-threaded pool where the waited-on future depends on a queued
  // task; pool.wait must help execute it rather than deadlock.
  amt::thread_pool pool(1);
  amt::promise<int> p;
  auto chain = amt::async(pool, [&pool, &p] {
    pool.post([&p] { p.set_value(5); });
  });
  chain.get();
  auto f = p.get_future();
  pool.wait(f);
  EXPECT_EQ(f.get(), 5);
}

TEST(ThreadPool, DataflowRunsAfterDeps) {
  amt::thread_pool pool(2);
  amt::promise<int> p1, p2;
  std::vector<amt::future<int>> deps;
  deps.push_back(p1.get_future());
  deps.push_back(p2.get_future());
  auto f = amt::dataflow(pool, std::move(deps), [](std::vector<amt::future<int>> fs) {
    return fs[0].get() + fs[1].get();
  });
  EXPECT_FALSE(f.is_ready());
  p1.set_value(30);
  p2.set_value(12);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DataflowVoid) {
  amt::thread_pool pool(1);
  std::atomic<bool> ran{false};
  std::vector<amt::future<void>> deps;
  deps.push_back(amt::make_ready_future());
  auto f = amt::dataflow(pool, std::move(deps),
                         [&](std::vector<amt::future<void>>) { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, BusyTimeAccumulates) {
  amt::thread_pool pool(1);
  pool.reset_busy_time();
  auto f = amt::async(pool, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  f.get();
  EXPECT_GE(pool.busy_time_s(), 0.025);
  const double frac = pool.busy_fraction();
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0 + 1e-9);
}

TEST(ThreadPool, ResetBusyTimeZeroes) {
  amt::thread_pool pool(1);
  amt::async(pool, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }).get();
  EXPECT_GT(pool.busy_time_s(), 0.0);
  pool.reset_busy_time();
  EXPECT_DOUBLE_EQ(pool.busy_time_s(), 0.0);
}

TEST(ThreadPool, ManySmallTasksAcrossWorkers) {
  amt::thread_pool pool(4);
  std::atomic<long long> sum{0};
  std::vector<amt::future<void>> fs;
  fs.reserve(500);
  for (int i = 0; i < 500; ++i)
    fs.push_back(amt::async(pool, [&sum, i] { sum += i; }));
  amt::wait_all(fs);
  EXPECT_EQ(sum.load(), 500LL * 499 / 2);
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> executed{0};
  {
    amt::thread_pool pool(2);
    std::vector<amt::future<void>> fs;
    for (int i = 0; i < 50; ++i)
      fs.push_back(amt::async(pool, [&] { ++executed; }));
    amt::wait_all(fs);
  }  // destructor joins workers
  EXPECT_EQ(executed.load(), 50);
}

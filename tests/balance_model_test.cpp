// Unit tests for the load-balancing building blocks: eq. 8-10, the
// dependency tree and contiguity-preserving SD transfer.

#include <gtest/gtest.h>

#include <cmath>

#include "balance/balancer.hpp"
#include "balance/dependency_tree.hpp"
#include "balance/load_model.hpp"
#include "balance/render.hpp"
#include "balance/transfer.hpp"

namespace bal = nlh::balance;
namespace dist = nlh::dist;

// -------------------------------------------------------------- eq. 8-10 ----

TEST(LoadModel, PowerIsSdPerBusy) {
  const auto p = bal::compute_power({4, 8}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(LoadModel, IdleNodeGetsFiniteePower) {
  const auto p = bal::compute_power({0, 4}, {0.0, 1.0}, 1e-3);
  EXPECT_GT(p[0], 0.0);
  EXPECT_TRUE(std::isfinite(p[0]));
}

TEST(LoadModel, ExpectedSdsProportionalToPower) {
  // Node 1 twice as powerful: expects twice the SDs.
  const std::vector<int> counts{6, 6};
  const std::vector<double> power{1.0, 2.0};
  const auto e = bal::expected_sds(counts, power);
  EXPECT_DOUBLE_EQ(e[0], 4.0);
  EXPECT_DOUBLE_EQ(e[1], 8.0);
}

TEST(LoadModel, ExpectedSumsToTotal) {
  const std::vector<int> counts{3, 7, 2, 13};
  const std::vector<double> power{0.5, 1.5, 2.5, 0.1};
  const auto e = bal::expected_sds(counts, power);
  double sum = 0.0;
  for (double v : e) sum += v;
  EXPECT_NEAR(sum, 25.0, 1e-9);
}

TEST(LoadModel, ImbalanceSignConvention) {
  // Per the paper: positive -> node has less load than it can take.
  const std::vector<int> counts{2, 10};
  const std::vector<double> expected{6.0, 6.0};
  const auto imb = bal::load_imbalance(counts, expected);
  EXPECT_DOUBLE_EQ(imb[0], 4.0);   // under-loaded, should borrow
  EXPECT_DOUBLE_EQ(imb[1], -4.0);  // over-loaded, should lend
}

TEST(LoadModel, BalancedClusterHasZeroImbalance) {
  const std::vector<int> counts{5, 5, 5, 5};
  const auto p = bal::compute_power(counts, {1.0, 1.0, 1.0, 1.0});
  const auto e = bal::expected_sds(counts, p);
  const auto imb = bal::load_imbalance(counts, e);
  for (double v : imb) EXPECT_NEAR(v, 0.0, 1e-9);
}

// -------------------------------------------------------- dependency tree ----

TEST(DependencyTree, RootIsArgminImbalance) {
  const std::vector<std::vector<int>> adj{{1}, {0, 2}, {1}};
  const auto tree = bal::build_dependency_tree(adj, {1.0, -3.0, 2.0});
  EXPECT_EQ(tree.root, 1);
  EXPECT_EQ(tree.order.front(), 1);
}

TEST(DependencyTree, ParentBeforeChildren) {
  const std::vector<std::vector<int>> adj{{1, 2}, {0, 3}, {0}, {1}};
  const auto tree = bal::build_dependency_tree(adj, {-1.0, 0.0, 0.0, 0.0});
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(tree.order[i])] = i;
  for (int v = 0; v < 4; ++v) {
    if (tree.parent[static_cast<std::size_t>(v)] != -1)
      EXPECT_LT(pos[static_cast<std::size_t>(tree.parent[static_cast<std::size_t>(v)])],
                pos[static_cast<std::size_t>(v)]);
  }
}

TEST(DependencyTree, SpanningTreeCoversConnectedGraph) {
  const std::vector<std::vector<int>> adj{{1, 2, 3}, {0, 2}, {0, 1}, {0}};
  const auto tree = bal::build_dependency_tree(adj, {0, 0, 0, 0});
  EXPECT_EQ(tree.order.size(), 4u);
  int roots = 0;
  for (int v = 0; v < 4; ++v) roots += tree.parent[static_cast<std::size_t>(v)] == -1;
  EXPECT_EQ(roots, 1);
}

TEST(DependencyTree, DisconnectedNodesBecomeIsolatedRoots) {
  const std::vector<std::vector<int>> adj{{1}, {0}, {}};
  const auto tree = bal::build_dependency_tree(adj, {0.0, 0.0, 5.0});
  EXPECT_EQ(tree.order.size(), 3u);
  EXPECT_EQ(tree.parent[2], -1);
}

TEST(DependencyTree, PaperFig7Shape) {
  // Fig. 7: chain 1-2, 1-4, 4-3 (0-indexed: 0-1, 0-3, 3-2), root node 0,
  // expected order 0 -> {1,3} -> 2.
  const std::vector<std::vector<int>> adj{{1, 3}, {0}, {3}, {0, 2}};
  const auto tree = bal::build_dependency_tree(adj, {-5.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(tree.root, 0);
  EXPECT_EQ(tree.order[0], 0);
  EXPECT_EQ(tree.parent[2], 3);  // node 2 hangs off node 3
}

// ----------------------------------------------------------------- transfer ----

namespace {
dist::tiling make_tiling(int g = 5) { return dist::tiling(g, g, 4, 1); }

dist::ownership_map halves(const dist::tiling& t) {
  std::vector<int> owner(static_cast<std::size_t>(t.num_sds()), 0);
  for (int sd = 0; sd < t.num_sds(); ++sd)
    if (t.sd_col(sd) >= t.sd_cols() / 2) owner[static_cast<std::size_t>(sd)] = 1;
  return dist::ownership_map(t, 2, owner);
}
}  // namespace

TEST(Transfer, MovesRequestedCount) {
  auto t = make_tiling();
  auto own = halves(t);
  const auto before = own.sd_counts();
  const auto moves = bal::transfer_sds(t, own, 0, 1, 3);
  EXPECT_EQ(moves.size(), 3u);
  const auto after = own.sd_counts();
  EXPECT_EQ(after[0], before[0] - 3);
  EXPECT_EQ(after[1], before[1] + 3);
}

TEST(Transfer, ConservesTotalSds) {
  auto t = make_tiling();
  auto own = halves(t);
  bal::transfer_sds(t, own, 1, 0, 4);
  int total = 0;
  for (int c : own.sd_counts()) total += c;
  EXPECT_EQ(total, t.num_sds());
}

TEST(Transfer, OnlyFrontierSdsMove) {
  auto t = make_tiling();
  auto own = halves(t);
  const auto moves = bal::transfer_sds(t, own, 0, 1, 5);
  for (const auto& m : moves) {
    EXPECT_EQ(m.from_node, 0);
    EXPECT_EQ(m.to_node, 1);
  }
  // After moving the whole boundary layer the borrower's region is still a
  // single connected blob.
  EXPECT_TRUE(bal::removal_keeps_connected(t, own, own.sds_of(1).front(), 1) ||
              own.sds_of(1).size() == 1);
}

TEST(Transfer, PreservesLenderContiguity) {
  auto t = make_tiling();
  auto own = halves(t);
  bal::transfer_sds(t, own, 0, 1, 6);
  // Verify both SPs are connected via BFS over the SD grid.
  for (int node = 0; node < 2; ++node) {
    const auto sds = own.sds_of(node);
    ASSERT_FALSE(sds.empty());
    // Count components by repeated removal check: simplest is a direct BFS.
    std::vector<char> seen(static_cast<std::size_t>(t.num_sds()), 0);
    std::vector<int> stack{sds.front()};
    seen[static_cast<std::size_t>(sds.front())] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const auto& [d, nb] : t.neighbors(u))
        if (own.owner(nb) == node && !seen[static_cast<std::size_t>(nb)]) {
          seen[static_cast<std::size_t>(nb)] = 1;
          ++reached;
          stack.push_back(nb);
        }
    }
    EXPECT_EQ(reached, sds.size()) << "node " << node;
  }
}

TEST(Transfer, NeverEmptiesLender) {
  dist::tiling t(2, 2, 4, 1);
  dist::ownership_map own(t, 2, {0, 1, 1, 1});
  const auto moves = bal::transfer_sds(t, own, 0, 1, 10);
  EXPECT_TRUE(moves.empty());  // lender has one SD: nothing may move
  EXPECT_EQ(own.owner(0), 0);
}

TEST(Transfer, StopsWhenNotAdjacent) {
  // Nodes 0 and 2 are separated by node 1's strip: no direct transfer.
  dist::tiling t(3, 3, 4, 1);
  std::vector<int> owner{0, 1, 2, 0, 1, 2, 0, 1, 2};
  dist::ownership_map own(t, 3, owner);
  const auto moves = bal::transfer_sds(t, own, 0, 2, 2);
  EXPECT_TRUE(moves.empty());
}

TEST(Transfer, ScoreRejectsNonFrontier) {
  auto t = make_tiling();
  auto own = halves(t);  // node 1 owns columns >= 2
  // Column 0 is not adjacent to node 1's half; column 1 is the frontier.
  EXPECT_LT(bal::transfer_score(t, own, t.sd_at(0, 0), 0, 1), 0.0);
  EXPECT_GE(bal::transfer_score(t, own, t.sd_at(0, 1), 0, 1), 0.0);
}

// ----------------------------------------------------------------- balancer ----

TEST(BalanceStep, MovesFromSlowToFast) {
  auto t = make_tiling();
  auto own = halves(t);  // ~12 / 13 SDs
  // Node 1 is twice as fast (half the busy time for similar SD counts).
  const auto rep = bal::balance_step(t, own, {2.0, 1.0});
  EXPECT_GT(rep.moves.size(), 0u);
  const auto counts = own.sd_counts();
  EXPECT_GT(counts[1], counts[0]);
  // SD conservation.
  EXPECT_EQ(counts[0] + counts[1], t.num_sds());
}

TEST(BalanceStep, NoMovesWhenBalanced) {
  // Equal halves, equal busy times: power and expected counts match, so the
  // imbalance sits inside the deadband and nothing moves.
  dist::tiling t(4, 4, 4, 1);
  auto own = halves(t);
  ASSERT_EQ(own.sd_counts(), (std::vector<int>{8, 8}));
  const auto rep = bal::balance_step(t, own, {1.0, 1.0});
  EXPECT_TRUE(rep.moves.empty());
}

TEST(BalanceStep, ReportFieldsConsistent) {
  auto t = make_tiling();
  auto own = halves(t);
  const auto rep = bal::balance_step(t, own, {3.0, 1.0});
  EXPECT_EQ(rep.sd_counts_before.size(), 2u);
  EXPECT_EQ(rep.power.size(), 2u);
  EXPECT_EQ(rep.sd_counts_after, own.sd_counts());
  int before = 0, after = 0;
  for (int c : rep.sd_counts_before) before += c;
  for (int c : rep.sd_counts_after) after += c;
  EXPECT_EQ(before, after);
}

TEST(BalanceStep, MigrateCallbackSeesEveryMove) {
  auto t = make_tiling();
  auto own = halves(t);
  int callbacks = 0;
  const auto rep = bal::balance_step(t, own, {2.5, 1.0}, {},
                                     [&](const bal::sd_move&) { ++callbacks; });
  EXPECT_EQ(callbacks, static_cast<int>(rep.moves.size()));
}

TEST(BalanceStep, DeadbandSuppressesTinyMoves) {
  auto t = make_tiling();
  auto own = halves(t);
  bal::balance_options opts;
  opts.deadband = 100.0;  // everything within deadband
  const auto rep = bal::balance_step(t, own, {5.0, 1.0}, opts);
  EXPECT_TRUE(rep.moves.empty());
}

// ------------------------------------------------------------------ render ----

TEST(Render, OwnershipMapShape) {
  dist::tiling t(2, 3, 4, 1);
  dist::ownership_map own(t, 2, {0, 0, 1, 0, 1, 1});
  const auto s = bal::render_ownership(t, own);
  EXPECT_EQ(s, "001\n011\n");
}

TEST(Render, SideBySideContainsBoth) {
  dist::tiling t(2, 2, 4, 1);
  dist::ownership_map a(t, 2, {0, 0, 1, 1});
  dist::ownership_map b(t, 2, {0, 1, 0, 1});
  const auto s = bal::render_side_by_side(t, a, b);
  EXPECT_NE(s.find("00"), std::string::npos);
  EXPECT_NE(s.find("01"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

// Tests for the serializer, mailbox and comm_world distributed substrate.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <thread>

#include "amt/counters.hpp"
#include "net/comm_world.hpp"
#include "net/mailbox.hpp"
#include "net/serializer.hpp"

namespace net = nlh::net;

// ------------------------------------------------------------ serializer ----

TEST(Serializer, PodRoundTrip) {
  net::archive_writer w;
  w.write(42);
  w.write(3.25);
  w.write(static_cast<std::uint64_t>(1) << 40);
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_EQ(r.read<int>(), 42);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint64_t>(), static_cast<std::uint64_t>(1) << 40);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, StringRoundTrip) {
  net::archive_writer w;
  w.write(std::string("ghost zone"));
  w.write(std::string(""));
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_EQ(r.read_string(), "ghost zone");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, VectorRoundTrip) {
  net::archive_writer w;
  std::vector<double> strip{1.0, 2.5, -3.0};
  w.write(strip);
  w.write(std::vector<int>{});
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_EQ(r.read_vector<double>(), strip);
  EXPECT_TRUE(r.read_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, MixedPayload) {
  net::archive_writer w;
  w.write(7);
  w.write(std::vector<float>{1.5f, 2.5f});
  w.write(std::string("tag"));
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_EQ(r.read<int>(), 7);
  const auto v = r.read_vector<float>();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_FLOAT_EQ(v[1], 2.5f);
  EXPECT_EQ(r.read_string(), "tag");
}

TEST(Serializer, RemainingTracksCursor) {
  net::archive_writer w;
  w.write(1);
  w.write(2);
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_EQ(r.remaining(), 2 * sizeof(int));
  r.read<int>();
  EXPECT_EQ(r.remaining(), sizeof(int));
}

// --------------------------------------------- serializer property/fuzz ----

TEST(Serializer, RawAndByteRoundTrip) {
  net::archive_writer w;
  const char payload[] = {'g', 'h', 'o', 's', 't'};
  w.write_byte(0x7f);
  w.write_raw(payload, sizeof(payload));
  w.write_byte(0xff);
  w.write_raw(nullptr, 0);  // zero-length raw append is a no-op
  const auto buf = w.take();
  ASSERT_EQ(buf.size(), sizeof(payload) + 2);
  net::archive_reader r(buf);
  EXPECT_EQ(r.read_byte(), 0x7f);
  char back[sizeof(payload)];
  r.read_raw(back, sizeof(back));
  EXPECT_EQ(std::memcmp(back, payload, sizeof(payload)), 0);
  EXPECT_EQ(r.read_byte(), 0xff);
  r.read_raw(nullptr, 0);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, PropertyRandomVectorsRoundTrip) {
  // Deterministic fuzz: random-length vectors of mixed element types,
  // written in random interleavings, must read back exactly and leave the
  // cursor exhausted.
  std::mt19937_64 rng(20210521);
  std::uniform_int_distribution<int> len(0, 200);
  std::uniform_real_distribution<double> val(-1e12, 1e12);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> d(static_cast<std::size_t>(len(rng)));
    for (auto& v : d) v = val(rng);
    std::vector<int> i(static_cast<std::size_t>(len(rng)));
    for (auto& v : i) v = static_cast<int>(rng());
    std::string s(static_cast<std::size_t>(len(rng)), '\0');
    for (auto& c : s) c = static_cast<char>('a' + rng() % 26);

    net::archive_writer w;
    w.write(d);
    w.write(s);
    w.write(i);
    w.write(static_cast<std::uint64_t>(round));
    const auto buf = w.take();
    net::archive_reader r(buf);
    EXPECT_EQ(r.read_vector<double>(), d);
    EXPECT_EQ(r.read_string(), s);
    EXPECT_EQ(r.read_vector<int>(), i);
    EXPECT_EQ(r.read<std::uint64_t>(), static_cast<std::uint64_t>(round));
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Serializer, PooledReuseKeepsCapacityAndRoundTrips) {
  // The archive_writer(reuse) path: recycled buffers are cleared but keep
  // their capacity, and repeated cycles round-trip without drift.
  net::byte_buffer recycled;
  std::size_t warm_capacity = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    net::archive_writer w(std::move(recycled));
    std::vector<double> strip(64, 1.5 * cycle);
    w.write(strip);
    w.write(std::string("cycle-") + std::to_string(cycle));
    recycled = w.take();
    if (cycle == 0)
      warm_capacity = recycled.capacity();
    else
      EXPECT_GE(recycled.capacity(), warm_capacity);  // never shrinks
    net::archive_reader r(recycled);
    EXPECT_EQ(r.read_vector<double>(), strip);
    EXPECT_EQ(r.read_string(), "cycle-" + std::to_string(cycle));
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Serializer, TruncatedInputsDieWithUnderrun) {
  net::archive_writer w;
  w.write(std::vector<double>{1.0, 2.0, 3.0});
  w.write(std::string("tail"));
  const auto full = w.take();

  // Chop the buffer at every prefix length: any read past the cut must
  // abort with the underrun diagnostic, never scribble or wrap.
  const net::byte_buffer cut_vec(full.begin(), full.begin() + 12);
  net::archive_reader rv(cut_vec);
  EXPECT_DEATH(rv.read_vector<double>(), "underrun");

  const net::byte_buffer cut_str(full.begin(), full.end() - 2);
  net::archive_reader rs(cut_str);
  rs.read_vector<double>();
  EXPECT_DEATH(rs.read_string(), "underrun");

  const net::byte_buffer empty;
  net::archive_reader re(empty);
  EXPECT_DEATH(re.read_byte(), "underrun");
  char sink[4];
  net::archive_reader rr(empty);
  EXPECT_DEATH(rr.read_raw(sink, sizeof(sink)), "underrun");
}

TEST(Serializer, HostileVectorLengthCannotOverflowTheBoundsCheck) {
  // A corrupted length near 2^64 would wrap `n * sizeof(T)` past an
  // additive bounds check; the reader divides instead and must die.
  net::archive_writer w;
  w.write(std::numeric_limits<std::uint64_t>::max() - 2);
  w.write(3.0);  // a few real bytes so remaining() > 0
  const auto buf = w.take();
  net::archive_reader r(buf);
  EXPECT_DEATH(r.read_vector<double>(), "underrun");
}

// --------------------------------------------------------------- mailbox ----

net::byte_buffer make_payload(int v) {
  net::archive_writer w;
  w.write(v);
  return w.take();
}

int read_payload(const net::byte_buffer& b) {
  net::archive_reader r(b);
  return r.read<int>();
}

TEST(Mailbox, DeliverThenRecv) {
  net::mailbox mb;
  mb.deliver(1, 100, make_payload(5));
  auto f = mb.recv(1, 100);
  ASSERT_TRUE(f.is_ready());
  EXPECT_EQ(read_payload(f.get()), 5);
}

TEST(Mailbox, RecvThenDeliver) {
  net::mailbox mb;
  auto f = mb.recv(2, 7);
  EXPECT_FALSE(f.is_ready());
  mb.deliver(2, 7, make_payload(9));
  ASSERT_TRUE(f.is_ready());
  EXPECT_EQ(read_payload(f.get()), 9);
}

TEST(Mailbox, TagMismatchDoesNotMatch) {
  net::mailbox mb;
  auto f = mb.recv(1, 100);
  mb.deliver(1, 101, make_payload(1));  // different tag
  mb.deliver(2, 100, make_payload(2));  // different source
  EXPECT_FALSE(f.is_ready());
  EXPECT_EQ(mb.pending_messages(), 2u);
  mb.deliver(1, 100, make_payload(3));
  EXPECT_EQ(read_payload(f.get()), 3);
}

TEST(Mailbox, FifoPerKey) {
  net::mailbox mb;
  mb.deliver(0, 5, make_payload(1));
  mb.deliver(0, 5, make_payload(2));
  EXPECT_EQ(read_payload(mb.recv(0, 5).get()), 1);
  EXPECT_EQ(read_payload(mb.recv(0, 5).get()), 2);
}

TEST(Mailbox, MultipleWaiters) {
  net::mailbox mb;
  auto f1 = mb.recv(0, 1);
  auto f2 = mb.recv(0, 1);
  EXPECT_EQ(mb.pending_receives(), 2u);
  mb.deliver(0, 1, make_payload(10));
  mb.deliver(0, 1, make_payload(20));
  EXPECT_EQ(read_payload(f1.get()), 10);
  EXPECT_EQ(read_payload(f2.get()), 20);
  EXPECT_EQ(mb.pending_receives(), 0u);
}

TEST(Mailbox, CrossThreadDelivery) {
  net::mailbox mb;
  auto f = mb.recv(3, 42);
  std::thread t([&] { mb.deliver(3, 42, make_payload(77)); });
  EXPECT_EQ(read_payload(f.get()), 77);
  t.join();
}

// ------------------------------------------------------------ comm_world ----

TEST(CommWorld, SendRecvAcrossLocalities) {
  net::comm_world world(3);
  world.send(0, 2, 11, make_payload(123));
  auto f = world.recv(2, 0, 11);
  EXPECT_EQ(read_payload(f.get()), 123);
}

TEST(CommWorld, TrafficAccounting) {
  net::comm_world world(2);
  const auto payload = make_payload(1);
  const auto size = payload.size();
  world.send(0, 1, 1, make_payload(1));
  world.send(0, 1, 2, make_payload(2));
  world.send(1, 0, 3, make_payload(3));
  EXPECT_EQ(world.bytes_sent(0, 1), 2 * size);
  EXPECT_EQ(world.bytes_sent(1, 0), size);
  EXPECT_EQ(world.messages_sent(0, 1), 2u);
  EXPECT_EQ(world.total_bytes(), 3 * size);
  world.reset_traffic();
  EXPECT_EQ(world.total_bytes(), 0u);
}

TEST(CommWorld, SelfSendWorks) {
  net::comm_world world(1);
  world.send(0, 0, 9, make_payload(4));
  EXPECT_EQ(read_payload(world.recv(0, 0, 9).get()), 4);
}

TEST(CommWorld, ContinuationOnArrival) {
  net::comm_world world(2);
  std::atomic<int> seen{0};
  auto f = world.recv(1, 0, 5).then(
      [&](nlh::amt::future<net::byte_buffer> b) { seen = read_payload(b.get()); });
  EXPECT_EQ(seen.load(), 0);
  world.send(0, 1, 5, make_payload(31));
  f.get();
  EXPECT_EQ(seen.load(), 31);
}

TEST(CommWorld, ManyTagsInterleaved) {
  net::comm_world world(2);
  std::vector<nlh::amt::future<net::byte_buffer>> fs;
  for (int tag = 0; tag < 20; ++tag) fs.push_back(world.recv(1, 0, tag));
  // Deliver in reverse order: tags must still match.
  for (int tag = 19; tag >= 0; --tag) world.send(0, 1, tag, make_payload(tag));
  for (int tag = 0; tag < 20; ++tag)
    EXPECT_EQ(read_payload(fs[static_cast<std::size_t>(tag)].get()), tag);
}

// ------------------------------------------- per-source traffic counters ----

TEST(CommWorld, ResetTrafficFromClearsOnlyThatRow) {
  net::comm_world world(3);
  world.send(0, 1, 1, make_payload(1));
  world.send(0, 2, 2, make_payload(2));
  world.send(1, 2, 3, make_payload(3));
  world.send(2, 0, 4, make_payload(4));
  const auto payload_size = make_payload(0).size();

  ASSERT_EQ(world.bytes_from(0), 2 * payload_size);
  ASSERT_EQ(world.messages_from(0), 2u);

  world.reset_traffic_from(0);
  EXPECT_EQ(world.bytes_from(0), 0u);
  EXPECT_EQ(world.messages_from(0), 0u);
  // Other source rows are untouched, including the column pointing at 0.
  EXPECT_EQ(world.bytes_from(1), payload_size);
  EXPECT_EQ(world.messages_from(1), 1u);
  EXPECT_EQ(world.bytes_from(2), payload_size);
  EXPECT_EQ(world.bytes_sent(2, 0), payload_size);
  EXPECT_EQ(world.total_bytes(), 2 * payload_size);
}

TEST(CommWorld, ResetTrafficFromDoesNotDropMessages) {
  // Counters are observability only: a parked message must still be
  // receivable after its source row is reset.
  net::comm_world world(2);
  world.send(0, 1, 77, make_payload(9));
  world.reset_traffic_from(0);
  EXPECT_EQ(read_payload(world.recv(1, 0, 77).get()), 9);
}

TEST(CommWorld, RegisterCountersTrackAndResetPerLocality) {
  auto& reg = nlh::amt::counter_registry::instance();
  reg.clear();
  {
    net::comm_world world(2);
    world.register_counters();
    ASSERT_TRUE(reg.contains("/network{locality#0}/bytes-sent"));
    ASSERT_TRUE(reg.contains("/network{locality#0}/messages-sent"));
    ASSERT_TRUE(reg.contains("/network{locality#1}/bytes-sent"));
    ASSERT_TRUE(reg.contains("/network{locality#1}/messages-sent"));

    const auto payload_size = static_cast<double>(make_payload(0).size());
    world.send(0, 1, 1, make_payload(1));
    world.send(0, 1, 2, make_payload(2));
    world.send(1, 0, 3, make_payload(3));
    EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/bytes-sent"), 2 * payload_size);
    EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/messages-sent"), 2.0);
    EXPECT_DOUBLE_EQ(reg.value("/network{locality#1}/messages-sent"), 1.0);

    // Registry-driven reset clears the backing row (Algorithm 1 line 35
    // semantics for the networking counters).
    reg.reset("/network{locality#0}/bytes-sent");
    EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/bytes-sent"), 0.0);
    EXPECT_EQ(world.bytes_from(0), 0u);
    EXPECT_DOUBLE_EQ(reg.value("/network{locality#1}/messages-sent"), 1.0);
  }
  // Destruction unregisters every path the world installed.
  EXPECT_TRUE(reg.paths_matching("/network").empty());
  reg.clear();
}

TEST(CommWorld, RegisterCountersCustomPrefix) {
  auto& reg = nlh::amt::counter_registry::instance();
  reg.clear();
  net::comm_world world(3);
  world.register_counters("/ghost-net");
  EXPECT_EQ(reg.paths_matching("/ghost-net").size(), 6u);
  EXPECT_TRUE(reg.paths_matching("/network").empty());
  world.send(2, 1, 5, make_payload(6));
  EXPECT_DOUBLE_EQ(reg.value("/ghost-net{locality#2}/messages-sent"), 1.0);
  reg.clear();
}

// Tests for the AGAS-style performance-counter registry.

#include <gtest/gtest.h>

#include "amt/counters.hpp"
#include "amt/thread_pool.hpp"

namespace amt = nlh::amt;

class CounterRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { amt::counter_registry::instance().clear(); }
  void TearDown() override { amt::counter_registry::instance().clear(); }
};

TEST_F(CounterRegistryTest, RegisterAndRead) {
  auto& reg = amt::counter_registry::instance();
  double value = 1.5;
  reg.register_counter("/test/a", [&] { return value; }, [&] { value = 0.0; });
  EXPECT_TRUE(reg.contains("/test/a"));
  EXPECT_DOUBLE_EQ(reg.value("/test/a"), 1.5);
  value = 2.5;
  EXPECT_DOUBLE_EQ(reg.value("/test/a"), 2.5);
}

TEST_F(CounterRegistryTest, ResetInvokesHook) {
  auto& reg = amt::counter_registry::instance();
  double value = 9.0;
  reg.register_counter("/test/a", [&] { return value; }, [&] { value = 0.0; });
  reg.reset("/test/a");
  EXPECT_DOUBLE_EQ(reg.value("/test/a"), 0.0);
}

TEST_F(CounterRegistryTest, ResetMatchingSubstring) {
  auto& reg = amt::counter_registry::instance();
  double a = 1, b = 1, c = 1;
  reg.register_counter("/threads{locality#0}/busy_time", [&] { return a; }, [&] { a = 0; });
  reg.register_counter("/threads{locality#1}/busy_time", [&] { return b; }, [&] { b = 0; });
  reg.register_counter("/network/bytes", [&] { return c; }, [&] { c = 0; });
  // Algorithm 1 line 35: reset_all(busy_time).
  reg.reset_matching("busy_time");
  EXPECT_DOUBLE_EQ(a, 0.0);
  EXPECT_DOUBLE_EQ(b, 0.0);
  EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST_F(CounterRegistryTest, PathsMatching) {
  auto& reg = amt::counter_registry::instance();
  reg.register_counter("/x/one", [] { return 0.0; }, [] {});
  reg.register_counter("/x/two", [] { return 0.0; }, [] {});
  reg.register_counter("/y/one", [] { return 0.0; }, [] {});
  const auto xs = reg.paths_matching("/x/");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], "/x/one");
  EXPECT_EQ(xs[1], "/x/two");
  EXPECT_EQ(reg.paths_matching("").size(), 3u);
}

TEST_F(CounterRegistryTest, TryValueReadsRegisteredPath) {
  auto& reg = amt::counter_registry::instance();
  double value = 3.75;
  reg.register_counter("/test/a", [&] { return value; }, [&] { value = 0.0; });
  const auto v = reg.try_value("/test/a");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 3.75);
}

TEST_F(CounterRegistryTest, TryValueReturnsNulloptForMissingPath) {
  auto& reg = amt::counter_registry::instance();
  EXPECT_FALSE(reg.try_value("/never/registered").has_value());
  // The aborting accessor still aborts/throws by contract; the balancer
  // polls through try_value precisely to avoid racing unregister_counter.
  reg.register_counter("/test/gone", [] { return 1.0; }, [] {});
  EXPECT_TRUE(reg.try_value("/test/gone").has_value());
  reg.unregister_counter("/test/gone");
  EXPECT_FALSE(reg.try_value("/test/gone").has_value());
}

TEST_F(CounterRegistryTest, UnregisterRemoves) {
  auto& reg = amt::counter_registry::instance();
  reg.register_counter("/gone", [] { return 1.0; }, [] {});
  reg.unregister_counter("/gone");
  EXPECT_FALSE(reg.contains("/gone"));
}

TEST_F(CounterRegistryTest, BusyTimePathFormat) {
  EXPECT_EQ(amt::busy_time_path(3), "/threads{locality#3/total}/busy_time");
}

TEST_F(CounterRegistryTest, ThreadPoolRegistersBusyCounter) {
  auto& reg = amt::counter_registry::instance();
  {
    amt::thread_pool pool(1, /*locality=*/5);
    EXPECT_TRUE(reg.contains(amt::busy_time_path(5)));
    const double frac = reg.value(amt::busy_time_path(5));
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0 + 1e-9);
  }
  // Destruction unregisters.
  EXPECT_FALSE(reg.contains(amt::busy_time_path(5)));
}

TEST_F(CounterRegistryTest, PoolWithoutLocalityDoesNotRegister) {
  auto& reg = amt::counter_registry::instance();
  amt::thread_pool pool(1, -1);
  EXPECT_TRUE(reg.paths_matching("busy_time").empty());
}

TEST_F(CounterRegistryTest, RegistryResetViaPoolCounter) {
  auto& reg = amt::counter_registry::instance();
  amt::thread_pool pool(1, 0);
  reg.reset(amt::busy_time_path(0));  // must not crash; zeroes the interval
  EXPECT_GE(reg.value(amt::busy_time_path(0)), 0.0);
}

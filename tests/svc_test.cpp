// Tests for the src/svc/ QoS front-end (docs/service.md): class
// parsing/validation, the quota ledger's admit/delay/shed decisions under a
// test-controlled clock, deficit-round-robin dispatch order and deadline /
// drain shedding in class_scheduler, and the service_loop end-to-end
// contracts — interactive work is never starved behind a soak backlog,
// shed jobs fail fast with a distinct "shed (<reason>)" error, a tenant
// over its rate but under its in-flight cap is delayed rather than shed,
// graceful drain, and the deterministic traffic generator feeding it all.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "amt/thread_pool.hpp"
#include "svc/qos.hpp"
#include "svc/quota.hpp"
#include "svc/scheduler.hpp"
#include "svc/service.hpp"
#include "svc/traffic_gen.hpp"

namespace svc = nlh::svc;

namespace {

bool mentions(const std::vector<std::string>& errs, const std::string& needle) {
  return std::any_of(errs.begin(), errs.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

svc::svc_job small_job(int steps = 2, int n = 16) {
  svc::svc_job j;
  j.options.scenario = "manufactured";
  j.options.n = n;
  j.options.epsilon_factor = 2;
  j.options.num_steps = steps;
  j.num_steps = steps;
  return j;
}

}  // namespace

// ------------------------------------------------------------------ qos ---

TEST(Qos, NamesRoundTrip) {
  for (int c = 0; c < svc::qos_class_count; ++c) {
    const auto cls = static_cast<svc::qos_class>(c);
    const auto parsed = svc::parse_qos_class(svc::to_string(cls));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(svc::parse_qos_class("premium").has_value());
  EXPECT_FALSE(svc::parse_qos_class("").has_value());
}

TEST(Qos, ValidateCatchesEveryBadKnob) {
  svc::qos_config q;
  q.interactive.weight = 0;
  q.batch.queue_cap = 0;
  q.soak.deadline_seconds = -1.0;
  const auto errs = q.validate();
  EXPECT_TRUE(mentions(errs, "weight"));
  EXPECT_TRUE(mentions(errs, "queue_cap"));
  EXPECT_TRUE(mentions(errs, "deadline"));
  EXPECT_TRUE(svc::qos_config{}.validate().empty());
}

// ---------------------------------------------------------------- quota ---

TEST(Quota, AdmitsUpToBurstThenDelaysAtRateSpacedTimes) {
  svc::tenant_quota q;
  q.rate_per_second = 10.0;
  q.burst = 2.0;
  q.max_in_flight = 8;
  svc::quota_ledger ledger(q);

  // Fresh bucket starts full: two admits back-to-back.
  EXPECT_EQ(ledger.police("t", 0.0).action, svc::policing_decision::admit);
  EXPECT_EQ(ledger.police("t", 0.0).action, svc::policing_decision::admit);
  // Bucket empty: successive delays reserve rate-spaced future tokens.
  const auto d1 = ledger.police("t", 0.0);
  const auto d2 = ledger.police("t", 0.0);
  EXPECT_EQ(d1.action, svc::policing_decision::delay);
  EXPECT_EQ(d2.action, svc::policing_decision::delay);
  EXPECT_NEAR(d1.ready_at, 0.1, 1e-9);
  EXPECT_NEAR(d2.ready_at, 0.2, 1e-9);
  EXPECT_EQ(ledger.in_flight("t"), 4);
  EXPECT_EQ(ledger.admitted(), 2u);
  EXPECT_EQ(ledger.delayed(), 2u);

  // A second's refill pays the debt back and refills to burst.
  for (int i = 0; i < 4; ++i) ledger.release("t");
  EXPECT_EQ(ledger.in_flight("t"), 0);
  EXPECT_EQ(ledger.police("t", 1.0).action, svc::policing_decision::admit);
}

TEST(Quota, ShedsAtInFlightCapAndRecoversOnRelease) {
  svc::tenant_quota q;
  q.rate_per_second = 1e6;
  q.burst = 100.0;
  q.max_in_flight = 2;
  svc::quota_ledger ledger;
  ledger.set_quota("greedy", q);

  EXPECT_EQ(ledger.police("greedy", 0.0).action, svc::policing_decision::admit);
  EXPECT_EQ(ledger.police("greedy", 0.0).action, svc::policing_decision::admit);
  // At the cap: refused outright, and the refusal takes no in-flight slot.
  EXPECT_EQ(ledger.police("greedy", 0.0).action, svc::policing_decision::shed);
  EXPECT_EQ(ledger.in_flight("greedy"), 2);
  ledger.release("greedy");
  EXPECT_EQ(ledger.police("greedy", 0.0).action, svc::policing_decision::admit);
  EXPECT_EQ(ledger.shed(), 1u);
}

TEST(Quota, TenantsAreIndependent) {
  svc::tenant_quota q;
  q.rate_per_second = 10.0;
  q.burst = 1.0;
  q.max_in_flight = 8;
  svc::quota_ledger ledger(q);
  EXPECT_EQ(ledger.police("a", 0.0).action, svc::policing_decision::admit);
  EXPECT_EQ(ledger.police("a", 0.0).action, svc::policing_decision::delay);
  // Tenant b's bucket is untouched by a's debt.
  EXPECT_EQ(ledger.police("b", 0.0).action, svc::policing_decision::admit);
  EXPECT_EQ(ledger.tenant_count(), 2u);
}

TEST(Quota, ValidateCatchesBadLimits) {
  svc::tenant_quota q;
  q.rate_per_second = 0.0;
  q.burst = 0.0;
  q.max_in_flight = 0;
  const auto errs = q.validate();
  EXPECT_TRUE(mentions(errs, "rate_per_second"));
  EXPECT_TRUE(mentions(errs, "burst"));
  EXPECT_TRUE(mentions(errs, "max_in_flight"));
}

// ------------------------------------------------------------ scheduler ---

namespace {

/// One-slot scheduler over a one-thread pool with a manual clock and a
/// gate item blocking the slot, so a backlog can be enqueued and the
/// subsequent dispatch order observed deterministically.
struct sched_fixture {
  std::atomic<double> clock{0.0};
  std::atomic<bool> gate_open{false};
  nlh::amt::thread_pool pool{1};
  svc::class_scheduler sched;
  std::mutex order_mu;
  std::vector<svc::qos_class> order;

  explicit sched_fixture(svc::qos_config qos = {})
      : sched(svc::scheduler_options{std::move(qos), 1}, pool,
              [this] { return clock.load(); }) {}

  void enqueue_gate() {
    svc::sched_item gate;
    gate.cls = svc::qos_class::soak;
    gate.seq = 0;
    gate.run = [this] {
      while (!gate_open.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
    };
    gate.shed = [](const std::string&) {};
    ASSERT_EQ(sched.enqueue(std::move(gate)),
              svc::class_scheduler::enqueue_result::queued);
  }

  void enqueue_recording(svc::qos_class cls, std::uint64_t seq) {
    svc::sched_item item;
    item.cls = cls;
    item.seq = seq;
    item.run = [this, cls] {
      std::lock_guard<std::mutex> lk(order_mu);
      order.push_back(cls);
    };
    item.shed = [](const std::string&) {};
    ASSERT_EQ(sched.enqueue(std::move(item)),
              svc::class_scheduler::enqueue_result::queued);
  }
};

}  // namespace

TEST(Scheduler, DeficitRoundRobinServesClassesByWeight) {
  sched_fixture f;  // default weights 8:3:1, single slot
  f.enqueue_gate();
  std::uint64_t seq = 1;
  // Submission order deliberately inverts the priority order.
  for (int i = 0; i < 2; ++i) f.enqueue_recording(svc::qos_class::soak, seq++);
  for (int i = 0; i < 4; ++i) f.enqueue_recording(svc::qos_class::batch, seq++);
  for (int i = 0; i < 8; ++i)
    f.enqueue_recording(svc::qos_class::interactive, seq++);
  f.gate_open = true;
  f.sched.wait_idle();

  // Credits after the gate's dispatch: interactive 8, batch 3, soak 0.
  // Largest-balance-first dispatch runs interactive until its credit drops
  // to batch's (ties break by weight), then alternates the two down to
  // zero, then a top-up round serves the leftovers — the exact deficit
  // algebra, hand-simulated:
  //   i8..i3 (6x i), b3, i2, b2, i1, b1, [round] b, s, [round] s.
  using c = svc::qos_class;
  const std::vector<svc::qos_class> expect = {
      c::interactive, c::interactive, c::interactive, c::interactive,
      c::interactive, c::interactive, c::batch,       c::interactive,
      c::batch,       c::interactive, c::batch,       c::batch,
      c::soak,        c::soak};
  std::lock_guard<std::mutex> lk(f.order_mu);
  EXPECT_EQ(f.order, expect);
  EXPECT_EQ(f.sched.served(svc::qos_class::interactive), 8u);
  EXPECT_EQ(f.sched.served(svc::qos_class::batch), 4u);
  EXPECT_EQ(f.sched.served(svc::qos_class::soak), 3u);  // gate included
  EXPECT_GE(f.sched.rounds(), 2u);
}

TEST(Scheduler, FifoBaselineIgnoresClassEntirely) {
  svc::qos_config qos;
  qos.enabled = false;
  sched_fixture f(qos);
  f.enqueue_gate();
  std::uint64_t seq = 1;
  std::vector<svc::qos_class> submitted;
  const svc::qos_class pattern[] = {svc::qos_class::soak,
                                    svc::qos_class::interactive,
                                    svc::qos_class::batch};
  for (int i = 0; i < 9; ++i) {
    submitted.push_back(pattern[i % 3]);
    f.enqueue_recording(pattern[i % 3], seq++);
  }
  f.gate_open = true;
  f.sched.wait_idle();
  std::lock_guard<std::mutex> lk(f.order_mu);
  EXPECT_EQ(f.order, submitted);  // pure submission order
}

TEST(Scheduler, ExpiredInteractiveWorkIsShedNotRunLate) {
  svc::qos_config qos;
  qos.interactive.deadline_seconds = 0.5;
  sched_fixture f(qos);
  f.enqueue_gate();

  std::vector<std::string> shed_reasons;
  std::mutex shed_mu;
  for (int i = 0; i < 2; ++i) {
    svc::sched_item item;
    item.cls = svc::qos_class::interactive;
    item.seq = 10 + static_cast<std::uint64_t>(i);
    item.enqueued_s = f.clock.load();
    item.run = [] { FAIL() << "expired item must never run"; };
    item.shed = [&shed_mu, &shed_reasons](const std::string& reason) {
      std::lock_guard<std::mutex> lk(shed_mu);
      shed_reasons.push_back(reason);
    };
    ASSERT_EQ(f.sched.enqueue(std::move(item)),
              svc::class_scheduler::enqueue_result::queued);
  }
  // The deadline passes while the slot is blocked; the sweep at the next
  // pump sheds both without ever occupying the slot. Shed callbacks fire
  // outside the scheduler lock, so poll for them rather than racing
  // wait_idle against them.
  f.clock = 3.0;
  f.gate_open = true;
  f.sched.wait_idle();
  for (int i = 0; i < 2000; ++i) {
    f.sched.pump();
    {
      std::lock_guard<std::mutex> lk(shed_mu);
      if (shed_reasons.size() == 2u) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lk(shed_mu);
  ASSERT_EQ(shed_reasons.size(), 2u);
  EXPECT_EQ(shed_reasons[0], "expired");
  EXPECT_EQ(f.sched.shed_expired(), 2u);
}

TEST(Scheduler, QuotaDelayedItemsWaitForTheirReadyTime) {
  sched_fixture f;
  svc::sched_item item;
  item.cls = svc::qos_class::batch;
  item.seq = 1;
  item.ready_at_s = 100.0;  // far in the scheduler's future
  std::atomic<bool> ran{false};
  item.run = [&ran] { ran = true; };
  item.shed = [](const std::string&) {};
  ASSERT_EQ(f.sched.enqueue(std::move(item)),
            svc::class_scheduler::enqueue_result::queued);
  f.sched.pump();
  EXPECT_EQ(f.sched.queue_depth(svc::qos_class::batch), 1);
  EXPECT_FALSE(ran.load());
  f.clock = 100.5;
  f.sched.pump();
  f.sched.wait_idle();
  // wait_idle returns when the queue is empty; the pool task may still be
  // in flight for an instant.
  for (int i = 0; i < 1000 && !ran.load(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ran.load());
}

TEST(Scheduler, QueueCapRefusesAndDrainShedsTheBacklog) {
  svc::qos_config qos;
  qos.soak.queue_cap = 2;
  sched_fixture f(qos);
  f.enqueue_gate();  // occupies the slot; everything below stays queued

  int queued = 0, refused = 0, drained = 0;
  std::mutex mu;
  for (int i = 0; i < 4; ++i) {
    svc::sched_item item;
    item.cls = svc::qos_class::soak;
    item.seq = 1 + static_cast<std::uint64_t>(i);
    item.run = [] { FAIL() << "drained item must never run"; };
    item.shed = [&mu, &drained](const std::string& reason) {
      std::lock_guard<std::mutex> lk(mu);
      EXPECT_EQ(reason, "drained");
      ++drained;
    };
    const auto r = f.sched.enqueue(std::move(item));
    if (r == svc::class_scheduler::enqueue_result::queued)
      ++queued;
    else if (r == svc::class_scheduler::enqueue_result::queue_full)
      ++refused;
  }
  EXPECT_EQ(queued, 2);
  EXPECT_EQ(refused, 2);

  // Drain with the gate still blocking: the timeout expires, the backlog
  // is shed, and the report says one item is still running.
  const auto rep = f.sched.drain(0.05);
  EXPECT_EQ(rep.abandoned, 2);
  EXPECT_EQ(rep.in_flight, 1);
  EXPECT_EQ(rep.still_running, 1);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(drained, 2);
  EXPECT_TRUE(f.sched.draining());

  // Post-drain enqueues are refused.
  svc::sched_item late;
  late.cls = svc::qos_class::batch;
  late.run = [] {};
  late.shed = [](const std::string&) {};
  EXPECT_EQ(f.sched.enqueue(std::move(late)),
            svc::class_scheduler::enqueue_result::draining);

  f.gate_open = true;
  f.sched.wait_idle();
}

// -------------------------------------------------------------- service ---

TEST(Service, ValidatesOptionsWithActionableMessages) {
  svc::service_options bad;
  bad.pool_threads = 0;
  bad.max_concurrent = -1;
  bad.qos.interactive.weight = 0;
  bad.default_quota.burst = 0.0;
  const auto errs = svc::validate(bad);
  EXPECT_TRUE(mentions(errs, "pool_threads"));
  EXPECT_TRUE(mentions(errs, "max_concurrent"));
  EXPECT_TRUE(mentions(errs, "weight"));
  EXPECT_TRUE(mentions(errs, "burst"));
  EXPECT_THROW(svc::service_loop{bad}, std::invalid_argument);
}

TEST(Service, RunsJobsAndExportsTheSvcMetricsView) {
  svc::service_options opt;
  opt.pool_threads = 2;
  svc::service_loop loop(opt);
  std::vector<nlh::amt::future<svc::svc_result>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(loop.submit("tenant-a", svc::qos_class::interactive,
                               small_job()));
  futs.push_back(loop.submit("tenant-b", svc::qos_class::batch, small_job(3)));
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.shed);
    EXPECT_GT(r.metrics.steps, 0);
  }

  const auto st = loop.stats();
  EXPECT_EQ(st.of(svc::qos_class::interactive).completed, 3u);
  EXPECT_EQ(st.of(svc::qos_class::batch).completed, 1u);
  EXPECT_GT(st.of(svc::qos_class::interactive).step_latency.count, 0u);
  EXPECT_GT(st.jobs_per_second, 0.0);

  const auto snap = loop.metrics_snapshot();
  std::set<std::string> names;
  for (const auto& [n, v] : snap.counters) names.insert(n);
  for (const auto& [n, v] : snap.gauges) names.insert(n);
  for (const auto& [n, v] : snap.histograms) names.insert(n);
  for (const char* required :
       {"svc/interactive/submitted", "svc/interactive/completed",
        "svc/interactive/step_latency_seconds",
        "svc/interactive/queue_wait_seconds", "svc/batch/completed",
        "svc/soak/shed", "svc/quota/admitted", "svc/quota/delayed",
        "svc/quota/shed", "svc/quota/tenants", "svc/sched/served/interactive",
        "svc/sched/queue_depth/batch", "svc/sched/rounds", "svc/wall_seconds",
        "svc/jobs_per_second"})
    EXPECT_TRUE(names.count(required)) << "missing " << required;
}

TEST(Service, InvalidJobOptionsResolveTheFutureNotThrow) {
  svc::service_loop loop([] {
    svc::service_options o;
    o.pool_threads = 1;
    return o;
  }());
  svc::svc_job bad = small_job();
  bad.options.n = -4;
  const auto r = loop.submit("t", svc::qos_class::batch, bad).get();
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.shed);  // it ran and failed, it was not refused
  EXPECT_FALSE(r.error.empty());
}

TEST(Service, InteractiveIsNeverStarvedBehindASoakBacklog) {
  svc::service_options opt;
  opt.pool_threads = 2;
  // Wide-open quotas: this test isolates the scheduler.
  opt.default_quota.rate_per_second = 1e6;
  opt.default_quota.burst = 1e6;
  opt.default_quota.max_in_flight = 1 << 20;
  svc::service_loop loop(opt);

  std::vector<nlh::amt::future<svc::svc_result>> soak, interactive;
  for (int i = 0; i < 40; ++i)
    soak.push_back(loop.submit("bulk", svc::qos_class::soak, small_job(4)));
  // Submitted last, behind the entire backlog.
  for (int i = 0; i < 8; ++i)
    interactive.push_back(
        loop.submit("user", svc::qos_class::interactive, small_job(2)));

  for (auto& f : interactive) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.error;  // never shed, never starved
  }
  for (auto& f : soak) f.get();

  const auto st = loop.stats();
  EXPECT_EQ(st.of(svc::qos_class::interactive).completed, 8u);
  EXPECT_EQ(st.of(svc::qos_class::interactive).shed, 0u);
  // Weight 8 vs 1: the interactive jobs jumped the 40-deep soak queue, so
  // their average wait must sit well below the soak average.
  EXPECT_LT(st.of(svc::qos_class::interactive).queue_wait.mean,
            st.of(svc::qos_class::soak).queue_wait.mean);
}

TEST(Service, TenantAtInFlightCapIsShedFastWithADistinctError) {
  svc::service_options opt;
  opt.pool_threads = 1;
  svc::tenant_quota tight;
  tight.rate_per_second = 1e6;
  tight.burst = 100.0;
  tight.max_in_flight = 1;
  opt.tenant_quotas["greedy"] = tight;
  svc::service_loop loop(opt);

  auto f1 = loop.submit("greedy", svc::qos_class::batch, small_job(30, 32));
  auto f2 = loop.submit("greedy", svc::qos_class::batch, small_job());
  const auto r2 = f2.get();  // resolves immediately: refused, never queued
  EXPECT_TRUE(r2.shed);
  EXPECT_EQ(r2.error.rfind("shed (quota)", 0), 0u) << r2.error;
  EXPECT_NE(r2.error.find("greedy"), std::string::npos) << r2.error;
  EXPECT_TRUE(f1.get().ok);
  EXPECT_EQ(loop.stats().quota_shed, 1u);
}

TEST(Service, OverRateTenantUnderCapIsDelayedNotShed) {
  svc::service_options opt;
  opt.pool_threads = 2;
  svc::tenant_quota paced;
  paced.rate_per_second = 50.0;  // 20 ms between tokens once the burst is spent
  paced.burst = 1.0;
  paced.max_in_flight = 100;
  opt.tenant_quotas["pacer"] = paced;
  svc::service_loop loop(opt);

  std::vector<nlh::amt::future<svc::svc_result>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(loop.submit("pacer", svc::qos_class::batch, small_job()));
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.error;  // smoothed, not punished
    EXPECT_FALSE(r.shed);
  }
  const auto st = loop.stats();
  EXPECT_EQ(st.quota_shed, 0u);
  EXPECT_GE(st.quota_delayed, 3u);  // everything past the 1-token burst
}

TEST(Service, DrainFinishesInFlightAndShedsTheQueue) {
  svc::service_options opt;
  opt.pool_threads = 1;
  svc::service_loop loop(opt);

  std::vector<nlh::amt::future<svc::svc_result>> futs;
  for (int i = 0; i < 6; ++i)
    futs.push_back(loop.submit("t", svc::qos_class::batch, small_job(30, 32)));
  const auto rep = loop.drain(30.0);
  EXPECT_TRUE(rep.clean());
  EXPECT_GE(rep.abandoned, 1);

  int ok = 0, drained = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.ok) ++ok;
    if (r.shed) {
      EXPECT_EQ(r.error.rfind("shed (drained)", 0), 0u) << r.error;
      ++drained;
    }
  }
  EXPECT_GE(ok, 1);                 // the in-flight job finished
  EXPECT_EQ(drained, rep.abandoned);
  EXPECT_EQ(ok + drained, 6);

  // Admission stays closed after the drain.
  const auto late = loop.submit("t", svc::qos_class::batch, small_job()).get();
  EXPECT_TRUE(late.shed);
  EXPECT_EQ(late.error.rfind("shed (draining)", 0), 0u) << late.error;
}

// -------------------------------------------------------------- traffic ---

TEST(Traffic, TraceIsAPureFunctionOfItsSeed) {
  svc::traffic_options opt;
  opt.seed = 7;
  opt.arrivals = 500;
  const auto a = svc::generate_traffic(opt);
  const auto b = svc::generate_traffic(opt);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(svc::trace_checksum(a), svc::trace_checksum(b));

  opt.seed = 8;
  EXPECT_NE(svc::trace_checksum(a),
            svc::trace_checksum(svc::generate_traffic(opt)));
}

TEST(Traffic, ArrivalTimesIncreaseAndMixMatchesTheFractions) {
  svc::traffic_options opt;
  opt.seed = 42;
  opt.arrivals = 2000;
  opt.interactive_fraction = 0.5;
  opt.batch_fraction = 0.3;
  opt.tenants = 5;
  const auto trace = svc::generate_traffic(opt);
  ASSERT_EQ(trace.size(), 2000u);

  int per_class[svc::qos_class_count] = {};
  std::set<std::string> tenants;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) EXPECT_GT(trace[i].t, trace[i - 1].t);
    ++per_class[static_cast<int>(trace[i].cls)];
    tenants.insert(trace[i].tenant);
    EXPECT_EQ(trace[i].id, i);
  }
  EXPECT_EQ(tenants.size(), 5u);
  const double fi = per_class[0] / 2000.0, fb = per_class[1] / 2000.0;
  EXPECT_NEAR(fi, 0.5, 0.05);
  EXPECT_NEAR(fb, 0.3, 0.05);
  // Per-class step budgets rode along.
  for (const auto& a : trace) {
    const int expect = a.cls == svc::qos_class::interactive ? opt.steps_interactive
                       : a.cls == svc::qos_class::batch     ? opt.steps_batch
                                                            : opt.steps_soak;
    EXPECT_EQ(a.job.num_steps, expect);
  }
}

TEST(Traffic, ValidateRejectsAnEmptyOrNonsenseLoad) {
  svc::traffic_options opt;
  opt.arrivals = 0;
  opt.duration_seconds = 0.0;
  EXPECT_FALSE(opt.validate().empty());
  EXPECT_THROW(svc::generate_traffic(opt), std::invalid_argument);
  opt.arrivals = 10;
  opt.burst_factor = 0.5;
  EXPECT_TRUE(mentions(opt.validate(), "burst_factor"));
}

TEST(Traffic, ReplayDrivesTheServiceToATerminalStateForEveryArrival) {
  svc::traffic_options topt;
  topt.seed = 3;
  topt.arrivals = 60;
  topt.n = 16;
  const auto trace = svc::generate_traffic(topt);

  svc::service_options sopt;
  sopt.pool_threads = 2;
  svc::service_loop loop(sopt);
  auto futs = svc::replay(loop, trace, /*time_scale=*/0.0);
  ASSERT_EQ(futs.size(), trace.size());
  int terminal = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    EXPECT_EQ(r.label, trace[i].job.label);
    EXPECT_TRUE(r.ok || r.shed || !r.error.empty());
    ++terminal;
  }
  EXPECT_EQ(terminal, 60);
  const auto st = loop.stats();
  std::uint64_t accounted = 0;
  for (int c = 0; c < svc::qos_class_count; ++c) {
    const auto& cs = st.per_class[static_cast<std::size_t>(c)];
    accounted += cs.completed + cs.failed + cs.shed;
    EXPECT_EQ(cs.submitted, cs.completed + cs.failed + cs.shed);
  }
  EXPECT_EQ(accounted, 60u);
}

// Tests for capacity traces and the deterministic event queue.

#include <gtest/gtest.h>

#include <vector>

#include "sim/capacity_trace.hpp"
#include "sim/event_queue.hpp"

namespace sim = nlh::sim;

// --------------------------------------------------------- capacity_trace ----

TEST(CapacityTrace, ConstantSpeed) {
  auto t = sim::capacity_trace::constant(2.0);
  EXPECT_DOUBLE_EQ(t.speed_at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.speed_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(t.work_done(1.0, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(t.finish_time(1.0, 4.0), 3.0);
}

TEST(CapacityTrace, ZeroWorkFinishesImmediately) {
  auto t = sim::capacity_trace::constant(1.0);
  EXPECT_DOUBLE_EQ(t.finish_time(5.0, 0.0), 5.0);
}

TEST(CapacityTrace, StepChange) {
  sim::capacity_trace t;
  t.add_segment(0.0, 1.0);
  t.add_segment(10.0, 0.5);  // half speed from t=10
  EXPECT_DOUBLE_EQ(t.speed_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(t.speed_at(10.0), 0.5);
  // 8 units starting at t=6: 4 at speed 1 (6..10), 4 at 0.5 (10..18).
  EXPECT_DOUBLE_EQ(t.finish_time(6.0, 8.0), 18.0);
  EXPECT_DOUBLE_EQ(t.work_done(6.0, 18.0), 8.0);
}

TEST(CapacityTrace, WorkDoneAcrossManySegments) {
  sim::capacity_trace t;
  t.add_segment(0.0, 1.0);
  t.add_segment(1.0, 2.0);
  t.add_segment(2.0, 3.0);
  EXPECT_DOUBLE_EQ(t.work_done(0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(t.work_done(0.5, 2.5), 0.5 + 2.0 + 1.5);
}

TEST(CapacityTrace, FinishInLaterSegment) {
  sim::capacity_trace t;
  t.add_segment(0.0, 0.0);   // stalled
  t.add_segment(5.0, 2.0);   // then fast
  EXPECT_DOUBLE_EQ(t.finish_time(0.0, 4.0), 7.0);
}

TEST(CapacityTrace, WorkDoneEmptyInterval) {
  auto t = sim::capacity_trace::constant(3.0);
  EXPECT_DOUBLE_EQ(t.work_done(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(t.work_done(3.0, 2.0), 0.0);
}

TEST(CapacityTrace, FinishConsistentWithWorkDone) {
  sim::capacity_trace t;
  t.add_segment(0.0, 1.5);
  t.add_segment(4.0, 0.25);
  t.add_segment(9.0, 3.0);
  for (double start : {0.0, 2.0, 4.5, 8.0, 12.0}) {
    for (double work : {0.1, 1.0, 5.0, 20.0}) {
      const double fin = t.finish_time(start, work);
      EXPECT_NEAR(t.work_done(start, fin), work, 1e-9)
          << "start=" << start << " work=" << work;
    }
  }
}

// ------------------------------------------------------------ event_queue ----

TEST(EventQueue, PopsInTimeOrder) {
  sim::event_queue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertion) {
  sim::event_queue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(0); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  sim::event_queue q;
  std::vector<double> times;
  q.push(1.0, [&] {
    times.push_back(q.now());
    q.push(2.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EventQueue, StepExecutesOne) {
  sim::event_queue q;
  int count = 0;
  q.push(1.0, [&] { ++count; });
  q.push(2.0, [&] { ++count; });
  q.step();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, ClockMonotone) {
  sim::event_queue q;
  double last = -1.0;
  bool monotone = true;
  for (int i = 20; i > 0; --i)
    q.push(static_cast<double>(i), [&, i] {
      if (q.now() < last) monotone = false;
      last = q.now();
    });
  q.run();
  EXPECT_TRUE(monotone);
}

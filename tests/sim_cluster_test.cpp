// Tests for the virtual-time cluster simulator (DAG scheduling, network
// model, busy accounting).

#include <gtest/gtest.h>

#include "sim/cluster_sim.hpp"

namespace sim = nlh::sim;

TEST(ClusterSim, SingleTask) {
  sim::cluster_sim cs(1, 1);
  cs.set_speed(0, 2.0);
  const int t = cs.add_task(0, 10.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_start(t), 0.0);
  EXPECT_DOUBLE_EQ(cs.task_finish(t), 5.0);
  EXPECT_DOUBLE_EQ(cs.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(cs.node_busy_time(0), 5.0);
}

TEST(ClusterSim, SerialChain) {
  sim::cluster_sim cs(1, 1);
  const int a = cs.add_task(0, 1.0);
  const int b = cs.add_task(0, 2.0, {a});
  const int c = cs.add_task(0, 3.0, {b});
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_finish(c), 6.0);
}

TEST(ClusterSim, TwoCoresRunInParallel) {
  sim::cluster_sim cs(1, 2);
  cs.add_task(0, 4.0);
  cs.add_task(0, 4.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.makespan(), 4.0);
  EXPECT_DOUBLE_EQ(cs.node_busy_time(0), 8.0);
}

TEST(ClusterSim, OneCoreSerializes) {
  sim::cluster_sim cs(1, 1);
  cs.add_task(0, 4.0);
  cs.add_task(0, 4.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.makespan(), 8.0);
}

TEST(ClusterSim, PerfectStrongScalingWithoutComm) {
  // N independent equal tasks on k nodes: makespan = N*w/k.
  for (int nodes : {1, 2, 4}) {
    sim::cluster_sim cs(nodes, 1);
    for (int i = 0; i < 16; ++i) cs.add_task(i % nodes, 1.0);
    cs.run();
    EXPECT_DOUBLE_EQ(cs.makespan(), 16.0 / nodes) << nodes << " nodes";
  }
}

TEST(ClusterSim, MessageAddsTransferTime) {
  sim::cluster_sim cs(2, 1);
  sim::network_model net;
  net.latency_s = 0.5;
  net.bandwidth_bytes_per_s = 100.0;
  cs.set_network(net);
  const int a = cs.add_task(0, 1.0);
  const int b = cs.add_task(1, 1.0);
  cs.add_message(a, b, 200.0);  // 0.5 + 200/100 = 2.5 transfer
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_start(b), 1.0 + 2.5);
  EXPECT_DOUBLE_EQ(cs.network_bytes(), 200.0);
  EXPECT_EQ(cs.network_messages(), 1);
}

TEST(ClusterSim, IntraNodeMessageIsFree) {
  sim::cluster_sim cs(1, 2);
  sim::network_model net;
  net.latency_s = 10.0;
  cs.set_network(net);
  const int a = cs.add_task(0, 1.0);
  const int b = cs.add_task(0, 1.0);
  cs.add_message(a, b, 1e9);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_start(b), 1.0);  // no transfer cost on-node
  EXPECT_DOUBLE_EQ(cs.network_bytes(), 0.0);
}

TEST(ClusterSim, SlowNodeTakesLonger) {
  sim::cluster_sim cs(2, 1);
  cs.set_speed(0, 1.0);
  cs.set_speed(1, 0.5);
  const int a = cs.add_task(0, 4.0);
  const int b = cs.add_task(1, 4.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_finish(a), 4.0);
  EXPECT_DOUBLE_EQ(cs.task_finish(b), 8.0);
}

TEST(ClusterSim, CapacityTraceSlowdownMidTask) {
  sim::cluster_sim cs(1, 1);
  sim::capacity_trace trace;
  trace.add_segment(0.0, 2.0);
  trace.add_segment(2.0, 1.0);
  cs.set_capacity(0, trace);
  // 6 units: 4 in [0,2) at speed 2, remaining 2 at speed 1 -> finish 4.
  const int t = cs.add_task(0, 6.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_finish(t), 4.0);
}

TEST(ClusterSim, DiamondDependency) {
  sim::cluster_sim cs(1, 2);
  const int a = cs.add_task(0, 1.0);
  const int b = cs.add_task(0, 2.0, {a});
  const int c = cs.add_task(0, 3.0, {a});
  const int d = cs.add_task(0, 1.0, {b, c});
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_start(d), 4.0);  // after the slower branch
  EXPECT_DOUBLE_EQ(cs.makespan(), 5.0);
}

TEST(ClusterSim, ZeroWorkSinkTask) {
  sim::cluster_sim cs(1, 1);
  const int a = cs.add_task(0, 2.0);
  const int s = cs.add_task(0, 0.0, {a});
  cs.run();
  EXPECT_DOUBLE_EQ(cs.task_finish(s), 2.0);
  // Zero-duration tasks do not pollute busy accounting.
  EXPECT_DOUBLE_EQ(cs.node_busy_time(0), 2.0);
}

TEST(ClusterSim, BusyWindowClipping) {
  sim::cluster_sim cs(1, 1);
  cs.add_task(0, 10.0);
  cs.run();
  EXPECT_DOUBLE_EQ(cs.node_busy_in_window(0, 2.0, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(cs.node_busy_in_window(0, 8.0, 20.0), 2.0);
  EXPECT_DOUBLE_EQ(cs.node_busy_fraction(0, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.node_busy_fraction(0, 0.0, 20.0), 0.5);
}

TEST(ClusterSim, ReadyOrderDeterministicOnTies) {
  sim::cluster_sim cs(1, 1);
  const int a = cs.add_task(0, 1.0);
  const int b = cs.add_task(0, 1.0);
  cs.run();
  // Same ready time: lower id first.
  EXPECT_LT(cs.task_start(a), cs.task_start(b));
}

TEST(ClusterSim, CommBoundVsComputeBound) {
  // When transfer dominates, adding nodes stops helping — the crossover the
  // paper's Fig. 13 deviation embodies.
  auto makespan_for = [](double bytes) {
    sim::cluster_sim cs(2, 1);
    sim::network_model net;
    net.latency_s = 0.0;
    net.bandwidth_bytes_per_s = 1.0;
    cs.set_network(net);
    const int a = cs.add_task(0, 1.0);
    const int b = cs.add_task(1, 1.0);
    const int c = cs.add_task(1, 1.0, {});
    cs.add_message(a, c, bytes);
    (void)b;
    cs.run();
    return cs.makespan();
  };
  EXPECT_LT(makespan_for(0.1), makespan_for(100.0));
}

// Tests for the workload / capacity models: crack geometry and capacity
// trace builders.

#include <gtest/gtest.h>

#include "model/capacity.hpp"
#include "model/crack.hpp"

namespace model = nlh::model;
namespace dist = nlh::dist;

// ------------------------------------------------------------------ crack ----

TEST(Crack, SegmentRectIntersection) {
  const model::crack_line diag{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(model::segment_intersects_rect(diag, 0.4, 0.4, 0.6, 0.6));
  EXPECT_FALSE(model::segment_intersects_rect(diag, 0.8, 0.0, 1.0, 0.2));
  const model::crack_line horiz{0.1, 0.5, 0.9, 0.5};
  EXPECT_TRUE(model::segment_intersects_rect(horiz, 0.0, 0.4, 0.3, 0.6));
  EXPECT_FALSE(model::segment_intersects_rect(horiz, 0.0, 0.6, 1.0, 0.9));
}

TEST(Crack, EndpointInsideCounts) {
  const model::crack_line c{0.5, 0.5, 0.55, 0.55};
  EXPECT_TRUE(model::segment_intersects_rect(c, 0.4, 0.4, 0.6, 0.6));
}

TEST(Crack, DegenerateSegmentIsPoint) {
  const model::crack_line c{0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(model::segment_intersects_rect(c, 0.4, 0.4, 0.6, 0.6));
  EXPECT_FALSE(model::segment_intersects_rect(c, 0.6, 0.6, 0.8, 0.8));
}

TEST(Crack, HorizontalCrackScalesMiddleRow) {
  dist::tiling t(5, 5, 4, 1);
  const model::crack_line c{0.05, 0.5, 0.95, 0.5};  // through SD row 2 boundary
  const auto scale = model::crack_work_scale(t, c, 0.4);
  int reduced = 0;
  for (double s : scale) reduced += s < 1.0;
  // The y=0.5 line touches rows 2 and the row boundary: at least the 5 SDs
  // of one row (boundary touching counts both rows).
  EXPECT_GE(reduced, 5);
  EXPECT_LE(reduced, 10);
  for (double s : scale) EXPECT_TRUE(s == 1.0 || s == 0.6);
}

TEST(Crack, DiagonalCrackHitsDiagonalSds) {
  dist::tiling t(4, 4, 4, 1);
  const model::crack_line c{0.01, 0.01, 0.99, 0.99};
  const auto scale = model::crack_work_scale(t, c, 0.5);
  // Every diagonal SD must be reduced.
  for (int i = 0; i < 4; ++i)
    EXPECT_LT(scale[static_cast<std::size_t>(t.sd_at(i, i))], 1.0) << i;
  // Far off-diagonal corners untouched.
  EXPECT_DOUBLE_EQ(scale[static_cast<std::size_t>(t.sd_at(0, 3))], 1.0);
  EXPECT_DOUBLE_EQ(scale[static_cast<std::size_t>(t.sd_at(3, 0))], 1.0);
}

TEST(Crack, ZeroReductionIsAllOnes) {
  dist::tiling t(3, 3, 4, 1);
  const auto scale =
      model::crack_work_scale(t, model::crack_line{0, 0, 1, 1}, 0.0);
  for (double s : scale) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Crack, GrowthInterpolates) {
  const model::crack_line full{0.0, 0.5, 1.0, 0.5};
  const auto half = model::crack_at_time(full, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(half.x1, 0.5);
  EXPECT_DOUBLE_EQ(half.y1, 0.5);
  const auto none = model::crack_at_time(full, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(none.x1, 0.0);
  const auto done = model::crack_at_time(full, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(done.x1, 1.0);
}

TEST(Crack, GrowingCrackReducesMoreSdsOverTime) {
  dist::tiling t(6, 6, 4, 1);
  const model::crack_line full{0.01, 0.5, 0.99, 0.5};
  auto count_reduced = [&](double time) {
    const auto scale =
        model::crack_work_scale(t, model::crack_at_time(full, time, 10.0), 0.5);
    int n = 0;
    for (double s : scale) n += s < 1.0;
    return n;
  };
  EXPECT_LE(count_reduced(2.0), count_reduced(6.0));
  EXPECT_LE(count_reduced(6.0), count_reduced(10.0));
  EXPECT_GT(count_reduced(10.0), count_reduced(1.0));
}

// --------------------------------------------------------------- capacity ----

TEST(Capacity, UniformCluster) {
  const auto traces = model::uniform_cluster(3, 2.0);
  ASSERT_EQ(traces.size(), 3u);
  for (const auto& t : traces) EXPECT_DOUBLE_EQ(t.speed_at(100.0), 2.0);
}

TEST(Capacity, HeterogeneousCluster) {
  const auto traces = model::heterogeneous_cluster({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(traces[0].speed_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(traces[2].speed_at(0.0), 4.0);
}

TEST(Capacity, StepInterferenceShape) {
  const auto traces = model::step_interference(2, 1.0, 1, 0.25, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(traces[0].speed_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(traces[1].speed_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(traces[1].speed_at(15.0), 0.25);
  EXPECT_DOUBLE_EQ(traces[1].speed_at(25.0), 1.0);
}

TEST(Capacity, RampDegradationMonotone) {
  const auto traces = model::ramp_degradation(2, 1.0, 0, 0.5, 10.0, 5);
  double prev = 2.0;
  for (double t = 0.0; t <= 12.0; t += 1.0) {
    const double s = traces[0].speed_at(t);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(traces[0].speed_at(11.0), 0.5);
  EXPECT_DOUBLE_EQ(traces[1].speed_at(11.0), 1.0);
}

TEST(Capacity, RandomWalkDeterministicAndBounded) {
  const auto a = model::random_walk_cluster(3, 1.0, 0.5, 1.5, 5.0, 20, 42);
  const auto b = model::random_walk_cluster(3, 1.0, 0.5, 1.5, 5.0, 20, 42);
  for (int n = 0; n < 3; ++n)
    for (double t = 0.0; t < 100.0; t += 7.0) {
      EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(n)].speed_at(t),
                       b[static_cast<std::size_t>(n)].speed_at(t));
      const double s = a[static_cast<std::size_t>(n)].speed_at(t);
      EXPECT_GE(s, 0.5 - 1e-12);
      EXPECT_LE(s, 1.5 + 1e-12);
    }
}

TEST(Capacity, DifferentSeedsDiffer) {
  const auto a = model::random_walk_cluster(1, 1.0, 0.5, 2.0, 1.0, 50, 1);
  const auto b = model::random_walk_cluster(1, 1.0, 0.5, 2.0, 1.0, 50, 2);
  int diffs = 0;
  for (double t = 1.5; t < 49.0; t += 1.0) diffs += a[0].speed_at(t) != b[0].speed_at(t);
  EXPECT_GT(diffs, 10);
}

// Tests for masked (non-square) SD domains: mask builders, the masked dual
// graph, case-split semantics and the virtual-time solver on masks.

#include <gtest/gtest.h>

#include "dist/domain_mask.hpp"
#include "dist/sd_block.hpp"
#include "dist/sim_dist.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"

namespace dist = nlh::dist;
namespace part = nlh::partition;

TEST(DomainMask, FullKeepsEverything) {
  dist::tiling t(4, 4, 8, 2);
  const auto m = dist::domain_mask::full(t);
  EXPECT_EQ(m.num_active(), 16);
  for (int sd = 0; sd < 16; ++sd) EXPECT_TRUE(m.active(sd));
}

TEST(DomainMask, LShapeRemovesTopRightQuadrant) {
  dist::tiling t(4, 4, 8, 2);
  const auto m = dist::domain_mask::l_shape(t);
  EXPECT_EQ(m.num_active(), 12);
  EXPECT_FALSE(m.active(t.sd_at(0, 2)));
  EXPECT_FALSE(m.active(t.sd_at(1, 3)));
  EXPECT_TRUE(m.active(t.sd_at(0, 1)));
  EXPECT_TRUE(m.active(t.sd_at(2, 3)));
}

TEST(DomainMask, DiskIsSymmetricAndKeepsCenter) {
  dist::tiling t(8, 8, 8, 2);
  const auto m = dist::domain_mask::disk(t);
  EXPECT_TRUE(m.active(t.sd_at(3, 3)));
  EXPECT_TRUE(m.active(t.sd_at(4, 4)));
  EXPECT_FALSE(m.active(t.sd_at(0, 0)));  // corner outside the circle
  // 4-fold symmetry.
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(m.active(t.sd_at(r, c)), m.active(t.sd_at(7 - r, 7 - c)));
}

TEST(DomainMask, PredicateShape) {
  dist::tiling t(3, 3, 8, 2);
  const auto m =
      dist::domain_mask::from_predicate(t, [](int r, int c) { return r == c; });
  EXPECT_EQ(m.num_active(), 3);
  EXPECT_EQ(m.active_sds(), (std::vector<int>{0, 4, 8}));
}

TEST(MaskedDual, VertexMappingRoundTrips) {
  dist::tiling t(4, 4, 8, 2);
  const auto m = dist::domain_mask::l_shape(t);
  part::mesh_dual_options opt;
  opt.sd_rows = opt.sd_cols = 4;
  opt.sd_size = 8;
  opt.ghost_width = 2;
  const auto masked = part::build_mesh_dual_masked(opt, m.raw());
  EXPECT_EQ(masked.g.num_vertices(), 12);
  for (part::vid v = 0; v < masked.g.num_vertices(); ++v) {
    const auto sd = masked.to_sd[static_cast<std::size_t>(v)];
    EXPECT_TRUE(m.active(sd));
    EXPECT_EQ(masked.to_vertex[static_cast<std::size_t>(sd)], v);
  }
  for (int sd = 0; sd < t.num_sds(); ++sd)
    if (!m.active(sd)) EXPECT_EQ(masked.to_vertex[static_cast<std::size_t>(sd)], -1);
}

TEST(MaskedDual, NoEdgesIntoInactiveRegion) {
  dist::tiling t(4, 4, 8, 2);
  const auto m = dist::domain_mask::l_shape(t);
  part::mesh_dual_options opt;
  opt.sd_rows = opt.sd_cols = 4;
  opt.sd_size = 8;
  opt.ghost_width = 2;
  const auto full = part::build_mesh_dual(opt);
  const auto masked = part::build_mesh_dual_masked(opt, m.raw());
  // Edge count drops by exactly the edges touching the removed quadrant.
  EXPECT_LT(masked.g.num_edges(), full.num_edges());
  // Every masked edge exists in the full graph between the mapped SDs.
  for (part::vid v = 0; v < masked.g.num_vertices(); ++v)
    for (auto e = masked.g.xadj(v); e < masked.g.xadj(v + 1); ++e) {
      const auto u_sd = masked.to_sd[static_cast<std::size_t>(v)];
      const auto w_sd = masked.to_sd[static_cast<std::size_t>(masked.g.adjncy(e))];
      EXPECT_TRUE(full.has_edge(u_sd, w_sd));
    }
}

TEST(MaskedDual, PartitionerWorksOnLShape) {
  dist::tiling t(8, 8, 8, 2);
  const auto m = dist::domain_mask::l_shape(t);
  part::mesh_dual_options opt;
  opt.sd_rows = opt.sd_cols = 8;
  opt.sd_size = 8;
  opt.ghost_width = 2;
  const auto masked = part::build_mesh_dual_masked(opt, m.raw());
  part::partition_options popt;
  popt.k = 4;
  const auto p = part::multilevel_partition(masked.g, popt);
  part::validate_partition(masked.g, p, 4);
  EXPECT_TRUE(part::parts_contiguous(masked.g, p, 4));
  EXPECT_LE(part::balance_factor(masked.g, p, 4), popt.balance_tolerance + 0.15);
}

TEST(MaskedCaseSplit, InactiveNeighborIsNotRemote) {
  dist::tiling t(1, 3, 8, 2);
  // SD 1's east neighbor (SD 2) is inactive: only the west side (SD 0,
  // different owner) counts as remote.
  std::vector<int> owner{0, 1, 0};
  std::vector<char> active{1, 1, 0};
  const auto split = dist::compute_case_split(t, 1, owner, &active);
  EXPECT_EQ(split.interior.col_begin, 2);   // west margin only
  EXPECT_EQ(split.interior.col_end, 8);     // no east margin
}

TEST(MaskedSim, InactiveSdsCostNothing) {
  dist::tiling t(4, 4, 10, 2);
  const auto m = dist::domain_mask::l_shape(t);
  const auto own = dist::ownership_map::single_node(t);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  const auto full = dist::simulate_timestepping(t, own, 2, cost, cluster);
  cost.sd_active = m.raw();
  const auto masked = dist::simulate_timestepping(t, own, 2, cost, cluster);
  // 12 of 16 SDs active: exactly 3/4 of the work.
  EXPECT_DOUBLE_EQ(masked.makespan, 0.75 * full.makespan);
}

TEST(MaskedSim, NoGhostTrafficAcrossInactiveRegion) {
  // Two nodes separated entirely by an inactive column: no messages.
  dist::tiling t(3, 3, 10, 2);
  const auto m = dist::domain_mask::from_predicate(
      t, [](int, int c) { return c != 1; });
  std::vector<int> owner{0, 0, 1, 0, 0, 1, 0, 0, 1};
  const dist::ownership_map own(t, 2, owner);
  dist::sim_cost_model cost;
  cost.sd_active = m.raw();
  dist::sim_cluster_config cluster;
  const auto res = dist::simulate_timestepping(t, own, 3, cost, cluster);
  EXPECT_DOUBLE_EQ(res.network_bytes, 0.0);
}

TEST(MaskedSim, LShapeScalesLikeSquare) {
  dist::tiling t(8, 8, 20, 4);
  const auto m = dist::domain_mask::l_shape(t);
  part::mesh_dual_options opt;
  opt.sd_rows = opt.sd_cols = 8;
  opt.sd_size = 20;
  opt.ghost_width = 4;
  const auto masked = part::build_mesh_dual_masked(opt, m.raw());
  dist::sim_cost_model cost;
  cost.sd_active = m.raw();
  dist::sim_cluster_config cluster;

  double t1 = 0.0;
  for (int nodes : {1, 4}) {
    part::partition_options popt;
    popt.k = nodes;
    const auto p = part::multilevel_partition(masked.g, popt);
    std::vector<int> owner(static_cast<std::size_t>(t.num_sds()), 0);
    for (part::vid v = 0; v < masked.g.num_vertices(); ++v)
      owner[static_cast<std::size_t>(masked.to_sd[static_cast<std::size_t>(v)])] =
          p[static_cast<std::size_t>(v)];
    const dist::ownership_map own(t, nodes, owner);
    const auto res = dist::simulate_timestepping(t, own, 4, cost, cluster);
    if (nodes == 1)
      t1 = res.makespan;
    else
      EXPECT_GT(t1 / res.makespan, 3.0) << "4-node speedup on the L-shape";
  }
}

// Tests for SD tiling geometry, ownership maps, the case-1/case-2 split and
// sd_block pack/unpack.

#include <gtest/gtest.h>

#include "dist/ownership.hpp"
#include "dist/sd_block.hpp"
#include "dist/tiling.hpp"

namespace dist = nlh::dist;
using dist::direction;

// ---------------------------------------------------------------- tiling ----

TEST(Tiling, BasicGeometry) {
  dist::tiling t(5, 5, 4, 1);  // the paper's Fig. 2: 5x5 SDs of 4x4 DPs
  EXPECT_EQ(t.num_sds(), 25);
  EXPECT_EQ(t.mesh_rows(), 20);
  EXPECT_EQ(t.mesh_cols(), 20);
  EXPECT_EQ(t.sd_row(7), 1);
  EXPECT_EQ(t.sd_col(7), 2);
  EXPECT_EQ(t.sd_at(1, 2), 7);
  EXPECT_EQ(t.origin_row(7), 4);
  EXPECT_EQ(t.origin_col(7), 8);
}

TEST(Tiling, NeighborLookup) {
  dist::tiling t(3, 3, 4, 1);
  EXPECT_EQ(t.neighbor(4, direction::north), 1);
  EXPECT_EQ(t.neighbor(4, direction::southeast), 8);
  EXPECT_FALSE(t.neighbor(0, direction::north).has_value());
  EXPECT_FALSE(t.neighbor(0, direction::west).has_value());
  EXPECT_FALSE(t.neighbor(8, direction::southeast).has_value());
}

TEST(Tiling, NeighborCounts) {
  dist::tiling t(3, 3, 4, 1);
  EXPECT_EQ(t.neighbors(4).size(), 8u);  // center
  EXPECT_EQ(t.neighbors(0).size(), 3u);  // corner
  EXPECT_EQ(t.neighbors(1).size(), 5u);  // edge
}

TEST(Tiling, OppositeDirections) {
  for (int d = 0; d < dist::num_directions; ++d) {
    const auto dir = static_cast<direction>(d);
    EXPECT_EQ(dist::opposite(dist::opposite(dir)), dir);
    const auto [dr, dc] = dist::direction_offset(dir);
    const auto [or_, oc] = dist::direction_offset(dist::opposite(dir));
    EXPECT_EQ(dr, -or_);
    EXPECT_EQ(dc, -oc);
  }
}

TEST(Tiling, SendRectShapes) {
  dist::tiling t(2, 2, 8, 2);
  const auto north = t.send_rect(direction::north);
  EXPECT_EQ(north.rows(), 2);
  EXPECT_EQ(north.cols(), 8);
  EXPECT_EQ(north.row_begin, 0);
  const auto south = t.send_rect(direction::south);
  EXPECT_EQ(south.row_begin, 6);
  EXPECT_EQ(south.row_end, 8);
  const auto se = t.send_rect(direction::southeast);
  EXPECT_EQ(se.area(), 4);  // ghost x ghost corner
  EXPECT_EQ(se.row_begin, 6);
  EXPECT_EQ(se.col_begin, 6);
}

TEST(Tiling, RecvRectsLieInCollar) {
  dist::tiling t(2, 2, 8, 2);
  const auto from_north = t.recv_rect(direction::north);
  EXPECT_EQ(from_north.row_begin, -2);
  EXPECT_EQ(from_north.row_end, 0);
  EXPECT_EQ(from_north.col_begin, 0);
  EXPECT_EQ(from_north.col_end, 8);
  const auto from_se = t.recv_rect(direction::southeast);
  EXPECT_EQ(from_se.row_begin, 8);
  EXPECT_EQ(from_se.col_begin, 8);
  EXPECT_EQ(from_se.area(), 4);
}

TEST(Tiling, SendRecvAreasMatch) {
  dist::tiling t(3, 3, 6, 2);
  for (int d = 0; d < dist::num_directions; ++d) {
    const auto dir = static_cast<direction>(d);
    EXPECT_EQ(t.send_rect(dist::opposite(dir)).area(), t.recv_rect(dir).area());
  }
}

TEST(Tiling, StripDps) {
  dist::tiling t(2, 2, 10, 3);
  EXPECT_EQ(t.strip_dps(direction::east), 30);
  EXPECT_EQ(t.strip_dps(direction::northwest), 9);
}

// -------------------------------------------------------------- ownership ----

TEST(Ownership, SingleNodeOwnsAll) {
  dist::tiling t(3, 3, 4, 1);
  auto own = dist::ownership_map::single_node(t);
  EXPECT_EQ(own.num_nodes(), 1);
  for (int sd = 0; sd < 9; ++sd) EXPECT_EQ(own.owner(sd), 0);
  EXPECT_EQ(own.sds_of(0).size(), 9u);
}

TEST(Ownership, FromPartitionAndCounts) {
  dist::tiling t(2, 2, 4, 1);
  auto own = dist::ownership_map::from_partition(t, 2, {0, 0, 1, 1});
  EXPECT_EQ(own.sd_counts(), (std::vector<int>{2, 2}));
  EXPECT_EQ(own.sds_of(1), (std::vector<int>{2, 3}));
}

TEST(Ownership, SpBoundaryDetection) {
  dist::tiling t(2, 2, 4, 1);
  auto own = dist::ownership_map::from_partition(t, 2, {0, 0, 1, 1});
  EXPECT_TRUE(own.is_sp_boundary(t, 0));  // all SDs touch the other node here
  dist::ownership_map solo = dist::ownership_map::single_node(t);
  EXPECT_FALSE(solo.is_sp_boundary(t, 0));
}

TEST(Ownership, NodeAdjacency) {
  // 3x3 grid split into three vertical strips: 0-1 and 1-2 adjacent (and
  // 0-2 via diagonals of the middle column? no: strips of width 1, columns
  // 0/1/2 -> SDs of node 0 touch node 1 and diagonally node 2? Column 0 and
  // column 2 SDs are 2 apart: not neighbors. So 0-2 not adjacent).
  dist::tiling t(3, 3, 4, 1);
  std::vector<int> owner{0, 1, 2, 0, 1, 2, 0, 1, 2};
  dist::ownership_map own(t, 3, owner);
  const auto adj = own.node_adjacency(t);
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(adj[2], (std::vector<int>{1}));
}

TEST(Ownership, SetOwnerUpdates) {
  dist::tiling t(2, 2, 4, 1);
  auto own = dist::ownership_map::from_partition(t, 2, {0, 0, 0, 0});
  own.set_owner(3, 1);
  EXPECT_EQ(own.owner(3), 1);
  EXPECT_EQ(own.sd_counts(), (std::vector<int>{3, 1}));
}

// -------------------------------------------------------------- case split ----

TEST(CaseSplit, AllLocalMeansFullInterior) {
  dist::tiling t(3, 3, 8, 2);
  std::vector<int> owner(9, 0);
  const auto split = dist::compute_case_split(t, 4, owner);
  EXPECT_TRUE(split.remote_strips.empty());
  EXPECT_EQ(split.interior_dps(), 64);
}

TEST(CaseSplit, RemoteEastMakesRightStrip) {
  dist::tiling t(1, 2, 8, 2);
  std::vector<int> owner{0, 1};
  const auto split = dist::compute_case_split(t, 0, owner);
  EXPECT_EQ(split.interior.col_end, 6);  // right margin of ghost width 2
  EXPECT_EQ(split.interior_dps(), 8 * 6);
  EXPECT_EQ(split.strip_dps(), 8 * 2);
}

TEST(CaseSplit, CoverageIsExactPartition) {
  // interior + strips exactly tile the SD (no DP lost, none duplicated).
  dist::tiling t(3, 3, 6, 2);
  std::vector<int> owner{0, 1, 1, 0, 0, 1, 2, 2, 2};
  for (int sd = 0; sd < 9; ++sd) {
    const auto split = dist::compute_case_split(t, sd, owner);
    std::vector<int> cover(36, 0);
    auto mark = [&](const nlh::nonlocal::dp_rect& r) {
      for (int i = r.row_begin; i < r.row_end; ++i)
        for (int j = r.col_begin; j < r.col_end; ++j)
          ++cover[static_cast<std::size_t>(i * 6 + j)];
    };
    if (!split.interior.empty()) mark(split.interior);
    for (const auto& s : split.remote_strips) mark(s);
    for (int k = 0; k < 36; ++k) EXPECT_EQ(cover[static_cast<std::size_t>(k)], 1)
        << "sd=" << sd << " dp=" << k;
  }
}

TEST(CaseSplit, SurroundedSdCanBeAllCase1) {
  dist::tiling t(3, 3, 2, 2);  // sd_size == ghost
  std::vector<int> owner{1, 1, 1, 1, 0, 1, 1, 1, 1};  // center surrounded
  const auto split = dist::compute_case_split(t, 4, owner);
  EXPECT_EQ(split.interior_dps(), 0);
  EXPECT_EQ(split.strip_dps(), 4);
}

TEST(CaseSplit, DiagonalRemoteWidensMargins) {
  dist::tiling t(2, 2, 8, 2);
  std::vector<int> owner{0, 0, 0, 1};  // only the SE SD is foreign
  const auto split = dist::compute_case_split(t, 0, owner);
  // SD 0's southeast neighbor is SD 3 (remote): conservative split marks
  // both the bottom and right strips.
  EXPECT_EQ(split.interior.row_end, 6);
  EXPECT_EQ(split.interior.col_end, 6);
}

// --------------------------------------------------------------- sd_block ----

TEST(SdBlock, PackUnpackRoundTrip) {
  dist::tiling t(1, 2, 4, 2);
  dist::sd_block a(t, 0), b(t, 1);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) a.u()[a.flat(i, j)] = 10.0 * i + j;
  // a sends east; b receives from the west.
  const auto strip = a.pack(t, direction::east);
  EXPECT_EQ(strip.size(), 8u);  // 4 rows x ghost 2
  b.unpack(t, direction::west, strip);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(b.u()[b.flat(i, -2 + j)], 10.0 * i + (2 + j));
}

TEST(SdBlock, FillFromLocalEqualsPackUnpack) {
  dist::tiling t(2, 1, 5, 1);
  dist::sd_block top(t, 0), bottom_a(t, 1), bottom_b(t, 1);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) top.u()[top.flat(i, j)] = i * 5.0 + j;
  bottom_a.unpack(t, direction::north, top.pack(t, direction::south));
  bottom_b.fill_from_local(t, direction::north, top);
  for (int j = 0; j < 5; ++j)
    EXPECT_DOUBLE_EQ(bottom_a.u()[bottom_a.flat(-1, j)],
                     bottom_b.u()[bottom_b.flat(-1, j)]);
}

TEST(SdBlock, CornerExchange) {
  dist::tiling t(2, 2, 4, 2);
  dist::sd_block nw(t, 0), se(t, 3);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) nw.u()[nw.flat(i, j)] = 100.0 + i * 4 + j;
  se.unpack(t, direction::northwest, nw.pack(t, direction::southeast));
  // SE block's NW collar = NW block's bottom-right 2x2 corner.
  EXPECT_DOUBLE_EQ(se.u()[se.flat(-2, -2)], 100.0 + 2 * 4 + 2);
  EXPECT_DOUBLE_EQ(se.u()[se.flat(-1, -1)], 100.0 + 3 * 4 + 3);
}

TEST(SdBlock, SwapFields) {
  dist::tiling t(1, 1, 2, 1);
  dist::sd_block b(t, 0);
  b.u()[b.flat(0, 0)] = 1.0;
  b.u_next()[b.flat(0, 0)] = 2.0;
  b.swap_fields();
  EXPECT_DOUBLE_EQ(b.u()[b.flat(0, 0)], 2.0);
  EXPECT_DOUBLE_EQ(b.u_next()[b.flat(0, 0)], 1.0);
}

TEST(SdBlock, GlobalOrigin) {
  dist::tiling t(3, 3, 7, 1);
  dist::sd_block b(t, 5);  // row 1, col 2
  EXPECT_EQ(b.origin_row(), 7);
  EXPECT_EQ(b.origin_col(), 14);
}

// Tests for the steady-state (conjugate gradient) nonlocal solver.

#include <gtest/gtest.h>

#include <cmath>

#include "nonlocal/influence.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/steady_state.hpp"

namespace nl = nlh::nonlocal;

namespace {

struct setup {
  nl::grid2d grid;
  nl::influence J;
  nl::stencil st;
  double c;
  setup(int n, double factor, nl::influence_kind kind = nl::influence_kind::constant)
      : grid(n, factor / n), J(kind), st(grid, J),
        c(J.scaling_constant(2, 1.0, grid.epsilon())) {}
};

}  // namespace

TEST(SteadyState, ZeroRhsGivesZeroSolution) {
  setup s(16, 2);
  auto b = s.grid.make_field();
  auto u = s.grid.make_field();
  const auto res = nl::solve_steady_state(s.grid, s.st, s.c, b, u);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SteadyState, RecoversManufacturedSolution) {
  setup s(32, 3);
  const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
  auto u = s.grid.make_field();
  const auto res = nl::solve_steady_state(s.grid, s.st, s.c, b, u);
  EXPECT_TRUE(res.converged);
  double maxdiff = 0.0;
  for (int i = 0; i < s.grid.n(); ++i)
    for (int j = 0; j < s.grid.n(); ++j)
      maxdiff = std::max(maxdiff,
                         std::abs(u[s.grid.flat(i, j)] - ustar[s.grid.flat(i, j)]));
  EXPECT_LT(maxdiff, 1e-7);
}

TEST(SteadyState, ResidualActuallySmall) {
  setup s(24, 2);
  const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
  auto u = s.grid.make_field();
  nl::cg_options opt;
  opt.tolerance = 1e-12;
  nl::solve_steady_state(s.grid, s.st, s.c, b, u, opt);
  // Check ||b + L u|| directly.
  auto lu = s.grid.make_field();
  nl::apply_nonlocal_operator(s.grid, s.st, s.c, u, lu, {0, 24, 0, 24});
  double r2 = 0.0, b2 = 0.0;
  for (int i = 0; i < 24; ++i)
    for (int j = 0; j < 24; ++j) {
      const auto idx = s.grid.flat(i, j);
      const double r = b[idx] + lu[idx];
      r2 += r * r;
      b2 += b[idx] * b[idx];
    }
  EXPECT_LT(std::sqrt(r2), 1e-9 * std::sqrt(b2));
}

TEST(SteadyState, ConvergesForAllKernels) {
  for (auto kind : {nl::influence_kind::constant, nl::influence_kind::linear,
                    nl::influence_kind::gaussian}) {
    setup s(20, 2, kind);
    const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
    auto u = s.grid.make_field();
    const auto res = nl::solve_steady_state(s.grid, s.st, s.c, b, u);
    EXPECT_TRUE(res.converged) << static_cast<int>(kind);
  }
}

TEST(SteadyState, IterationCountGrowsWithResolution) {
  // CG iteration counts track the conditioning; finer meshes at fixed
  // epsilon-factor need at least as many iterations.
  int prev = 0;
  for (int n : {8, 16, 32}) {
    setup s(n, 2);
    const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
    auto u = s.grid.make_field();
    const auto res = nl::solve_steady_state(s.grid, s.st, s.c, b, u);
    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.iterations, prev);
    prev = res.iterations;
  }
}

TEST(SteadyState, WarmStartConvergesFaster) {
  setup s(32, 2);
  const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
  auto cold = s.grid.make_field();
  const auto cold_res = nl::solve_steady_state(s.grid, s.st, s.c, b, cold);
  auto warm = ustar;  // start at the answer
  const auto warm_res = nl::solve_steady_state(s.grid, s.st, s.c, b, warm);
  EXPECT_LT(warm_res.iterations, cold_res.iterations);
}

// --------------------------------------------------- implicit (backward) Euler ----

TEST(ImplicitEuler, StableFarBeyondExplicitBound) {
  // Explicit forward Euler blows up for dt > 1/(c * weight_sum); implicit
  // Euler must stay bounded at 50x that.
  setup s(16, 2);
  const double dt_explicit = 1.0 / (s.c * s.st.weight_sum());
  const double dt = 50.0 * dt_explicit;

  // Decay problem: no source, sinusoidal initial condition.
  auto u = s.grid.make_field();
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      u[s.grid.flat(i, j)] =
          std::sin(2 * M_PI * s.grid.x(j)) * std::sin(2 * M_PI * s.grid.y(i));
  const auto zero_b = s.grid.make_field();
  double prev_norm = 1e300;
  for (int k = 0; k < 5; ++k) {
    const auto res = nl::implicit_euler_step(s.grid, s.st, s.c, dt, zero_b, u);
    EXPECT_TRUE(res.converged);
    double norm = 0.0;
    for (double v : u) norm += v * v;
    EXPECT_LT(norm, prev_norm);  // pure decay, monotone
    prev_norm = norm;
    for (double v : u) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ImplicitEuler, AgreesWithExplicitAtSmallDt) {
  // For dt well inside the stability region both schemes are O(dt)
  // accurate and must agree to O(dt^2) per step.
  setup s(16, 2);
  const double dt = 0.02 / (s.c * s.st.weight_sum());
  auto u_imp = s.grid.make_field();
  auto u_exp = s.grid.make_field();
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) {
      const double v =
          std::sin(2 * M_PI * s.grid.x(j)) * std::sin(2 * M_PI * s.grid.y(i));
      u_imp[s.grid.flat(i, j)] = v;
      u_exp[s.grid.flat(i, j)] = v;
    }
  const auto zero_b = s.grid.make_field();

  nl::cg_options tight;
  tight.tolerance = 1e-13;
  nl::implicit_euler_step(s.grid, s.st, s.c, dt, zero_b, u_imp, tight);

  auto lu = s.grid.make_field();
  nl::apply_nonlocal_operator(s.grid, s.st, s.c, u_exp, lu, {0, 16, 0, 16});
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) {
      const auto idx = s.grid.flat(i, j);
      u_exp[idx] += dt * lu[idx];
    }

  double maxdiff = 0.0, maxval = 0.0;
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) {
      const auto idx = s.grid.flat(i, j);
      maxdiff = std::max(maxdiff, std::abs(u_imp[idx] - u_exp[idx]));
      maxval = std::max(maxval, std::abs(u_exp[idx]));
    }
  EXPECT_LT(maxdiff, 1e-3 * maxval);
}

TEST(ImplicitEuler, ConvergesToSteadyStateUnderConstantSource) {
  // With a fixed source, backward-Euler iterates approach the steady
  // solution of -L u = b for large dt.
  setup s(20, 2);
  const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
  auto u = s.grid.make_field();
  const double dt = 1000.0 / (s.c * s.st.weight_sum());
  for (int k = 0; k < 30; ++k) nl::implicit_euler_step(s.grid, s.st, s.c, dt, b, u);
  double maxdiff = 0.0;
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      maxdiff = std::max(maxdiff,
                         std::abs(u[s.grid.flat(i, j)] - ustar[s.grid.flat(i, j)]));
  EXPECT_LT(maxdiff, 1e-3);
}

TEST(SteadyState, RespectsMaxIterations) {
  setup s(32, 2);
  const auto [b, ustar] = nl::manufactured_steady_problem(s.grid, s.st, s.c);
  auto u = s.grid.make_field();
  nl::cg_options opt;
  opt.max_iterations = 2;
  opt.tolerance = 1e-14;
  const auto res = nl::solve_steady_state(s.grid, s.st, s.c, b, u, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 2);
}

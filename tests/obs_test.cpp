// Tests for the observability subsystem (src/obs/): span recording and
// nesting, cross-thread rings and thread names, ring wraparound accounting,
// histogram quantile estimation, Chrome-trace / metrics JSON export
// round-trips, the runtime enable/disable gates, the counter_registry
// bridge, the periodic sampler, and a fully traced multi-tenant batch run
// (the latter rides the TSAN CI job: every tracer/metrics path exercised
// concurrently with real solver work).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "amt/counters.hpp"
#include "api/batch.hpp"
#include "api/session.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"

namespace obs = nlh::obs;
namespace api = nlh::api;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Events from `snap` named `name`.
std::vector<obs::trace_event> named(const std::vector<obs::trace_event>& snap,
                                    const std::string& name) {
  std::vector<obs::trace_event> out;
  for (const auto& e : snap)
    if (e.name && name == e.name) out.push_back(e);
  return out;
}

api::session_options small_options(const std::string& scenario) {
  api::session_options opt;
  opt.scenario = scenario;
  opt.n = 16;
  opt.epsilon_factor = 2;
  opt.num_steps = 3;
  opt.sd_grid = 2;
  opt.nodes = 2;
  return opt;
}

}  // namespace

/// Every test starts and ends with tracing off and the rings empty, so the
/// process-wide tracer singleton never leaks events across tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::tracer::instance().clear();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::tracer::instance().clear();
    obs::configure(obs::config{});  // restore the default ring capacity
  }
};

// ------------------------------------------------------------- recording --

TEST_F(ObsTest, SpanRecordsCompleteEventWithDuration) {
  obs::set_tracing_enabled(true);
  {
    NLH_TRACE_SPAN_ARG("test/outer", 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto snap = obs::tracer::instance().snapshot();
  const auto outer = named(snap, "test/outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0].phase, 'X');
  EXPECT_EQ(outer[0].arg, 7u);
  EXPECT_GE(outer[0].dur_ns, 2'000'000);  // slept 2 ms inside the span
  EXPECT_GT(outer[0].tid, 0u);
}

TEST_F(ObsTest, NestedSpansCoverEachOtherAndSortByStart) {
  obs::set_tracing_enabled(true);
  {
    NLH_TRACE_SPAN("test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      NLH_TRACE_SPAN("test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto snap = obs::tracer::instance().snapshot();
  const auto outer = named(snap, "test/outer");
  const auto inner = named(snap, "test/inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  // Proper nesting: the outer interval strictly contains the inner one.
  EXPECT_LT(outer[0].ts_ns, inner[0].ts_ns);
  EXPECT_GT(outer[0].ts_ns + outer[0].dur_ns, inner[0].ts_ns + inner[0].dur_ns);
  // snapshot() merges sorted by start time: outer first.
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LE(snap[i - 1].ts_ns, snap[i].ts_ns);
}

TEST_F(ObsTest, BeginEndPairAndInstant) {
  obs::set_tracing_enabled(true);
  NLH_TRACE_BEGIN("test/region", 1);
  NLH_TRACE_INSTANT("test/tick", 42);
  NLH_TRACE_END("test/region");
  const auto snap = obs::tracer::instance().snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].phase, 'B');
  EXPECT_EQ(snap[1].phase, 'i');
  EXPECT_EQ(snap[1].arg, 42u);
  EXPECT_EQ(snap[2].phase, 'E');
}

TEST_F(ObsTest, ThreadsGetDistinctRingsAndNames) {
  obs::set_tracing_enabled(true);
  NLH_TRACE_INSTANT("test/main", 0);
  obs::tracer::instance().set_thread_name("main-thread");
  std::thread t([] {
    obs::tracer::instance().set_thread_name("helper");
    NLH_TRACE_INSTANT("test/helper", 0);
  });
  t.join();  // the helper ring must survive the thread's exit
  const auto snap = obs::tracer::instance().snapshot();
  const auto a = named(snap, "test/main");
  const auto b = named(snap, "test/helper");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].tid, b[0].tid);
  const auto names = obs::tracer::instance().thread_names();
  bool saw_main = false, saw_helper = false;
  for (const auto& [tid, name] : names) {
    if (tid == a[0].tid && name == "main-thread") saw_main = true;
    if (tid == b[0].tid && name == "helper") saw_helper = true;
  }
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_helper);
}

TEST_F(ObsTest, RingWrapsKeepingNewestAndCountsDropped) {
  // configure() only affects rings created afterwards, so record from a
  // fresh thread — the main thread's ring already exists at full capacity.
  // 16 is the documented capacity floor (tracer.cpp clamps smaller values).
  obs::configure(obs::config{/*ring_capacity=*/16});
  obs::set_tracing_enabled(true);
  std::thread t([] {
    for (std::uint64_t i = 0; i < 40; ++i) NLH_TRACE_INSTANT("test/wrap", i);
  });
  t.join();
  const auto events = named(obs::tracer::instance().snapshot(), "test/wrap");
  ASSERT_EQ(events.size(), 16u);  // newest 16 of 40 survive
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, 24 + i);  // args 24..39, oldest first
  EXPECT_EQ(obs::tracer::instance().dropped(), 24u);
}

// ----------------------------------------------------------------- gating --

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    NLH_TRACE_SPAN("test/ghost");
    NLH_TRACE_INSTANT("test/ghost_i", 1);
    NLH_TRACE_BEGIN("test/ghost_b", 2);
    NLH_TRACE_END("test/ghost_b");
  }
  EXPECT_TRUE(obs::tracer::instance().snapshot().empty());
  EXPECT_EQ(obs::tracer::instance().dropped(), 0u);
}

TEST_F(ObsTest, SpanOpenedWhileEnabledStillClosesAfterDisable) {
  // Documented semantics (obs/config.hpp): flipping the switch mid-span is
  // safe and the span still records — exporters never see a dangling 'B'.
  obs::set_tracing_enabled(true);
  {
    NLH_TRACE_SPAN("test/straddle");
    obs::set_tracing_enabled(false);
  }
  const auto snap = obs::tracer::instance().snapshot();
  ASSERT_EQ(named(snap, "test/straddle").size(), 1u);
}

TEST_F(ObsTest, ClearDropsEventsButKeepsRings) {
  obs::set_tracing_enabled(true);
  NLH_TRACE_INSTANT("test/a", 0);
  obs::tracer::instance().clear();
  EXPECT_TRUE(obs::tracer::instance().snapshot().empty());
  NLH_TRACE_INSTANT("test/b", 0);
  EXPECT_EQ(obs::tracer::instance().snapshot().size(), 1u);
}

// ------------------------------------------------------------- histograms --

TEST_F(ObsTest, HistogramExactStatsAndQuantileBounds) {
  obs::histogram h(obs::histogram_options{1.0, 1e4, 8});
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  const auto s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, 500500.0);  // count/sum/min/max/mean are exact
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
  // Quantiles are bucketed estimates: relative error is bounded by the
  // bucket ratio, 10^(1/8) ~ 1.334 at 8 buckets/decade.
  const double ratio = std::pow(10.0, 1.0 / 8.0);
  EXPECT_GE(s.p50, 500.0 / ratio);
  EXPECT_LE(s.p50, 500.0 * ratio);
  EXPECT_GE(s.p90, 900.0 / ratio);
  EXPECT_LE(s.p90, 900.0 * ratio);
  EXPECT_GE(s.p99, 990.0 / ratio);
  EXPECT_LE(s.p99, 990.0 * ratio);
  // quantile() is monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST_F(ObsTest, HistogramUnderflowOverflowAndEmpty) {
  obs::histogram h(obs::histogram_options{1e-3, 1e3, 4});
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_DOUBLE_EQ(h.summary().p99, 0.0);  // empty -> all zeros
  h.record(1e-9);  // underflow bucket
  h.record(1e9);   // overflow bucket
  const auto s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 1e-9);  // min/max track the raw values
  EXPECT_DOUBLE_EQ(s.max, 1e9);
  h.reset();
  EXPECT_EQ(h.summary().count, 0u);
}

TEST_F(ObsTest, HistogramConcurrentRecordSumsAllEvents) {
  obs::histogram h;
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([&h] {
      for (int j = 0; j < 1000; ++j) h.record(1e-4);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.summary().count, 4000u);
}

// --------------------------------------------------------------- registry --

TEST_F(ObsTest, RegistryFindOrCreateAndSnapshot) {
  obs::metrics_registry reg;
  obs::counter& c = reg.get_counter("test/events");
  EXPECT_EQ(&c, &reg.get_counter("test/events"));  // stable address
  c.add(3);
  reg.get_gauge("test/level").set(2.5);
  reg.get_histogram("test/lat").record(0.01);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "test/events");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST_F(ObsTest, BridgeCounterRegistryPolls) {
  auto& reg = nlh::amt::counter_registry::instance();
  reg.register_counter("/obs_bridge_test/x", [] { return 4.25; }, [] {});
  obs::metrics_snapshot snap;
  obs::bridge_counter_registry(snap, "obs_bridge_test");
  reg.unregister_counter("/obs_bridge_test/x");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "/obs_bridge_test/x");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 4.25);
}

// ----------------------------------------------------------------- export --

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  obs::set_tracing_enabled(true);
  {
    NLH_TRACE_SPAN_ARG("test/export_span", 11);
    NLH_TRACE_INSTANT("test/export_tick", 5);
  }
  obs::tracer::instance().set_thread_name("exporter");
  obs::set_tracing_enabled(false);

  const auto events = obs::tracer::instance().snapshot();
  const auto names = obs::tracer::instance().thread_names();
  const std::string json = obs::chrome_trace_json(events, names);
  // Chrome Trace Event object format, loadable in ui.perfetto.dev.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"exporter\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path, events, names));
  EXPECT_EQ(slurp(path), json);  // chrome_trace_json is newline-terminated
  std::remove(path.c_str());
}

TEST_F(ObsTest, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(obs::write_chrome_trace("/nonexistent-dir/trace.json"));
}

TEST_F(ObsTest, MetricsJsonRoundTrip) {
  obs::metrics_snapshot snap;
  snap.add_counter("test/events", 12);
  snap.add_gauge("test/level", 0.5);
  obs::histogram h;
  for (int i = 0; i < 10; ++i) h.record(0.001 * (i + 1));
  snap.add_histogram("test/lat_seconds", h.summary());

  const std::string json = obs::metrics_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test/events\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"test/lat_seconds\""), std::string::npos);
  for (const char* field : {"\"count\"", "\"sum\"", "\"mean\"", "\"p50\"",
                            "\"p90\"", "\"p99\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;

  const std::string path = ::testing::TempDir() + "obs_metrics_test.json";
  ASSERT_TRUE(obs::write_metrics_json(path, snap));
  EXPECT_EQ(slurp(path), json + "\n");  // the writer newline-terminates
  std::remove(path.c_str());
}

TEST_F(ObsTest, SnapshotMergeAppliesPrefix) {
  obs::metrics_snapshot a, b;
  b.add_counter("events", 2);
  b.add_gauge("level", 1.0);
  a.merge(b, "job/");
  ASSERT_EQ(a.counters.size(), 1u);
  EXPECT_EQ(a.counters[0].first, "job/events");
  ASSERT_EQ(a.gauges.size(), 1u);
  EXPECT_EQ(a.gauges[0].first, "job/level");
}

// ---------------------------------------------------------------- sampler --

TEST_F(ObsTest, PeriodicSamplerCollectsTimedSeries) {
  std::atomic<int> ticks{0};
  obs::periodic_sampler sampler(std::chrono::milliseconds(5), [&ticks] {
    obs::metrics_snapshot s;
    s.add_counter("test/ticks", static_cast<std::uint64_t>(++ticks));
    return s;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sampler.stop();  // takes one final sample; idempotent
  sampler.stop();
  const auto series = sampler.samples();
  ASSERT_GE(series.size(), 2u);
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_LE(series[i - 1].t_seconds, series[i].t_seconds);
  const std::string json = obs::metrics_series_json(series);
  EXPECT_NE(json.find("\"t_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"test/ticks\""), std::string::npos);
}

// ------------------------------------------- end to end: session + batch --

TEST_F(ObsTest, SessionMetricsCarryDistributedFlagAndStepLatency) {
  auto opt = small_options("manufactured");
  opt.mode = api::execution_mode::serial;
  api::session serial(opt);
  serial.solver().run(3);
  const auto ms = serial.solver().metrics();
  EXPECT_FALSE(ms.is_distributed);
  EXPECT_EQ(ms.step_latency.count, 3u);  // one sample per step
  EXPECT_GT(ms.step_latency.p50, 0.0);

  opt.mode = api::execution_mode::distributed;
  api::session dist(opt);
  dist.solver().run(3);
  const auto md = dist.solver().metrics();
  EXPECT_TRUE(md.is_distributed);
  EXPECT_EQ(md.step_latency.count, 3u);

  // The full snapshot carries the uniform schema: the dist/* instruments
  // appear only for the distributed session.
  const auto serial_snap = serial.solver().metrics_snapshot();
  const auto dist_snap = dist.solver().metrics_snapshot();
  auto has_counter = [](const obs::metrics_snapshot& s, const std::string& n) {
    for (const auto& [name, v] : s.counters)
      if (name == n) return true;
    return false;
  };
  EXPECT_FALSE(has_counter(serial_snap, "dist/ghost/messages"));
  EXPECT_TRUE(has_counter(dist_snap, "dist/ghost/messages"));
  EXPECT_TRUE(has_counter(serial_snap, "api/session/steps"));
  EXPECT_TRUE(has_counter(dist_snap, "api/session/steps"));
}

TEST_F(ObsTest, TracedMultiTenantBatchProducesTimelineAndMetrics) {
  // The TSAN rider: serial and distributed tenants step concurrently with
  // tracing on, hammering the per-thread rings, the shared histograms and
  // the batch accounting at once.
  obs::set_tracing_enabled(true);

  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 2;
  api::batch_runner runner(bopt);

  std::vector<api::batch_job> jobs;
  for (const char* scenario : {"manufactured", "gaussian_pulse"})
    for (const auto mode :
         {api::execution_mode::serial, api::execution_mode::distributed}) {
      api::batch_job job;
      job.options = small_options(scenario);
      job.options.mode = mode;
      job.label = std::string(scenario) +
                  (mode == api::execution_mode::serial ? "/serial" : "/dist");
      jobs.push_back(std::move(job));
    }
  auto futures = runner.submit_all(std::move(jobs));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  obs::set_tracing_enabled(false);

  // Timeline: every layer shows up — job lifecycle, per-step spans, the
  // distributed phases, pool task execution and message traffic.
  const auto snap = obs::tracer::instance().snapshot();
  EXPECT_EQ(named(snap, "api/job").size(), 4u);
  EXPECT_EQ(named(snap, "api/job_submit").size(), 4u);
  EXPECT_EQ(named(snap, "api/job_admit").size(), 4u);
  EXPECT_EQ(named(snap, "api/step").size(), 12u);  // 4 jobs x 3 steps
  EXPECT_EQ(named(snap, "dist/step").size(), 6u);  // 2 dist jobs x 3 steps
  EXPECT_FALSE(named(snap, "amt/task").empty());
  EXPECT_FALSE(named(snap, "net/send").empty());
  EXPECT_EQ(named(snap, "net/send").size(), named(snap, "net/deliver").size());

  // Metrics: aggregate latencies plus per-job step-latency summaries.
  const auto agg = runner.aggregate();
  EXPECT_EQ(agg.jobs_completed, 4);
  EXPECT_EQ(agg.queue_wait.count, 4u);
  EXPECT_EQ(agg.job_duration.count, 4u);
  const auto metrics = runner.metrics_snapshot();
  bool saw_queue_wait = false, saw_job_hist = false;
  for (const auto& [name, s] : metrics.histograms) {
    if (name == "api/batch/queue_wait_seconds") saw_queue_wait = s.count == 4;
    if (name == "api/job/manufactured/dist/step_latency_seconds")
      saw_job_hist = s.count == 3;
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_job_hist);

  // And the whole thing exports.
  const std::string path = ::testing::TempDir() + "obs_batch_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  EXPECT_NE(slurp(path).find("api/job"), std::string::npos);
  std::remove(path.c_str());
}

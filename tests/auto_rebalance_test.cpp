// The live auto-rebalancing battery (docs/balance.md): bitwise
// serial==distributed equality while the Algorithm 1 loop migrates SDs
// between steps — forced every step, every 3 steps, and at seeded-random
// intervals, for every kernel backend x overlap schedule — plus the
// anti-ping-pong (deadband/cooldown/max_moves) damping, the zero-imbalance
// no-op path, the partition/report consistency property, and the api-layer
// policy surface (validation, runtime_metrics, metrics_snapshot).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "api/session.hpp"
#include "balance/auto_rebalancer.hpp"
#include "dist/dist_solver.hpp"
#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/serial_solver.hpp"
#include "support/rng.hpp"

namespace dist = nlh::dist;
namespace nl = nlh::nonlocal;
namespace api = nlh::api;
namespace balance = nlh::balance;

namespace {

/// Serial reference on the same mesh / dt / kernel backend as `cfg`.
std::vector<double> serial_reference(const dist::dist_config& cfg, int steps) {
  nl::solver_config scfg;
  scfg.n = cfg.sd_cols * cfg.sd_size;
  scfg.epsilon_factor = cfg.epsilon_factor;
  scfg.conductivity = cfg.conductivity;
  scfg.dt = cfg.dt;
  scfg.dt_safety = cfg.dt_safety;
  scfg.num_steps = steps;
  scfg.kind = cfg.kind;
  scfg.backend = cfg.backend;
  nl::serial_solver s(scfg);
  s.set_initial_condition();
  for (int k = 0; k < steps; ++k) s.step(k);
  return s.field();
}

/// Bitwise comparison over the interior DPs (exact double equality — online
/// rebalancing must not change a single rounding).
void expect_bitwise_equal(const nl::grid2d& g, const std::vector<double>& a,
                          const std::vector<double>& b) {
  int mismatches = 0;
  for (int i = 0; i < g.n() && mismatches < 5; ++i)
    for (int j = 0; j < g.n() && mismatches < 5; ++j)
      if (a[g.flat(i, j)] != b[g.flat(i, j)]) {
        ADD_FAILURE() << "field mismatch at (" << i << ", " << j
                      << "): " << a[g.flat(i, j)] << " vs " << b[g.flat(i, j)];
        ++mismatches;
      }
}

/// 3x3 SDs over 3 localities; threads_per_locality 2 so rebalancing
/// interleaves with genuinely concurrent compute under TSAN.
dist::dist_config battery_config(dist::overlap_schedule sched,
                                 const std::string& backend) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 3;
  cfg.sd_size = 6;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 2;
  cfg.schedule = sched;
  cfg.backend = nl::parse_kernel_backend(backend);
  return cfg;
}

dist::ownership_map battery_ownership(const dist::tiling& t) {
  return dist::ownership_map(t, 3, {0, 1, 2, 0, 1, 2, 2, 0, 1});
}

/// Synthetic busy-time source: locality 0 reports ~9x the busy time of the
/// others (it looks like the slow node and must shed SDs), jittered per
/// check from a seeded stream so successive epochs see varying loads.
balance::auto_rebalancer::busy_sampler skewed_sampler(std::uint64_t seed) {
  auto rng = std::make_shared<nlh::support::rng>(seed);
  return [rng](const dist::dist_solver& s) {
    std::vector<double> busy;
    for (int l = 0; l < s.owners().num_nodes(); ++l)
      busy.push_back((l == 0 ? 0.9 : 0.1) * rng->uniform(0.8, 1.2));
    return busy;
  };
}

}  // namespace

// ------------------------- rebalance cadence x backend x schedule battery ----

using CadenceParam =
    std::tuple<std::string, dist::overlap_schedule, std::string>;

class RebalanceCadenceEquivalence
    : public ::testing::TestWithParam<CadenceParam> {};

TEST_P(RebalanceCadenceEquivalence, BitwiseMatchesSerialReference) {
  const auto [cadence, sched, backend_name] = GetParam();
  auto cfg = battery_config(sched, backend_name);
  ASSERT_TRUE(cfg.backend.has_value());

  cfg.rebalance.enabled = true;
  if (cadence == "every_step") {
    cfg.rebalance.interval = 1;
    cfg.rebalance.trigger = 0.0;  // every check is an epoch
    cfg.rebalance.cooldown = 0;
  } else if (cadence == "every_3") {
    cfg.rebalance.interval = 3;
    cfg.rebalance.trigger = 0.0;
    cfg.rebalance.cooldown = 0;
  } else {  // seeded-random epochs
    cfg.rebalance.interval = 1;
    cfg.rebalance.trigger = 1.0;
    cfg.rebalance.cooldown = 1;
  }

  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(cfg, battery_ownership(t));
  ASSERT_NE(solver.rebalancer(), nullptr);

  if (cadence == "random") {
    // Each check flips a seeded coin between a balanced and a skewed load,
    // so epochs fire at reproducible but irregular steps.
    auto rng = std::make_shared<nlh::support::rng>(20260807);
    solver.rebalancer()->set_sampler([rng](const dist::dist_solver& s) {
      const bool skew = rng->next_double() < 0.5;
      std::vector<double> busy;
      for (int l = 0; l < s.owners().num_nodes(); ++l)
        busy.push_back(skew && l == 0 ? 0.9 : 0.1);
      return busy;
    });
  } else {
    solver.rebalancer()->set_sampler(skewed_sampler(42));
  }

  const int steps = 9;
  solver.set_initial_condition();
  solver.run(steps);

  expect_bitwise_equal(solver.grid(), solver.gather(),
                       serial_reference(cfg, steps));

  const auto rs = solver.rebalance_stats();
  EXPECT_GT(rs.checks, 0u);
  EXPECT_GT(rs.epochs, 0u);
  EXPECT_GT(rs.moves, 0u);  // the skewed load really migrated SDs
  // Every epoch that moved SDs recompiled the plan exactly once more.
  EXPECT_GT(solver.plan_compiles(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCadencesAllSchedulesAllBackends, RebalanceCadenceEquivalence,
    ::testing::Combine(::testing::Values("every_step", "every_3", "random"),
                       ::testing::Values(dist::overlap_schedule::bulk_sync,
                                         dist::overlap_schedule::coarse,
                                         dist::overlap_schedule::per_direction),
                       ::testing::Values("scalar", "row_run", "simd")));

// ------------------------------------------------ anti-ping-pong damping ----

TEST(RebalanceDamping, DeadbandCooldownBoundAlternatingLoad) {
  // Adversarial sampler: the "slow" locality flips every check, so an
  // undamped loop shuttles the same SDs back and forth forever.
  auto alternating = []() {
    auto flip = std::make_shared<int>(0);
    return [flip](const dist::dist_solver& s) {
      const int slow = (*flip)++ % 2;
      std::vector<double> busy;
      for (int l = 0; l < s.owners().num_nodes(); ++l)
        busy.push_back(l == slow ? 0.9 : 0.1);
      return busy;
    };
  };

  auto make_cfg = [] {
    dist::dist_config cfg;
    cfg.sd_rows = cfg.sd_cols = 2;
    cfg.sd_size = 8;
    cfg.epsilon_factor = 2;
    cfg.rebalance.enabled = true;
    cfg.rebalance.interval = 1;
    return cfg;
  };
  const dist::tiling t(2, 2, 8, 2);
  const int steps = 12;

  auto undamped_cfg = make_cfg();
  undamped_cfg.rebalance.trigger = 0.0;
  undamped_cfg.rebalance.deadband = 0.0;
  undamped_cfg.rebalance.cooldown = 0;
  undamped_cfg.rebalance.max_moves = 0;
  dist::dist_solver undamped(undamped_cfg,
                             dist::ownership_map(t, 2, {0, 0, 1, 1}));
  undamped.rebalancer()->set_sampler(alternating());
  undamped.set_initial_condition();
  undamped.run(steps);

  auto damped_cfg = make_cfg();
  damped_cfg.rebalance.trigger = 0.5;
  damped_cfg.rebalance.deadband = 0.5;
  damped_cfg.rebalance.cooldown = 2;
  damped_cfg.rebalance.max_moves = 2;
  dist::dist_solver damped(damped_cfg,
                           dist::ownership_map(t, 2, {0, 0, 1, 1}));
  damped.rebalancer()->set_sampler(alternating());
  damped.set_initial_condition();
  damped.run(steps);

  const auto u = undamped.rebalance_stats();
  const auto d = damped.rebalance_stats();
  // The undamped loop ping-pongs on every one of the 12 checks.
  EXPECT_EQ(u.epochs, static_cast<std::uint64_t>(steps));
  EXPECT_GE(u.moves, static_cast<std::uint64_t>(steps));
  // Cooldown 2 admits at most every third check as an epoch; max_moves
  // caps each one — the SD shuttle is bounded, not per-step.
  EXPECT_LE(d.epochs, static_cast<std::uint64_t>(steps) / 3 + 1);
  EXPECT_LE(d.moves, d.epochs * 2);
  EXPECT_LT(d.moves, u.moves);

  // Damping changes scheduling only — both runs stay bitwise exact.
  const auto ref = serial_reference(undamped_cfg, steps);
  expect_bitwise_equal(undamped.grid(), undamped.gather(), ref);
  expect_bitwise_equal(damped.grid(), damped.gather(), ref);
}

// ------------------------------------------------------ zero imbalance -----

TEST(RebalanceZeroImbalance, NoEpochFiresAndPlanStaysCached) {
  auto cfg = battery_config(dist::overlap_schedule::per_direction, "scalar");
  cfg.rebalance.enabled = true;
  cfg.rebalance.interval = 1;
  cfg.rebalance.trigger = 1.0;

  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(cfg, battery_ownership(t));
  // A perfectly uniform load: every locality reports the same busy time.
  solver.rebalancer()->set_sampler([](const dist::dist_solver& s) {
    return std::vector<double>(static_cast<std::size_t>(s.owners().num_nodes()),
                               0.5);
  });
  const auto owners_before = solver.owners().sd_counts();

  const int steps = 6;
  solver.set_initial_condition();
  solver.run(steps);

  const auto rs = solver.rebalance_stats();
  EXPECT_EQ(rs.checks, static_cast<std::uint64_t>(steps));
  EXPECT_EQ(rs.epochs, 0u);
  EXPECT_EQ(rs.moves, 0u);
  EXPECT_EQ(rs.last_imbalance_before, 0.0);
  // Ownership untouched and the step plan never recompiled after the first
  // lazy build: no-op checks must not invalidate the cache.
  EXPECT_EQ(solver.owners().sd_counts(), owners_before);
  EXPECT_EQ(solver.plan_compiles(), 1u);

  expect_bitwise_equal(solver.grid(), solver.gather(),
                       serial_reference(cfg, steps));
}

// --------------------------------------------- partition/report property ----

TEST(RebalanceProperty, OwnershipStaysAPartitionAndReportsMatch) {
  auto cfg = battery_config(dist::overlap_schedule::per_direction, "row_run");
  cfg.rebalance.enabled = true;
  cfg.rebalance.interval = 1;
  cfg.rebalance.trigger = 0.0;
  cfg.rebalance.cooldown = 0;

  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(cfg, battery_ownership(t));

  // Fully random seeded loads: every check redistributes toward a different
  // target, exercising arbitrary epoch sequences.
  auto rng = std::make_shared<nlh::support::rng>(7);
  solver.rebalancer()->set_sampler([rng](const dist::dist_solver& s) {
    std::vector<double> busy;
    for (int l = 0; l < s.owners().num_nodes(); ++l)
      busy.push_back(rng->uniform(0.05, 1.0));
    return busy;
  });

  int epochs_seen = 0;
  solver.rebalancer()->set_epoch_observer(
      [&](const balance::balance_report& rep) {
        ++epochs_seen;
        // The report's post-state is the solver's real ownership: the
        // migrate callback executed every move the working copy recorded.
        EXPECT_EQ(rep.sd_counts_after, solver.owners().sd_counts());
        // The ownership map stays a partition: every SD owned exactly once
        // by an in-range node, total conserved.
        const auto counts = solver.owners().sd_counts();
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
                  solver.owners().num_sds());
        for (int sd = 0; sd < solver.owners().num_sds(); ++sd) {
          const int o = solver.owners().owner(sd);
          EXPECT_GE(o, 0);
          EXPECT_LT(o, solver.owners().num_nodes());
        }
        for (const auto& mv : rep.moves) EXPECT_NE(mv.from_node, mv.to_node);
      });

  const int steps = 10;
  solver.set_initial_condition();
  solver.run(steps);

  EXPECT_EQ(epochs_seen, steps);
  EXPECT_GT(solver.rebalance_stats().moves, 0u);
  expect_bitwise_equal(solver.grid(), solver.gather(),
                       serial_reference(cfg, steps));
}

// ------------------------------------------------------------ api surface ---

TEST(ApiAutoRebalance, SerialModeRejectsEnabledPolicy) {
  api::session_options opt;
  opt.mode = api::execution_mode::serial;
  opt.auto_rebalance.enabled = true;
  const auto errs = api::session::validate(opt);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("session_options.auto_rebalance"), std::string::npos);
}

TEST(ApiAutoRebalance, PolicyKnobsAreValidated) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 24;
  opt.sd_grid = 3;
  opt.epsilon_factor = 2;
  opt.auto_rebalance.enabled = true;
  opt.auto_rebalance.interval = 0;
  opt.auto_rebalance.trigger = -1.0;
  const auto errs = api::session::validate(opt);
  bool interval_err = false, trigger_err = false;
  for (const auto& e : errs) {
    if (e.find("session_options.auto_rebalance.interval") != std::string::npos)
      interval_err = true;
    if (e.find("session_options.auto_rebalance.trigger") != std::string::npos)
      trigger_err = true;
  }
  EXPECT_TRUE(interval_err);
  EXPECT_TRUE(trigger_err);

  // A disabled policy ignores the bad knobs (historical configs stay valid).
  opt.auto_rebalance.enabled = false;
  EXPECT_TRUE(api::session::validate(opt).empty());
}

TEST(ApiAutoRebalance, MetricsExposeRebalanceCounters) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 24;
  opt.sd_grid = 3;
  opt.epsilon_factor = 2;
  opt.nodes = 3;
  opt.auto_rebalance.enabled = true;
  opt.auto_rebalance.interval = 1;
  opt.auto_rebalance.trigger = 0.0;  // every check fires

  api::session s(opt);
  auto& h = s.solver();
  h.run(4);

  const auto m = h.metrics();
  EXPECT_TRUE(m.is_distributed);
  EXPECT_GT(m.rebalance_epochs, 0u);

  const auto snap = h.metrics_snapshot();
  auto has_counter = [&](const std::string& name) {
    return std::any_of(snap.counters.begin(), snap.counters.end(),
                       [&](const auto& kv) { return kv.first == name; });
  };
  auto has_gauge = [&](const std::string& name) {
    return std::any_of(snap.gauges.begin(), snap.gauges.end(),
                       [&](const auto& kv) { return kv.first == name; });
  };
  EXPECT_TRUE(has_counter("balance/checks"));
  EXPECT_TRUE(has_counter("balance/epochs"));
  EXPECT_TRUE(has_counter("balance/moves"));
  EXPECT_TRUE(has_gauge("balance/imbalance_before"));
  EXPECT_TRUE(has_gauge("balance/imbalance_after"));

  // The serial twin reports the same schema as genuine zeros.
  api::session_options sopt;
  sopt.n = 24;
  sopt.epsilon_factor = 2;
  api::session ss(sopt);
  ss.solver().run(2);
  const auto sm = ss.solver().metrics();
  EXPECT_FALSE(sm.is_distributed);
  EXPECT_EQ(sm.rebalance_epochs, 0u);
  EXPECT_EQ(sm.rebalance_moves, 0u);
}

TEST(ApiAutoRebalance, FacadeStaysBitwiseWithRebalancing) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 24;
  opt.sd_grid = 3;
  opt.epsilon_factor = 2;
  opt.nodes = 3;
  opt.kernel_backend = "simd";
  opt.auto_rebalance.enabled = true;
  opt.auto_rebalance.interval = 2;
  opt.auto_rebalance.trigger = 0.0;

  api::session d(opt);
  d.solver().run(6);

  auto sopt = opt;
  sopt.mode = api::execution_mode::serial;
  sopt.auto_rebalance = {};
  api::session s(sopt);
  s.solver().run(6);

  expect_bitwise_equal(d.solver().grid(), d.solver().field(),
                       s.solver().field());
}

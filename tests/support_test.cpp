// Unit tests for nlh::support: statistics, RNG, span2d, tables, CLI.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/span2d.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ns = nlh::support;

// ---------------------------------------------------------------- stats ----

TEST(RunningStats, EmptyIsZero) {
  ns::running_stats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  ns::running_stats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  ns::running_stats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  ns::running_stats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  ns::running_stats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  ns::running_stats rs;
  rs.add(5.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ns::mean(xs), 2.5);
  EXPECT_NEAR(ns::stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(ns::mean({}), 0.0);
}

TEST(BatchStats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(ns::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(ns::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(ns::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(ns::percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(ns::percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(ns::percentile(xs, 25), 20.0);
}

TEST(ImbalanceMetrics, BalancedIsZero) {
  EXPECT_DOUBLE_EQ(ns::imbalance_cov({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(ns::imbalance_ratio({1.0, 1.0, 1.0}), 0.0);
}

TEST(ImbalanceMetrics, KnownImbalance) {
  // max/mean - 1 with one node doing double work.
  EXPECT_NEAR(ns::imbalance_ratio({2.0, 1.0, 1.0}), 2.0 / (4.0 / 3.0) - 1.0, 1e-12);
  EXPECT_GT(ns::imbalance_cov({2.0, 1.0, 1.0}), 0.0);
}

TEST(ImbalanceMetrics, AllZeroBusyIsZero) {
  EXPECT_DOUBLE_EQ(ns::imbalance_cov({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(ns::imbalance_ratio({0.0, 0.0}), 0.0);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSeed) {
  ns::rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  ns::rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  ns::rng g(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  ns::rng g(99);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[static_cast<std::size_t>(g.uniform_int(0, 4))];
  for (int h : hits) EXPECT_GT(h, 800);  // ~1000 each
}

TEST(Rng, UniformIntSinglePoint) {
  ns::rng g(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(g.uniform_int(3, 3), 3);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  ns::rng g(2024);
  ns::running_stats rs;
  for (int i = 0; i < 20000; ++i) rs.add(g.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, ReseedReproduces) {
  ns::rng g(11);
  const auto x = g.next_u64();
  g.reseed(11);
  EXPECT_EQ(g.next_u64(), x);
}

// --------------------------------------------------------------- span2d ----

TEST(Span2d, IndexingIsRowMajor) {
  std::vector<int> v{0, 1, 2, 3, 4, 5};
  ns::span2d<int> s(v, 2, 3);
  EXPECT_EQ(s(0, 0), 0);
  EXPECT_EQ(s(0, 2), 2);
  EXPECT_EQ(s(1, 0), 3);
  EXPECT_EQ(s(1, 2), 5);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 3u);
}

TEST(Span2d, WritesThrough) {
  std::vector<int> v(4, 0);
  ns::span2d<int> s(v, 2, 2);
  s(1, 1) = 9;
  EXPECT_EQ(v[3], 9);
}

TEST(Span2d, RowPointer) {
  std::vector<double> v{1, 2, 3, 4};
  ns::span2d<double> s(v, 2, 2);
  EXPECT_EQ(s.row(1)[0], 3.0);
}

TEST(Span2d, ConstView) {
  const std::vector<int> v{1, 2};
  ns::span2d<const int> s(v, 1, 2);
  EXPECT_EQ(s(0, 1), 2);
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignedPrint) {
  ns::table t({"name", "value"});
  t.row().add("x").add(1.5);
  t.row().add("long-name").add(2);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  ns::table t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(ns::fmt_double(1.0, 4), "1");
  EXPECT_EQ(ns::fmt_double(0.125, 4), "0.125");
  EXPECT_EQ(ns::fmt_double(1234567.0, 3), "1.23e+06");
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, KeyValuePairs) {
  const char* argv[] = {"prog", "--n", "64", "--eps", "0.25", "--verbose"};
  ns::cli c(6, const_cast<char**>(argv));
  EXPECT_EQ(c.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(c.get_double("eps", 0.0), 0.25);
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_EQ(c.get_int("missing", 7), 7);
}

TEST(Cli, EqualsSyntax) {
  const char* argv[] = {"prog", "--n=32"};
  ns::cli c(2, const_cast<char**>(argv));
  EXPECT_EQ(c.get_int("n", 0), 32);
}

TEST(Cli, Positional) {
  const char* argv[] = {"prog", "file.txt", "--k", "2", "other"};
  ns::cli c(5, const_cast<char**>(argv));
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "file.txt");
  EXPECT_EQ(c.positional()[1], "other");
}

TEST(Cli, BoolParsing) {
  const char* argv[] = {"prog", "--a", "yes", "--b", "0"};
  ns::cli c(5, const_cast<char**>(argv));
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
}

TEST(Cli, MalformedNumbersKeepTheDefault) {
  const char* argv[] = {"prog", "--n", "abc", "--eps", "0.5x", "--safety", "0.25"};
  ns::cli c(7, const_cast<char**>(argv));
  EXPECT_EQ(c.get_int("n", 64), 64);             // not a number
  EXPECT_DOUBLE_EQ(c.get_double("eps", 0.5), 0.5);  // trailing garbage
  EXPECT_DOUBLE_EQ(c.get_double("safety", 0.5), 0.25);
}

TEST(Cli, DoubleParsesScientificNotation) {
  const char* argv[] = {"prog", "--dt", "1e-4"};
  ns::cli c(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(c.get_double("dt", 0.0), 1e-4);
}

namespace {
enum class color { red, green, blue };
const std::vector<std::pair<std::string, color>> kColors = {
    {"red", color::red}, {"green", color::green}, {"blue", color::blue}};
}  // namespace

TEST(Cli, GetEnumMapsClosedSetToEnum) {
  const char* argv[] = {"prog", "--tint", "green"};
  ns::cli c(3, const_cast<char**>(argv));
  EXPECT_EQ(c.get_enum<color>("tint", color::red, kColors), color::green);
}

TEST(Cli, GetEnumAbsentKeyYieldsDefault) {
  const char* argv[] = {"prog"};
  ns::cli c(1, const_cast<char**>(argv));
  EXPECT_EQ(c.get_enum<color>("tint", color::blue, kColors), color::blue);
}

TEST(Cli, GetEnumUnknownValueThrowsNamingTheValidSpellings) {
  const char* argv[] = {"prog", "--tint", "grene"};
  ns::cli c(3, const_cast<char**>(argv));
  try {
    c.get_enum<color>("tint", color::red, kColors);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--tint"), std::string::npos) << msg;
    EXPECT_NE(msg.find("grene"), std::string::npos) << msg;
    EXPECT_NE(msg.find("red"), std::string::npos) << msg;
    EXPECT_NE(msg.find("green"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blue"), std::string::npos) << msg;
  }
}

// Tests for the CSR graph, mesh dual-graph builder, metrics and baseline
// partitioners.

#include <gtest/gtest.h>

#include "partition/graph.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner.hpp"

namespace part = nlh::partition;

part::graph path_graph(int n) {
  std::vector<std::vector<std::pair<part::vid, part::weight_t>>> adj(
      static_cast<std::size_t>(n));
  for (int i = 0; i + 1 < n; ++i) adj[static_cast<std::size_t>(i)].push_back({i + 1, 1.0});
  return part::graph::from_adjacency(adj);
}

// ---------------------------------------------------------------- graph ----

TEST(Graph, EmptyGraph) {
  part::graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, PathGraphStructure) {
  auto g = path_graph(4);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));  // symmetrized
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, DefaultVertexWeightsAreOne) {
  auto g = path_graph(3);
  EXPECT_DOUBLE_EQ(g.vwgt(0), 1.0);
  EXPECT_DOUBLE_EQ(g.total_vwgt(), 3.0);
}

TEST(Graph, CustomVertexWeights) {
  std::vector<std::vector<std::pair<part::vid, part::weight_t>>> adj(2);
  adj[0].push_back({1, 2.0});
  auto g = part::graph::from_adjacency(adj, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(g.vwgt(1), 5.0);
  EXPECT_DOUBLE_EQ(g.total_vwgt(), 8.0);
  EXPECT_DOUBLE_EQ(g.incident_weight(0), 2.0);
}

TEST(Graph, DuplicateEdgesMerge) {
  std::vector<std::vector<std::pair<part::vid, part::weight_t>>> adj(2);
  adj[0].push_back({1, 1.0});
  adj[0].push_back({1, 2.5});
  auto g = part::graph::from_adjacency(adj);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.incident_weight(0), 3.5);
  EXPECT_DOUBLE_EQ(g.incident_weight(1), 3.5);
}

// ------------------------------------------------------------- mesh dual ----

TEST(MeshDual, FourNeighborCounts) {
  part::mesh_dual_options opt;
  opt.sd_rows = 3;
  opt.sd_cols = 3;
  opt.sd_size = 4;
  opt.ghost_width = 1;
  opt.include_diagonals = false;
  auto g = part::build_mesh_dual(opt);
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_EQ(g.num_edges(), 12);      // 2*3*2 horizontal+vertical
  EXPECT_EQ(g.degree(4), 4);         // center
  EXPECT_EQ(g.degree(0), 2);         // corner
}

TEST(MeshDual, DiagonalsIncluded) {
  part::mesh_dual_options opt;
  opt.sd_rows = 2;
  opt.sd_cols = 2;
  opt.sd_size = 4;
  opt.ghost_width = 1;
  opt.include_diagonals = true;
  auto g = part::build_mesh_dual(opt);
  EXPECT_EQ(g.num_edges(), 6);  // 4 sides + 2 diagonals
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(MeshDual, EdgeWeightsScaleWithGhost) {
  part::mesh_dual_options opt;
  opt.sd_rows = 1;
  opt.sd_cols = 2;
  opt.sd_size = 10;
  opt.ghost_width = 3;
  auto g = part::build_mesh_dual(opt);
  // Side edge weight = sd_size * ghost (DPs exchanged).
  EXPECT_DOUBLE_EQ(g.adjwgt(g.xadj(0)), 30.0);
}

TEST(MeshDual, VertexWeightIsDpCount) {
  part::mesh_dual_options opt;
  opt.sd_rows = 2;
  opt.sd_cols = 2;
  opt.sd_size = 5;
  opt.ghost_width = 1;
  auto g = part::build_mesh_dual(opt);
  EXPECT_DOUBLE_EQ(g.vwgt(0), 25.0);
}

TEST(MeshDual, CustomWorkWeights) {
  part::mesh_dual_options opt;
  opt.sd_rows = 1;
  opt.sd_cols = 3;
  opt.sd_size = 2;
  opt.ghost_width = 1;
  opt.sd_work = {1.0, 0.5, 1.0};  // cracked middle SD
  auto g = part::build_mesh_dual(opt);
  EXPECT_DOUBLE_EQ(g.vwgt(1), 0.5);
}

TEST(MeshDual, IndexHelpers) {
  EXPECT_EQ(part::sd_index(1, 2, 5), 7);
  EXPECT_EQ(part::sd_row(7, 5), 1);
  EXPECT_EQ(part::sd_col(7, 5), 2);
}

// ----------------------------------------------------------------- metrics ----

TEST(Metrics, EdgeCutOfBisectedPath) {
  auto g = path_graph(4);
  part::partition_vector p{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(part::edge_cut(g, p), 1.0);
  EXPECT_EQ(part::cut_edges(g, p), 1);
}

TEST(Metrics, ZeroCutSinglePart) {
  auto g = path_graph(5);
  part::partition_vector p(5, 0);
  EXPECT_DOUBLE_EQ(part::edge_cut(g, p), 0.0);
}

TEST(Metrics, PartWeightsAndBalance) {
  auto g = path_graph(4);
  part::partition_vector p{0, 0, 0, 1};
  const auto w = part::part_weights(g, p, 2);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(part::balance_factor(g, p, 2), 1.5);
}

TEST(Metrics, ContiguityDetection) {
  auto g = path_graph(5);
  part::partition_vector contiguous{0, 0, 1, 1, 1};
  part::partition_vector split{0, 1, 0, 1, 0};  // part 0 in three pieces
  EXPECT_TRUE(part::parts_contiguous(g, contiguous, 2));
  EXPECT_FALSE(part::parts_contiguous(g, split, 2));
  EXPECT_EQ(part::part_components(g, split, 0), 3);
  EXPECT_EQ(part::part_components(g, contiguous, 0), 1);
}

TEST(Metrics, EmptyPartHasZeroComponents) {
  auto g = path_graph(3);
  part::partition_vector p(3, 0);
  EXPECT_EQ(part::part_components(g, p, 1), 0);
  EXPECT_TRUE(part::parts_contiguous(g, p, 2));  // empty part is fine
}

// ---------------------------------------------------------------- baselines ----

TEST(Baselines, StripPartitionShape) {
  const auto p = part::strip_partition(4, 4, 2);
  // First two rows part 0, last two rows part 1.
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(p[static_cast<std::size_t>(c)], 0);
    EXPECT_EQ(p[static_cast<std::size_t>(3 * 4 + c)], 1);
  }
}

TEST(Baselines, StripPartitionCoversAllParts) {
  const auto p = part::strip_partition(8, 3, 4);
  std::vector<int> counts(4, 0);
  for (int v : p) ++counts[static_cast<std::size_t>(v)];
  for (int c : counts) EXPECT_EQ(c, 6);  // 2 rows * 3 cols each
}

TEST(Baselines, BlockPartitionIsBalancedOnDivisibleGrid) {
  const auto p = part::block_partition(4, 4, 4);
  std::vector<int> counts(4, 0);
  for (int v : p) ++counts[static_cast<std::size_t>(v)];
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Baselines, SquareFactors) {
  EXPECT_EQ(part::square_factors(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(part::square_factors(6), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(part::square_factors(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(part::square_factors(1), (std::pair<int, int>{1, 1}));
}

TEST(Baselines, RandomPartitionInRangeAndDeterministic) {
  const auto a = part::random_partition(100, 5, 42);
  const auto b = part::random_partition(100, 5, 42);
  EXPECT_EQ(a, b);
  for (int v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(Baselines, BlockBeatsStripOnCut) {
  // On a square dual grid with many parts, 2-D blocks cut fewer edges than
  // 1-D strips — the geometric fact behind METIS-style partitioning.
  part::mesh_dual_options opt;
  opt.sd_rows = 16;
  opt.sd_cols = 16;
  opt.sd_size = 4;
  opt.ghost_width = 1;
  opt.include_diagonals = false;
  auto g = part::build_mesh_dual(opt);
  const auto strip = part::strip_partition(16, 16, 8);
  const auto block = part::block_partition(16, 16, 8);
  EXPECT_LT(part::edge_cut(g, block), part::edge_cut(g, strip));
}

// Tests for grid2d, the influence function/scaling constant and the
// epsilon-ball stencil.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/stencil.hpp"

namespace nl = nlh::nonlocal;

// --------------------------------------------------------------- grid2d ----

TEST(Grid2d, BasicGeometry) {
  nl::grid2d g(8, 0.25);  // h = 1/8, eps = 2h
  EXPECT_EQ(g.n(), 8);
  EXPECT_DOUBLE_EQ(g.h(), 0.125);
  EXPECT_EQ(g.ghost(), 2);
  EXPECT_EQ(g.stride(), 12);
  EXPECT_EQ(g.total(), 144u);
}

TEST(Grid2d, CellCenteredCoordinates) {
  nl::grid2d g(4, 0.25);
  EXPECT_DOUBLE_EQ(g.x(0), 0.125);
  EXPECT_DOUBLE_EQ(g.x(3), 0.875);
  EXPECT_DOUBLE_EQ(g.y(1), 0.375);
  // Collar extends beyond [0,1].
  EXPECT_LT(g.x(-1), 0.0);
  EXPECT_GT(g.x(4), 1.0);
}

TEST(Grid2d, FlatIndexingCoversPaddedBox) {
  nl::grid2d g(4, 0.25);  // ghost 1
  EXPECT_EQ(g.flat(-1, -1), 0u);
  EXPECT_EQ(g.flat(0, 0), static_cast<std::size_t>(g.stride() + 1));
  EXPECT_EQ(g.flat(4, 4), g.total() - 1);
}

TEST(Grid2d, GhostCoversEpsilonExactMultiple) {
  nl::grid2d g(16, 8.0 / 16);  // eps = 8h exactly
  EXPECT_EQ(g.ghost(), 8);
}

TEST(Grid2d, GhostRoundsUp) {
  nl::grid2d g(10, 0.25);  // eps = 2.5h
  EXPECT_EQ(g.ghost(), 3);
}

TEST(Grid2d, InteriorPredicate) {
  nl::grid2d g(4, 0.25);
  EXPECT_TRUE(g.is_interior(0, 0));
  EXPECT_TRUE(g.is_interior(3, 3));
  EXPECT_FALSE(g.is_interior(-1, 0));
  EXPECT_FALSE(g.is_interior(0, 4));
}

TEST(Grid2d, CellVolume) {
  nl::grid2d g(10, 0.2);
  EXPECT_DOUBLE_EQ(g.cell_volume(), 0.01);
}

// ------------------------------------------------------------ influence ----

TEST(Influence, ConstantKernel) {
  nl::influence J(nl::influence_kind::constant);
  EXPECT_DOUBLE_EQ(J(0.0), 1.0);
  EXPECT_DOUBLE_EQ(J(1.0), 1.0);
  EXPECT_DOUBLE_EQ(J.moment(0), 1.0);
  EXPECT_DOUBLE_EQ(J.moment(3), 0.25);
}

TEST(Influence, LinearKernel) {
  nl::influence J(nl::influence_kind::linear);
  EXPECT_DOUBLE_EQ(J(0.0), 1.0);
  EXPECT_DOUBLE_EQ(J(1.0), 0.0);
  EXPECT_DOUBLE_EQ(J.moment(0), 0.5);
  // M3 = 1/4 - 1/5.
  EXPECT_NEAR(J.moment(3), 0.05, 1e-12);
}

TEST(Influence, GaussianMomentsMatchQuadratureReference) {
  nl::influence J(nl::influence_kind::gaussian);
  EXPECT_DOUBLE_EQ(J(0.0), 1.0);
  EXPECT_NEAR(J(1.0), std::exp(-4.0), 1e-12);
  // Reference values from high-resolution trapezoid integration.
  double ref = 0.0;
  const int n = 100000;
  for (int i = 0; i <= n; ++i) {
    const double r = static_cast<double>(i) / n;
    const double f = std::exp(-4.0 * r * r) * r * r * r;
    ref += (i == 0 || i == n) ? f / 2 : f;
  }
  ref /= n;
  EXPECT_NEAR(J.moment(3), ref, 1e-8);
}

TEST(Influence, ScalingConstant2d) {
  // d=2, J=1: c = 2k / (pi eps^4 M3) = 8k / (pi eps^4).
  nl::influence J(nl::influence_kind::constant);
  const double eps = 0.1;
  const double k = 2.0;
  EXPECT_NEAR(J.scaling_constant(2, k, eps),
              8.0 * k / (M_PI * eps * eps * eps * eps), 1e-9);
}

TEST(Influence, ScalingConstant1d) {
  // d=1, J=1: c = k / (eps^3 M2) = 3k / eps^3.
  nl::influence J(nl::influence_kind::constant);
  EXPECT_NEAR(J.scaling_constant(1, 1.0, 0.5), 3.0 / 0.125, 1e-9);
}

// -------------------------------------------------------------- stencil ----

TEST(Stencil, ExcludesCenterAndRespectsRadius) {
  nl::grid2d g(16, 2.0 / 16);  // eps = 2h
  nl::influence J;
  nl::stencil st(g, J);
  for (const auto& e : st.entries()) {
    EXPECT_FALSE(e.di == 0 && e.dj == 0);
    const double dist = std::hypot(e.di, e.dj) * g.h();
    EXPECT_LE(dist, g.epsilon() + 1e-12);
  }
}

TEST(Stencil, Eps2hOffsetCount) {
  // Offsets with di^2+dj^2 <= 4, excluding origin: 12.
  nl::grid2d g(16, 2.0 / 16);
  nl::stencil st(g, nl::influence{});
  EXPECT_EQ(st.size(), 12u);
  EXPECT_EQ(st.reach(), 2);
}

TEST(Stencil, WeightSumIsVolumeTimesCount) {
  // Constant J: weight sum = count * h^2.
  nl::grid2d g(16, 2.0 / 16);
  nl::stencil st(g, nl::influence{});
  EXPECT_NEAR(st.weight_sum(), 12.0 * g.cell_volume(), 1e-15);
}

TEST(Stencil, WeightSumApproximatesBallArea) {
  // sum w = sum J*h^2 over the discrete ball -> area of B_eps as h -> 0.
  nl::grid2d g(512, 16.0 / 512);  // eps = 16h, small relative to domain
  nl::stencil st(g, nl::influence{});
  const double ball_area = M_PI * g.epsilon() * g.epsilon();
  EXPECT_NEAR(st.weight_sum(), ball_area, 0.05 * ball_area);
}

TEST(Stencil, ReachBoundedByGhost) {
  for (int factor : {2, 4, 8}) {
    nl::grid2d g(64, static_cast<double>(factor) / 64);
    nl::stencil st(g, nl::influence{});
    EXPECT_LE(st.reach(), g.ghost());
    EXPECT_EQ(st.reach(), factor);  // exact multiple: reach = factor
  }
}

TEST(Stencil, StableDtPositive) {
  nl::grid2d g(32, 4.0 / 32);
  nl::influence J;
  nl::stencil st(g, J);
  const double c = J.scaling_constant(2, 1.0, g.epsilon());
  const double dt = nl::stable_dt(c, st);
  EXPECT_GT(dt, 0.0);
  EXPECT_NEAR(dt * c * st.weight_sum(), 1.0, 1e-12);
}

TEST(Stencil, LinearKernelWeightsDecay) {
  nl::grid2d g(32, 4.0 / 32);
  nl::stencil st(g, nl::influence{nl::influence_kind::linear});
  // Nearest offsets weigh more than the farthest ones.
  double near_w = 0.0, far_w = 1e9;
  for (const auto& e : st.entries()) {
    const double d2 = static_cast<double>(e.di) * e.di + static_cast<double>(e.dj) * e.dj;
    if (d2 <= 1.0) near_w = std::max(near_w, e.w);
    if (d2 >= 15.0) far_w = std::min(far_w, e.w);
  }
  EXPECT_GT(near_w, far_w);
}

// Tests for the virtual-time twin of the distributed solver: scaling shape,
// overlap behaviour, busy accounting.

#include <gtest/gtest.h>

#include "dist/sim_dist.hpp"
#include "partition/partitioner.hpp"

namespace dist = nlh::dist;
namespace sim = nlh::sim;

namespace {

dist::ownership_map block_ownership(const dist::tiling& t, int nodes) {
  const auto part = nlh::partition::block_partition(t.sd_rows(), t.sd_cols(), nodes);
  return dist::ownership_map::from_partition(t, nodes, part);
}

}  // namespace

TEST(SimDist, SingleNodeMakespanEqualsTotalWork) {
  dist::tiling t(2, 2, 10, 2);
  auto own = dist::ownership_map::single_node(t);
  dist::sim_cost_model cost;
  cost.work_per_dp = 1.0;
  dist::sim_cluster_config cluster;
  cluster.cores_per_node = 1;
  const auto res = dist::simulate_timestepping(t, own, 3, cost, cluster);
  // 4 SDs * 100 DPs * 3 steps, speed 1.
  EXPECT_DOUBLE_EQ(res.makespan, 1200.0);
  EXPECT_DOUBLE_EQ(res.node_busy[0], 1200.0);
  EXPECT_DOUBLE_EQ(res.node_busy_fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(res.network_bytes, 0.0);
}

TEST(SimDist, WorkConservedAcrossNodeCounts) {
  dist::tiling t(4, 4, 10, 2);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  double total_1 = 0.0;
  for (int nodes : {1, 2, 4}) {
    auto own = block_ownership(t, nodes);
    const auto res = dist::simulate_timestepping(t, own, 2, cost, cluster);
    double total = 0.0;
    for (double b : res.node_busy) total += b;
    if (nodes == 1)
      total_1 = total;
    else
      EXPECT_NEAR(total, total_1, 1e-9) << nodes;  // same work, just spread
  }
}

TEST(SimDist, MoreNodesFasterWithCheapNetwork) {
  dist::tiling t(4, 4, 50, 8);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  cluster.net.latency_s = 1e-7;
  cluster.net.bandwidth_bytes_per_s = 1e12;
  double prev = 1e18;
  for (int nodes : {1, 2, 4}) {
    auto own = block_ownership(t, nodes);
    const auto res = dist::simulate_timestepping(t, own, 5, cost, cluster);
    EXPECT_LT(res.makespan, prev) << nodes << " nodes";
    prev = res.makespan;
  }
}

TEST(SimDist, NearLinearSpeedupShape) {
  // The paper's strong-scaling claim: with enough SDs and a fast network,
  // speedup is near-linear in nodes.
  dist::tiling t(8, 8, 50, 8);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  cluster.net.latency_s = 1e-6;
  cluster.net.bandwidth_bytes_per_s = 1e10;
  auto run = [&](int nodes) {
    auto own = block_ownership(t, nodes);
    return dist::simulate_timestepping(t, own, 5, cost, cluster).makespan;
  };
  const double t1 = run(1);
  const double s2 = t1 / run(2);
  const double s4 = t1 / run(4);
  EXPECT_GT(s2, 1.8);
  EXPECT_LE(s2, 2.000001);
  EXPECT_GT(s4, 3.4);
  EXPECT_LE(s4, 4.000001);
}

TEST(SimDist, SlowNetworkDegradesScaling) {
  dist::tiling t(4, 4, 50, 8);
  dist::sim_cost_model cost;
  auto speedup4 = [&](double bandwidth) {
    dist::sim_cluster_config cluster;
    cluster.net.latency_s = 1e-6;
    cluster.net.bandwidth_bytes_per_s = bandwidth;
    auto own1 = dist::ownership_map::single_node(t);
    auto own4 = block_ownership(t, 4);
    const double t1 = dist::simulate_timestepping(t, own1, 3, cost, cluster).makespan;
    const double t4 = dist::simulate_timestepping(t, own4, 3, cost, cluster).makespan;
    return t1 / t4;
  };
  // A moderately slow network (1e4 B/s here) is still fully hidden by the
  // case-2 overlap — the paper's §6.3 point — so the crossover only appears
  // once per-strip transfer time exceeds a whole step's compute.
  EXPECT_NEAR(speedup4(1e12), speedup4(1e4), 0.05 * speedup4(1e12));
  EXPECT_GT(speedup4(1e12), speedup4(0.01));
}

TEST(SimDist, GhostTrafficScalesWithCutBoundary) {
  dist::tiling t(4, 4, 10, 2);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  // Strip (1-D) partitions cut more boundary than blocks (2-D) at 4 parts.
  const auto strip = dist::ownership_map::from_partition(
      t, 4, nlh::partition::strip_partition(4, 4, 4));
  const auto block = block_ownership(t, 4);
  const auto r_strip = dist::simulate_timestepping(t, strip, 2, cost, cluster);
  const auto r_block = dist::simulate_timestepping(t, block, 2, cost, cluster);
  EXPECT_GT(r_strip.network_bytes, r_block.network_bytes);
}

TEST(SimDist, SlowNodeShowsLowBusyOnOthers) {
  // One slow node forces others to wait at the step barrier: their busy
  // fraction drops — exactly the signal the balancer reads.
  dist::tiling t(4, 4, 10, 2);
  auto own = block_ownership(t, 4);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  cluster.node_capacity = std::vector<sim::capacity_trace>(
      4, sim::capacity_trace::constant(1.0));
  cluster.node_capacity[0] = sim::capacity_trace::constant(0.25);
  const auto res = dist::simulate_timestepping(t, own, 4, cost, cluster);
  EXPECT_GT(res.node_busy_fraction[0], 0.9);  // the slow node is saturated
  for (int n = 1; n < 4; ++n)
    EXPECT_LT(res.node_busy_fraction[static_cast<std::size_t>(n)], 0.6) << n;
}

TEST(SimDist, CrackScaleReducesWork) {
  dist::tiling t(2, 2, 10, 2);
  auto own = dist::ownership_map::single_node(t);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  const auto full = dist::simulate_timestepping(t, own, 2, cost, cluster);
  cost.sd_work_scale = {0.5, 1.0, 1.0, 1.0};
  const auto cracked = dist::simulate_timestepping(t, own, 2, cost, cluster);
  EXPECT_LT(cracked.makespan, full.makespan);
  EXPECT_DOUBLE_EQ(full.makespan - cracked.makespan, 100.0);  // 0.5*100DP*2steps
}

TEST(SimDist, PackWorkAddsCost) {
  dist::tiling t(1, 2, 10, 2);
  const dist::ownership_map own(t, 2, {0, 1});
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  const auto base = dist::simulate_timestepping(t, own, 2, cost, cluster);
  cost.pack_work_per_dp = 0.5;
  const auto packed = dist::simulate_timestepping(t, own, 2, cost, cluster);
  EXPECT_GT(packed.makespan, base.makespan);
}

TEST(SimDist, MultiCoreNodesCompoundWithDistribution) {
  // 2 nodes x 2 cores: speedup over (1 node, 1 core) approaches 4 when
  // there are enough SDs — hybrid shared/distributed parallelism.
  dist::tiling t(4, 4, 50, 8);
  dist::sim_cost_model cost;
  auto run = [&](int nodes, int cores) {
    dist::sim_cluster_config cluster;
    cluster.cores_per_node = cores;
    auto own = block_ownership(t, nodes);
    return dist::simulate_timestepping(t, own, 4, cost, cluster).makespan;
  };
  const double base = run(1, 1);
  EXPECT_NEAR(base / run(1, 2), 2.0, 0.2);
  EXPECT_NEAR(base / run(2, 1), 2.0, 0.2);
  EXPECT_GT(base / run(2, 2), 3.2);
  EXPECT_LE(base / run(2, 2), 4.0 + 1e-9);
}

TEST(SimDist, BusyFractionAccountsForCores) {
  dist::tiling t(2, 2, 10, 2);
  auto own = dist::ownership_map::single_node(t);
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  cluster.cores_per_node = 4;
  // 4 SDs on 4 cores: all cores busy the whole time.
  const auto res = dist::simulate_timestepping(t, own, 3, cost, cluster);
  EXPECT_NEAR(res.node_busy_fraction[0], 1.0, 1e-9);
  EXPECT_NEAR(res.node_busy[0], 4.0 * res.makespan, 1e-6);
}

TEST(SimDist, SdStepWorkHelper) {
  dist::tiling t(2, 2, 10, 2);
  dist::sim_cost_model cost;
  cost.work_per_dp = 2.0;
  EXPECT_DOUBLE_EQ(dist::sd_step_work(t, 0, cost), 200.0);
  cost.sd_work_scale = {0.5, 1, 1, 1};
  EXPECT_DOUBLE_EQ(dist::sd_step_work(t, 0, cost), 100.0);
}

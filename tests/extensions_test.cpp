// Tests for the library extensions beyond the paper's baseline: the
// bulk-synchronous baseline mode, networking performance counters (the
// paper's future-work item), higher-order time integrators, and dynamic
// workload rebalancing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "amt/counters.hpp"
#include "balance/sim_driver.hpp"
#include "dist/dist_solver.hpp"
#include "dist/sim_dist.hpp"
#include "model/capacity.hpp"
#include "net/comm_world.hpp"
#include "nonlocal/serial_solver.hpp"
#include "partition/partitioner.hpp"

namespace dist = nlh::dist;
namespace nl = nlh::nonlocal;
namespace net = nlh::net;
namespace amt = nlh::amt;

// ----------------------------------------------- bulk-synchronous baseline ----

TEST(BulkSyncMode, MatchesSerialReference) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  cfg.overlap_communication = false;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 1, 0}));
  solver.set_initial_condition();
  solver.run(3);

  nl::solver_config scfg;
  scfg.n = 16;
  scfg.epsilon_factor = 2;
  nl::serial_solver ref(scfg);
  ref.set_initial_condition();
  for (int k = 0; k < 3; ++k) ref.step(k);

  const auto mine = solver.gather();
  const auto& g = solver.grid();
  double maxdiff = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      maxdiff = std::max(maxdiff,
                         std::abs(mine[g.flat(i, j)] - ref.field()[g.flat(i, j)]));
  EXPECT_LT(maxdiff, 1e-12);
}

TEST(BulkSyncMode, SameGhostTrafficAsOverlap) {
  // The schedule changes; the data exchanged does not.
  auto run_bytes = [](bool overlap) {
    dist::dist_config cfg;
    cfg.sd_rows = cfg.sd_cols = 2;
    cfg.sd_size = 8;
    cfg.epsilon_factor = 2;
    cfg.overlap_communication = overlap;
    const dist::tiling t(2, 2, 8, 2);
    dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
    solver.set_initial_condition();
    solver.run(2);
    return solver.ghost_bytes();
  };
  EXPECT_EQ(run_bytes(true), run_bytes(false));
}

TEST(BulkSyncSim, NeverFasterThanOverlap) {
  dist::tiling t(4, 4, 50, 8);
  const auto own = dist::ownership_map::from_partition(
      t, 4, nlh::partition::block_partition(4, 4, 4));
  for (double latency : {1e-6, 1e-3, 1e-1}) {
    dist::sim_cluster_config cluster;
    cluster.net.latency_s = latency;
    dist::sim_cost_model cost;
    cost.overlap = true;
    const auto on = dist::simulate_timestepping(t, own, 5, cost, cluster);
    cost.overlap = false;
    const auto off = dist::simulate_timestepping(t, own, 5, cost, cluster);
    EXPECT_GE(off.makespan, on.makespan - 1e-9) << "latency " << latency;
  }
}

TEST(BulkSyncSim, HighLatencyHurtsBulkSyncMore) {
  dist::tiling t(4, 4, 50, 8);
  const auto own = dist::ownership_map::from_partition(
      t, 4, nlh::partition::block_partition(4, 4, 4));
  dist::sim_cluster_config cluster;
  // Latency comparable to a node's whole step: overlap can still hide some
  // of it behind case-2, bulk-sync cannot hide any.
  cluster.net.latency_s = 5000.0;
  dist::sim_cost_model cost;
  cost.overlap = true;
  const auto on = dist::simulate_timestepping(t, own, 5, cost, cluster);
  cost.overlap = false;
  const auto off = dist::simulate_timestepping(t, own, 5, cost, cluster);
  EXPECT_GT(off.makespan, 1.05 * on.makespan);
}

// ------------------------------------------------------ network counters ----

class NetworkCountersTest : public ::testing::Test {
 protected:
  void SetUp() override { amt::counter_registry::instance().clear(); }
  void TearDown() override { amt::counter_registry::instance().clear(); }
};

TEST_F(NetworkCountersTest, RegisterExposeAndReset) {
  auto& reg = amt::counter_registry::instance();
  net::comm_world world(2);
  world.register_counters();
  ASSERT_TRUE(reg.contains("/network{locality#0}/bytes-sent"));
  ASSERT_TRUE(reg.contains("/network{locality#1}/messages-sent"));

  net::byte_buffer payload(100);
  world.send(0, 1, 7, std::move(payload));
  EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/bytes-sent"), 100.0);
  EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/messages-sent"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("/network{locality#1}/bytes-sent"), 0.0);

  reg.reset("/network{locality#0}/bytes-sent");
  EXPECT_DOUBLE_EQ(reg.value("/network{locality#0}/bytes-sent"), 0.0);
}

TEST_F(NetworkCountersTest, UnregisteredOnDestruction) {
  auto& reg = amt::counter_registry::instance();
  {
    net::comm_world world(3);
    world.register_counters("/net-test");
    EXPECT_EQ(reg.paths_matching("/net-test").size(), 6u);
  }
  EXPECT_TRUE(reg.paths_matching("/net-test").empty());
}

TEST_F(NetworkCountersTest, PerLocalityRowSums) {
  net::comm_world world(3);
  world.send(0, 1, 1, net::byte_buffer(10));
  world.send(0, 2, 2, net::byte_buffer(20));
  world.send(1, 0, 3, net::byte_buffer(5));
  EXPECT_EQ(world.bytes_from(0), 30u);
  EXPECT_EQ(world.messages_from(0), 2u);
  EXPECT_EQ(world.bytes_from(1), 5u);
  world.reset_traffic_from(0);
  EXPECT_EQ(world.bytes_from(0), 0u);
  EXPECT_EQ(world.bytes_from(1), 5u);  // other rows untouched
}

// ------------------------------------------------------- time integrators ----

namespace {
double final_error(nl::time_integrator integ, double dt_safety, int steps) {
  nl::solver_config cfg;
  cfg.n = 16;
  cfg.epsilon_factor = 2;
  cfg.num_steps = steps;
  cfg.dt_safety = dt_safety;
  cfg.integrator = integ;
  return nl::serial_solver(cfg).run().final_ek;
}
}  // namespace

TEST(TimeIntegrators, HigherOrderIsMoreAccurate) {
  const double euler = final_error(nl::time_integrator::forward_euler, 0.5, 10);
  const double rk2 = final_error(nl::time_integrator::rk2_midpoint, 0.5, 10);
  const double rk4 = final_error(nl::time_integrator::rk4_classic, 0.5, 10);
  EXPECT_LT(rk2, 0.1 * euler);
  EXPECT_LT(rk4, 0.1 * rk2);
}

TEST(TimeIntegrators, EulerIsFirstOrder) {
  // Halving dt (same final time) must roughly halve the L2 error: the
  // e_k norm of eq. 7 is squared, so the ratio is ~4.
  const double coarse = final_error(nl::time_integrator::forward_euler, 0.5, 8);
  const double fine = final_error(nl::time_integrator::forward_euler, 0.25, 16);
  const double ratio = coarse / fine;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(TimeIntegrators, Rk2IsSecondOrder) {
  // Squared-norm ratio for order 2: ~ (2^2)^2 = 16.
  const double coarse = final_error(nl::time_integrator::rk2_midpoint, 0.5, 8);
  const double fine = final_error(nl::time_integrator::rk2_midpoint, 0.25, 16);
  const double ratio = coarse / fine;
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(TimeIntegrators, Rk4TracksExactSolutionTightly) {
  nl::solver_config cfg;
  cfg.n = 16;
  cfg.epsilon_factor = 2;
  cfg.num_steps = 10;
  cfg.integrator = nl::time_integrator::rk4_classic;
  const auto res = nl::serial_solver(cfg).run();
  EXPECT_LT(res.max_relative_error, 1e-7);
}

TEST(TimeIntegrators, AllStayStableAndFinite) {
  for (auto integ : {nl::time_integrator::forward_euler,
                     nl::time_integrator::rk2_midpoint,
                     nl::time_integrator::rk4_classic}) {
    nl::solver_config cfg;
    cfg.n = 12;
    cfg.epsilon_factor = 3;
    cfg.num_steps = 15;
    cfg.integrator = integ;
    nl::serial_solver s(cfg);
    s.run();
    for (double v : s.field()) EXPECT_TRUE(std::isfinite(v));
  }
}

// ------------------------------------------------ dynamic workload driver ----

TEST(DynamicBalancing, OnIterationHookFires) {
  dist::tiling t(4, 4, 10, 2);
  auto own = dist::ownership_map::from_partition(
      t, 2, nlh::partition::block_partition(4, 4, 2));
  nlh::balance::sim_balance_config cfg;
  cfg.max_iterations = 4;
  cfg.run_all_iterations = true;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(2, 1.0);
  int calls = 0;
  cfg.on_iteration = [&](int, dist::sim_cost_model&, dist::sim_cluster_config&) {
    ++calls;
  };
  const auto log = nlh::balance::run_sim_balancing(t, own, cfg);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(log.size(), 4u);
}

TEST(DynamicBalancing, TracksInterferenceArrival) {
  // Node 0 slows to 25% from iteration 2 on: the balancer must shed SDs
  // from node 0 after the change.
  dist::tiling t(6, 6, 10, 2);
  auto own = dist::ownership_map::from_partition(
      t, 2, nlh::partition::block_partition(6, 6, 2));
  nlh::balance::sim_balance_config cfg;
  cfg.max_iterations = 8;
  cfg.run_all_iterations = true;
  cfg.cov_tol = 0.03;
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(2, 1.0);
  cfg.on_iteration = [&](int it, dist::sim_cost_model&,
                         dist::sim_cluster_config& cluster) {
    cluster.node_capacity = it < 2
                                ? nlh::model::uniform_cluster(2, 1.0)
                                : nlh::model::heterogeneous_cluster({0.25, 1.0});
  };
  const auto before = own.sd_counts();
  EXPECT_EQ(before[0], before[1]);
  nlh::balance::run_sim_balancing(t, own, cfg);
  const auto after = own.sd_counts();
  EXPECT_LT(after[0], after[1]);
  // Roughly the 1:4 capacity ratio.
  EXPECT_NEAR(static_cast<double>(after[1]) / after[0], 4.0, 1.7);
}

TEST(DynamicBalancing, ConvergedRunsContinueWhenRequested) {
  dist::tiling t(4, 4, 10, 2);
  auto own = dist::ownership_map::from_partition(
      t, 2, nlh::partition::block_partition(4, 4, 2));
  nlh::balance::sim_balance_config cfg;
  cfg.max_iterations = 5;
  cfg.cov_tol = 10.0;  // everything counts as converged
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(2, 1.0);
  cfg.run_all_iterations = true;
  const auto log = nlh::balance::run_sim_balancing(t, own, cfg);
  EXPECT_EQ(log.size(), 5u);
  for (const auto& e : log) EXPECT_TRUE(e.converged);
}

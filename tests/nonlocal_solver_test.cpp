// Tests for the nonlocal operator, manufactured problem, error norms and the
// serial forward-Euler solver, including the Fig. 8 convergence property.

#include <gtest/gtest.h>

#include <cmath>

#include "nonlocal/error.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/problem.hpp"
#include "nonlocal/serial_solver.hpp"

namespace nl = nlh::nonlocal;

// ------------------------------------------------------ nonlocal operator ----

TEST(NonlocalOperator, ZeroOnConstantField) {
  // L[u] = 0 when u is constant within the horizon (differences vanish).
  nl::grid2d g(16, 2.0 / 16);
  nl::stencil st(g, nl::influence{});
  auto u = g.make_field();
  // Constant everywhere including the collar.
  for (auto& v : u) v = 3.7;
  auto out = g.make_field();
  nl::apply_nonlocal_operator(g, st, 5.0, u, out, {0, g.n(), 0, g.n()});
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j) EXPECT_NEAR(out[g.flat(i, j)], 0.0, 1e-13);
}

TEST(NonlocalOperator, SignOfDiffusion) {
  // A hot spot in a cold field diffuses: L[u] < 0 at the peak, > 0 nearby.
  nl::grid2d g(16, 2.0 / 16);
  nl::stencil st(g, nl::influence{});
  auto u = g.make_field();
  u[g.flat(8, 8)] = 1.0;
  auto out = g.make_field();
  nl::apply_nonlocal_operator(g, st, 1.0, u, out, {0, g.n(), 0, g.n()});
  EXPECT_LT(out[g.flat(8, 8)], 0.0);
  EXPECT_GT(out[g.flat(8, 9)], 0.0);
  EXPECT_GT(out[g.flat(7, 8)], 0.0);
}

TEST(NonlocalOperator, LinearityInField) {
  nl::grid2d g(12, 2.0 / 12);
  nl::stencil st(g, nl::influence{});
  auto u1 = g.make_field();
  auto u2 = g.make_field();
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j) {
      u1[g.flat(i, j)] = std::sin(0.5 * i) + j;
      u2[g.flat(i, j)] = std::cos(0.3 * j) - i;
    }
  auto sum = g.make_field();
  for (std::size_t k = 0; k < sum.size(); ++k) sum[k] = 2.0 * u1[k] + 3.0 * u2[k];
  auto o1 = g.make_field(), o2 = g.make_field(), os = g.make_field();
  const nl::dp_rect all{0, g.n(), 0, g.n()};
  nl::apply_nonlocal_operator(g, st, 1.5, u1, o1, all);
  nl::apply_nonlocal_operator(g, st, 1.5, u2, o2, all);
  nl::apply_nonlocal_operator(g, st, 1.5, sum, os, all);
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      EXPECT_NEAR(os[g.flat(i, j)], 2.0 * o1[g.flat(i, j)] + 3.0 * o2[g.flat(i, j)],
                  1e-10);
}

TEST(NonlocalOperator, RectRestrictsWrites) {
  nl::grid2d g(8, 2.0 / 8);
  nl::stencil st(g, nl::influence{});
  auto u = g.make_field();
  u[g.flat(4, 4)] = 1.0;
  auto out = g.make_field();
  nl::apply_nonlocal_operator(g, st, 1.0, u, out, {0, 4, 0, 8});  // top half only
  for (int j = 0; j < g.n(); ++j) EXPECT_DOUBLE_EQ(out[g.flat(6, j)], 0.0);
}

TEST(NonlocalOperator, RectDecompositionMatchesFull) {
  // Computing in two disjoint rects equals one full-rect application.
  nl::grid2d g(10, 3.0 / 10);
  nl::stencil st(g, nl::influence{nl::influence_kind::linear});
  auto u = g.make_field();
  for (std::size_t k = 0; k < u.size(); ++k) u[k] = std::sin(0.1 * k);
  auto full = g.make_field(), split = g.make_field();
  nl::apply_nonlocal_operator(g, st, 2.0, u, full, {0, 10, 0, 10});
  nl::apply_nonlocal_operator(g, st, 2.0, u, split, {0, 6, 0, 10});
  nl::apply_nonlocal_operator(g, st, 2.0, u, split, {6, 10, 0, 10});
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      EXPECT_DOUBLE_EQ(split[g.flat(i, j)], full[g.flat(i, j)]);
}

TEST(NonlocalOperator, ApproximatesLaplacianOfQuadratic) {
  // For u = x^2 + y^2, the nonlocal operator with the eq. (2) scaling must
  // approach k * Laplacian(u) = 4k away from the boundary.
  const int n = 128;
  nl::grid2d g(n, 8.0 / n);
  nl::influence J;
  nl::stencil st(g, J);
  const double k = 1.0;
  const double c = J.scaling_constant(2, k, g.epsilon());
  auto u = g.make_field();
  for (int i = -g.ghost(); i < n + g.ghost(); ++i)
    for (int j = -g.ghost(); j < n + g.ghost(); ++j) {
      const double x = g.x(j), y = g.y(i);
      u[g.flat(i, j)] = x * x + y * y;
    }
  auto out = g.make_field();
  const int mid = n / 2;
  nl::apply_nonlocal_operator(g, st, c, u, out, {mid, mid + 1, mid, mid + 1});
  EXPECT_NEAR(out[g.flat(mid, mid)], 4.0 * k, 0.15 * 4.0 * k);
}

// ---------------------------------------------------------------- problem ----

TEST(Problem, ExactSolutionBoundaryZero) {
  EXPECT_DOUBLE_EQ(nl::manufactured_problem::w(0.3, -0.1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(nl::manufactured_problem::w(0.3, 0.5, 1.2), 0.0);
  EXPECT_NE(nl::manufactured_problem::w(0.3, 0.25, 0.25), 0.0);
}

TEST(Problem, InitialConditionMatchesWAtZero) {
  EXPECT_DOUBLE_EQ(nl::manufactured_problem::u0(0.3, 0.7),
                   nl::manufactured_problem::w(0.0, 0.3, 0.7));
}

TEST(Problem, TimeDerivativeIsConsistent) {
  // Finite-difference check of dw/dt.
  const double t = 0.2, x = 0.3, y = 0.6, dt = 1e-6;
  const double fd = (nl::manufactured_problem::w(t + dt, x, y) -
                     nl::manufactured_problem::w(t - dt, x, y)) /
                    (2 * dt);
  EXPECT_NEAR(nl::manufactured_problem::dwdt(t, x, y), fd, 1e-6);
}

TEST(Problem, SourceMakesWExactForSemiDiscrete) {
  // With the discrete manufactured source, dw/dt = b + L_h[w] holds exactly
  // at every DP.
  nl::grid2d g(16, 3.0 / 16);
  nl::influence J;
  nl::stencil st(g, J);
  const double c = J.scaling_constant(2, 1.0, g.epsilon());
  nl::manufactured_problem prob(g, st, c);
  const double t = 0.37;
  auto w = prob.exact_field(t);
  auto b = prob.source_field(t);
  auto lw = g.make_field();
  nl::apply_nonlocal_operator(g, st, c, w, lw, {0, g.n(), 0, g.n()});
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j) {
      const auto idx = g.flat(i, j);
      EXPECT_NEAR(nl::manufactured_problem::dwdt(t, g.x(j), g.y(i)),
                  b[idx] + lw[idx], 1e-11);
    }
}

// ------------------------------------------------------------------ error ----

TEST(ErrorNorms, ZeroForIdenticalFields) {
  nl::grid2d g(8, 2.0 / 8);
  auto a = g.make_field();
  for (std::size_t k = 0; k < a.size(); ++k) a[k] = 0.5 * k;
  EXPECT_DOUBLE_EQ(nl::error_ek(g, a, a), 0.0);
  EXPECT_DOUBLE_EQ(nl::error_max_relative(g, a, a), 0.0);
}

TEST(ErrorNorms, KnownDifference) {
  nl::grid2d g(2, 0.5);  // 4 interior DPs, h^2 = 0.25
  auto exact = g.make_field();
  auto num = g.make_field();
  exact[g.flat(0, 0)] = 1.0;  // single diff of 1
  EXPECT_DOUBLE_EQ(nl::error_ek(g, exact, num), 0.25);
  EXPECT_DOUBLE_EQ(nl::error_l2(g, exact, num), 0.5);
  EXPECT_DOUBLE_EQ(nl::error_max_relative(g, exact, num), 1.0);
}

TEST(ErrorNorms, CollarIgnored) {
  nl::grid2d g(4, 0.25);
  auto exact = g.make_field();
  auto num = g.make_field();
  num[g.flat(-1, -1)] = 100.0;  // garbage in the collar must not count
  EXPECT_DOUBLE_EQ(nl::error_ek(g, exact, num), 0.0);
}

TEST(ErrorNorms, AccumulatorSums) {
  nl::error_accumulator acc;
  acc.add_step(0.5);
  acc.add_step(0.25);
  EXPECT_DOUBLE_EQ(acc.total(), 0.75);
  EXPECT_EQ(acc.steps(), 2);
}

// -------------------------------------------------------------- solver ----

TEST(SerialSolver, ConfigDerivedQuantities) {
  nl::solver_config cfg;
  cfg.n = 32;
  cfg.epsilon_factor = 4;
  nl::serial_solver s(cfg);
  EXPECT_EQ(s.grid().n(), 32);
  EXPECT_EQ(s.grid().ghost(), 4);
  EXPECT_GT(s.dt(), 0.0);
}

TEST(SerialSolver, TracksManufacturedSolution) {
  nl::solver_config cfg;
  cfg.n = 32;
  cfg.epsilon_factor = 4;
  cfg.num_steps = 10;
  nl::serial_solver s(cfg);
  const auto res = s.run();
  // Semi-discrete-exact source: only forward-Euler error remains, which is
  // tiny over 10 stable steps.
  EXPECT_LT(res.max_relative_error, 1e-3);
  EXPECT_GT(res.total_error_e, 0.0);
}

TEST(SerialSolver, ZeroStepsStateIsInitialCondition) {
  nl::solver_config cfg;
  cfg.n = 16;
  cfg.epsilon_factor = 2;
  nl::serial_solver s(cfg);
  s.set_initial_condition();
  const auto& u = s.field();
  const auto& g = s.grid();
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      EXPECT_DOUBLE_EQ(u[g.flat(i, j)],
                       nl::manufactured_problem::u0(g.x(j), g.y(i)));
}

TEST(SerialSolver, ErrorGrowsWithDt) {
  // Same steps, double dt: forward-Euler error must grow.
  auto run_with_dt_factor = [](double safety) {
    nl::solver_config cfg;
    cfg.n = 24;
    cfg.epsilon_factor = 3;
    cfg.num_steps = 8;
    cfg.dt_safety = safety;
    return nl::serial_solver(cfg).run().final_ek;
  };
  EXPECT_LT(run_with_dt_factor(0.25), run_with_dt_factor(0.9));
}

TEST(SerialSolver, Fig8ErrorDecreasesWithMesh) {
  // The validation experiment (paper Fig. 8): error decreases as h = 1/2^n
  // decreases. Scaled-down n range to keep the test fast.
  double prev = 1e9;
  for (int n : {8, 16, 32}) {
    nl::solver_config cfg;
    cfg.n = n;
    cfg.epsilon_factor = 2;
    cfg.num_steps = 5;
    const auto res = nl::serial_solver(cfg).run();
    EXPECT_LT(res.total_error_e, prev) << "n=" << n;
    prev = res.total_error_e;
  }
}

TEST(SerialSolver, DifferentKernelsStillConverge) {
  for (auto kind : {nl::influence_kind::constant, nl::influence_kind::linear,
                    nl::influence_kind::gaussian}) {
    nl::solver_config cfg;
    cfg.n = 24;
    cfg.epsilon_factor = 3;
    cfg.num_steps = 5;
    cfg.kind = kind;
    const auto res = nl::serial_solver(cfg).run();
    EXPECT_LT(res.max_relative_error, 1e-2) << static_cast<int>(kind);
  }
}

// Parameterized stability sweep: the solver must remain bounded for any
// stable dt across epsilon factors.
class StabilitySweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(StabilitySweep, BoundedSolution) {
  const auto [factor, safety] = GetParam();
  nl::solver_config cfg;
  cfg.n = 24;
  cfg.epsilon_factor = factor;
  cfg.num_steps = 12;
  cfg.dt_safety = safety;
  nl::serial_solver s(cfg);
  const auto res = s.run();
  EXPECT_LT(res.max_relative_error, 0.5);
  for (double v : s.field()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    EpsAndDt, StabilitySweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6),
                       ::testing::Values(0.2, 0.5, 0.95)));

// Tests for the multilevel k-way partitioner (the METIS substitute),
// including TEST_P property sweeps over grid shapes, part counts and seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"

namespace part = nlh::partition;

namespace {

part::graph grid_dual(int rows, int cols, bool diagonals = true) {
  part::mesh_dual_options opt;
  opt.sd_rows = rows;
  opt.sd_cols = cols;
  opt.sd_size = 4;
  opt.ghost_width = 1;
  opt.include_diagonals = diagonals;
  return part::build_mesh_dual(opt);
}

}  // namespace

TEST(Multilevel, SinglePartIsTrivial) {
  auto g = grid_dual(4, 4);
  part::partition_options opt;
  opt.k = 1;
  const auto p = part::multilevel_partition(g, opt);
  for (int v : p) EXPECT_EQ(v, 0);
}

TEST(Multilevel, BisectionOfGridIsBalanced) {
  auto g = grid_dual(8, 8);
  part::partition_options opt;
  opt.k = 2;
  const auto p = part::multilevel_partition(g, opt);
  part::validate_partition(g, p, 2);
  EXPECT_LE(part::balance_factor(g, p, 2), opt.balance_tolerance + 1e-9);
}

TEST(Multilevel, BeatsRandomOnCut) {
  auto g = grid_dual(12, 12);
  part::partition_options opt;
  opt.k = 4;
  const auto ml = part::multilevel_partition(g, opt);
  const auto rnd = part::random_partition(g.num_vertices(), 4, 7);
  EXPECT_LT(part::edge_cut(g, ml), 0.5 * part::edge_cut(g, rnd));
}

TEST(Multilevel, CompetitiveWithBlockPartition) {
  // METIS-quality contract: within 1.5x of the geometric 2-D block cut.
  auto g = grid_dual(16, 16, false);
  part::partition_options opt;
  opt.k = 4;
  const auto ml = part::multilevel_partition(g, opt);
  const auto block = part::block_partition(16, 16, 4);
  EXPECT_LE(part::edge_cut(g, ml), 1.5 * part::edge_cut(g, block));
}

TEST(Multilevel, DeterministicForSeed) {
  auto g = grid_dual(10, 10);
  part::partition_options opt;
  opt.k = 3;
  opt.seed = 99;
  EXPECT_EQ(part::multilevel_partition(g, opt), part::multilevel_partition(g, opt));
}

TEST(Multilevel, WeightedVerticesBalanceByWeight) {
  // Heavy SDs on the left half: the partition must not just split by count.
  part::mesh_dual_options mopt;
  mopt.sd_rows = 4;
  mopt.sd_cols = 8;
  mopt.sd_size = 4;
  mopt.ghost_width = 1;
  mopt.sd_work.assign(32, 1.0);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) mopt.sd_work[static_cast<std::size_t>(r * 8 + c)] = 3.0;
  auto g = part::build_mesh_dual(mopt);
  part::partition_options opt;
  opt.k = 2;
  const auto p = part::multilevel_partition(g, opt);
  EXPECT_LE(part::balance_factor(g, p, 2), opt.balance_tolerance + 1e-9);
}

TEST(RefinePartition, ImprovesBadCut) {
  auto g = grid_dual(8, 8, false);
  // Checkerboard: terrible cut, perfectly balanced.
  part::partition_vector p(64);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) p[static_cast<std::size_t>(r * 8 + c)] = (r + c) % 2;
  const auto before = part::edge_cut(g, p);
  part::refine_partition(g, p, 2, 1.15, 12);
  const auto after = part::edge_cut(g, p);
  EXPECT_LT(after, before);
  part::validate_partition(g, p, 2);
}

TEST(RefinePartition, NeverEmptiesAPart) {
  auto g = grid_dual(3, 3, false);
  part::partition_vector p{0, 1, 1, 1, 1, 1, 1, 1, 1};
  part::refine_partition(g, p, 2, 2.0, 8);
  int zeros = 0;
  for (int v : p) zeros += v == 0;
  EXPECT_GE(zeros, 1);
}

TEST(AbsorbStray, MergesIslands) {
  auto g = grid_dual(4, 4, false);
  // Part 0 in two opposite corners (disconnected), part 1 elsewhere.
  part::partition_vector p(16, 1);
  p[0] = 0;
  p[15] = 0;
  EXPECT_GT(part::part_components(g, p, 0), 1);
  EXPECT_TRUE(part::absorb_stray_components(g, p, 2));
  EXPECT_EQ(part::part_components(g, p, 0), 1);
}

TEST(AbsorbStray, NoopWhenContiguous) {
  auto g = grid_dual(4, 4, false);
  const auto p0 = part::strip_partition(4, 4, 2);
  auto p = p0;
  EXPECT_FALSE(part::absorb_stray_components(g, p, 2));
  EXPECT_EQ(p, p0);
}

TEST(RebalanceContiguous, FixesOverload) {
  auto g = grid_dual(4, 4, false);
  // Part 1 owns only one SD.
  part::partition_vector p(16, 0);
  p[15] = 1;
  const int moves = part::rebalance_contiguous(g, p, 2, 1.15, 100);
  EXPECT_GT(moves, 0);
  EXPECT_LE(part::balance_factor(g, p, 2), 1.15 + 1e-9);
  EXPECT_TRUE(part::parts_contiguous(g, p, 2));
}

// ------------------------- property sweep: (rows, cols, k, seed) -------------

using SweepParam = std::tuple<int, int, int, unsigned>;

class MultilevelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MultilevelSweep, PartitionContractHolds) {
  const auto [rows, cols, k, seed] = GetParam();
  auto g = grid_dual(rows, cols);
  part::partition_options opt;
  opt.k = k;
  opt.seed = seed;
  const auto p = part::multilevel_partition(g, opt);

  // Contract 1: valid assignment covering every vertex.
  part::validate_partition(g, p, k);

  // Contract 2: no part is empty.
  const auto w = part::part_weights(g, p, k);
  for (int i = 0; i < k; ++i) EXPECT_GT(w[static_cast<std::size_t>(i)], 0.0) << "part " << i;

  // Contract 3: balance within tolerance (+1 vertex granularity slack).
  const double ideal = g.total_vwgt() / k;
  const double max_w = *std::max_element(w.begin(), w.end());
  EXPECT_LE(max_w, ideal * opt.balance_tolerance + 16.0)
      << rows << "x" << cols << " k=" << k;

  // Contract 4: contiguity on grid dual graphs.
  EXPECT_TRUE(part::parts_contiguous(g, p, k)) << rows << "x" << cols << " k=" << k;

  // Contract 5: cut is no worse than 3x the strip baseline (usually far
  // better; this guards against degenerate output).
  const auto strip = part::strip_partition(rows, cols, k);
  if (rows >= k)
    EXPECT_LE(part::edge_cut(g, p), 3.0 * part::edge_cut(g, strip) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, MultilevelSweep,
    ::testing::Values(SweepParam{4, 4, 2, 1}, SweepParam{4, 4, 4, 1},
                      SweepParam{5, 5, 4, 2},  // the paper's Fig. 2/14 shape
                      SweepParam{8, 8, 2, 3}, SweepParam{8, 8, 4, 3},
                      SweepParam{8, 8, 7, 4},  // non-divisible k
                      SweepParam{16, 16, 4, 5}, SweepParam{16, 16, 16, 5},
                      SweepParam{6, 10, 3, 6},  // rectangular grid
                      SweepParam{12, 3, 5, 7}, SweepParam{16, 16, 4, 99},
                      SweepParam{10, 10, 10, 11}));

// Seeds-only sweep on the Fig. 13 shape (16x16 SDs).
class MultilevelSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultilevelSeeds, Fig13ShapeAlwaysContiguous) {
  auto g = grid_dual(16, 16);
  part::partition_options opt;
  opt.k = 8;
  opt.seed = GetParam();
  const auto p = part::multilevel_partition(g, opt);
  part::validate_partition(g, p, 8);
  EXPECT_TRUE(part::parts_contiguous(g, p, 8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// Tests for the scenario-registry error paths (unknown key, duplicate
// registration, null factory, null custom_scenario fallbacks) and for
// batch_runner: options validation, FIFO / priority admission under the
// concurrency cap, per-job failure isolation, aggregate metrics, and the
// headline property — a concurrent mixed scenario/backend/mode batch where
// every serial/distributed pair of one (scenario, backend) cell agrees
// bitwise even while tenants pinned to other backends run interleaved.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "api/session.hpp"

namespace api = nlh::api;
namespace nl = nlh::nonlocal;

namespace {

bool mentions(const std::vector<std::string>& errs, const std::string& needle) {
  return std::any_of(errs.begin(), errs.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

double max_abs_diff(const nl::grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(a[g.flat(i, j)] - b[g.flat(i, j)]));
  return m;
}

api::session_options small_options(const std::string& scenario) {
  api::session_options opt;
  opt.scenario = scenario;
  opt.n = 16;
  opt.epsilon_factor = 2;
  opt.num_steps = 3;
  opt.sd_grid = 2;
  opt.nodes = 2;
  return opt;
}

}  // namespace

// ------------------------------------------------- registry error paths --

TEST(RegistryErrors, UnknownKeyThrowsListingRegisteredScenarios) {
  try {
    api::make_scenario("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-scenario"), std::string::npos) << msg;
    for (const char* builtin : {"crack", "gaussian_pulse", "lshape", "manufactured"})
      EXPECT_NE(msg.find(builtin), std::string::npos) << msg;
  }
}

TEST(RegistryErrors, DuplicateRegistrationReplacesTheFactory) {
  api::register_scenario("dup_probe", [] {
    return std::make_shared<const api::gaussian_pulse_scenario>(0.2, 0.2, 0.05);
  });
  // Same key again: last registration wins (documented replace semantics).
  api::register_scenario("dup_probe", [] {
    return std::make_shared<const api::manufactured_scenario>();
  });
  const auto scn = api::make_scenario("dup_probe");
  EXPECT_EQ(scn->name(), "manufactured");
  EXPECT_TRUE(scn->has_exact());
  // The key appears once, not twice.
  const auto names = api::scenario_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "dup_probe"), 1);
}

using RegistryDeathTest = ::testing::Test;

TEST(RegistryDeathTest, NullFactoryAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(api::register_scenario("broken", api::scenario_factory{}),
               "null factory");
}

TEST(RegistryDeathTest, EmptyNameAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(api::register_scenario("", [] {
                 return std::make_shared<const api::manufactured_scenario>();
               }),
               "empty name");
}

TEST(RegistryErrors, NullCustomScenarioFallsBackToTheRegistryKey) {
  auto opt = small_options("gaussian_pulse");
  opt.custom_scenario = nullptr;  // explicit null = "use the key" (the default)
  api::session session(opt);
  EXPECT_EQ(session.active_scenario().name(), "gaussian_pulse");

  // Null custom scenario plus a bad key is a scenario validation error,
  // not a crash on the null pointer.
  opt.scenario = "definitely-unknown";
  EXPECT_TRUE(mentions(api::session::validate(opt), "session_options.scenario"));
  EXPECT_THROW(api::session{opt}, std::invalid_argument);
}

// -------------------------------------------------- batch_runner options --

TEST(BatchOptions, ValidationNamesTheOffendingField) {
  api::batch_options opt;
  opt.pool_threads = 0;
  opt.max_concurrent_jobs = 0;
  const auto errs = api::validate(opt);
  EXPECT_TRUE(mentions(errs, "batch_options.pool_threads"));
  EXPECT_TRUE(mentions(errs, "batch_options.max_concurrent_jobs"));

  opt = api::batch_options{};
  opt.pool_threads = 2;
  opt.max_concurrent_jobs = 4;  // cap can never fill
  EXPECT_TRUE(mentions(api::validate(opt), "exceeds pool_threads"));

  EXPECT_TRUE(api::validate(api::batch_options{}).empty());
  EXPECT_THROW(api::batch_runner{opt}, std::invalid_argument);
}

// ------------------------------------------------------ admission order --

TEST(BatchAdmission, FifoRunsJobsInSubmissionOrder) {
  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 1;  // serialize so completion order == admission
  api::batch_runner runner(bopt);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&mu, &order](const std::string& label) {
    return [&mu, &order, label](api::session&) {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(label);
    };
  };

  std::vector<api::batch_job> jobs;
  for (const char* label : {"first", "second", "third"}) {
    api::batch_job j;
    j.options = small_options("manufactured");
    j.label = label;
    j.on_complete = record(label);
    jobs.push_back(std::move(j));
  }
  for (auto& f : runner.submit_all(std::move(jobs))) EXPECT_TRUE(f.get().ok);
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(BatchAdmission, PriorityAdmitsHighestFirstFifoAmongEquals) {
  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 1;
  bopt.admission = api::admission_policy::priority;
  api::batch_runner runner(bopt);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&mu, &order](const std::string& label) {
    return [&mu, &order, label](api::session&) {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(label);
    };
  };

  // The blocker occupies the only slot until we release it, so the later
  // submissions are all queued when the admission decision happens —
  // deterministic, no timing assumptions.
  std::promise<void> release;
  auto released = release.get_future().share();
  api::batch_job blocker;
  blocker.options = small_options("manufactured");
  blocker.label = "blocker";
  blocker.on_complete = [released](api::session&) { released.wait(); };

  auto make = [&](const char* label, int priority) {
    api::batch_job j;
    j.options = small_options("manufactured");
    j.label = label;
    j.priority = priority;
    j.on_complete = record(label);
    return j;
  };

  auto fb = runner.submit(std::move(blocker));
  auto f_low = runner.submit(make("low", 0));
  auto f_mid_a = runner.submit(make("mid-a", 3));
  auto f_high = runner.submit(make("high", 7));
  auto f_mid_b = runner.submit(make("mid-b", 3));
  release.set_value();

  for (auto* f : {&fb, &f_low, &f_mid_a, &f_high, &f_mid_b})
    EXPECT_TRUE(f->get().ok);
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid-a", "mid-b", "low"}));
}

// ------------------------------------------------- failures + aggregates --

TEST(BatchRunner, JobFailuresAreIsolatedAndReported) {
  api::batch_runner runner;

  api::batch_job bad;
  bad.options = small_options("manufactured");
  bad.options.mode = api::execution_mode::distributed;
  bad.options.n = 15;  // not divisible by sd_grid = 2
  bad.label = "bad";

  api::batch_job good;
  good.options = small_options("manufactured");
  good.label = "good";

  auto fb = runner.submit(std::move(bad));
  auto fg = runner.submit(std::move(good));

  const auto rb = fb.get();
  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("session_options.sd_grid"), std::string::npos) << rb.error;
  const auto rg = fg.get();
  EXPECT_TRUE(rg.ok);
  EXPECT_EQ(rg.metrics.steps, 3);

  const auto agg = runner.aggregate();
  EXPECT_EQ(agg.jobs_submitted, 2);
  EXPECT_EQ(agg.jobs_completed, 1);
  EXPECT_EQ(agg.jobs_failed, 1);
  EXPECT_EQ(agg.total_steps, 3);
  EXPECT_GT(agg.jobs_per_second, 0.0);
}

TEST(BatchRunner, NumStepsOverridesSessionOptions) {
  api::batch_runner runner;
  api::batch_job j;
  j.options = small_options("manufactured");  // options.num_steps = 3
  j.num_steps = 5;
  EXPECT_EQ(runner.submit(std::move(j)).get().metrics.steps, 5);
}

// ------------------------------------- concurrent mixed-backend batches --

// The acceptance property through the batch layer: >= 8 jobs mixing
// scenarios, kernel backends and execution modes run concurrently over the
// shared pool, and every serial/distributed pair of one (scenario,
// backend) cell still agrees bitwise.
TEST(BatchRunner, ConcurrentMixedBackendJobsKeepTheBitwiseGuarantee) {
  api::batch_options bopt;
  bopt.pool_threads = 4;
  bopt.max_concurrent_jobs = 4;
  api::batch_runner runner(bopt);

  const std::vector<std::string> scenarios = {"manufactured", "gaussian_pulse"};
  const std::vector<std::string> backends = {"scalar", "row_run"};

  std::mutex mu;
  std::map<std::string, std::vector<double>> fields;

  std::vector<api::batch_job> jobs;
  for (const auto& scn : scenarios)
    for (const auto& backend : backends)
      for (const auto mode :
           {api::execution_mode::serial, api::execution_mode::distributed}) {
        api::batch_job j;
        j.options = small_options(scn);
        j.options.kernel_backend = backend;
        j.options.mode = mode;
        j.options.threads_per_locality = 2;
        const std::string key =
            scn + "/" + backend +
            (mode == api::execution_mode::serial ? "/serial" : "/dist");
        j.label = key;
        j.on_complete = [&mu, &fields, key](api::session& s) {
          auto f = s.solver().field();
          std::lock_guard<std::mutex> lk(mu);
          fields[key] = std::move(f);
        };
        jobs.push_back(std::move(j));
      }
  ASSERT_GE(jobs.size(), 8u);

  for (auto& f : runner.submit_all(std::move(jobs))) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }

  const nl::grid2d grid(16, 2.0 / 16.0);
  int pairs = 0;
  for (const auto& scn : scenarios)
    for (const auto& backend : backends) {
      const auto& serial = fields.at(scn + "/" + backend + "/serial");
      const auto& dist = fields.at(scn + "/" + backend + "/dist");
      EXPECT_EQ(max_abs_diff(grid, serial, dist), 0.0)
          << scn << "/" << backend << " pair diverged inside the batch";
      ++pairs;
    }
  EXPECT_EQ(pairs, 4);

  const auto agg = runner.aggregate();
  EXPECT_EQ(agg.jobs_completed, 8);
  EXPECT_EQ(agg.jobs_failed, 0);
  EXPECT_EQ(agg.total_steps, 8 * 3);
  EXPECT_GT(agg.ghost_bytes, 0u);
}

// Destroying the runner with jobs still queued must complete them (the
// destructor waits) and every handed-out future must still resolve.
TEST(BatchRunner, DestructorDrainsOutstandingJobs) {
  std::vector<nlh::amt::future<api::batch_job_result>> futs;
  {
    api::batch_runner runner;
    for (int k = 0; k < 4; ++k) {
      api::batch_job j;
      j.options = small_options("manufactured");
      futs.push_back(runner.submit(std::move(j)));
    }
  }  // ~batch_runner waits
  for (auto& f : futs) {
    ASSERT_TRUE(f.is_ready());
    EXPECT_TRUE(f.get().ok);
  }
}

// ------------------------------------------------------------- drain -----

// drain(): admission stops, queued jobs fail fast with a distinct
// "abandoned" error, in-flight work finishes, and the report accounts for
// every job. Submissions after the drain are refused immediately.
TEST(BatchRunner, DrainAbandonsQueuedJobsAndReportsCounts) {
  api::batch_options opt;
  opt.pool_threads = 1;
  opt.max_concurrent_jobs = 1;
  api::batch_runner runner(opt);

  std::vector<nlh::amt::future<api::batch_job_result>> futs;
  for (int k = 0; k < 5; ++k) {
    api::batch_job j;
    j.options = small_options("manufactured");
    j.options.n = 32;
    j.options.num_steps = 30;  // keeps the single slot busy while we drain
    futs.push_back(runner.submit(std::move(j)));
  }
  const auto rep = runner.drain(60.0);
  EXPECT_TRUE(rep.clean());
  EXPECT_GE(rep.abandoned, 3);  // at most the 1st (maybe 2nd) job ran
  EXPECT_EQ(rep.still_running, 0);

  int ok = 0, abandoned = 0;
  for (auto& f : futs) {
    // Not is_ready(): the in-flight job's promise resolves outside the
    // runner lock an instant after drain observes running_ == 0.
    const auto r = f.get();
    if (r.ok) {
      ++ok;
    } else {
      EXPECT_EQ(r.error.rfind("abandoned", 0), 0u) << r.error;
      ++abandoned;
    }
  }
  EXPECT_EQ(abandoned, rep.abandoned);
  EXPECT_EQ(ok + abandoned, 5);

  // Admission stays closed: a late submit fails fast, same error family.
  api::batch_job late;
  late.options = small_options("manufactured");
  auto lf = runner.submit(std::move(late));
  const auto lr = lf.get();
  EXPECT_FALSE(lr.ok);
  EXPECT_EQ(lr.error.rfind("abandoned", 0), 0u) << lr.error;

  const auto agg = runner.aggregate();
  EXPECT_EQ(agg.jobs_abandoned, rep.abandoned + 1);
  EXPECT_EQ(agg.jobs_completed, ok);
}

// batch_job::admission_class splits the queue-wait histogram per class in
// the metrics snapshot; unlabeled jobs land in "default".
TEST(BatchRunner, QueueWaitIsSplitPerAdmissionClass) {
  api::batch_options opt;
  opt.pool_threads = 2;
  opt.max_concurrent_jobs = 2;
  api::batch_runner runner(opt);

  std::vector<nlh::amt::future<api::batch_job_result>> futs;
  for (int k = 0; k < 3; ++k) {
    api::batch_job j;
    j.options = small_options("manufactured");
    j.admission_class = "interactive";
    futs.push_back(runner.submit(std::move(j)));
  }
  for (int k = 0; k < 2; ++k) {
    api::batch_job j;
    j.options = small_options("manufactured");
    futs.push_back(runner.submit(std::move(j)));  // unlabeled -> "default"
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);

  const auto snap = runner.metrics_snapshot();
  std::uint64_t interactive = 0, fallback = 0, aggregate = 0;
  for (const auto& [name, s] : snap.histograms) {
    if (name == "api/batch/queue_wait_seconds/interactive") interactive = s.count;
    if (name == "api/batch/queue_wait_seconds/default") fallback = s.count;
    if (name == "api/batch/queue_wait_seconds") aggregate = s.count;
  }
  EXPECT_EQ(interactive, 3u);
  EXPECT_EQ(fallback, 2u);
  EXPECT_EQ(aggregate, 5u);  // the split never loses the aggregate view
}

// Tests for the futures-first solver_handle API and per-session kernel
// backends: run_async/step_async resolve to metrics snapshots, submissions
// from one thread execute in order, the streaming observer delivers events
// serialized and in step order from the driver thread, exceptions propagate
// through futures, and — the multi-tenancy headline — sessions pinned to
// *different* kernel backends run concurrently in one process with each
// field bitwise equal to its solo-run reference.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "nonlocal/kernel/backend.hpp"

namespace api = nlh::api;
namespace nl = nlh::nonlocal;

namespace {

double max_abs_diff(const nl::grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(a[g.flat(i, j)] - b[g.flat(i, j)]));
  return m;
}

api::session_options small_options(const std::string& scenario) {
  api::session_options opt;
  opt.scenario = scenario;
  opt.n = 16;
  opt.epsilon_factor = 2;
  opt.num_steps = 4;
  opt.sd_grid = 2;
  opt.nodes = 2;
  return opt;
}

/// Solo-run interior field for the given backend/mode — the bitwise
/// reference each concurrent tenant must reproduce.
std::vector<double> solo_field(const std::string& backend, api::execution_mode mode,
                               int steps) {
  auto opt = small_options("manufactured");
  opt.kernel_backend = backend;
  opt.mode = mode;
  api::session s(opt);
  s.solver().run(steps);
  return s.solver().field();
}

}  // namespace

// ------------------------------------------------------------ async futures --

TEST(AsyncStepping, RunAsyncResolvesToMetricsSnapshot) {
  api::session session(small_options("manufactured"));
  auto& solver = session.solver();

  auto fut = solver.run_async(3);
  const auto m = fut.get();
  EXPECT_EQ(m.steps, 3);
  EXPECT_GT(m.dt, 0.0);
  EXPECT_GE(m.wall_seconds, 0.0);
  EXPECT_FALSE(m.kernel_backend.empty());
  EXPECT_EQ(solver.current_step(), 3);
}

TEST(AsyncStepping, StepAsyncAdvancesOneStep) {
  api::session session(small_options("manufactured"));
  auto& solver = session.solver();
  EXPECT_EQ(solver.step_async().get().steps, 1);
  EXPECT_EQ(solver.step_async().get().steps, 2);
}

TEST(AsyncStepping, SubmissionsFromOneThreadExecuteInOrder) {
  api::session session(small_options("manufactured"));
  auto& solver = session.solver();

  // Queue several chunks without waiting in between; the single driver
  // thread must execute them in submission order, so the per-chunk step
  // counters are cumulative.
  auto f1 = solver.run_async(2);
  auto f2 = solver.run_async(3);
  auto f3 = solver.run_async(1);
  EXPECT_EQ(f1.get().steps, 2);
  EXPECT_EQ(f2.get().steps, 5);
  EXPECT_EQ(f3.get().steps, 6);
}

TEST(AsyncStepping, MatchesBlockingRunBitwise) {
  auto opt = small_options("manufactured");
  api::session blocking(opt);
  blocking.solver().run(opt.num_steps);

  api::session async(opt);
  async.solver().run_async(opt.num_steps).get();

  EXPECT_EQ(max_abs_diff(blocking.solver().grid(), blocking.solver().field(),
                         async.solver().field()),
            0.0);
}

TEST(AsyncStepping, DistributedRunAsyncReportsGhostTraffic) {
  auto opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  opt.threads_per_locality = 2;
  api::session session(opt);
  const auto m = session.solver().run_async(opt.num_steps).get();
  EXPECT_EQ(m.steps, opt.num_steps);
  EXPECT_GT(m.ghost_bytes, 0u);
}

TEST(AsyncStepping, ExceptionsPropagateThroughTheFuture) {
  api::session session(small_options("manufactured"));
  auto fut = session.solver().run_async(-1);
  EXPECT_THROW(fut.get(), std::invalid_argument);
  // The handle stays usable after a failed submission.
  EXPECT_EQ(session.solver().run_async(1).get().steps, 1);
}

// Readers serialize with stepping: polling metrics()/field()/current_step()
// from another thread while chunks are in flight is race-free (TSAN backs
// this suite) and only ever observes chunk boundaries.
TEST(AsyncStepping, ConcurrentReadersSerializeWithStepping) {
  auto opt = small_options("manufactured");
  api::session session(opt);
  auto& solver = session.solver();

  auto f1 = solver.run_async(2);
  auto f2 = solver.run_async(2);
  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load()) {
      const auto m = solver.metrics();
      EXPECT_TRUE(m.steps == 0 || m.steps == 2 || m.steps == 4) << m.steps;
      const auto f = solver.field();
      EXPECT_FALSE(f.empty());
    }
  });
  f1.get();
  f2.get();
  done = true;
  poller.join();
  EXPECT_EQ(solver.current_step(), 4);
}

// ---------------------------------------------------------------- observers --

TEST(AsyncObserver, StreamsEventsInStepOrderSerialized) {
  api::session session(small_options("manufactured"));
  auto& solver = session.solver();

  std::atomic<int> in_callback{0};
  std::atomic<bool> overlapped{false};
  std::vector<api::step_event> events;
  solver.set_observer([&](const api::step_event& e) {
    if (in_callback.fetch_add(1) != 0) overlapped = true;
    events.push_back(e);
    in_callback.fetch_sub(1);
  });

  auto f1 = solver.run_async(3);
  auto f2 = solver.run_async(2);
  f1.get();
  f2.get();

  EXPECT_FALSE(overlapped.load()) << "observer invocations overlapped";
  ASSERT_EQ(events.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(events[static_cast<std::size_t>(k)].step, k + 1);
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(k)].t, (k + 1) * solver.dt());
  }
}

TEST(AsyncObserver, HandleAccessorsAreSafeInsideTheCallback) {
  auto opt = small_options("manufactured");
  opt.mode = api::execution_mode::distributed;
  api::session session(opt);
  auto& solver = session.solver();

  std::vector<int> metric_steps;
  solver.set_observer([&](const api::step_event& e) {
    const auto m = solver.metrics();  // documented as safe in-callback
    EXPECT_EQ(m.steps, e.step);
    metric_steps.push_back(m.steps);
  });
  solver.run_async(3).get();
  EXPECT_EQ(metric_steps, (std::vector<int>{1, 2, 3}));
}

// --------------------------------------------------- per-session backends --

TEST(MultiTenant, SessionDoesNotTouchTheProcessDefaultBackend) {
  const auto before = nl::kernel_default_backend();
  auto opt = small_options("manufactured");
  opt.kernel_backend = "scalar";
  api::session session(opt);
  session.solver().run(2);
  EXPECT_EQ(nl::kernel_default_backend(), before)
      << "session construction mutated the process-wide backend";
  EXPECT_EQ(session.solver().backend(), nl::kernel_backend::scalar);
  EXPECT_EQ(session.solver().metrics().kernel_backend, "scalar");
}

TEST(MultiTenant, EmptyBackendFollowsTheProcessDefault) {
  api::session session(small_options("manufactured"));
  EXPECT_EQ(session.solver().backend(), nl::kernel_default_backend());
}

// The acceptance property: two sessions pinned to different backends run
// concurrently in one process and each reproduces its solo run bitwise.
TEST(MultiTenant, ConcurrentSessionsWithDifferentBackendsMatchSoloRunsBitwise) {
  const int steps = 4;
  const auto solo_scalar =
      solo_field("scalar", api::execution_mode::serial, steps);
  const auto solo_row_run =
      solo_field("row_run", api::execution_mode::serial, steps);
  // The two backends genuinely associate differently (otherwise this test
  // would not distinguish the tenants).
  {
    api::session probe(small_options("manufactured"));
    EXPECT_NE(max_abs_diff(probe.solver().grid(), solo_scalar, solo_row_run), 0.0);
  }

  auto opt_a = small_options("manufactured");
  opt_a.kernel_backend = "scalar";
  auto opt_b = small_options("manufactured");
  opt_b.kernel_backend = "row_run";
  api::session a(opt_a);
  api::session b(opt_b);

  auto fa = a.solver().run_async(steps);
  auto fb = b.solver().run_async(steps);
  fa.get();
  fb.get();

  EXPECT_EQ(max_abs_diff(a.solver().grid(), a.solver().field(), solo_scalar), 0.0)
      << "concurrent scalar tenant drifted from its solo run";
  EXPECT_EQ(max_abs_diff(b.solver().grid(), b.solver().field(), solo_row_run), 0.0)
      << "concurrent row_run tenant drifted from its solo run";
}

TEST(MultiTenant, ConcurrentMixedBackendDistributedSessionsStayBitwise) {
  const int steps = 3;
  const auto solo_scalar =
      solo_field("scalar", api::execution_mode::distributed, steps);
  const auto solo_simd =
      solo_field("simd", api::execution_mode::distributed, steps);

  auto opt_a = small_options("manufactured");
  opt_a.mode = api::execution_mode::distributed;
  opt_a.kernel_backend = "scalar";
  opt_a.threads_per_locality = 2;
  auto opt_b = opt_a;
  opt_b.kernel_backend = "simd";

  api::session a(opt_a);
  api::session b(opt_b);
  auto fa = a.solver().run_async(steps);
  auto fb = b.solver().run_async(steps);
  fa.get();
  fb.get();

  EXPECT_EQ(max_abs_diff(a.solver().grid(), a.solver().field(), solo_scalar), 0.0);
  EXPECT_EQ(max_abs_diff(b.solver().grid(), b.solver().field(), solo_simd), 0.0);
}

// Many handles stepped from plain std::threads through the blocking
// wrappers — the wrappers share the async stepping body, so they must be
// just as tenant-safe.
TEST(MultiTenant, BlockingWrappersFromManyThreads) {
  const int steps = 3;
  const auto solo_scalar =
      solo_field("scalar", api::execution_mode::serial, steps);
  const auto solo_row_run =
      solo_field("row_run", api::execution_mode::serial, steps);

  auto opt_a = small_options("manufactured");
  opt_a.kernel_backend = "scalar";
  auto opt_b = small_options("manufactured");
  opt_b.kernel_backend = "row_run";
  api::session a(opt_a);
  api::session b(opt_b);

  std::thread ta([&] { a.solver().run(steps); });
  std::thread tb([&] { b.solver().run(steps); });
  ta.join();
  tb.join();

  EXPECT_EQ(max_abs_diff(a.solver().grid(), a.solver().field(), solo_scalar), 0.0);
  EXPECT_EQ(max_abs_diff(b.solver().grid(), b.solver().field(), solo_row_run), 0.0);
}

// Tests for the second extension batch: amt::channel, execution-trace
// export, induced subgraphs and recursive-bisection partitioning.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "amt/channel.hpp"
#include "dist/sim_dist.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "sim/cluster_sim.hpp"

namespace amt = nlh::amt;
namespace part = nlh::partition;
namespace sim = nlh::sim;
namespace dist = nlh::dist;

// ---------------------------------------------------------------- channel ----

TEST(Channel, SetThenGet) {
  amt::channel<int> ch;
  ch.set(5);
  auto f = ch.get();
  ASSERT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 5);
}

TEST(Channel, GetThenSet) {
  amt::channel<int> ch;
  auto f = ch.get();
  EXPECT_FALSE(f.is_ready());
  ch.set(9);
  EXPECT_EQ(f.get(), 9);
}

TEST(Channel, FifoOrdering) {
  amt::channel<int> ch;
  ch.set(1);
  ch.set(2);
  ch.set(3);
  EXPECT_EQ(ch.get().get(), 1);
  EXPECT_EQ(ch.get().get(), 2);
  EXPECT_EQ(ch.get().get(), 3);
}

TEST(Channel, InterleavedWaiters) {
  amt::channel<int> ch;
  auto f1 = ch.get();
  auto f2 = ch.get();
  ch.set(10);
  ch.set(20);
  EXPECT_EQ(f1.get(), 10);
  EXPECT_EQ(f2.get(), 20);
}

TEST(Channel, MoveOnlyPayload) {
  amt::channel<std::unique_ptr<int>> ch;
  ch.set(std::make_unique<int>(7));
  EXPECT_EQ(*ch.get().get(), 7);
}

TEST(Channel, CloseFailsWaiters) {
  amt::channel<int> ch;
  auto f = ch.get();
  ch.close();
  EXPECT_THROW(f.get(), amt::channel_closed);
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, CloseDrainsQueuedValuesFirst) {
  amt::channel<int> ch;
  ch.set(1);
  ch.close();
  EXPECT_EQ(ch.get().get(), 1);  // queued value still delivered
  EXPECT_THROW(ch.get().get(), amt::channel_closed);
}

TEST(Channel, CrossThread) {
  amt::channel<int> ch;
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) ch.set(i);
  });
  long long sum = 0;
  for (int i = 0; i < 50; ++i) sum += ch.get().get();
  producer.join();
  EXPECT_EQ(sum, 50LL * 49 / 2);
}

// ------------------------------------------------------------ trace export ----

TEST(TraceExport, RecordsSortedWithCores) {
  sim::cluster_sim cs(1, 2);
  const int a = cs.add_task(0, 2.0, {}, "alpha");
  const int b = cs.add_task(0, 1.0, {}, "beta");
  const int c = cs.add_task(0, 1.0, {a, b}, "gamma");
  cs.run();
  const auto recs = cs.task_records();
  ASSERT_EQ(recs.size(), 3u);
  // Sorted by start; a and b start at 0 on different cores.
  EXPECT_DOUBLE_EQ(recs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(recs[1].start, 0.0);
  EXPECT_NE(recs[0].core, recs[1].core);
  EXPECT_EQ(recs[2].label, "gamma");
  EXPECT_DOUBLE_EQ(recs[2].start, 2.0);  // after the slower parent
  (void)c;
}

TEST(TraceExport, ChromeJsonIsWellFormedEnough) {
  sim::cluster_sim cs(2, 1);
  cs.add_task(0, 1.0, {}, "compute");
  cs.add_task(1, 1.0, {}, "other");
  cs.run();
  std::ostringstream os;
  cs.write_chrome_trace(os);
  const auto s = os.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"name\": \"compute\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(s.rfind("]"), std::string::npos);
}

TEST(TraceExport, SimDistEmitsLabeledTasks) {
  dist::tiling t(2, 2, 10, 2);
  const dist::ownership_map own(t, 2, {0, 1, 1, 0});
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  std::ostringstream trace;
  cluster.chrome_trace = &trace;
  dist::simulate_timestepping(t, own, 2, cost, cluster);
  const auto s = trace.str();
  EXPECT_NE(s.find("sd0:interior@0"), std::string::npos);
  EXPECT_NE(s.find("sd3:boundary@1"), std::string::npos);
}

// -------------------------------------------------------- induced subgraph ----

namespace {
part::graph grid_dual(int rows, int cols) {
  part::mesh_dual_options opt;
  opt.sd_rows = rows;
  opt.sd_cols = cols;
  opt.sd_size = 4;
  opt.ghost_width = 1;
  return part::build_mesh_dual(opt);
}
}  // namespace

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  auto g = grid_dual(3, 3);
  // Top row: vertices 0,1,2 form a path (plus no diagonals inside a row).
  const auto sub = part::induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(InducedSubgraph, CarriesWeights) {
  part::mesh_dual_options opt;
  opt.sd_rows = 1;
  opt.sd_cols = 3;
  opt.sd_size = 5;
  opt.ghost_width = 2;
  opt.sd_work = {1.0, 2.0, 3.0};
  auto g = part::build_mesh_dual(opt);
  const auto sub = part::induced_subgraph(g, {1, 2});
  EXPECT_DOUBLE_EQ(sub.vwgt(0), 2.0);
  EXPECT_DOUBLE_EQ(sub.vwgt(1), 3.0);
  EXPECT_DOUBLE_EQ(sub.adjwgt(sub.xadj(0)), 10.0);  // sd_size * ghost
}

// --------------------------------------------------- recursive bisection ----

TEST(RecursiveBisection, ValidBalancedContiguousOnGrid) {
  auto g = grid_dual(8, 8);
  part::partition_options opt;
  opt.k = 4;
  const auto p = part::recursive_bisection_partition(g, opt);
  part::validate_partition(g, p, 4);
  const auto w = part::part_weights(g, p, 4);
  for (double x : w) EXPECT_GT(x, 0.0);
  EXPECT_LE(part::balance_factor(g, p, 4), 1.35);
}

TEST(RecursiveBisection, CutCompetitiveWithDirectKway) {
  auto g = grid_dual(16, 16);
  part::partition_options opt;
  opt.k = 8;
  const auto rb = part::recursive_bisection_partition(g, opt);
  const auto kw = part::multilevel_partition(g, opt);
  EXPECT_LE(part::edge_cut(g, rb), 1.6 * part::edge_cut(g, kw));
}

TEST(RecursiveBisection, DeterministicForSeed) {
  auto g = grid_dual(8, 8);
  part::partition_options opt;
  opt.k = 4;
  opt.seed = 77;
  EXPECT_EQ(part::recursive_bisection_partition(g, opt),
            part::recursive_bisection_partition(g, opt));
}

TEST(RecursiveBisection, KOneIsTrivial) {
  auto g = grid_dual(4, 4);
  part::partition_options opt;
  opt.k = 1;
  const auto p = part::recursive_bisection_partition(g, opt);
  for (int v : p) EXPECT_EQ(v, 0);
}

// Tests for the per-direction overlap schedule and its cached step_plan
// (docs/overlap.md): the fine strip dependency table, bitwise
// serial==distributed equality for every schedule x kernel backend, plan
// invalidation across migrations (with the epoch-tagged migration
// messages), and — via the comm_world delay model — the §6.3 property
// itself: case-2 interiors and ready-direction strips complete while the
// slowest ghost is still in flight.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "api/session.hpp"
#include "dist/dist_solver.hpp"
#include "dist/step_plan.hpp"
#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/serial_solver.hpp"

namespace dist = nlh::dist;
namespace nl = nlh::nonlocal;
namespace api = nlh::api;

namespace {

/// Serial reference on the same mesh / dt / kernel backend as `cfg`.
std::vector<double> serial_reference(const dist::dist_config& cfg, int steps) {
  nl::solver_config scfg;
  scfg.n = cfg.sd_cols * cfg.sd_size;
  scfg.epsilon_factor = cfg.epsilon_factor;
  scfg.conductivity = cfg.conductivity;
  scfg.dt = cfg.dt;
  scfg.dt_safety = cfg.dt_safety;
  scfg.num_steps = steps;
  scfg.kind = cfg.kind;
  scfg.backend = cfg.backend;
  scfg.tuning = cfg.tuning;
  nl::serial_solver s(scfg);
  s.set_initial_condition();
  for (int k = 0; k < steps; ++k) s.step(k);
  return s.field();
}

/// Bitwise comparison over the interior DPs (exact double equality — the
/// distributed schedule must not change a single rounding).
void expect_bitwise_equal(const nl::grid2d& g, const std::vector<double>& a,
                          const std::vector<double>& b) {
  int mismatches = 0;
  for (int i = 0; i < g.n() && mismatches < 5; ++i)
    for (int j = 0; j < g.n() && mismatches < 5; ++j)
      if (a[g.flat(i, j)] != b[g.flat(i, j)]) {
        ADD_FAILURE() << "field mismatch at (" << i << ", " << j
                      << "): " << a[g.flat(i, j)] << " vs " << b[g.flat(i, j)];
        ++mismatches;
      }
}

}  // namespace

// --------------------------------------------------- fine strip geometry ----

TEST(FineStrips, DependenciesForColumnOwnership) {
  // 2x2 SDs, columns on different localities: SD 0 has remote E and SE
  // neighbors, a local S neighbor and no N row.
  const dist::tiling t(2, 2, 8, 2);
  const std::vector<int> owner{0, 1, 0, 1};
  const auto fine = dist::compute_fine_strips(t, 0, owner);

  const auto coarse = dist::compute_case_split(t, 0, owner);
  long long fine_area = 0;
  int zero_dep = 0, one_dep = 0, two_dep = 0;
  for (const auto& s : fine) {
    fine_area += s.rect.area();
    if (s.deps.empty()) ++zero_dep;
    if (s.deps.size() == 1) {
      ++one_dep;
      EXPECT_EQ(s.deps[0], dist::direction::east);
    }
    if (s.deps.size() == 2) {
      ++two_dep;
      EXPECT_EQ(s.deps[0], dist::direction::east);
      EXPECT_EQ(s.deps[1], dist::direction::southeast);
    }
  }
  // The fine strips tile exactly the coarse case-1 region.
  EXPECT_EQ(fine_area, coarse.strip_dps());
  // South side strip reads only local data; east side needs the E ghost;
  // the SE corner needs E and the SE diagonal.
  EXPECT_EQ(zero_dep, 1);
  EXPECT_EQ(one_dep, 1);
  EXPECT_EQ(two_dep, 1);
}

TEST(FineStrips, DiagonalOnlyNeighborFreesTheSides) {
  // Single remote *diagonal* neighbor: the coarse split gates both margins
  // on the one corner ghost; the fine split leaves both side strips free.
  const dist::tiling t(2, 2, 8, 2);
  const std::vector<int> owner{0, 0, 0, 1};  // only SD 3 (SE of SD 0) remote
  const auto fine = dist::compute_fine_strips(t, 0, owner);
  int with_deps = 0;
  for (const auto& s : fine)
    if (!s.deps.empty()) {
      ++with_deps;
      ASSERT_EQ(s.deps.size(), 1u);
      EXPECT_EQ(s.deps[0], dist::direction::southeast);
      // Only the g x g corner rectangle actually reads the SE collar.
      EXPECT_EQ(s.rect.area(), static_cast<long long>(t.ghost()) * t.ghost());
    }
  EXPECT_EQ(with_deps, 1);
}

TEST(FineStrips, TileCoarseRegionForManyOwnerships) {
  const dist::tiling t(3, 3, 6, 2);
  const std::vector<std::vector<int>> owners = {
      {0, 1, 2, 0, 1, 2, 2, 0, 1}, {0, 0, 0, 1, 1, 1, 2, 2, 2},
      {0, 1, 0, 1, 0, 1, 0, 1, 0}, {0, 0, 0, 0, 1, 0, 0, 0, 0}};
  for (const auto& own : owners)
    for (int sd = 0; sd < t.num_sds(); ++sd) {
      const auto coarse = dist::compute_case_split(t, sd, own);
      const auto fine = dist::compute_fine_strips(t, sd, own);
      long long area = 0;
      for (const auto& s : fine) area += s.rect.area();
      EXPECT_EQ(area, coarse.strip_dps()) << "sd " << sd;
    }
}

// ------------------------------------------------------- compiled plan ----

TEST(StepPlan, CachesMessageTableAndSplits) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));

  const auto& plan = solver.plan();
  // Column split: each SD exchanges a side strip and a diagonal with the
  // other locality -> 2 messages per SD.
  EXPECT_EQ(plan.total_messages, 8);
  EXPECT_EQ(plan.sends.size(), 8u);
  EXPECT_EQ(static_cast<int>(plan.sds.size()), 4);
  for (const auto& sd : plan.sds) {
    EXPECT_TRUE(sd.boundary);
    EXPECT_EQ(sd.recvs.size(), 2u);
    EXPECT_EQ(sd.local_fills.size(), 1u);  // the same-column vertical pair
    EXPECT_EQ(sd.ready_strips.size(), 1u);
    EXPECT_EQ(sd.strips.size(), 2u);
  }
}

// ----------------- bitwise equality, schedules x backends x geometries ----

// Third axis: the kernel block geometry. 0 = cache-derived default,
// 1 = aggressively tight explicit blocking (forces partial blocks inside
// every fine strip), 2 = unblocked single-block order. Bitwise equality
// with the serial reference must hold for the full cross product — the
// per-DP accumulation chain is a function of the stencil alone, never of
// the rect decomposition or the block geometry.
using SchedBackendParam = std::tuple<dist::overlap_schedule, std::string, int>;

class ScheduleBackendEquivalence
    : public ::testing::TestWithParam<SchedBackendParam> {};

TEST_P(ScheduleBackendEquivalence, BitwiseMatchesSerialReference) {
  const auto [sched, backend_name, tuning_case] = GetParam();
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 3;
  cfg.sd_size = 6;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 2;
  cfg.schedule = sched;
  cfg.backend = nl::parse_kernel_backend(backend_name);
  ASSERT_TRUE(cfg.backend.has_value());
  if (tuning_case == 1) {
    cfg.tuning.row_block = nl::kernel_min_row_block;
    cfg.tuning.col_tile = nl::kernel_min_col_tile;
  } else if (tuning_case == 2) {
    cfg.tuning = nl::kernel_tuning_unblocked();
  }

  const dist::tiling t(3, 3, 6, 2);
  dist::dist_solver solver(
      cfg, dist::ownership_map(t, 3, {0, 1, 2, 0, 1, 2, 2, 0, 1}));
  solver.set_initial_condition();
  solver.run(4);

  const auto ref = serial_reference(cfg, 4);
  expect_bitwise_equal(solver.grid(), solver.gather(), ref);
  EXPECT_EQ(solver.schedule(), sched);
  EXPECT_GT(solver.stats().messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulesAllBackends, ScheduleBackendEquivalence,
    ::testing::Combine(::testing::Values(dist::overlap_schedule::bulk_sync,
                                         dist::overlap_schedule::coarse,
                                         dist::overlap_schedule::per_direction),
                       ::testing::Values("scalar", "row_run", "simd", "avx512"),
                       ::testing::Values(0, 1, 2)));

// -------------------------------------- plan invalidation via migrations ----

class MigrationBackendEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(MigrationBackendEquivalence, BitwiseAcrossRepeatedMigrations) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 2;
  cfg.backend = nl::parse_kernel_backend(GetParam());
  ASSERT_TRUE(cfg.backend.has_value());
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();

  solver.run(2);
  solver.migrate_sd(1, 1);  // plan recompiles on the next step
  EXPECT_EQ(solver.migration_epoch(1), 1u);
  solver.run(2);
  solver.migrate_sd(1, 0);  // same SD again: a fresh epoch, a fresh tag
  solver.migrate_sd(2, 0);
  EXPECT_EQ(solver.migration_epoch(1), 2u);
  EXPECT_EQ(solver.migration_epoch(2), 1u);
  solver.run(2);

  const auto ref = serial_reference(cfg, 6);
  expect_bitwise_equal(solver.grid(), solver.gather(), ref);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MigrationBackendEquivalence,
                         ::testing::Values("scalar", "row_run", "simd",
                                           "avx512"));

TEST(StepPlanInvalidation, MigrationToSelfKeepsEpoch) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.migrate_sd(0, 0);
  EXPECT_EQ(solver.migration_epoch(0), 0u);
}

TEST(StepPlanInvalidation, DelayedMigrationTrafficStaysBitwise) {
  // With wall-clock delivery delays, repeated migrations of one SD put
  // multiple migration messages in flight over time; the epoch-tagged
  // messages must never cross-deliver.
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 0, 1, 1}));
  solver.set_initial_condition();
  solver.comm().set_delay_model(
      [](int, int, std::uint64_t) { return 2e-3; });
  solver.run(1);
  solver.migrate_sd(1, 1);
  solver.migrate_sd(1, 0);
  solver.migrate_sd(1, 1);
  solver.run(1);
  EXPECT_EQ(solver.migration_epoch(1), 3u);

  const auto ref = serial_reference(cfg, 2);
  expect_bitwise_equal(solver.grid(), solver.gather(), ref);
}

// ------------------------------------------- injected-latency overlap ----

namespace {

dist::dist_config latency_cfg() {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 2;
  cfg.sd_size = 8;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 2;
  return cfg;
}

}  // namespace

TEST(InjectedLatency, PerDirectionComputesBeforeSlowestGhost) {
  auto cfg = latency_cfg();
  cfg.schedule = dist::overlap_schedule::per_direction;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  // Every cross-locality ghost arrives 100 ms late; compute takes
  // microseconds, so anything not gated on a message must finish first.
  solver.comm().set_delay_model([](int, int, std::uint64_t) { return 0.1; });
  solver.step();

  const auto s = solver.stats();
  EXPECT_EQ(s.messages, 8u);
  // All four case-2 interiors completed while ghosts were in flight...
  EXPECT_EQ(s.interior_early, 4u);
  // ...and so did the four ready-direction strips (one zero-dependency
  // side strip per SD under the column ownership).
  EXPECT_GE(s.strips_early, 4u);
  // The stepping thread paid the latency in the drain, not before it.
  EXPECT_GE(s.wait_seconds, 0.05);

  const auto ref = serial_reference(cfg, 1);
  expect_bitwise_equal(solver.grid(), solver.gather(), ref);
}

TEST(InjectedLatency, BulkSyncHidesNothing) {
  auto cfg = latency_cfg();
  cfg.overlap_communication = false;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.comm().set_delay_model([](int, int, std::uint64_t) { return 0.05; });
  solver.step();

  const auto s = solver.stats();
  EXPECT_EQ(s.messages, 8u);
  // The bulk-synchronous drain finishes before any compute is posted:
  // nothing ever completes "early".
  EXPECT_EQ(s.interior_early, 0u);
  EXPECT_EQ(s.strips_early, 0u);
}

TEST(InjectedLatency, CoarseOverlapsInteriorOnly) {
  auto cfg = latency_cfg();
  cfg.schedule = dist::overlap_schedule::coarse;
  const dist::tiling t(2, 2, 8, 2);
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, {0, 1, 0, 1}));
  solver.set_initial_condition();
  solver.comm().set_delay_model([](int, int, std::uint64_t) { return 0.05; });
  solver.step();

  // Case-2 still overlaps under the coarse schedule...
  EXPECT_EQ(solver.stats().interior_early, 4u);
  // ...but the run stays bitwise correct.
  const auto ref = serial_reference(cfg, 1);
  expect_bitwise_equal(solver.grid(), solver.gather(), ref);
}

// ------------------------------------------------- api metrics plumbing ----

TEST(ApiOverlapMetrics, DistributedExposesScheduleAndWait) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 16;
  opt.sd_grid = 2;
  opt.epsilon_factor = 2;
  opt.nodes = 2;
  opt.overlap_schedule = "coarse";
  api::session session(opt);
  auto& h = session.solver();
  h.run(3);
  const auto m = h.metrics();
  EXPECT_EQ(m.overlap_schedule, "coarse");
  EXPECT_GE(m.comm_wait_seconds, 0.0);
  EXPECT_GT(m.ghost_bytes, 0u);
}

TEST(ApiOverlapMetrics, PerDirectionDefaultAndSerialFallback) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 16;
  opt.sd_grid = 2;
  opt.epsilon_factor = 2;
  opt.nodes = 2;
  api::session dist_session(opt);
  EXPECT_EQ(dist_session.solver().metrics().overlap_schedule, "per_direction");

  api::session_options sopt;
  sopt.mode = api::execution_mode::serial;
  sopt.n = 16;
  sopt.epsilon_factor = 2;
  api::session serial_session(sopt);
  const auto m = serial_session.solver().metrics();
  EXPECT_EQ(m.overlap_schedule, "serial");
  EXPECT_EQ(m.comm_wait_seconds, 0.0);
  EXPECT_EQ(m.overlap_early_tasks, 0u);
}

TEST(ApiOverlapMetrics, UnknownScheduleNameIsRejected) {
  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  opt.n = 16;
  opt.sd_grid = 2;
  opt.epsilon_factor = 2;
  opt.nodes = 2;
  opt.overlap_schedule = "warp";
  const auto errs = api::session::validate(opt);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("overlap_schedule"), std::string::npos);
  EXPECT_THROW(api::session{opt}, std::invalid_argument);
}

///
/// \file crack_workload.cpp
/// \brief The paper's motivating scenario (§7): a crack line reduces the
/// computational burden of the SDs it crosses; the busy-time-driven load
/// balancer re-equalizes the nodes. The crack physics comes from the
/// `nlh::api` crack scenario and the initial ownership from a facade
/// session with the block-partition baseline — the deliberately naive
/// starting point the balancer then repairs.
///
/// Usage: crack_workload [--sd-grid 8] [--nodes 4] [--reduction 0.6]
///

#include <iostream>

#include "api/session.hpp"
#include "balance/render.hpp"
#include "balance/sim_driver.hpp"
#include "model/capacity.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 8);
  const int nodes = cli.get_int("nodes", 4);
  const double reduction = cli.get_double("reduction", 0.6);

  // Horizontal crack through the lower half: the SDs it crosses (all owned
  // by the bottom-row nodes under a block partition) lose `reduction` of
  // their work, unbalancing the cluster.
  const auto crack = std::make_shared<const nlh::api::crack_scenario>(
      0.02, 0.25, 0.98, 0.25, reduction);

  nlh::api::session_options opt;
  opt.mode = nlh::api::execution_mode::distributed;
  opt.custom_scenario = crack;
  opt.sd_grid = sd_grid;
  opt.n = sd_grid * 50;
  opt.epsilon_factor = 8;
  opt.nodes = nodes;
  opt.partitioner = nlh::api::partition_strategy::block;
  nlh::api::session session(opt);

  const nlh::dist::tiling& t = session.sd_tiling();
  auto own = session.ownership();

  nlh::balance::sim_balance_config cfg;
  cfg.cost.sd_work_scale = crack->sd_work(sd_grid, sd_grid);
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(nodes, 1.0);
  cfg.max_iterations = 8;
  cfg.cov_tol = 0.03;

  std::cout << "Crack workload: " << sd_grid << "x" << sd_grid << " SDs on "
            << nodes << " symmetric nodes; cracked SDs do "
            << (1.0 - crack->work_reduction()) * 100 << "% of normal work.\n\n";
  std::cout << "Initial ownership (block partition):\n"
            << nlh::balance::render_ownership(t, own) << "\n";

  const auto before = own;
  const auto log = nlh::balance::run_sim_balancing(t, own, cfg);

  nlh::support::table tab({"iter", "busy-cov", "makespan", "SDs-moved",
                           "SD-counts"});
  for (const auto& e : log) {
    std::string counts;
    for (std::size_t i = 0; i < e.sd_counts_after.size(); ++i)
      counts += (i ? "/" : "") + std::to_string(e.sd_counts_after[i]);
    tab.row()
        .add(e.iteration)
        .add(e.busy_cov, 3)
        .add(e.makespan, 5)
        .add(e.sds_moved)
        .add(counts);
  }
  tab.print(std::cout);

  std::cout << "\nOwnership before -> after balancing:\n"
            << nlh::balance::render_side_by_side(t, before, own);
  std::cout << "\nThe cracked (cheap) SDs concentrate on fewer nodes so every "
               "node's busy time matches.\n";
  return 0;
}

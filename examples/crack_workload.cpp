///
/// \file crack_workload.cpp
/// \brief The paper's motivating scenario (§7): a crack line reduces the
/// computational burden of the SDs it crosses; the busy-time-driven load
/// balancer re-equalizes the nodes.
///
/// Usage: crack_workload [--sd-grid 8] [--nodes 4] [--reduction 0.6]
///

#include <iostream>

#include "balance/render.hpp"
#include "balance/sim_driver.hpp"
#include "model/capacity.hpp"
#include "model/crack.hpp"
#include "partition/partitioner.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 8);
  const int nodes = cli.get_int("nodes", 4);
  const double reduction = cli.get_double("reduction", 0.6);

  const nlh::dist::tiling t(sd_grid, sd_grid, 50, 8);
  auto own = nlh::dist::ownership_map::from_partition(
      t, nodes, nlh::partition::block_partition(sd_grid, sd_grid, nodes));

  // Horizontal crack through the lower half: the SDs it crosses (all owned
  // by the bottom-row nodes under a block partition) lose `reduction` of
  // their work, unbalancing the cluster.
  const nlh::model::crack_line crack{0.02, 0.25, 0.98, 0.25};
  nlh::balance::sim_balance_config cfg;
  cfg.cost.sd_work_scale = nlh::model::crack_work_scale(t, crack, reduction);
  cfg.cluster.node_capacity = nlh::model::uniform_cluster(nodes, 1.0);
  cfg.max_iterations = 8;
  cfg.cov_tol = 0.03;

  std::cout << "Crack workload: " << sd_grid << "x" << sd_grid << " SDs on "
            << nodes << " symmetric nodes; cracked SDs do "
            << (1.0 - reduction) * 100 << "% of normal work.\n\n";
  std::cout << "Initial ownership (block partition):\n"
            << nlh::balance::render_ownership(t, own) << "\n";

  const auto before = own;
  const auto log = nlh::balance::run_sim_balancing(t, own, cfg);

  nlh::support::table tab({"iter", "busy-cov", "makespan", "SDs-moved",
                           "SD-counts"});
  for (const auto& e : log) {
    std::string counts;
    for (std::size_t i = 0; i < e.sd_counts_after.size(); ++i)
      counts += (i ? "/" : "") + std::to_string(e.sd_counts_after[i]);
    tab.row()
        .add(e.iteration)
        .add(e.busy_cov, 3)
        .add(e.makespan, 5)
        .add(e.sds_moved)
        .add(counts);
  }
  tab.print(std::cout);

  std::cout << "\nOwnership before -> after balancing:\n"
            << nlh::balance::render_side_by_side(t, before, own);
  std::cout << "\nThe cracked (cheap) SDs concentrate on fewer nodes so every "
               "node's busy time matches.\n";
  return 0;
}

///
/// \file heterogeneous_cluster.cpp
/// \brief Load balancing on nodes of unequal compute capacity: a 1:2:3:4
/// cluster should end up owning SDs in that same ratio (paper eq. 10).
///
/// Usage: heterogeneous_cluster [--sd-grid 10] [--speeds 1,2,3,4]
///

#include <iostream>
#include <sstream>

#include "balance/render.hpp"
#include "balance/sim_driver.hpp"
#include "model/capacity.hpp"
#include "partition/partitioner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 10);

  std::vector<double> speeds;
  {
    std::stringstream ss(cli.get("speeds", "1,2,3,4"));
    std::string tok;
    while (std::getline(ss, tok, ',')) speeds.push_back(std::stod(tok));
  }
  const int nodes = static_cast<int>(speeds.size());

  const nlh::dist::tiling t(sd_grid, sd_grid, 50, 8);
  auto own = nlh::dist::ownership_map::from_partition(
      t, nodes, nlh::partition::block_partition(sd_grid, sd_grid, nodes));

  nlh::balance::sim_balance_config cfg;
  cfg.cluster.node_capacity = nlh::model::heterogeneous_cluster(speeds);
  cfg.max_iterations = 10;
  cfg.cov_tol = 0.05;

  double total_speed = 0.0;
  for (double s : speeds) total_speed += s;

  std::cout << "Heterogeneous cluster: " << t.num_sds() << " SDs over " << nodes
            << " nodes with speeds ";
  for (double s : speeds) std::cout << s << " ";
  std::cout << "\nEqual-count start; the balancer should converge to the "
               "capacity ratio.\n\n";

  const auto log = nlh::balance::run_sim_balancing(t, own, cfg);

  nlh::support::table tab({"iter", "busy-cov", "SDs-moved", "SD-counts"});
  for (const auto& e : log) {
    std::string counts;
    for (std::size_t i = 0; i < e.sd_counts_after.size(); ++i)
      counts += (i ? "/" : "") + std::to_string(e.sd_counts_after[i]);
    tab.row().add(e.iteration).add(e.busy_cov, 3).add(e.sds_moved).add(counts);
  }
  tab.print(std::cout);

  std::cout << "\nFinal vs capacity-ideal SD counts:\n";
  nlh::support::table ideal({"node", "speed", "owned", "ideal"});
  const auto counts = own.sd_counts();
  for (int i = 0; i < nodes; ++i)
    ideal.row()
        .add(i)
        .add(speeds[static_cast<std::size_t>(i)], 3)
        .add(counts[static_cast<std::size_t>(i)])
        .add(t.num_sds() * speeds[static_cast<std::size_t>(i)] / total_speed, 3);
  ideal.print(std::cout);

  std::cout << "\nFinal ownership map:\n" << nlh::balance::render_ownership(t, own);
  return 0;
}

///
/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library: solve the 2-D nonlocal
/// heat equation (serial and distributed), validate against the
/// manufactured solution.
///
/// Usage: quickstart [--n 64] [--eps-factor 4] [--steps 20] [--nodes 2]
///

#include <iostream>

#include "dist/dist_solver.hpp"
#include "nonlocal/serial_solver.hpp"
#include "partition/multilevel.hpp"
#include "partition/mesh_dual.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int n = cli.get_int("n", 64);
  const int eps_factor = cli.get_int("eps-factor", 4);
  const int steps = cli.get_int("steps", 20);
  const int nodes = cli.get_int("nodes", 2);

  std::cout << "nonlocalheat quickstart: " << n << "x" << n
            << " mesh, epsilon = " << eps_factor << "h, " << steps << " steps, "
            << nodes << " localities\n\n";

  // --- Serial reference -----------------------------------------------
  nlh::nonlocal::solver_config scfg;
  scfg.n = n;
  scfg.epsilon_factor = eps_factor;
  scfg.num_steps = steps;
  nlh::nonlocal::serial_solver serial(scfg);
  const auto sres = serial.run();

  // --- Distributed solve on the same mesh ------------------------------
  // Decompose into SDs of n/4 DPs, partition the SD dual graph
  // METIS-style, run the asynchronous solver over in-process localities.
  const int sd_grid = 4;
  const int sd_size = n / sd_grid;
  nlh::dist::dist_config dcfg;
  dcfg.sd_rows = dcfg.sd_cols = sd_grid;
  dcfg.sd_size = sd_size;
  dcfg.epsilon_factor = eps_factor;

  nlh::partition::mesh_dual_options mopt;
  mopt.sd_rows = mopt.sd_cols = sd_grid;
  mopt.sd_size = sd_size;
  mopt.ghost_width = eps_factor;
  auto dual = nlh::partition::build_mesh_dual(mopt);
  nlh::partition::partition_options popt;
  popt.k = nodes;
  const auto part = nlh::partition::multilevel_partition(dual, popt);

  const nlh::dist::tiling t(sd_grid, sd_grid, sd_size, eps_factor);
  nlh::dist::dist_solver solver(
      dcfg, nlh::dist::ownership_map::from_partition(t, nodes, part));
  solver.set_initial_condition();
  solver.run(steps);

  // Compare the distributed field against the exact solution.
  nlh::nonlocal::manufactured_problem prob(solver.grid(),
                                           serial.interaction_stencil(),
                                           solver.scaling_constant());
  const auto exact = prob.exact_field(steps * solver.dt());
  const auto mine = solver.gather();
  const double dist_err =
      nlh::nonlocal::error_max_relative(solver.grid(), exact, mine);

  nlh::support::table out({"solver", "dt", "max-rel-error", "ghost-KiB"});
  out.row().add("serial").add(sres.dt, 3).add(sres.max_relative_error, 3).add(0);
  out.row().add("distributed").add(solver.dt(), 3).add(dist_err, 3).add(
      static_cast<double>(solver.ghost_bytes()) / 1024.0, 4);
  out.print(std::cout);

  std::cout << "\nBoth solvers track the manufactured solution "
               "w = cos(2 pi t) sin(2 pi x) sin(2 pi y).\n";
  return 0;
}

///
/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library, entirely through the
/// `nlh::api::session` facade: solve the 2-D nonlocal heat equation with
/// the serial and the distributed backend — both advanced concurrently via
/// `run_async` futures — compare the two fields and (for scenarios with an
/// exact solution) the error against it.
///
/// Usage: quickstart [--n 64] [--eps-factor 4] [--steps 20] [--nodes 2]
///                   [--sd-grid 4] [--scenario manufactured] [--backend ""]
///                   [--dt-safety 0.5] [--conductivity 1.0]
///
/// `--scenario` takes any registered scenario (manufactured,
/// gaussian_pulse, lshape, crack, ...); `--backend` pins the kernel
/// backend (scalar, row_run, simd) instead of the deprecated
/// NLH_KERNEL_BACKEND environment variable.
///

#include <cmath>
#include <iostream>
#include <stdexcept>

#include "api/session.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);

  nlh::api::session_options opt;
  opt.scenario = cli.get("scenario", "manufactured");
  opt.n = cli.get_int("n", 64);
  opt.epsilon_factor = cli.get_int("eps-factor", 4);
  opt.num_steps = cli.get_int("steps", 20);
  opt.dt_safety = cli.get_double("dt-safety", 0.5);
  opt.conductivity = cli.get_double("conductivity", 1.0);
  opt.kernel_backend = cli.get("backend", "");
  opt.sd_grid = cli.get_int("sd-grid", 4);
  opt.nodes = cli.get_int("nodes", 2);

  std::cout << "nonlocalheat quickstart: scenario '" << opt.scenario << "', "
            << opt.n << "x" << opt.n << " mesh, epsilon = " << opt.epsilon_factor
            << "h, " << opt.num_steps << " steps, " << opt.nodes
            << " localities\n\n";

  try {
    // Two tenants in one process: the serial reference and the distributed
    // solve on the same mesh (the session decomposes it into SDs,
    // partitions the SD dual graph METIS-style and runs the asynchronous
    // solver over in-process localities — the eight-step chain the
    // examples used to hand-wire). Each session owns its kernel backend.
    opt.mode = nlh::api::execution_mode::serial;
    nlh::api::session serial(opt);
    auto& sref = serial.solver();

    opt.mode = nlh::api::execution_mode::distributed;
    nlh::api::session dist(opt);
    auto& dref = dist.solver();

    // Futures-first stepping: both runs advance concurrently; get() joins
    // and hands back the per-run metrics snapshot.
    auto serial_done = sref.run_async(opt.num_steps);
    auto dist_done = dref.run_async(opt.num_steps);
    serial_done.get();
    dist_done.get();

    const bool has_exact = serial.active_scenario().has_exact();
    nlh::support::table out({"solver", "dt", "max-rel-error", "ghost-KiB"});
    auto add_row = [&](const char* name, nlh::api::solver_handle& h) {
      auto& row = out.row().add(name).add(h.dt(), 3);
      if (has_exact)
        row.add(h.error_vs_exact(), 3);
      else
        row.add("-");
      row.add(static_cast<double>(h.ghost_bytes()) / 1024.0, 4);
    };
    add_row("serial", sref);
    add_row("distributed", dref);
    out.print(std::cout);

    // The headline property: both backends produce the same bits.
    const auto& g = sref.grid();
    const auto sf = sref.field();
    const auto df = dref.field();
    double max_diff = 0.0;
    for (int i = 0; i < g.n(); ++i)
      for (int j = 0; j < g.n(); ++j)
        max_diff = std::max(max_diff, std::abs(sf[g.flat(i, j)] - df[g.flat(i, j)]));
    std::cout << "\nmax |serial - distributed| = " << max_diff
              << (max_diff == 0.0 ? " (bitwise agreement)" : "") << "\n";
    std::cout << "Kernel backend: " << sref.metrics().kernel_backend << "\n";
    return max_diff == 0.0 ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "quickstart: " << e.what() << "\n";
    return 1;
  }
}

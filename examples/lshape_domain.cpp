///
/// \file lshape_domain.cpp
/// \brief Non-square material domains through the `nlh::api` facade: the
/// `lshape` scenario's SD mask shapes the dual graph the session
/// partitions, the virtual cluster scales the masked decomposition
/// (matching the square-domain behaviour of Fig. 13), and a small real
/// solve runs end-to-end through the same session API.
///
/// Usage: lshape_domain [--sd-grid 12] [--shape l|disk] [--max-nodes 8]
///

#include <cmath>
#include <iostream>

#include "api/session.hpp"
#include "dist/sim_dist.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

/// Disk-shaped material domain, defined locally to show how callers extend
/// the scenario interface beyond the built-in registry.
class disk_scenario final : public nlh::api::scenario {
 public:
  std::string name() const override { return "disk"; }
  double initial(double x1, double x2) const override {
    return nlh::api::gaussian_pulse_scenario(0.5, 0.5, 0.08).initial(x1, x2);
  }
  std::vector<char> sd_mask(int sd_rows, int sd_cols) const override {
    // SD centers within the inscribed radius keep material (matches
    // dist::domain_mask::disk).
    const double cy = sd_rows / 2.0;
    const double cx = sd_cols / 2.0;
    const double radius = std::min(sd_rows, sd_cols) / 2.0;
    std::vector<char> mask(static_cast<std::size_t>(sd_rows) * sd_cols, 0);
    for (int r = 0; r < sd_rows; ++r)
      for (int c = 0; c < sd_cols; ++c) {
        const double dy = (r + 0.5) - cy;
        const double dx = (c + 0.5) - cx;
        if (dy * dy + dx * dx <= radius * radius)
          mask[static_cast<std::size_t>(r) * sd_cols + c] = 1;
      }
    return mask;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nlh;
  const support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 12);
  const std::string shape = cli.get("shape", "l");
  const int max_nodes = cli.get_int("max-nodes", 8);
  const int sd_size = 50;

  api::session_options opt;
  opt.mode = api::execution_mode::distributed;
  if (shape == "disk")
    opt.custom_scenario = std::make_shared<const disk_scenario>();
  else
    opt.scenario = "lshape";
  opt.sd_grid = sd_grid;
  opt.n = sd_grid * sd_size;
  opt.epsilon_factor = 8;
  opt.nodes = 1;

  // One session per node count: the facade builds the masked dual graph and
  // its partition at construction; the solver is lazy, so these partition
  // studies never allocate solver state.
  api::session probe(opt);
  const auto& t = probe.sd_tiling();
  const auto& mask = probe.mask();

  std::cout << "Masked domain (" << shape << "): " << mask.num_active() << " of "
            << t.num_sds() << " SDs active.\n\nShape ('#' = material):\n";
  for (int r = 0; r < t.sd_rows(); ++r) {
    for (int c = 0; c < t.sd_cols(); ++c)
      std::cout << (mask.active(t.sd_at(r, c)) ? '#' : '.');
    std::cout << '\n';
  }

  // Scale the masked decomposition over node counts on the virtual cluster.
  support::table tab({"nodes", "edge-cut DPs", "balance", "speedup", "efficiency"});
  dist::sim_cost_model cost;
  cost.sd_active = mask.raw();
  dist::sim_cluster_config cluster;
  double t1 = 0.0;
  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    opt.nodes = nodes;
    api::session s(opt);
    const auto res =
        dist::simulate_timestepping(s.sd_tiling(), s.ownership(), 10, cost, cluster);
    if (nodes == 1) t1 = res.makespan;
    tab.row()
        .add(nodes)
        .add(s.partition_edge_cut(), 6)
        .add(s.partition_balance(), 4)
        .add(t1 / res.makespan, 4)
        .add(t1 / res.makespan / nodes, 3);
  }
  tab.print(std::cout);
  std::cout << "\nThe masked dual graph gives the partitioner the true "
               "communication structure of the\nnon-square domain; scaling "
               "matches the square-domain behaviour of Fig. 13.\n";

  // A small real solve through the same facade: the pulse in the material
  // region diffuses and its energy decays monotonically.
  api::session_options ropt = opt;
  ropt.sd_grid = 4;
  ropt.n = 32;
  ropt.epsilon_factor = 2;
  ropt.nodes = 2;
  ropt.num_steps = 5;
  api::session real(ropt);
  auto& h = real.solver();
  const auto& g = h.grid();
  auto l2 = [&g](const std::vector<double>& f) {
    double sum = 0.0;
    for (int i = 0; i < g.n(); ++i)
      for (int j = 0; j < g.n(); ++j) sum += f[g.flat(i, j)] * f[g.flat(i, j)];
    return std::sqrt(sum * g.cell_volume());
  };
  const double before = l2(h.field());
  h.run(ropt.num_steps);
  const double after = l2(h.field());
  std::cout << "\nReal solve through the facade (" << ropt.n << "x" << ropt.n
            << " mesh, " << ropt.nodes << " localities, " << ropt.num_steps
            << " steps): ||u||_2 " << before << " -> " << after
            << (after < before ? " (pulse diffusing, as expected)" : "") << "\n";
  return after < before ? 0 : 1;
}

///
/// \file lshape_domain.cpp
/// \brief Non-square material domains (the paper's future-work item): an
/// L-shaped SD domain is partitioned on its masked dual graph and scaled on
/// the virtual cluster, showing the same near-linear behaviour as the
/// square domain of Fig. 13.
///
/// Usage: lshape_domain [--sd-grid 12] [--shape l|disk] [--max-nodes 8]
///

#include <iostream>

#include "dist/domain_mask.hpp"
#include "dist/sim_dist.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace nlh;
  const support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 12);
  const std::string shape = cli.get("shape", "l");
  const int max_nodes = cli.get_int("max-nodes", 8);

  const dist::tiling t(sd_grid, sd_grid, 50, 8);
  const auto mask = shape == "disk" ? dist::domain_mask::disk(t)
                                    : dist::domain_mask::l_shape(t);

  std::cout << "Masked domain (" << shape << "): " << mask.num_active() << " of "
            << t.num_sds() << " SDs active.\n\nShape ('#' = material):\n";
  for (int r = 0; r < t.sd_rows(); ++r) {
    for (int c = 0; c < t.sd_cols(); ++c)
      std::cout << (mask.active(t.sd_at(r, c)) ? '#' : '.');
    std::cout << '\n';
  }

  // Partition the masked dual graph and scale over node counts.
  partition::mesh_dual_options mopt;
  mopt.sd_rows = mopt.sd_cols = sd_grid;
  mopt.sd_size = t.sd_size();
  mopt.ghost_width = t.ghost();
  const auto masked = partition::build_mesh_dual_masked(mopt, mask.raw());

  std::cout << "\nMasked dual graph: " << masked.g.num_vertices() << " vertices, "
            << masked.g.num_edges() << " edges.\n\n";

  support::table tab({"nodes", "edge-cut DPs", "balance", "speedup", "efficiency"});
  dist::sim_cost_model cost;
  cost.sd_active = mask.raw();
  dist::sim_cluster_config cluster;
  double t1 = 0.0;
  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    partition::partition_options popt;
    popt.k = nodes;
    const auto mpart = partition::multilevel_partition(masked.g, popt);
    // Project back to full SD ids (inactive SDs parked on node 0 — the
    // simulator never touches them).
    std::vector<int> owner(static_cast<std::size_t>(t.num_sds()), 0);
    for (partition::vid v = 0; v < masked.g.num_vertices(); ++v)
      owner[static_cast<std::size_t>(masked.to_sd[static_cast<std::size_t>(v)])] =
          mpart[static_cast<std::size_t>(v)];
    const dist::ownership_map own(t, nodes, owner);
    const auto res = dist::simulate_timestepping(t, own, 10, cost, cluster);
    if (nodes == 1) t1 = res.makespan;
    tab.row()
        .add(nodes)
        .add(partition::edge_cut(masked.g, mpart), 6)
        .add(partition::balance_factor(masked.g, mpart, nodes), 4)
        .add(t1 / res.makespan, 4)
        .add(t1 / res.makespan / nodes, 3);
  }
  tab.print(std::cout);
  std::cout << "\nThe masked dual graph gives the partitioner the true "
               "communication structure of the\nnon-square domain; scaling "
               "matches the square-domain behaviour of Fig. 13.\n";
  return 0;
}

///
/// \file batch_service.cpp
/// \brief Multi-tenant service demo: sweep scenarios x kernel backends x
/// execution modes concurrently through `nlh::api::batch_runner` over one
/// shared AMT pool, then cross-check every serial/distributed pair for the
/// per-job bitwise guarantee and report aggregate throughput.
///
/// Usage: batch_service [--n 32] [--eps-factor 2] [--steps 5] [--sd-grid 4]
///                      [--nodes 2] [--pool-threads 4] [--cap 3]
///                      [--policy fifo|priority]
///                      [--schedule bulk_sync|coarse|per_direction]
///                      [--json PATH] [--soak]
///                      [--auto-rebalance] [--hibernate] [--resident-cap 3]
///                      [--rounds N] [--trace-out PATH] [--metrics-out PATH]
///
/// Service mode: batch_service --service
///                      [--seed 42] [--arrivals 400] [--service-seconds 0]
///                      [--tenants 8] [--rate 120] [--burst 4]
///                      [--time-scale 0] [--no-qos] [--n 24]
///                      [--pool-threads 4] [--cap 0]
///                      [--quota-rate 200] [--quota-burst 32] [--quota-cap 16]
///                      [--metrics-out PATH] [--trace-out PATH]
///
/// `--service` switches from the one-shot batch sweep to the long-running
/// QoS front door (`nlh::svc::service_loop`, docs/service.md): a seeded
/// MMPP traffic generator offers an open-loop tenant/class mix
/// (interactive / batch / soak), the service polices per-tenant quotas and
/// schedules by class weight, and the run asserts the QoS contract —
/// interactive p99 step latency strictly below batch p99 (skipped under
/// `--no-qos`, which flattens scheduling to FIFO for A/B runs). `--rate`
/// is offered jobs/second of *trace* time; `--time-scale` maps trace time
/// to wall time (0 = submit back-to-back, the saturating default;
/// 1 = real time, what the nightly soak drives for 2 minutes via
/// `--service-seconds 120 --time-scale 1`). The `svc/*` observables land
/// in `--metrics-out` for the nightly asserts.
///
/// `--soak` switches to the ROADMAP stress configuration — 16x16 SDs on 8
/// localities for hundreds of steps, distributed jobs across every
/// scenario x backend — which the nightly CI job runs, uploading the
/// `--json` metrics file as an artifact.
///
/// `--hibernate` (default on under --soak) makes every job a *persistent
/// tenant* (batch_job::session_key) and turns on LRU hibernation to cold
/// storage with at most `--resident-cap` tenant sessions in memory
/// (docs/checkpoint.md). Each tenant's step budget is split across
/// `--rounds` jobs (default 2 when hibernating), so parked tenants really
/// hibernate between rounds and restore transparently on their next job —
/// the serial/distributed bitwise cross-check still passing is the demo's
/// proof that the round trip is invisible. The `ckpt/*` observables land
/// in `--metrics-out`, which the nightly soak asserts on.
///
/// `--auto-rebalance` (default on under --soak) turns on live Algorithm 1
/// rebalancing (docs/balance.md) for every distributed job; the rebalance
/// observables then land in `--metrics-out` as
/// `api/job/<label>/balance/...`, which the nightly soak asserts on.
///
/// `--trace-out` enables span tracing for the whole batch and writes a
/// Chrome-tracing / Perfetto JSON timeline; `--metrics-out` writes the
/// runner's full metrics snapshot (per-session step-latency histograms,
/// queue-wait, bridged AGAS counters) — see docs/observability.md. The
/// nightly soak passes both and uploads the files as artifacts.
///
/// Exit status: 0 when every job succeeded (and, in sweep mode, every
/// serial/distributed pair agreed bitwise); 1 otherwise.
///

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "dist/dist_solver.hpp"
#include "obs/config.hpp"
#include "obs/trace_export.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "svc/service.hpp"
#include "svc/traffic_gen.hpp"

namespace api = nlh::api;
namespace svc = nlh::svc;

namespace {

/// The long-running front-door demo (--service): deterministic MMPP
/// traffic through service_loop, per-class latency report, QoS assert.
int run_service(const nlh::support::cli& cli) {
  const std::string trace_path = cli.get("trace-out", "");
  const std::string metrics_path = cli.get("metrics-out", "");
  if (!trace_path.empty()) nlh::obs::set_tracing_enabled(true);

  svc::traffic_options traffic;
  traffic.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  traffic.duration_seconds = cli.get_double("service-seconds", 0.0);
  traffic.arrivals =
      cli.get_int("arrivals", traffic.duration_seconds > 0.0 ? 0 : 400);
  traffic.mean_rate = cli.get_double("rate", 120.0);
  traffic.burst_factor = cli.get_double("burst", 4.0);
  traffic.tenants = cli.get_int("tenants", 8);
  traffic.n = cli.get_int("n", 24);
  traffic.eps_factor = cli.get_int("eps-factor", 2);
  const double time_scale = cli.get_double("time-scale", 0.0);

  svc::service_options sopt;
  sopt.pool_threads = static_cast<unsigned>(cli.get_int("pool-threads", 4));
  sopt.max_concurrent = cli.get_int("cap", 0);  // 0 = pool_threads
  sopt.qos.enabled = !cli.get_flag("no-qos", false);
  sopt.default_quota.rate_per_second = cli.get_double("quota-rate", 200.0);
  sopt.default_quota.burst = cli.get_double("quota-burst", 32.0);
  sopt.default_quota.max_in_flight = cli.get_int("quota-cap", 16);

  const auto trace = svc::generate_traffic(traffic);
  std::cout << "batch_service --service: " << trace.size()
            << " arrivals (seed " << traffic.seed << ", checksum "
            << std::hex << svc::trace_checksum(trace) << std::dec
            << "), mean rate " << traffic.mean_rate << "/s x burst "
            << traffic.burst_factor << ", " << traffic.tenants
            << " tenants, time-scale " << time_scale << ", QoS "
            << (sopt.qos.enabled ? "on" : "OFF (FIFO baseline)") << "\n\n";

  svc::service_loop loop(sopt);
  auto futures = svc::replay(loop, trace, time_scale);
  for (auto& f : futures) f.get();

  const auto st = loop.stats();
  nlh::support::table out({"class", "submitted", "completed", "shed",
                           "qwait-p50-ms", "qwait-p99-ms", "step-p50-ms",
                           "step-p99-ms"});
  for (int c = 0; c < svc::qos_class_count; ++c) {
    const auto& cs = st.per_class[static_cast<std::size_t>(c)];
    out.row()
        .add(svc::to_string(static_cast<svc::qos_class>(c)))
        .add(static_cast<long long>(cs.submitted))
        .add(static_cast<long long>(cs.completed))
        .add(static_cast<long long>(cs.shed))
        .add(cs.queue_wait.p50 * 1e3, 2)
        .add(cs.queue_wait.p99 * 1e3, 2)
        .add(cs.step_latency.p50 * 1e3, 2)
        .add(cs.step_latency.p99 * 1e3, 2);
  }
  out.print(std::cout);
  std::cout << "service: " << st.jobs_per_second << " jobs/s over "
            << st.wall_seconds << " s; quota delayed " << st.quota_delayed
            << ", quota shed " << st.quota_shed << "\n";

  bool ok = true;
  const auto& inter = st.of(svc::qos_class::interactive);
  const auto& batch = st.of(svc::qos_class::batch);
  if (inter.completed == 0) {
    std::cout << "FAIL: no interactive job completed\n";
    ok = false;
  }
  // The QoS contract the nightly asserts: under the class weights the
  // interactive tail must sit strictly below the batch tail. A FIFO
  // baseline run (--no-qos) makes no such promise.
  if (sopt.qos.enabled && inter.completed > 0 && batch.completed > 0 &&
      !(inter.step_latency.p99 < batch.step_latency.p99)) {
    std::cout << "FAIL: interactive p99 step latency "
              << inter.step_latency.p99 * 1e3
              << " ms not below batch p99 " << batch.step_latency.p99 * 1e3
              << " ms\n";
    ok = false;
  }

  if (!metrics_path.empty()) {
    loop.dump_metrics(metrics_path);
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    nlh::obs::set_tracing_enabled(false);
    if (nlh::obs::write_chrome_trace(trace_path))
      std::cout << "trace timeline written to " << trace_path << "\n";
    else
      ok = false;
  }
  std::cout << (ok ? "\nservice OK\n" : "\nservice FAILED\n");
  return ok ? 0 : 1;
}

/// Interior field of a finished job's session, keyed for pair matching.
struct captured_field {
  int n = 0;
  std::vector<double> values;
};

double max_abs_diff(const nlh::nonlocal::grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      m = std::max(m, std::abs(a[g.flat(i, j)] - b[g.flat(i, j)]));
  return m;
}

void write_json(const std::string& path, const api::batch_metrics& agg,
                const std::vector<api::batch_job_result>& results, bool soak) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "batch_service: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"mode\": \"" << (soak ? "soak" : "sweep") << "\",\n";
  out << "  \"aggregate\": {\"jobs_submitted\": " << agg.jobs_submitted
      << ", \"jobs_completed\": " << agg.jobs_completed
      << ", \"jobs_failed\": " << agg.jobs_failed
      << ", \"total_steps\": " << agg.total_steps
      << ", \"ghost_bytes\": " << agg.ghost_bytes
      << ", \"wall_seconds\": " << agg.wall_seconds
      << ", \"jobs_per_second\": " << agg.jobs_per_second << "},\n";
  out << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"label\": \"" << r.label << "\", \"ok\": " << (r.ok ? "true" : "false")
        << ", \"steps\": " << r.metrics.steps
        << ", \"wall_seconds\": " << r.metrics.wall_seconds
        << ", \"ghost_bytes\": " << r.metrics.ghost_bytes << ", \"backend\": \""
        << r.metrics.kernel_backend << "\"}" << (i + 1 < results.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  const nlh::support::cli cli(argc, argv);
  if (cli.get_flag("service", false)) return run_service(cli);
  const bool soak = cli.get_flag("soak", false);

  // Sweep defaults stay example-sized; --soak is the ROADMAP stress config
  // (16x16 SDs, 8 localities, hundreds of steps).
  const int n = cli.get_int("n", soak ? 128 : 32);
  const int eps = cli.get_int("eps-factor", soak ? 4 : 2);
  const int steps = cli.get_int("steps", soak ? 200 : 5);
  const int sd_grid = cli.get_int("sd-grid", soak ? 16 : 4);
  const int nodes = cli.get_int("nodes", soak ? 8 : 2);
  const bool auto_rebalance = cli.get_flag("auto-rebalance", soak);
  const bool hibernate = cli.get_flag("hibernate", soak);
  const int resident_cap = cli.get_int("resident-cap", 3);
  const int rounds = std::max(1, cli.get_int("rounds", hibernate ? 2 : 1));
  const std::string json_path = cli.get("json", "");
  const std::string trace_path = cli.get("trace-out", "");
  const std::string metrics_path = cli.get("metrics-out", "");
  if (!trace_path.empty()) nlh::obs::set_tracing_enabled(true);

  api::batch_options bopt;
  bopt.pool_threads = static_cast<unsigned>(cli.get_int("pool-threads", 4));
  bopt.max_concurrent_jobs = cli.get_int("cap", 3);
  // Closed value set mapped straight to the enum: a typo'd policy aborts
  // with the valid spellings instead of silently running the default.
  bopt.admission = cli.get_enum<api::admission_policy>(
      "policy", api::admission_policy::fifo,
      {{"fifo", api::admission_policy::fifo},
       {"priority", api::admission_policy::priority}});
  // Overlap schedule for the distributed jobs, same closed-set contract
  // (session_options carries it by name; dist/dist_solver.hpp).
  const nlh::dist::overlap_schedule sched =
      cli.get_enum<nlh::dist::overlap_schedule>(
          "schedule", nlh::dist::overlap_schedule::per_direction,
          {{"bulk_sync", nlh::dist::overlap_schedule::bulk_sync},
           {"coarse", nlh::dist::overlap_schedule::coarse},
           {"per_direction", nlh::dist::overlap_schedule::per_direction}});
  const std::string schedule_name = nlh::dist::overlap_schedule_name(sched);
  if (hibernate) {
    bopt.hibernation.enabled = true;
    bopt.hibernation.resident_cap = static_cast<std::size_t>(resident_cap);
  }

  const std::vector<std::string> scenarios = {"manufactured", "gaussian_pulse",
                                              "lshape", "crack"};
  const std::vector<std::string> backends = {"scalar", "row_run", "simd"};

  // Captured interior fields for the bitwise cross-check (sweep mode only;
  // the hook runs on pool workers, hence the mutex).
  std::mutex fields_mu;
  std::map<std::string, captured_field> fields;

  std::vector<api::batch_job> jobs;
  // Round-major submission order: round 0 of *every* tenant runs before any
  // round 1, so under --hibernate the whole roster cycles through the
  // resident cap between rounds — each tenant is parked, LRU-evicted to
  // cold storage and transparently restored by its next round's job.
  for (int round = 0; round < rounds; ++round)
    for (const auto& scn : scenarios)
      for (const auto& backend : backends)
        for (const char* mode : {"serial", "distributed"}) {
          if (soak && std::string(mode) == "serial") continue;  // all-dist
          const std::string key = scn + "/" + backend + "/" + mode;
          api::batch_job job;
          job.options.scenario = scn;
          job.options.kernel_backend = backend;
          job.options.n = n;
          job.options.epsilon_factor = eps;
          job.options.num_steps = steps;
          job.options.sd_grid = sd_grid;
          job.options.nodes = nodes;
          job.options.mode = std::string(mode) == "serial"
                                 ? api::execution_mode::serial
                                 : api::execution_mode::distributed;
          job.options.overlap_schedule = schedule_name;
          // Queue-wait split per mode: serial jobs are the short/cheap
          // class of this sweep, distributed the heavy one —
          // api/batch/queue_wait_seconds/<mode> in the metrics snapshot.
          job.admission_class = mode;
          if (auto_rebalance &&
              job.options.mode == api::execution_mode::distributed) {
            // Live Algorithm 1 loop on every distributed tenant: sample
            // every 10 steps, act on >= 1 SD of imbalance, damped against
            // noise.
            job.options.auto_rebalance.enabled = true;
            job.options.auto_rebalance.interval = 10;
            job.options.auto_rebalance.trigger = 1.0;
            job.options.auto_rebalance.deadband = 0.5;
            job.options.auto_rebalance.cooldown = 1;
          }
          const int per_round = steps / rounds;
          job.num_steps =
              round + 1 < rounds ? per_round : steps - per_round * (rounds - 1);
          if (hibernate) job.session_key = key;
          job.label = rounds > 1 ? key + "#" + std::to_string(round) : key;
          if (!soak && round + 1 == rounds) {
            job.on_complete = [&fields_mu, &fields, key](api::session& s) {
              captured_field f;
              f.n = s.solver().grid().n();
              f.values = s.solver().field();
              std::lock_guard<std::mutex> lk(fields_mu);
              fields[key] = std::move(f);
            };
          }
          jobs.push_back(std::move(job));
        }

  std::cout << "batch_service: " << jobs.size() << " jobs (" << scenarios.size()
            << " scenarios x " << backends.size() << " backends"
            << (soak ? ", distributed soak" : " x 2 modes") << "), " << n << "x"
            << n << " mesh, " << sd_grid << "x" << sd_grid << " SDs, " << nodes
            << " localities, " << steps << " steps; cap "
            << bopt.max_concurrent_jobs << " over " << bopt.pool_threads
            << " pool threads"
            << (auto_rebalance ? "; auto-rebalance on distributed jobs" : "")
            << "\n\n";

  api::batch_runner runner(bopt);
  auto futures = runner.submit_all(std::move(jobs));

  std::vector<api::batch_job_result> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());

  nlh::support::table out({"job", "ok", "steps", "wall-s", "ghost-KiB", "backend"});
  bool all_ok = true;
  for (const auto& r : results) {
    out.row()
        .add(r.label)
        .add(r.ok ? "yes" : ("FAIL: " + r.error))
        .add(r.metrics.steps)
        .add(r.metrics.wall_seconds, 3)
        .add(static_cast<double>(r.metrics.ghost_bytes) / 1024.0, 1)
        .add(r.metrics.kernel_backend);
    all_ok = all_ok && r.ok;
  }
  out.print(std::cout);

  // Per-job bitwise guarantee: every serial/distributed pair of one
  // (scenario, backend) cell must agree exactly, even though all pairs ran
  // interleaved with jobs pinned to other backends.
  if (!soak) {
    int pairs = 0, mismatches = 0;
    const nlh::nonlocal::grid2d grid(n, static_cast<double>(eps) / n);
    for (const auto& scn : scenarios)
      for (const auto& backend : backends) {
        const auto s = fields.find(scn + "/" + backend + "/serial");
        const auto d = fields.find(scn + "/" + backend + "/distributed");
        if (s == fields.end() || d == fields.end()) continue;
        ++pairs;
        const double diff = max_abs_diff(grid, s->second.values, d->second.values);
        if (diff != 0.0) {
          ++mismatches;
          std::cout << "MISMATCH " << scn << "/" << backend
                    << ": max |serial - distributed| = " << diff << "\n";
        }
      }
    std::cout << "\nbitwise serial==distributed pairs: " << pairs - mismatches
              << "/" << pairs << " exact\n";
    all_ok = all_ok && mismatches == 0 && pairs > 0;
  }

  const auto agg = runner.aggregate();
  std::cout << "aggregate: " << agg.jobs_completed << "/" << agg.jobs_submitted
            << " jobs ok, " << agg.total_steps << " steps, "
            << static_cast<double>(agg.ghost_bytes) / (1024.0 * 1024.0)
            << " MiB ghost traffic, " << agg.wall_seconds << " s wall, "
            << agg.jobs_per_second << " jobs/s\n";

  if (hibernate && runner.hibernation()) {
    const auto* hib = runner.hibernation();
    const auto st = hib->current_stats();
    const double ratio =
        st.bytes_encoded > 0
            ? static_cast<double>(st.bytes_raw) / static_cast<double>(st.bytes_encoded)
            : 0.0;
    std::cout << "hibernation: " << hib->session_count() << " tenants held, "
              << hib->resident_count() << " resident (cap " << resident_cap
              << "), " << st.hibernates << " hibernates / " << st.restores
              << " restores, " << st.bytes_raw / 1024 << " KiB raw -> "
              << st.bytes_encoded / 1024 << " KiB cold (" << ratio << "x)\n";
    // The service claim (docs/checkpoint.md): the runner holds at least 4x
    // more tenant sessions than the resident cap keeps in memory, and
    // multi-round tenants really made the cold-storage round trip.
    if (hib->session_count() < 4 * static_cast<std::size_t>(resident_cap)) {
      std::cout << "FAIL: only " << hib->session_count() << " tenants held for "
                << "resident cap " << resident_cap << " (need >= 4x)\n";
      all_ok = false;
    }
    if (rounds > 1 && st.restores == 0) {
      std::cout << "FAIL: multi-round tenants never restored from cold storage\n";
      all_ok = false;
    }
  }

  if (!json_path.empty()) write_json(json_path, agg, results, soak);

  if (!metrics_path.empty()) {
    runner.dump_metrics(metrics_path);
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    nlh::obs::set_tracing_enabled(false);
    if (nlh::obs::write_chrome_trace(trace_path))
      std::cout << "trace timeline written to " << trace_path
                << " (load in ui.perfetto.dev or chrome://tracing)\n";
    else
      all_ok = false;
  }

  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  // get_enum and options validation throw with actionable messages.
  std::cerr << "batch_service: " << e.what() << "\n";
  return 2;
}

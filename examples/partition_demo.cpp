///
/// \file partition_demo.cpp
/// \brief The mesh-partitioning story of paper §6.2: build the SD dual
/// graph and compare the multilevel (METIS-style) partitioner against
/// strip / block / random baselines on edge cut and ghost volume.
///
/// Usage: partition_demo [--sd-grid 16] [--k 4] [--sd-size 50] [--ghost 8]
///

#include <iostream>

#include "balance/render.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int sd_grid = cli.get_int("sd-grid", 16);
  const int k = cli.get_int("k", 4);
  const int sd_size = cli.get_int("sd-size", 50);
  const int ghost = cli.get_int("ghost", 8);

  nlh::partition::mesh_dual_options mopt;
  mopt.sd_rows = mopt.sd_cols = sd_grid;
  mopt.sd_size = sd_size;
  mopt.ghost_width = ghost;
  const auto g = nlh::partition::build_mesh_dual(mopt);

  std::cout << "SD dual graph: " << g.num_vertices() << " SDs, " << g.num_edges()
            << " exchange edges; partitioning into k = " << k << "\n\n";

  nlh::partition::partition_options popt;
  popt.k = k;
  const auto ml = nlh::partition::multilevel_partition(g, popt);
  const auto strip = nlh::partition::strip_partition(sd_grid, sd_grid, k);
  const auto block = nlh::partition::block_partition(sd_grid, sd_grid, k);
  const auto rnd = nlh::partition::random_partition(g.num_vertices(), k, 42);

  nlh::support::table tab(
      {"method", "edge-cut(DPs)", "cut-edges", "balance", "contiguous"});
  auto report = [&](const char* name, const nlh::partition::partition_vector& p) {
    tab.row()
        .add(name)
        .add(nlh::partition::edge_cut(g, p), 6)
        .add(static_cast<long long>(nlh::partition::cut_edges(g, p)))
        .add(nlh::partition::balance_factor(g, p, k), 4)
        .add(nlh::partition::parts_contiguous(g, p, k) ? "yes" : "no");
  };
  report("multilevel", ml);
  report("block", block);
  report("strip", strip);
  report("random", rnd);
  tab.print(std::cout);

  // Render the multilevel result as an ownership map.
  const nlh::dist::tiling t(sd_grid, sd_grid, sd_size, ghost);
  const auto own = nlh::dist::ownership_map::from_partition(t, k, ml);
  std::cout << "\nMultilevel partition map (edge cut ~= ghost DPs exchanged "
               "per step):\n"
            << nlh::balance::render_ownership(t, own);
  return 0;
}

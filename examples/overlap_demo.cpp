///
/// \file overlap_demo.cpp
/// \brief Anatomy of the communication-hiding trick (paper §6.3, Fig. 5):
/// shows the case-1/case-2 decomposition of each SD, runs the real
/// asynchronous solver over two localities through the `nlh::api` session
/// facade, and quantifies how much exchange time the overlap hides using
/// the virtual-time twin.
///
/// Usage: overlap_demo [--sd-size 16] [--latency-us 50] [--trace out.json]
/// With --trace, the virtual schedule is written as Chrome tracing JSON
/// (open in chrome://tracing or Perfetto to see the overlap lanes).
///

#include <fstream>
#include <iostream>

#include "api/session.hpp"
#include "dist/sim_dist.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int sd_size = cli.get_int("sd-size", 16);
  const double latency_us = cli.get_double("latency-us", 50.0);

  const int sd_grid = 2;
  const int ghost = 2;

  nlh::api::session_options opt;
  opt.mode = nlh::api::execution_mode::distributed;
  opt.scenario = "manufactured";
  opt.sd_grid = sd_grid;
  opt.n = sd_grid * sd_size;
  opt.epsilon_factor = ghost;
  opt.nodes = 2;
  opt.num_steps = 5;
  nlh::api::session session(opt);

  const nlh::dist::tiling& t = session.sd_tiling();
  const nlh::dist::ownership_map& own = session.ownership();

  std::cout << sd_grid << "x" << sd_grid << " SDs of " << sd_size << "x"
            << sd_size << " DPs, ghost width " << ghost
            << "; the session's partitioner split the SDs over 2 localities.\n\n";

  // --- Case-1 / case-2 decomposition ------------------------------------
  nlh::support::table split_tab(
      {"SD", "owner", "case-2 interior DPs", "case-1 strip DPs", "strips"});
  for (int sd = 0; sd < t.num_sds(); ++sd) {
    const auto split = nlh::dist::compute_case_split(t, sd, own.raw());
    split_tab.row()
        .add(sd)
        .add(own.owner(sd))
        .add(static_cast<long long>(split.interior_dps()))
        .add(static_cast<long long>(split.strip_dps()))
        .add(static_cast<long long>(split.remote_strips.size()));
  }
  split_tab.print(std::cout);
  std::cout << "\nCase-2 DPs never read foreign data and compute while ghost "
               "messages are in flight;\ncase-1 strips wait for all remote "
               "ghosts of their SD.\n\n";

  // --- Real asynchronous run through the facade --------------------------
  auto& solver = session.solver();
  solver.run(opt.num_steps);
  const auto metrics = solver.metrics();
  std::cout << "Real solver: " << metrics.steps << " steps, ghost traffic "
            << metrics.ghost_bytes << " bytes over locality boundary ("
            << metrics.kernel_backend << " kernel backend).\n\n";

  // --- Virtual-time comparison: overlap on vs off ------------------------
  // Virtual time is measured in DP-update units (work_per_dp = 1, node
  // speed 1), so the network is parameterized in the same unit: one message
  // costs `latency_us` DP-updates plus one DP-update per payload byte.
  nlh::dist::sim_cost_model cost;
  nlh::dist::sim_cluster_config cl;
  cl.net.latency_s = latency_us;
  cl.net.bandwidth_bytes_per_s = 1.0;
  std::ofstream trace_file;
  if (cli.has("trace")) {
    trace_file.open(cli.get("trace", "overlap_trace.json"));
    cl.chrome_trace = &trace_file;
  }
  const auto with_overlap = nlh::dist::simulate_timestepping(t, own, 20, cost, cl);
  if (trace_file.is_open())
    std::cout << "Chrome trace written to " << cli.get("trace", "") << "\n\n";

  // A hypothetical no-overlap runtime waits for every ghost before touching
  // any DP: per step that adds the full transfer time to the critical path.
  const double strip_bytes = static_cast<double>(t.strip_dps(
                                 nlh::dist::direction::east)) * cost.bytes_per_dp;
  const double per_step_wait = cl.net.transfer_time(strip_bytes);
  const double no_overlap_makespan = with_overlap.makespan + 20 * per_step_wait;

  nlh::support::table ov({"schedule", "virtual makespan", "hidden per step"});
  ov.row().add("async overlap (case-2 first)").add(with_overlap.makespan, 6).add("-");
  ov.row().add("bulk-synchronous (wait for ghosts)").add(no_overlap_makespan, 6).add(
      per_step_wait, 4);
  ov.print(std::cout);

  std::cout << "\nThe asynchronous schedule hides the exchange behind case-2 "
               "computation\n(the assumption that makes Algorithm 1's "
               "busy-time model realistic).\n";
  return 0;
}

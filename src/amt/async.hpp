#pragma once
///
/// \file async.hpp
/// \brief `async`/`dataflow` — launch callables on a thread pool and get a
/// future, mirroring `hpx::async` / `hpx::dataflow`.
///

#include <tuple>
#include <type_traits>
#include <utility>

#include "amt/future.hpp"
#include "amt/thread_pool.hpp"

namespace nlh::amt {

/// Launch `fn(args...)` on `pool`; returns a future for its result.
/// Exceptions propagate through the future (rethrown from get()).
template <class F, class... Args>
auto async(thread_pool& pool, F&& fn, Args&&... args)
    -> future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
  promise<R> p;
  auto fut = p.get_future();
  pool.post([p = std::move(p), fn = std::forward<F>(fn),
             tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
    try {
      if constexpr (std::is_void_v<R>) {
        std::apply(fn, std::move(tup));
        p.set_value();
      } else {
        p.set_value(std::apply(fn, std::move(tup)));
      }
    } catch (...) {
      p.set_exception(std::current_exception());
    }
  });
  return fut;
}

/// Single-dependency dataflow: run `fn(ready)` on `pool` once `dep` is
/// ready. This is the hop the per-direction ghost schedule uses to move
/// each unpack continuation off the delivering thread onto the owner's
/// pool — one future, one continuation, no when_all/vector machinery.
template <class T, class F>
auto dataflow_one(thread_pool& pool, future<T> dep, F&& fn)
    -> future<std::invoke_result_t<std::decay_t<F>, future<T>>> {
  using R = std::invoke_result_t<std::decay_t<F>, future<T>>;
  promise<R> p;
  auto out = p.get_future();
  auto state = dep.state();
  NLH_ASSERT(state != nullptr);
  state->add_continuation(
      [&pool, state, p = std::move(p), fn = std::forward<F>(fn)]() mutable {
        pool.post([state = std::move(state), p = std::move(p),
                   fn = std::move(fn)]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn(future<T>(std::move(state)));
              p.set_value();
            } else {
              p.set_value(fn(future<T>(std::move(state))));
            }
          } catch (...) {
            p.set_exception(std::current_exception());
          }
        });
      });
  return out;
}

/// dataflow: run `fn` on `pool` once every future in `deps` is ready.
/// The callable receives the vector of ready futures.
template <class T, class F>
auto dataflow(thread_pool& pool, std::vector<future<T>> deps, F&& fn)
    -> future<std::invoke_result_t<std::decay_t<F>, std::vector<future<T>>>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::vector<future<T>>>;
  promise<R> p;
  auto out = p.get_future();
  when_all(std::move(deps))
      .then([&pool, p = std::move(p),
             fn = std::forward<F>(fn)](future<std::vector<future<T>>> ready) mutable {
        // Hop onto the pool so heavy continuations never run on the
        // completing (possibly network) thread.
        pool.post([p = std::move(p), fn = std::move(fn), fs = ready.get()]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn(std::move(fs));
              p.set_value();
            } else {
              p.set_value(fn(std::move(fs)));
            }
          } catch (...) {
            p.set_exception(std::current_exception());
          }
        });
      });
  return out;
}

}  // namespace nlh::amt

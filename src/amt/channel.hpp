#pragma once
///
/// \file channel.hpp
/// \brief Futurized FIFO channel, modeled on hpx::lcos::local::channel.
///
/// Producers `set` values, consumers `get` futures; values and requests
/// match in FIFO order regardless of which side arrives first (the typed,
/// single-queue sibling of net::mailbox). `close()` fails all pending and
/// future gets with channel_closed.
///

#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "amt/future.hpp"

namespace nlh::amt {

struct channel_closed : std::runtime_error {
  channel_closed() : std::runtime_error("channel closed") {}
};

template <class T>
class channel {
 public:
  /// Enqueue a value; fulfills the oldest waiting get if any.
  void set(T value) {
    promise<T> to_fulfill;
    bool matched = false;
    {
      std::lock_guard lk(m_);
      NLH_ASSERT_MSG(!closed_, "channel::set after close");
      if (!waiting_.empty()) {
        to_fulfill = std::move(waiting_.front());
        waiting_.pop_front();
        matched = true;
      } else {
        values_.push_back(std::move(value));
      }
    }
    if (matched) to_fulfill.set_value(std::move(value));
  }

  /// Futurized receive; ready immediately when a value is queued. After
  /// close(), gets drain the remaining queued values first and then fail
  /// with channel_closed.
  future<T> get() {
    promise<T> p;
    auto f = p.get_future();
    std::optional<T> value;
    bool closed = false;
    {
      std::lock_guard lk(m_);
      if (!values_.empty()) {
        value.emplace(std::move(values_.front()));
        values_.pop_front();
      } else if (closed_) {
        closed = true;
      } else {
        waiting_.push_back(std::move(p));
      }
    }
    if (value)
      p.set_value(std::move(*value));
    else if (closed)
      p.set_exception(std::make_exception_ptr(channel_closed{}));
    return f;
  }

  /// Fail all pending gets; subsequent gets drain queued values, then fail.
  void close() {
    std::deque<promise<T>> waiters;
    {
      std::lock_guard lk(m_);
      closed_ = true;
      waiters.swap(waiting_);
    }
    for (auto& w : waiters)
      w.set_exception(std::make_exception_ptr(channel_closed{}));
  }

  bool closed() const {
    std::lock_guard lk(m_);
    return closed_;
  }

  std::size_t queued() const {
    std::lock_guard lk(m_);
    return values_.size();
  }

 private:
  mutable std::mutex m_;
  std::deque<T> values_;
  std::deque<promise<T>> waiting_;
  bool closed_ = false;
};

}  // namespace nlh::amt

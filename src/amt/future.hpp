#pragma once
///
/// \file future.hpp
/// \brief Futurization primitives modeled on the HPX subset the paper uses:
/// `future`, `promise`, `then`-continuations, `when_all`, `make_ready_future`.
///
/// Unlike `std::future`, attaching a continuation (`then`) never blocks: when
/// the state is already ready the continuation runs inline on the attaching
/// thread, otherwise it runs inline on the thread that fulfills the promise.
/// This is exactly the mechanism the distributed solver uses to chain
/// "ghost data arrived -> compute case-1 DPs" without idling a worker.
///

#include <atomic>
#include <condition_variable>
#include <exception>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "amt/unique_function.hpp"
#include "support/assert.hpp"

namespace nlh::amt {

template <class T>
class future;
template <class T>
class promise;

namespace detail {

template <class T>
struct value_box {
  std::optional<T> v;
  bool has() const { return v.has_value(); }
  T take() { return std::move(*v); }
};

template <>
struct value_box<void> {
  bool set = false;
  bool has() const { return set; }
  void take() {}
};

/// Reference-counted synchronization cell shared by promise/future pairs.
template <class T>
class shared_state {
 public:
  template <class... Args>
  void set_value(Args&&... args) {
    std::vector<unique_function<void()>> conts;
    {
      std::lock_guard lk(m_);
      NLH_ASSERT_MSG(!ready_, "shared_state: value set twice");
      if constexpr (std::is_void_v<T>)
        box_.set = true;
      else
        box_.v.emplace(std::forward<Args>(args)...);
      ready_ = true;
      conts.swap(continuations_);
    }
    cv_.notify_all();
    for (auto& c : conts) c();  // run outside the lock: continuations may attach more
  }

  void set_exception(std::exception_ptr e) {
    std::vector<unique_function<void()>> conts;
    {
      std::lock_guard lk(m_);
      NLH_ASSERT_MSG(!ready_, "shared_state: value set twice");
      err_ = std::move(e);
      ready_ = true;
      conts.swap(continuations_);
    }
    cv_.notify_all();
    for (auto& c : conts) c();
  }

  bool is_ready() const {
    std::lock_guard lk(m_);
    return ready_;
  }

  void wait() const {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return ready_; });
  }

  T get() {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return ready_; });
    if (err_) std::rethrow_exception(err_);
    return box_.take();
  }

  /// Attach `fn`; runs inline immediately when already ready.
  void add_continuation(unique_function<void()> fn) {
    {
      std::lock_guard lk(m_);
      if (!ready_) {
        continuations_.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  value_box<T> box_;
  std::exception_ptr err_;
  bool ready_ = false;
  std::vector<unique_function<void()>> continuations_;
};

}  // namespace detail

/// Write end of an asynchronous value (HPX/std semantics).
template <class T>
class promise {
 public:
  promise() : state_(std::make_shared<detail::shared_state<T>>()) {}

  future<T> get_future();

  template <class... Args>
  void set_value(Args&&... args) {
    // Pin the state for the whole fulfillment: a waiter woken inside
    // set_value may destroy this promise (and the future) immediately,
    // which must not tear the state down under the notifying thread.
    auto s = state_;
    s->set_value(std::forward<Args>(args)...);
  }
  void set_exception(std::exception_ptr e) {
    auto s = state_;
    s->set_exception(std::move(e));
  }

 private:
  template <class U>
  friend class future;
  std::shared_ptr<detail::shared_state<T>> state_;
};

/// Read end of an asynchronous value with continuation support.
template <class T>
class future {
 public:
  using value_type = T;

  future() = default;
  explicit future(std::shared_ptr<detail::shared_state<T>> s) : state_(std::move(s)) {}

  bool valid() const { return state_ != nullptr; }
  bool is_ready() const {
    NLH_ASSERT(valid());
    return state_->is_ready();
  }
  void wait() const {
    NLH_ASSERT(valid());
    state_->wait();
  }

  /// Blocking retrieval; consumes the future's value (HPX semantics).
  T get() {
    NLH_ASSERT(valid());
    auto s = std::move(state_);
    return s->get();
  }

  /// Attach a continuation receiving the ready future; returns the
  /// continuation's own future. Runs inline on the fulfilling thread.
  template <class F>
  auto then(F&& fn) -> future<std::invoke_result_t<F, future<T>>> {
    NLH_ASSERT(valid());
    using R = std::invoke_result_t<F, future<T>>;
    promise<R> p;
    auto result = p.get_future();
    auto state = std::move(state_);
    state->add_continuation(
        [state, p = std::move(p), fn = std::forward<F>(fn)]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn(future<T>(std::move(state)));
              p.set_value();
            } else {
              p.set_value(fn(future<T>(std::move(state))));
            }
          } catch (...) {
            p.set_exception(std::current_exception());
          }
        });
    return result;
  }

  std::shared_ptr<detail::shared_state<T>> state() const { return state_; }

 private:
  std::shared_ptr<detail::shared_state<T>> state_;
};

template <class T>
future<T> promise<T>::get_future() {
  NLH_ASSERT(state_ != nullptr);
  return future<T>(state_);
}

/// A future that is ready immediately (HPX's hpx::make_ready_future).
template <class T, class... Args>
future<T> make_ready_future(Args&&... args) {
  promise<T> p;
  p.set_value(std::forward<Args>(args)...);
  return p.get_future();
}

inline future<void> make_ready_future() {
  promise<void> p;
  p.set_value();
  return p.get_future();
}

/// Composite future that becomes ready when every input is ready; the inputs
/// are handed back so callers can inspect per-element results/exceptions
/// (mirrors hpx::when_all's future<vector<future<T>>> shape).
template <class T>
future<std::vector<future<T>>> when_all(std::vector<future<T>> fs) {
  struct ctx {
    std::mutex m;
    std::vector<future<T>> fs;
    std::size_t pending = 0;
    promise<std::vector<future<T>>> done;
  };
  auto c = std::make_shared<ctx>();
  c->pending = fs.size();
  c->fs = std::move(fs);

  if (c->pending == 0) {
    c->done.set_value(std::move(c->fs));
    return c->done.get_future();
  }

  auto result = c->done.get_future();
  // Snapshot the states first: attaching may fire the final continuation
  // inline, which moves c->fs and would invalidate iteration over it.
  std::vector<std::shared_ptr<detail::shared_state<T>>> states;
  states.reserve(c->fs.size());
  for (auto& f : c->fs) {
    NLH_ASSERT(f.valid());
    states.push_back(f.state());
  }
  for (auto& s : states) {
    s->add_continuation([c] {
      bool last = false;
      {
        std::lock_guard lk(c->m);
        last = --c->pending == 0;
      }
      if (last) c->done.set_value(std::move(c->fs));
    });
  }
  return result;
}

/// Block until all futures are ready (does not consume values).
template <class T>
void wait_all(const std::vector<future<T>>& fs) {
  for (const auto& f : fs) f.wait();
}

/// Completion-only fan-in over a small fixed set of void futures: the
/// returned future becomes ready once every input has completed. Values and
/// exceptions stay with the inputs (callers that care must get() them) —
/// this is a pure readiness gate. The per-direction overlap schedule chains
/// corner strips on their two or three ghost arrivals through this without
/// the when_all vector round-trip; a lock-free counter replaces the
/// mutex + future-vector machinery.
inline future<void> when_all_ready(const future<void>* fs, std::size_t n) {
  struct ctx {
    std::atomic<int> pending{0};
    promise<void> done;
  };
  auto c = std::make_shared<ctx>();
  c->pending.store(static_cast<int>(n), std::memory_order_relaxed);
  auto result = c->done.get_future();
  if (n == 0) {
    c->done.set_value();
    return result;
  }
  for (std::size_t i = 0; i < n; ++i) {
    NLH_ASSERT(fs[i].valid());
    fs[i].state()->add_continuation([c] {
      if (c->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        c->done.set_value();
    });
  }
  return result;
}

inline future<void> when_all_ready(std::initializer_list<future<void>> fs) {
  return when_all_ready(fs.begin(), fs.size());
}

}  // namespace nlh::amt

#include "amt/counters.hpp"

#include "support/assert.hpp"

namespace nlh::amt {

counter_registry& counter_registry::instance() {
  static counter_registry reg;
  return reg;
}

void counter_registry::register_counter(const std::string& path,
                                        std::function<double()> value,
                                        std::function<void()> reset) {
  std::lock_guard lk(m_);
  counters_[path] = entry{std::move(value), std::move(reset)};
}

void counter_registry::unregister_counter(const std::string& path) {
  std::lock_guard lk(m_);
  counters_.erase(path);
}

double counter_registry::value(const std::string& path) const {
  std::function<double()> fn;
  {
    std::lock_guard lk(m_);
    const auto it = counters_.find(path);
    NLH_ASSERT_MSG(it != counters_.end(), path.c_str());
    fn = it->second.value;
  }
  return fn();
}

std::optional<double> counter_registry::try_value(const std::string& path) const {
  std::function<double()> fn;
  {
    std::lock_guard lk(m_);
    const auto it = counters_.find(path);
    if (it == counters_.end()) return std::nullopt;
    fn = it->second.value;
  }
  // Invoked outside the lock (like value()): providers may take their own
  // locks, and a concurrent unregister after the copy is harmless — the
  // copied std::function keeps its captures alive for this call.
  return fn();
}

bool counter_registry::contains(const std::string& path) const {
  std::lock_guard lk(m_);
  return counters_.count(path) != 0;
}

void counter_registry::reset(const std::string& path) {
  std::function<void()> fn;
  {
    std::lock_guard lk(m_);
    const auto it = counters_.find(path);
    NLH_ASSERT_MSG(it != counters_.end(), path.c_str());
    fn = it->second.reset;
  }
  fn();
}

void counter_registry::reset_matching(const std::string& substring) {
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard lk(m_);
    for (auto& [path, e] : counters_)
      if (substring.empty() || path.find(substring) != std::string::npos)
        fns.push_back(e.reset);
  }
  for (auto& f : fns) f();
}

std::vector<std::string> counter_registry::paths_matching(
    const std::string& substring) const {
  std::vector<std::string> out;
  std::lock_guard lk(m_);
  for (const auto& [path, e] : counters_)
    if (substring.empty() || path.find(substring) != std::string::npos)
      out.push_back(path);
  return out;
}

void counter_registry::clear() {
  std::lock_guard lk(m_);
  counters_.clear();
}

std::string busy_time_path(int locality) {
  return "/threads{locality#" + std::to_string(locality) + "/total}/busy_time";
}

}  // namespace nlh::amt

#pragma once
///
/// \file unique_function.hpp
/// \brief Move-only callable wrapper (pre-C++23 `std::move_only_function`).
///
/// Packaged tasks capture promises, which are movable but not copyable, so
/// `std::function` cannot hold them; this minimal wrapper can.
///

#include <memory>
#include <type_traits>
#include <utility>

namespace nlh::amt {

template <class Sig>
class unique_function;

template <class R, class... Args>
class unique_function<R(Args...)> {
 public:
  unique_function() = default;
  unique_function(std::nullptr_t) {}

  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, unique_function>>>
  unique_function(F&& f) : impl_(std::make_unique<model<std::decay_t<F>>>(std::forward<F>(f))) {}

  unique_function(unique_function&&) noexcept = default;
  unique_function& operator=(unique_function&&) noexcept = default;
  unique_function(const unique_function&) = delete;
  unique_function& operator=(const unique_function&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) { return impl_->call(std::forward<Args>(args)...); }

 private:
  struct concept_t {
    virtual ~concept_t() = default;
    virtual R call(Args...) = 0;
  };
  template <class F>
  struct model final : concept_t {
    explicit model(F f) : fn(std::move(f)) {}
    R call(Args... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };

  std::unique_ptr<concept_t> impl_;
};

}  // namespace nlh::amt

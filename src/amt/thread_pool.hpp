#pragma once
///
/// \file thread_pool.hpp
/// \brief Work-stealing thread pool with per-worker busy-time accounting —
/// the threading subsystem of the mini-AMT runtime.
///
/// Each worker owns a deque; `post` from a worker pushes to its own deque
/// (LIFO hot path), external posts go to a shared inject queue, and idle
/// workers steal FIFO from victims. Busy time (wall time spent executing
/// tasks) is accumulated per worker and exposed through the counter registry
/// as `/threads{locality#L/total}/busy_time`, the observable Algorithm 1
/// consumes.
///

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amt/future.hpp"
#include "amt/unique_function.hpp"

namespace nlh::amt {

class thread_pool {
 public:
  /// \param num_threads worker count (>= 1)
  /// \param locality    id used for the busy_time counter path; pass -1 to
  ///                    skip counter registration (unit tests).
  explicit thread_pool(unsigned num_threads, int locality = -1);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Fire-and-forget task submission (wait-free for callers on worker
  /// threads except for the deque mutex).
  void post(unique_function<void()> task);

  /// Block the calling thread until `f` is ready. When called from one of
  /// this pool's workers the wait *helps*: it executes queued tasks instead
  /// of sleeping, so a single-threaded pool cannot deadlock on a dependent
  /// task chain.
  template <class T>
  void wait(const future<T>& f) {
    while (!f.is_ready()) {
      if (!try_help_one()) f.wait();
    }
  }

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }
  int locality() const { return locality_; }

  /// Total wall-seconds all workers spent executing tasks since the last
  /// reset_busy_time(), including the elapsed time of tasks still running.
  /// Counting in-flight work keeps the reading consistent for callers woken
  /// by a promise fulfilled *inside* a task (the task is observably "spent"
  /// even though its wrapper has not returned yet).
  double busy_time_s() const;

  /// busy_time_s() / (workers * interval length): the fraction HPX's
  /// busy_time counter reports. 0 when the interval is empty.
  double busy_fraction() const;

  /// Open a new measurement interval: the reading drops to exactly zero.
  /// Contract: tasks still in flight are attributed wholly to the interval
  /// being closed — their remaining time is not counted in the new one.
  /// Reset at a quiescent point (between steps/runs, as the balancing
  /// drivers do) for exact accounting.
  void reset_busy_time();

  std::uint64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }

 private:
  struct worker_queue {
    std::mutex m;
    std::deque<unique_function<void()>> q;
  };

  void worker_loop(unsigned index);
  bool try_pop_local(unsigned index, unique_function<void()>& out);
  bool try_steal(unsigned index, unique_function<void()>& out);
  bool try_pop_inject(unique_function<void()>& out);
  /// Execute one queued task if any is available (used by helping waits,
  /// callable from any thread). Returns false when all queues were empty.
  bool try_help_one();
  void run_task(unique_function<void()> task);

  std::vector<std::unique_ptr<worker_queue>> queues_;
  std::mutex inject_m_;
  std::deque<unique_function<void()>> inject_;
  std::condition_variable work_cv_;
  std::mutex sleep_m_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  mutable std::mutex active_m_;
  std::vector<std::int64_t> active_start_ns_;  ///< start stamps of running tasks
  std::uint64_t busy_epoch_ = 0;  ///< bumped by reset; orphans spanning tasks
  std::chrono::steady_clock::time_point interval_start_;
  mutable std::mutex interval_m_;
  int locality_ = -1;

  static thread_local thread_pool* current_pool_;
  static thread_local unsigned current_index_;
};

}  // namespace nlh::amt

#pragma once
///
/// \file counters.hpp
/// \brief Globally addressable performance counters — the AGAS-registered
/// counter facility of HPX, reduced to what the load balancer needs.
///
/// Counters are registered by path (e.g. "/threads{locality#0}/busy_time"),
/// expose a value provider and a reset hook, and can be polled and reset
/// while the application runs. Algorithm 1 resets all busy_time counters at
/// the end of each balancing iteration so every node is measured over the
/// same interval.
///

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nlh::amt {

/// Process-wide registry; thread safe.
class counter_registry {
 public:
  static counter_registry& instance();

  /// Register (or replace) a counter. `value` returns the current reading;
  /// `reset` restarts the measurement interval.
  void register_counter(const std::string& path, std::function<double()> value,
                        std::function<void()> reset);

  void unregister_counter(const std::string& path);

  /// Polls a counter; aborts via NLH_ASSERT if the path is unknown.
  double value(const std::string& path) const;

  /// Non-aborting poll: nullopt when the path is not (or no longer)
  /// registered. The right call for monitoring/balancing loops racing
  /// against unregister_counter (e.g. a pool torn down mid-migration) —
  /// a vanished counter is a skipped reading, not a crash.
  std::optional<double> try_value(const std::string& path) const;

  bool contains(const std::string& path) const;

  void reset(const std::string& path);

  /// Reset every counter whose path contains `substring` (empty = all);
  /// implements Algorithm 1 line 35, `reset_all(busy_time)`.
  void reset_matching(const std::string& substring);

  /// All registered paths containing `substring`, sorted.
  std::vector<std::string> paths_matching(const std::string& substring) const;

  /// Remove everything (test isolation).
  void clear();

 private:
  struct entry {
    std::function<double()> value;
    std::function<void()> reset;
  };
  mutable std::mutex m_;
  std::map<std::string, entry> counters_;
};

/// Canonical counter path for a locality's busy-time fraction, matching the
/// paper's hpx::performance_counters::busy_time usage.
std::string busy_time_path(int locality);

}  // namespace nlh::amt

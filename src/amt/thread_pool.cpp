#include "amt/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "amt/counters.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"

namespace nlh::amt {

thread_local thread_pool* thread_pool::current_pool_ = nullptr;
thread_local unsigned thread_pool::current_index_ = 0;

thread_pool::thread_pool(unsigned num_threads, int locality) : locality_(locality) {
  NLH_ASSERT(num_threads >= 1);
  interval_start_ = std::chrono::steady_clock::now();
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) queues_.push_back(std::make_unique<worker_queue>());
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });

  if (locality_ >= 0) {
    counter_registry::instance().register_counter(
        busy_time_path(locality_), [this] { return busy_fraction(); },
        [this] { reset_busy_time(); });
  }
}

thread_pool::~thread_pool() {
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (locality_ >= 0)
    counter_registry::instance().unregister_counter(busy_time_path(locality_));
}

void thread_pool::post(unique_function<void()> task) {
  NLH_ASSERT(task);
  if (current_pool_ == this) {
    auto& wq = *queues_[current_index_];
    std::lock_guard lk(wq.m);
    wq.q.push_back(std::move(task));
  } else {
    std::lock_guard lk(inject_m_);
    inject_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool thread_pool::try_pop_local(unsigned index, unique_function<void()>& out) {
  auto& wq = *queues_[index];
  std::lock_guard lk(wq.m);
  if (wq.q.empty()) return false;
  out = std::move(wq.q.back());  // LIFO: newest first for cache locality
  wq.q.pop_back();
  return true;
}

bool thread_pool::try_steal(unsigned index, unique_function<void()>& out) {
  const auto n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    auto& victim = *queues_[(index + k) % n];
    std::lock_guard lk(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());  // FIFO steal: oldest, largest subtrees
      victim.q.pop_front();
      return true;
    }
  }
  return false;
}

bool thread_pool::try_pop_inject(unique_function<void()>& out) {
  std::lock_guard lk(inject_m_);
  if (inject_.empty()) return false;
  out = std::move(inject_.front());
  inject_.pop_front();
  return true;
}

bool thread_pool::try_help_one() {
  unique_function<void()> task;
  const unsigned idx = (current_pool_ == this) ? current_index_ : 0;
  if (try_pop_inject(task) || try_pop_local(idx, task) || try_steal(idx, task)) {
    run_task(std::move(task));
    return true;
  }
  return false;
}

void thread_pool::run_task(unique_function<void()> task) {
  // Account at task *start* and track the in-flight stamp: a waiter woken
  // by a promise fulfilled inside `task` must already see this task in the
  // execution count and its elapsed time in busy_time_s().
  const auto t0 = std::chrono::steady_clock::now();
  const auto t0_ns = t0.time_since_epoch().count();
  std::uint64_t my_epoch;
  {
    std::lock_guard lk(active_m_);
    my_epoch = busy_epoch_;
    active_start_ns_.push_back(t0_ns);
  }
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);

  {
    NLH_TRACE_SPAN("amt/task");
    task();
  }

  const auto t1 = std::chrono::steady_clock::now();
  {
    // Retire the stamp and bank the duration under one lock so concurrent
    // busy_time_s() readers see the task as either in flight or completed,
    // never neither. A task spanning a reset banks nothing — see the
    // reset_busy_time() contract.
    std::lock_guard lk(active_m_);
    if (my_epoch != busy_epoch_) return;
    const auto it =
        std::find(active_start_ns_.begin(), active_start_ns_.end(), t0_ns);
    if (it != active_start_ns_.end()) active_start_ns_.erase(it);
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()),
        std::memory_order_relaxed);
  }
}

void thread_pool::worker_loop(unsigned index) {
  current_pool_ = this;
  current_index_ = index;
#if NLH_OBS_TRACING_COMPILED
  // Perfetto track label; once per thread, so unconditional is fine.
  obs::tracer::instance().set_thread_name(
      (locality_ >= 0 ? "loc" + std::to_string(locality_) + "/worker-"
                      : "worker-") +
      std::to_string(index));
#endif
  unique_function<void()> task;
  while (true) {
    if (try_pop_local(index, task) || try_pop_inject(task) || try_steal(index, task)) {
      run_task(std::move(task));
      task = nullptr;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock lk(sleep_m_);
    // Re-check under the lock to avoid missing a notify between the empty
    // poll above and the wait below.
    work_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
}

double thread_pool::busy_time_s() const {
  const auto now_ns = std::chrono::steady_clock::now().time_since_epoch().count();
  std::lock_guard lk(active_m_);
  double total = static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  for (const auto start_ns : active_start_ns_)
    if (now_ns > start_ns) total += static_cast<double>(now_ns - start_ns) * 1e-9;
  return total;
}

double thread_pool::busy_fraction() const {
  std::chrono::steady_clock::time_point start;
  {
    std::lock_guard lk(interval_m_);
    start = interval_start_;
  }
  const double interval =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (interval <= 0.0) return 0.0;
  return busy_time_s() / (interval * static_cast<double>(workers_.size()));
}

void thread_pool::reset_busy_time() {
  {
    std::lock_guard lk(active_m_);
    ++busy_epoch_;
    active_start_ns_.clear();
    busy_ns_.store(0, std::memory_order_relaxed);
  }
  std::lock_guard lk(interval_m_);
  interval_start_ = std::chrono::steady_clock::now();
}

}  // namespace nlh::amt

#include "partition/graph.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace nlh::partition {

graph graph::from_adjacency(
    const std::vector<std::vector<std::pair<vid, weight_t>>>& adj,
    std::vector<weight_t> vertex_weights) {
  const auto n = adj.size();
  if (vertex_weights.empty()) vertex_weights.assign(n, 1.0);
  NLH_ASSERT_MSG(vertex_weights.size() == n, "graph: vertex weight count mismatch");

  // Symmetrize into a map per vertex, merging duplicates.
  std::vector<std::map<vid, weight_t>> sym(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : adj[u]) {
      NLH_ASSERT_MSG(v >= 0 && static_cast<std::size_t>(v) < n, "graph: edge endpoint out of range");
      NLH_ASSERT_MSG(static_cast<std::size_t>(v) != u, "graph: self-loop");
      NLH_ASSERT_MSG(w > 0, "graph: non-positive edge weight");
      sym[u][v] += w;
      sym[static_cast<std::size_t>(v)][static_cast<vid>(u)] += w;
    }
  }
  // Contract: each undirected edge is listed exactly once (in either
  // direction); the symmetrization above then stores equal weight on both.

  graph g;
  g.vwgt_ = std::move(vertex_weights);
  g.total_vwgt_ = 0;
  for (weight_t w : g.vwgt_) {
    NLH_ASSERT_MSG(w >= 0, "graph: negative vertex weight");
    g.total_vwgt_ += w;
  }

  g.xadj_.resize(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u)
    g.xadj_[u + 1] = g.xadj_[u] + static_cast<std::int64_t>(sym[u].size());
  g.adjncy_.reserve(static_cast<std::size_t>(g.xadj_[n]));
  g.adjwgt_.reserve(static_cast<std::size_t>(g.xadj_[n]));
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : sym[u]) {
      g.adjncy_.push_back(v);
      g.adjwgt_.push_back(w);
    }
  }
  return g;
}

weight_t graph::incident_weight(vid u) const {
  weight_t total = 0;
  for (auto e = xadj(u); e < xadj(u + 1); ++e) total += adjwgt(e);
  return total;
}

bool graph::has_edge(vid u, vid v) const {
  for (auto e = xadj(u); e < xadj(u + 1); ++e)
    if (adjncy(e) == v) return true;
  return false;
}

}  // namespace nlh::partition

#include "partition/multilevel.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <queue>

#include "partition/metrics.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace nlh::partition {

namespace {

struct coarse_level {
  graph g;
  std::vector<vid> cmap;  ///< fine vertex -> coarse vertex
};

/// Heavy-edge matching coarsening: unmatched vertices pair with the
/// unmatched neighbor of maximum edge weight; pairs collapse into coarse
/// vertices whose weight is the sum and whose edges merge.
coarse_level coarsen_once(const graph& g, support::rng& gen) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<vid> match(n, -1);
  std::vector<vid> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Random visitation order decorrelates matchings across levels.
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[gen.uniform_u64(0, i - 1)]);

  for (vid u : order) {
    if (match[static_cast<std::size_t>(u)] != -1) continue;
    vid best = -1;
    weight_t best_w = -1;
    for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
      const vid v = g.adjncy(e);
      if (match[static_cast<std::size_t>(v)] == -1 && g.adjwgt(e) > best_w) {
        best_w = g.adjwgt(e);
        best = v;
      }
    }
    if (best != -1) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // stays alone
    }
  }

  coarse_level lvl;
  lvl.cmap.assign(n, -1);
  vid next = 0;
  for (vid u = 0; u < g.num_vertices(); ++u) {
    if (lvl.cmap[static_cast<std::size_t>(u)] != -1) continue;
    const vid m = match[static_cast<std::size_t>(u)];
    lvl.cmap[static_cast<std::size_t>(u)] = next;
    lvl.cmap[static_cast<std::size_t>(m)] = next;  // m == u when unmatched
    ++next;
  }

  std::vector<weight_t> cvwgt(static_cast<std::size_t>(next), 0);
  for (vid u = 0; u < g.num_vertices(); ++u)
    cvwgt[static_cast<std::size_t>(lvl.cmap[static_cast<std::size_t>(u)])] += g.vwgt(u);

  // Merge edges between coarse vertices (each undirected fine edge visited
  // once via u < v).
  std::vector<std::map<vid, weight_t>> merged(static_cast<std::size_t>(next));
  for (vid u = 0; u < g.num_vertices(); ++u) {
    const vid cu = lvl.cmap[static_cast<std::size_t>(u)];
    for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
      const vid v = g.adjncy(e);
      if (u >= v) continue;
      const vid cv = lvl.cmap[static_cast<std::size_t>(v)];
      if (cu == cv) continue;  // edge collapsed inside a coarse vertex
      const vid lo = std::min(cu, cv), hi = std::max(cu, cv);
      merged[static_cast<std::size_t>(lo)][hi] += g.adjwgt(e);
    }
  }
  std::vector<std::vector<std::pair<vid, weight_t>>> adj(static_cast<std::size_t>(next));
  for (vid cu = 0; cu < next; ++cu)
    for (const auto& [cv, w] : merged[static_cast<std::size_t>(cu)])
      adj[static_cast<std::size_t>(cu)].emplace_back(cv, w);

  lvl.g = graph::from_adjacency(adj, std::move(cvwgt));
  return lvl;
}

/// Pseudo-peripheral vertex: farthest vertex from a double-BFS start.
vid peripheral_vertex(const graph& g, vid start) {
  vid far = start;
  for (int round = 0; round < 2; ++round) {
    std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
    std::queue<vid> bfs;
    bfs.push(far);
    dist[static_cast<std::size_t>(far)] = 0;
    vid last = far;
    while (!bfs.empty()) {
      const vid u = bfs.front();
      bfs.pop();
      last = u;
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
        const vid v = g.adjncy(e);
        if (dist[static_cast<std::size_t>(v)] == -1) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          bfs.push(v);
        }
      }
    }
    far = last;
  }
  return far;
}

/// Greedy graph growing: grow part p from a seed, absorbing the frontier
/// vertex most connected to the part, until the weight target is reached.
partition_vector greedy_grow(const graph& g, int k, support::rng& gen) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  partition_vector part(n, -1);
  if (k == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }
  const double target = g.total_vwgt() / static_cast<double>(k);

  std::size_t assigned = 0;
  for (int p = 0; p < k - 1 && assigned < n; ++p) {
    // Seed: an unassigned vertex adjacent to the assigned region if any,
    // otherwise a pseudo-peripheral vertex of the remaining graph.
    vid seed = -1;
    if (p == 0) {
      vid anyv = static_cast<vid>(gen.uniform_u64(0, n - 1));
      seed = peripheral_vertex(g, anyv);
    } else {
      weight_t best_conn = -1;
      for (vid u = 0; u < g.num_vertices(); ++u) {
        if (part[static_cast<std::size_t>(u)] != -1) continue;
        weight_t conn = 0;
        for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e)
          if (part[static_cast<std::size_t>(g.adjncy(e))] != -1) conn += g.adjwgt(e);
        if (conn > best_conn) {
          best_conn = conn;
          seed = u;
        }
      }
    }
    NLH_ASSERT(seed != -1);

    // Grow with a max-connection priority queue (lazy deletion).
    std::vector<weight_t> conn(n, 0);
    using qe = std::pair<weight_t, vid>;
    std::priority_queue<qe> frontier;
    double grown = 0.0;
    auto absorb = [&](vid u) {
      part[static_cast<std::size_t>(u)] = p;
      ++assigned;
      grown += g.vwgt(u);
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
        const vid v = g.adjncy(e);
        if (part[static_cast<std::size_t>(v)] == -1) {
          conn[static_cast<std::size_t>(v)] += g.adjwgt(e);
          frontier.push({conn[static_cast<std::size_t>(v)], v});
        }
      }
    };
    absorb(seed);
    // Leave at least one vertex for every part still to be grown.
    const std::size_t reserve_for_rest = static_cast<std::size_t>(k - 1 - p);
    while (grown < target && assigned < n - reserve_for_rest) {
      vid next = -1;
      while (!frontier.empty()) {
        const auto [w, v] = frontier.top();
        frontier.pop();
        if (part[static_cast<std::size_t>(v)] == -1 && w == conn[static_cast<std::size_t>(v)]) {
          next = v;
          break;
        }
      }
      if (next == -1) {
        // Disconnected remainder: restart from a fresh unassigned seed.
        for (vid u = 0; u < g.num_vertices(); ++u)
          if (part[static_cast<std::size_t>(u)] == -1) {
            next = u;
            break;
          }
        if (next == -1) break;
      }
      absorb(next);
    }
  }
  // Remainder goes to the last part.
  for (auto& pv : part)
    if (pv == -1) pv = k - 1;
  return part;
}

}  // namespace

int refine_partition(const graph& g, partition_vector& part, int k,
                     double balance_tolerance, int max_passes) {
  validate_partition(g, part, k);
  auto weights = part_weights(g, part, k);
  const double ideal = g.total_vwgt() / static_cast<double>(k);
  const double max_allowed = ideal * balance_tolerance;

  int total_moves = 0;
  std::vector<weight_t> conn(static_cast<std::size_t>(k));
  for (int pass = 0; pass < max_passes; ++pass) {
    int moves = 0;
    for (vid u = 0; u < g.num_vertices(); ++u) {
      const int from = part[static_cast<std::size_t>(u)];
      if (g.degree(u) == 0) continue;
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
        const int pv = part[static_cast<std::size_t>(g.adjncy(e))];
        conn[static_cast<std::size_t>(pv)] += g.adjwgt(e);
        if (pv != from) boundary = true;
      }
      if (!boundary) continue;

      int best_to = -1;
      weight_t best_gain = 0;
      for (int to = 0; to < k; ++to) {
        if (to == from || conn[static_cast<std::size_t>(to)] == 0) continue;
        if (weights[static_cast<std::size_t>(to)] + g.vwgt(u) > max_allowed) continue;
        const weight_t gain =
            conn[static_cast<std::size_t>(to)] - conn[static_cast<std::size_t>(from)];
        const bool better_cut = gain > best_gain;
        const bool same_cut_better_balance =
            gain == best_gain && best_to == -1 && gain == 0 &&
            weights[static_cast<std::size_t>(from)] >
                weights[static_cast<std::size_t>(to)] + g.vwgt(u);
        if (better_cut || same_cut_better_balance) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to != -1 &&
          weights[static_cast<std::size_t>(from)] - g.vwgt(u) > 0) {  // never empty a part
        part[static_cast<std::size_t>(u)] = best_to;
        weights[static_cast<std::size_t>(from)] -= g.vwgt(u);
        weights[static_cast<std::size_t>(best_to)] += g.vwgt(u);
        ++moves;
      }
    }
    total_moves += moves;
    if (moves == 0) break;
  }
  return total_moves;
}

bool absorb_stray_components(const graph& g, partition_vector& part, int k) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  bool changed = false;

  for (int p = 0; p < k; ++p) {
    // Label components of part p.
    std::vector<int> comp(n, -1);
    int num_comp = 0;
    std::vector<weight_t> comp_weight;
    for (vid s = 0; s < g.num_vertices(); ++s) {
      if (part[static_cast<std::size_t>(s)] != p || comp[static_cast<std::size_t>(s)] != -1)
        continue;
      comp_weight.push_back(0);
      std::queue<vid> bfs;
      bfs.push(s);
      comp[static_cast<std::size_t>(s)] = num_comp;
      while (!bfs.empty()) {
        const vid u = bfs.front();
        bfs.pop();
        comp_weight[static_cast<std::size_t>(num_comp)] += g.vwgt(u);
        for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
          const vid v = g.adjncy(e);
          if (part[static_cast<std::size_t>(v)] == p && comp[static_cast<std::size_t>(v)] == -1) {
            comp[static_cast<std::size_t>(v)] = num_comp;
            bfs.push(v);
          }
        }
      }
      ++num_comp;
    }
    if (num_comp <= 1) continue;

    const int keep = static_cast<int>(
        std::max_element(comp_weight.begin(), comp_weight.end()) - comp_weight.begin());
    // Reassign every stray component vertex to its most-connected foreign part.
    for (vid u = 0; u < g.num_vertices(); ++u) {
      if (part[static_cast<std::size_t>(u)] != p) continue;
      if (comp[static_cast<std::size_t>(u)] == keep) continue;
      std::vector<weight_t> conn(static_cast<std::size_t>(k), 0);
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e)
        conn[static_cast<std::size_t>(part[static_cast<std::size_t>(g.adjncy(e))])] +=
            g.adjwgt(e);
      conn[static_cast<std::size_t>(p)] = 0;
      const int to = static_cast<int>(
          std::max_element(conn.begin(), conn.end()) - conn.begin());
      if (conn[static_cast<std::size_t>(to)] > 0) {
        part[static_cast<std::size_t>(u)] = to;
        changed = true;
      }
    }
  }
  return changed;
}

int rebalance_contiguous(const graph& g, partition_vector& part, int k,
                         double balance_tolerance, int max_moves) {
  validate_partition(g, part, k);
  const double ideal = g.total_vwgt() / static_cast<double>(k);
  const double max_allowed = ideal * balance_tolerance;
  auto weights = part_weights(g, part, k);

  auto stays_connected_without = [&](vid u) {
    const int p = part[static_cast<std::size_t>(u)];
    // BFS over part p excluding u; connected iff it reaches all of p \ {u}.
    vid start = -1;
    std::size_t count = 0;
    for (vid v = 0; v < g.num_vertices(); ++v)
      if (v != u && part[static_cast<std::size_t>(v)] == p) {
        if (start == -1) start = v;
        ++count;
      }
    if (count == 0) return false;  // would empty the part
    std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
    std::queue<vid> bfs;
    bfs.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    std::size_t reached = 1;
    while (!bfs.empty()) {
      const vid x = bfs.front();
      bfs.pop();
      for (auto e = g.xadj(x); e < g.xadj(x + 1); ++e) {
        const vid v = g.adjncy(e);
        if (v == u || part[static_cast<std::size_t>(v)] != p ||
            seen[static_cast<std::size_t>(v)])
          continue;
        seen[static_cast<std::size_t>(v)] = 1;
        ++reached;
        bfs.push(v);
      }
    }
    return reached == count;
  };

  int moves = 0;
  while (moves < max_moves) {
    const int heavy = static_cast<int>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
    if (weights[static_cast<std::size_t>(heavy)] <= max_allowed) break;

    // Best move: boundary vertex of the heavy part into its lightest
    // adjacent part, preferring high connection to the destination.
    vid best_u = -1;
    int best_to = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (vid u = 0; u < g.num_vertices(); ++u) {
      if (part[static_cast<std::size_t>(u)] != heavy) continue;
      std::vector<weight_t> conn(static_cast<std::size_t>(k), 0);
      bool boundary = false;
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
        const int pv = part[static_cast<std::size_t>(g.adjncy(e))];
        conn[static_cast<std::size_t>(pv)] += g.adjwgt(e);
        if (pv != heavy) boundary = true;
      }
      if (!boundary) continue;
      for (int to = 0; to < k; ++to) {
        if (to == heavy || conn[static_cast<std::size_t>(to)] == 0) continue;
        if (weights[static_cast<std::size_t>(to)] + g.vwgt(u) >
            weights[static_cast<std::size_t>(heavy)])
          continue;  // move must reduce the max
        // Prefer lighter destinations, then higher connection (less cut harm).
        const double score = -weights[static_cast<std::size_t>(to)] * 1e6 +
                             static_cast<double>(conn[static_cast<std::size_t>(to)]);
        if (score > best_score && stays_connected_without(u)) {
          best_score = score;
          best_u = u;
          best_to = to;
        }
      }
    }
    if (best_u == -1) break;  // no contiguity-safe move exists
    weights[static_cast<std::size_t>(heavy)] -= g.vwgt(best_u);
    weights[static_cast<std::size_t>(best_to)] += g.vwgt(best_u);
    part[static_cast<std::size_t>(best_u)] = best_to;
    ++moves;
  }
  return moves;
}

partition_vector multilevel_partition(const graph& g, const partition_options& opt) {
  NLH_ASSERT(opt.k >= 1);
  NLH_ASSERT_MSG(opt.k <= g.num_vertices(), "multilevel: more parts than vertices");
  support::rng gen(opt.seed);

  if (opt.k == 1) return partition_vector(static_cast<std::size_t>(g.num_vertices()), 0);

  // Phase 1: coarsen.
  const vid stop_at = opt.coarsen_until > 0
                          ? opt.coarsen_until
                          : std::max<vid>(static_cast<vid>(8 * opt.k), 32);
  std::vector<coarse_level> levels;
  const graph* current = &g;
  while (current->num_vertices() > stop_at) {
    coarse_level lvl = coarsen_once(*current, gen);
    // Matching found nothing to merge: stop, or we loop forever.
    if (lvl.g.num_vertices() >= current->num_vertices()) break;
    levels.push_back(std::move(lvl));
    current = &levels.back().g;
  }

  // Phase 2: initial partition of the coarsest graph.
  partition_vector part = greedy_grow(*current, opt.k, gen);
  refine_partition(*current, part, opt.k, opt.balance_tolerance, opt.refinement_passes);

  // Phase 3: uncoarsen + refine at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const graph& finer = (std::next(it) != levels.rend()) ? std::next(it)->g : g;
    partition_vector fine_part(static_cast<std::size_t>(finer.num_vertices()));
    for (vid u = 0; u < finer.num_vertices(); ++u)
      fine_part[static_cast<std::size_t>(u)] =
          part[static_cast<std::size_t>(it->cmap[static_cast<std::size_t>(u)])];
    part = std::move(fine_part);
    refine_partition(finer, part, opt.k, opt.balance_tolerance, opt.refinement_passes);
  }

  // Contiguity cleanup on the finest graph. First absorb stray components
  // to a fixed point (interior vertices of an island only become movable
  // after its boundary peels off, so this may take several rounds; each
  // round strictly shrinks some island). Only then repair balance with
  // contiguity-preserving moves — interleaving the two oscillates.
  while (absorb_stray_components(g, part, opt.k)) {
  }
  rebalance_contiguous(g, part, opt.k, opt.balance_tolerance,
                       static_cast<int>(g.num_vertices()));
  validate_partition(g, part, opt.k);
  return part;
}

graph induced_subgraph(const graph& g, const std::vector<vid>& vertices) {
  std::vector<vid> to_local(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const vid u = vertices[i];
    NLH_ASSERT(u >= 0 && u < g.num_vertices());
    NLH_ASSERT_MSG(to_local[static_cast<std::size_t>(u)] == -1,
                   "induced_subgraph: duplicate vertex");
    to_local[static_cast<std::size_t>(u)] = static_cast<vid>(i);
  }
  std::vector<std::vector<std::pair<vid, weight_t>>> adj(vertices.size());
  std::vector<weight_t> vwgt(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const vid u = vertices[i];
    vwgt[i] = g.vwgt(u);
    for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
      const vid v = g.adjncy(e);
      if (u >= v) continue;  // each undirected edge once
      const vid lv = to_local[static_cast<std::size_t>(v)];
      if (lv == -1) continue;
      adj[i].emplace_back(lv, g.adjwgt(e));
    }
  }
  return graph::from_adjacency(adj, std::move(vwgt));
}

namespace {

void bisect_recursive(const graph& g, const std::vector<vid>& vertices, int k,
                      int part_offset, const partition_options& opt,
                      partition_vector& out) {
  if (k == 1) {
    for (vid u : vertices) out[static_cast<std::size_t>(u)] = part_offset;
    return;
  }
  const graph sub = induced_subgraph(g, vertices);
  partition_options two = opt;
  two.k = 2;
  // Vary the seed per level/branch so sibling bisections decorrelate.
  two.seed = opt.seed * 31u + static_cast<unsigned>(part_offset) * 7u +
             static_cast<unsigned>(k);
  const auto half = multilevel_partition(sub, two);
  std::vector<vid> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i)
    (half[i] == 0 ? left : right).push_back(vertices[i]);
  bisect_recursive(g, left, k / 2, part_offset, opt, out);
  bisect_recursive(g, right, k / 2, part_offset + k / 2, opt, out);
}

}  // namespace

partition_vector recursive_bisection_partition(const graph& g,
                                               const partition_options& opt) {
  NLH_ASSERT(opt.k >= 1);
  NLH_ASSERT_MSG((opt.k & (opt.k - 1)) == 0,
                 "recursive_bisection: k must be a power of two");
  NLH_ASSERT(opt.k <= g.num_vertices());
  partition_vector out(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  bisect_recursive(g, all, opt.k, 0, opt, out);
  validate_partition(g, out, opt.k);
  return out;
}

}  // namespace nlh::partition

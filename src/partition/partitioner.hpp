#pragma once
///
/// \file partitioner.hpp
/// \brief Partitioner interface plus naive baselines the paper's METIS
/// approach is compared against.
///

#include "partition/graph.hpp"

namespace nlh::partition {

struct partition_options {
  int k = 2;                     ///< number of parts
  double balance_tolerance = 1.10;  ///< max part weight / ideal allowed
  unsigned seed = 12345;         ///< RNG seed for deterministic runs
  int refinement_passes = 8;     ///< FM passes per level
  vid coarsen_until = 0;         ///< stop coarsening below this (0 = auto)
};

/// Contiguous strip partition over a row-major R x C grid dual graph: parts
/// are bands of consecutive rows. Mirrors naive 1-D decompositions.
partition_vector strip_partition(int rows, int cols, int k);

/// 2-D block partition: a kr x kc grid of rectangular blocks, kr*kc == k
/// (chooses the most square factorization of k).
partition_vector block_partition(int rows, int cols, int k);

/// Random assignment baseline (worst case for communication).
partition_vector random_partition(vid num_vertices, int k, unsigned seed);

/// Most-square factorization k = kr * kc with kr <= kc.
std::pair<int, int> square_factors(int k);

}  // namespace nlh::partition

#include "partition/mesh_dual.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace nlh::partition {

graph build_mesh_dual(const mesh_dual_options& opt) {
  NLH_ASSERT(opt.sd_rows >= 1 && opt.sd_cols >= 1);
  NLH_ASSERT(opt.sd_size >= 1 && opt.ghost_width >= 0);
  const auto n = static_cast<std::size_t>(opt.sd_rows) * static_cast<std::size_t>(opt.sd_cols);

  std::vector<weight_t> vwgt;
  if (!opt.sd_work.empty()) {
    NLH_ASSERT_MSG(opt.sd_work.size() == n, "mesh_dual: sd_work size mismatch");
    vwgt = opt.sd_work;
  } else {
    vwgt.assign(n, static_cast<weight_t>(opt.sd_size) * opt.sd_size);
  }

  const auto side_w =
      static_cast<weight_t>(opt.sd_size) * std::max(opt.ghost_width, 1);
  const auto corner_w =
      static_cast<weight_t>(std::max(opt.ghost_width, 1)) * std::max(opt.ghost_width, 1);

  std::vector<std::vector<std::pair<vid, weight_t>>> adj(n);
  for (int r = 0; r < opt.sd_rows; ++r) {
    for (int c = 0; c < opt.sd_cols; ++c) {
      const vid u = sd_index(r, c, opt.sd_cols);
      // List each undirected edge once: only to the right/down/diagonal
      // neighbors with larger index.
      if (c + 1 < opt.sd_cols)
        adj[static_cast<std::size_t>(u)].emplace_back(sd_index(r, c + 1, opt.sd_cols), side_w);
      if (r + 1 < opt.sd_rows)
        adj[static_cast<std::size_t>(u)].emplace_back(sd_index(r + 1, c, opt.sd_cols), side_w);
      if (opt.include_diagonals && opt.ghost_width > 0) {
        if (r + 1 < opt.sd_rows && c + 1 < opt.sd_cols)
          adj[static_cast<std::size_t>(u)].emplace_back(sd_index(r + 1, c + 1, opt.sd_cols),
                                                        corner_w);
        if (r + 1 < opt.sd_rows && c - 1 >= 0)
          adj[static_cast<std::size_t>(u)].emplace_back(sd_index(r + 1, c - 1, opt.sd_cols),
                                                        corner_w);
      }
    }
  }
  return graph::from_adjacency(adj, std::move(vwgt));
}

masked_dual build_mesh_dual_masked(const mesh_dual_options& opt,
                                   const std::vector<char>& active) {
  NLH_ASSERT(opt.sd_rows >= 1 && opt.sd_cols >= 1);
  const auto n = static_cast<std::size_t>(opt.sd_rows) * static_cast<std::size_t>(opt.sd_cols);
  NLH_ASSERT_MSG(active.size() == n, "masked_dual: mask size mismatch");

  masked_dual out;
  out.to_vertex.assign(n, -1);
  for (std::size_t sd = 0; sd < n; ++sd) {
    if (!active[sd]) continue;
    out.to_vertex[sd] = static_cast<vid>(out.to_sd.size());
    out.to_sd.push_back(static_cast<vid>(sd));
  }
  NLH_ASSERT_MSG(!out.to_sd.empty(), "masked_dual: no active SDs");

  // Build the full dual once, then project edges between active SDs.
  const graph full = build_mesh_dual(opt);
  std::vector<std::vector<std::pair<vid, weight_t>>> adj(out.to_sd.size());
  std::vector<weight_t> vwgt(out.to_sd.size());
  for (std::size_t v = 0; v < out.to_sd.size(); ++v) {
    const vid sd = out.to_sd[v];
    vwgt[v] = full.vwgt(sd);
    for (auto e = full.xadj(sd); e < full.xadj(sd + 1); ++e) {
      const vid nb = full.adjncy(e);
      if (sd >= nb) continue;  // list each undirected edge once
      const vid nbv = out.to_vertex[static_cast<std::size_t>(nb)];
      if (nbv == -1) continue;  // neighbor outside the material
      adj[v].emplace_back(nbv, full.adjwgt(e));
    }
  }
  out.g = graph::from_adjacency(adj, std::move(vwgt));
  return out;
}

}  // namespace nlh::partition

#include "partition/metrics.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace nlh::partition {

void validate_partition(const graph& g, const partition_vector& part, int k) {
  NLH_ASSERT_MSG(static_cast<vid>(part.size()) == g.num_vertices(),
                 "partition size != vertex count");
  for (int p : part) NLH_ASSERT_MSG(p >= 0 && p < k, "part id out of range");
}

weight_t edge_cut(const graph& g, const partition_vector& part) {
  weight_t cut = 0;
  for (vid u = 0; u < g.num_vertices(); ++u)
    for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
      const vid v = g.adjncy(e);
      if (u < v && part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)])
        cut += g.adjwgt(e);
    }
  return cut;
}

std::int64_t cut_edges(const graph& g, const partition_vector& part) {
  std::int64_t cut = 0;
  for (vid u = 0; u < g.num_vertices(); ++u)
    for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
      const vid v = g.adjncy(e);
      if (u < v && part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)])
        ++cut;
    }
  return cut;
}

std::vector<weight_t> part_weights(const graph& g, const partition_vector& part, int k) {
  std::vector<weight_t> w(static_cast<std::size_t>(k), 0);
  for (vid u = 0; u < g.num_vertices(); ++u)
    w[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] += g.vwgt(u);
  return w;
}

double balance_factor(const graph& g, const partition_vector& part, int k) {
  const auto w = part_weights(g, part, k);
  const double ideal = g.total_vwgt() / static_cast<double>(k);
  if (ideal == 0.0) return 1.0;
  return *std::max_element(w.begin(), w.end()) / ideal;
}

int part_components(const graph& g, const partition_vector& part, int p) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<char> seen(n, 0);
  int components = 0;
  for (vid s = 0; s < g.num_vertices(); ++s) {
    if (part[static_cast<std::size_t>(s)] != p || seen[static_cast<std::size_t>(s)]) continue;
    ++components;
    std::queue<vid> bfs;
    bfs.push(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!bfs.empty()) {
      const vid u = bfs.front();
      bfs.pop();
      for (auto e = g.xadj(u); e < g.xadj(u + 1); ++e) {
        const vid v = g.adjncy(e);
        if (part[static_cast<std::size_t>(v)] == p && !seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          bfs.push(v);
        }
      }
    }
  }
  return components;
}

bool parts_contiguous(const graph& g, const partition_vector& part, int k) {
  for (int p = 0; p < k; ++p)
    if (part_components(g, part, p) > 1) return false;
  return true;
}

}  // namespace nlh::partition

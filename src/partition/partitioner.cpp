#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace nlh::partition {

std::pair<int, int> square_factors(int k) {
  NLH_ASSERT(k >= 1);
  int best = 1;
  for (int f = 1; f * f <= k; ++f)
    if (k % f == 0) best = f;
  return {best, k / best};
}

partition_vector strip_partition(int rows, int cols, int k) {
  NLH_ASSERT(rows >= 1 && cols >= 1 && k >= 1);
  partition_vector part(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    // Even split of rows over k strips; strip p gets rows [p*rows/k, (p+1)*rows/k).
    const int p = std::min(k - 1, r * k / rows);
    for (int c = 0; c < cols; ++c) part[static_cast<std::size_t>(r) * cols + c] = p;
  }
  return part;
}

partition_vector block_partition(int rows, int cols, int k) {
  NLH_ASSERT(rows >= 1 && cols >= 1 && k >= 1);
  const auto [kr, kc] = square_factors(k);
  partition_vector part(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    const int br = std::min(kr - 1, r * kr / rows);
    for (int c = 0; c < cols; ++c) {
      const int bc = std::min(kc - 1, c * kc / cols);
      part[static_cast<std::size_t>(r) * cols + c] = br * kc + bc;
    }
  }
  return part;
}

partition_vector random_partition(vid num_vertices, int k, unsigned seed) {
  NLH_ASSERT(num_vertices >= 0 && k >= 1);
  support::rng gen(seed);
  partition_vector part(static_cast<std::size_t>(num_vertices));
  for (auto& p : part) p = gen.uniform_int(0, k - 1);
  return part;
}

}  // namespace nlh::partition

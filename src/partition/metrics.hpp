#pragma once
///
/// \file metrics.hpp
/// \brief Partition quality metrics: edge cut, balance, contiguity.
///

#include "partition/graph.hpp"

namespace nlh::partition {

/// Sum of weights of edges crossing part boundaries (each undirected edge
/// counted once).
weight_t edge_cut(const graph& g, const partition_vector& part);

/// Number of cut edges (unweighted).
std::int64_t cut_edges(const graph& g, const partition_vector& part);

/// Per-part total vertex weight.
std::vector<weight_t> part_weights(const graph& g, const partition_vector& part, int k);

/// max part weight / ideal part weight; 1.0 = perfectly balanced.
double balance_factor(const graph& g, const partition_vector& part, int k);

/// True when every non-empty part induces a connected subgraph. Contiguity
/// is the property METIS partitions give the paper's solver and the load
/// balancer works to preserve.
bool parts_contiguous(const graph& g, const partition_vector& part, int k);

/// Number of connected components inside part p (0 if the part is empty).
int part_components(const graph& g, const partition_vector& part, int p);

/// Validation: every entry in [0, k), sizes match. Aborts on violation.
void validate_partition(const graph& g, const partition_vector& part, int k);

}  // namespace nlh::partition

#pragma once
///
/// \file multilevel.hpp
/// \brief Multilevel k-way graph partitioner — the METIS substitute.
///
/// Three classical phases (Karypis & Kumar):
///  1. Coarsening via heavy-edge matching until the graph is small,
///  2. Initial partitioning of the coarsest graph by greedy graph growing,
///  3. Uncoarsening with greedy boundary (KL/FM-style) refinement per level.
///
/// A final contiguity pass reassigns stray components and repairs balance
/// with connectivity-preserving moves, so grid dual graphs get the
/// contiguous parts the paper's solver and load balancer assume.
///

#include "partition/partitioner.hpp"

namespace nlh::partition {

/// Partition `g` into opt.k balanced parts minimizing weighted edge cut.
/// Deterministic for a fixed seed. Aborts (assert) on k < 1 or k > V.
partition_vector multilevel_partition(const graph& g, const partition_options& opt);

/// Greedy boundary refinement pass used during uncoarsening; exposed for
/// testing and for the balancer's repair step. Returns number of moves.
int refine_partition(const graph& g, partition_vector& part, int k,
                     double balance_tolerance, int max_passes);

/// Reassign all but the heaviest connected component of every part to the
/// best adjacent part; returns true if anything changed.
bool absorb_stray_components(const graph& g, partition_vector& part, int k);

/// Balance repair restricted to moves that keep the source part connected.
/// Returns number of moves performed.
int rebalance_contiguous(const graph& g, partition_vector& part, int k,
                         double balance_tolerance, int max_moves);

/// Induced subgraph over `vertices` (ids into g). Edge and vertex weights
/// carry over; `vertices[i]` becomes vertex i of the result.
graph induced_subgraph(const graph& g, const std::vector<vid>& vertices);

/// Recursive-bisection k-way partitioning (METIS_PartGraphRecursive's
/// strategy): repeatedly 2-way multilevel-partition the subgraphs. Requires
/// k to be a power of two. Often slightly better cuts than direct k-way on
/// small k, at higher cost.
partition_vector recursive_bisection_partition(const graph& g,
                                               const partition_options& opt);

}  // namespace nlh::partition

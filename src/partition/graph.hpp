#pragma once
///
/// \file graph.hpp
/// \brief Compressed-sparse-row undirected graph with vertex and edge
/// weights — the input format of the partitioner (METIS-compatible shape).
///

#include <cstdint>
#include <vector>

namespace nlh::partition {

using vid = std::int32_t;   ///< vertex id
using weight_t = double;    ///< vertex / edge weight

/// Immutable undirected graph in CSR form. Every undirected edge {u,v} is
/// stored twice (u->v and v->u) with equal weight, as METIS expects.
class graph {
 public:
  graph() = default;

  /// Build from per-vertex adjacency (u -> list of (v, edge weight)). The
  /// builder symmetrizes and validates: self-loops are rejected, duplicate
  /// edges merged by summing weights.
  static graph from_adjacency(
      const std::vector<std::vector<std::pair<vid, weight_t>>>& adj,
      std::vector<weight_t> vertex_weights = {});

  vid num_vertices() const { return static_cast<vid>(xadj_.empty() ? 0 : xadj_.size() - 1); }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adjncy_.size()) / 2; }

  /// Neighbor range of u: indices [xadj(u), xadj(u+1)) into adjncy/adjwgt.
  std::int64_t xadj(vid u) const { return xadj_[static_cast<std::size_t>(u)]; }
  vid adjncy(std::int64_t e) const { return adjncy_[static_cast<std::size_t>(e)]; }
  weight_t adjwgt(std::int64_t e) const { return adjwgt_[static_cast<std::size_t>(e)]; }

  weight_t vwgt(vid u) const { return vwgt_[static_cast<std::size_t>(u)]; }
  weight_t total_vwgt() const { return total_vwgt_; }

  vid degree(vid u) const {
    return static_cast<vid>(xadj_[static_cast<std::size_t>(u) + 1] -
                            xadj_[static_cast<std::size_t>(u)]);
  }

  /// Sum of edge weights incident to u.
  weight_t incident_weight(vid u) const;

  /// True if an edge {u, v} exists (linear scan of u's neighbors).
  bool has_edge(vid u, vid v) const;

 private:
  std::vector<std::int64_t> xadj_;  ///< size V+1
  std::vector<vid> adjncy_;         ///< size 2E
  std::vector<weight_t> adjwgt_;    ///< size 2E
  std::vector<weight_t> vwgt_;      ///< size V
  weight_t total_vwgt_ = 0;
};

/// Partition vector: part[v] in [0, k). Helper alias used across modules.
using partition_vector = std::vector<int>;

}  // namespace nlh::partition

#pragma once
///
/// \file mesh_dual.hpp
/// \brief Dual graph of a rectangular sub-domain (SD) grid — the
/// METIS_PartMeshDual equivalent for the paper's square SD tiling.
///
/// Vertices are SDs (row-major over an R x C SD grid); edges connect SDs
/// whose ghost regions overlap given the nonlocal horizon. Edge weights are
/// proportional to the number of DPs exchanged across that boundary, so
/// minimizing weighted edge cut minimizes ghost traffic.
///

#include "partition/graph.hpp"

namespace nlh::partition {

struct mesh_dual_options {
  int sd_rows = 1;          ///< SDs along Y
  int sd_cols = 1;          ///< SDs along X
  int sd_size = 1;          ///< DPs per SD side (square SDs)
  int ghost_width = 1;      ///< DP layers exchanged (= ceil(epsilon/h))
  bool include_diagonals = true;  ///< corner exchanges (epsilon ball clips corners)
  std::vector<weight_t> sd_work;  ///< optional per-SD vertex weight (default: DP count)
};

/// Build the SD dual graph. Side edges weigh sd_size * ghost_width DPs;
/// diagonal edges weigh ghost_width^2 DPs (the corner block).
graph build_mesh_dual(const mesh_dual_options& opt);

/// Dual graph of a masked (non-rectangular) SD domain. Vertices are only
/// the active SDs; `to_sd[v]` maps a graph vertex back to its row-major SD
/// id and `to_vertex[sd]` the inverse (-1 for inactive SDs).
struct masked_dual {
  graph g;
  std::vector<vid> to_sd;
  std::vector<vid> to_vertex;
};

/// \param active one flag per row-major SD; size must be sd_rows*sd_cols.
masked_dual build_mesh_dual_masked(const mesh_dual_options& opt,
                                   const std::vector<char>& active);

/// Row-major SD index helpers.
inline vid sd_index(int row, int col, int sd_cols) { return row * sd_cols + col; }
inline int sd_row(vid v, int sd_cols) { return v / sd_cols; }
inline int sd_col(vid v, int sd_cols) { return v % sd_cols; }

}  // namespace nlh::partition

#pragma once
///
/// \file comm_world.hpp
/// \brief K in-process localities wired by mailboxes: the distributed
/// substrate standing in for MPI + multiple physical nodes.
///
/// Each locality gets its own mailbox and (externally) its own thread pool.
/// Sends are byte-copies into the destination mailbox — the data really does
/// leave the sender's data structures as serialized bytes, so the ghost
/// exchange exercises the same pack/transfer/unpack path a cluster run
/// would. Per-pair traffic counters feed the communication analysis bench.
///

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/mailbox.hpp"

namespace nlh::net {

class comm_world {
 public:
  explicit comm_world(int num_localities);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Transfer `payload` from locality `src` to locality `dst` under `tag`.
  /// Delivery is immediate unless a delay model is installed (the virtual
  /// performance model lives in nlh::sim; the delay model below injects
  /// *real* wall-clock latency for overlap benches and tests).
  void send(int src, int dst, std::uint64_t tag, byte_buffer payload);

  /// Per-message delivery delay in seconds; <= 0 delivers inline.
  using delay_model = std::function<double(int src, int dst, std::uint64_t tag)>;

  /// Install a wall-clock delivery-delay model (the latency-injection seam
  /// the overlap bench and the injected-latency tests use): messages whose
  /// modeled delay is positive are handed to a background timer thread and
  /// delivered that many seconds after send() instead of inline. Traffic
  /// counters always update at send time; delivery order between messages
  /// with distinct deadlines follows the deadlines, ties keep send order.
  /// Pass nullptr to restore inline delivery — messages already queued
  /// still deliver at their original deadline.
  void set_delay_model(delay_model model);

  /// Messages currently parked in the timer queue (diagnostics).
  std::size_t delayed_messages() const;

  /// Futurized receive on locality `dst` for a message from `src` with `tag`.
  amt::future<byte_buffer> recv(int dst, int src, std::uint64_t tag);

  mailbox& box(int locality);

  /// Total bytes sent from src to dst since construction (or reset).
  std::uint64_t bytes_sent(int src, int dst) const;
  std::uint64_t total_bytes() const;
  std::uint64_t messages_sent(int src, int dst) const;
  /// All bytes/messages sent *from* one locality (row sums).
  std::uint64_t bytes_from(int src) const;
  std::uint64_t messages_from(int src) const;
  void reset_traffic();
  /// Reset only the counters of messages originating at `src`.
  void reset_traffic_from(int src);

  /// Register per-locality networking counters in the global registry (the
  /// paper's future-work item: "networking counters"). Paths:
  ///   <prefix>{locality#i}/bytes-sent
  ///   <prefix>{locality#i}/messages-sent
  /// Counters are unregistered on destruction. Safe to call once.
  void register_counters(const std::string& prefix = "/network");

  ~comm_world();

 private:
  std::vector<std::string> counter_paths_;
  std::size_t pair_index(int src, int dst) const;

  std::vector<std::unique_ptr<mailbox>> boxes_;
  std::vector<std::atomic<std::uint64_t>> bytes_;
  std::vector<std::atomic<std::uint64_t>> msgs_;

  /// One message parked on the timer thread until its deadline.
  struct delayed_msg {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;  ///< send order; breaks deadline ties deterministically
    int dst;
    int src;
    std::uint64_t tag;
    byte_buffer payload;
  };
  void timer_loop();

  mutable std::mutex delay_m_;
  std::condition_variable delay_cv_;
  /// Fast-path gate: send() only touches delay_m_ when a model is (or has
  /// been) installed, so the normal inline-delivery path stays lock-free up
  /// to the per-mailbox lock.
  std::atomic<bool> delay_enabled_{false};
  delay_model delay_model_;          ///< guarded by delay_m_
  std::vector<delayed_msg> delayed_; ///< min-heap by (due, seq); guarded by delay_m_
  std::uint64_t delay_seq_ = 0;
  bool timer_stop_ = false;
  std::thread timer_;                ///< started lazily by set_delay_model
};

}  // namespace nlh::net

#pragma once
///
/// \file comm_world.hpp
/// \brief K in-process localities wired by mailboxes: the distributed
/// substrate standing in for MPI + multiple physical nodes.
///
/// Each locality gets its own mailbox and (externally) its own thread pool.
/// Sends are byte-copies into the destination mailbox — the data really does
/// leave the sender's data structures as serialized bytes, so the ghost
/// exchange exercises the same pack/transfer/unpack path a cluster run
/// would. Per-pair traffic counters feed the communication analysis bench.
///

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/mailbox.hpp"

namespace nlh::net {

class comm_world {
 public:
  explicit comm_world(int num_localities);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Transfer `payload` from locality `src` to locality `dst` under `tag`.
  /// Delivery is immediate (the performance model lives in nlh::sim).
  void send(int src, int dst, std::uint64_t tag, byte_buffer payload);

  /// Futurized receive on locality `dst` for a message from `src` with `tag`.
  amt::future<byte_buffer> recv(int dst, int src, std::uint64_t tag);

  mailbox& box(int locality);

  /// Total bytes sent from src to dst since construction (or reset).
  std::uint64_t bytes_sent(int src, int dst) const;
  std::uint64_t total_bytes() const;
  std::uint64_t messages_sent(int src, int dst) const;
  /// All bytes/messages sent *from* one locality (row sums).
  std::uint64_t bytes_from(int src) const;
  std::uint64_t messages_from(int src) const;
  void reset_traffic();
  /// Reset only the counters of messages originating at `src`.
  void reset_traffic_from(int src);

  /// Register per-locality networking counters in the global registry (the
  /// paper's future-work item: "networking counters"). Paths:
  ///   <prefix>{locality#i}/bytes-sent
  ///   <prefix>{locality#i}/messages-sent
  /// Counters are unregistered on destruction. Safe to call once.
  void register_counters(const std::string& prefix = "/network");

  ~comm_world();

 private:
  std::vector<std::string> counter_paths_;
  std::size_t pair_index(int src, int dst) const;

  std::vector<std::unique_ptr<mailbox>> boxes_;
  std::vector<std::atomic<std::uint64_t>> bytes_;
  std::vector<std::atomic<std::uint64_t>> msgs_;
};

}  // namespace nlh::net

#include "net/mailbox.hpp"

namespace nlh::net {

void mailbox::deliver(int src, std::uint64_t tag, byte_buffer payload) {
  amt::promise<byte_buffer> to_fulfill;
  bool matched = false;
  {
    std::lock_guard lk(m_);
    auto& waiters = waiting_[{src, tag}];
    if (!waiters.empty()) {
      to_fulfill = std::move(waiters.front());
      waiters.pop_front();
      matched = true;
    } else {
      arrived_[{src, tag}].push_back(std::move(payload));
    }
  }
  // Fulfill outside the lock: the promise may run continuations inline that
  // re-enter the mailbox.
  if (matched) to_fulfill.set_value(std::move(payload));
}

amt::future<byte_buffer> mailbox::recv(int src, std::uint64_t tag) {
  byte_buffer ready;
  bool have = false;
  amt::promise<byte_buffer> p;
  auto fut = p.get_future();
  {
    std::lock_guard lk(m_);
    auto it = arrived_.find({src, tag});
    if (it != arrived_.end() && !it->second.empty()) {
      ready = std::move(it->second.front());
      it->second.pop_front();
      have = true;
    } else {
      waiting_[{src, tag}].push_back(std::move(p));
    }
  }
  if (have) p.set_value(std::move(ready));
  return fut;
}

std::size_t mailbox::pending_messages() const {
  std::lock_guard lk(m_);
  std::size_t n = 0;
  for (const auto& [k, q] : arrived_) n += q.size();
  return n;
}

std::size_t mailbox::pending_receives() const {
  std::lock_guard lk(m_);
  std::size_t n = 0;
  for (const auto& [k, q] : waiting_) n += q.size();
  return n;
}

}  // namespace nlh::net

#pragma once
///
/// \file serializer.hpp
/// \brief Byte-level archive for message payloads.
///
/// Ghost-zone exchanges between localities travel as flat byte buffers, the
/// way they would over MPI; the archive provides portable (little-endian
/// in-process) encode/decode of PODs, strings and vectors with a read cursor
/// that asserts on under/overrun.
///

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace nlh::net {

using byte_buffer = std::vector<std::byte>;

/// Append-only encoder.
class archive_writer {
 public:
  archive_writer() = default;

  /// Start from a recycled buffer: the contents are discarded but the
  /// capacity is kept, so writers fed from a buffer pool (the ghost
  /// exchange) stop hitting the allocator once the pool is warm.
  explicit archive_writer(byte_buffer reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  template <class T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "write: non-POD needs an overload");
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void write(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto old = buf_.size();
    buf_.resize(old + s.size());
    std::memcpy(buf_.data() + old, s.data(), s.size());
  }

  /// Append `n` raw bytes with no length prefix — the escape hatch for
  /// self-delimiting payloads (the ckpt codecs) that manage their own
  /// framing.
  void write_raw(const void* p, std::size_t n) {
    const auto old = buf_.size();
    buf_.resize(old + n);
    if (n) std::memcpy(buf_.data() + old, p, n);
  }

  /// Append a single byte (the varint hot path of the ckpt codecs).
  void write_byte(std::uint8_t b) { buf_.push_back(static_cast<std::byte>(b)); }

  template <class T>
  void write(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(static_cast<std::uint64_t>(v.size()));
    const auto old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
  }

  byte_buffer take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  byte_buffer buf_;
};

/// Cursor-based decoder over a byte buffer.
class archive_reader {
 public:
  explicit archive_reader(const byte_buffer& buf) : buf_(buf) {}
  /// Deleted: the reader stores a reference; binding it to a temporary
  /// buffer would dangle after the full expression.
  explicit archive_reader(byte_buffer&&) = delete;

  template <class T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    NLH_ASSERT_MSG(pos_ + sizeof(T) <= buf_.size(), "archive_reader: underrun");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string read_string() {
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    NLH_ASSERT_MSG(n <= remaining(), "archive_reader: underrun");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Read `n` raw bytes written by write_raw.
  void read_raw(void* p, std::size_t n) {
    NLH_ASSERT_MSG(n <= remaining(), "archive_reader: underrun");
    if (n) std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::uint8_t read_byte() {
    NLH_ASSERT_MSG(pos_ < buf_.size(), "archive_reader: underrun");
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  template <class T>
  std::vector<T> read_vector() {
    std::vector<T> v;
    read_vector_into(v);
    return v;
  }

  /// Decode into a caller-owned scratch vector, reusing its capacity — the
  /// pooled receive path of the ghost exchange (no allocation once warm).
  template <class T>
  void read_vector_into(std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    // Divide instead of multiplying: a corrupted/hostile length near 2^64
    // would wrap `n * sizeof(T)` and sail past an additive bounds check.
    NLH_ASSERT_MSG(n <= remaining() / sizeof(T), "archive_reader: underrun");
    out.resize(n);
    if (n) std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const byte_buffer& buf_;
  std::size_t pos_ = 0;
};

}  // namespace nlh::net

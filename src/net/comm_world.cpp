#include "net/comm_world.hpp"

#include <algorithm>

#include "amt/counters.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"

namespace nlh::net {

namespace {

/// Min-heap order on (deadline, send sequence): std::push_heap keeps the
/// *greatest* element on top, so the "later" message compares smaller.
struct delayed_later {
  template <class M>
  bool operator()(const M& a, const M& b) const {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

}  // namespace

comm_world::comm_world(int num_localities)
    : bytes_(static_cast<std::size_t>(num_localities) * num_localities),
      msgs_(static_cast<std::size_t>(num_localities) * num_localities) {
  NLH_ASSERT(num_localities >= 1);
  boxes_.reserve(static_cast<std::size_t>(num_localities));
  for (int i = 0; i < num_localities; ++i) boxes_.push_back(std::make_unique<mailbox>());
  for (auto& b : bytes_) b.store(0);
  for (auto& m : msgs_) m.store(0);
}

std::size_t comm_world::pair_index(int src, int dst) const {
  NLH_ASSERT(src >= 0 && src < size() && dst >= 0 && dst < size());
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(size()) +
         static_cast<std::size_t>(dst);
}

void comm_world::send(int src, int dst, std::uint64_t tag, byte_buffer payload) {
  const auto idx = pair_index(src, dst);
  bytes_[idx].fetch_add(payload.size(), std::memory_order_relaxed);
  msgs_[idx].fetch_add(1, std::memory_order_relaxed);
  NLH_TRACE_INSTANT("net/send", payload.size());
  if (delay_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(delay_m_);
    if (delay_model_) {
      const double d = delay_model_(src, dst, tag);
      if (d > 0.0) {
        delayed_msg m;
        m.due = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(d));
        m.seq = delay_seq_++;
        m.dst = dst;
        m.src = src;
        m.tag = tag;
        m.payload = std::move(payload);
        delayed_.push_back(std::move(m));
        std::push_heap(delayed_.begin(), delayed_.end(), delayed_later{});
        delay_cv_.notify_one();
        return;
      }
    }
  }
  NLH_TRACE_INSTANT("net/deliver", payload.size());
  boxes_[static_cast<std::size_t>(dst)]->deliver(src, tag, std::move(payload));
}

void comm_world::set_delay_model(delay_model model) {
  std::lock_guard<std::mutex> lk(delay_m_);
  delay_model_ = std::move(model);
  if (delay_model_ && !timer_.joinable())
    timer_ = std::thread([this] { timer_loop(); });
  // Stays true once a model was ever installed (clearing mid-flight must
  // keep send() checking delay_model_ under the lock).
  if (delay_model_) delay_enabled_.store(true, std::memory_order_release);
}

std::size_t comm_world::delayed_messages() const {
  std::lock_guard<std::mutex> lk(delay_m_);
  return delayed_.size();
}

void comm_world::timer_loop() {
  std::unique_lock<std::mutex> lk(delay_m_);
  for (;;) {
    if (timer_stop_ && delayed_.empty()) return;
    if (delayed_.empty()) {
      delay_cv_.wait(lk);
      continue;
    }
    const auto due = delayed_.front().due;
    // On shutdown remaining messages deliver immediately (no parked
    // receive may be left dangling, and the destructor must not stall for
    // un-elapsed deadlines).
    if (!timer_stop_ && std::chrono::steady_clock::now() < due) {
      delay_cv_.wait_until(lk, due);
      continue;
    }
    std::pop_heap(delayed_.begin(), delayed_.end(), delayed_later{});
    delayed_msg m = std::move(delayed_.back());
    delayed_.pop_back();
    // Deliver outside the lock: fulfilling the parked receive runs its
    // continuations inline, which may send (and re-enter this mutex).
    lk.unlock();
    // Delayed delivery lands here, not at send(): the trace shows the
    // injected latency as the gap between net/send and net/deliver.
    NLH_TRACE_INSTANT("net/deliver", m.payload.size());
    boxes_[static_cast<std::size_t>(m.dst)]->deliver(m.src, m.tag,
                                                     std::move(m.payload));
    lk.lock();
  }
}

amt::future<byte_buffer> comm_world::recv(int dst, int src, std::uint64_t tag) {
  NLH_ASSERT(dst >= 0 && dst < size());
  return boxes_[static_cast<std::size_t>(dst)]->recv(src, tag);
}

mailbox& comm_world::box(int locality) {
  NLH_ASSERT(locality >= 0 && locality < size());
  return *boxes_[static_cast<std::size_t>(locality)];
}

std::uint64_t comm_world::bytes_sent(int src, int dst) const {
  return bytes_[pair_index(src, dst)].load(std::memory_order_relaxed);
}

std::uint64_t comm_world::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t comm_world::messages_sent(int src, int dst) const {
  return msgs_[pair_index(src, dst)].load(std::memory_order_relaxed);
}

void comm_world::reset_traffic() {
  for (auto& b : bytes_) b.store(0, std::memory_order_relaxed);
  for (auto& m : msgs_) m.store(0, std::memory_order_relaxed);
}

std::uint64_t comm_world::bytes_from(int src) const {
  std::uint64_t total = 0;
  for (int dst = 0; dst < size(); ++dst) total += bytes_sent(src, dst);
  return total;
}

std::uint64_t comm_world::messages_from(int src) const {
  std::uint64_t total = 0;
  for (int dst = 0; dst < size(); ++dst) total += messages_sent(src, dst);
  return total;
}

void comm_world::reset_traffic_from(int src) {
  for (int dst = 0; dst < size(); ++dst) {
    bytes_[pair_index(src, dst)].store(0, std::memory_order_relaxed);
    msgs_[pair_index(src, dst)].store(0, std::memory_order_relaxed);
  }
}

void comm_world::register_counters(const std::string& prefix) {
  NLH_ASSERT_MSG(counter_paths_.empty(), "comm_world: counters already registered");
  auto& reg = amt::counter_registry::instance();
  for (int i = 0; i < size(); ++i) {
    const std::string loc = prefix + "{locality#" + std::to_string(i) + "}";
    const std::string bytes_path = loc + "/bytes-sent";
    const std::string msgs_path = loc + "/messages-sent";
    reg.register_counter(
        bytes_path, [this, i] { return static_cast<double>(bytes_from(i)); },
        [this, i] { reset_traffic_from(i); });
    reg.register_counter(
        msgs_path, [this, i] { return static_cast<double>(messages_from(i)); },
        [this, i] { reset_traffic_from(i); });
    counter_paths_.push_back(bytes_path);
    counter_paths_.push_back(msgs_path);
  }
}

comm_world::~comm_world() {
  {
    std::lock_guard<std::mutex> lk(delay_m_);
    timer_stop_ = true;
  }
  delay_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  auto& reg = amt::counter_registry::instance();
  for (const auto& path : counter_paths_) reg.unregister_counter(path);
}

}  // namespace nlh::net

#pragma once
///
/// \file mailbox.hpp
/// \brief Per-locality tagged message inbox with futurized receive.
///
/// `recv(src, tag)` returns a future that is fulfilled when the matching
/// message is delivered — the arrival order of deliver/recv does not matter
/// (messages that arrive early are parked; receives posted early park a
/// promise). Matching is exact on (source locality, tag); the distributed
/// solver encodes (timestep, subdomain) into the tag.
///

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "amt/future.hpp"
#include "net/serializer.hpp"

namespace nlh::net {

class mailbox {
 public:
  /// Deliver a message from `src` with `tag`; fulfills a parked receive if
  /// one exists, otherwise queues the payload.
  void deliver(int src, std::uint64_t tag, byte_buffer payload);

  /// Futurized receive for the (src, tag) pair.
  amt::future<byte_buffer> recv(int src, std::uint64_t tag);

  /// Number of parked messages not yet matched by a recv (diagnostics).
  std::size_t pending_messages() const;

  /// Number of parked receives not yet matched by a deliver (diagnostics).
  std::size_t pending_receives() const;

 private:
  using key = std::pair<int, std::uint64_t>;

  mutable std::mutex m_;
  std::map<key, std::deque<byte_buffer>> arrived_;
  std::map<key, std::deque<amt::promise<byte_buffer>>> waiting_;
};

}  // namespace nlh::net

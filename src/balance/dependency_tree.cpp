#include "balance/dependency_tree.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace nlh::balance {

dependency_tree build_dependency_tree(const std::vector<std::vector<int>>& adjacency,
                                      const std::vector<double>& imbalance) {
  const auto n = adjacency.size();
  NLH_ASSERT(imbalance.size() == n);
  NLH_ASSERT(n >= 1);

  dependency_tree tree;
  tree.parent.assign(n, -1);
  tree.children.assign(n, {});
  tree.root = static_cast<int>(
      std::min_element(imbalance.begin(), imbalance.end()) - imbalance.begin());

  std::vector<char> visited(n, 0);
  std::queue<int> bfs;
  auto enqueue_root = [&](int r) {
    visited[static_cast<std::size_t>(r)] = 1;
    tree.order.push_back(r);
    bfs.push(r);
  };
  enqueue_root(tree.root);
  while (true) {
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop();
      for (int v : adjacency[static_cast<std::size_t>(u)]) {
        NLH_ASSERT(v >= 0 && static_cast<std::size_t>(v) < n);
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        tree.parent[static_cast<std::size_t>(v)] = u;
        tree.children[static_cast<std::size_t>(u)].push_back(v);
        tree.order.push_back(v);
        bfs.push(v);
      }
    }
    // Nodes whose SP touches nobody (e.g. a node with zero SDs): isolated roots.
    int next = -1;
    for (std::size_t i = 0; i < n; ++i)
      if (!visited[i]) {
        next = static_cast<int>(i);
        break;
      }
    if (next == -1) break;
    enqueue_root(next);
  }
  NLH_ASSERT(tree.order.size() == n);
  return tree;
}

}  // namespace nlh::balance

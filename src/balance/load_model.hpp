#pragma once
///
/// \file load_model.hpp
/// \brief The quantitative core of Algorithm 1: compute capacity (eq. 8),
/// expected SD counts (eq. 10) and load imbalance (eq. 9) from the busy-time
/// performance counters.
///

#include <vector>

namespace nlh::balance {

/// Power(N_i) = SD(N_i) / BusyTime(N_i), eq. (8). Nodes that were never
/// busy (busy <= floor) are treated as owning capacity proportional to one
/// SD per floor interval, which keeps the formula finite when a node had no
/// work at all.
std::vector<double> compute_power(const std::vector<int>& sd_counts,
                                  const std::vector<double>& busy_time,
                                  double busy_floor = 1e-9);

/// E(N_i) = TotalSD * Power_i / sum_j Power_j, eq. (10).
std::vector<double> expected_sds(const std::vector<int>& sd_counts,
                                 const std::vector<double>& power);

/// LoadImbalance(N_i) = E(N_i) - SD(N_i), eq. (9). Positive: the node is
/// under-loaded and should borrow SDs; negative: it should lend.
std::vector<double> load_imbalance(const std::vector<int>& sd_counts,
                                   const std::vector<double>& expected);

}  // namespace nlh::balance

#pragma once
///
/// \file dependency_tree.hpp
/// \brief Data-dependency tree over compute nodes and its topological
/// ordering (Algorithm 1 lines 13-19, paper Fig. 7).
///
/// Nodes of the tree are compute nodes; an edge exists when the two nodes'
/// SPs share an SD boundary. The tree is a BFS spanning tree of that
/// adjacency rooted at the node with minimum load imbalance; the
/// "topological order" processes a parent before its children so each node
/// exchanges SDs only with not-yet-visited neighbors.
///

#include <vector>

namespace nlh::balance {

struct dependency_tree {
  int root = 0;
  std::vector<int> parent;                 ///< parent[node], -1 for root / unreachable
  std::vector<std::vector<int>> children;  ///< children[node]
  std::vector<int> order;                  ///< parent-before-children traversal
};

/// Build the BFS spanning tree of `adjacency` rooted at argmin(imbalance).
/// `adjacency[i]` lists nodes adjacent to i (symmetric). Disconnected nodes
/// (no SDs adjacent to anyone) are appended to the order as isolated roots.
dependency_tree build_dependency_tree(const std::vector<std::vector<int>>& adjacency,
                                      const std::vector<double>& imbalance);

}  // namespace nlh::balance

#include "balance/real_driver.hpp"

#include "amt/counters.hpp"

namespace nlh::balance {

std::vector<real_balance_iteration> run_real_balancing(dist::dist_solver& solver,
                                                       const real_balance_config& cfg) {
  std::vector<real_balance_iteration> log;
  for (int it = 0; it < cfg.iterations; ++it) {
    real_balance_iteration entry;
    entry.iteration = it;
    entry.sd_counts_before = solver.owners().sd_counts();

    solver.reset_busy_counters();
    solver.run(cfg.steps_per_iteration);

    // Poll the AGAS-style registry path first (the paper's counter surface;
    // try_value never aborts, so a counter unregistered by a concurrent
    // pool teardown — e.g. during migration — degrades to the direct
    // solver reading instead of crashing the balancing loop).
    auto& reg = amt::counter_registry::instance();
    entry.busy_fraction.reserve(static_cast<std::size_t>(solver.owners().num_nodes()));
    for (int l = 0; l < solver.owners().num_nodes(); ++l) {
      const auto polled = reg.try_value(amt::busy_time_path(l));
      entry.busy_fraction.push_back(polled ? *polled : solver.busy_fraction(l));
    }

    const auto traffic_before = solver.comm().total_bytes();
    // Balance on a copy of the ownership map; migrations applied through
    // the solver keep its map in sync (migrate_sd updates it).
    auto own = solver.owners();
    const auto rep =
        balance_step(solver.sd_tiling(), own, entry.busy_fraction, cfg.opts,
                     [&](const sd_move& m) { solver.migrate_sd(m.sd, m.to_node); });
    entry.sds_moved = static_cast<int>(rep.moves.size());
    entry.migration_bytes = solver.comm().total_bytes() - traffic_before;
    entry.sd_counts_after = solver.owners().sd_counts();
    solver.reset_busy_counters();  // Algorithm 1 line 35
    log.push_back(std::move(entry));
  }
  return log;
}

}  // namespace nlh::balance

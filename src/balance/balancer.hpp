#pragma once
///
/// \file balancer.hpp
/// \brief Algorithm 1 end to end: busy times -> power -> expected SDs ->
/// imbalance -> dependency tree -> topological redistribution.
///

#include <functional>
#include <vector>

#include "balance/dependency_tree.hpp"
#include "balance/load_model.hpp"
#include "balance/transfer.hpp"
#include "dist/ownership.hpp"
#include "dist/tiling.hpp"

namespace nlh::balance {

struct balance_options {
  /// Busy times below this are floored (idle node; see compute_power).
  double busy_floor = 1e-9;
  /// Nodes whose |imbalance| is below this many SDs are left alone; avoids
  /// thrashing single SDs back and forth between near-balanced nodes.
  double deadband = 0.5;
  /// Hard cap on the number of SD moves one balance_step may perform;
  /// 0 = unlimited. With a cap, the dependency-tree walk stops transferring
  /// once the budget is spent, so `own`, `migrate` invocations and
  /// `balance_report::moves` all agree on exactly the capped prefix.
  int max_moves = 0;
};

/// Everything one balancing iteration computed and did (report for logging,
/// benches and tests).
struct balance_report {
  std::vector<int> sd_counts_before;
  std::vector<double> power;       ///< eq. (8)
  std::vector<double> expected;    ///< eq. (10)
  std::vector<double> imbalance;   ///< eq. (9), before redistribution
  dependency_tree tree;
  std::vector<sd_move> moves;      ///< SD migrations actually performed
  std::vector<int> sd_counts_after;
};

/// Run one load-balancing iteration on `own` given the nodes' measured busy
/// times. The caller is responsible for resetting the busy-time counters
/// afterwards (Algorithm 1 line 35) — in this API the counters are owned by
/// the caller.
///
/// Migrate-callback contract (`migrate`, optional): invoked synchronously on
/// the calling thread, exactly once per SD move, in exactly the order the
/// moves appear in the returned `balance_report::moves` — i.e. the i-th
/// callback receives a value equal to `rep.moves[i]`, for every i, and the
/// callback count equals `rep.moves.size()`. Callers transfer the actual
/// field data here (dist_solver::migrate_sd). Moves never have
/// `from_node == to_node`. Note that `own` is updated in contiguous batches
/// *before* the callbacks for that batch fire, so a callback must use its
/// `sd_move` argument — not `own` — to learn the move's source node.
/// balance_integration_test asserts this ordering contract.
balance_report balance_step(const dist::tiling& t, dist::ownership_map& own,
                            const std::vector<double>& busy_time,
                            const balance_options& opts = {},
                            const std::function<void(const sd_move&)>& migrate = {});

}  // namespace nlh::balance

#pragma once
///
/// \file balancer.hpp
/// \brief Algorithm 1 end to end: busy times -> power -> expected SDs ->
/// imbalance -> dependency tree -> topological redistribution.
///

#include <functional>
#include <vector>

#include "balance/dependency_tree.hpp"
#include "balance/load_model.hpp"
#include "balance/transfer.hpp"
#include "dist/ownership.hpp"
#include "dist/tiling.hpp"

namespace nlh::balance {

struct balance_options {
  /// Busy times below this are floored (idle node; see compute_power).
  double busy_floor = 1e-9;
  /// Nodes whose |imbalance| is below this many SDs are left alone; avoids
  /// thrashing single SDs back and forth between near-balanced nodes.
  double deadband = 0.5;
};

/// Everything one balancing iteration computed and did (report for logging,
/// benches and tests).
struct balance_report {
  std::vector<int> sd_counts_before;
  std::vector<double> power;       ///< eq. (8)
  std::vector<double> expected;    ///< eq. (10)
  std::vector<double> imbalance;   ///< eq. (9), before redistribution
  dependency_tree tree;
  std::vector<sd_move> moves;      ///< SD migrations actually performed
  std::vector<int> sd_counts_after;
};

/// Run one load-balancing iteration on `own` given the nodes' measured busy
/// times. `migrate` (optional) is invoked for every SD move so callers can
/// transfer the actual field data (dist_solver::migrate_sd). The caller is
/// responsible for resetting the busy-time counters afterwards (Algorithm 1
/// line 35) — in this API the counters are owned by the caller.
balance_report balance_step(const dist::tiling& t, dist::ownership_map& own,
                            const std::vector<double>& busy_time,
                            const balance_options& opts = {},
                            const std::function<void(const sd_move&)>& migrate = {});

}  // namespace nlh::balance

#include "balance/sim_driver.hpp"

#include "support/stats.hpp"

namespace nlh::balance {

std::vector<sim_balance_iteration> run_sim_balancing(const dist::tiling& t,
                                                     dist::ownership_map& own,
                                                     const sim_balance_config& cfg) {
  std::vector<sim_balance_iteration> log;
  auto cost = cfg.cost;
  auto cluster = cfg.cluster;
  for (int it = 0; it < cfg.max_iterations; ++it) {
    sim_balance_iteration entry;
    entry.iteration = it;
    entry.sd_counts_before = own.sd_counts();

    if (cfg.on_iteration) cfg.on_iteration(it, cost, cluster);

    // Measure: run an interval on the virtual cluster with the current SP
    // distribution. Re-simulating from a fresh interval mirrors the paper's
    // counter reset between balancing iterations.
    const auto run =
        dist::simulate_timestepping(t, own, cfg.steps_per_iteration, cost, cluster);
    entry.busy_time = run.node_busy;
    entry.busy_fraction = run.node_busy_fraction;
    entry.makespan = run.makespan;
    entry.busy_cov = support::imbalance_cov(run.node_busy_fraction);

    if (entry.busy_cov < cfg.cov_tol) {
      entry.converged = true;
      entry.sd_counts_after = entry.sd_counts_before;
      log.push_back(std::move(entry));
      if (!cfg.run_all_iterations) break;
      continue;
    }

    const auto rep = balance_step(t, own, entry.busy_time, cfg.opts);
    entry.sds_moved = static_cast<int>(rep.moves.size());
    entry.sd_counts_after = rep.sd_counts_after;
    log.push_back(std::move(entry));
  }
  return log;
}

}  // namespace nlh::balance

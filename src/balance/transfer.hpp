#pragma once
///
/// \file transfer.hpp
/// \brief Contiguity-preserving SD transfer between adjacent nodes
/// (the borrowing step of Algorithm 1, paper Fig. 6).
///
/// SDs move one at a time across the SP boundary: each pick is the frontier
/// SD of the lender most strongly connected to the borrower's territory,
/// preferring moves that keep the lender's SP connected. Re-evaluating the
/// frontier after every move grows the borrower's territory uniformly in
/// all spatial directions instead of carving a channel.
///

#include <vector>

#include "dist/ownership.hpp"
#include "dist/tiling.hpp"

namespace nlh::balance {

/// One executed move (for migration callbacks and reporting).
struct sd_move {
  int sd;
  int from_node;
  int to_node;
};

/// Move up to `count` SDs from `from_node` to `to_node`. Returns the moves
/// actually performed (fewer when the frontier is exhausted or the lender
/// would be emptied).
std::vector<sd_move> transfer_sds(const dist::tiling& t, dist::ownership_map& own,
                                  int from_node, int to_node, int count);

/// Score used to rank a frontier candidate: connections into the borrower's
/// territory minus a penalty when removing the SD disconnects the lender.
/// Exposed for tests.
double transfer_score(const dist::tiling& t, const dist::ownership_map& own, int sd,
                      int from_node, int to_node);

/// True when removing `sd` keeps `node`'s SP connected (8-connectivity on
/// the SD grid). An SP of one SD counts as disconnectable (never emptied by
/// transfer_sds anyway).
bool removal_keeps_connected(const dist::tiling& t, const dist::ownership_map& own,
                             int sd, int node);

}  // namespace nlh::balance

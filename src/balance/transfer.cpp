#include "balance/transfer.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace nlh::balance {

bool removal_keeps_connected(const dist::tiling& t, const dist::ownership_map& own,
                             int sd, int node) {
  NLH_ASSERT(own.owner(sd) == node);
  // BFS over node's SDs excluding sd.
  std::vector<int> members;
  for (int s = 0; s < t.num_sds(); ++s)
    if (s != sd && own.owner(s) == node) members.push_back(s);
  if (members.empty()) return false;

  std::vector<char> seen(static_cast<std::size_t>(t.num_sds()), 0);
  std::queue<int> bfs;
  bfs.push(members.front());
  seen[static_cast<std::size_t>(members.front())] = 1;
  std::size_t reached = 1;
  while (!bfs.empty()) {
    const int u = bfs.front();
    bfs.pop();
    for (const auto& [d, nb] : t.neighbors(u)) {
      if (nb == sd || own.owner(nb) != node || seen[static_cast<std::size_t>(nb)]) continue;
      seen[static_cast<std::size_t>(nb)] = 1;
      ++reached;
      bfs.push(nb);
    }
  }
  return reached == members.size();
}

double transfer_score(const dist::tiling& t, const dist::ownership_map& own, int sd,
                      int from_node, int to_node) {
  NLH_ASSERT(own.owner(sd) == from_node);
  int to_links = 0;
  int from_links = 0;
  for (const auto& [d, nb] : t.neighbors(sd)) {
    if (own.owner(nb) == to_node) ++to_links;
    if (own.owner(nb) == from_node) ++from_links;
  }
  if (to_links == 0) return -1.0;  // not on the frontier
  // Prefer SDs deeply embedded in the borrower's boundary and loosely
  // attached to the lender; heavily penalize disconnecting the lender.
  double score = 10.0 * to_links - from_links;
  if (!removal_keeps_connected(t, own, sd, from_node)) score -= 1000.0;
  return score;
}

std::vector<sd_move> transfer_sds(const dist::tiling& t, dist::ownership_map& own,
                                  int from_node, int to_node, int count) {
  NLH_ASSERT(from_node >= 0 && from_node < own.num_nodes());
  NLH_ASSERT(to_node >= 0 && to_node < own.num_nodes());
  NLH_ASSERT(from_node != to_node);
  NLH_ASSERT(count >= 0);

  std::vector<sd_move> moves;
  for (int step = 0; step < count; ++step) {
    // Never empty the lender.
    int lender_sds = 0;
    for (int s = 0; s < t.num_sds(); ++s)
      if (own.owner(s) == from_node) ++lender_sds;
    if (lender_sds <= 1) break;

    int best_sd = -1;
    double best_score = 0.0;
    for (int s = 0; s < t.num_sds(); ++s) {
      if (own.owner(s) != from_node) continue;
      const double score = transfer_score(t, own, s, from_node, to_node);
      if (score < 0.0) continue;  // not adjacent to the borrower
      if (best_sd == -1 || score > best_score ||
          (score == best_score && s < best_sd)) {
        best_sd = s;
        best_score = score;
      }
    }
    if (best_sd == -1) break;  // territories no longer adjacent

    own.set_owner(best_sd, to_node);
    moves.push_back(sd_move{best_sd, from_node, to_node});
  }
  return moves;
}

}  // namespace nlh::balance

#include "balance/balancer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace nlh::balance {

balance_report balance_step(const dist::tiling& t, dist::ownership_map& own,
                            const std::vector<double>& busy_time,
                            const balance_options& opts,
                            const std::function<void(const sd_move&)>& migrate) {
  NLH_ASSERT(static_cast<int>(busy_time.size()) == own.num_nodes());

  balance_report rep;
  rep.sd_counts_before = own.sd_counts();
  rep.power = compute_power(rep.sd_counts_before, busy_time, opts.busy_floor);
  rep.expected = expected_sds(rep.sd_counts_before, rep.power);
  rep.imbalance = load_imbalance(rep.sd_counts_before, rep.expected);
  rep.tree = build_dependency_tree(own.node_adjacency(t), rep.imbalance);

  // Working copy updated as transfers happen (Algorithm 1 lines 21-33).
  std::vector<double> imb = rep.imbalance;

  // Remaining move budget under opts.max_moves (0 = unlimited). Checked
  // before each transfer_sds so `own` never moves an SD the report (and the
  // migrate callbacks) wouldn't account for.
  const auto budget_left = [&]() {
    return opts.max_moves > 0
               ? opts.max_moves - static_cast<int>(rep.moves.size())
               : std::numeric_limits<int>::max();
  };

  for (int i : rep.tree.order) {
    if (budget_left() <= 0) break;
    auto kids = rep.tree.children[static_cast<std::size_t>(i)];
    if (kids.empty()) continue;
    const double imb_i = imb[static_cast<std::size_t>(i)];
    if (std::abs(imb_i) < opts.deadband) continue;

    // Algorithm 1 line 29 divides the imbalance uniformly over the
    // non-visited neighbors. A literal integer division stalls when
    // |imbalance| < L, so the integer total llround(imb_i) is spread
    // largest-remainder style, handing the extra SDs to the children that
    // need them most (largest opposite imbalance first).
    const auto total = static_cast<int>(std::llround(std::abs(imb_i)));
    const int L = static_cast<int>(kids.size());
    std::stable_sort(kids.begin(), kids.end(), [&](int a, int b) {
      const double ia = imb[static_cast<std::size_t>(a)];
      const double ib = imb[static_cast<std::size_t>(b)];
      // Borrowing (imb_i > 0): prefer the most over-loaded child (lowest
      // imbalance); lending: prefer the most under-loaded (highest).
      return imb_i > 0 ? ia < ib : ia > ib;
    });
    const double share = imb_i / static_cast<double>(L);
    int remaining = total;
    for (std::size_t ki = 0; ki < kids.size(); ++ki) {
      const int m = kids[ki];
      imb[static_cast<std::size_t>(m)] -= share;
      const int n = (total / L) + (static_cast<int>(ki) < total % L ? 1 : 0);
      const int want = std::min({n, remaining, budget_left()});
      if (want <= 0) continue;
      // imb_i > 0: node i is under-loaded and borrows from the child;
      // imb_i < 0: node i lends to the child.
      const int from = imb_i > 0 ? m : i;
      const int to = imb_i > 0 ? i : m;
      auto moves = transfer_sds(t, own, from, to, want);
      remaining -= static_cast<int>(moves.size());
      for (const auto& mv : moves) {
        if (migrate) migrate(mv);
        rep.moves.push_back(mv);
      }
    }
    imb[static_cast<std::size_t>(i)] = 0.0;
  }

  rep.sd_counts_after = own.sd_counts();
  return rep;
}

}  // namespace nlh::balance

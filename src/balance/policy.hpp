#pragma once
///
/// \file policy.hpp
/// \brief The online auto-rebalancing policy knob set (docs/balance.md).
///
/// Deliberately dependency-free: `dist::dist_config` and
/// `api::session_options` both embed a `rebalance_policy` by value, so this
/// header must not pull the balance machinery (or anything from dist/) into
/// the config surface. The knobs parameterize when the live Algorithm 1
/// loop inside `dist_solver` fires and how hard it is allowed to act; the
/// loop itself lives in `balance::auto_rebalancer`.
///

#include <cstdint>
#include <string>
#include <vector>

namespace nlh::balance {

/// When and how hard the live rebalancer acts. The defaults are
/// conservative: check every 10 steps, fire only on a >= 1 SD imbalance,
/// and wait one further check after an epoch that moved SDs before acting
/// again (docs/balance.md discusses each knob).
struct rebalance_policy {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Steps between imbalance checks (the busy-time measurement window).
  int interval = 10;
  /// An epoch fires when max_i |LoadImbalance(N_i)| (eq. 9, in SD units)
  /// reaches this. 0 fires on every check (test/bench forcing).
  double trigger = 1.0;
  /// Per-node deadband of Algorithm 1 (balance_options::deadband): nodes
  /// whose |imbalance| is below this many SDs are left alone. The
  /// hysteresis half of the anti-ping-pong pair.
  double deadband = 0.5;
  /// Hard cap on SD migrations per epoch; 0 = unlimited
  /// (balance_options::max_moves).
  int max_moves = 0;
  /// Checks skipped after an epoch that moved at least one SD — the
  /// rate-limiting half of the anti-ping-pong pair. Busy windows keep
  /// resetting during the cooldown, so the first post-cooldown check
  /// measures a clean interval.
  int cooldown = 1;
};

/// Cumulative observables of one auto_rebalancer (mirrored into the
/// `balance/*` metrics family and api::runtime_metrics).
struct rebalance_stats {
  std::uint64_t checks = 0;  ///< interval boundaries where busy time was sampled
  std::uint64_t epochs = 0;  ///< checks whose imbalance reached the trigger
  std::uint64_t moves = 0;   ///< SDs migrated across all epochs
  /// max_i |imbalance| at the last check (SD units), and the same quantity
  /// recomputed after the last epoch's migrations (unchanged counts when no
  /// epoch fired at that check).
  double last_imbalance_before = 0.0;
  double last_imbalance_after = 0.0;
};

/// All validation failures of `p`, each message prefixed with
/// `field_prefix` + the offending knob name (e.g.
/// "dist_config.rebalance.interval: ..."); empty = valid. Only meaningful
/// knobs are checked when `p.enabled` is false (a disabled policy is always
/// valid — the historical zero-initialized config stays accepted).
inline std::vector<std::string> validate_rebalance_policy(
    const rebalance_policy& p, const std::string& field_prefix) {
  std::vector<std::string> errs;
  if (!p.enabled) return errs;
  if (p.interval < 1)
    errs.push_back(field_prefix + "interval: must be at least 1 step (got " +
                   std::to_string(p.interval) + ")");
  if (p.trigger < 0.0)
    errs.push_back(field_prefix +
                   "trigger: must be non-negative SDs of imbalance (got " +
                   std::to_string(p.trigger) + ")");
  if (p.deadband < 0.0)
    errs.push_back(field_prefix + "deadband: must be non-negative (got " +
                   std::to_string(p.deadband) + ")");
  if (p.max_moves < 0)
    errs.push_back(field_prefix +
                   "max_moves: must be non-negative; 0 means unlimited (got " +
                   std::to_string(p.max_moves) + ")");
  if (p.cooldown < 0)
    errs.push_back(field_prefix + "cooldown: must be non-negative (got " +
                   std::to_string(p.cooldown) + ")");
  return errs;
}

}  // namespace nlh::balance

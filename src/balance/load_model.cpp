#include "balance/load_model.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace nlh::balance {

std::vector<double> compute_power(const std::vector<int>& sd_counts,
                                  const std::vector<double>& busy_time,
                                  double busy_floor) {
  NLH_ASSERT(sd_counts.size() == busy_time.size());
  NLH_ASSERT(busy_floor > 0.0);
  std::vector<double> power(sd_counts.size());
  for (std::size_t i = 0; i < sd_counts.size(); ++i) {
    NLH_ASSERT(sd_counts[i] >= 0);
    NLH_ASSERT(busy_time[i] >= 0.0);
    const double busy = std::max(busy_time[i], busy_floor);
    // A node with zero SDs still reports capacity: rate it as if it had
    // processed one SD in its (floored) busy interval so it can receive work.
    const double sds = std::max(sd_counts[i], 1);
    power[i] = sds / busy;
  }
  return power;
}

std::vector<double> expected_sds(const std::vector<int>& sd_counts,
                                 const std::vector<double>& power) {
  NLH_ASSERT(sd_counts.size() == power.size());
  double total_power = 0.0;
  int total_sds = 0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    NLH_ASSERT(power[i] > 0.0);
    total_power += power[i];
    total_sds += sd_counts[i];
  }
  std::vector<double> expected(power.size());
  for (std::size_t i = 0; i < power.size(); ++i)
    expected[i] = total_sds * power[i] / total_power;
  return expected;
}

std::vector<double> load_imbalance(const std::vector<int>& sd_counts,
                                   const std::vector<double>& expected) {
  NLH_ASSERT(sd_counts.size() == expected.size());
  std::vector<double> imb(sd_counts.size());
  for (std::size_t i = 0; i < sd_counts.size(); ++i)
    imb[i] = expected[i] - sd_counts[i];
  return imb;
}

}  // namespace nlh::balance

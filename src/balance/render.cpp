#include "balance/render.hpp"

namespace nlh::balance {

namespace {
char node_char(int node) {
  if (node < 10) return static_cast<char>('0' + node);
  if (node < 36) return static_cast<char>('A' + node - 10);
  return '#';
}
}  // namespace

std::string render_ownership(const dist::tiling& t, const dist::ownership_map& own) {
  std::string out;
  out.reserve(static_cast<std::size_t>(t.num_sds()) + t.sd_rows());
  for (int r = 0; r < t.sd_rows(); ++r) {
    for (int c = 0; c < t.sd_cols(); ++c) out.push_back(node_char(own.owner(t.sd_at(r, c))));
    out.push_back('\n');
  }
  return out;
}

std::string render_side_by_side(const dist::tiling& t, const dist::ownership_map& before,
                                const dist::ownership_map& after) {
  std::string out;
  for (int r = 0; r < t.sd_rows(); ++r) {
    for (int c = 0; c < t.sd_cols(); ++c) out.push_back(node_char(before.owner(t.sd_at(r, c))));
    out += (r == t.sd_rows() / 2) ? "  ->  " : "      ";
    for (int c = 0; c < t.sd_cols(); ++c) out.push_back(node_char(after.owner(t.sd_at(r, c))));
    out.push_back('\n');
  }
  return out;
}

}  // namespace nlh::balance

#pragma once
///
/// \file real_driver.hpp
/// \brief Closed-loop balancing on the *real* distributed solver: run
/// timesteps, read the busy-time performance counters, execute Algorithm 1
/// with dist_solver::migrate_sd as the migration callback, reset counters,
/// repeat. The production-path twin of run_sim_balancing.
///

#include <vector>

#include "balance/balancer.hpp"
#include "dist/dist_solver.hpp"

namespace nlh::balance {

struct real_balance_config {
  int steps_per_iteration = 5;  ///< timesteps between balancing decisions
  int iterations = 4;           ///< measure/balance rounds to run
  balance_options opts;
};

struct real_balance_iteration {
  int iteration = 0;
  std::vector<double> busy_fraction;  ///< per locality, measured interval
  std::vector<int> sd_counts_before;
  std::vector<int> sd_counts_after;
  int sds_moved = 0;
  std::uint64_t migration_bytes = 0;  ///< ghost-layer traffic of the moves
};

/// Drive `solver` for iterations * steps_per_iteration timesteps with a
/// balancing decision after each interval. The solver's ownership map and
/// SD blocks are migrated in place; busy counters are reset after every
/// decision (Algorithm 1 line 35).
std::vector<real_balance_iteration> run_real_balancing(dist::dist_solver& solver,
                                                       const real_balance_config& cfg);

}  // namespace nlh::balance

#pragma once
///
/// \file auto_rebalancer.hpp
/// \brief The live Algorithm 1 loop: between timesteps of the *running*
/// `dist_solver`, sample per-locality busy time, decide whether the cluster
/// is imbalanced enough to act, and execute a bounded batch of epoch-tagged
/// `migrate_sd` calls (docs/balance.md).
///
/// Where the offline drivers (sim_driver/real_driver) own the stepping
/// loop, the auto_rebalancer is owned *by* the solver: `dist_solver`
/// constructs one when `dist_config::rebalance.enabled` and calls
/// `on_step()` after every completed step, so rebalancing interleaves with
/// normal stepping without any caller cooperation. Because migrations only
/// rewrite ownership and ship bitwise-identical interior fields (and the
/// step_plan recompiles before the next step reads it), the serial==dist
/// bitwise guarantee survives arbitrary rebalance schedules — the property
/// `tests/auto_rebalance_test.cpp` hammers.
///

#include <functional>
#include <optional>
#include <vector>

#include "balance/balancer.hpp"
#include "balance/policy.hpp"

namespace nlh::dist {
class dist_solver;
}

namespace nlh::balance {

class auto_rebalancer {
 public:
  /// Replaces the default busy-time source (the counter_registry
  /// `busy_time_path(l)` poll with a `dist_solver::busy_fraction(l)`
  /// fallback, as in run_real_balancing). Returns one busy value per
  /// locality; tests inject synthetic loads here to make move sequences
  /// deterministic.
  using busy_sampler =
      std::function<std::vector<double>(const dist::dist_solver&)>;
  /// Observes every epoch's balance_report right after its migrations
  /// completed (still inside the solver's step; don't call back into the
  /// solver's stepping API from it).
  using epoch_observer = std::function<void(const balance_report&)>;

  explicit auto_rebalancer(rebalance_policy policy);

  const rebalance_policy& policy() const { return policy_; }
  const rebalance_stats& stats() const { return stats_; }

  void set_sampler(busy_sampler sampler) { sampler_ = std::move(sampler); }
  void set_epoch_observer(epoch_observer obs) { observer_ = std::move(obs); }

  /// The solver calls this after every completed step (serialized with
  /// stepping, like gather()). Every `policy().interval` steps it samples
  /// busy time, resets the busy counters (Algorithm 1 line 35 — each check
  /// measures a fresh window) and, outside the cooldown and with the
  /// trigger reached, runs one `balance_step` that migrates through
  /// `solver.migrate_sd`. Returns the epoch's report, nullopt when no
  /// epoch fired.
  std::optional<balance_report> on_step(dist::dist_solver& solver);

 private:
  rebalance_policy policy_;
  rebalance_stats stats_;
  busy_sampler sampler_;
  epoch_observer observer_;
  int steps_since_check_ = 0;
  int cooldown_remaining_ = 0;
};

}  // namespace nlh::balance

#pragma once
///
/// \file render.hpp
/// \brief ASCII rendering of SD ownership maps (paper Figs. 6 and 14).
///

#include <string>

#include "dist/ownership.hpp"
#include "dist/tiling.hpp"

namespace nlh::balance {

/// Render the SD grid with one character per SD (node id as 0-9A-Z, '#'
/// beyond 36 nodes), one SD row per line.
std::string render_ownership(const dist::tiling& t, const dist::ownership_map& own);

/// Render two maps side by side with a separator (before -> after views).
std::string render_side_by_side(const dist::tiling& t, const dist::ownership_map& before,
                                const dist::ownership_map& after);

}  // namespace nlh::balance

///
/// \file auto_rebalancer.cpp
/// \brief Implementation of the live Algorithm 1 loop (docs/balance.md):
/// interval gating, busy-time sampling, trigger/cooldown policy, and the
/// bounded balance_step whose migrate callback is dist_solver::migrate_sd.
///

#include "balance/auto_rebalancer.hpp"

#include <algorithm>
#include <cmath>

#include "amt/counters.hpp"
#include "balance/load_model.hpp"
#include "dist/dist_solver.hpp"
#include "obs/tracer.hpp"

namespace nlh::balance {

namespace {

/// The run_real_balancing sampling path: prefer the AGAS-style registry
/// counter (the paper's observable surface; try_value degrades to the
/// direct pool reading instead of crashing when a counter vanished), fall
/// back to the solver's own pools.
std::vector<double> default_sample(const dist::dist_solver& solver) {
  auto& reg = amt::counter_registry::instance();
  std::vector<double> busy;
  busy.reserve(static_cast<std::size_t>(solver.owners().num_nodes()));
  for (int l = 0; l < solver.owners().num_nodes(); ++l) {
    const auto polled = reg.try_value(amt::busy_time_path(l));
    busy.push_back(polled ? *polled : solver.busy_fraction(l));
  }
  return busy;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

auto_rebalancer::auto_rebalancer(rebalance_policy policy)
    : policy_(policy) {}

std::optional<balance_report> auto_rebalancer::on_step(
    dist::dist_solver& solver) {
  if (!policy_.enabled) return std::nullopt;
  if (++steps_since_check_ < policy_.interval) return std::nullopt;
  steps_since_check_ = 0;
  ++stats_.checks;

  const auto busy = sampler_ ? sampler_(solver) : default_sample(solver);
  // Fresh measurement window for the next check regardless of what this
  // one decides (Algorithm 1 line 35).
  solver.reset_busy_counters();

  // Trigger evaluation on the *unmodified* ownership: eq. 8-10 without the
  // redistribution, so a below-threshold check costs three vector passes
  // and no migration machinery.
  const auto counts = solver.owners().sd_counts();
  balance_options bopts;
  bopts.deadband = policy_.deadband;
  bopts.max_moves = policy_.max_moves;
  const auto power = compute_power(counts, busy, bopts.busy_floor);
  const auto expected = expected_sds(counts, power);
  const auto imbalance = load_imbalance(counts, expected);
  const double imb_before = max_abs(imbalance);
  stats_.last_imbalance_before = imb_before;
  stats_.last_imbalance_after = imb_before;

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return std::nullopt;
  }
  if (imb_before < policy_.trigger) return std::nullopt;

  ++stats_.epochs;
  NLH_TRACE_SPAN_ARG("balance/epoch", stats_.epochs);

  // Balance a copy; each move is executed through the solver (which keeps
  // its own map in sync and dirties the cached step_plan), so copy and
  // solver agree exactly once balance_step returns — the property
  // auto_rebalance_test asserts per epoch.
  auto own = solver.owners();
  auto rep = balance_step(solver.sd_tiling(), own, busy, bopts,
                          [&solver](const sd_move& m) {
                            solver.migrate_sd(m.sd, m.to_node);
                          });
  stats_.moves += static_cast<std::uint64_t>(rep.moves.size());

  // Post-epoch imbalance against the same measured power: how far from the
  // expected distribution the *new* ownership sits.
  stats_.last_imbalance_after =
      max_abs(load_imbalance(rep.sd_counts_after, rep.expected));

  if (!rep.moves.empty()) cooldown_remaining_ = policy_.cooldown;
  if (observer_) observer_(rep);
  return rep;
}

}  // namespace nlh::balance

#pragma once
///
/// \file sim_driver.hpp
/// \brief Closed-loop balancing on the virtual cluster: simulate a few
/// timesteps, read busy times, rebalance, repeat — the experiment of paper
/// Fig. 14 and the heterogeneous-cluster studies.
///

#include <functional>
#include <vector>

#include "balance/balancer.hpp"
#include "dist/sim_dist.hpp"

namespace nlh::balance {

struct sim_balance_config {
  int steps_per_iteration = 5;   ///< timesteps between balancing decisions
  int max_iterations = 10;
  double cov_tol = 0.02;         ///< stop when busy-time CoV drops below this
  dist::sim_cost_model cost;
  dist::sim_cluster_config cluster;
  balance_options opts;
  /// Optional hook invoked before each iteration's measurement; mutate the
  /// cost model (e.g. a growing crack changing sd_work_scale) or the
  /// cluster (interference coming and going) to model dynamic workloads.
  std::function<void(int iteration, dist::sim_cost_model&, dist::sim_cluster_config&)>
      on_iteration;
  /// When true, never stop early on convergence — dynamic workloads can
  /// un-converge again, so run all max_iterations.
  bool run_all_iterations = false;
};

struct sim_balance_iteration {
  int iteration = 0;
  std::vector<int> sd_counts_before;
  std::vector<int> sd_counts_after;
  std::vector<double> busy_time;       ///< virtual busy seconds this interval
  std::vector<double> busy_fraction;
  double busy_cov = 0.0;               ///< imbalance signal before balancing
  double makespan = 0.0;
  int sds_moved = 0;
  bool converged = false;              ///< cov below tolerance, no balancing done
};

/// Run the measure -> balance loop, mutating `own`. The returned vector has
/// one entry per iteration including the final converged measurement.
std::vector<sim_balance_iteration> run_sim_balancing(const dist::tiling& t,
                                                     dist::ownership_map& own,
                                                     const sim_balance_config& cfg);

}  // namespace nlh::balance

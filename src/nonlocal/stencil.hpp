#pragma once
///
/// \file stencil.hpp
/// \brief Precomputed epsilon-ball interaction stencil.
///
/// The discrete nonlocal operator (eq. 5) sums over every DP within the
/// horizon: j such that |x_j - x_i| <= epsilon. On a uniform grid the offset
/// set is identical for every interior DP, so it is computed once. Each
/// entry carries the combined weight J(|dx|/eps) * V_j, and the weight sum
/// gives the forward-Euler stability bound.
///

#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"

namespace nlh::nonlocal {

struct stencil_entry {
  int di;     ///< row offset
  int dj;     ///< column offset
  double w;   ///< J(|dx|/eps) * cell volume
};

/// The canonical entry order: row-major by (di, dj). Single definition for
/// the constructor sort, the plan-compilation precondition and the tests.
inline bool stencil_entry_less(const stencil_entry& a, const stencil_entry& b) {
  return a.di != b.di ? a.di < b.di : a.dj < b.dj;
}

class stencil {
 public:
  /// Build the offset list for `grid` with influence `J`.
  stencil(const grid2d& grid, const influence& J);

  /// Entries in canonical row-major order (by di, then dj) — sorted at
  /// construction, so run compilation (kernel/stencil_plan.hpp) and
  /// cross-backend comparisons are deterministic.
  const std::vector<stencil_entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Sum of weights; the forward-Euler step is monotone (and stable) when
  /// dt * c * weight_sum <= 1.
  double weight_sum() const { return weight_sum_; }

  /// Maximum |di| / |dj| over entries — the ghost width actually needed.
  int reach() const { return reach_; }

 private:
  std::vector<stencil_entry> entries_;
  double weight_sum_ = 0.0;
  int reach_ = 0;
};

/// Largest stable forward-Euler timestep for scaling constant c.
inline double stable_dt(double c, const stencil& st) {
  const double denom = c * st.weight_sum();
  NLH_ASSERT(denom > 0.0);
  return 1.0 / denom;
}

}  // namespace nlh::nonlocal

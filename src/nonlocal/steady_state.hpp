#pragma once
///
/// \file steady_state.hpp
/// \brief Steady-state nonlocal diffusion: solve -L_h u = b with zero
/// volumetric boundary data by conjugate gradient.
///
/// -L_h is symmetric positive definite on the interior DPs under the
/// volume constraint u = 0 on Dc (the quadratic form is
/// (c/2) sum_ij J w_ij (u_i - u_j)^2 plus boundary coupling), so CG
/// converges without preconditioning; the condition number grows as the
/// horizon shrinks. Complements the transient forward-Euler solver.
///

#include <utility>
#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

struct cg_result {
  int iterations = 0;
  double residual_norm = 0.0;  ///< final ||b + L u||_2 (discrete)
  bool converged = false;
};

struct cg_options {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< relative residual reduction target
};

/// Solve -L_h u = b for u (padded fields; interior entries of b used,
/// interior of u written, collar kept at 0). Returns convergence info.
/// Every CG iteration applies the compiled `plan` through the selected
/// kernel backend.
cg_result solve_steady_state(const grid2d& grid, const stencil_plan& plan, double c,
                             const std::vector<double>& b, std::vector<double>& u,
                             const cg_options& opt = {});

/// Convenience overload: compiles `st` into a plan once, then solves.
cg_result solve_steady_state(const grid2d& grid, const stencil& st, double c,
                             const std::vector<double>& b, std::vector<double>& u,
                             const cg_options& opt = {});

/// Manufactured steady problem: u*(x) = sin(2 pi x1) sin(2 pi x2),
/// b = -L_h u* computed discretely; returns (b, u*) as padded fields.
std::pair<std::vector<double>, std::vector<double>> manufactured_steady_problem(
    const grid2d& grid, const stencil_plan& plan, double c);
std::pair<std::vector<double>, std::vector<double>> manufactured_steady_problem(
    const grid2d& grid, const stencil& st, double c);

/// One backward-Euler step: solve (I - dt L_h) u^{k+1} = u^k + dt b^{k+1}
/// by CG. Unconditionally stable — dt may exceed the explicit bound
/// 1/(c * weight_sum) by orders of magnitude. `u` holds u^k on entry and
/// u^{k+1} on exit; `b_next` is the source at t_{k+1} (padded field).
/// Callers stepping repeatedly should build the plan once and use this
/// overload; the stencil overload below recompiles per call.
cg_result implicit_euler_step(const grid2d& grid, const stencil_plan& plan, double c,
                              double dt, const std::vector<double>& b_next,
                              std::vector<double>& u, const cg_options& opt = {});
cg_result implicit_euler_step(const grid2d& grid, const stencil& st, double c,
                              double dt, const std::vector<double>& b_next,
                              std::vector<double>& u, const cg_options& opt = {});

}  // namespace nlh::nonlocal

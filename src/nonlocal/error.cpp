#include "nonlocal/error.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace nlh::nonlocal {

double error_ek(const grid2d& grid, const std::vector<double>& exact,
                const std::vector<double>& numerical) {
  NLH_ASSERT(exact.size() == grid.total() && numerical.size() == grid.total());
  double sum = 0.0;
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      const double d = exact[idx] - numerical[idx];
      sum += d * d;
    }
  return grid.cell_volume() * sum;
}

double error_l2(const grid2d& grid, const std::vector<double>& exact,
                const std::vector<double>& numerical) {
  return std::sqrt(error_ek(grid, exact, numerical));
}

double error_max_relative(const grid2d& grid, const std::vector<double>& exact,
                          const std::vector<double>& numerical) {
  NLH_ASSERT(exact.size() == grid.total() && numerical.size() == grid.total());
  double max_diff = 0.0;
  double max_exact = 0.0;
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      max_diff = std::max(max_diff, std::abs(exact[idx] - numerical[idx]));
      max_exact = std::max(max_exact, std::abs(exact[idx]));
    }
  if (max_exact == 0.0) return 0.0;
  return max_diff / max_exact;
}

}  // namespace nlh::nonlocal

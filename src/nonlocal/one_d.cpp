#include "nonlocal/one_d.hpp"

#include <algorithm>
#include <cmath>

namespace nlh::nonlocal {

namespace {
constexpr double two_pi = 2.0 * 3.14159265358979323846;
}

grid1d::grid1d(int n, double epsilon)
    : n_(n), h_(1.0 / n), epsilon_(epsilon),
      ghost_(static_cast<int>(std::ceil(epsilon * n - 1e-12))) {
  NLH_ASSERT(n >= 1);
  NLH_ASSERT(epsilon > 0.0);
}

stencil1d::stencil1d(const grid1d& grid, const influence& J) {
  const int g = grid.ghost();
  for (int dj = -g; dj <= g; ++dj) {
    if (dj == 0) continue;
    const double dist = std::abs(dj) * grid.h();
    if (dist > grid.epsilon() + 1e-14) continue;
    const double w = J(dist / grid.epsilon()) * grid.cell_volume();
    entries_.emplace_back(dj, w);
    weight_sum_ += w;
    reach_ = std::max(reach_, std::abs(dj));
  }
  NLH_ASSERT_MSG(!entries_.empty(), "stencil1d: horizon smaller than grid spacing");
}

double manufactured_problem_1d::w(double t, double x) {
  if (x < 0.0 || x > 1.0) return 0.0;
  return std::cos(two_pi * t) * std::sin(two_pi * x);
}

double manufactured_problem_1d::dwdt(double t, double x) {
  if (x < 0.0 || x > 1.0) return 0.0;
  return -two_pi * std::sin(two_pi * t) * std::sin(two_pi * x);
}

serial_solver_1d::serial_solver_1d(const solver_config_1d& cfg)
    : cfg_(cfg),
      grid_(cfg.n, cfg.epsilon_factor / cfg.n),
      J_(cfg.kind),
      stencil_(grid_, J_),
      c_(J_.scaling_constant(1, cfg.conductivity, grid_.epsilon())),
      dt_(cfg.dt_safety / (c_ * stencil_.weight_sum())),
      u_(grid_.make_field()),
      scratch_w_(grid_.make_field()),
      scratch_lw_(grid_.make_field()),
      scratch_lu_(grid_.make_field()) {
  NLH_ASSERT(cfg.num_steps >= 1);
}

void serial_solver_1d::set_initial_condition() {
  for (int i = 0; i < grid_.n(); ++i)
    u_[grid_.flat(i)] = manufactured_problem_1d::u0(grid_.x(i));
}

void serial_solver_1d::apply_operator(const std::vector<double>& u,
                                      std::vector<double>& out) const {
  NLH_ASSERT(u.size() == grid_.total() && out.size() == grid_.total());
  for (int i = 0; i < grid_.n(); ++i) {
    const double ui = u[grid_.flat(i)];
    double acc = 0.0;
    for (const auto& [dj, w] : stencil_.entries())
      acc += w * (u[grid_.flat(i + dj)] - ui);
    out[grid_.flat(i)] = c_ * acc;
  }
}

void serial_solver_1d::step(int step_index) {
  const double t = step_index * dt_;
  // Discrete manufactured source: b = dw/dt - L_h[w].
  for (int i = -grid_.ghost(); i < grid_.n() + grid_.ghost(); ++i)
    scratch_w_[grid_.flat(i)] = manufactured_problem_1d::w(t, grid_.x(i));
  apply_operator(scratch_w_, scratch_lw_);
  apply_operator(u_, scratch_lu_);
  for (int i = 0; i < grid_.n(); ++i) {
    const auto idx = grid_.flat(i);
    const double b = manufactured_problem_1d::dwdt(t, grid_.x(i)) - scratch_lw_[idx];
    u_[idx] += dt_ * (b + scratch_lu_[idx]);
  }
}

solve_result_1d serial_solver_1d::run() {
  set_initial_condition();
  solve_result_1d res;
  res.dt = dt_;
  for (int k = 0; k < cfg_.num_steps; ++k) {
    step(k);
    const double t = (k + 1) * dt_;
    double ek = 0.0;
    for (int i = 0; i < grid_.n(); ++i) {
      const double d =
          manufactured_problem_1d::w(t, grid_.x(i)) - u_[grid_.flat(i)];
      ek += d * d;
    }
    ek *= grid_.cell_volume();  // h^d with d = 1 (eq. 7)
    res.total_error_e += ek;
    res.final_ek = ek;
  }
  const double t_final = cfg_.num_steps * dt_;
  double max_diff = 0.0, max_exact = 0.0;
  for (int i = 0; i < grid_.n(); ++i) {
    const double exact = manufactured_problem_1d::w(t_final, grid_.x(i));
    max_diff = std::max(max_diff, std::abs(exact - u_[grid_.flat(i)]));
    max_exact = std::max(max_exact, std::abs(exact));
  }
  res.max_relative_error = max_exact > 0.0 ? max_diff / max_exact : 0.0;
  return res;
}

}  // namespace nlh::nonlocal

#include "nonlocal/nonlocal_operator.hpp"

#include "nonlocal/kernel/kernel_detail.hpp"
#include "support/assert.hpp"

namespace nlh::nonlocal {

void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil& st, double c, const dp_rect& rect) {
  if (rect.empty()) return;
  NLH_ASSERT(st.reach() <= ghost);
  const auto& entries = st.entries();
  for (int i = rect.row_begin; i < rect.row_end; ++i) {
    const double* urow = u + static_cast<std::size_t>(i + ghost) * stride + ghost;
    double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const double ui = urow[j];
      double acc = 0.0;
      for (const auto& e : entries)
        acc += e.w * (urow[static_cast<std::ptrdiff_t>(e.di) * stride + j + e.dj] - ui);
      orow[j] = c * acc;
    }
  }
}

void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil_plan& plan, double c,
                                 const dp_rect& rect, kernel_backend backend) {
  if (rect.empty()) return;
  NLH_ASSERT(plan.reach() <= ghost);
  switch (backend) {
    case kernel_backend::scalar:
      kernel_detail::apply_scalar(u, out, stride, ghost, plan, c, rect);
      return;
    case kernel_backend::row_run:
      kernel_detail::apply_row_run(u, out, stride, ghost, plan, c, rect);
      return;
    case kernel_backend::simd:
      if (kernel_simd_available())
        kernel_detail::apply_simd(u, out, stride, ghost, plan, c, rect);
      else
        kernel_detail::apply_row_run(u, out, stride, ghost, plan, c, rect);
      return;
    case kernel_backend::avx512:
      // Fallback chain avx512 -> simd -> row_run, gated at runtime so a
      // pinned avx512 plan is still safe on CPUs (or builds) without it.
      if (kernel_avx512_available())
        kernel_detail::apply_avx512(u, out, stride, ghost, plan, c, rect);
      else if (kernel_simd_available())
        kernel_detail::apply_simd(u, out, stride, ghost, plan, c, rect);
      else
        kernel_detail::apply_row_run(u, out, stride, ghost, plan, c, rect);
      return;
  }
  NLH_ASSERT_MSG(false, "apply_nonlocal_operator_raw: unknown backend");
}

void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil_plan& plan, double c,
                                 const dp_rect& rect) {
  apply_nonlocal_operator_raw(u, out, stride, ghost, plan, c, rect, plan.backend());
}

void apply_nonlocal_operator(const grid2d& grid, const stencil& st, double c,
                             const std::vector<double>& u, std::vector<double>& out,
                             const dp_rect& rect) {
  NLH_ASSERT(u.size() == grid.total() && out.size() == grid.total());
  NLH_ASSERT(rect.row_begin >= 0 && rect.row_end <= grid.n());
  NLH_ASSERT(rect.col_begin >= 0 && rect.col_end <= grid.n());
  apply_nonlocal_operator_raw(u.data(), out.data(), grid.stride(), grid.ghost(), st, c,
                              rect);
}

void apply_nonlocal_operator(const grid2d& grid, const stencil_plan& plan, double c,
                             const std::vector<double>& u, std::vector<double>& out,
                             const dp_rect& rect) {
  NLH_ASSERT(u.size() == grid.total() && out.size() == grid.total());
  NLH_ASSERT(rect.row_begin >= 0 && rect.row_end <= grid.n());
  NLH_ASSERT(rect.col_begin >= 0 && rect.col_end <= grid.n());
  apply_nonlocal_operator_raw(u.data(), out.data(), grid.stride(), grid.ghost(), plan,
                              c, rect);
}

}  // namespace nlh::nonlocal

#include "nonlocal/problem.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace nlh::nonlocal {

namespace {
constexpr double two_pi = 2.0 * 3.14159265358979323846;
}

double manufactured_problem::w(double t, double x1, double x2) {
  if (x1 < 0.0 || x1 > 1.0 || x2 < 0.0 || x2 > 1.0) return 0.0;
  return std::cos(two_pi * t) * std::sin(two_pi * x1) * std::sin(two_pi * x2);
}

double manufactured_problem::dwdt(double t, double x1, double x2) {
  if (x1 < 0.0 || x1 > 1.0 || x2 < 0.0 || x2 > 1.0) return 0.0;
  return -two_pi * std::sin(two_pi * t) * std::sin(two_pi * x1) * std::sin(two_pi * x2);
}

double manufactured_problem::u0(double x1, double x2) { return w(0.0, x1, x2); }

std::vector<double> manufactured_problem::exact_field(double t) const {
  auto field = grid_->make_field();
  for (int i = 0; i < grid_->n(); ++i)
    for (int j = 0; j < grid_->n(); ++j)
      field[grid_->flat(i, j)] = w(t, grid_->x(j), grid_->y(i));
  return field;
}

void manufactured_problem::source_into(double t, const std::vector<double>& w_field,
                                       std::vector<double>& out,
                                       const dp_rect& rect) const {
  NLH_ASSERT(w_field.size() == grid_->total());
  NLH_ASSERT(out.size() == grid_->total());
  // out <- L_h[w] over rect, then b = dw/dt - out.
  apply_nonlocal_operator(*grid_, plan_, c_, w_field, out, rect);
  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const auto idx = grid_->flat(i, j);
      out[idx] = dwdt(t, grid_->x(j), grid_->y(i)) - out[idx];
    }
}

std::vector<double> manufactured_problem::source_field(double t) const {
  auto wf = exact_field(t);
  auto out = grid_->make_field();
  source_into(t, wf, out, dp_rect{0, grid_->n(), 0, grid_->n()});
  return out;
}

}  // namespace nlh::nonlocal

#pragma once
///
/// \file influence.hpp
/// \brief Influence function J(r), r in [0,1], and the model constant c
/// relating nonlocal diffusion to the classical conductivity k (paper eq. 2).
///

namespace nlh::nonlocal {

/// Influence function families from the nonlocal diffusion literature.
/// The paper uses `constant` (J = 1); the others exercise the same code
/// paths with non-trivial weights.
enum class influence_kind {
  constant,  ///< J(r) = 1
  linear,    ///< J(r) = 1 - r
  gaussian,  ///< J(r) = exp(-4 r^2)
};

class influence {
 public:
  explicit influence(influence_kind kind = influence_kind::constant) : kind_(kind) {}

  influence_kind kind() const { return kind_; }

  /// J(r) for normalized distance r = |y-x|/epsilon in [0, 1].
  double operator()(double r) const;

  /// i-th moment M_i = \int_0^1 J(r) r^i dr (analytic for constant/linear,
  /// Simpson quadrature for gaussian).
  double moment(int i) const;

  /// Model constant c for dimension d (1 or 2), conductivity k and horizon
  /// epsilon, per paper eq. (2): d=1: k/(eps^3 M2); d=2: 2k/(pi eps^4 M3).
  double scaling_constant(int dim, double conductivity, double epsilon) const;

 private:
  influence_kind kind_;
};

}  // namespace nlh::nonlocal

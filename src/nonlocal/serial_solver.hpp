#pragma once
///
/// \file serial_solver.hpp
/// \brief Single-threaded reference solver for eq. (5): forward Euler over
/// the precomputed epsilon-ball stencil.
///
/// This is the paper's "serial implementation" baseline and the ground truth
/// every distributed configuration is verified against (the distributed
/// solver must reproduce it to FP round-off).
///
/// The initial condition, source term and (optional) exact solution come
/// from a pluggable api::scenario; the default is the manufactured problem
/// of §3.2, which reproduces the historical hard-wired behaviour bitwise.
///

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "api/scenario.hpp"
#include "nonlocal/error.hpp"
#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/problem.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

/// Explicit time integrators for du/dt = b(t) + L_h u. The paper uses
/// forward Euler; the higher-order schemes are library extensions sharing
/// the same right-hand side evaluation.
enum class time_integrator {
  forward_euler,  ///< order 1 (the paper's scheme, eq. 5)
  rk2_midpoint,   ///< order 2
  rk4_classic,    ///< order 4
};

struct solver_config {
  int n = 64;                 ///< interior DPs per dimension
  double epsilon_factor = 8;  ///< epsilon = factor * h (paper uses 8h)
  double conductivity = 1.0;  ///< classical k
  double dt = 0.0;            ///< 0 = use the stability bound * safety
  double dt_safety = 0.5;     ///< fraction of the stability bound
  int num_steps = 20;
  influence_kind kind = influence_kind::constant;
  time_integrator integrator = time_integrator::forward_euler;
  /// Kernel backend this solver's plan is pinned to; nullopt keeps the
  /// plan following the process default (the historical behaviour).
  std::optional<kernel_backend> backend;
  /// Blocked-execution overrides for the plan's cache model; the
  /// value-initialized default keeps every field on "derive it" (see
  /// block_plan.hpp). Never changes results, only execution order.
  kernel_tuning tuning;
};

/// Per-run outputs. The error fields stay 0 when the scenario provides no
/// exact solution.
struct solve_result {
  double total_error_e = 0.0;     ///< sum_k e_k, paper eq. (7)
  double final_ek = 0.0;          ///< e_k at the final step
  double max_relative_error = 0.0;///< Fig. 8 y-axis at the final step
  double dt = 0.0;
  int steps = 0;
};

class serial_solver {
 public:
  /// \param scn the workload; null selects the manufactured scenario.
  explicit serial_solver(const solver_config& cfg,
                         std::shared_ptr<const api::scenario> scn = nullptr);

  const grid2d& grid() const { return grid_; }
  const stencil& interaction_stencil() const { return stencil_; }
  const stencil_plan& kernel_plan() const { return plan_; }
  /// Backend every DP update of this solver dispatches to (the pinned one
  /// when solver_config::backend was set, else the process default).
  kernel_backend backend() const { return plan_.backend(); }
  double scaling_constant() const { return c_; }
  double dt() const { return dt_; }
  const api::scenario& active_scenario() const { return *scenario_; }

  /// Initialize u to the scenario's initial condition.
  void set_initial_condition();

  /// Set a caller-provided initial field (padded layout).
  void set_field(std::vector<double> u);
  const std::vector<double>& field() const { return u_; }

  /// Advance one step of the configured integrator from time
  /// t_k = step_index * dt using the scenario's source.
  void step(int step_index);

  /// Evaluate the semi-discrete right-hand side f(t, u) = b(t) + L_h u into
  /// `out` (padded layout; interior entries written, collar untouched).
  void eval_rhs(double t, const std::vector<double>& u, std::vector<double>& out);

  /// Cumulative kernel execution counters (operator applies, blocks walked,
  /// DPs updated, seconds in the hot loop) since construction. Feeds the
  /// kernel/* observables the API layer exports (docs/observability.md).
  const kernel_exec_stats& kernel_stats() const { return kstats_; }

  /// Scenario's exact solution on the padded interior at time t (collar 0).
  /// Only valid when active_scenario().has_exact().
  std::vector<double> exact_field(double t) const;

  /// Run `num_steps` steps from the initial condition, accumulating the
  /// error against the scenario's exact solution after every step (error
  /// fields stay 0 for scenarios without one).
  solve_result run();

 private:
  api::scenario_context context() const { return {&grid_, &plan_, c_}; }

  solver_config cfg_;
  grid2d grid_;
  influence J_;
  stencil stencil_;
  double c_;
  double dt_;
  stencil_plan plan_;
  std::shared_ptr<const api::scenario> scenario_;
  std::vector<double> u_;
  std::vector<double> lu_;      ///< scratch: L_h[u]
  std::vector<double> w_scratch_;
  std::vector<double> b_scratch_;
  kernel_exec_stats kstats_;
};

}  // namespace nlh::nonlocal

#pragma once
///
/// \file serial_solver.hpp
/// \brief Single-threaded reference solver for eq. (5): forward Euler over
/// the precomputed epsilon-ball stencil.
///
/// This is the paper's "serial implementation" baseline and the ground truth
/// every distributed configuration is verified against (the distributed
/// solver must reproduce it to FP round-off).
///

#include <functional>
#include <vector>

#include "nonlocal/error.hpp"
#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/problem.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

/// Explicit time integrators for du/dt = b(t) + L_h u. The paper uses
/// forward Euler; the higher-order schemes are library extensions sharing
/// the same right-hand side evaluation.
enum class time_integrator {
  forward_euler,  ///< order 1 (the paper's scheme, eq. 5)
  rk2_midpoint,   ///< order 2
  rk4_classic,    ///< order 4
};

struct solver_config {
  int n = 64;                 ///< interior DPs per dimension
  double epsilon_factor = 8;  ///< epsilon = factor * h (paper uses 8h)
  double conductivity = 1.0;  ///< classical k
  double dt = 0.0;            ///< 0 = use the stability bound * safety
  double dt_safety = 0.5;     ///< fraction of the stability bound
  int num_steps = 20;
  influence_kind kind = influence_kind::constant;
  time_integrator integrator = time_integrator::forward_euler;
};

/// Per-run outputs.
struct solve_result {
  double total_error_e = 0.0;     ///< sum_k e_k, paper eq. (7)
  double final_ek = 0.0;          ///< e_k at the final step
  double max_relative_error = 0.0;///< Fig. 8 y-axis at the final step
  double dt = 0.0;
  int steps = 0;
};

class serial_solver {
 public:
  explicit serial_solver(const solver_config& cfg);

  const grid2d& grid() const { return grid_; }
  const stencil& interaction_stencil() const { return stencil_; }
  const stencil_plan& kernel_plan() const { return problem_.kernel_plan(); }
  double scaling_constant() const { return c_; }
  double dt() const { return dt_; }
  const manufactured_problem& problem() const { return problem_; }

  /// Initialize u to the manufactured initial condition.
  void set_initial_condition();

  /// Set a caller-provided initial field (padded layout).
  void set_field(std::vector<double> u);
  const std::vector<double>& field() const { return u_; }

  /// Advance one step of the configured integrator from time
  /// t_k = step_index * dt using the manufactured source.
  void step(int step_index);

  /// Evaluate the semi-discrete right-hand side f(t, u) = b(t) + L_h u into
  /// `out` (padded layout; interior entries written, collar untouched).
  void eval_rhs(double t, const std::vector<double>& u, std::vector<double>& out);

  /// Run `num_steps` steps from the initial condition, accumulating the
  /// error against the manufactured solution after every step.
  solve_result run();

 private:
  solver_config cfg_;
  grid2d grid_;
  influence J_;
  stencil stencil_;
  double c_;
  double dt_;
  manufactured_problem problem_;
  std::vector<double> u_;
  std::vector<double> lu_;      ///< scratch: L_h[u]
  std::vector<double> w_scratch_;
  std::vector<double> b_scratch_;
};

}  // namespace nlh::nonlocal

#pragma once
///
/// \file problem.hpp
/// \brief The manufactured-solution test problem of paper §3.2.
///
/// w(t,x) = cos(2 pi t) sin(2 pi x1) sin(2 pi x2) on D, 0 outside; the heat
/// source b is chosen so u = w solves the model. We manufacture b at the
/// *discrete* level: b_i^k = dw/dt(t_k, x_i) - L_h[w(t_k,.)](x_i), which
/// makes w an exact solution of the semi-discrete system — the measured
/// error then isolates the forward-Euler time discretization and decreases
/// with refinement exactly as the paper's Fig. 8 expects.
///

#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

class manufactured_problem {
 public:
  /// Compiles `st` into a kernel plan once, so every source evaluation
  /// reuses it (L_h[w] is half the work of a DP update).
  manufactured_problem(const grid2d& grid, const stencil& st, double c)
      : grid_(&grid), plan_(st), c_(c) {}

  /// Exact solution w(t, x); zero outside D (the collar).
  static double w(double t, double x1, double x2);

  /// Time derivative dw/dt.
  static double dwdt(double t, double x1, double x2);

  /// Initial condition u0(x) = w(0, x).
  static double u0(double x1, double x2);

  /// Fill a padded field with w(t, .) on the interior (collar stays 0).
  std::vector<double> exact_field(double t) const;

  /// Discrete manufactured source over `rect` at time t:
  /// b_i = dw/dt(t, x_i) - L_h[w(t,.)](x_i), written into `out`.
  /// `w_field` must hold exact_field(t).
  void source_into(double t, const std::vector<double>& w_field,
                   std::vector<double>& out, const dp_rect& rect) const;

  /// Convenience: full-interior source field at time t.
  std::vector<double> source_field(double t) const;

  const grid2d& grid() const { return *grid_; }
  double scaling_constant() const { return c_; }

  /// The compiled kernel plan. The solvers apply L_h through this same
  /// object, so the stencil is compiled exactly once per problem.
  const stencil_plan& kernel_plan() const { return plan_; }

 private:
  const grid2d* grid_;
  stencil_plan plan_;
  double c_;
};

}  // namespace nlh::nonlocal

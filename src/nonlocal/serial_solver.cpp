#include "nonlocal/serial_solver.hpp"

#include <chrono>

#include "nonlocal/nonlocal_operator.hpp"
#include "support/assert.hpp"

namespace nlh::nonlocal {

serial_solver::serial_solver(const solver_config& cfg,
                             std::shared_ptr<const api::scenario> scn)
    : cfg_(cfg),
      grid_(cfg.n, cfg.epsilon_factor / cfg.n),
      J_(cfg.kind),
      stencil_(grid_, J_),
      c_(J_.scaling_constant(2, cfg.conductivity, grid_.epsilon())),
      dt_(cfg.dt > 0.0 ? cfg.dt : cfg.dt_safety * stable_dt(c_, stencil_)),
      plan_(stencil_),
      scenario_(scn ? std::move(scn)
                    : std::make_shared<const api::manufactured_scenario>()),
      u_(grid_.make_field()),
      lu_(grid_.make_field()),
      w_scratch_(grid_.make_field()),
      b_scratch_(grid_.make_field()) {
  NLH_ASSERT(cfg.num_steps >= 1);
  if (cfg.backend) plan_.set_backend(*cfg.backend);
  plan_.set_tuning(cfg.tuning);
}

void serial_solver::set_initial_condition() {
  for (int i = 0; i < grid_.n(); ++i)
    for (int j = 0; j < grid_.n(); ++j)
      u_[grid_.flat(i, j)] = scenario_->initial(grid_.x(j), grid_.y(i));
}

void serial_solver::set_field(std::vector<double> u) {
  NLH_ASSERT(u.size() == grid_.total());
  u_ = std::move(u);
}

void serial_solver::eval_rhs(double t, const std::vector<double>& u,
                             std::vector<double>& out) {
  NLH_ASSERT(u.size() == grid_.total() && out.size() == grid_.total());
  const dp_rect all{0, grid_.n(), 0, grid_.n()};

  // b(t) through the scenario (manufactured: b = dw/dt - L_h[w] at the
  // discrete level, with w precomputed into the aux scratch).
  scenario_->fill_aux(context(), t, all, w_scratch_);
  scenario_->source_into(context(), t, w_scratch_, all, b_scratch_);

  // out = L_h u + b.
  const auto t0 = std::chrono::steady_clock::now();
  apply_nonlocal_operator(grid_, plan_, c_, u, out, all);
  const auto t1 = std::chrono::steady_clock::now();
  kstats_.applies += 1;
  kstats_.blocks += count_blocks(plan_.blocking(), all.row_begin, all.row_end,
                                 all.col_begin, all.col_end);
  kstats_.dps += static_cast<std::uint64_t>(grid_.n()) * grid_.n();
  kstats_.seconds += std::chrono::duration<double>(t1 - t0).count();
  for (int i = 0; i < grid_.n(); ++i)
    for (int j = 0; j < grid_.n(); ++j) {
      const auto idx = grid_.flat(i, j);
      out[idx] += b_scratch_[idx];
    }
}

void serial_solver::step(int step_index) {
  const double t = step_index * dt_;
  const int n = grid_.n();

  // Interior-only axpy; the collar keeps the volumetric boundary condition
  // u = 0 (eq. 4) on every stage.
  auto axpy = [&](std::vector<double>& y, double a, const std::vector<double>& x) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const auto idx = grid_.flat(i, j);
        y[idx] += a * x[idx];
      }
  };

  switch (cfg_.integrator) {
    case time_integrator::forward_euler: {
      eval_rhs(t, u_, lu_);
      axpy(u_, dt_, lu_);
      break;
    }
    case time_integrator::rk2_midpoint: {
      eval_rhs(t, u_, lu_);            // k1
      auto stage = u_;
      axpy(stage, 0.5 * dt_, lu_);     // u + dt/2 k1
      eval_rhs(t + 0.5 * dt_, stage, lu_);  // k2
      axpy(u_, dt_, lu_);
      break;
    }
    case time_integrator::rk4_classic: {
      auto k1 = grid_.make_field();
      auto k2 = grid_.make_field();
      auto k3 = grid_.make_field();
      auto k4 = grid_.make_field();
      eval_rhs(t, u_, k1);
      auto stage = u_;
      axpy(stage, 0.5 * dt_, k1);
      eval_rhs(t + 0.5 * dt_, stage, k2);
      stage = u_;
      axpy(stage, 0.5 * dt_, k2);
      eval_rhs(t + 0.5 * dt_, stage, k3);
      stage = u_;
      axpy(stage, dt_, k3);
      eval_rhs(t + dt_, stage, k4);
      axpy(u_, dt_ / 6.0, k1);
      axpy(u_, dt_ / 3.0, k2);
      axpy(u_, dt_ / 3.0, k3);
      axpy(u_, dt_ / 6.0, k4);
      break;
    }
  }
}

std::vector<double> serial_solver::exact_field(double t) const {
  auto field = grid_.make_field();
  for (int i = 0; i < grid_.n(); ++i)
    for (int j = 0; j < grid_.n(); ++j)
      field[grid_.flat(i, j)] = scenario_->exact(t, grid_.x(j), grid_.y(i));
  return field;
}

solve_result serial_solver::run() {
  set_initial_condition();
  const bool has_exact = scenario_->has_exact();
  error_accumulator acc;
  for (int k = 0; k < cfg_.num_steps; ++k) {
    step(k);
    if (has_exact) {
      const auto exact = exact_field((k + 1) * dt_);
      acc.add_step(error_ek(grid_, exact, u_));
    }
  }
  solve_result res;
  if (has_exact) {
    const auto exact = exact_field(cfg_.num_steps * dt_);
    res.total_error_e = acc.total();
    res.final_ek = error_ek(grid_, exact, u_);
    res.max_relative_error = error_max_relative(grid_, exact, u_);
  }
  res.dt = dt_;
  res.steps = cfg_.num_steps;
  return res;
}

}  // namespace nlh::nonlocal

#pragma once
///
/// \file block_plan.hpp
/// \brief Cache-aware blocked execution plan for the nonlocal kernel: the
/// (row-block x column-tile) geometry every backend iterates, sized from the
/// stencil reach and the machine's cache hierarchy (docs/kernels.md).
///
/// The big-stencil regime is memory bound: one output row reads
/// `2*reach + 1` input rows, and at large epsilon that sliding window no
/// longer fits the L1d cache, so the FMA units stall on L2 (or DRAM) for
/// every run. The block plan restores locality by tiling the output rect
/// into column tiles narrow enough that the whole input window of a tile
/// stays cache resident while a block of output rows sweeps over it — each
/// input row loaded for output row `i` is then reused by every remaining
/// row of the block before eviction.
///
/// Geometry is derived once per stencil_plan from a probed cache model
/// (`probe_cache_geometry`, Linux sysfs with conservative fallbacks) and
/// can be overridden per solver through `kernel_tuning`
/// (`solver_config::tuning`, `dist_config::tuning`,
/// `api::session_options::kernel_tuning`). Every derived dimension is
/// clamped to documented bounds, so degenerate inputs (zero-size caches,
/// reaches wider than the cache) still yield a valid plan.
///
/// Blocking never changes results: blocks partition the rect, each DP is
/// written exactly once, and every backend accumulates a DP's stencil sum
/// in the same canonical order regardless of which block the DP landed in.
/// Block boundaries are aligned to absolute multiples of the block dims in
/// the rect's coordinate frame, so a rect split into strips (the
/// distributed solver's fine strips) sees the same boundaries as the
/// full-rect sweep instead of fighting them.
///

#include <cstdint>

namespace nlh::nonlocal {

/// Per-solver kernel tuning knobs. Zero means "derive": probe the cache
/// sizes, size the block dims from the stencil reach. Explicit values are
/// clamped to the documented bounds, never trusted blindly.
struct kernel_tuning {
  long long l1d_bytes = 0;  ///< L1 data cache budget source (0 = probe)
  long long l2_bytes = 0;   ///< L2 cache budget source (0 = probe)
  int row_block = 0;        ///< output rows per block (0 = derive)
  int col_tile = 0;         ///< output columns per tile (0 = derive)
};

/// What the machine probe (or the tuning override) reports.
struct cache_geometry {
  long long l1d_bytes = 0;
  long long l2_bytes = 0;
};

/// L1d/L2 sizes of the running machine: Linux sysfs
/// (/sys/devices/system/cpu/cpu0/cache) when available, else conservative
/// defaults (32 KiB / 1 MiB). Probed once per process and cached.
cache_geometry probe_cache_geometry();

/// Clamp bounds for derived and explicit block dims. The column tile cap is
/// also the size of the row_run backend's stack accumulator, so it is a
/// hard architectural limit, not just a heuristic. Tiles are always
/// multiples of kernel_min_col_tile (32 doubles = one full zmm×4 register
/// block), so no backend's vector body ever straddles a tile boundary.
inline constexpr int kernel_min_col_tile = 32;
inline constexpr int kernel_max_col_tile = 1024;
inline constexpr int kernel_min_row_block = 4;
inline constexpr int kernel_max_row_block = 65536;

/// Floor for *derived* tiles (explicit overrides may go down to
/// kernel_min_col_tile, which tests use to force many tiny blocks). The
/// AVX-512 backend's widest register block covers 96 columns; a derived
/// tile narrower than that would push every DP through the narrow body and
/// cost more in register-block efficiency than the cache model can win
/// back, so the model never chooses one.
inline constexpr int kernel_derived_min_col_tile = 96;

/// The blocked execution geometry of one stencil_plan.
struct block_geometry {
  int row_block = kernel_max_row_block;
  int col_tile = kernel_max_col_tile;
};

/// Derive the geometry for a stencil of the given reach under `tuning`,
/// using `cache` as the machine model. Deterministic and total: any inputs
/// (including negative or absurd ones) produce dims inside the clamp
/// bounds above, with col_tile a multiple of kernel_min_col_tile.
block_geometry compute_block_geometry(int reach, const kernel_tuning& tuning,
                                      const cache_geometry& cache);

/// Same, against the probed machine geometry (tuning cache fields, when
/// positive, override the probe).
block_geometry compute_block_geometry(int reach, const kernel_tuning& tuning = {});

/// Tuning that pins both dims to their maxima — a single block for every
/// rect up to kernel_max_col_tile columns, i.e. the pre-blocking execution
/// order. The bench guard measures blocked vs unblocked through this.
kernel_tuning kernel_tuning_unblocked();

/// Number of (row-block x column-tile) blocks the aligned iteration visits
/// for a rows x cols rect — the `kernel/blocks` observable. Counts the
/// absolute-aligned tiling: a rect whose origin is off-boundary gets a
/// leading partial block per dimension.
std::int64_t count_blocks(const block_geometry& g, int row_begin, int row_end,
                          int col_begin, int col_end);

/// Cumulative kernel execution observables one solver accumulates and
/// exports as `kernel/*` metrics (docs/kernels.md).
struct kernel_exec_stats {
  std::uint64_t applies = 0;  ///< apply_nonlocal_operator_raw calls
  std::uint64_t blocks = 0;   ///< blocks visited across those calls
  std::uint64_t dps = 0;      ///< DP updates performed
  double seconds = 0.0;       ///< wall seconds inside the kernel
  /// Effective throughput in million DP updates per second (0 when no
  /// kernel time has been measured yet).
  double mdps() const { return seconds > 0.0 ? dps / seconds / 1e6 : 0.0; }
};

}  // namespace nlh::nonlocal

///
/// \file apply_avx512.cpp
/// \brief Explicit AVX-512F nonlocal kernel. CMake compiles this TU — and
/// only this TU — with -mavx512f -mfma when NLH_ENABLE_AVX512 is ON and the
/// compiler accepts the flags; otherwise the portable build below forwards
/// to apply_simd, which keeps the avx512 enum value dispatchable on every
/// build (backend.cpp reports kernel_avx512_compiled_level() == 0 so the
/// runtime gate never *selects* it by default).
///
/// Hot-loop design (docs/kernels.md has the full derivation): the naive
/// per-entry form issues five load-port micro-ops per four FMAs — one
/// weight broadcast plus four mostly line-crossing 64-byte loads — which
/// caps the FMA units well below half rate. This kernel instead groups a
/// run's entries by alignment class (e mod 8): two entries eight apart read
/// input vectors shifted by exactly one zmm, so inside a class the loads
/// rotate through registers and each steady-state step costs one fresh load
/// plus one broadcast for eight (96-col body: twelve) FMAs. Every load this
/// kernel performs lies inside the span the naive kernel reads — there are
/// no speculative over-reads past the padded field.
///
/// Bitwise contract: a DP's accumulation chain is
///   for each run (plan order):
///     for e8 = 0 .. min(8, len)-1:          // alignment class
///       for e = e8, e8+8, e8+16, ...:       // ascending within class
///         acc = fma(w[e], u[dj+e], acc)
///   out = c * fnmadd(wsum, u_center, acc)
/// The 96-column body, the 32-column body and the scalar-FMA tail all walk
/// that same chain, so a DP's bits never depend on which body computed it,
/// on the rect shape, or on the block geometry — the partition-invariance
/// property the distributed solver relies on. Note the class ordering means
/// avx512 output is NOT bit-identical to the simd backend's natural-order
/// chain; cross-backend agreement is ULP-bounded like scalar-vs-simd.
///

#include <cstddef>

#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/kernel_detail.hpp"
#include "nonlocal/nonlocal_operator.hpp"

#if defined(__AVX512F__) && defined(__FMA__)
#define NLH_AVX512_LEVEL 1
#include <immintrin.h>
#else
#define NLH_AVX512_LEVEL 0
#endif

namespace nlh::nonlocal {

int kernel_avx512_compiled_level() { return NLH_AVX512_LEVEL; }

}  // namespace nlh::nonlocal

namespace nlh::nonlocal::kernel_detail {

#if NLH_AVX512_LEVEL == 1

namespace {

/// Tail columns with scalar FMA intrinsics walking the same per-DP chain as
/// the vector bodies: run order, then alignment class, then ascending
/// within the class. A DP's bits must not depend on whether it fell in a
/// vector body or the tail.
inline void run_formula_tail(const double* urow, double* orow, int stride,
                             const stencil_plan& plan, double c, double wsum,
                             int j_begin, int j_end) {
  const double* weights = plan.weights().data();
  for (int j = j_begin; j < j_end; ++j) {
    __m128d acc = _mm_setzero_pd();
    for (const auto& r : plan.runs()) {
      const double* s = urow + static_cast<std::ptrdiff_t>(r.di) * stride +
                        r.dj_begin + j;
      const double* w = weights + r.weight_index;
      for (int e8 = 0; e8 < 8 && e8 < r.length; ++e8)
        for (int e = e8; e < r.length; e += 8)
          acc = _mm_fmadd_sd(_mm_load_sd(w + e), _mm_load_sd(s + e), acc);
    }
    acc = _mm_fnmadd_sd(_mm_set_sd(wsum), _mm_load_sd(urow + j), acc);
    _mm_store_sd(orow + j, _mm_mul_sd(_mm_set_sd(c), acc));
  }
}

// One FMA step of the register-blocked bodies: broadcast one weight, feed
// every accumulator its rotated input vector.
#define NLH_AVX512_FMA12(we)                                                 \
  do {                                                                       \
    a0 = _mm512_fmadd_pd(we, V0, a0);                                        \
    a1 = _mm512_fmadd_pd(we, V1, a1);                                        \
    a2 = _mm512_fmadd_pd(we, V2, a2);                                        \
    a3 = _mm512_fmadd_pd(we, V3, a3);                                        \
    a4 = _mm512_fmadd_pd(we, V4, a4);                                        \
    a5 = _mm512_fmadd_pd(we, V5, a5);                                        \
    a6 = _mm512_fmadd_pd(we, V6, a6);                                        \
    a7 = _mm512_fmadd_pd(we, V7, a7);                                        \
    a8 = _mm512_fmadd_pd(we, V8, a8);                                        \
    a9 = _mm512_fmadd_pd(we, V9, a9);                                        \
    a10 = _mm512_fmadd_pd(we, V10, a10);                                     \
    a11 = _mm512_fmadd_pd(we, V11, a11);                                     \
  } while (0)

#define NLH_AVX512_FMA4(we)                                                  \
  do {                                                                       \
    a0 = _mm512_fmadd_pd(we, V0, a0);                                        \
    a1 = _mm512_fmadd_pd(we, V1, a1);                                        \
    a2 = _mm512_fmadd_pd(we, V2, a2);                                        \
    a3 = _mm512_fmadd_pd(we, V3, a3);                                        \
  } while (0)

// Finalize one zmm of outputs: out = c * (acc - wsum * u_center).
#define NLH_AVX512_STORE(acc, off)                                           \
  _mm512_storeu_pd(orow + j + (off),                                         \
                   _mm512_mul_pd(vc, _mm512_fnmadd_pd(                       \
                                         vwsum,                              \
                                         _mm512_loadu_pd(urow + j + (off)),  \
                                         (acc))))

}  // namespace

void apply_avx512(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect) {
  const block_geometry& g = plan.blocking();
  const int reach = plan.reach();
  const double wsum = plan.weight_sum();
  const double* weights = plan.weights().data();
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d vwsum = _mm512_set1_pd(wsum);

  for_each_block(rect, g, [&](const dp_rect& blk, const dp_rect* next) {
    if (next != nullptr) prefetch_block_lead(u, stride, ghost, *next, reach);
    for (int i = blk.row_begin; i < blk.row_end; ++i) {
      const double* urow =
          u + static_cast<std::size_t>(i + ghost) * stride + ghost;
      double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
      int j = blk.col_begin;
      // 96-column body: twelve zmm accumulators, twelve rotating input
      // registers. Steady state per entry: one fresh load + one broadcast
      // feed twelve FMAs.
      for (; j + 96 <= blk.col_end; j += 96) {
        __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
        __m512d a2 = _mm512_setzero_pd(), a3 = _mm512_setzero_pd();
        __m512d a4 = _mm512_setzero_pd(), a5 = _mm512_setzero_pd();
        __m512d a6 = _mm512_setzero_pd(), a7 = _mm512_setzero_pd();
        __m512d a8 = _mm512_setzero_pd(), a9 = _mm512_setzero_pd();
        __m512d a10 = _mm512_setzero_pd(), a11 = _mm512_setzero_pd();
        for (const auto& r : plan.runs()) {
          const double* srow = urow +
                               static_cast<std::ptrdiff_t>(r.di) * stride +
                               r.dj_begin + j;
          const double* w = weights + r.weight_index;
          const int len = r.length;
          for (int e8 = 0; e8 < 8 && e8 < len; ++e8) {
            const int nc = (len - e8 + 7) / 8;
            const double* s = srow + e8;
            __m512d V0 = _mm512_loadu_pd(s);
            __m512d V1 = _mm512_loadu_pd(s + 8);
            __m512d V2 = _mm512_loadu_pd(s + 16);
            __m512d V3 = _mm512_loadu_pd(s + 24);
            __m512d V4 = _mm512_loadu_pd(s + 32);
            __m512d V5 = _mm512_loadu_pd(s + 40);
            __m512d V6 = _mm512_loadu_pd(s + 48);
            __m512d V7 = _mm512_loadu_pd(s + 56);
            __m512d V8 = _mm512_loadu_pd(s + 64);
            __m512d V9 = _mm512_loadu_pd(s + 72);
            __m512d V10 = _mm512_loadu_pd(s + 80);
            __m512d V11 = _mm512_loadu_pd(s + 88);
            int t = 0;
            for (; t + 1 < nc; ++t) {
              const __m512d we = _mm512_set1_pd(w[e8 + 8 * t]);
              NLH_AVX512_FMA12(we);
              V0 = V1; V1 = V2; V2 = V3; V3 = V4; V4 = V5; V5 = V6;
              V6 = V7; V7 = V8; V8 = V9; V9 = V10; V10 = V11;
              V11 = _mm512_loadu_pd(s + 8 * (t + 12));
            }
            const __m512d we = _mm512_set1_pd(w[e8 + 8 * t]);
            NLH_AVX512_FMA12(we);
          }
        }
        NLH_AVX512_STORE(a0, 0);
        NLH_AVX512_STORE(a1, 8);
        NLH_AVX512_STORE(a2, 16);
        NLH_AVX512_STORE(a3, 24);
        NLH_AVX512_STORE(a4, 32);
        NLH_AVX512_STORE(a5, 40);
        NLH_AVX512_STORE(a6, 48);
        NLH_AVX512_STORE(a7, 56);
        NLH_AVX512_STORE(a8, 64);
        NLH_AVX512_STORE(a9, 72);
        NLH_AVX512_STORE(a10, 80);
        NLH_AVX512_STORE(a11, 88);
      }
      // 32-column body for the tile remainder (tiles are multiples of 32).
      for (; j + 32 <= blk.col_end; j += 32) {
        __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
        __m512d a2 = _mm512_setzero_pd(), a3 = _mm512_setzero_pd();
        for (const auto& r : plan.runs()) {
          const double* srow = urow +
                               static_cast<std::ptrdiff_t>(r.di) * stride +
                               r.dj_begin + j;
          const double* w = weights + r.weight_index;
          const int len = r.length;
          for (int e8 = 0; e8 < 8 && e8 < len; ++e8) {
            const int nc = (len - e8 + 7) / 8;
            const double* s = srow + e8;
            __m512d V0 = _mm512_loadu_pd(s);
            __m512d V1 = _mm512_loadu_pd(s + 8);
            __m512d V2 = _mm512_loadu_pd(s + 16);
            __m512d V3 = _mm512_loadu_pd(s + 24);
            int t = 0;
            for (; t + 1 < nc; ++t) {
              const __m512d we = _mm512_set1_pd(w[e8 + 8 * t]);
              NLH_AVX512_FMA4(we);
              V0 = V1; V1 = V2; V2 = V3;
              V3 = _mm512_loadu_pd(s + 8 * (t + 4));
            }
            const __m512d we = _mm512_set1_pd(w[e8 + 8 * t]);
            NLH_AVX512_FMA4(we);
          }
        }
        NLH_AVX512_STORE(a0, 0);
        NLH_AVX512_STORE(a1, 8);
        NLH_AVX512_STORE(a2, 16);
        NLH_AVX512_STORE(a3, 24);
      }
      run_formula_tail(urow, orow, stride, plan, c, wsum, j, blk.col_end);
    }
  });
}

#undef NLH_AVX512_FMA12
#undef NLH_AVX512_FMA4
#undef NLH_AVX512_STORE

#else

void apply_avx512(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect) {
  apply_simd(u, out, stride, ghost, plan, c, rect);
}

#endif

}  // namespace nlh::nonlocal::kernel_detail

///
/// \file apply.cpp
/// \brief Scalar (entry-list) and row-run implementations of the nonlocal
/// operator inner loop. The explicit-SIMD variant lives in apply_simd.cpp so
/// it alone is compiled with the vector instruction flags.
///

#include "nonlocal/kernel/kernel_detail.hpp"

#include <algorithm>
#include <cstddef>

#include "nonlocal/nonlocal_operator.hpp"

namespace nlh::nonlocal::kernel_detail {

void apply_scalar(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect) {
  const auto& entries = plan.entries();
  for (int i = rect.row_begin; i < rect.row_end; ++i) {
    const double* urow = u + static_cast<std::size_t>(i + ghost) * stride + ghost;
    double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const double ui = urow[j];
      double acc = 0.0;
      for (const auto& e : entries)
        acc += e.w * (urow[static_cast<std::ptrdiff_t>(e.di) * stride + j + e.dj] - ui);
      orow[j] = c * acc;
    }
  }
}

void apply_row_run(const double* u, double* out, int stride, int ghost,
                   const stencil_plan& plan, double c, const dp_rect& rect) {
  // Walk the plan's blocked geometry: the column tile keeps the accumulator
  // cache- (and, once the compiler vectorizes the unit-stride k loop,
  // register-) resident while the whole stencil streams over it, and the
  // row block keeps the tile's sliding input window in cache across output
  // rows. The tile width comes from the cache model (block_plan.hpp), not a
  // compile-time constant; kernel_max_col_tile bounds the stack buffer.
  const block_geometry& g = plan.blocking();
  const int reach = plan.reach();
  const double wsum = plan.weight_sum();
  const double* weights = plan.weights().data();
  double acc[kernel_max_col_tile];

  for_each_block(rect, g, [&](const dp_rect& blk, const dp_rect* next) {
    if (next != nullptr) prefetch_block_lead(u, stride, ghost, *next, reach);
    for (int i = blk.row_begin; i < blk.row_end; ++i) {
      const double* urow = u + static_cast<std::size_t>(i + ghost) * stride + ghost;
      double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
      const int jb = blk.col_begin;
      const int len = blk.col_end - blk.col_begin;
      for (int k = 0; k < len; ++k) acc[k] = 0.0;
      for (const auto& r : plan.runs()) {
        const double* srow =
            urow + static_cast<std::ptrdiff_t>(r.di) * stride + r.dj_begin + jb;
        const double* w = weights + r.weight_index;
        for (int e = 0; e < r.length; ++e) {
          const double we = w[e];
          const double* s = srow + e;
          for (int k = 0; k < len; ++k) acc[k] += we * s[k];
        }
      }
      for (int k = 0; k < len; ++k)
        orow[jb + k] = c * (acc[k] - wsum * urow[jb + k]);
    }
  });
}

}  // namespace nlh::nonlocal::kernel_detail

#pragma once
///
/// \file backend.hpp
/// \brief Kernel backend enum and process-wide backend selection for the
/// nonlocal operator hot loop.
///
/// Four implementations sit behind the single apply_nonlocal_operator_raw
/// entry point:
///  - `scalar`  — the original entry-list gather loop (reference baseline);
///  - `row_run` — unit-stride row-run loops the compiler auto-vectorizes;
///  - `simd`    — explicit AVX2/SSE2 intrinsics (falls back to row_run when
///                the binary or the CPU lacks the instructions);
///  - `avx512`  — explicit AVX-512F intrinsics in their own TU (falls back
///                to `simd`, then `row_run`, along the same runtime gate).
///
/// The process *default* is resolved once per process: the (deprecated,
/// warned-once) NLH_KERNEL_BACKEND environment variable wins, then the
/// CMake-configured NLH_KERNEL_DEFAULT_BACKEND_NAME, then the best
/// available backend. The default is only a fallback: each solver owns a
/// stencil_plan that may pin its own backend (per-session selection via
/// api::session_options::kernel_backend), so sessions with different
/// backends coexist in one process. Serial and distributed runs keep
/// their bitwise-agreement property as long as they share a backend.
///

#include <optional>
#include <string>

namespace nlh::nonlocal {

/// Selectable implementations of the nonlocal operator inner loop.
enum class kernel_backend {
  scalar,   ///< entry-list gather loop (the measured baseline)
  row_run,  ///< compiled runs, auto-vectorizable unit-stride FMAs
  simd,     ///< explicit AVX2/SSE2 path (row_run fallback if unavailable)
  avx512,   ///< explicit AVX-512F path (simd/row_run fallback if unavailable)
};

/// Lower-case backend name ("scalar", "row_run", "simd", "avx512").
const char* kernel_backend_name(kernel_backend b);

/// Parse a backend name; nullopt on anything unrecognized.
std::optional<kernel_backend> parse_kernel_backend(const std::string& name);

/// True when the simd backend would actually run intrinsics: the simd
/// translation unit was compiled with vector instructions AND (for AVX2)
/// the running CPU supports them.
bool kernel_simd_available();

/// Instruction level baked into the simd translation unit:
/// 0 = portable fallback, 1 = SSE2, 2 = AVX2+FMA.
int kernel_simd_compiled_level();

/// True when the avx512 backend would actually run AVX-512 intrinsics: the
/// avx512 translation unit was compiled with them (NLH_ENABLE_AVX512) AND
/// the running CPU reports avx512f.
bool kernel_avx512_available();

/// Instruction level baked into the avx512 translation unit:
/// 0 = forwarding fallback, 1 = AVX-512F.
int kernel_avx512_compiled_level();

/// Process-wide default backend — what an *unpinned* stencil_plan resolves
/// to at dispatch time (see stencil_plan::backend()).
kernel_backend kernel_default_backend();

/// Override the process-wide default (e.g. from bench/test CLI). Requests
/// for `simd` when it is unavailable are honored at dispatch time by the
/// row_run fallback, so the setting is always safe.
void set_kernel_default_backend(kernel_backend b);

}  // namespace nlh::nonlocal

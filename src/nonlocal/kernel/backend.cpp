#include "nonlocal/kernel/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nlh::nonlocal {

namespace {

/// Best backend this process can actually run.
kernel_backend best_available_backend() {
  if (kernel_avx512_available()) return kernel_backend::avx512;
  return kernel_simd_available() ? kernel_backend::simd : kernel_backend::row_run;
}

/// Env var > CMake default > best available. Resolved once, then cached in
/// the atomic below.
kernel_backend resolve_initial_backend() {
  if (const char* env = std::getenv("NLH_KERNEL_BACKEND")) {
    if (const auto parsed = parse_kernel_backend(env)) {
      // Deliberately once per process (this resolver runs exactly once,
      // from the function-local static below): the env var is a deprecated
      // side channel; per-session selection goes through
      // api::session_options::kernel_backend (docs/kernels.md).
      std::fprintf(stderr,
                   "nlh: NLH_KERNEL_BACKEND is deprecated; it still sets the "
                   "process default (\"%s\") but per-session code should pass "
                   "session_options::kernel_backend instead\n",
                   env);
      return *parsed;
    }
    std::fprintf(stderr,
                 "nlh: ignoring invalid NLH_KERNEL_BACKEND=\"%s\" "
                 "(expected scalar, row_run, simd or avx512)\n",
                 env);
  }
#ifdef NLH_KERNEL_DEFAULT_BACKEND_NAME
  if (const auto parsed = parse_kernel_backend(NLH_KERNEL_DEFAULT_BACKEND_NAME))
    return *parsed;
  std::fprintf(stderr,
               "nlh: ignoring invalid NLH_KERNEL_DEFAULT_BACKEND=\"%s\"\n",
               NLH_KERNEL_DEFAULT_BACKEND_NAME);
#endif
  return best_available_backend();
}

std::atomic<kernel_backend>& default_backend_slot() {
  static std::atomic<kernel_backend> slot{resolve_initial_backend()};
  return slot;
}

}  // namespace

const char* kernel_backend_name(kernel_backend b) {
  switch (b) {
    case kernel_backend::scalar: return "scalar";
    case kernel_backend::row_run: return "row_run";
    case kernel_backend::simd: return "simd";
    case kernel_backend::avx512: return "avx512";
  }
  return "unknown";
}

std::optional<kernel_backend> parse_kernel_backend(const std::string& name) {
  if (name == "scalar") return kernel_backend::scalar;
  if (name == "row_run") return kernel_backend::row_run;
  if (name == "simd") return kernel_backend::simd;
  if (name == "avx512") return kernel_backend::avx512;
  return std::nullopt;
}

bool kernel_simd_available() {
  const int level = kernel_simd_compiled_level();
  if (level == 0) return false;
  if (level == 1) return true;  // SSE2 is part of the baseline target.
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  // AVX2+FMA was force-enabled for the simd TU only; gate on the CPU.
  // (level == 2 implies an x86 build, but the arch guard keeps the x86-only
  // builtin out of non-x86 compilations of this TU.)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool kernel_avx512_available() {
  if (kernel_avx512_compiled_level() == 0) return false;
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  // AVX-512F was force-enabled for the avx512 TU only; gate on the CPU.
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

kernel_backend kernel_default_backend() {
  return default_backend_slot().load(std::memory_order_relaxed);
}

void set_kernel_default_backend(kernel_backend b) {
  default_backend_slot().store(b, std::memory_order_relaxed);
}

}  // namespace nlh::nonlocal

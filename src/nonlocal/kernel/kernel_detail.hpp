#pragma once
///
/// \file kernel_detail.hpp
/// \brief Internal per-backend kernel entry points; callers go through
/// apply_nonlocal_operator_raw, which validates and dispatches.
///
/// Every implementation computes, for each DP (i, j) of `rect`,
///   out = c * (sum_e w_e * u[neighbor_e] - weight_sum * u[i,j])
/// over the plan's canonical entry order. scalar keeps the original
/// per-entry `w * (u_nb - u_i)` form; row_run/simd hoist the center term
/// via the weight sum, which changes rounding but not the entry order
/// (agreement is ULP-level, asserted by kernel_test).
///

#include "nonlocal/kernel/stencil_plan.hpp"

namespace nlh::nonlocal {
struct dp_rect;
}

namespace nlh::nonlocal::kernel_detail {

/// Entry-list gather loop — bitwise identical to the legacy stencil kernel.
void apply_scalar(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect);

/// Unit-stride row-run loops; plain C++ the compiler auto-vectorizes.
void apply_row_run(const double* u, double* out, int stride, int ghost,
                   const stencil_plan& plan, double c, const dp_rect& rect);

/// Explicit AVX2/SSE2 intrinsics (compiled in its own TU with the vector
/// flags); the portable build of that TU forwards to apply_row_run. Callers
/// must check kernel_simd_available() before selecting this on AVX2 builds.
void apply_simd(const double* u, double* out, int stride, int ghost,
                const stencil_plan& plan, double c, const dp_rect& rect);

}  // namespace nlh::nonlocal::kernel_detail

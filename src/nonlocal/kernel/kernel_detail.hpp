#pragma once
///
/// \file kernel_detail.hpp
/// \brief Internal per-backend kernel entry points; callers go through
/// apply_nonlocal_operator_raw, which validates and dispatches.
///
/// Every implementation computes, for each DP (i, j) of `rect`,
///   out = c * (sum_e w_e * u[neighbor_e] - weight_sum * u[i,j])
/// over the plan's canonical entry order. scalar keeps the original
/// per-entry `w * (u_nb - u_i)` form; row_run/simd/avx512 hoist the center
/// term via the weight sum, which changes rounding but not the entry order
/// (agreement is ULP-level, asserted by kernel_test).
///
/// All vectorized backends execute the plan's blocked geometry through
/// `for_each_block` below: the rect is tiled into (row-block x column-tile)
/// blocks whose boundaries sit at absolute multiples of the block dims, so
/// a DP's block is a function of its coordinates alone — any decomposition
/// of a rect into sub-rects (the distributed solver's strips) walks the
/// same boundaries. Since each DP's stencil sum is accumulated in the same
/// canonical order whichever block it lands in, blocking is bitwise
/// invisible (kernel_test asserts blocked == unblocked per backend).
///

#include <algorithm>

#include "nonlocal/kernel/stencil_plan.hpp"

namespace nlh::nonlocal {
struct dp_rect;
}

namespace nlh::nonlocal::kernel_detail {

/// Entry-list gather loop — bitwise identical to the legacy stencil kernel.
void apply_scalar(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect);

/// Unit-stride row-run loops; plain C++ the compiler auto-vectorizes. The
/// column tile is the plan's blocked geometry (one tuning source shared
/// with the SIMD paths), bounded by kernel_max_col_tile for the stack
/// accumulator.
void apply_row_run(const double* u, double* out, int stride, int ghost,
                   const stencil_plan& plan, double c, const dp_rect& rect);

/// Explicit AVX2/SSE2 intrinsics (compiled in its own TU with the vector
/// flags); the portable build of that TU forwards to apply_row_run. Callers
/// must check kernel_simd_available() before selecting this on AVX2 builds.
void apply_simd(const double* u, double* out, int stride, int ghost,
                const stencil_plan& plan, double c, const dp_rect& rect);

/// Explicit AVX-512F intrinsics (own TU, NLH_ENABLE_AVX512); the portable
/// build forwards to apply_simd. Callers must check
/// kernel_avx512_available() before selecting this on AVX-512 builds.
void apply_avx512(const double* u, double* out, int stride, int ghost,
                  const stencil_plan& plan, double c, const dp_rect& rect);

/// Visit the blocks of `rect` under geometry `g` in execution order: row
/// blocks outer, column tiles inner. Boundaries are aligned to absolute
/// multiples of the dims (see file comment), so the leading block of each
/// dimension may be partial. `fn(block, next)` receives the current block
/// and a pointer to the block that will execute next (null for the last) —
/// the SIMD backends prefetch the next block's leading input rows through
/// it. Templated on the rect type so this header can keep dp_rect
/// incomplete; instantiations live in the backend TUs.
template <typename Rect, typename Fn>
inline void for_each_block(const Rect& rect, const block_geometry& g, Fn&& fn) {
  const auto next_boundary = [](int pos, int dim) {
    return (pos / dim + 1) * dim;  // pos >= 0: rects index the interior
  };
  Rect cur{};
  bool have_cur = false;
  for (int rb = rect.row_begin; rb < rect.row_end;) {
    const int re = std::min(rect.row_end, next_boundary(rb, g.row_block));
    for (int cb = rect.col_begin; cb < rect.col_end;) {
      const int ce = std::min(rect.col_end, next_boundary(cb, g.col_tile));
      Rect blk{};
      blk.row_begin = rb;
      blk.row_end = re;
      blk.col_begin = cb;
      blk.col_end = ce;
      if (have_cur) fn(cur, &blk);
      cur = blk;
      have_cur = true;
      cb = ce;
    }
    rb = re;
  }
  if (have_cur) fn(cur, static_cast<const Rect*>(nullptr));
}

/// Software-prefetch the leading input rows of the next block's sliding
/// window (read-only, low temporal locality): the hardware prefetcher
/// covers the unit-stride streaming inside a block, but the jump to a new
/// column tile starts cold — warming its first rows hides that latency
/// behind the current block's arithmetic. No-op on compilers without
/// __builtin_prefetch.
template <typename Rect>
inline void prefetch_block_lead(const double* u, int stride, int ghost,
                                const Rect& next, int reach) {
#if defined(__GNUC__) || defined(__clang__)
  constexpr int lead_rows = 4;
  const int r0 = next.row_begin - reach;
  const int r1 = std::min(r0 + lead_rows, next.row_end + reach);
  const int c0 = next.col_begin - reach;
  const int c1 = next.col_end + reach;
  for (int i = r0; i < r1; ++i) {
    const double* row =
        u + static_cast<std::size_t>(i + ghost) * stride + ghost;
    for (int j = c0; j < c1; j += 8)  // one touch per 64-byte line
      __builtin_prefetch(row + j, 0, 1);
  }
#else
  (void)u;
  (void)stride;
  (void)ghost;
  (void)next;
  (void)reach;
#endif
}

}  // namespace nlh::nonlocal::kernel_detail

///
/// \file apply_simd.cpp
/// \brief Explicit-SIMD nonlocal kernel: AVX2+FMA when this TU is compiled
/// with the vector flags (CMake adds -mavx2 -mfma here and nowhere else),
/// SSE2 on the plain x86-64 baseline, row_run forwarding elsewhere.
///
/// Only this translation unit may contain AVX2 instructions; dispatch calls
/// apply_simd solely after kernel_simd_available() confirms the running CPU
/// supports what was compiled in.
///

#include <cstddef>

#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/kernel_detail.hpp"
#include "nonlocal/nonlocal_operator.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define NLH_SIMD_LEVEL 2
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define NLH_SIMD_LEVEL 1
#include <emmintrin.h>
#else
#define NLH_SIMD_LEVEL 0
#endif

namespace nlh::nonlocal {

int kernel_simd_compiled_level() { return NLH_SIMD_LEVEL; }

}  // namespace nlh::nonlocal

namespace nlh::nonlocal::kernel_detail {

#if NLH_SIMD_LEVEL == 2

namespace {

/// Tail columns, one at a time, with *scalar FMA intrinsics* mirroring the
/// vector body's fmadd/fnmadd/mul sequence exactly. A DP's bits must not
/// depend on whether it fell in the 16-wide body or the tail — serial rows
/// and narrow SD rects slice the same DP into different positions, and the
/// per-backend bitwise serial/distributed guarantee (docs/kernels.md) hinges
/// on the rounding being identical either way. A plain C++ tail would only
/// match when the compiler happens to contract mul+add into FMAs.
inline void run_formula_tail(const double* urow, double* orow, int stride,
                             const stencil_plan& plan, double c, double wsum,
                             int j_begin, int j_end) {
  const double* weights = plan.weights().data();
  for (int j = j_begin; j < j_end; ++j) {
    __m128d acc = _mm_setzero_pd();
    for (const auto& r : plan.runs()) {
      const double* s = urow + static_cast<std::ptrdiff_t>(r.di) * stride +
                        r.dj_begin + j;
      const double* w = weights + r.weight_index;
      for (int e = 0; e < r.length; ++e)
        acc = _mm_fmadd_sd(_mm_load_sd(w + e), _mm_load_sd(s + e), acc);
    }
    acc = _mm_fnmadd_sd(_mm_set_sd(wsum), _mm_load_sd(urow + j), acc);
    _mm_store_sd(orow + j, _mm_mul_sd(_mm_set_sd(c), acc));
  }
}

}  // namespace

#elif NLH_SIMD_LEVEL == 1

namespace {

/// SSE2 tail: plain mul+add, bitwise identical to the vector body's
/// mul_pd/add_pd lanes on the baseline target (no FMA exists to contract
/// into, so the rounding sequence is the same by construction).
inline void run_formula_tail(const double* urow, double* orow, int stride,
                             const stencil_plan& plan, double c, double wsum,
                             int j_begin, int j_end) {
  const double* weights = plan.weights().data();
  for (int j = j_begin; j < j_end; ++j) {
    double acc = 0.0;
    for (const auto& r : plan.runs()) {
      const double* s = urow + static_cast<std::ptrdiff_t>(r.di) * stride +
                        r.dj_begin + j;
      const double* w = weights + r.weight_index;
      for (int e = 0; e < r.length; ++e) acc += w[e] * s[e];
    }
    orow[j] = c * (acc - wsum * urow[j]);
  }
}

}  // namespace

#endif

#if NLH_SIMD_LEVEL == 2

void apply_simd(const double* u, double* out, int stride, int ghost,
                const stencil_plan& plan, double c, const dp_rect& rect) {
  // 16 doubles per iteration: four ymm accumulators stay in registers for
  // the entire stencil sweep, so the only streaming traffic is the loads.
  // The sweep walks the plan's blocked geometry so the column tile's
  // sliding input window stays cache-resident across the row block; which
  // block (or body/tail lane) a DP lands in never changes its bits, because
  // the scalar-FMA tail mirrors the vector body's rounding exactly.
  const block_geometry& g = plan.blocking();
  const int reach = plan.reach();
  const double wsum = plan.weight_sum();
  const double* weights = plan.weights().data();
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vwsum = _mm256_set1_pd(wsum);

  for_each_block(rect, g, [&](const dp_rect& blk, const dp_rect* next) {
    if (next != nullptr) prefetch_block_lead(u, stride, ghost, *next, reach);
  for (int i = blk.row_begin; i < blk.row_end; ++i) {
    const double* urow = u + static_cast<std::size_t>(i + ghost) * stride + ghost;
    double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
    int j = blk.col_begin;
    for (; j + 16 <= blk.col_end; j += 16) {
      __m256d a0 = _mm256_setzero_pd();
      __m256d a1 = _mm256_setzero_pd();
      __m256d a2 = _mm256_setzero_pd();
      __m256d a3 = _mm256_setzero_pd();
      for (const auto& r : plan.runs()) {
        const double* srow = urow + static_cast<std::ptrdiff_t>(r.di) * stride +
                             r.dj_begin + j;
        const double* w = weights + r.weight_index;
        for (int e = 0; e < r.length; ++e) {
          const __m256d we = _mm256_set1_pd(w[e]);
          const double* s = srow + e;
          a0 = _mm256_fmadd_pd(we, _mm256_loadu_pd(s), a0);
          a1 = _mm256_fmadd_pd(we, _mm256_loadu_pd(s + 4), a1);
          a2 = _mm256_fmadd_pd(we, _mm256_loadu_pd(s + 8), a2);
          a3 = _mm256_fmadd_pd(we, _mm256_loadu_pd(s + 12), a3);
        }
      }
      // out = c * (acc - wsum * u_center)
      a0 = _mm256_fnmadd_pd(vwsum, _mm256_loadu_pd(urow + j), a0);
      a1 = _mm256_fnmadd_pd(vwsum, _mm256_loadu_pd(urow + j + 4), a1);
      a2 = _mm256_fnmadd_pd(vwsum, _mm256_loadu_pd(urow + j + 8), a2);
      a3 = _mm256_fnmadd_pd(vwsum, _mm256_loadu_pd(urow + j + 12), a3);
      _mm256_storeu_pd(orow + j, _mm256_mul_pd(vc, a0));
      _mm256_storeu_pd(orow + j + 4, _mm256_mul_pd(vc, a1));
      _mm256_storeu_pd(orow + j + 8, _mm256_mul_pd(vc, a2));
      _mm256_storeu_pd(orow + j + 12, _mm256_mul_pd(vc, a3));
    }
    run_formula_tail(urow, orow, stride, plan, c, wsum, j, blk.col_end);
  }
  });
}

#elif NLH_SIMD_LEVEL == 1

void apply_simd(const double* u, double* out, int stride, int ghost,
                const stencil_plan& plan, double c, const dp_rect& rect) {
  // SSE2: 8 doubles per iteration in four xmm accumulators (no FMA). Walks
  // the same blocked geometry as the AVX2 path; the mul+add tail matches
  // the vector lanes by construction, so blocking stays bitwise invisible.
  const block_geometry& g = plan.blocking();
  const int reach = plan.reach();
  const double wsum = plan.weight_sum();
  const double* weights = plan.weights().data();
  const __m128d vc = _mm_set1_pd(c);
  const __m128d vwsum = _mm_set1_pd(wsum);

  for_each_block(rect, g, [&](const dp_rect& blk, const dp_rect* next) {
    if (next != nullptr) prefetch_block_lead(u, stride, ghost, *next, reach);
  for (int i = blk.row_begin; i < blk.row_end; ++i) {
    const double* urow = u + static_cast<std::size_t>(i + ghost) * stride + ghost;
    double* orow = out + static_cast<std::size_t>(i + ghost) * stride + ghost;
    int j = blk.col_begin;
    for (; j + 8 <= blk.col_end; j += 8) {
      __m128d a0 = _mm_setzero_pd();
      __m128d a1 = _mm_setzero_pd();
      __m128d a2 = _mm_setzero_pd();
      __m128d a3 = _mm_setzero_pd();
      for (const auto& r : plan.runs()) {
        const double* srow = urow + static_cast<std::ptrdiff_t>(r.di) * stride +
                             r.dj_begin + j;
        const double* w = weights + r.weight_index;
        for (int e = 0; e < r.length; ++e) {
          const __m128d we = _mm_set1_pd(w[e]);
          const double* s = srow + e;
          a0 = _mm_add_pd(a0, _mm_mul_pd(we, _mm_loadu_pd(s)));
          a1 = _mm_add_pd(a1, _mm_mul_pd(we, _mm_loadu_pd(s + 2)));
          a2 = _mm_add_pd(a2, _mm_mul_pd(we, _mm_loadu_pd(s + 4)));
          a3 = _mm_add_pd(a3, _mm_mul_pd(we, _mm_loadu_pd(s + 6)));
        }
      }
      a0 = _mm_sub_pd(a0, _mm_mul_pd(vwsum, _mm_loadu_pd(urow + j)));
      a1 = _mm_sub_pd(a1, _mm_mul_pd(vwsum, _mm_loadu_pd(urow + j + 2)));
      a2 = _mm_sub_pd(a2, _mm_mul_pd(vwsum, _mm_loadu_pd(urow + j + 4)));
      a3 = _mm_sub_pd(a3, _mm_mul_pd(vwsum, _mm_loadu_pd(urow + j + 6)));
      _mm_storeu_pd(orow + j, _mm_mul_pd(vc, a0));
      _mm_storeu_pd(orow + j + 2, _mm_mul_pd(vc, a1));
      _mm_storeu_pd(orow + j + 4, _mm_mul_pd(vc, a2));
      _mm_storeu_pd(orow + j + 6, _mm_mul_pd(vc, a3));
    }
    run_formula_tail(urow, orow, stride, plan, c, wsum, j, blk.col_end);
  }
  });
}

#else

void apply_simd(const double* u, double* out, int stride, int ghost,
                const stencil_plan& plan, double c, const dp_rect& rect) {
  apply_row_run(u, out, stride, ghost, plan, c, rect);
}

#endif

}  // namespace nlh::nonlocal::kernel_detail

#include "nonlocal/kernel/stencil_plan.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace nlh::nonlocal {

stencil_plan::stencil_plan(const stencil& st)
    : entries_(st.entries()),
      weight_sum_(st.weight_sum()),
      reach_(st.reach()),
      blocking_(compute_block_geometry(st.reach())) {
  NLH_ASSERT_MSG(
      std::is_sorted(entries_.begin(), entries_.end(), stencil_entry_less),
      "stencil_plan: stencil entries must be canonical row-major order");

  weights_.reserve(entries_.size());
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const auto& e = entries_[k];
    if (!runs_.empty() && runs_.back().di == e.di &&
        runs_.back().dj_begin + runs_.back().length == e.dj) {
      ++runs_.back().length;
    } else {
      runs_.push_back(stencil_run{e.di, e.dj, 1, static_cast<int>(k)});
    }
    weights_.push_back(e.w);
  }
}

}  // namespace nlh::nonlocal

#pragma once
///
/// \file stencil_plan.hpp
/// \brief Compiled, vectorization-friendly form of the epsilon-ball stencil:
/// per-`di` contiguous `dj` runs with structure-of-arrays weights.
///
/// The raw stencil is a flat `(di, dj, w)` entry list; applying it per output
/// DP gathers one strided value per entry, which defeats auto-vectorization.
/// On a uniform grid the canonical (row-major) entry order makes every row of
/// the epsilon ball a handful of maximal runs of *consecutive* `dj` — one run
/// per `di` except the center row, which splits around the excluded (0,0)
/// entry. Compiling the stencil into those runs once per problem turns the
/// hot loop into unit-stride fused multiply-adds over contiguous row
/// segments (see docs/kernels.md for the transformation and its FP
/// consequences).
///
/// The plan is self-contained: it copies the canonical entry list (the
/// scalar baseline walks it), so it never dangles on the source stencil.
///
/// The plan is also the unit of backend ownership: a plan can be *pinned*
/// to one kernel_backend, and the dispatching entry point
/// (`apply_nonlocal_operator_raw` without an explicit backend argument)
/// resolves through the plan. Unpinned plans follow the process default,
/// which preserves the historical behaviour; pinned plans are what lets
/// two sessions with different backends coexist in one process
/// (docs/kernels.md).
///
/// The plan also owns the **blocked execution geometry** (block_plan.hpp):
/// at construction it derives the (row-block x column-tile) dims from the
/// stencil reach and the probed cache hierarchy; `set_tuning` re-derives
/// them under per-solver overrides. Every backend iterates the same
/// geometry, so row_run and the SIMD paths share one tuning source.
///

#include <cstddef>
#include <optional>
#include <vector>

#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/block_plan.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

/// One maximal run of stencil entries sharing row offset `di` whose column
/// offsets are the consecutive range [dj_begin, dj_begin + length).
struct stencil_run {
  int di;            ///< row offset of every entry in the run
  int dj_begin;      ///< first column offset
  int length;        ///< number of consecutive entries
  int weight_index;  ///< offset of the run's first weight in weights()
};

class stencil_plan {
 public:
  /// Compile `st` (whose entries are canonical row-major order) into runs.
  explicit stencil_plan(const stencil& st);

  /// Maximal consecutive-`dj` runs, ordered row-major by (di, dj_begin).
  const std::vector<stencil_run>& runs() const { return runs_; }

  /// Flat per-entry weights in canonical entry order; a run's weights are
  /// the contiguous slice [weight_index, weight_index + length).
  const std::vector<double>& weights() const { return weights_; }

  /// Canonical entry list (row-major by di, then dj) — the scalar baseline
  /// backend iterates this exactly like the original entry-list kernel.
  const std::vector<stencil_entry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }

  /// Sum of weights; identical to stencil::weight_sum(), so
  /// stable_dt(c, plan) == stable_dt(c, stencil).
  double weight_sum() const { return weight_sum_; }

  /// Maximum |di| / |dj| over entries — the ghost width actually needed.
  int reach() const { return reach_; }

  /// Pin this plan to `b`: every dispatch through the plan (the
  /// no-backend-argument apply overloads) uses `b` regardless of the
  /// process default. Owning solvers call this once at construction.
  void set_backend(kernel_backend b) { backend_ = b; }
  /// Back to following the process default (the construction state).
  void clear_backend() { backend_.reset(); }
  bool has_pinned_backend() const { return backend_.has_value(); }

  /// The backend a dispatch through this plan resolves to: the pinned one,
  /// else the process default at call time (so unpinned plans keep tracking
  /// set_kernel_default_backend / NLH_KERNEL_BACKEND changes).
  kernel_backend backend() const {
    return backend_ ? *backend_ : kernel_default_backend();
  }

  /// Re-derive the blocked execution geometry under `t` (see
  /// block_plan.hpp). Owning solvers call this once at construction, before
  /// the first apply; it is not synchronized against concurrent dispatch.
  void set_tuning(const kernel_tuning& t) {
    tuning_ = t;
    blocking_ = compute_block_geometry(reach_, tuning_);
  }
  const kernel_tuning& tuning() const { return tuning_; }

  /// The (row-block x column-tile) geometry every backend's blocked loop
  /// iterates for this plan.
  const block_geometry& blocking() const { return blocking_; }

 private:
  std::vector<stencil_entry> entries_;
  std::vector<stencil_run> runs_;
  std::vector<double> weights_;
  double weight_sum_ = 0.0;
  int reach_ = 0;
  std::optional<kernel_backend> backend_;
  kernel_tuning tuning_;
  block_geometry blocking_;
};

/// Largest stable forward-Euler timestep for scaling constant c (same bound
/// as the stencil overload; the plan preserves weight_sum exactly).
inline double stable_dt(double c, const stencil_plan& plan) {
  const double denom = c * plan.weight_sum();
  NLH_ASSERT(denom > 0.0);
  return 1.0 / denom;
}

}  // namespace nlh::nonlocal

///
/// \file block_plan.cpp
/// \brief Cache probe and block-geometry derivation for the blocked kernel
/// pipeline (see block_plan.hpp and docs/kernels.md).
///

#include "nonlocal/kernel/block_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace nlh::nonlocal {

namespace {

/// Conservative fallbacks when the machine cannot be probed: small enough
/// to be safe on any x86-64/ARM server of the last 15 years.
constexpr long long fallback_l1d = 32ll * 1024;
constexpr long long fallback_l2 = 1ll * 1024 * 1024;

/// Sanity clamp for probed or user-supplied cache sizes: below 4 KiB the
/// model would degenerate (every tile at the minimum), above 1 GiB the
/// "cache" is not a cache. Applied uniformly so a hostile override cannot
/// push the geometry outside its bounds.
long long clamp_cache_bytes(long long bytes, long long fallback) {
  if (bytes <= 0) return fallback;
  return std::clamp(bytes, 4ll * 1024, 1ll * 1024 * 1024 * 1024);
}

/// Parse one sysfs cache size file ("48K", "2048K", "32M"...). Returns 0 on
/// any malformed content.
long long read_sysfs_size(const char* path) {
  std::FILE* fp = std::fopen(path, "r");
  if (!fp) return 0;
  char buf[64] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, fp);
  std::fclose(fp);
  if (got == 0) return 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (v <= 0 || end == buf) return 0;
  if (*end == 'K') return v * 1024;
  if (*end == 'M') return v * 1024 * 1024;
  if (*end == 'G') return v * 1024 * 1024 * 1024;
  return v;
}

cache_geometry probe_once() {
  cache_geometry g{fallback_l1d, fallback_l2};
#if defined(__linux__)
  // Walk cpu0's cache indices; index layout varies across kernels, so match
  // on (level, type) instead of hardcoding index numbers.
  for (int idx = 0; idx < 8; ++idx) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu0/cache/index%d/level", idx);
    std::FILE* fp = std::fopen(path, "r");
    if (!fp) continue;
    int level = 0;
    const bool have_level = std::fscanf(fp, "%d", &level) == 1;
    std::fclose(fp);
    if (!have_level) continue;

    char type[32] = {};
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu0/cache/index%d/type", idx);
    fp = std::fopen(path, "r");
    if (!fp) continue;
    const bool have_type = std::fscanf(fp, "%31s", type) == 1;
    std::fclose(fp);
    if (!have_type) continue;
    if (std::strcmp(type, "Instruction") == 0) continue;

    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu0/cache/index%d/size", idx);
    const long long bytes = read_sysfs_size(path);
    if (bytes <= 0) continue;
    if (level == 1) g.l1d_bytes = bytes;
    if (level == 2) g.l2_bytes = bytes;
  }
#endif
  g.l1d_bytes = clamp_cache_bytes(g.l1d_bytes, fallback_l1d);
  g.l2_bytes = clamp_cache_bytes(g.l2_bytes, fallback_l2);
  return g;
}

/// Largest multiple of kernel_min_col_tile such that the sliding input
/// window of one column tile — (2*reach + 1) row segments of
/// (tile + 2*reach) doubles — fits in `budget_bytes`. 0 when even the
/// minimum tile does not fit.
int tile_fitting_budget(int reach, long long budget_bytes) {
  const long long window_rows = 2ll * reach + 1;
  const long long per_col = window_rows * static_cast<long long>(sizeof(double));
  // tile <= budget/per_col - 2*reach
  const long long raw = budget_bytes / per_col - 2ll * reach;
  if (raw < kernel_min_col_tile) return 0;
  const long long aligned =
      (raw / kernel_min_col_tile) * kernel_min_col_tile;
  return static_cast<int>(std::min<long long>(aligned, kernel_max_col_tile));
}

}  // namespace

cache_geometry probe_cache_geometry() {
  static const cache_geometry g = probe_once();
  return g;
}

block_geometry compute_block_geometry(int reach, const kernel_tuning& tuning,
                                      const cache_geometry& cache) {
  const int r = std::max(reach, 0);
  const long long l1 = clamp_cache_bytes(tuning.l1d_bytes > 0 ? tuning.l1d_bytes
                                                              : cache.l1d_bytes,
                                         fallback_l1d);
  const long long l2 = clamp_cache_bytes(tuning.l2_bytes > 0 ? tuning.l2_bytes
                                                             : cache.l2_bytes,
                                         fallback_l2);

  block_geometry g;

  if (tuning.col_tile > 0) {
    // Explicit tile: honor it, clamped and aligned down to the tile quantum
    // so the row_run stack accumulator and the SIMD bodies stay within
    // their assumptions.
    const int clamped = std::clamp(tuning.col_tile, kernel_min_col_tile,
                                   kernel_max_col_tile);
    g.col_tile = (clamped / kernel_min_col_tile) * kernel_min_col_tile;
  } else {
    // Half the cache for the sliding window; the other half absorbs the
    // output tile, the weights and whatever else the caller keeps warm.
    // Prefer L1d; when the window cannot fit L1d even at the minimum tile
    // (very large reach), fall back to sizing against L2, and when even
    // that fails, run at the floor — L2-resident halos still beat DRAM.
    // Derived tiles never go below kernel_derived_min_col_tile: the widest
    // AVX-512 register block is 96 columns and starving it costs more than
    // a snug window saves.
    int tile = tile_fitting_budget(r, l1 / 2);
    if (tile == 0) tile = tile_fitting_budget(r, l2 / 2);
    if (tile < kernel_derived_min_col_tile) tile = kernel_derived_min_col_tile;
    g.col_tile = tile;
  }

  if (tuning.row_block > 0) {
    g.row_block = std::clamp(tuning.row_block, kernel_min_row_block,
                             kernel_max_row_block);
  } else {
    // Each block reloads a 2*reach-row halo of its column tiles; a block of
    // 8*reach rows bounds that overhead at 25% while keeping blocks small
    // enough to align with the distributed solver's fine strips.
    g.row_block = std::clamp(8 * std::max(r, 1), kernel_min_row_block,
                             kernel_max_row_block);
  }
  return g;
}

block_geometry compute_block_geometry(int reach, const kernel_tuning& tuning) {
  return compute_block_geometry(reach, tuning, probe_cache_geometry());
}

kernel_tuning kernel_tuning_unblocked() {
  kernel_tuning t;
  t.row_block = kernel_max_row_block;
  t.col_tile = kernel_max_col_tile;
  return t;
}

std::int64_t count_blocks(const block_geometry& g, int row_begin, int row_end,
                          int col_begin, int col_end) {
  if (row_end <= row_begin || col_end <= col_begin) return 0;
  // Absolute alignment: boundaries sit at multiples of the block dims, so
  // the first block of each dimension may be partial.
  const auto spans = [](int begin, int end, int dim) -> std::int64_t {
    const std::int64_t first = begin / dim;
    const std::int64_t last = (end - 1) / dim;
    return last - first + 1;
  };
  return spans(row_begin, row_end, g.row_block) *
         spans(col_begin, col_end, g.col_tile);
}

}  // namespace nlh::nonlocal

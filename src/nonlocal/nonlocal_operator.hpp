#pragma once
///
/// \file nonlocal_operator.hpp
/// \brief The discrete nonlocal diffusion operator (right-hand side of
/// eq. 5) applied over a rectangle of DPs.
///
/// L[u](x_i) = c * sum_j J(|x_j-x_i|/eps) (u_j - u_i) V_j
///
/// Rectangle support is what enables the distributed solver's case-1/case-2
/// split: interior strips and boundary strips of a sub-domain are separate
/// rectangles computed by separate tasks.
///

#include <vector>

#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::nonlocal {

/// Half-open DP rectangle [row_begin, row_end) x [col_begin, col_end).
struct dp_rect {
  int row_begin = 0;
  int row_end = 0;
  int col_begin = 0;
  int col_end = 0;

  int rows() const { return row_end - row_begin; }
  int cols() const { return col_end - col_begin; }
  long long area() const { return static_cast<long long>(rows()) * cols(); }
  bool empty() const { return rows() <= 0 || cols() <= 0; }
};

/// Apply L to `u` over `rect` (interior DP indices), writing c*sum into
/// `out` at the same flat positions. `u` and `out` are padded fields from
/// grid.make_field(). The collar of `u` must already hold boundary /
/// ghost values.
void apply_nonlocal_operator(const grid2d& grid, const stencil& st, double c,
                             const std::vector<double>& u, std::vector<double>& out,
                             const dp_rect& rect);

/// Generic padded-array version used by the per-SD blocks of the
/// distributed solver: `stride` is the padded row length, `ghost` the
/// collar width, rect indexes the unpadded interior.
///
/// This overload is the legacy entry-list reference: it always runs the
/// scalar loop over st.entries() regardless of the selected backend. Hot
/// paths should compile the stencil into a stencil_plan once per problem
/// and call the plan overloads below.
void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil& st, double c, const dp_rect& rect);

/// Single kernel entry point: apply the compiled plan over `rect` with an
/// explicit backend. `simd` silently degrades to `row_run` when the binary
/// or the CPU lacks the vector instructions (see kernel_simd_available()).
void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil_plan& plan, double c,
                                 const dp_rect& rect, kernel_backend backend);

/// Same, resolving the backend through the plan (`plan.backend()`): the
/// plan's pinned backend when its owner set one, else the process default.
void apply_nonlocal_operator_raw(const double* u, double* out, int stride, int ghost,
                                 const stencil_plan& plan, double c,
                                 const dp_rect& rect);

/// Padded-field wrapper over the plan entry point (plan-resolved backend).
void apply_nonlocal_operator(const grid2d& grid, const stencil_plan& plan, double c,
                             const std::vector<double>& u, std::vector<double>& out,
                             const dp_rect& rect);

}  // namespace nlh::nonlocal

#include "nonlocal/steady_state.hpp"

#include <cmath>

#include "nonlocal/nonlocal_operator.hpp"
#include "support/assert.hpp"

namespace nlh::nonlocal {

namespace {

/// Interior dot product over padded fields.
double dot_interior(const grid2d& g, const std::vector<double>& a,
                    const std::vector<double>& b) {
  double s = 0.0;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j) {
      const auto idx = g.flat(i, j);
      s += a[idx] * b[idx];
    }
  return s;
}

}  // namespace

cg_result solve_steady_state(const grid2d& grid, const stencil_plan& plan, double c,
                             const std::vector<double>& b, std::vector<double>& u,
                             const cg_options& opt) {
  NLH_ASSERT(b.size() == grid.total());
  NLH_ASSERT(u.size() == grid.total());
  const dp_rect all{0, grid.n(), 0, grid.n()};

  // A x := -L_h x (SPD). Residual r = b - A u = b + L_h u.
  auto apply_A = [&](const std::vector<double>& x, std::vector<double>& out) {
    apply_nonlocal_operator(grid, plan, c, x, out, all);
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        out[idx] = -out[idx];
      }
  };

  auto r = grid.make_field();
  auto Ap = grid.make_field();
  apply_A(u, Ap);
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      r[idx] = b[idx] - Ap[idx];
    }
  auto p = r;

  double rr = dot_interior(grid, r, r);
  const double rr0 = rr;
  cg_result res;
  if (rr0 == 0.0) {
    res.converged = true;
    return res;
  }

  for (int it = 0; it < opt.max_iterations; ++it) {
    apply_A(p, Ap);
    const double pAp = dot_interior(grid, p, Ap);
    NLH_ASSERT_MSG(pAp > 0.0, "CG: operator not positive definite");
    const double alpha = rr / pAp;
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        u[idx] += alpha * p[idx];
        r[idx] -= alpha * Ap[idx];
      }
    const double rr_new = dot_interior(grid, r, r);
    res.iterations = it + 1;
    if (rr_new <= opt.tolerance * opt.tolerance * rr0) {
      res.converged = true;
      rr = rr_new;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        p[idx] = r[idx] + beta * p[idx];
      }
  }
  res.residual_norm = std::sqrt(rr);
  return res;
}

cg_result implicit_euler_step(const grid2d& grid, const stencil_plan& plan, double c,
                              double dt, const std::vector<double>& b_next,
                              std::vector<double>& u, const cg_options& opt) {
  NLH_ASSERT(dt > 0.0);
  NLH_ASSERT(b_next.size() == grid.total());
  NLH_ASSERT(u.size() == grid.total());
  const dp_rect all{0, grid.n(), 0, grid.n()};

  // A x := (I - dt L_h) x — SPD for any dt (I plus dt times the SPD -L_h).
  auto apply_A = [&](const std::vector<double>& x, std::vector<double>& out) {
    apply_nonlocal_operator(grid, plan, c, x, out, all);
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        out[idx] = x[idx] - dt * out[idx];
      }
  };

  // rhs = u^k + dt b^{k+1}.
  auto rhs = grid.make_field();
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      rhs[idx] = u[idx] + dt * b_next[idx];
    }

  // CG on A with warm start u^k (plain restatement of solve_steady_state's
  // loop with the shifted operator).
  auto r = grid.make_field();
  auto Ap = grid.make_field();
  apply_A(u, Ap);
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      r[idx] = rhs[idx] - Ap[idx];
    }
  auto p = r;
  double rr = dot_interior(grid, r, r);
  const double rr0 = rr;
  cg_result res;
  if (rr0 == 0.0) {
    res.converged = true;
    return res;
  }
  for (int it = 0; it < opt.max_iterations; ++it) {
    apply_A(p, Ap);
    const double pAp = dot_interior(grid, p, Ap);
    NLH_ASSERT_MSG(pAp > 0.0, "implicit Euler: operator not positive definite");
    const double alpha = rr / pAp;
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        u[idx] += alpha * p[idx];
        r[idx] -= alpha * Ap[idx];
      }
    const double rr_new = dot_interior(grid, r, r);
    res.iterations = it + 1;
    if (rr_new <= opt.tolerance * opt.tolerance * rr0) {
      res.converged = true;
      rr = rr_new;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int i = 0; i < grid.n(); ++i)
      for (int j = 0; j < grid.n(); ++j) {
        const auto idx = grid.flat(i, j);
        p[idx] = r[idx] + beta * p[idx];
      }
  }
  res.residual_norm = std::sqrt(rr);
  return res;
}

std::pair<std::vector<double>, std::vector<double>> manufactured_steady_problem(
    const grid2d& grid, const stencil_plan& plan, double c) {
  constexpr double two_pi = 2.0 * 3.14159265358979323846;
  auto ustar = grid.make_field();
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j)
      ustar[grid.flat(i, j)] =
          std::sin(two_pi * grid.x(j)) * std::sin(two_pi * grid.y(i));

  auto b = grid.make_field();
  apply_nonlocal_operator(grid, plan, c, ustar, b, {0, grid.n(), 0, grid.n()});
  for (int i = 0; i < grid.n(); ++i)
    for (int j = 0; j < grid.n(); ++j) {
      const auto idx = grid.flat(i, j);
      b[idx] = -b[idx];
    }
  return {std::move(b), std::move(ustar)};
}

// Stencil overloads: compile the plan once per call, then run the plan path.

cg_result solve_steady_state(const grid2d& grid, const stencil& st, double c,
                             const std::vector<double>& b, std::vector<double>& u,
                             const cg_options& opt) {
  return solve_steady_state(grid, stencil_plan(st), c, b, u, opt);
}

cg_result implicit_euler_step(const grid2d& grid, const stencil& st, double c,
                              double dt, const std::vector<double>& b_next,
                              std::vector<double>& u, const cg_options& opt) {
  return implicit_euler_step(grid, stencil_plan(st), c, dt, b_next, u, opt);
}

std::pair<std::vector<double>, std::vector<double>> manufactured_steady_problem(
    const grid2d& grid, const stencil& st, double c) {
  return manufactured_steady_problem(grid, stencil_plan(st), c);
}

}  // namespace nlh::nonlocal

#include "nonlocal/stencil.hpp"

#include <algorithm>
#include <cmath>

namespace nlh::nonlocal {

stencil::stencil(const grid2d& grid, const influence& J) {
  const double h = grid.h();
  const double eps = grid.epsilon();
  const int g = grid.ghost();
  for (int di = -g; di <= g; ++di) {
    for (int dj = -g; dj <= g; ++dj) {
      if (di == 0 && dj == 0) continue;
      const double dist = std::sqrt(static_cast<double>(di) * di +
                                    static_cast<double>(dj) * dj) * h;
      if (dist > eps + 1e-14) continue;
      const double w = J(dist / eps) * grid.cell_volume();
      entries_.push_back(stencil_entry{di, dj, w});
      weight_sum_ += w;
      reach_ = std::max({reach_, std::abs(di), std::abs(dj)});
    }
  }
  NLH_ASSERT_MSG(!entries_.empty(), "stencil: horizon smaller than grid spacing");
  // Canonicalize: row-major by (di, dj). The build loop already emits this
  // order, but the sort makes it a constructor guarantee, so run compilation
  // (stencil_plan) and cross-backend tests are deterministic even if the
  // enumeration above ever changes.
  std::sort(entries_.begin(), entries_.end(), stencil_entry_less);
}

}  // namespace nlh::nonlocal

#pragma once
///
/// \file one_d.hpp
/// \brief The 1-D nonlocal diffusion equation — the d = 1 case of the
/// paper's model (eq. 1-2 define the scaling constant for both dimensions).
///
/// Used as a small, fully analytic companion to the 2-D solver: same
/// epsilon-ball structure, same manufactured-solution methodology, one
/// dimension fewer. Domain D = [0,1] with the collar Dc = (-eps, 0) u
/// (1, 1+eps) where u = 0.
///

#include <vector>

#include "nonlocal/influence.hpp"
#include "support/assert.hpp"

namespace nlh::nonlocal {

class grid1d {
 public:
  grid1d(int n, double epsilon);

  int n() const { return n_; }
  double h() const { return h_; }
  double epsilon() const { return epsilon_; }
  int ghost() const { return ghost_; }
  std::size_t total() const { return static_cast<std::size_t>(n_ + 2 * ghost_); }

  /// Flat index of DP i, i in [-ghost, n+ghost).
  std::size_t flat(int i) const {
    NLH_ASSERT(i >= -ghost_ && i < n_ + ghost_);
    return static_cast<std::size_t>(i + ghost_);
  }

  double x(int i) const { return (i + 0.5) * h_; }
  double cell_volume() const { return h_; }
  std::vector<double> make_field() const { return std::vector<double>(total(), 0.0); }

 private:
  int n_;
  double h_;
  double epsilon_;
  int ghost_;
};

/// Precomputed 1-D interaction stencil: offsets dj != 0 with |dj| h <= eps,
/// weights J(|dj| h / eps) * h.
class stencil1d {
 public:
  stencil1d(const grid1d& grid, const influence& J);

  const std::vector<std::pair<int, double>>& entries() const { return entries_; }
  double weight_sum() const { return weight_sum_; }
  int reach() const { return reach_; }

 private:
  std::vector<std::pair<int, double>> entries_;
  double weight_sum_ = 0.0;
  int reach_ = 0;
};

/// Manufactured solution w(t,x) = cos(2 pi t) sin(2 pi x) on D, 0 outside.
struct manufactured_problem_1d {
  static double w(double t, double x);
  static double dwdt(double t, double x);
  static double u0(double x) { return w(0.0, x); }
};

struct solve_result_1d {
  double total_error_e = 0.0;
  double final_ek = 0.0;
  double max_relative_error = 0.0;
  double dt = 0.0;
};

struct solver_config_1d {
  int n = 64;
  double epsilon_factor = 4;
  double conductivity = 1.0;
  double dt_safety = 0.5;
  int num_steps = 20;
  influence_kind kind = influence_kind::constant;
};

/// Forward-Euler solver for the 1-D model with the discrete manufactured
/// source (same methodology as the 2-D serial_solver).
class serial_solver_1d {
 public:
  explicit serial_solver_1d(const solver_config_1d& cfg);

  const grid1d& grid() const { return grid_; }
  double dt() const { return dt_; }
  double scaling_constant() const { return c_; }
  const std::vector<double>& field() const { return u_; }

  void set_initial_condition();
  void step(int step_index);
  solve_result_1d run();

  /// L_h[u](x_i) for all interior i into out (c * stencil sum).
  void apply_operator(const std::vector<double>& u, std::vector<double>& out) const;

 private:
  solver_config_1d cfg_;
  grid1d grid_;
  influence J_;
  stencil1d stencil_;
  double c_;
  double dt_;
  std::vector<double> u_;
  std::vector<double> scratch_w_;
  std::vector<double> scratch_lw_;
  std::vector<double> scratch_lu_;
};

}  // namespace nlh::nonlocal

#pragma once
///
/// \file grid2d.hpp
/// \brief Uniform cell-centered discretization of D = [0,1]^2 with the
/// nonlocal boundary collar Dc (paper Fig. 1).
///
/// Interior discrete points (DPs) are x_ij = ((i+1/2)h, (j+1/2)h) for
/// i,j in [0,n); the collar holds `ghost` extra layers on every side where
/// the temperature is pinned to the volumetric boundary condition u = 0
/// (eq. 4). Fields are flat row-major arrays over the padded
/// (n+2g) x (n+2g) box so the nonlocal stencil never branches on bounds.
///

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace nlh::nonlocal {

class grid2d {
 public:
  /// \param n        interior DPs per dimension (mesh "n x n" in the paper)
  /// \param epsilon  nonlocal horizon (must be >= h)
  grid2d(int n, double epsilon)
      : n_(n), h_(1.0 / n), epsilon_(epsilon),
        ghost_(static_cast<int>(std::ceil(epsilon / (1.0 / n) - 1e-12))) {
    NLH_ASSERT(n >= 1);
    NLH_ASSERT_MSG(epsilon > 0.0, "grid2d: epsilon must be positive");
  }

  int n() const { return n_; }
  double h() const { return h_; }
  double epsilon() const { return epsilon_; }
  int ghost() const { return ghost_; }

  /// Padded array side length.
  int stride() const { return n_ + 2 * ghost_; }
  std::size_t total() const {
    return static_cast<std::size_t>(stride()) * static_cast<std::size_t>(stride());
  }

  /// Flat index of interior DP (i, j), i row (y), j column (x), in [0, n).
  /// Collar cells are addressed with i or j in [-ghost, n+ghost).
  std::size_t flat(int i, int j) const {
    NLH_ASSERT(i >= -ghost_ && i < n_ + ghost_);
    NLH_ASSERT(j >= -ghost_ && j < n_ + ghost_);
    return static_cast<std::size_t>(i + ghost_) * static_cast<std::size_t>(stride()) +
           static_cast<std::size_t>(j + ghost_);
  }

  /// Physical coordinates of DP (i, j) (cell centers; collar cells extend
  /// beyond [0,1]).
  double x(int j) const { return (j + 0.5) * h_; }
  double y(int i) const { return (i + 0.5) * h_; }

  /// Cell volume V_j = h^2 (uniform grid).
  double cell_volume() const { return h_ * h_; }

  /// Allocate a zero field over the padded box.
  std::vector<double> make_field() const { return std::vector<double>(total(), 0.0); }

  bool is_interior(int i, int j) const { return i >= 0 && i < n_ && j >= 0 && j < n_; }

 private:
  int n_;
  double h_;
  double epsilon_;
  int ghost_;
};

}  // namespace nlh::nonlocal

#pragma once
///
/// \file error.hpp
/// \brief Error norms of paper §3.2: e_k = h^d sum_i |u_exact - u_h|^2
/// (eq. 7), the total e = sum_k e_k, plus max-relative error (Fig. 8 axis).
///

#include <vector>

#include "nonlocal/grid2d.hpp"

namespace nlh::nonlocal {

/// e_k per eq. (7) at one time level (d = 2).
double error_ek(const grid2d& grid, const std::vector<double>& exact,
                const std::vector<double>& numerical);

/// Discrete L2 norm sqrt(h^d sum |diff|^2).
double error_l2(const grid2d& grid, const std::vector<double>& exact,
                const std::vector<double>& numerical);

/// max_i |exact_i - num_i| / max_i |exact_i| (0/0 -> 0).
double error_max_relative(const grid2d& grid, const std::vector<double>& exact,
                          const std::vector<double>& numerical);

/// Accumulates e = sum_k e_k over a run.
class error_accumulator {
 public:
  void add_step(double ek) {
    total_ += ek;
    ++steps_;
  }
  double total() const { return total_; }
  int steps() const { return steps_; }

 private:
  double total_ = 0.0;
  int steps_ = 0;
};

}  // namespace nlh::nonlocal

#include "nonlocal/influence.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace nlh::nonlocal {

double influence::operator()(double r) const {
  switch (kind_) {
    case influence_kind::constant:
      return 1.0;
    case influence_kind::linear:
      return 1.0 - r;
    case influence_kind::gaussian:
      return std::exp(-4.0 * r * r);
  }
  NLH_ASSERT_MSG(false, "influence: unknown kind");
  return 0.0;
}

double influence::moment(int i) const {
  NLH_ASSERT(i >= 0);
  switch (kind_) {
    case influence_kind::constant:
      // \int_0^1 r^i dr
      return 1.0 / (i + 1);
    case influence_kind::linear:
      // \int_0^1 (1-r) r^i dr = 1/(i+1) - 1/(i+2)
      return 1.0 / (i + 1) - 1.0 / (i + 2);
    case influence_kind::gaussian: {
      // Composite Simpson over [0,1]; J is smooth, 256 panels is plenty.
      const int panels = 256;
      const double dr = 1.0 / panels;
      auto f = [&](double r) { return std::exp(-4.0 * r * r) * std::pow(r, i); };
      double sum = f(0.0) + f(1.0);
      for (int p = 1; p < panels; ++p) sum += (p % 2 ? 4.0 : 2.0) * f(p * dr);
      return sum * dr / 3.0;
    }
  }
  NLH_ASSERT_MSG(false, "influence: unknown kind");
  return 0.0;
}

double influence::scaling_constant(int dim, double conductivity, double epsilon) const {
  NLH_ASSERT(dim == 1 || dim == 2);
  NLH_ASSERT(epsilon > 0.0);
  if (dim == 1) return conductivity / (epsilon * epsilon * epsilon * moment(2));
  const double pi = 3.14159265358979323846;
  return 2.0 * conductivity / (pi * epsilon * epsilon * epsilon * epsilon * moment(3));
}

}  // namespace nlh::nonlocal

#pragma once
///
/// \file scenario.hpp
/// \brief Pluggable workload scenarios and their string-keyed registry —
/// the "what to solve" half of the `nlh::api` facade (docs/api.md).
///
/// A scenario supplies everything about the model that is not
/// discretization machinery: the initial condition, the discrete source
/// term, an optional exact solution (enabling error-vs-exact metrics) and
/// optional SD-grid metadata (material mask, per-SD work weights) the
/// session feeds to the partitioner. Both solvers
/// (`nonlocal::serial_solver` and `dist::dist_solver`) route their IC and
/// source evaluation through this interface; the `manufactured` scenario
/// reproduces the historical hard-wired problem bit for bit and stays the
/// default, so the serial==distributed bitwise guarantee is untouched.
///
/// This header is deliberately dependency-light (grid, kernel plan and DP
/// rectangles only) so the numeric layers underneath the facade can
/// consume it without a dependency cycle.
///

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/nonlocal_operator.hpp"

namespace nlh::api {

/// Discretization context handed to scenario evaluations: the padded grid,
/// the compiled stencil plan and the model scaling constant c. All three
/// are owned by the calling solver and outlive the call.
struct scenario_context {
  const nonlocal::grid2d* grid = nullptr;
  const nonlocal::stencil_plan* plan = nullptr;
  double scaling_constant = 0.0;
};

class scenario {
 public:
  virtual ~scenario() = default;

  /// Registry key / display name.
  virtual std::string name() const = 0;

  /// Initial condition u0(x1, x2) on the interior (the collar keeps the
  /// volumetric boundary condition u = 0, paper eq. 4).
  virtual double initial(double x1, double x2) const = 0;

  /// Fill the auxiliary field over `rect` (interior DP indices) at time
  /// `t` — whatever source_into() needs precomputed on the global padded
  /// grid (manufactured: the exact solution w(t, .)). The solvers call
  /// this for rectangles covering the whole interior before any
  /// source_into() of the same step, possibly concurrently on disjoint
  /// rectangles. Default: no-op (no auxiliary data needed).
  virtual void fill_aux(const scenario_context& ctx, double t,
                        const nonlocal::dp_rect& rect,
                        std::vector<double>& aux) const;

  /// Discrete source b(t) over `rect`, written into `out` (padded layout,
  /// interior indices; the collar is never written). `aux` holds the
  /// fill_aux() result of the same step and may be read up to the ghost
  /// width beyond `rect`. Default: zero source.
  virtual void source_into(const scenario_context& ctx, double t,
                           const std::vector<double>& aux,
                           const nonlocal::dp_rect& rect,
                           std::vector<double>& out) const;

  /// True when exact() is meaningful (enables error-vs-exact metrics).
  virtual bool has_exact() const { return false; }

  /// Exact solution w(t, x1, x2); only called when has_exact(). The
  /// default aborts.
  virtual double exact(double t, double x1, double x2) const;

  /// Optional material mask on a row-major SD grid (non-zero = the SD
  /// carries material). Empty = every SD active (the square domain). The
  /// session partitions the masked dual graph when this is non-empty.
  virtual std::vector<char> sd_mask(int sd_rows, int sd_cols) const;

  /// Optional per-SD work multipliers (row-major), fed to the partitioner
  /// as vertex weights. Empty = uniform work per DP.
  virtual std::vector<double> sd_work(int sd_rows, int sd_cols) const;
};

// --------------------------------------------------------------- registry --

using scenario_factory = std::function<std::shared_ptr<const scenario>()>;

/// Register (or replace) a factory under `name`. The built-ins below are
/// pre-registered; user code may add its own before building sessions.
void register_scenario(const std::string& name, scenario_factory factory);

/// Instantiate a registered scenario. Throws std::invalid_argument naming
/// the unknown key and listing the registered ones.
std::shared_ptr<const scenario> make_scenario(const std::string& name);

/// Sorted registry keys (at least "crack", "gaussian_pulse", "lshape",
/// "manufactured").
std::vector<std::string> scenario_names();

// ------------------------------------------------------ built-in scenarios --
// Concrete classes are exposed so callers can instantiate them with
// non-default parameters and hand them to session_options::custom_scenario;
// the registry holds default-parameter instances.

/// The paper's manufactured problem (§3.2): w = cos(2 pi t) sin(2 pi x1)
/// sin(2 pi x2), source manufactured at the discrete level. The default
/// scenario; reproduces `nonlocal::manufactured_problem` bitwise.
class manufactured_scenario final : public scenario {
 public:
  std::string name() const override { return "manufactured"; }
  double initial(double x1, double x2) const override;
  void fill_aux(const scenario_context& ctx, double t,
                const nonlocal::dp_rect& rect,
                std::vector<double>& aux) const override;
  void source_into(const scenario_context& ctx, double t,
                   const std::vector<double>& aux, const nonlocal::dp_rect& rect,
                   std::vector<double>& out) const override;
  bool has_exact() const override { return true; }
  double exact(double t, double x1, double x2) const override;
};

/// Source-free Gaussian temperature pulse that diffuses and decays — the
/// simplest "real" workload (no exact solution).
class gaussian_pulse_scenario final : public scenario {
 public:
  /// `support_radius > 0` truncates the pulse to compact support: the
  /// profile is continuity-shifted (`exp(-r²/2σ²) − exp(-R²/2σ²)`) inside
  /// radius R and *exactly* 0.0 outside. Exact zeros propagate under the
  /// source-free forward-Euler update, which is what the delta codec's RLE
  /// fast path compresses (docs/checkpoint.md) — the registry default
  /// (support_radius = 0, infinite support) is bitwise unchanged.
  explicit gaussian_pulse_scenario(double center_x = 0.5, double center_y = 0.5,
                                   double sigma = 0.1, double amplitude = 1.0,
                                   double support_radius = 0.0);
  std::string name() const override { return "gaussian_pulse"; }
  double initial(double x1, double x2) const override;

 private:
  double cx_, cy_, sigma_, amplitude_, support_radius_;
};

/// L-shaped material domain (the paper's future-work item): the top-right
/// SD quadrant carries no material; a pulse starts in the lower-left
/// quadrant. The mask shapes the dual graph the partitioner sees.
class lshape_scenario final : public scenario {
 public:
  std::string name() const override { return "lshape"; }
  double initial(double x1, double x2) const override;
  std::vector<char> sd_mask(int sd_rows, int sd_cols) const override;
};

/// Cracked plate (paper §7): the crack segment scales down the work of
/// every SD it crosses, which the session forwards to the partitioner as
/// vertex weights — the load-imbalance source Algorithm 1 targets.
class crack_scenario final : public scenario {
 public:
  /// Crack segment (x0,y0)-(x1,y1) in domain coordinates [0,1]^2; cracked
  /// SDs do (1 - work_reduction) of normal work.
  explicit crack_scenario(double x0 = 0.02, double y0 = 0.25, double x1 = 0.98,
                          double y1 = 0.25, double work_reduction = 0.6);
  std::string name() const override { return "crack"; }
  double initial(double x1, double x2) const override;
  std::vector<double> sd_work(int sd_rows, int sd_cols) const override;
  double work_reduction() const { return reduction_; }

 private:
  double x0_, y0_, x1_, y1_, reduction_;
};

}  // namespace nlh::api

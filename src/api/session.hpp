#pragma once
///
/// \file session.hpp
/// \brief The `nlh::api::session` facade: one declarative entry point over
/// the mesh-dual / partition / tiling / ownership / solver chain
/// (docs/api.md).
///
/// Callers describe a run with `session_options` (scenario, mesh,
/// execution mode, partitioning, kernel backend); the session validates
/// the options with actionable errors, builds the distribution internally
/// and exposes one polymorphic `solver_handle` backed by either the serial
/// reference or the asynchronous distributed solver. Both backends route
/// the physics through the same `scenario`, so the serial==distributed
/// bitwise guarantee holds per kernel backend through the facade exactly
/// as it does for the hand-wired layers.
///
/// The facade is futures-first and multi-tenant: `step_async`/`run_async`
/// return `amt::future<runtime_metrics>` driven by a per-handle driver
/// thread (the blocking `step`/`run` are thin wrappers over the same
/// stepping body), and the kernel backend is owned *per session* — the
/// solver's stencil_plan is pinned at construction, never a process
/// global — so sessions with different backends run concurrently in one
/// process, each bitwise equal to its solo run. `api/batch.hpp` builds a
/// multi-job service on top of this.
///

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "amt/future.hpp"
#include "amt/thread_pool.hpp"
#include "api/scenario.hpp"
#include "balance/policy.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/hibernation.hpp"
#include "dist/domain_mask.hpp"
#include "dist/ownership.hpp"
#include "dist/tiling.hpp"
#include "nonlocal/serial_solver.hpp"
#include "obs/metrics.hpp"

namespace nlh::api {

/// Which solver backs the session's solver_handle.
enum class execution_mode {
  serial,       ///< single-threaded reference solver
  distributed,  ///< asynchronous multi-locality solver
};

/// How the SD dual graph is split across localities (distributed mode).
enum class partition_strategy {
  multilevel,           ///< METIS-style multilevel k-way (the default)
  recursive_bisection,  ///< recursive 2-way multilevel; k must be a power of two
  block,                ///< rectangular block baseline (no graph model)
};

/// One declarative description of a run. Subsumes
/// `nonlocal::solver_config` and `dist::dist_config` plus the partitioning
/// and kernel-backend choices the examples used to hand-wire.
struct session_options {
  /// Registry key of the workload (see scenario_names()); ignored when
  /// custom_scenario is set.
  std::string scenario = "manufactured";
  /// Explicit scenario instance (e.g. a parameterized crack_scenario);
  /// overrides `scenario` when non-null.
  std::shared_ptr<const class scenario> custom_scenario;

  execution_mode mode = execution_mode::serial;

  // --- Discretization (both modes) ---------------------------------------
  int n = 64;                 ///< interior DPs per dimension
  int epsilon_factor = 4;     ///< epsilon = factor * h (= ghost width in DPs)
  double conductivity = 1.0;  ///< classical k
  double dt = 0.0;            ///< 0 = stability bound * dt_safety
  double dt_safety = 0.5;     ///< fraction of the stability bound
  int num_steps = 20;         ///< step budget callers pass to solver_handle::run()
  nonlocal::influence_kind kind = nonlocal::influence_kind::constant;
  /// Serial mode only; the distributed solver integrates forward Euler.
  nonlocal::time_integrator integrator = nonlocal::time_integrator::forward_euler;

  // --- Distribution (distributed mode) -----------------------------------
  int sd_grid = 4;   ///< SDs per dimension; n must divide evenly
  int nodes = 2;     ///< localities
  int threads_per_locality = 1;
  bool overlap_communication = true;
  /// Ghost-exchange schedule: "per_direction" (default — each case-1 strip
  /// waits only on the ghost arrivals it reads), "coarse" (all of an SD's
  /// strips gate on all of its ghosts) or "bulk_sync" (no hiding).
  /// `overlap_communication = false` forces bulk_sync (docs/overlap.md).
  std::string overlap_schedule = "per_direction";
  partition_strategy partitioner = partition_strategy::multilevel;
  /// Live Algorithm 1 auto-rebalancing (docs/balance.md): when enabled the
  /// distributed solver samples per-locality busy time every
  /// `auto_rebalance.interval` steps and migrates SDs whenever the measured
  /// imbalance reaches the trigger. Distributed mode only — validation
  /// rejects an enabled policy in serial mode (there is nothing to
  /// rebalance). Disabled (the default) keeps the static partition.
  balance::rebalance_policy auto_rebalance;

  // --- Kernel backend ------------------------------------------------------
  /// "scalar", "row_run", "simd" or "avx512"; pins *this session's* kernel
  /// backend (the solver's stencil_plan is pinned at construction — no
  /// process global is touched, so sessions with different backends
  /// coexist). Empty = follow the process default, which still resolves
  /// through the deprecated NLH_KERNEL_BACKEND environment variable as a
  /// fallback (see docs/api.md).
  std::string kernel_backend;
  /// Blocked-execution overrides for this session's kernel cache model
  /// (docs/kernels.md): zero fields derive from the probed cache geometry;
  /// positive fields override (clamped to the documented bounds); negative
  /// fields are a validation error. Execution order only — never changes
  /// results.
  nonlocal::kernel_tuning kernel_tuning;

  // --- Hibernation (docs/checkpoint.md) -----------------------------------
  /// When enabled, the solver_handle can park its full solver state in
  /// cold storage (`solver_handle::hibernate()`): the state is serialized
  /// through `hibernation.codec`, written to `hibernation.directory` (empty
  /// = a purged scratch directory) and the in-memory solver is released;
  /// the next stepping call or solver-state reader transparently restores
  /// it, bitwise identical. `hibernation.codec` also selects the frame
  /// codec of the distributed solver's checkpoint path. Multi-tenant LRU
  /// eviction against `resident_cap` lives one level up, in
  /// `batch_options::hibernation`.
  ckpt::hibernation_options hibernation;
};

/// Passed to the per-step observer after every completed step.
struct step_event {
  int step = 0;   ///< completed steps so far (1 after the first step)
  double t = 0.0; ///< simulated time step * dt
};

/// Streaming per-step callback. Delivery contract (docs/api.md): events
/// arrive strictly in step order and never concurrently — the handle
/// serializes all stepping, blocking or async, behind one lock; the
/// callback runs on whichever thread executes the step (the caller for
/// `step`/`run`, the handle's driver thread for `step_async`/`run_async`).
/// Inside the callback `current_step()`, `dt()`, `field()` and `metrics()`
/// of the same handle are safe; calling `step*`/`run*` on it is not.
using step_observer = std::function<void(const step_event&)>;

/// Runtime counters of one solver_handle.
struct runtime_metrics {
  int steps = 0;                 ///< completed steps
  double dt = 0.0;
  double wall_seconds = 0.0;     ///< wall time spent stepping
  std::uint64_t ghost_bytes = 0; ///< serialized ghost traffic (0 serial)
  std::string kernel_backend;    ///< this handle's resolved backend name
  /// Ghost-exchange schedule the solver executes ("serial" for the serial
  /// backend; else "bulk_sync" / "coarse" / "per_direction").
  std::string overlap_schedule;
  /// Wall time the stepping thread spent blocked in the end-of-step drain,
  /// waiting on ghost-dependent work (0 serial). High values mean
  /// communication dominates and the overlap could not hide it.
  double comm_wait_seconds = 0.0;
  /// Compute tasks (case-2 interiors + case-1 strips) that finished while
  /// at least one ghost message was still in flight — the direct evidence
  /// of communication hiding (0 serial / bulk_sync).
  std::uint64_t overlap_early_tasks = 0;
  /// True when the distributed backend produced these metrics. The schema
  /// is uniform across backends: serial handles report the overlap fields
  /// (ghost_bytes, comm_wait_seconds, overlap_early_tasks) as genuine
  /// zeros — nothing was exchanged, nothing waited — and this flag is how
  /// a consumer tells "zero because serial" from "zero because the overlap
  /// hid everything" (docs/api.md).
  bool is_distributed = false;
  /// Wall latency distribution of this handle's completed steps (seconds):
  /// every step records into a per-handle histogram regardless of backend,
  /// so p50/p99 step latency is comparable serial vs distributed.
  obs::histogram_summary step_latency;
  /// Live auto-rebalancing observables (docs/balance.md); genuine zeros
  /// when `session_options::auto_rebalance` was disabled or the backend is
  /// serial. Epochs are the rebalance checks whose imbalance reached the
  /// trigger; moves are the SD migrations they performed. The imbalance
  /// pair is max_i |LoadImbalance(N_i)| (eq. 9, in SD units) at the last
  /// check, before and after that check's redistribution (equal when no
  /// epoch fired).
  std::uint64_t rebalance_epochs = 0;
  std::uint64_t rebalance_moves = 0;
  double rebalance_imbalance_before = 0.0;
  double rebalance_imbalance_after = 0.0;
  /// Hibernation round trips of this handle's session-owned manager
  /// (docs/checkpoint.md); genuine zeros when
  /// `session_options::hibernation` was disabled (batch-level hibernation
  /// accounts at the runner instead).
  std::uint64_t hibernates = 0;
  std::uint64_t restores = 0;
};

/// Internal polymorphic solver body (serial / distributed); defined in
/// session.cpp. The public solver_handle owns one by composition, so the
/// async machinery (driver thread, locks) lives in exactly one place and
/// destruction order — driver joined before the body dies — is enforced
/// by member order, not by per-subclass convention.
class solver_impl;

/// Handle over the serial / distributed solver: futurized stepping, field
/// access, error-vs-exact, streaming per-step observer and runtime
/// metrics.
///
/// Threading: `step_async`/`run_async` hand the work to a lazily created
/// single-thread driver owned by the handle and return immediately; all
/// stepping (async or blocking) is serialized behind one internal lock, so
/// concurrent submissions queue rather than race, and submissions from one
/// thread execute in submission order. Readers that touch solver state
/// (`field()`, `current_step()`, `ghost_bytes()`, `error_vs_exact()`,
/// `metrics()`) take the same lock: they are safe from any thread while an
/// async run is in flight, but block until the in-flight chunk (one whole
/// `run_async(n)` submission) completes — wait on the returned future
/// when you need the read without the stall. The lock is reentrant from
/// the observer callback. All futures returned by `*_async` must be
/// waited on (or the owning session kept alive) before the session is
/// destroyed; destruction drains the driver.
class solver_handle {
 public:
  ~solver_handle();
  solver_handle(const solver_handle&) = delete;
  solver_handle& operator=(const solver_handle&) = delete;

  /// Advance one timestep, then notify the observer (if any). Thin
  /// blocking wrapper over the same stepping body the futures use.
  void step();
  /// Advance `steps` timesteps (blocking wrapper).
  void run(int steps);

  /// Futurized single step: resolves to the metrics snapshot after the
  /// step completes. Equivalent to run_async(1).
  amt::future<runtime_metrics> step_async();
  /// Futurized multi-step: queue `num_steps` steps on the handle's driver
  /// thread and resolve to the metrics snapshot after the last one.
  /// Exceptions thrown while stepping propagate through the future.
  amt::future<runtime_metrics> run_async(int num_steps);

  /// The padded grid (immutable after construction; lock-free).
  const nonlocal::grid2d& grid() const;
  /// The global padded field (distributed: assembled from all SD blocks).
  std::vector<double> field() const;
  /// Synonym for field() mirroring dist_solver::gather().
  std::vector<double> gather() const { return field(); }
  /// Timestep (immutable after construction; lock-free).
  double dt() const;
  int current_step() const;
  /// Serialized ghost-strip traffic so far; 0 for the serial backend.
  std::uint64_t ghost_bytes() const;
  /// Kernel backend every DP update of this handle dispatches to — owned
  /// by this session's solver, independent of other sessions.
  nonlocal::kernel_backend backend() const;

  const scenario& active_scenario() const { return *scenario_; }
  /// Install (or clear, with nullptr) the streaming observer; picked up by
  /// the next step. Safe to call while an async run is in flight.
  void set_observer(step_observer cb);

  /// Max-relative error (Fig. 8 axis) of the current field against the
  /// scenario's exact solution at the current time. Throws
  /// std::logic_error when the scenario has no exact solution.
  double error_vs_exact() const;
  /// Same comparison through the eq.-7 norm e_k.
  double error_ek_vs_exact() const;

  runtime_metrics metrics() const;

  // --- Hibernation (docs/checkpoint.md) -----------------------------------
  /// Park this session's solver state in cold storage now: the state is
  /// serialized through the configured codec, the blob written to the
  /// session's store and the in-memory solver released. Requires
  /// `session_options::hibernation.enabled` (throws std::logic_error
  /// otherwise); no-op when already hibernated. Any subsequent stepping
  /// call or solver-state reader transparently restores first — the round
  /// trip is bitwise invisible.
  void hibernate();
  /// True while the solver state lives in cold storage only (either via
  /// hibernate() or an external manager's export_and_release()).
  bool hibernated() const;

  /// Low-level primitives for an external ckpt::hibernation_manager (the
  /// batch_runner's LRU layer): serialize the full solver state into a
  /// self-contained blob (encoding into `reuse`'s recycled capacity) and
  /// release the in-memory solver / rebuild it from such a blob. The
  /// managing layer must serialize these against all stepping of the same
  /// handle (batch admission does). Without a manager, a released handle
  /// asserts on use until import_state() runs.
  ckpt::snapshot_blob export_and_release(net::byte_buffer reuse = {});
  void import_state(const net::byte_buffer& bytes);

  /// Everything metrics() reports plus the backend's own instruments
  /// (distributed: ghost traffic counters, message-size and drain-wait
  /// histograms, per-locality busy fractions, compiled-plan shape), as a
  /// plain `obs::metrics_snapshot` under `api/...` / `dist/...` names.
  obs::metrics_snapshot metrics_snapshot() const;
  /// Write metrics_snapshot() as JSON to `path` (obs/metrics_export.hpp).
  void dump_metrics(const std::string& path) const;

 private:
  friend class session;
  /// Rebuilds a fresh impl of the same options — the hibernation-restore
  /// path (import_state overwrites the rebuilt state bitwise).
  using impl_factory = std::function<std::unique_ptr<solver_impl>()>;
  solver_handle(std::shared_ptr<const scenario> scn,
                std::unique_ptr<solver_impl> impl, impl_factory rebuild,
                ckpt::hibernation_options hib_opt);

  /// Caller holds step_mu_.
  std::vector<double> exact_now_locked() const;
  runtime_metrics metrics_locked() const;
  /// Restore the solver from cold storage when a hibernated handle is
  /// touched; caller holds step_mu_.
  void ensure_resident_locked() const;
  ckpt::snapshot_blob export_state_locked(net::byte_buffer reuse);
  void import_state_locked(const net::byte_buffer& bytes);
  /// The one stepping body behind step/run/step_async/run_async: serialize
  /// behind step_mu_, advance, account wall time, stream observer events.
  runtime_metrics run_steps(int num_steps);
  amt::thread_pool& driver();

  std::shared_ptr<const scenario> scenario_;
  /// Mutable: a hibernated handle rebuilds it inside const readers
  /// (ensure_resident_locked), always under step_mu_.
  mutable std::unique_ptr<solver_impl> impl_;
  impl_factory rebuild_;
  const ckpt::codec* hib_codec_;  ///< resolved session_options::hibernation.codec
  /// Immutability cache so the documented lock-free accessors (grid(),
  /// dt(), backend()) stay valid while the solver is hibernated.
  std::optional<nonlocal::grid2d> cached_grid_;
  double cached_dt_ = 0.0;
  nonlocal::kernel_backend cached_backend_;
  /// Session-owned single-entry manager behind hibernate(); null when
  /// session_options::hibernation is disabled.
  mutable std::unique_ptr<ckpt::hibernation_manager> hib_;
  /// Serializes stepping and solver-state readers; recursive so the
  /// observer callback (invoked under it) may call the readers.
  mutable std::recursive_mutex step_mu_;
  mutable std::mutex state_mu_;  ///< guards observer_ and wall_seconds_
  step_observer observer_;
  double wall_seconds_ = 0.0;
  /// Per-step wall latency (internally synchronized; recorded by the
  /// stepping thread, summarized by metrics readers).
  obs::histogram step_latency_hist_;
  std::mutex driver_mu_;
  /// Lazy single-thread driver. Declared after impl_: destroyed first, so
  /// in-flight async tasks drain while the solver body is still alive.
  std::unique_ptr<amt::thread_pool> driver_;
};

/// The facade. Construction validates the options (throwing
/// std::invalid_argument with one actionable message per offence) and, in
/// distributed mode, runs the mesh-dual -> partition -> tiling ->
/// ownership chain; the solver itself is built lazily on first access so
/// partition-only studies stay cheap.
class session {
 public:
  /// All validation failures of `opt`, each naming the offending field;
  /// empty = valid.
  static std::vector<std::string> validate(const session_options& opt);

  explicit session(session_options opt);

  const session_options& options() const { return opt_; }
  const scenario& active_scenario() const { return *scenario_; }

  /// The polymorphic solver (built on first call, initial condition set).
  solver_handle& solver();

  // --- Distribution introspection (distributed mode only; these throw
  // std::logic_error in serial mode) -------------------------------------
  const dist::tiling& sd_tiling() const;
  const dist::ownership_map& ownership() const;
  /// One node id per row-major SD (inactive SDs parked on node 0).
  const std::vector<int>& partition() const;
  /// Scenario mask projected onto the SD grid (full when none).
  const dist::domain_mask& mask() const;
  /// Weighted edge cut (ghost DPs crossing localities) of the partition.
  double partition_edge_cut() const;
  /// Max part weight / ideal part weight of the partition (1.0 = perfect).
  double partition_balance() const;

 private:
  /// Validation body once the scenario is resolved (`scn` may be null when
  /// resolution itself failed; scenario-dependent checks are then skipped).
  static std::vector<std::string> validate_resolved(const session_options& opt,
                                                    const scenario* scn);
  void build_distribution();
  void require_distributed(const char* what) const;

  session_options opt_;
  std::shared_ptr<const scenario> scenario_;
  std::optional<dist::tiling> tiling_;
  std::optional<dist::domain_mask> mask_;
  std::vector<int> part_;
  std::optional<dist::ownership_map> own_;
  double edge_cut_ = 0.0;
  double balance_ = 1.0;
  std::unique_ptr<solver_handle> solver_;
};

}  // namespace nlh::api

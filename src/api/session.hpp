#pragma once
///
/// \file session.hpp
/// \brief The `nlh::api::session` facade: one declarative entry point over
/// the mesh-dual / partition / tiling / ownership / solver chain
/// (docs/api.md).
///
/// Callers describe a run with `session_options` (scenario, mesh,
/// execution mode, partitioning, kernel backend); the session validates
/// the options with actionable errors, builds the distribution internally
/// and exposes one polymorphic `solver_handle` backed by either the serial
/// reference or the asynchronous distributed solver. Both backends route
/// the physics through the same `scenario`, so the serial==distributed
/// bitwise guarantee holds per kernel backend through the facade exactly
/// as it does for the hand-wired layers.
///

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "dist/domain_mask.hpp"
#include "dist/ownership.hpp"
#include "dist/tiling.hpp"
#include "nonlocal/serial_solver.hpp"

namespace nlh::api {

/// Which solver backs the session's solver_handle.
enum class execution_mode {
  serial,       ///< single-threaded reference solver
  distributed,  ///< asynchronous multi-locality solver
};

/// How the SD dual graph is split across localities (distributed mode).
enum class partition_strategy {
  multilevel,           ///< METIS-style multilevel k-way (the default)
  recursive_bisection,  ///< recursive 2-way multilevel; k must be a power of two
  block,                ///< rectangular block baseline (no graph model)
};

/// One declarative description of a run. Subsumes
/// `nonlocal::solver_config` and `dist::dist_config` plus the partitioning
/// and kernel-backend choices the examples used to hand-wire.
struct session_options {
  /// Registry key of the workload (see scenario_names()); ignored when
  /// custom_scenario is set.
  std::string scenario = "manufactured";
  /// Explicit scenario instance (e.g. a parameterized crack_scenario);
  /// overrides `scenario` when non-null.
  std::shared_ptr<const class scenario> custom_scenario;

  execution_mode mode = execution_mode::serial;

  // --- Discretization (both modes) ---------------------------------------
  int n = 64;                 ///< interior DPs per dimension
  int epsilon_factor = 4;     ///< epsilon = factor * h (= ghost width in DPs)
  double conductivity = 1.0;  ///< classical k
  double dt = 0.0;            ///< 0 = stability bound * dt_safety
  double dt_safety = 0.5;     ///< fraction of the stability bound
  int num_steps = 20;         ///< step budget callers pass to solver_handle::run()
  nonlocal::influence_kind kind = nonlocal::influence_kind::constant;
  /// Serial mode only; the distributed solver integrates forward Euler.
  nonlocal::time_integrator integrator = nonlocal::time_integrator::forward_euler;

  // --- Distribution (distributed mode) -----------------------------------
  int sd_grid = 4;   ///< SDs per dimension; n must divide evenly
  int nodes = 2;     ///< localities
  int threads_per_locality = 1;
  bool overlap_communication = true;
  partition_strategy partitioner = partition_strategy::multilevel;

  // --- Kernel backend ------------------------------------------------------
  /// "scalar", "row_run" or "simd"; applied process-wide at session build.
  /// Empty = keep the process default (the NLH_KERNEL_BACKEND environment
  /// variable is still honored as a fallback, but is deprecated in favor
  /// of this field — see docs/api.md).
  std::string kernel_backend;
};

/// Passed to the per-step observer after every completed step.
struct step_event {
  int step = 0;   ///< completed steps so far (1 after the first step)
  double t = 0.0; ///< simulated time step * dt
};
using step_observer = std::function<void(const step_event&)>;

/// Runtime counters of one solver_handle.
struct runtime_metrics {
  int steps = 0;                 ///< completed steps
  double dt = 0.0;
  double wall_seconds = 0.0;     ///< wall time spent inside step()
  std::uint64_t ghost_bytes = 0; ///< serialized ghost traffic (0 serial)
  std::string kernel_backend;    ///< resolved process-wide backend name
};

/// Polymorphic handle over the serial / distributed solver: stepping,
/// field access, error-vs-exact, per-step observer and runtime metrics.
class solver_handle {
 public:
  virtual ~solver_handle() = default;
  solver_handle(const solver_handle&) = delete;
  solver_handle& operator=(const solver_handle&) = delete;

  /// Advance one timestep, then notify the observer (if any).
  void step();
  /// Advance `steps` timesteps.
  void run(int steps);

  virtual const nonlocal::grid2d& grid() const = 0;
  /// The global padded field (distributed: assembled from all SD blocks).
  virtual std::vector<double> field() const = 0;
  /// Synonym for field() mirroring dist_solver::gather().
  std::vector<double> gather() const { return field(); }
  virtual double dt() const = 0;
  virtual int current_step() const = 0;
  /// Serialized ghost-strip traffic so far; 0 for the serial backend.
  virtual std::uint64_t ghost_bytes() const { return 0; }

  const scenario& active_scenario() const { return *scenario_; }
  void set_observer(step_observer cb) { observer_ = std::move(cb); }

  /// Max-relative error (Fig. 8 axis) of the current field against the
  /// scenario's exact solution at the current time. Throws
  /// std::logic_error when the scenario has no exact solution.
  double error_vs_exact() const;
  /// Same comparison through the eq.-7 norm e_k.
  double error_ek_vs_exact() const;

  runtime_metrics metrics() const;

 protected:
  explicit solver_handle(std::shared_ptr<const scenario> scn);
  virtual void do_step() = 0;

 private:
  std::vector<double> exact_now() const;

  std::shared_ptr<const scenario> scenario_;
  step_observer observer_;
  double wall_seconds_ = 0.0;
};

/// The facade. Construction validates the options (throwing
/// std::invalid_argument with one actionable message per offence) and, in
/// distributed mode, runs the mesh-dual -> partition -> tiling ->
/// ownership chain; the solver itself is built lazily on first access so
/// partition-only studies stay cheap.
class session {
 public:
  /// All validation failures of `opt`, each naming the offending field;
  /// empty = valid.
  static std::vector<std::string> validate(const session_options& opt);

  explicit session(session_options opt);

  const session_options& options() const { return opt_; }
  const scenario& active_scenario() const { return *scenario_; }

  /// The polymorphic solver (built on first call, initial condition set).
  solver_handle& solver();

  // --- Distribution introspection (distributed mode only; these throw
  // std::logic_error in serial mode) -------------------------------------
  const dist::tiling& sd_tiling() const;
  const dist::ownership_map& ownership() const;
  /// One node id per row-major SD (inactive SDs parked on node 0).
  const std::vector<int>& partition() const;
  /// Scenario mask projected onto the SD grid (full when none).
  const dist::domain_mask& mask() const;
  /// Weighted edge cut (ghost DPs crossing localities) of the partition.
  double partition_edge_cut() const;
  /// Max part weight / ideal part weight of the partition (1.0 = perfect).
  double partition_balance() const;

 private:
  /// Validation body once the scenario is resolved (`scn` may be null when
  /// resolution itself failed; scenario-dependent checks are then skipped).
  static std::vector<std::string> validate_resolved(const session_options& opt,
                                                    const scenario* scn);
  void build_distribution();
  void require_distributed(const char* what) const;

  session_options opt_;
  std::shared_ptr<const scenario> scenario_;
  std::optional<dist::tiling> tiling_;
  std::optional<dist::domain_mask> mask_;
  std::vector<int> part_;
  std::optional<dist::ownership_map> own_;
  double edge_cut_ = 0.0;
  double balance_ = 1.0;
  std::unique_ptr<solver_handle> solver_;
};

}  // namespace nlh::api

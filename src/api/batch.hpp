#pragma once
///
/// \file batch.hpp
/// \brief `batch_runner`: many session jobs multiplexed over one shared
/// AMT thread pool — the multi-tenant service layer of the facade
/// (docs/api.md).
///
/// Each `batch_job` is a complete run description (session_options +
/// step budget); `submit` returns an `amt::future<batch_job_result>`
/// immediately. Jobs wait in an admission queue (FIFO or priority order)
/// and at most `batch_options::max_concurrent_jobs` of them execute at a
/// time on the shared pool, each building its own `session` — so jobs
/// with different scenarios, kernel backends and execution modes run
/// concurrently in one process, each keeping its bitwise guarantees
/// (per-session backends, `tests/batch_test.cpp`). Aggregate throughput
/// metrics (jobs/sec, wall, ghost bytes) accumulate as jobs complete.
///
/// Job failures (invalid options, scenario errors, anything thrown while
/// stepping) are captured per job into `batch_job_result::error` — one
/// bad tenant never takes down the batch or the pool.
///

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "amt/future.hpp"
#include "amt/thread_pool.hpp"
#include "api/session.hpp"
#include "ckpt/hibernation.hpp"
#include "obs/metrics.hpp"

namespace nlh::api {

/// One unit of batch work: a full session description plus scheduling
/// metadata.
struct batch_job {
  session_options options;
  /// Steps to advance; 0 = options.num_steps.
  int num_steps = 0;
  /// Larger runs earlier under admission_policy::priority (FIFO among
  /// equal priorities); ignored under FIFO.
  int priority = 0;
  /// Identifier echoed into the result; empty = "job-<sequence>".
  std::string label;
  /// Empty (the default) keeps the historical behaviour: the job builds
  /// its own session and destroys it at completion. Non-empty names a
  /// *persistent tenant*: the runner keeps one session per key alive
  /// across jobs (later jobs continue where earlier ones stopped; their
  /// `options` are ignored after the first), runs same-key jobs strictly
  /// serially, and — when `batch_options::hibernation` is enabled — parks
  /// idle tenants to cold storage under the LRU resident cap
  /// (docs/checkpoint.md).
  std::string session_key;
  /// Admission-class label for the per-class queue-wait split: the job's
  /// submit -> start wait is recorded both into the aggregate
  /// `api/batch/queue_wait_seconds` and into
  /// `api/batch/queue_wait_seconds/<admission_class>` (empty = "default").
  /// Purely observational here — the runner still admits FIFO/priority;
  /// differentiated scheduling lives in `src/svc/` (docs/service.md). The
  /// split is what makes the no-QoS batch path and the `svc` path
  /// comparable class-by-class in one metrics snapshot.
  std::string admission_class;
  /// Optional hook run on the worker after the steps complete (and before
  /// the result future resolves) with the job's live session — e.g. to
  /// gather the field or compute error-vs-exact. Exceptions it throws fail
  /// the job like any stepping error.
  std::function<void(session&)> on_complete;
};

/// Outcome of one job; `metrics` is meaningful only when `ok`.
struct batch_job_result {
  std::string label;
  bool ok = false;
  std::string error;  ///< what() of the failure when !ok
  runtime_metrics metrics;
};

/// How queued jobs are admitted when a concurrency slot frees up.
enum class admission_policy {
  fifo,      ///< strict submission order
  priority,  ///< highest batch_job::priority first, FIFO among equals
};

struct batch_options {
  /// Workers of the shared AMT pool. Each *running* job occupies one
  /// worker for its whole duration, so keep pool_threads >=
  /// max_concurrent_jobs (distributed jobs additionally spin their own
  /// per-locality solver pools, as they do outside the batch).
  unsigned pool_threads = 4;
  /// Admission cap: jobs executing simultaneously.
  int max_concurrent_jobs = 2;
  admission_policy admission = admission_policy::fifo;
  /// Hibernation of idle persistent tenants (docs/checkpoint.md): when
  /// enabled, at most `hibernation.resident_cap` tenant sessions stay in
  /// memory; the least-recently-used parked ones are compressed to cold
  /// storage and transparently restored when their next job is admitted.
  /// Ignored for key-less (ephemeral) jobs.
  ckpt::hibernation_options hibernation;
};

/// Aggregate counters over every job this runner has seen.
struct batch_metrics {
  int jobs_submitted = 0;
  int jobs_completed = 0;  ///< finished OK
  int jobs_failed = 0;
  int jobs_abandoned = 0;  ///< shed by drain() before admission
  long long total_steps = 0;         ///< sum over completed jobs
  std::uint64_t ghost_bytes = 0;     ///< sum over completed jobs
  double wall_seconds = 0.0;         ///< first submit -> last completion
  double jobs_per_second = 0.0;      ///< completed / wall_seconds
  /// Submit -> execution-start latency over every started job (seconds):
  /// the admission-queue + worker-pickup wait a tenant experiences.
  obs::histogram_summary queue_wait;
  /// Execution wall time over every finished job, failed ones included.
  obs::histogram_summary job_duration;
};

/// Validate `opt`, one actionable message per offence; empty = valid.
std::vector<std::string> validate(const batch_options& opt);

/// What batch_runner::drain found and did (docs/service.md has the
/// sibling service-level drain).
struct batch_drain_report {
  /// Queued jobs that never ran: their futures resolved with ok=false and
  /// an "abandoned: ..." error.
  int abandoned = 0;
  /// Jobs that were executing when drain began and finished within the
  /// timeout.
  int in_flight_completed = 0;
  /// Jobs still executing when the timeout expired (0 on a clean drain —
  /// the runner keeps waiting for them in its destructor either way).
  int still_running = 0;
  bool clean() const { return still_running == 0; }
};

class batch_runner {
 public:
  /// Throws std::invalid_argument when validate(opt) reports problems.
  explicit batch_runner(batch_options opt = {});
  /// Waits for every submitted job (futures handed out stay valid — the
  /// shared state outlives the runner).
  ~batch_runner();

  batch_runner(const batch_runner&) = delete;
  batch_runner& operator=(const batch_runner&) = delete;

  /// Queue one job; returns its result future immediately. Never throws
  /// on job-level problems — those resolve into batch_job_result::error.
  amt::future<batch_job_result> submit(batch_job job);

  /// Queue many jobs at once (one admission-queue pass, same ordering
  /// semantics as repeated submit calls).
  std::vector<amt::future<batch_job_result>> submit_all(std::vector<batch_job> jobs);

  /// Block until every submitted job has completed.
  void wait_all();

  /// Graceful shutdown: stop admission permanently, fail every queued job
  /// fast with a distinct "abandoned: ..." error, and wait up to
  /// `timeout_seconds` (< 0 = forever) for in-flight jobs to finish. Jobs
  /// submitted afterwards also fail fast. Idempotent — a second call just
  /// re-waits on whatever is still running.
  batch_drain_report drain(double timeout_seconds);

  /// Snapshot of the aggregate counters (safe any time; wall_seconds of a
  /// still-running batch reads "so far").
  batch_metrics aggregate() const;

  /// aggregate() plus the per-job step-latency summaries of every
  /// completed job, as `api/batch/...` / `api/job/<label>/...` instruments,
  /// with the process AGAS counter paths bridged in
  /// (obs::bridge_counter_registry).
  obs::metrics_snapshot metrics_snapshot() const;
  /// Write metrics_snapshot() as JSON to `path` (obs/metrics_export.hpp).
  void dump_metrics(const std::string& path) const;

  const batch_options& options() const { return opt_; }
  /// The shared pool (e.g. for co-scheduling caller work).
  amt::thread_pool& pool() { return pool_; }
  /// The tenant hibernation manager; null when
  /// batch_options::hibernation.enabled was false.
  ckpt::hibernation_manager* hibernation() { return hib_.get(); }
  const ckpt::hibernation_manager* hibernation() const { return hib_.get(); }
  /// Persistent tenants currently alive (resident + hibernated).
  std::size_t tenant_count() const;

 private:
  struct queued_job {
    batch_job job;
    amt::promise<batch_job_result> done;
    std::uint64_t seq = 0;  ///< FIFO tiebreak
    std::chrono::steady_clock::time_point submitted;  ///< queue-wait origin
  };

  /// Admit queued jobs while slots are free, skipping jobs whose tenant
  /// is mid-job (same-key jobs run strictly serially — also what makes
  /// the hibernation callbacks safe to run without per-session locks).
  /// Caller holds mu_.
  void pump_locked();
  /// Runs on a pool worker: build (or reactivate) the session, step,
  /// fulfill the promise.
  void execute(queued_job qj);
  /// The persistent-tenant body of execute(): reuse/build the keyed
  /// session, activate/park around the run. Tenant metrics span the
  /// tenant's whole life, so the job is charged deltas (`steps_done`,
  /// `ghost_delta`), not the cumulative counters.
  void execute_tenant(queued_job& qj, batch_job_result& res,
                      long long& steps_done, std::uint64_t& ghost_delta);

  batch_options opt_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<queued_job> queue_;
  int running_ = 0;
  bool draining_ = false;  ///< set (forever) by drain(): admission is closed
  std::uint64_t next_seq_ = 0;
  batch_metrics agg_;
  bool clock_started_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  /// Latency instruments (internally synchronized) and the completed jobs'
  /// step-latency summaries (guarded by mu_) for metrics_snapshot().
  obs::histogram queue_wait_hist_;
  obs::histogram job_duration_hist_;
  /// Queue-wait split by batch_job::admission_class ("" -> "default"),
  /// exported as `api/batch/queue_wait_seconds/<class>`. Map insertion is
  /// guarded by mu_; node addresses are stable, and the histograms are
  /// internally synchronized, so recording happens outside the lock.
  std::map<std::string, obs::histogram> queue_wait_by_class_;
  std::vector<std::pair<std::string, obs::histogram_summary>> job_step_latency_;
  /// Per-job auto-rebalancing observables (guarded by mu_), recorded only
  /// for jobs that ran with `auto_rebalance.enabled` — exported as
  /// `api/job/<label>/balance/...` so a soak's metrics JSON proves the live
  /// rebalancer ran (docs/balance.md).
  struct job_rebalance {
    std::string label;
    std::uint64_t epochs = 0;
    std::uint64_t moves = 0;
    double imbalance_before = 0.0;
    double imbalance_after = 0.0;
  };
  std::vector<job_rebalance> job_rebalance_;
  /// Persistent tenants (batch_job::session_key); guarded by mu_. `busy`
  /// is set at admission and cleared at completion, so pump_locked never
  /// double-books a key. Sessions are heap-stable: execute() touches them
  /// outside mu_ while their busy flag protects them.
  struct tenant {
    std::unique_ptr<session> sess;
    bool busy = false;
    bool registered = false;  ///< added to hib_ already
  };
  std::map<std::string, tenant> tenants_;
  /// LRU hibernation of parked tenants; null unless
  /// batch_options::hibernation.enabled.
  std::unique_ptr<ckpt::hibernation_manager> hib_;
  amt::thread_pool pool_;  ///< last member: joins before the state above dies
};

}  // namespace nlh::api

///
/// \file scenario.cpp
/// \brief Built-in scenarios and the string-keyed registry. The
/// manufactured scenario delegates to the exact same math as
/// nonlocal::manufactured_problem, so routing the solvers through it
/// changes no bits of any existing run.
///

#include "api/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "dist/tiling.hpp"
#include "model/crack.hpp"
#include "nonlocal/problem.hpp"
#include "support/assert.hpp"

namespace nlh::api {

// ------------------------------------------------------- scenario defaults --

void scenario::fill_aux(const scenario_context&, double, const nonlocal::dp_rect&,
                        std::vector<double>&) const {}

void scenario::source_into(const scenario_context& ctx, double,
                           const std::vector<double>&, const nonlocal::dp_rect& rect,
                           std::vector<double>& out) const {
  const auto& g = *ctx.grid;
  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j) out[g.flat(i, j)] = 0.0;
}

double scenario::exact(double, double, double) const {
  NLH_ASSERT_MSG(false, "scenario::exact called on a scenario without an exact "
                        "solution (check has_exact() first)");
  return 0.0;
}

std::vector<char> scenario::sd_mask(int, int) const { return {}; }

std::vector<double> scenario::sd_work(int, int) const { return {}; }

// --------------------------------------------------------------- registry --

namespace {

using registry_map = std::map<std::string, scenario_factory>;

registry_map& registry() {
  static registry_map* r = [] {
    auto* m = new registry_map;
    (*m)["manufactured"] = [] { return std::make_shared<const manufactured_scenario>(); };
    (*m)["gaussian_pulse"] = [] {
      return std::make_shared<const gaussian_pulse_scenario>();
    };
    (*m)["lshape"] = [] { return std::make_shared<const lshape_scenario>(); };
    (*m)["crack"] = [] { return std::make_shared<const crack_scenario>(); };
    return m;
  }();
  return *r;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void register_scenario(const std::string& name, scenario_factory factory) {
  NLH_ASSERT_MSG(!name.empty(), "register_scenario: empty name");
  NLH_ASSERT_MSG(factory != nullptr, "register_scenario: null factory");
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(factory);
}

std::shared_ptr<const scenario> make_scenario(const std::string& name) {
  scenario_factory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end()) {
      std::ostringstream msg;
      msg << "unknown scenario '" << name << "'; registered scenarios:";
      for (const auto& [key, _] : reg) msg << " " << key;
      throw std::invalid_argument(msg.str());
    }
    factory = it->second;
  }
  // Invoked outside the lock: factories may themselves consult the
  // registry (e.g. compose over make_scenario).
  return factory();
}

std::vector<std::string> scenario_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, _] : registry()) names.push_back(key);
  return names;  // std::map iteration is already sorted
}

// ----------------------------------------------------------- manufactured --

double manufactured_scenario::initial(double x1, double x2) const {
  return nonlocal::manufactured_problem::u0(x1, x2);
}

void manufactured_scenario::fill_aux(const scenario_context& ctx, double t,
                                     const nonlocal::dp_rect& rect,
                                     std::vector<double>& aux) const {
  const auto& g = *ctx.grid;
  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j)
      aux[g.flat(i, j)] = nonlocal::manufactured_problem::w(t, g.x(j), g.y(i));
}

void manufactured_scenario::source_into(const scenario_context& ctx, double t,
                                        const std::vector<double>& aux,
                                        const nonlocal::dp_rect& rect,
                                        std::vector<double>& out) const {
  const auto& g = *ctx.grid;
  NLH_ASSERT(aux.size() == g.total() && out.size() == g.total());
  // b = dw/dt - L_h[w] over rect: identical expression order to
  // manufactured_problem::source_into, so the bits match the historical
  // hard-wired path.
  nonlocal::apply_nonlocal_operator(g, *ctx.plan, ctx.scaling_constant, aux, out, rect);
  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const auto idx = g.flat(i, j);
      out[idx] = nonlocal::manufactured_problem::dwdt(t, g.x(j), g.y(i)) - out[idx];
    }
}

double manufactured_scenario::exact(double t, double x1, double x2) const {
  return nonlocal::manufactured_problem::w(t, x1, x2);
}

// --------------------------------------------------------- gaussian pulse --

gaussian_pulse_scenario::gaussian_pulse_scenario(double center_x, double center_y,
                                                 double sigma, double amplitude,
                                                 double support_radius)
    : cx_(center_x),
      cy_(center_y),
      sigma_(sigma),
      amplitude_(amplitude),
      support_radius_(support_radius) {
  NLH_ASSERT_MSG(sigma > 0.0, "gaussian_pulse_scenario: sigma must be positive");
  NLH_ASSERT_MSG(support_radius >= 0.0,
                 "gaussian_pulse_scenario: support_radius must be >= 0");
}

double gaussian_pulse_scenario::initial(double x1, double x2) const {
  if (x1 < 0.0 || x1 > 1.0 || x2 < 0.0 || x2 > 1.0) return 0.0;
  const double dx = x1 - cx_;
  const double dy = x2 - cy_;
  const double r2 = dx * dx + dy * dy;
  const double inv2s2 = 1.0 / (2.0 * sigma_ * sigma_);
  if (support_radius_ > 0.0) {
    if (r2 >= support_radius_ * support_radius_) return 0.0;
    // Shift the profile so it reaches the cutoff continuously; the far
    // field is exact 0.0, not a tiny tail.
    return amplitude_ *
           (std::exp(-r2 * inv2s2) -
            std::exp(-support_radius_ * support_radius_ * inv2s2));
  }
  return amplitude_ * std::exp(-r2 * inv2s2);
}

// ------------------------------------------------------------------ lshape --

double lshape_scenario::initial(double x1, double x2) const {
  // Pulse centered in the lower-left quadrant, away from the re-entrant
  // corner of the L.
  return gaussian_pulse_scenario(0.3, 0.3, 0.08).initial(x1, x2);
}

std::vector<char> lshape_scenario::sd_mask(int sd_rows, int sd_cols) const {
  // Top-right SD quadrant void — matches dist::domain_mask::l_shape.
  const int half_rows = sd_rows / 2;
  const int half_cols = sd_cols / 2;
  std::vector<char> mask(static_cast<std::size_t>(sd_rows) * sd_cols, 1);
  for (int r = 0; r < half_rows; ++r)
    for (int c = half_cols; c < sd_cols; ++c)
      mask[static_cast<std::size_t>(r) * sd_cols + c] = 0;
  return mask;
}

// ------------------------------------------------------------------- crack --

crack_scenario::crack_scenario(double x0, double y0, double x1, double y1,
                               double work_reduction)
    : x0_(x0), y0_(y0), x1_(x1), y1_(y1), reduction_(work_reduction) {
  NLH_ASSERT_MSG(work_reduction >= 0.0 && work_reduction < 1.0,
                 "crack_scenario: work_reduction must be in [0, 1)");
}

double crack_scenario::initial(double x1, double x2) const {
  // The crack perturbs work, not temperature: start from the same smooth
  // field as the manufactured problem so the solve stays comparable.
  return nonlocal::manufactured_problem::u0(x1, x2);
}

std::vector<double> crack_scenario::sd_work(int sd_rows, int sd_cols) const {
  // crack_work_scale only reads the SD-grid geometry, so a unit tiling is
  // enough to reuse it here.
  const dist::tiling t(sd_rows, sd_cols, 1, 1);
  return model::crack_work_scale(t, model::crack_line{x0_, y0_, x1_, y1_},
                                 reduction_);
}

}  // namespace nlh::api

///
/// \file session.cpp
/// \brief Session facade implementation: option validation, the internal
/// mesh-dual / partition / tiling / ownership chain, and the serial /
/// distributed solver_handle backends.
///

#include "api/session.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "amt/async.hpp"
#include "ckpt/codec.hpp"
#include "dist/dist_solver.hpp"
#include "nonlocal/error.hpp"
#include "nonlocal/kernel/backend.hpp"
#include "obs/metrics_export.hpp"
#include "obs/tracer.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace nlh::api {

// ------------------------------------------------------------ solver_impl --

/// Pure solver body behind the handle: one virtual per solver observable.
/// The handle owns the threading (locks, driver, observer); implementations
/// stay single-threaded and oblivious to it.
class solver_impl {
 public:
  virtual ~solver_impl() = default;
  virtual void do_step() = 0;
  virtual const nonlocal::grid2d& grid() const = 0;
  virtual std::vector<double> field() const = 0;
  virtual double dt() const = 0;
  virtual int current_step() const = 0;
  virtual std::uint64_t ghost_bytes() const { return 0; }
  virtual nonlocal::kernel_backend backend() const = 0;
  /// Overlap observables (serial defaults: no exchange, nothing to hide).
  virtual std::string overlap_schedule_name() const { return "serial"; }
  virtual double comm_wait_seconds() const { return 0.0; }
  virtual std::uint64_t overlap_early_tasks() const { return 0; }
  virtual bool distributed() const { return false; }
  /// Auto-rebalancing observables (all-zero serial / when disabled).
  virtual balance::rebalance_stats rebalance_stats() const { return {}; }
  /// Append backend-specific instruments to a metrics snapshot (serial has
  /// none beyond what runtime_metrics already carries).
  virtual void metrics_into(obs::metrics_snapshot&) const {}
  /// Serialize the full solver state (self-contained, self-describing)
  /// through `c` into `w`; returns the raw pre-codec payload bytes (the
  /// compression-ratio denominator). import_state() on a freshly
  /// constructed impl of the same options must rebuild bitwise-identical
  /// state — the hibernate→restore guarantee (docs/checkpoint.md).
  virtual std::uint64_t export_state(net::archive_writer& w,
                                     const ckpt::codec& c) = 0;
  virtual void import_state(net::archive_reader& r) = 0;
};

namespace {

/// The session's backend choice as the solver-config optional: pin when
/// the option names one, follow the process default otherwise. Validation
/// already rejected unknown names.
std::optional<nonlocal::kernel_backend> resolve_backend(const session_options& o) {
  if (o.kernel_backend.empty()) return std::nullopt;
  return nonlocal::parse_kernel_backend(o.kernel_backend);
}

/// Body backed by the single-threaded reference solver.
class serial_impl final : public solver_impl {
 public:
  serial_impl(const session_options& opt, std::shared_ptr<const scenario> scn)
      : solver_(make_config(opt), std::move(scn)) {
    solver_.set_initial_condition();
  }

  void do_step() override {
    solver_.step(steps_);
    ++steps_;
  }
  const nonlocal::grid2d& grid() const override { return solver_.grid(); }
  std::vector<double> field() const override { return solver_.field(); }
  double dt() const override { return solver_.dt(); }
  int current_step() const override { return steps_; }
  nonlocal::kernel_backend backend() const override { return solver_.backend(); }
  void metrics_into(obs::metrics_snapshot& snap) const override {
    // Blocked-kernel execution observables (docs/kernels.md) — same names
    // the distributed impl exports, so dashboards don't branch on mode.
    const auto& ks = solver_.kernel_stats();
    snap.add_counter("kernel/applies", ks.applies);
    snap.add_counter("kernel/blocks", ks.blocks);
    snap.add_counter("kernel/dps", ks.dps);
    snap.add_gauge("kernel/mdps", ks.mdps());
    snap.add_gauge("kernel/block_rows",
                   static_cast<double>(solver_.kernel_plan().blocking().row_block));
    snap.add_gauge("kernel/col_tile",
                   static_cast<double>(solver_.kernel_plan().blocking().col_tile));
  }

  std::uint64_t export_state(net::archive_writer& w,
                             const ckpt::codec& c) override {
    w.write(static_cast<std::uint8_t>('S'));
    w.write(static_cast<std::int64_t>(steps_));
    w.write(c.name());
    const auto& u = solver_.field();  // padded layout
    w.write(static_cast<std::uint64_t>(u.size()));
    return c.encode(u.data(), u.size(), nullptr, w).raw_bytes;
  }

  void import_state(net::archive_reader& r) override {
    NLH_ASSERT_MSG(r.read<std::uint8_t>() == 'S',
                   "serial_impl::import_state: wrong state tag");
    steps_ = static_cast<int>(r.read<std::int64_t>());
    const ckpt::codec* c = ckpt::find_codec(r.read_string());
    NLH_ASSERT_MSG(c != nullptr, "serial_impl::import_state: unknown codec");
    std::vector<double> u(static_cast<std::size_t>(r.read<std::uint64_t>()));
    c->decode(r, u.data(), u.size(), nullptr);
    solver_.set_field(std::move(u));
  }

 private:
  static nonlocal::solver_config make_config(const session_options& o) {
    nonlocal::solver_config cfg;
    cfg.n = o.n;
    cfg.epsilon_factor = o.epsilon_factor;
    cfg.conductivity = o.conductivity;
    cfg.dt = o.dt;
    cfg.dt_safety = o.dt_safety;
    cfg.num_steps = o.num_steps;
    cfg.kind = o.kind;
    cfg.integrator = o.integrator;
    cfg.backend = resolve_backend(o);
    cfg.tuning = o.kernel_tuning;
    return cfg;
  }

  nonlocal::serial_solver solver_;
  int steps_ = 0;
};

/// Body backed by the asynchronous distributed solver.
class dist_impl final : public solver_impl {
 public:
  dist_impl(const session_options& opt, std::shared_ptr<const scenario> scn,
            const dist::ownership_map& own)
      : solver_(make_config(opt), own, std::move(scn)) {
    solver_.set_initial_condition();
  }

  void do_step() override { solver_.step(); }
  const nonlocal::grid2d& grid() const override { return solver_.grid(); }
  std::vector<double> field() const override { return solver_.gather(); }
  double dt() const override { return solver_.dt(); }
  int current_step() const override { return solver_.current_step(); }
  std::uint64_t ghost_bytes() const override { return solver_.ghost_bytes(); }
  nonlocal::kernel_backend backend() const override { return solver_.backend(); }
  std::string overlap_schedule_name() const override {
    return dist::overlap_schedule_name(solver_.schedule());
  }
  double comm_wait_seconds() const override { return solver_.stats().wait_seconds; }
  std::uint64_t overlap_early_tasks() const override {
    const auto s = solver_.stats();
    return s.interior_early + s.strips_early;
  }
  bool distributed() const override { return true; }
  balance::rebalance_stats rebalance_stats() const override {
    return solver_.rebalance_stats();
  }
  void metrics_into(obs::metrics_snapshot& snap) const override {
    solver_.metrics_into(snap);
  }

  std::uint64_t export_state(net::archive_writer& w,
                             const ckpt::codec& /*c*/) override {
    // The distributed snapshot rides the solver's own checkpoint path —
    // make_config feeds the same codec choice into
    // dist_config::checkpoint, and the blob is self-describing.
    w.write(static_cast<std::uint8_t>('D'));
    w.write(solver_.checkpoint_full());
    const auto& t = solver_.sd_tiling();
    return static_cast<std::uint64_t>(t.num_sds()) * t.sd_size() * t.sd_size() *
           sizeof(double);
  }

  void import_state(net::archive_reader& r) override {
    NLH_ASSERT_MSG(r.read<std::uint8_t>() == 'D',
                   "dist_impl::import_state: wrong state tag");
    const auto blob = r.read_vector<std::byte>();
    solver_.restore(blob);
  }

 private:
  static dist::dist_config make_config(const session_options& o) {
    dist::dist_config cfg;
    cfg.sd_rows = cfg.sd_cols = o.sd_grid;
    cfg.sd_size = o.n / o.sd_grid;
    cfg.epsilon_factor = o.epsilon_factor;
    cfg.conductivity = o.conductivity;
    cfg.dt = o.dt;
    cfg.dt_safety = o.dt_safety;
    cfg.kind = o.kind;
    cfg.threads_per_locality = o.threads_per_locality;
    cfg.overlap_communication = o.overlap_communication;
    // Validation already rejected unknown names.
    if (const auto s = dist::parse_overlap_schedule(o.overlap_schedule))
      cfg.schedule = *s;
    cfg.backend = resolve_backend(o);
    cfg.tuning = o.kernel_tuning;
    cfg.rebalance = o.auto_rebalance;
    // One codec choice drives both the checkpoint path and hibernation.
    cfg.checkpoint.codec = o.hibernation.codec;
    return cfg;
  }

  dist::dist_solver solver_;
};

bool is_power_of_two(int v) { return v >= 1 && (v & (v - 1)) == 0; }

}  // namespace

// ----------------------------------------------------------- solver_handle --

namespace {
/// The one key a handle's session-owned hibernation manager tracks.
constexpr const char* kSelfKey = "session";
}  // namespace

solver_handle::solver_handle(std::shared_ptr<const scenario> scn,
                             std::unique_ptr<solver_impl> impl,
                             impl_factory rebuild,
                             ckpt::hibernation_options hib_opt)
    : scenario_(std::move(scn)),
      impl_(std::move(impl)),
      rebuild_(std::move(rebuild)),
      hib_codec_(ckpt::find_codec(hib_opt.codec)),
      cached_grid_(impl_->grid()),
      cached_dt_(impl_->dt()),
      cached_backend_(impl_->backend()) {
  NLH_ASSERT_MSG(hib_codec_ != nullptr,
                 "solver_handle: unknown hibernation codec (validation gap)");
  if (hib_opt.enabled) {
    hib_ = std::make_unique<ckpt::hibernation_manager>(std::move(hib_opt));
    // Callbacks run on the thread that triggered them, which already holds
    // step_mu_ (recursive) through hibernate()/ensure_resident_locked().
    hib_->add_session(
        kSelfKey,
        {[this](net::byte_buffer reuse) {
           return export_state_locked(std::move(reuse));
         },
         [this](const net::byte_buffer& bytes) { import_state_locked(bytes); }});
  }
}

// Members are destroyed in reverse declaration order: driver_ first, whose
// thread_pool destructor drains queued async steps while impl_ is still
// alive — the join is structural, no per-implementation cleanup needed.
solver_handle::~solver_handle() = default;

runtime_metrics solver_handle::run_steps(int num_steps) {
  if (num_steps < 0)
    throw std::invalid_argument(
        "solver_handle: the number of steps must be non-negative (got " +
        std::to_string(num_steps) + ")");
  std::lock_guard<std::recursive_mutex> step_lk(step_mu_);
  ensure_resident_locked();
  for (int k = 0; k < num_steps; ++k) {
    support::stopwatch sw;
    {
      NLH_TRACE_SPAN_ARG("api/step",
                         static_cast<std::uint64_t>(impl_->current_step()));
      impl_->do_step();
    }
    const double step_s = sw.elapsed_s();
    step_latency_hist_.record(step_s);
    step_observer cb;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      wall_seconds_ += step_s;
      cb = observer_;  // copy: set_observer may swap it mid-run
    }
    if (cb) cb(step_event{impl_->current_step(), impl_->current_step() * dt()});
  }
  return metrics_locked();
}

amt::thread_pool& solver_handle::driver() {
  std::lock_guard<std::mutex> lk(driver_mu_);
  if (!driver_) driver_ = std::make_unique<amt::thread_pool>(1);
  return *driver_;
}

void solver_handle::step() { run_steps(1); }

void solver_handle::run(int steps) { run_steps(steps); }

amt::future<runtime_metrics> solver_handle::step_async() { return run_async(1); }

amt::future<runtime_metrics> solver_handle::run_async(int num_steps) {
  return amt::async(driver(),
                    [this, num_steps] { return run_steps(num_steps); });
}

void solver_handle::set_observer(step_observer cb) {
  std::lock_guard<std::mutex> lk(state_mu_);
  observer_ = std::move(cb);
}

// grid/dt/backend stay lock-free (documented immutable) by serving the
// construction-time cache, so they remain valid while the solver state is
// hibernated and impl_ is gone.
const nonlocal::grid2d& solver_handle::grid() const { return *cached_grid_; }

double solver_handle::dt() const { return cached_dt_; }

nonlocal::kernel_backend solver_handle::backend() const { return cached_backend_; }

std::vector<double> solver_handle::field() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  ensure_resident_locked();
  return impl_->field();
}

int solver_handle::current_step() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  ensure_resident_locked();
  return impl_->current_step();
}

std::uint64_t solver_handle::ghost_bytes() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  ensure_resident_locked();
  return impl_->ghost_bytes();
}

void solver_handle::ensure_resident_locked() const {
  if (impl_) return;
  NLH_ASSERT_MSG(hib_ != nullptr,
                 "solver_handle: state was exported (export_and_release); the "
                 "managing layer must import_state() before use");
  // activate() restores through the import callback; park right away so
  // the single entry goes back to being LRU-eligible for hibernate().
  hib_->activate(kSelfKey);
  hib_->park(kSelfKey);
}

ckpt::snapshot_blob solver_handle::export_state_locked(net::byte_buffer reuse) {
  NLH_ASSERT_MSG(impl_ != nullptr, "solver_handle: state already exported");
  NLH_TRACE_SPAN("api/session_export");
  net::archive_writer w(std::move(reuse));
  const auto raw = impl_->export_state(w, *hib_codec_);
  impl_.reset();  // release the in-memory solver — the point of the exercise
  return {w.take(), raw};
}

void solver_handle::import_state_locked(const net::byte_buffer& bytes) {
  NLH_ASSERT_MSG(impl_ == nullptr, "solver_handle: import over live state");
  NLH_TRACE_SPAN("api/session_import");
  impl_ = rebuild_();
  net::archive_reader r(bytes);
  impl_->import_state(r);
  NLH_ASSERT_MSG(r.exhausted(), "solver_handle: trailing bytes in session blob");
}

void solver_handle::hibernate() {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  if (!hib_)
    throw std::logic_error(
        "solver_handle::hibernate: session_options::hibernation is disabled");
  hib_->hibernate(kSelfKey);  // false (no-op) when already cold
}

bool solver_handle::hibernated() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  return impl_ == nullptr;
}

ckpt::snapshot_blob solver_handle::export_and_release(net::byte_buffer reuse) {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  return export_state_locked(std::move(reuse));
}

void solver_handle::import_state(const net::byte_buffer& bytes) {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  import_state_locked(bytes);
}

std::vector<double> solver_handle::exact_now_locked() const {
  if (!scenario_->has_exact())
    throw std::logic_error("solver_handle: scenario '" + scenario_->name() +
                           "' provides no exact solution; error-vs-exact metrics "
                           "are unavailable (check active_scenario().has_exact())");
  const auto& g = impl_->grid();
  auto exact = g.make_field();
  const double t = impl_->current_step() * impl_->dt();
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      exact[g.flat(i, j)] = scenario_->exact(t, g.x(j), g.y(i));
  return exact;
}

double solver_handle::error_vs_exact() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  ensure_resident_locked();
  return nonlocal::error_max_relative(impl_->grid(), exact_now_locked(),
                                      impl_->field());
}

double solver_handle::error_ek_vs_exact() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  ensure_resident_locked();
  return nonlocal::error_ek(impl_->grid(), exact_now_locked(), impl_->field());
}

runtime_metrics solver_handle::metrics_locked() const {
  ensure_resident_locked();
  runtime_metrics m;
  m.steps = impl_->current_step();
  m.dt = impl_->dt();
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    m.wall_seconds = wall_seconds_;
  }
  m.ghost_bytes = impl_->ghost_bytes();
  m.kernel_backend = nonlocal::kernel_backend_name(impl_->backend());
  m.overlap_schedule = impl_->overlap_schedule_name();
  m.comm_wait_seconds = impl_->comm_wait_seconds();
  m.overlap_early_tasks = impl_->overlap_early_tasks();
  m.is_distributed = impl_->distributed();
  m.step_latency = step_latency_hist_.summary();
  const auto rs = impl_->rebalance_stats();
  m.rebalance_epochs = rs.epochs;
  m.rebalance_moves = rs.moves;
  m.rebalance_imbalance_before = rs.last_imbalance_before;
  m.rebalance_imbalance_after = rs.last_imbalance_after;
  if (hib_) {
    const auto hs = hib_->current_stats();
    m.hibernates = hs.hibernates;
    m.restores = hs.restores;
  }
  return m;
}

runtime_metrics solver_handle::metrics() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  return metrics_locked();
}

obs::metrics_snapshot solver_handle::metrics_snapshot() const {
  std::lock_guard<std::recursive_mutex> lk(step_mu_);
  const auto m = metrics_locked();
  obs::metrics_snapshot snap;
  snap.add_counter("api/session/steps", static_cast<std::uint64_t>(m.steps));
  snap.add_counter("api/session/ghost_bytes", m.ghost_bytes);
  snap.add_counter("api/session/overlap_early_tasks", m.overlap_early_tasks);
  snap.add_gauge("api/session/dt", m.dt);
  snap.add_gauge("api/session/wall_seconds", m.wall_seconds);
  snap.add_gauge("api/session/comm_wait_seconds", m.comm_wait_seconds);
  snap.add_gauge("api/session/is_distributed", m.is_distributed ? 1.0 : 0.0);
  snap.add_histogram("api/session/step_latency_seconds", m.step_latency);
  impl_->metrics_into(snap);
  if (hib_) hib_->metrics_into(snap, "api/session/ckpt/");
  return snap;
}

void solver_handle::dump_metrics(const std::string& path) const {
  obs::write_metrics_json(path, metrics_snapshot());
}

// ---------------------------------------------------------------- session --

std::vector<std::string> session::validate(const session_options& opt) {
  std::vector<std::string> errs;
  std::shared_ptr<const scenario> scn = opt.custom_scenario;
  if (!scn) {
    try {
      scn = make_scenario(opt.scenario);
    } catch (const std::invalid_argument& e) {
      errs.push_back(std::string("session_options.scenario: ") + e.what());
    }
  }
  const auto rest = validate_resolved(opt, scn.get());
  errs.insert(errs.end(), rest.begin(), rest.end());
  return errs;
}

std::vector<std::string> session::validate_resolved(const session_options& opt,
                                                    const scenario* scn) {
  std::vector<std::string> errs;
  auto err = [&errs](const std::ostringstream& msg) { errs.push_back(msg.str()); };

  if (opt.n < 1) {
    std::ostringstream m;
    m << "session_options.n: interior DPs per dimension must be positive (got "
      << opt.n << ")";
    err(m);
  }
  if (opt.epsilon_factor < 1) {
    std::ostringstream m;
    m << "session_options.epsilon_factor: must be at least 1 (got "
      << opt.epsilon_factor << ")";
    err(m);
  } else if (opt.n >= 1 && opt.epsilon_factor > opt.n) {
    std::ostringstream m;
    m << "session_options.epsilon_factor: horizon " << opt.epsilon_factor
      << " exceeds the mesh size n = " << opt.n;
    err(m);
  }
  if (opt.conductivity <= 0.0) {
    std::ostringstream m;
    m << "session_options.conductivity: must be positive (got " << opt.conductivity
      << ")";
    err(m);
  }
  if (opt.dt < 0.0) {
    std::ostringstream m;
    m << "session_options.dt: must be non-negative; 0 selects the stability "
         "bound * dt_safety (got "
      << opt.dt << ")";
    err(m);
  }
  if (opt.dt_safety <= 0.0) {
    std::ostringstream m;
    m << "session_options.dt_safety: must be positive (got " << opt.dt_safety
      << ")";
    err(m);
  }
  if (opt.num_steps < 1) {
    std::ostringstream m;
    m << "session_options.num_steps: must be at least 1 (got " << opt.num_steps
      << ")";
    err(m);
  }
  if (!opt.kernel_backend.empty() &&
      !nonlocal::parse_kernel_backend(opt.kernel_backend)) {
    std::ostringstream m;
    m << "session_options.kernel_backend: unknown backend '" << opt.kernel_backend
      << "'; valid: scalar, row_run, simd, avx512 (empty keeps the process "
         "default)";
    err(m);
  }
  // Tuning fields: zero derives, positive overrides (clamped downstream);
  // negative is always a mistake, so name the field instead of clamping it
  // silently.
  if (opt.kernel_tuning.l1d_bytes < 0) {
    std::ostringstream m;
    m << "session_options.kernel_tuning.l1d_bytes: must be non-negative; 0 "
         "probes the machine (got "
      << opt.kernel_tuning.l1d_bytes << ")";
    err(m);
  }
  if (opt.kernel_tuning.l2_bytes < 0) {
    std::ostringstream m;
    m << "session_options.kernel_tuning.l2_bytes: must be non-negative; 0 "
         "probes the machine (got "
      << opt.kernel_tuning.l2_bytes << ")";
    err(m);
  }
  if (opt.kernel_tuning.row_block < 0) {
    std::ostringstream m;
    m << "session_options.kernel_tuning.row_block: must be non-negative; 0 "
         "derives from the stencil reach (got "
      << opt.kernel_tuning.row_block << ")";
    err(m);
  }
  if (opt.kernel_tuning.col_tile < 0) {
    std::ostringstream m;
    m << "session_options.kernel_tuning.col_tile: must be non-negative; 0 "
         "derives from the cache model (got "
      << opt.kernel_tuning.col_tile << ")";
    err(m);
  }

  // Validated regardless of `enabled`: the codec choice also drives the
  // distributed checkpoint path and the export primitives.
  if (const auto herr = opt.hibernation.validate(); !herr.empty()) {
    std::ostringstream m;
    m << "session_options." << herr;
    err(m);
  }

  if (opt.mode == execution_mode::serial && opt.auto_rebalance.enabled) {
    std::ostringstream m;
    m << "session_options.auto_rebalance: live rebalancing needs the "
         "distributed backend (mode = serial has a single locality and "
         "nothing to rebalance)";
    err(m);
  }
  for (auto& e : balance::validate_rebalance_policy(
           opt.auto_rebalance, "session_options.auto_rebalance."))
    errs.push_back(std::move(e));

  if (opt.mode == execution_mode::distributed) {
    if (opt.sd_grid < 1) {
      std::ostringstream m;
      m << "session_options.sd_grid: must be positive (got " << opt.sd_grid << ")";
      err(m);
    } else if (opt.n >= 1) {
      if (opt.n % opt.sd_grid != 0) {
        std::ostringstream m;
        m << "session_options.sd_grid: n = " << opt.n
          << " is not divisible by sd_grid = " << opt.sd_grid
          << "; pick a divisor so SDs tile the mesh";
        err(m);
      } else if (opt.epsilon_factor >= 1 && opt.n / opt.sd_grid < opt.epsilon_factor) {
        std::ostringstream m;
        m << "session_options.sd_grid: SD side n/sd_grid = " << opt.n / opt.sd_grid
          << " is smaller than the ghost width epsilon_factor = "
          << opt.epsilon_factor << "; use fewer, larger SDs";
        err(m);
      }
    }
    if (opt.nodes < 1) {
      std::ostringstream m;
      m << "session_options.nodes: must be at least 1 (got " << opt.nodes << ")";
      err(m);
    }
    if (opt.threads_per_locality < 1) {
      std::ostringstream m;
      m << "session_options.threads_per_locality: must be at least 1 (got "
        << opt.threads_per_locality << ")";
      err(m);
    }
    if (!dist::parse_overlap_schedule(opt.overlap_schedule)) {
      std::ostringstream m;
      m << "session_options.overlap_schedule: unknown schedule '"
        << opt.overlap_schedule
        << "'; valid: per_direction, coarse, bulk_sync";
      err(m);
    }
    if (opt.integrator != nonlocal::time_integrator::forward_euler) {
      std::ostringstream m;
      m << "session_options.integrator: the distributed solver integrates "
           "forward Euler only; use serial mode for RK schemes";
      err(m);
    }
    if (opt.partitioner == partition_strategy::recursive_bisection &&
        !is_power_of_two(opt.nodes)) {
      std::ostringstream m;
      m << "session_options.partitioner: recursive_bisection requires a "
           "power-of-two node count (got nodes = "
        << opt.nodes << ")";
      err(m);
    }
    if (scn && opt.sd_grid >= 1) {
      const auto mask = scn->sd_mask(opt.sd_grid, opt.sd_grid);
      const auto num_sds =
          static_cast<std::size_t>(opt.sd_grid) * static_cast<std::size_t>(opt.sd_grid);
      if (!mask.empty() && mask.size() != num_sds) {
        std::ostringstream m;
        m << "session_options.scenario: scenario '" << scn->name()
          << "' returned an SD mask of size " << mask.size() << " for a "
          << opt.sd_grid << "x" << opt.sd_grid << " SD grid";
        err(m);
      } else {
        std::size_t active = num_sds;
        if (!mask.empty()) {
          active = 0;
          for (const char a : mask) active += a != 0 ? 1u : 0u;
        }
        if (opt.nodes >= 1 && static_cast<std::size_t>(opt.nodes) > active) {
          std::ostringstream m;
          m << "session_options.nodes: " << opt.nodes << " localities exceed the "
            << active << " active SDs; every locality needs at least one SD";
          err(m);
        }
      }
    }
  }

  return errs;
}

session::session(session_options opt) : opt_(std::move(opt)) {
  std::vector<std::string> errs;
  scenario_ = opt_.custom_scenario;
  if (!scenario_) {
    try {
      scenario_ = make_scenario(opt_.scenario);
    } catch (const std::invalid_argument& e) {
      errs.push_back(std::string("session_options.scenario: ") + e.what());
    }
  }
  const auto rest = validate_resolved(opt_, scenario_.get());
  errs.insert(errs.end(), rest.begin(), rest.end());
  if (!errs.empty()) {
    std::ostringstream msg;
    msg << "invalid session_options (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }

  // The backend choice is applied per solver (the handle pins its
  // stencil_plan at construction) — never to the process default — so
  // sessions with different backends coexist in one process.
  if (opt_.mode == execution_mode::distributed) build_distribution();
}

void session::build_distribution() {
  const int sd_size = opt_.n / opt_.sd_grid;
  tiling_.emplace(opt_.sd_grid, opt_.sd_grid, sd_size, opt_.epsilon_factor);

  const auto raw_mask = scenario_->sd_mask(opt_.sd_grid, opt_.sd_grid);
  if (raw_mask.empty()) {
    mask_.emplace(dist::domain_mask::full(*tiling_));
  } else {
    mask_.emplace(dist::domain_mask::from_predicate(
        *tiling_, [&raw_mask, this](int r, int c) {
          return raw_mask[static_cast<std::size_t>(r) * opt_.sd_grid + c] != 0;
        }));
  }

  partition::mesh_dual_options mopt;
  mopt.sd_rows = mopt.sd_cols = opt_.sd_grid;
  mopt.sd_size = sd_size;
  mopt.ghost_width = opt_.epsilon_factor;
  const auto work = scenario_->sd_work(opt_.sd_grid, opt_.sd_grid);
  if (!work.empty()) {
    // Scenario work values are multipliers; the dual graph wants absolute
    // per-SD vertex weights (DP count * multiplier).
    mopt.sd_work.resize(work.size());
    const double dps = static_cast<double>(sd_size) * sd_size;
    for (std::size_t i = 0; i < work.size(); ++i) mopt.sd_work[i] = work[i] * dps;
  }

  partition::partition_options popt;
  popt.k = opt_.nodes;

  const bool masked = mask_->num_active() != tiling_->num_sds();
  if (masked) {
    const auto dual = partition::build_mesh_dual_masked(mopt, mask_->raw());
    partition::partition_vector mpart;
    switch (opt_.partitioner) {
      case partition_strategy::multilevel:
        mpart = partition::multilevel_partition(dual.g, popt);
        break;
      case partition_strategy::recursive_bisection:
        mpart = partition::recursive_bisection_partition(dual.g, popt);
        break;
      case partition_strategy::block: {
        // Block baseline over the full grid, projected onto active SDs.
        const auto full =
            partition::block_partition(opt_.sd_grid, opt_.sd_grid, opt_.nodes);
        mpart.resize(static_cast<std::size_t>(dual.g.num_vertices()));
        for (partition::vid v = 0; v < dual.g.num_vertices(); ++v)
          mpart[static_cast<std::size_t>(v)] =
              full[static_cast<std::size_t>(dual.to_sd[static_cast<std::size_t>(v)])];
        break;
      }
    }
    edge_cut_ = partition::edge_cut(dual.g, mpart);
    balance_ = partition::balance_factor(dual.g, mpart, opt_.nodes);
    // Project back to full SD ids; inactive SDs are parked on node 0 (the
    // solver and simulator never exchange ghosts for them).
    part_.assign(static_cast<std::size_t>(tiling_->num_sds()), 0);
    for (partition::vid v = 0; v < dual.g.num_vertices(); ++v)
      part_[static_cast<std::size_t>(dual.to_sd[static_cast<std::size_t>(v)])] =
          mpart[static_cast<std::size_t>(v)];
  } else {
    const auto dual = partition::build_mesh_dual(mopt);
    switch (opt_.partitioner) {
      case partition_strategy::multilevel:
        part_ = partition::multilevel_partition(dual, popt);
        break;
      case partition_strategy::recursive_bisection:
        part_ = partition::recursive_bisection_partition(dual, popt);
        break;
      case partition_strategy::block:
        part_ = partition::block_partition(opt_.sd_grid, opt_.sd_grid, opt_.nodes);
        break;
    }
    edge_cut_ = partition::edge_cut(dual, part_);
    balance_ = partition::balance_factor(dual, part_, opt_.nodes);
  }

  own_.emplace(dist::ownership_map::from_partition(*tiling_, opt_.nodes, part_));
}

solver_handle& session::solver() {
  if (!solver_) {
    // The factory rebuilds an identically-configured impl on hibernation
    // restore; the session outlives its handle, so `this` stays valid.
    auto build = [this]() -> std::unique_ptr<solver_impl> {
      if (opt_.mode == execution_mode::serial)
        return std::make_unique<serial_impl>(opt_, scenario_);
      return std::make_unique<dist_impl>(opt_, scenario_, *own_);
    };
    auto impl = build();
    // The handle constructor is private (friended); not make_unique-able.
    solver_.reset(new solver_handle(scenario_, std::move(impl), std::move(build),
                                    opt_.hibernation));
  }
  return *solver_;
}

void session::require_distributed(const char* what) const {
  if (opt_.mode != execution_mode::distributed)
    throw std::logic_error(std::string("session::") + what +
                           ": only available in distributed mode");
}

const dist::tiling& session::sd_tiling() const {
  require_distributed("sd_tiling");
  return *tiling_;
}

const dist::ownership_map& session::ownership() const {
  require_distributed("ownership");
  return *own_;
}

const std::vector<int>& session::partition() const {
  require_distributed("partition");
  return part_;
}

const dist::domain_mask& session::mask() const {
  require_distributed("mask");
  return *mask_;
}

double session::partition_edge_cut() const {
  require_distributed("partition_edge_cut");
  return edge_cut_;
}

double session::partition_balance() const {
  require_distributed("partition_balance");
  return balance_;
}

}  // namespace nlh::api

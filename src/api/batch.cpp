///
/// \file batch.cpp
/// \brief batch_runner implementation: admission queue (FIFO / priority),
/// concurrency-capped execution on the shared pool, per-job result
/// promises and aggregate metrics.
///

#include "api/batch.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics_export.hpp"
#include "obs/tracer.hpp"
#include "support/stopwatch.hpp"

namespace nlh::api {

std::vector<std::string> validate(const batch_options& opt) {
  std::vector<std::string> errs;
  if (opt.pool_threads < 1)
    errs.push_back("batch_options.pool_threads: the shared pool needs at least "
                   "1 worker (got " +
                   std::to_string(opt.pool_threads) + ")");
  if (opt.max_concurrent_jobs < 1)
    errs.push_back("batch_options.max_concurrent_jobs: must be at least 1 (got " +
                   std::to_string(opt.max_concurrent_jobs) + ")");
  if (opt.pool_threads >= 1 && opt.max_concurrent_jobs >= 1 &&
      static_cast<unsigned>(opt.max_concurrent_jobs) > opt.pool_threads)
    errs.push_back(
        "batch_options.max_concurrent_jobs: cap " +
        std::to_string(opt.max_concurrent_jobs) + " exceeds pool_threads " +
        std::to_string(opt.pool_threads) +
        "; every running job occupies one worker, so excess slots can never fill");
  if (opt.hibernation.enabled) {
    if (const auto herr = opt.hibernation.validate(); !herr.empty())
      errs.push_back("batch_options." + herr);
  }
  return errs;
}

namespace {

batch_options validated(batch_options opt) {
  const auto errs = validate(opt);
  if (!errs.empty()) {
    std::ostringstream msg;
    msg << "invalid batch_options (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }
  return opt;
}

}  // namespace

batch_runner::batch_runner(batch_options opt)
    : opt_(validated(opt)), pool_(opt_.pool_threads) {
  if (opt_.hibernation.enabled)
    hib_ = std::make_unique<ckpt::hibernation_manager>(opt_.hibernation);
}

batch_runner::~batch_runner() { wait_all(); }

amt::future<batch_job_result> batch_runner::submit(batch_job job) {
  queued_job qj;
  qj.job = std::move(job);
  auto fut = qj.done.get_future();
  bool refused = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    qj.seq = next_seq_++;
    qj.submitted = std::chrono::steady_clock::now();
    if (qj.job.label.empty()) qj.job.label = "job-" + std::to_string(qj.seq);
    if (!clock_started_) {
      clock_started_ = true;
      first_submit_ = qj.submitted;
    }
    ++agg_.jobs_submitted;
    NLH_TRACE_INSTANT("api/job_submit", qj.seq);
    if (draining_) {
      // Admission is closed for good: fail fast below (outside mu_ — the
      // future's continuations run inline on set_value).
      ++agg_.jobs_abandoned;
      refused = true;
    } else {
      queue_.push_back(std::move(qj));
      pump_locked();
    }
  }
  if (refused) {
    batch_job_result res;
    res.label = qj.job.label;
    res.error = "abandoned: batch_runner is draining; admission is closed";
    qj.done.set_value(std::move(res));
  }
  return fut;
}

std::vector<amt::future<batch_job_result>> batch_runner::submit_all(
    std::vector<batch_job> jobs) {
  std::vector<amt::future<batch_job_result>> futs;
  futs.reserve(jobs.size());
  for (auto& j : jobs) futs.push_back(submit(std::move(j)));
  return futs;
}

void batch_runner::pump_locked() {
  // A job whose persistent tenant is mid-job must wait: same-key jobs run
  // strictly serially (this is also what keeps the hibernation callbacks
  // race-free). Key-less jobs are always eligible.
  const auto eligible = [&](const queued_job& q) {
    if (q.job.session_key.empty()) return true;
    const auto t = tenants_.find(q.job.session_key);
    return t == tenants_.end() || !t->second.busy;
  };
  while (running_ < opt_.max_concurrent_jobs && !queue_.empty()) {
    // FIFO admits the oldest eligible; priority admits the highest
    // priority, oldest among equals. The queue is small (pending jobs),
    // so a linear scan beats maintaining a heap.
    auto it = queue_.end();
    for (auto j = queue_.begin(); j != queue_.end(); ++j) {
      if (!eligible(*j)) continue;
      if (it == queue_.end()) {
        it = j;
        if (opt_.admission == admission_policy::fifo) break;
        continue;
      }
      if (j->job.priority > it->job.priority ||
          (j->job.priority == it->job.priority && j->seq < it->seq))
        it = j;
    }
    if (it == queue_.end()) break;  // every pending job's tenant is mid-job
    // Mark the tenant busy at admission (creating its slot on first use)
    // so a later pump pass cannot double-book the key.
    if (!it->job.session_key.empty()) tenants_[it->job.session_key].busy = true;
    queued_job qj = std::move(*it);
    queue_.erase(it);
    ++running_;
    NLH_TRACE_INSTANT("api/job_admit", qj.seq);
    // unique_function is move-only-friendly, so the job rides the task.
    pool_.post([this, qj = std::move(qj)]() mutable { execute(std::move(qj)); });
  }
}

void batch_runner::execute(queued_job qj) {
  batch_job_result res;
  // The job span closes before the promise resolves, so a caller that
  // snapshots the tracer right after the last future fires sees every job.
  {
    NLH_TRACE_SPAN_ARG("api/job", qj.seq);
    const double waited = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - qj.submitted)
                              .count();
    queue_wait_hist_.record(waited);
    {
      // Per-admission-class split: insertion under mu_, recording outside
      // (node addresses are stable; the histogram is thread-safe).
      const std::string& cls = qj.job.admission_class.empty()
                                   ? std::string("default")
                                   : qj.job.admission_class;
      obs::histogram* h = nullptr;
      {
        std::lock_guard<std::mutex> lk(mu_);
        h = &queue_wait_by_class_[cls];
      }
      h->record(waited);
    }
    support::stopwatch job_sw;
    res.label = qj.job.label;
    long long steps_done = 0;
    std::uint64_t ghost_delta = 0;
    try {
      if (qj.job.session_key.empty()) {
        // Ephemeral job: the session lives and dies with it.
        session s(qj.job.options);
        auto& h = s.solver();
        const int steps =
            qj.job.num_steps > 0 ? qj.job.num_steps : qj.job.options.num_steps;
        h.run(steps);
        if (qj.job.on_complete) qj.job.on_complete(s);
        res.metrics = h.metrics();
        res.ok = true;
        steps_done = res.metrics.steps;
        ghost_delta = res.metrics.ghost_bytes;
      } else {
        execute_tenant(qj, res, steps_done, ghost_delta);
      }
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown exception";
    }

    job_duration_hist_.record(job_sw.elapsed_s());
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (!qj.job.session_key.empty())
        tenants_[qj.job.session_key].busy = false;
      if (res.ok) {
        ++agg_.jobs_completed;
        agg_.total_steps += steps_done;
        agg_.ghost_bytes += ghost_delta;
        job_step_latency_.emplace_back(res.label, res.metrics.step_latency);
        if (qj.job.options.auto_rebalance.enabled)
          job_rebalance_.push_back({res.label, res.metrics.rebalance_epochs,
                                    res.metrics.rebalance_moves,
                                    res.metrics.rebalance_imbalance_before,
                                    res.metrics.rebalance_imbalance_after});
      } else {
        ++agg_.jobs_failed;
      }
      agg_.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - first_submit_)
                              .count();
      pump_locked();
    }
    idle_cv_.notify_all();
  }
  // Fulfill outside mu_: user continuations attached to the future run
  // inline here and must be free to call back into the runner.
  qj.done.set_value(std::move(res));
}

void batch_runner::execute_tenant(queued_job& qj, batch_job_result& res,
                                  long long& steps_done,
                                  std::uint64_t& ghost_delta) {
  const std::string& key = qj.job.session_key;
  tenant* t = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t = &tenants_[key];  // busy since admission, so the slot is ours alone
  }
  if (!t->sess) {
    // First job of this key builds the session. The batch manager owns
    // hibernation for tenants, so the session's own single-entry manager
    // stays off; the batch-level codec choice rides along for the frame
    // encoding of export_and_release().
    session_options o = qj.job.options;
    o.hibernation.enabled = false;
    if (hib_) o.hibernation.codec = opt_.hibernation.codec;
    t->sess = std::make_unique<session>(std::move(o));
  }
  auto& h = t->sess->solver();
  if (hib_ && !t->registered) {
    ckpt::hibernation_manager::callbacks cb;
    auto* hp = &h;
    cb.snapshot_and_release = [hp](net::byte_buffer reuse) {
      return hp->export_and_release(std::move(reuse));
    };
    cb.restore = [hp](const net::byte_buffer& b) { hp->import_state(b); };
    hib_->add_session(key, std::move(cb));
    t->registered = true;
  }
  if (hib_) hib_->activate(key);
  // Park on every exit (run/on_complete may throw); execute() owns the
  // error reporting.
  struct parked {
    ckpt::hibernation_manager* m;
    const std::string& k;
    ~parked() {
      if (m) m->park(k);
    }
  } guard{hib_.get(), key};
  const runtime_metrics before = h.metrics();
  const int steps =
      qj.job.num_steps > 0 ? qj.job.num_steps : qj.job.options.num_steps;
  h.run(steps);
  if (qj.job.on_complete) qj.job.on_complete(*t->sess);
  res.metrics = h.metrics();
  res.ok = true;
  steps_done = res.metrics.steps - before.steps;
  ghost_delta = res.metrics.ghost_bytes - before.ghost_bytes;
}

std::size_t batch_runner::tenant_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_.size();
}

void batch_runner::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
}

batch_drain_report batch_runner::drain(double timeout_seconds) {
  batch_drain_report rep;
  std::vector<queued_job> abandoned;
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  abandoned.swap(queue_);  // nothing queued is ever admitted again
  rep.abandoned = static_cast<int>(abandoned.size());
  agg_.jobs_abandoned += rep.abandoned;
  const int was_running = running_;
  lk.unlock();
  // Fail the abandoned jobs fast, outside mu_ (continuations run inline).
  for (auto& qj : abandoned) {
    batch_job_result res;
    res.label = qj.job.label;
    res.error = "abandoned: batch_runner drained before admission";
    NLH_TRACE_INSTANT("api/job_abandon", qj.seq);
    qj.done.set_value(std::move(res));
  }
  lk.lock();
  if (timeout_seconds < 0.0) {
    idle_cv_.wait(lk, [&] { return running_ == 0; });
  } else {
    idle_cv_.wait_for(lk, std::chrono::duration<double>(timeout_seconds),
                      [&] { return running_ == 0; });
  }
  rep.still_running = running_;
  rep.in_flight_completed = was_running - rep.still_running;
  return rep;
}

batch_metrics batch_runner::aggregate() const {
  std::lock_guard<std::mutex> lk(mu_);
  batch_metrics m = agg_;
  // A still-running batch reads "so far": agg_.wall_seconds is only
  // stamped at job completions, so extend it to now while work remains.
  if (clock_started_ && (running_ > 0 || !queue_.empty()))
    m.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - first_submit_)
                         .count();
  if (m.wall_seconds > 0.0)
    m.jobs_per_second = static_cast<double>(m.jobs_completed) / m.wall_seconds;
  m.queue_wait = queue_wait_hist_.summary();
  m.job_duration = job_duration_hist_.summary();
  return m;
}

obs::metrics_snapshot batch_runner::metrics_snapshot() const {
  const auto m = aggregate();
  obs::metrics_snapshot snap;
  snap.add_counter("api/batch/jobs_submitted",
                   static_cast<std::uint64_t>(m.jobs_submitted));
  snap.add_counter("api/batch/jobs_completed",
                   static_cast<std::uint64_t>(m.jobs_completed));
  snap.add_counter("api/batch/jobs_failed",
                   static_cast<std::uint64_t>(m.jobs_failed));
  snap.add_counter("api/batch/jobs_abandoned",
                   static_cast<std::uint64_t>(m.jobs_abandoned));
  snap.add_counter("api/batch/total_steps",
                   static_cast<std::uint64_t>(m.total_steps));
  snap.add_counter("api/batch/ghost_bytes", m.ghost_bytes);
  snap.add_gauge("api/batch/wall_seconds", m.wall_seconds);
  snap.add_gauge("api/batch/jobs_per_second", m.jobs_per_second);
  snap.add_histogram("api/batch/queue_wait_seconds", m.queue_wait);
  snap.add_histogram("api/batch/job_duration_seconds", m.job_duration);
  {
    // Per-admission-class queue-wait split (batch_job::admission_class).
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [cls, h] : queue_wait_by_class_)
      snap.add_histogram("api/batch/queue_wait_seconds/" + cls, h.summary());
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [label, s] : job_step_latency_)
      snap.add_histogram("api/job/" + label + "/step_latency_seconds", s);
    for (const auto& jr : job_rebalance_) {
      const std::string base = "api/job/" + jr.label + "/balance/";
      snap.add_counter(base + "epochs", jr.epochs);
      snap.add_counter(base + "moves", jr.moves);
      snap.add_gauge(base + "imbalance_before", jr.imbalance_before);
      snap.add_gauge(base + "imbalance_after", jr.imbalance_after);
    }
  }
  if (hib_) hib_->metrics_into(snap);  // ckpt/* tenant-hibernation view
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.add_gauge("api/batch/tenants", static_cast<double>(tenants_.size()));
  }
  // Live AGAS counter paths (pool busy times, comm traffic) ride along so
  // one exported file carries the whole process view.
  obs::bridge_counter_registry(snap);
  return snap;
}

void batch_runner::dump_metrics(const std::string& path) const {
  obs::write_metrics_json(path, metrics_snapshot());
}

}  // namespace nlh::api

///
/// \file sim_dist.cpp
/// \brief Builds the per-step task DAG of a tiling + ownership (interior,
/// pack, unpack-join and boundary tasks) and replays it on sim::cluster_sim.
///

#include "dist/sim_dist.hpp"

#include <string>

#include "support/assert.hpp"

namespace nlh::dist {

namespace {

double sd_scale(const sim_cost_model& cost, int sd) {
  return cost.sd_work_scale.empty() ? 1.0
                                    : cost.sd_work_scale[static_cast<std::size_t>(sd)];
}

bool sd_is_active(const sim_cost_model& cost, int sd) {
  return cost.sd_active.empty() || cost.sd_active[static_cast<std::size_t>(sd)] != 0;
}

}  // namespace

double sd_step_work(const tiling& t, int sd, const sim_cost_model& cost) {
  const double dps = static_cast<double>(t.sd_size()) * t.sd_size();
  return dps * cost.work_per_dp * sd_scale(cost, sd);
}

sim_result simulate_timestepping(const tiling& t, const ownership_map& own, int steps,
                                 const sim_cost_model& cost,
                                 const sim_cluster_config& cluster) {
  NLH_ASSERT(steps >= 0);
  NLH_ASSERT(own.num_sds() == t.num_sds());
  NLH_ASSERT(cost.sd_work_scale.empty() ||
             static_cast<int>(cost.sd_work_scale.size()) == t.num_sds());
  NLH_ASSERT(cost.sd_active.empty() ||
             static_cast<int>(cost.sd_active.size()) == t.num_sds());

  const int nodes = own.num_nodes();
  sim::cluster_sim cs(nodes, cluster.cores_per_node);
  cs.set_network(cluster.net);
  if (!cluster.node_capacity.empty()) {
    NLH_ASSERT(static_cast<int>(cluster.node_capacity.size()) == nodes);
    for (int n = 0; n < nodes; ++n)
      cs.set_capacity(n, cluster.node_capacity[static_cast<std::size_t>(n)]);
  }

  // Per-SD static structure: case split, remote edges, same-locality edges.
  struct sd_info {
    bool active = false;
    int node = 0;
    double interior_work = 0.0;
    double boundary_work = 0.0;
    double pack_work = 0.0;
    std::vector<std::pair<int, double>> remote;  ///< (neighbor sd, bytes sent)
    std::vector<int> local_nbrs;                 ///< same-locality active neighbors
  };
  const int num_sds = t.num_sds();
  std::vector<sd_info> info(static_cast<std::size_t>(num_sds));
  const std::vector<char>* mask = cost.sd_active.empty() ? nullptr : &cost.sd_active;
  for (int sd = 0; sd < num_sds; ++sd) {
    auto& in = info[static_cast<std::size_t>(sd)];
    in.active = sd_is_active(cost, sd);
    if (!in.active) continue;
    in.node = own.owner(sd);
    const auto split = compute_case_split(t, sd, own.raw(), mask);
    const double per_dp = cost.work_per_dp * sd_scale(cost, sd);
    in.interior_work = static_cast<double>(split.interior_dps()) * per_dp;
    in.boundary_work = static_cast<double>(split.strip_dps()) * per_dp;
    for (const auto& [d, nb] : t.neighbors(sd)) {
      if (!sd_is_active(cost, nb)) continue;
      if (own.owner(nb) == in.node) {
        in.local_nbrs.push_back(nb);
      } else {
        const double dps = static_cast<double>(t.strip_dps(d));
        in.remote.emplace_back(nb, dps * cost.bytes_per_dp);
        in.pack_work += dps * cost.pack_work_per_dp;
      }
    }
  }

  // Unroll the timestep DAG. All dependency edges point at the previous
  // step; message edges connect pack -> unpack within a step.
  std::vector<int> prev_interior(static_cast<std::size_t>(num_sds), -1);
  std::vector<int> prev_boundary(static_cast<std::size_t>(num_sds), -1);
  std::vector<int> pack_id(static_cast<std::size_t>(num_sds), -1);
  std::vector<int> unpack_id(static_cast<std::size_t>(num_sds), -1);
  std::vector<int> cur_interior(static_cast<std::size_t>(num_sds), -1);
  std::vector<int> cur_boundary(static_cast<std::size_t>(num_sds), -1);

  auto prev_tasks_of = [&](int sd, std::vector<int>& deps) {
    if (prev_interior[static_cast<std::size_t>(sd)] >= 0)
      deps.push_back(prev_interior[static_cast<std::size_t>(sd)]);
    if (prev_boundary[static_cast<std::size_t>(sd)] >= 0)
      deps.push_back(prev_boundary[static_cast<std::size_t>(sd)]);
  };

  for (int k = 0; k < steps; ++k) {
    const std::string at = "@" + std::to_string(k);
    // Exchange endpoints first so compute tasks may depend on them.
    for (int sd = 0; sd < num_sds; ++sd) {
      const auto& in = info[static_cast<std::size_t>(sd)];
      if (!in.active || in.remote.empty()) continue;
      std::vector<int> deps;
      prev_tasks_of(sd, deps);
      pack_id[static_cast<std::size_t>(sd)] = cs.add_task(
          in.node, in.pack_work, deps, "sd" + std::to_string(sd) + ":pack" + at);
      unpack_id[static_cast<std::size_t>(sd)] = cs.add_task(
          in.node, 0.0, {}, "sd" + std::to_string(sd) + ":unpack" + at);
    }
    // Compute tasks.
    for (int sd = 0; sd < num_sds; ++sd) {
      const auto& in = info[static_cast<std::size_t>(sd)];
      if (!in.active) continue;
      std::vector<int> deps;
      prev_tasks_of(sd, deps);
      for (int nb : in.local_nbrs) prev_tasks_of(nb, deps);
      if (!cost.overlap && unpack_id[static_cast<std::size_t>(sd)] >= 0)
        deps.push_back(unpack_id[static_cast<std::size_t>(sd)]);
      cur_interior[static_cast<std::size_t>(sd)] = cs.add_task(
          in.node, in.interior_work, deps,
          "sd" + std::to_string(sd) + ":interior" + at);
      if (!in.remote.empty()) {
        // Boundary strips read the same-locality collars too (a strip spans
        // the full SD side), so they carry the local-neighbor deps the
        // interior has, plus the ghost join.
        std::vector<int> bdeps;
        prev_tasks_of(sd, bdeps);
        for (int nb : in.local_nbrs) prev_tasks_of(nb, bdeps);
        bdeps.push_back(unpack_id[static_cast<std::size_t>(sd)]);
        cur_boundary[static_cast<std::size_t>(sd)] = cs.add_task(
            in.node, in.boundary_work, bdeps,
            "sd" + std::to_string(sd) + ":boundary" + at);
      } else {
        cur_boundary[static_cast<std::size_t>(sd)] = -1;
      }
    }
    // Ghost messages: every remote edge carries one strip per step.
    for (int sd = 0; sd < num_sds; ++sd) {
      const auto& in = info[static_cast<std::size_t>(sd)];
      for (const auto& [nb, bytes] : in.remote)
        cs.add_message(pack_id[static_cast<std::size_t>(sd)],
                       unpack_id[static_cast<std::size_t>(nb)], bytes);
    }
    prev_interior = cur_interior;
    prev_boundary = cur_boundary;
  }

  cs.run();
  if (cluster.chrome_trace) cs.write_chrome_trace(*cluster.chrome_trace);

  sim_result res;
  res.makespan = cs.makespan();
  res.network_bytes = cs.network_bytes();
  res.network_messages = cs.network_messages();
  res.node_busy.resize(static_cast<std::size_t>(nodes));
  res.node_busy_fraction.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    res.node_busy[static_cast<std::size_t>(n)] = cs.node_busy_time(n);
    res.node_busy_fraction[static_cast<std::size_t>(n)] =
        res.makespan > 0.0 ? cs.node_busy_fraction(n, 0.0, res.makespan) : 0.0;
  }
  return res;
}

}  // namespace nlh::dist

///
/// \file tiling.cpp
/// \brief SD geometry: neighbor enumeration, send/recv strip rectangles and
/// the case-1/case-2 decomposition (compute_case_split).
///

#include "dist/tiling.hpp"

namespace nlh::dist {

case_split compute_case_split(const tiling& t, int sd, const std::vector<int>& owner,
                              const std::vector<char>* active) {
  NLH_ASSERT(static_cast<int>(owner.size()) == t.num_sds());
  NLH_ASSERT(!active || static_cast<int>(active->size()) == t.num_sds());

  const int me = owner[static_cast<std::size_t>(sd)];
  bool remote_n = false, remote_s = false, remote_w = false, remote_e = false;
  for (int d = 0; d < num_directions; ++d) {
    const auto dir = static_cast<direction>(d);
    const auto nb = t.neighbor(sd, dir);
    if (!nb) continue;
    if (active && !(*active)[static_cast<std::size_t>(*nb)]) continue;
    if (owner[static_cast<std::size_t>(*nb)] == me) continue;
    const auto [dr, dc] = direction_offset(dir);
    remote_n = remote_n || dr < 0;
    remote_s = remote_s || dr > 0;
    remote_w = remote_w || dc < 0;
    remote_e = remote_e || dc > 0;
  }

  const int s = t.sd_size();
  const int g = t.ghost();
  // Clamp the margins so the four strips plus the interior always form an
  // exact partition of the SD, even when opposite margins overlap (tiny SDs
  // where sd_size == ghost).
  const int top = std::min(remote_n ? g : 0, s);
  const int bottom = std::max(s - (remote_s ? g : 0), top);
  const int left = std::min(remote_w ? g : 0, s);
  const int right = std::max(s - (remote_e ? g : 0), left);

  case_split split;
  split.interior = nonlocal::dp_rect{top, bottom, left, right};

  auto add_strip = [&split](int r0, int r1, int c0, int c1) {
    const nonlocal::dp_rect r{r0, r1, c0, c1};
    if (!r.empty()) split.remote_strips.push_back(r);
  };
  add_strip(0, top, 0, s);            // north margin, full width
  add_strip(bottom, s, 0, s);         // south margin, full width
  add_strip(top, bottom, 0, left);    // west margin between them
  add_strip(top, bottom, right, s);   // east margin between them
  return split;
}

namespace {

bool rects_intersect(const nonlocal::dp_rect& a, const nonlocal::dp_rect& b) {
  return a.row_begin < b.row_end && b.row_begin < a.row_end &&
         a.col_begin < b.col_end && b.col_begin < a.col_end;
}

}  // namespace

std::vector<strip_dep> compute_fine_strips(const tiling& t, int sd,
                                           const std::vector<int>& owner,
                                           const std::vector<char>* active) {
  NLH_ASSERT(static_cast<int>(owner.size()) == t.num_sds());
  NLH_ASSERT(!active || static_cast<int>(active->size()) == t.num_sds());

  const int me = owner[static_cast<std::size_t>(sd)];
  bool remote[num_directions] = {};
  bool remote_n = false, remote_s = false, remote_w = false, remote_e = false;
  for (int d = 0; d < num_directions; ++d) {
    const auto dir = static_cast<direction>(d);
    const auto nb = t.neighbor(sd, dir);
    if (!nb) continue;
    if (active && !(*active)[static_cast<std::size_t>(*nb)]) continue;
    if (owner[static_cast<std::size_t>(*nb)] == me) continue;
    remote[d] = true;
    const auto [dr, dc] = direction_offset(dir);
    remote_n = remote_n || dr < 0;
    remote_s = remote_s || dr > 0;
    remote_w = remote_w || dc < 0;
    remote_e = remote_e || dc > 0;
  }

  // The same clamped margins compute_case_split uses, so the fine strips
  // tile exactly the coarse case-1 region.
  const int s = t.sd_size();
  const int g = t.ghost();
  const int top = std::min(remote_n ? g : 0, s);
  const int bottom = std::max(s - (remote_s ? g : 0), top);
  const int left = std::min(remote_w ? g : 0, s);
  const int right = std::max(s - (remote_e ? g : 0), left);

  std::vector<strip_dep> out;
  auto add = [&](int r0, int r1, int c0, int c1) {
    const nonlocal::dp_rect r{r0, r1, c0, c1};
    if (r.empty()) return;
    strip_dep strip;
    strip.rect = r;
    // The strip's epsilon-halo: every DP it updates reads u over at most
    // `ghost` cells beyond the rectangle in each direction.
    const nonlocal::dp_rect halo{r.row_begin - g, r.row_end + g, r.col_begin - g,
                                 r.col_end + g};
    for (int d = 0; d < num_directions; ++d) {
      if (!remote[d]) continue;
      if (rects_intersect(halo, t.recv_rect(static_cast<direction>(d))))
        strip.deps.push_back(static_cast<direction>(d));
    }
    out.push_back(std::move(strip));
  };
  // Sides first (the larger rectangles, typically one dependency each),
  // then the corners (two adjacent sides + the diagonal when remote).
  add(0, top, left, right);       // north side
  add(bottom, s, left, right);    // south side
  add(top, bottom, 0, left);      // west side
  add(top, bottom, right, s);     // east side
  add(0, top, 0, left);           // northwest corner
  add(0, top, right, s);          // northeast corner
  add(bottom, s, 0, left);        // southwest corner
  add(bottom, s, right, s);       // southeast corner
  return out;
}

}  // namespace nlh::dist

#pragma once
///
/// \file dist_solver.hpp
/// \brief The fully asynchronous distributed solver (paper §6): per-SD
/// forward-Euler stepping on per-locality AMT thread pools with futurized
/// ghost exchange over net::comm_world.
///
/// Each timestep: same-locality collars are filled by direct copies;
/// cross-locality strips travel as serialized byte buffers through the
/// mailbox network. Case-2 interior rectangles compute immediately while
/// the messages are in flight; case-1 boundary strips are continuations
/// chained on the arrival futures (`when_all(ghosts).then(compute)`), so no
/// worker ever idles on the network. Per-locality busy-time counters feed
/// Algorithm 1, `migrate_sd` implements its migration primitive, and
/// checkpoint/restore snapshots step counter, ownership and fields into a
/// self-contained byte buffer.
///
/// The solver reproduces the serial reference bitwise for every
/// decomposition, ownership and thread count: every DP update reads the
/// same double values through the same stencil entry order, whether its
/// inputs arrived by collar copy or by message. Both solvers route the
/// update through one compiled stencil_plan that owns its kernel backend
/// (pinned per solver via dist_config::backend, else the process
/// default — docs/kernels.md), so the property holds per backend and
/// solvers with different backends coexist in one process.
///
/// Ghost-strip pooling: the exchange path reuses its buffers across steps
/// — per-(SD, direction) pack scratch, per-SD unpack scratch, and a free
/// list recirculating serialized byte buffers from the receive side back
/// to the senders — so steady-state stepping allocates nothing on the
/// strip path (measured by bench/micro_ghost).
///

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "amt/thread_pool.hpp"
#include "api/scenario.hpp"
#include "dist/ownership.hpp"
#include "dist/sd_block.hpp"
#include "dist/tiling.hpp"
#include "net/comm_world.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::dist {

struct dist_config {
  int sd_rows = 1;
  int sd_cols = 1;
  int sd_size = 8;              ///< DPs per SD side
  int epsilon_factor = 2;       ///< epsilon = factor * h; also the ghost width
  double conductivity = 1.0;
  double dt = 0.0;              ///< 0 = stability bound * dt_safety
  double dt_safety = 0.5;
  nonlocal::influence_kind kind = nonlocal::influence_kind::constant;
  int threads_per_locality = 1;
  /// false = bulk-synchronous baseline: wait for every ghost before any
  /// compute. Same data exchanged, no communication hiding.
  bool overlap_communication = true;
  /// Kernel backend this solver's plan is pinned to; nullopt keeps the
  /// plan following the process default (the historical behaviour).
  std::optional<nonlocal::kernel_backend> backend;
};

/// All validation failures of `cfg`, each naming the offending field
/// ("dist_config.sd_size: ..."); empty = valid. dist_solver construction
/// runs this and throws std::invalid_argument on the first build error,
/// instead of asserting deep inside tiling.
std::vector<std::string> validate(const dist_config& cfg);

class dist_solver {
 public:
  /// \param scn the workload scenario; null selects the manufactured
  /// problem (the historical hard-wired behaviour, bit for bit).
  /// Throws std::invalid_argument when validate(cfg) reports problems.
  dist_solver(const dist_config& cfg, ownership_map own,
              std::shared_ptr<const api::scenario> scn = nullptr);

  dist_solver(const dist_solver&) = delete;
  dist_solver& operator=(const dist_solver&) = delete;

  const nonlocal::grid2d& grid() const { return grid_; }
  const tiling& sd_tiling() const { return tiling_; }
  const ownership_map& owners() const { return own_; }
  net::comm_world& comm() { return comm_; }
  const net::comm_world& comm() const { return comm_; }

  double dt() const { return dt_; }
  double scaling_constant() const { return c_; }
  int current_step() const { return step_; }
  const api::scenario& active_scenario() const { return *scenario_; }
  const nonlocal::stencil_plan& kernel_plan() const { return plan_; }
  /// Backend every DP update of this solver dispatches to (the pinned one
  /// when dist_config::backend was set, else the process default).
  nonlocal::kernel_backend backend() const { return plan_.backend(); }

  /// Initialize every owned SD to the scenario's initial condition.
  void set_initial_condition();

  /// Advance one asynchronous timestep (ghost exchange + case-1/case-2
  /// compute + field swap) across all localities.
  void step();
  void run(int steps);

  /// Assemble the global padded field from all SD blocks (collar zero).
  std::vector<double> gather() const;

  /// Bytes of serialized ghost strips sent since construction (excludes
  /// migration traffic).
  std::uint64_t ghost_bytes() const { return ghost_bytes_.load(); }

  /// Busy-time fraction of one locality's pool since the last reset — the
  /// observable Algorithm 1 consumes.
  double busy_fraction(int locality) const;
  void reset_busy_counters();

  /// Move one SD to `to_node`: its field travels through the network as a
  /// serialized message and the ownership map is updated. A move to the
  /// current owner is a no-op (no traffic).
  void migrate_sd(int sd, int to_node);

  /// Self-contained snapshot: step counter, ownership, every SD's interior
  /// field.
  net::byte_buffer checkpoint() const;
  void restore(const net::byte_buffer& state);

 private:
  /// One forward-Euler update over a local-coordinate rectangle of `sd`.
  void compute_rect(int sd, const nonlocal::dp_rect& rect, double t_now);

  std::uint64_t ghost_tag(int step, int sd, direction d) const;
  std::uint64_t migration_tag(int sd) const;

  /// Pop a recycled serialized-strip buffer (empty when the pool is dry);
  /// the receive side returns consumed buffers through release_buffer, so
  /// steady-state stepping stops allocating on the serialization path.
  net::byte_buffer acquire_buffer();
  void release_buffer(net::byte_buffer buf);
  /// Decode `buf` into `sd`'s collar facing `d` (pooled scratch, no
  /// allocation in steady state) and recycle the buffer.
  void unpack_ghost(int sd, direction d, net::byte_buffer buf);

  api::scenario_context context() const { return {&grid_, &plan_, c_}; }

  dist_config cfg_;
  tiling tiling_;
  ownership_map own_;
  nonlocal::grid2d grid_;
  nonlocal::influence J_;
  nonlocal::stencil stencil_;
  double c_;
  double dt_;
  nonlocal::stencil_plan plan_;
  std::shared_ptr<const api::scenario> scenario_;

  net::comm_world comm_;
  std::vector<std::unique_ptr<amt::thread_pool>> pools_;
  std::vector<std::unique_ptr<sd_block>> blocks_;
  std::vector<std::vector<double>> lu_;  ///< per-SD L_h[u] scratch (padded)
  std::vector<double> w_field_;          ///< scenario aux field (global grid)
  std::vector<double> b_field_;          ///< scenario source scratch

  // Pooled exchange buffers (ROADMAP ghost-strip pooling). Pack scratch is
  // per (SD, direction): the per-step pack tasks of one SD target distinct
  // directions, so rows never race. Unpack scratch is per SD: at most one
  // task (the case-1 continuation, or the bulk-sync drain) fills an SD's
  // collar at a time. Serialized byte buffers recirculate through a
  // mutex-guarded free list.
  std::vector<std::array<std::vector<double>, num_directions>> pack_scratch_;
  std::vector<std::vector<double>> unpack_scratch_;
  std::mutex buffer_pool_mu_;
  std::vector<net::byte_buffer> buffer_pool_;

  int step_ = 0;
  std::atomic<std::uint64_t> ghost_bytes_{0};
};

}  // namespace nlh::dist

#pragma once
///
/// \file dist_solver.hpp
/// \brief The fully asynchronous distributed solver (paper §6): per-SD
/// forward-Euler stepping on per-locality AMT thread pools with futurized
/// ghost exchange over net::comm_world.
///
/// Each timestep executes a cached **step_plan** (docs/overlap.md),
/// compiled once from (tiling, ownership) and invalidated only by
/// migrate_sd/restore: same-locality collars are filled by direct copies;
/// cross-locality strips travel as serialized byte buffers through the
/// mailbox network, with pack/send tasks posted boundary-first so messages
/// leave each locality before any compute is enqueued. Case-2 interior
/// rectangles compute immediately while the messages are in flight; under
/// the default per_direction schedule each case-1 strip is a continuation
/// chained on exactly the ghost arrivals its epsilon-halo reads (side
/// strips: one; corner strips: the two adjacent sides plus the diagonal),
/// so an SD starts updating its north strip the moment the north ghost
/// lands instead of waiting for the slowest of up to eight messages. The
/// coarse schedule (`when_all(all ghosts).then(all strips)`, the PR-1
/// behaviour) and the bulk_sync baseline remain selectable for ablation.
/// Per-locality busy-time counters feed Algorithm 1, `migrate_sd`
/// implements its migration primitive, and checkpoint/restore snapshots
/// step counter, ownership and fields into a self-contained byte buffer.
///
/// The solver reproduces the serial reference bitwise for every
/// decomposition, ownership and thread count: every DP update reads the
/// same double values through the same stencil entry order, whether its
/// inputs arrived by collar copy or by message. Both solvers route the
/// update through one compiled stencil_plan that owns its kernel backend
/// (pinned per solver via dist_config::backend, else the process
/// default — docs/kernels.md), so the property holds per backend and
/// solvers with different backends coexist in one process.
///
/// Ghost-strip pooling: the exchange path reuses its buffers across steps
/// — per-(SD, direction) pack scratch, per-SD unpack scratch, and a free
/// list recirculating serialized byte buffers from the receive side back
/// to the senders — so steady-state stepping allocates nothing on the
/// strip path (measured by bench/micro_ghost).
///

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "amt/thread_pool.hpp"
#include "api/scenario.hpp"
#include "balance/policy.hpp"
#include "ckpt/codec.hpp"
#include "dist/ownership.hpp"
#include "dist/sd_block.hpp"
#include "dist/step_plan.hpp"
#include "dist/tiling.hpp"
#include "net/comm_world.hpp"
#include "nonlocal/influence.hpp"
#include "obs/metrics.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/stencil.hpp"

namespace nlh::balance {
class auto_rebalancer;
}

namespace nlh::dist {

/// Task schedule of the ghost exchange (docs/overlap.md).
enum class overlap_schedule {
  /// Drain every ghost before any compute — no communication hiding.
  bulk_sync,
  /// Case-2 overlaps; all of an SD's case-1 strips gate on when_all over
  /// all of its ghosts (the PR-1 schedule, kept as the ablation baseline).
  coarse,
  /// Case-2 overlaps; each case-1 strip gates on exactly the ghost
  /// arrivals its epsilon-halo reads (the default).
  per_direction,
};

const char* overlap_schedule_name(overlap_schedule s);
/// Parse "bulk_sync" / "coarse" / "per_direction"; nullopt on anything else.
std::optional<overlap_schedule> parse_overlap_schedule(const std::string& name);

struct dist_config {
  int sd_rows = 1;
  int sd_cols = 1;
  int sd_size = 8;              ///< DPs per SD side
  int epsilon_factor = 2;       ///< epsilon = factor * h; also the ghost width
  double conductivity = 1.0;
  double dt = 0.0;              ///< 0 = stability bound * dt_safety
  double dt_safety = 0.5;
  nonlocal::influence_kind kind = nonlocal::influence_kind::constant;
  int threads_per_locality = 1;
  /// false = bulk-synchronous baseline: wait for every ghost before any
  /// compute. Same data exchanged, no communication hiding. Kept for
  /// backward compatibility; false forces `schedule = bulk_sync`.
  bool overlap_communication = true;
  /// Which overlap schedule step() executes when overlap_communication is
  /// true (see overlap_schedule; per_direction is the fastest and the
  /// default, coarse and bulk_sync remain for ablation).
  overlap_schedule schedule = overlap_schedule::per_direction;
  /// Kernel backend this solver's plan is pinned to; nullopt keeps the
  /// plan following the process default (the historical behaviour).
  std::optional<nonlocal::kernel_backend> backend;
  /// Blocked-execution overrides for the plan's cache model (see
  /// block_plan.hpp); the value-initialized default derives everything.
  /// Execution order only — never changes results or the bitwise
  /// serial/distributed agreement.
  nonlocal::kernel_tuning tuning;
  /// Live Algorithm 1 policy (docs/balance.md): when enabled, the solver
  /// owns a balance::auto_rebalancer and runs it after every completed
  /// step, migrating SDs between its own localities whenever the measured
  /// busy-time imbalance reaches the trigger. Disabled (the default) keeps
  /// the historical static partition.
  balance::rebalance_policy rebalance;
  /// How checkpoint() encodes snapshots (docs/checkpoint.md): which frame
  /// codec compresses the per-SD interiors, and whether consecutive
  /// checkpoints diff against the chain's baseline instead of carrying
  /// full frames.
  ckpt::checkpoint_options checkpoint;
};

/// All validation failures of `cfg`, each naming the offending field
/// ("dist_config.sd_size: ..."); empty = valid. dist_solver construction
/// runs this and throws std::invalid_argument on the first build error,
/// instead of asserting deep inside tiling.
std::vector<std::string> validate(const dist_config& cfg);

/// Cumulative overlap observables of one dist_solver (counted since
/// construction; all schedules maintain them, so the same run can be
/// compared across schedules). "Early" means the task finished while at
/// least one of the current step's ghost messages was still in flight —
/// the direct evidence that compute hid communication.
struct overlap_stats {
  std::uint64_t messages = 0;        ///< cross-locality ghost messages exchanged
  std::uint64_t interior_early = 0;  ///< case-2 rect tasks that finished early
  std::uint64_t strips_early = 0;    ///< case-1 strip tasks that finished early
  double wait_seconds = 0.0;  ///< stepping thread blocked in the end-of-step drain
};

class dist_solver {
 public:
  /// \param scn the workload scenario; null selects the manufactured
  /// problem (the historical hard-wired behaviour, bit for bit).
  /// Throws std::invalid_argument when validate(cfg) reports problems.
  dist_solver(const dist_config& cfg, ownership_map own,
              std::shared_ptr<const api::scenario> scn = nullptr);
  ~dist_solver();

  dist_solver(const dist_solver&) = delete;
  dist_solver& operator=(const dist_solver&) = delete;

  const nonlocal::grid2d& grid() const { return grid_; }
  const tiling& sd_tiling() const { return tiling_; }
  const ownership_map& owners() const { return own_; }
  net::comm_world& comm() { return comm_; }
  const net::comm_world& comm() const { return comm_; }

  double dt() const { return dt_; }
  double scaling_constant() const { return c_; }
  int current_step() const { return step_; }
  const api::scenario& active_scenario() const { return *scenario_; }
  const nonlocal::stencil_plan& kernel_plan() const { return kernel_plan_; }
  /// Backend every DP update of this solver dispatches to (the pinned one
  /// when dist_config::backend was set, else the process default).
  nonlocal::kernel_backend backend() const { return kernel_plan_.backend(); }

  /// Initialize every owned SD to the scenario's initial condition.
  void set_initial_condition();

  /// Advance one asynchronous timestep (ghost exchange + case-1/case-2
  /// compute + field swap) across all localities.
  void step();
  void run(int steps);

  /// Assemble the global padded field from all SD blocks (collar zero).
  std::vector<double> gather() const;

  /// Bytes of serialized ghost strips sent since construction (excludes
  /// migration traffic).
  std::uint64_t ghost_bytes() const { return ghost_bytes_.load(); }

  /// The schedule step() actually executes (bulk_sync when
  /// overlap_communication was disabled, else dist_config::schedule).
  overlap_schedule schedule() const {
    return cfg_.overlap_communication ? cfg_.schedule : overlap_schedule::bulk_sync;
  }

  /// Snapshot of the cumulative overlap observables (see overlap_stats).
  overlap_stats stats() const;

  /// Cumulative kernel execution counters across every compute_rect of
  /// every locality (operator applies, blocks walked, DPs updated, seconds
  /// in the hot loop). Feeds the kernel/* observables in metrics_into.
  nonlocal::kernel_exec_stats kernel_stats() const;

  /// Append this solver's distributed-layer instruments to `snap` under
  /// `dist/...` names (ghost traffic counters, message-size and drain-wait
  /// histograms, per-locality busy fractions, compiled-plan shape gauges).
  /// Call serialized with step()/migrate_sd()/restore(), like gather() —
  /// the api layer does so under its step lock.
  void metrics_into(obs::metrics_snapshot& snap) const;

  /// Times this SD has been migrated since construction — the epoch mixed
  /// into migration tags so interleaved migrations of one SD can't
  /// cross-deliver.
  std::uint64_t migration_epoch(int sd) const;

  /// The compiled schedule of the current (tiling, ownership) pair; compiled
  /// lazily on the first step after construction/migration/restore.
  const step_plan& plan();

  /// Times ensure_plan() actually recompiled the step plan since
  /// construction. Stays at 1 across any number of steps on a static
  /// partition and grows only by epochs that really moved SDs — the cheap
  /// observable auto_rebalance_test uses to prove rebalancing does not
  /// invalidate the cached plan spuriously.
  std::uint64_t plan_compiles() const { return plan_compiles_; }

  /// The live rebalancer, or null when dist_config::rebalance.enabled was
  /// false. Exposed so tests/benches can inject a synthetic busy-time
  /// sampler or observe per-epoch reports; call only serialized with
  /// step(), like gather().
  balance::auto_rebalancer* rebalancer() { return rebalancer_.get(); }
  const balance::auto_rebalancer* rebalancer() const { return rebalancer_.get(); }

  /// Cumulative auto-rebalancing observables; all-zero when rebalancing is
  /// disabled.
  balance::rebalance_stats rebalance_stats() const;

  /// Busy-time fraction of one locality's pool since the last reset — the
  /// observable Algorithm 1 consumes.
  double busy_fraction(int locality) const;
  /// Cumulative busy seconds of the same pool since the last reset
  /// (busy_fraction's numerator). Per measurement window, the max over
  /// localities is the window's critical path — what the balance gate
  /// bench sums into a makespan model that oversubscribed CI boxes cannot
  /// distort the way raw wall-clock is distorted.
  double busy_seconds(int locality) const;
  void reset_busy_counters();

  /// Move one SD to `to_node`: its field travels through the network as a
  /// serialized message and the ownership map is updated. A move to the
  /// current owner is a no-op (no traffic).
  void migrate_sd(int sd, int to_node);

  /// Snapshot the solver — step counter, ownership, every SD's interior
  /// field — through the configured frame codec (docs/checkpoint.md).
  /// With `checkpoint.incremental` (the default) the first call emits a
  /// full snapshot that becomes the chain's baseline; later calls emit
  /// delta frames against it, falling back to a full frame for any SD
  /// that migrated since the baseline. Every blob in the chain stays
  /// restorable while the baseline stands (i.e. until a full snapshot is
  /// taken or restored); restore() asserts the match via sequence numbers.
  net::byte_buffer checkpoint();
  /// Self-contained snapshot regardless of the incremental setting: every
  /// frame full, restorable on any identically-configured solver with no
  /// baseline — the hibernation/export path. Leaves the incremental
  /// chain's baseline untouched.
  net::byte_buffer checkpoint_full();
  void restore(const net::byte_buffer& state);

 private:
  /// One forward-Euler update over a local-coordinate rectangle of `sd`.
  void compute_rect(int sd, const nonlocal::dp_rect& rect, double t_now);
  /// compute_rect plus the early-completion accounting (`early` selects the
  /// interior or strip counter).
  void compute_rect_counted(int sd, const nonlocal::dp_rect& rect, double t_now,
                            std::atomic<std::uint64_t>& early_counter);

  /// Recompile the step plan when ownership changed (migration/restore).
  void ensure_plan();

  std::uint64_t ghost_tag(int step, std::uint64_t tag_base) const;
  std::uint64_t migration_tag(int sd) const;

  /// Pop a recycled serialized-strip buffer (empty when the pool is dry);
  /// the receive side returns consumed buffers through release_buffer, so
  /// steady-state stepping stops allocating on the serialization path.
  net::byte_buffer acquire_buffer();
  void release_buffer(net::byte_buffer buf);
  /// Decode `buf` into `sd`'s collar facing `d` (pooled scratch, no
  /// allocation in steady state) and recycle the buffer.
  void unpack_ghost(int sd, direction d, net::byte_buffer buf);

  api::scenario_context context() const { return {&grid_, &kernel_plan_, c_}; }

  dist_config cfg_;
  tiling tiling_;
  ownership_map own_;
  nonlocal::grid2d grid_;
  nonlocal::influence J_;
  nonlocal::stencil stencil_;
  double c_;
  double dt_;
  nonlocal::stencil_plan kernel_plan_;
  std::shared_ptr<const api::scenario> scenario_;

  net::comm_world comm_;
  std::vector<std::unique_ptr<amt::thread_pool>> pools_;
  std::vector<std::unique_ptr<sd_block>> blocks_;
  std::vector<std::vector<double>> lu_;  ///< per-SD L_h[u] scratch (padded)
  std::vector<double> w_field_;          ///< scenario aux field (global grid)
  std::vector<double> b_field_;          ///< scenario source scratch

  // Pooled exchange buffers (ROADMAP ghost-strip pooling). Pack and unpack
  // scratch are both per (SD, direction): the per-step pack tasks of one SD
  // target distinct directions, and under the per-direction schedule two
  // ghosts of one SD may unpack concurrently — a per-SD unpack strip would
  // race. Serialized byte buffers recirculate through a mutex-guarded free
  // list.
  std::vector<std::array<std::vector<double>, num_directions>> pack_scratch_;
  std::vector<std::array<std::vector<double>, num_directions>> unpack_scratch_;
  std::mutex buffer_pool_mu_;
  std::vector<net::byte_buffer> buffer_pool_;

  // The cached schedule plus its reusable per-step storage: future slots
  // are sized once at plan compile and re-assigned in place each step, so
  // steady-state stepping no longer rebuilds the futs/fut_dirs/pending
  // vectors the pre-plan step() allocated every call.
  step_plan plan_;
  bool plan_dirty_ = true;
  std::uint64_t plan_compiles_ = 0;

  /// The live Algorithm 1 loop (docs/balance.md); null unless
  /// cfg_.rebalance.enabled. step() calls its on_step() after the field
  /// swap, so migrations land between steps and the recompiled plan is
  /// what the next step executes.
  std::unique_ptr<balance::auto_rebalancer> rebalancer_;
  std::vector<amt::future<net::byte_buffer>> recv_slots_;  ///< per message
  std::vector<amt::future<void>> ghost_ready_;  ///< per message: unpack done
  std::vector<amt::future<void>> pending_;      ///< end-of-step drain set
  std::vector<amt::future<void>> aux_pending_;  ///< scenario aux-field fills

  /// Per-SD migration counter mixed into migration tags.
  std::vector<std::uint64_t> migration_epoch_;

  /// Incremental-checkpoint chain state (docs/checkpoint.md): the values
  /// and per-SD migration epochs of the chain's anchoring full snapshot,
  /// plus the sequence number restore() uses to reject a delta blob whose
  /// baseline this solver no longer holds.
  struct ckpt_baseline {
    std::uint64_t seq = 0;
    std::vector<std::vector<double>> interiors;  ///< per SD
    std::vector<std::uint64_t> epochs;           ///< migration epoch per SD
  };
  net::byte_buffer encode_checkpoint(bool incremental);
  std::optional<ckpt_baseline> ckpt_baseline_;
  std::uint64_t ckpt_seq_ = 0;

  // dist/ckpt/* observables; written only on the (serialized) checkpoint
  // path, read by metrics_into under the same serialization.
  std::uint64_t ckpt_checkpoints_ = 0;
  std::uint64_t ckpt_bytes_raw_ = 0;
  std::uint64_t ckpt_bytes_encoded_ = 0;
  std::uint64_t ckpt_frames_full_ = 0;
  std::uint64_t ckpt_frames_delta_ = 0;

  // Overlap observables (see overlap_stats). ghosts_inflight_ counts the
  // current step's undelivered/unprocessed ghosts; compute tasks that
  // finish while it is non-zero increment the early counters.
  std::atomic<int> ghosts_inflight_{0};
  std::atomic<std::uint64_t> stat_messages_{0};
  std::atomic<std::uint64_t> stat_interior_early_{0};
  std::atomic<std::uint64_t> stat_strips_early_{0};
  /// Written only by the (serialized) stepping thread; atomic so stats()
  /// snapshots from other threads (monitoring during an async run) are
  /// race-free like the sibling counters.
  std::atomic<double> wait_seconds_{0.0};

  // kernel/* observables: compute_rect tasks on any locality's pool
  // accumulate here (relaxed atomics; read by kernel_stats()).
  std::atomic<std::uint64_t> kernel_applies_{0};
  std::atomic<std::uint64_t> kernel_blocks_{0};
  std::atomic<std::uint64_t> kernel_dps_{0};
  std::atomic<double> kernel_seconds_{0.0};

  int step_ = 0;
  std::atomic<std::uint64_t> ghost_bytes_{0};

  // Observability instruments (docs/observability.md): serialized ghost
  // message sizes in bytes (recorded by pack/send tasks, mutex-guarded
  // internally) and the stepping thread's per-step drain stall in seconds.
  obs::histogram ghost_msg_bytes_hist_{obs::histogram_options{1.0, 1e9, 4}};
  obs::histogram drain_wait_hist_;
};

}  // namespace nlh::dist

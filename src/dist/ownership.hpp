#pragma once
///
/// \file ownership.hpp
/// \brief SD -> locality assignment (the paper's sub-partitions, SPs).
///
/// The ownership map is the single mutable piece of the distribution: the
/// tiling is fixed geometry, while Algorithm 1 migrates SDs between
/// localities by rewriting this map one SD at a time (set_owner). Per-SD
/// ownership metadata follows the NVMSorting Partition shape: a flat
/// row-major vector, O(1) lookup, derived views (counts, per-node lists,
/// node adjacency) computed on demand.
///

#include <vector>

#include "dist/tiling.hpp"

namespace nlh::dist {

class ownership_map {
 public:
  /// \param owner one locality id per SD, row-major; each in [0, num_nodes).
  ownership_map(const tiling& t, int num_nodes, std::vector<int> owner);

  /// Everything on locality 0 (the shared-memory baseline).
  static ownership_map single_node(const tiling& t);

  /// Adopt a partition vector from the partitioner layer verbatim.
  static ownership_map from_partition(const tiling& t, int num_nodes,
                                      const std::vector<int>& part);

  int num_nodes() const { return num_nodes_; }
  int num_sds() const { return static_cast<int>(owner_.size()); }

  int owner(int sd) const {
    NLH_ASSERT(sd >= 0 && sd < num_sds());
    return owner_[static_cast<std::size_t>(sd)];
  }

  /// Reassign one SD (the migration primitive of Algorithm 1).
  void set_owner(int sd, int node);

  /// SDs owned by `node`, ascending.
  std::vector<int> sds_of(int node) const;

  /// Owned-SD count per node.
  std::vector<int> sd_counts() const;

  /// True when `sd` touches (8-connectivity) an SD of another locality —
  /// i.e. it lies on the SP boundary and participates in ghost exchange.
  bool is_sp_boundary(const tiling& t, int sd) const;

  /// For each node, the sorted list of other nodes owning a neighbor of one
  /// of its SDs — the tree edges Algorithm 1 redistributes along.
  std::vector<std::vector<int>> node_adjacency(const tiling& t) const;

  const std::vector<int>& raw() const { return owner_; }

 private:
  int num_nodes_;
  std::vector<int> owner_;
};

}  // namespace nlh::dist

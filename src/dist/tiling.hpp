#pragma once
///
/// \file tiling.hpp
/// \brief Regular SD (sub-domain) tiling of the global DP mesh and the
/// case-1/case-2 decomposition of one SD (paper Fig. 2 and §6.3).
///
/// The global n x n mesh is cut into sd_rows x sd_cols square SDs of
/// sd_size x sd_size DPs. Every SD exchanges a ghost strip of `ghost`
/// (= ceil(epsilon/h)) DP layers with each of its up to eight neighbors:
/// side strips are sd_size x ghost, corner strips ghost x ghost (the
/// epsilon-ball clips the corners, but the conservative square exchange
/// keeps the pack geometry uniform). The multi-level cell-ID mapping idiom
/// (SD id <-> grid position <-> DP origin) follows the OSRM partition
/// interface shape: every mapping is O(1) arithmetic on the row-major id.
///

#include <optional>
#include <utility>
#include <vector>

#include "nonlocal/nonlocal_operator.hpp"
#include "support/assert.hpp"

namespace nlh::dist {

/// Compass neighbors of an SD, clockwise from north. Kept dense so strip
/// buffers and tags can be indexed by the raw value.
enum class direction : int {
  north = 0,
  northeast = 1,
  east = 2,
  southeast = 3,
  south = 4,
  southwest = 5,
  west = 6,
  northwest = 7,
};

inline constexpr int num_directions = 8;

/// (row delta, col delta) of `d` on the SD grid.
constexpr std::pair<int, int> direction_offset(direction d) {
  switch (d) {
    case direction::north: return {-1, 0};
    case direction::northeast: return {-1, 1};
    case direction::east: return {0, 1};
    case direction::southeast: return {1, 1};
    case direction::south: return {1, 0};
    case direction::southwest: return {1, -1};
    case direction::west: return {0, -1};
    case direction::northwest: return {-1, -1};
  }
  return {0, 0};
}

/// The direction a neighbor sees us from: offsets negate.
constexpr direction opposite(direction d) {
  return static_cast<direction>((static_cast<int>(d) + 4) % num_directions);
}

/// Geometry of the SD grid: id <-> (row, col) <-> DP-origin mappings plus
/// the send/recv strip rectangles of the ghost exchange.
class tiling {
 public:
  /// \param sd_rows SDs along Y   \param sd_cols SDs along X
  /// \param sd_size DPs per SD side \param ghost ghost strip width in DPs
  tiling(int sd_rows, int sd_cols, int sd_size, int ghost)
      : sd_rows_(sd_rows), sd_cols_(sd_cols), sd_size_(sd_size), ghost_(ghost) {
    NLH_ASSERT(sd_rows >= 1 && sd_cols >= 1);
    NLH_ASSERT(ghost >= 1);
    NLH_ASSERT_MSG(sd_size >= ghost,
                   "tiling: SD side must cover the nonlocal horizon "
                   "(sd_size >= ghost) so one neighbor ring suffices");
  }

  int sd_rows() const { return sd_rows_; }
  int sd_cols() const { return sd_cols_; }
  int sd_size() const { return sd_size_; }
  int ghost() const { return ghost_; }

  int num_sds() const { return sd_rows_ * sd_cols_; }
  int mesh_rows() const { return sd_rows_ * sd_size_; }
  int mesh_cols() const { return sd_cols_ * sd_size_; }

  /// Row-major SD id mappings.
  int sd_row(int sd) const { return check(sd) / sd_cols_; }
  int sd_col(int sd) const { return check(sd) % sd_cols_; }
  int sd_at(int row, int col) const {
    NLH_ASSERT(row >= 0 && row < sd_rows_ && col >= 0 && col < sd_cols_);
    return row * sd_cols_ + col;
  }

  /// Global DP coordinates of the SD's top-left interior DP.
  int origin_row(int sd) const { return sd_row(sd) * sd_size_; }
  int origin_col(int sd) const { return sd_col(sd) * sd_size_; }

  /// Neighbor SD in direction `d`, or nullopt at the domain boundary.
  std::optional<int> neighbor(int sd, direction d) const {
    const auto [dr, dc] = direction_offset(d);
    const int r = sd_row(sd) + dr;
    const int c = sd_col(sd) + dc;
    if (r < 0 || r >= sd_rows_ || c < 0 || c >= sd_cols_) return std::nullopt;
    return sd_at(r, c);
  }

  /// All existing neighbors as (direction, sd) pairs, in enum order.
  std::vector<std::pair<direction, int>> neighbors(int sd) const {
    std::vector<std::pair<direction, int>> out;
    out.reserve(num_directions);
    for (int d = 0; d < num_directions; ++d) {
      const auto dir = static_cast<direction>(d);
      if (const auto nb = neighbor(sd, dir)) out.emplace_back(dir, *nb);
    }
    return out;
  }

  /// SD-local rectangle of DPs sent toward the neighbor in direction `d`
  /// (rows/cols in [0, sd_size)).
  nonlocal::dp_rect send_rect(direction d) const {
    const auto [dr, dc] = direction_offset(d);
    nonlocal::dp_rect r;
    r.row_begin = dr > 0 ? sd_size_ - ghost_ : 0;
    r.row_end = dr < 0 ? ghost_ : sd_size_;
    r.col_begin = dc > 0 ? sd_size_ - ghost_ : 0;
    r.col_end = dc < 0 ? ghost_ : sd_size_;
    return r;
  }

  /// SD-local collar rectangle filled by data arriving *from* the neighbor
  /// in direction `d` (indices extend into [-ghost, sd_size + ghost)).
  nonlocal::dp_rect recv_rect(direction d) const {
    const auto [dr, dc] = direction_offset(d);
    nonlocal::dp_rect r;
    r.row_begin = dr < 0 ? -ghost_ : (dr > 0 ? sd_size_ : 0);
    r.row_end = dr < 0 ? 0 : (dr > 0 ? sd_size_ + ghost_ : sd_size_);
    r.col_begin = dc < 0 ? -ghost_ : (dc > 0 ? sd_size_ : 0);
    r.col_end = dc < 0 ? 0 : (dc > 0 ? sd_size_ + ghost_ : sd_size_);
    return r;
  }

  /// DPs in one ghost strip toward direction `d` (side: sd_size * ghost,
  /// corner: ghost^2) — the payload size of one exchange message.
  int strip_dps(direction d) const {
    return static_cast<int>(send_rect(d).area());
  }

 private:
  int check(int sd) const {
    NLH_ASSERT(sd >= 0 && sd < num_sds());
    return sd;
  }

  int sd_rows_;
  int sd_cols_;
  int sd_size_;
  int ghost_;
};

/// The case-1/case-2 split of one SD given an ownership assignment
/// (paper §6.3): `interior` holds the case-2 DPs that read no foreign
/// data and compute while ghost messages are in flight; `remote_strips`
/// are the case-1 margins that wait for all of the SD's remote ghosts.
/// The rectangles exactly tile the SD (no DP lost or duplicated).
struct case_split {
  nonlocal::dp_rect interior;
  std::vector<nonlocal::dp_rect> remote_strips;

  long long interior_dps() const { return interior.empty() ? 0 : interior.area(); }
  long long strip_dps() const {
    long long total = 0;
    for (const auto& s : remote_strips) total += s.area();
    return total;
  }
};

/// Compute the split for `sd` under `owner` (one entry per SD). A margin is
/// marked remote when any neighbor overlapping it (sides and, conservatively,
/// diagonals) has a different owner; `active` (optional mask, one flag per
/// SD) removes inactive neighbors from consideration entirely.
case_split compute_case_split(const tiling& t, int sd, const std::vector<int>& owner,
                              const std::vector<char>* active = nullptr);

/// One fine-grained case-1 strip: an SD-local rectangle plus the exact set
/// of cross-locality directions whose ghost data its epsilon-halo reads.
/// `deps` empty means every value the strip touches is available locally at
/// post time (same-locality collar fills) — such strips run with the case-2
/// interior instead of waiting on any message.
struct strip_dep {
  nonlocal::dp_rect rect;
  std::vector<direction> deps;  ///< remote directions, ascending enum order
};

/// Refine the case-1 region of `sd` into per-direction side and corner
/// strips (paper §6.3 taken one level finer than compute_case_split): the
/// returned rectangles tile exactly the same DPs as the coarse
/// `remote_strips`, but each carries only the directions whose recv collar
/// intersects its epsilon-halo. Side strips typically depend on one ghost;
/// corner strips on the two adjacent sides plus the diagonal (when those
/// are cross-locality). This is the dependency table the per-direction
/// overlap schedule compiles into its step_plan.
std::vector<strip_dep> compute_fine_strips(const tiling& t, int sd,
                                           const std::vector<int>& owner,
                                           const std::vector<char>* active = nullptr);

}  // namespace nlh::dist

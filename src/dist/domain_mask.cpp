///
/// \file domain_mask.cpp
/// \brief Mask constructors (predicate, L-shape, disk, crack) and the
/// active-SD queries used by the case split and the masked dual graph.
///

#include "dist/domain_mask.hpp"

#include <algorithm>
#include <cmath>

namespace nlh::dist {

domain_mask domain_mask::from_predicate(
    const tiling& t, const std::function<bool(int row, int col)>& keep) {
  std::vector<char> active(static_cast<std::size_t>(t.num_sds()), 0);
  for (int r = 0; r < t.sd_rows(); ++r)
    for (int c = 0; c < t.sd_cols(); ++c)
      active[static_cast<std::size_t>(t.sd_at(r, c))] = keep(r, c) ? 1 : 0;
  return domain_mask(std::move(active));
}

domain_mask domain_mask::full(const tiling& t) {
  return from_predicate(t, [](int, int) { return true; });
}

domain_mask domain_mask::l_shape(const tiling& t) {
  const int half_rows = t.sd_rows() / 2;
  const int half_cols = t.sd_cols() / 2;
  return from_predicate(t, [half_rows, half_cols](int r, int c) {
    return !(r < half_rows && c >= half_cols);
  });
}

domain_mask domain_mask::disk(const tiling& t) {
  const double cy = t.sd_rows() / 2.0;
  const double cx = t.sd_cols() / 2.0;
  const double radius = std::min(t.sd_rows(), t.sd_cols()) / 2.0;
  return from_predicate(t, [cy, cx, radius](int r, int c) {
    const double dy = (r + 0.5) - cy;
    const double dx = (c + 0.5) - cx;
    return dy * dy + dx * dx <= radius * radius;
  });
}

int domain_mask::num_active() const {
  return static_cast<int>(std::count(active_.begin(), active_.end(), 1));
}

std::vector<int> domain_mask::active_sds() const {
  std::vector<int> out;
  for (std::size_t sd = 0; sd < active_.size(); ++sd)
    if (active_[sd]) out.push_back(static_cast<int>(sd));
  return out;
}

}  // namespace nlh::dist

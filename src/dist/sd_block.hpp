#pragma once
///
/// \file sd_block.hpp
/// \brief Per-SD field storage: the sd_size^2 interior DPs surrounded by a
/// ghost collar, plus strip pack/unpack for the exchange path.
///
/// Each block holds two padded fields (u and u_next) so the forward-Euler
/// update never aliases its inputs; swap_fields flips them after a step.
/// pack/unpack serialize send/recv strips row-major as raw doubles — the
/// payload a cluster run would put on the wire — while fill_from_local is
/// the zero-copy shortcut for neighbors on the same locality.
///

#include <utility>
#include <vector>

#include "dist/tiling.hpp"
#include "support/assert.hpp"

namespace nlh::dist {

class sd_block {
 public:
  sd_block(const tiling& t, int sd)
      : sd_(sd),
        size_(t.sd_size()),
        ghost_(t.ghost()),
        origin_row_(t.origin_row(sd)),
        origin_col_(t.origin_col(sd)),
        stride_(t.sd_size() + 2 * t.ghost()),
        u_(static_cast<std::size_t>(stride_) * stride_, 0.0),
        u_next_(static_cast<std::size_t>(stride_) * stride_, 0.0) {}

  int sd() const { return sd_; }
  int size() const { return size_; }
  int ghost() const { return ghost_; }
  int stride() const { return stride_; }

  /// Global DP coordinates of local (0, 0).
  int origin_row() const { return origin_row_; }
  int origin_col() const { return origin_col_; }

  /// Flat index of local DP (i, j); collar cells use i or j in
  /// [-ghost, size + ghost).
  std::size_t flat(int i, int j) const {
    NLH_ASSERT(i >= -ghost_ && i < size_ + ghost_);
    NLH_ASSERT(j >= -ghost_ && j < size_ + ghost_);
    return static_cast<std::size_t>(i + ghost_) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(j + ghost_);
  }

  std::vector<double>& u() { return u_; }
  const std::vector<double>& u() const { return u_; }
  std::vector<double>& u_next() { return u_next_; }
  const std::vector<double>& u_next() const { return u_next_; }

  void swap_fields() { std::swap(u_, u_next_); }

  /// Row-major copy of the size^2 interior DPs — the migration and
  /// checkpoint payload.
  std::vector<double> interior() const {
    std::vector<double> vals;
    vals.reserve(static_cast<std::size_t>(size_) * size_);
    for (int i = 0; i < size_; ++i)
      for (int j = 0; j < size_; ++j) vals.push_back(u_[flat(i, j)]);
    return vals;
  }

  void set_interior(const std::vector<double>& vals) {
    NLH_ASSERT_MSG(vals.size() == static_cast<std::size_t>(size_) * size_,
                   "sd_block: interior payload size mismatch");
    std::size_t k = 0;
    for (int i = 0; i < size_; ++i)
      for (int j = 0; j < size_; ++j) u_[flat(i, j)] = vals[k++];
  }

  /// Row-major copy of the strip sent toward direction `d`, written into a
  /// caller-owned scratch vector: its capacity is reused across steps, so a
  /// pooled exchange path allocates only on the first step (or never, once
  /// warm — the ROADMAP ghost-strip-pooling item).
  void pack_into(const tiling& t, direction d, std::vector<double>& strip) const {
    const auto r = t.send_rect(d);
    strip.resize(static_cast<std::size_t>(r.area()));
    std::size_t k = 0;
    for (int i = r.row_begin; i < r.row_end; ++i)
      for (int j = r.col_begin; j < r.col_end; ++j) strip[k++] = u_[flat(i, j)];
  }

  /// Convenience allocating form of pack_into.
  std::vector<double> pack(const tiling& t, direction d) const {
    std::vector<double> strip;
    pack_into(t, d, strip);
    return strip;
  }

  /// Write a strip received *from* direction `d` into the matching collar.
  void unpack(const tiling& t, direction d, const std::vector<double>& strip) {
    const auto r = t.recv_rect(d);
    NLH_ASSERT_MSG(strip.size() == static_cast<std::size_t>(r.area()),
                   "sd_block: ghost strip size does not match the collar rect");
    std::size_t k = 0;
    for (int i = r.row_begin; i < r.row_end; ++i)
      for (int j = r.col_begin; j < r.col_end; ++j) u_[flat(i, j)] = strip[k++];
  }

  /// Fill the collar facing direction `d` straight from a same-locality
  /// neighbor block (equivalent to unpack(d, nbr.pack(opposite(d)))).
  void fill_from_local(const tiling& t, direction d, const sd_block& nbr) {
    const auto dst = t.recv_rect(d);
    const auto src = t.send_rect(opposite(d));
    NLH_ASSERT(dst.rows() == src.rows() && dst.cols() == src.cols());
    for (int i = 0; i < dst.rows(); ++i)
      for (int j = 0; j < dst.cols(); ++j)
        u_[flat(dst.row_begin + i, dst.col_begin + j)] =
            nbr.u_[nbr.flat(src.row_begin + i, src.col_begin + j)];
  }

 private:
  int sd_;
  int size_;
  int ghost_;
  int origin_row_;
  int origin_col_;
  int stride_;
  std::vector<double> u_;
  std::vector<double> u_next_;
};

}  // namespace nlh::dist

#pragma once
///
/// \file domain_mask.hpp
/// \brief Active/inactive SD masks for non-rectangular material domains
/// (the paper's future-work item: L-shapes, disks, cracked plates).
///
/// A mask flags which SDs carry material. Inactive SDs never compute, never
/// exchange ghosts and are excluded from the dual graph the partitioner
/// sees (build_mesh_dual_masked); the case split treats an inactive
/// neighbor exactly like the domain boundary.
///

#include <functional>
#include <vector>

#include "dist/tiling.hpp"

namespace nlh::dist {

class domain_mask {
 public:
  /// Every SD active (the square domain).
  static domain_mask full(const tiling& t);

  /// L-shape: the top-right quadrant of the SD grid removed.
  static domain_mask l_shape(const tiling& t);

  /// Disk inscribed in the SD grid (SD centers within the radius kept).
  static domain_mask disk(const tiling& t);

  /// Arbitrary shape from a predicate on the SD grid position.
  static domain_mask from_predicate(const tiling& t,
                                    const std::function<bool(int row, int col)>& keep);

  bool active(int sd) const {
    NLH_ASSERT(sd >= 0 && sd < static_cast<int>(active_.size()));
    return active_[static_cast<std::size_t>(sd)] != 0;
  }

  int num_active() const;

  /// Active SD ids, ascending.
  std::vector<int> active_sds() const;

  /// One flag per row-major SD — the format build_mesh_dual_masked and
  /// sim_cost_model::sd_active consume.
  const std::vector<char>& raw() const { return active_; }

 private:
  explicit domain_mask(std::vector<char> active) : active_(std::move(active)) {}

  std::vector<char> active_;
};

}  // namespace nlh::dist

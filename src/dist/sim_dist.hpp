#pragma once
///
/// \file sim_dist.hpp
/// \brief Virtual-time twin of the distributed solver: build the per-step
/// task DAG of a tiling + ownership and replay it on sim::cluster_sim.
///
/// Per SD and step the DAG mirrors the real schedule: a case-2 interior
/// task (depends on the SD's and its same-locality neighbors' previous
/// step), a pack task feeding cross-locality messages, a zero-work unpack
/// join that waits for all incoming ghosts, and a case-1 boundary task
/// gated on the unpack. With overlap off (the bulk-synchronous baseline)
/// the interior task is gated on the unpack too — same work and traffic,
/// communication on the critical path.
///

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "dist/ownership.hpp"
#include "dist/tiling.hpp"
#include "sim/capacity_trace.hpp"
#include "sim/cluster_sim.hpp"

namespace nlh::dist {

/// Abstract cost of the solver's building blocks, in simulator work units.
struct sim_cost_model {
  double work_per_dp = 1.0;       ///< one eq.-5 right-hand-side evaluation
  double bytes_per_dp = 8.0;      ///< ghost payload per DP (one double)
  double pack_work_per_dp = 0.0;  ///< strip serialization cost
  bool overlap = true;            ///< false = bulk-synchronous baseline
  /// Optional per-SD work multiplier (crack workloads); empty = all 1.
  std::vector<double> sd_work_scale;
  /// Optional active mask (masked domains); empty = all active.
  std::vector<char> sd_active;
};

/// The modeled cluster the DAG executes on.
struct sim_cluster_config {
  int cores_per_node = 1;
  sim::network_model net;
  /// Per-node capacity traces; empty = constant speed 1 everywhere.
  std::vector<sim::capacity_trace> node_capacity;
  /// When set, the executed schedule is written as Chrome tracing JSON.
  std::ostream* chrome_trace = nullptr;
};

/// Virtual-time outcome of one simulated run.
struct sim_result {
  double makespan = 0.0;
  std::vector<double> node_busy;           ///< virtual busy seconds per node
  std::vector<double> node_busy_fraction;  ///< busy / (makespan * cores)
  double network_bytes = 0.0;              ///< inter-node ghost traffic
  std::int64_t network_messages = 0;
};

/// Work units one SD costs per timestep under `cost` (interior + boundary
/// together; the split does not change the total).
double sd_step_work(const tiling& t, int sd, const sim_cost_model& cost);

/// Build the task DAG for `steps` timesteps of the tiling under `own` and
/// execute it on the virtual cluster.
sim_result simulate_timestepping(const tiling& t, const ownership_map& own, int steps,
                                 const sim_cost_model& cost,
                                 const sim_cluster_config& cluster);

}  // namespace nlh::dist

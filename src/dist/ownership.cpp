///
/// \file ownership.cpp
/// \brief ownership_map construction and the derived views (per-node SD
/// lists, counts, node adjacency, SP-boundary membership) Algorithm 1 reads.
///

#include "dist/ownership.hpp"

#include <algorithm>

namespace nlh::dist {

ownership_map::ownership_map(const tiling& t, int num_nodes, std::vector<int> owner)
    : num_nodes_(num_nodes), owner_(std::move(owner)) {
  NLH_ASSERT(num_nodes >= 1);
  NLH_ASSERT_MSG(static_cast<int>(owner_.size()) == t.num_sds(),
                 "ownership_map: one owner entry per SD required");
  for (int o : owner_)
    NLH_ASSERT_MSG(o >= 0 && o < num_nodes_, "ownership_map: owner out of range");
}

ownership_map ownership_map::single_node(const tiling& t) {
  return ownership_map(t, 1, std::vector<int>(static_cast<std::size_t>(t.num_sds()), 0));
}

ownership_map ownership_map::from_partition(const tiling& t, int num_nodes,
                                            const std::vector<int>& part) {
  return ownership_map(t, num_nodes, part);
}

void ownership_map::set_owner(int sd, int node) {
  NLH_ASSERT(sd >= 0 && sd < num_sds());
  NLH_ASSERT_MSG(node >= 0 && node < num_nodes_, "ownership_map: owner out of range");
  owner_[static_cast<std::size_t>(sd)] = node;
}

std::vector<int> ownership_map::sds_of(int node) const {
  std::vector<int> out;
  for (int sd = 0; sd < num_sds(); ++sd)
    if (owner_[static_cast<std::size_t>(sd)] == node) out.push_back(sd);
  return out;
}

std::vector<int> ownership_map::sd_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(num_nodes_), 0);
  for (int o : owner_) ++counts[static_cast<std::size_t>(o)];
  return counts;
}

bool ownership_map::is_sp_boundary(const tiling& t, int sd) const {
  const int me = owner(sd);
  for (const auto& [d, nb] : t.neighbors(sd))
    if (owner(nb) != me) return true;
  return false;
}

std::vector<std::vector<int>> ownership_map::node_adjacency(const tiling& t) const {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes_));
  for (int sd = 0; sd < num_sds(); ++sd) {
    const int me = owner(sd);
    for (const auto& [d, nb] : t.neighbors(sd)) {
      const int other = owner(nb);
      if (other != me) adj[static_cast<std::size_t>(me)].push_back(other);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace nlh::dist

#pragma once
///
/// \file step_plan.hpp
/// \brief The compiled per-solver schedule of one distributed timestep.
///
/// A step_plan is compiled once from (tiling, ownership) and reused every
/// step until a migration or restore changes the ownership map: it caches
/// each SD's case-1/case-2 split, its same-locality collar fills, its
/// cross-locality message table (direction, peer locality, tag base) and
/// the fine-grained per-direction strip dependency graph — everything
/// dist_solver::step() used to recompute and re-allocate per step. Ghost
/// tags are an affine function of the step counter (step * tag_stride +
/// tag_base), so the cached bases stay valid for the plan's lifetime.
///
/// The sends table is ordered for boundary-first posting: pack/send tasks
/// are enqueued on the sender pools before any aux-field or interior
/// compute work, so messages leave each locality as early as possible.
/// post_order lists SDs boundary-first for the same reason.
///

#include <cstdint>
#include <vector>

#include "dist/ownership.hpp"
#include "dist/tiling.hpp"

namespace nlh::dist {

/// One cross-locality ghost message, receiver view.
struct plan_recv {
  direction dir;           ///< collar side it fills on the receiving SD
  int src_locality;        ///< sender's locality at compile time
  std::uint64_t tag_base;  ///< tag = step * step_plan::tag_stride + tag_base
  int slot;                ///< plan-wide message index (future-slot storage)
};

/// The same message, sender view — the boundary-first posting order.
struct plan_send {
  int sender_sd;
  direction pack_dir;      ///< strip the sender packs (= opposite(recv dir))
  int src_locality;
  int dst_locality;
  std::uint64_t tag_base;  ///< the receiver's tag base (same message)
};

/// One case-1 strip with its ghost dependencies resolved to message slots.
struct plan_strip {
  nonlocal::dp_rect rect;
  std::vector<int> dep_slots;  ///< slots of the ghosts whose collar it reads
};

/// The cached per-SD schedule.
struct plan_sd {
  case_split split;  ///< coarse split (interior + full-margin strips)
  std::vector<std::pair<direction, int>> local_fills;  ///< same-locality collars
  std::vector<plan_recv> recvs;
  std::vector<plan_strip> strips;  ///< fine strips with >= 1 remote dependency
  /// Fine case-1 strips whose halo reads no cross-locality collar: posted
  /// together with the interior, they never wait on a message.
  std::vector<nonlocal::dp_rect> ready_strips;
  bool boundary = false;  ///< has at least one cross-locality neighbor
};

struct step_plan {
  std::uint64_t tag_stride = 0;  ///< num_sds * num_directions
  int total_messages = 0;        ///< plan-wide message (slot) count
  std::vector<plan_sd> sds;
  std::vector<plan_send> sends;  ///< every cross-locality message, send view
  std::vector<int> post_order;   ///< SD ids, boundary SDs first

  // Aggregate schedule shape, totalled at compile time — exposed as
  // `dist/plan/...` gauges and trace args by the observability layer so an
  // exported snapshot states how much of the step was overlappable.
  int total_strips = 0;        ///< fine case-1 strips with >= 1 remote dep
  int total_ready_strips = 0;  ///< fine case-1 strips with no remote dep
  int total_local_fills = 0;   ///< same-locality collar copies per step
  int boundary_sds = 0;        ///< SDs with >= 1 cross-locality neighbor
};

/// Compile the schedule for `t` under `own`. Deterministic: the message
/// enumeration (receiver-major, direction order) reproduces the historical
/// tag assignment bit for bit.
step_plan compile_step_plan(const tiling& t, const ownership_map& own);

}  // namespace nlh::dist

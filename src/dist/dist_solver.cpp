///
/// \file dist_solver.cpp
/// \brief Implementation of the asynchronous distributed solver: futurized
/// ghost exchange, case-1/case-2 compute tasks (through the compiled kernel
/// plan), SD migration and checkpoint/restore.
///

#include "dist/dist_solver.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "amt/async.hpp"
#include "net/serializer.hpp"
#include "nonlocal/nonlocal_operator.hpp"

namespace nlh::dist {

std::vector<std::string> validate(const dist_config& cfg) {
  std::vector<std::string> errs;
  auto err = [&errs](const std::ostringstream& msg) { errs.push_back(msg.str()); };

  if (cfg.sd_rows < 1 || cfg.sd_cols < 1) {
    std::ostringstream m;
    m << "dist_config.sd_rows/sd_cols: the SD grid must be at least 1x1 (got "
      << cfg.sd_rows << "x" << cfg.sd_cols << ")";
    err(m);
  } else if (cfg.sd_rows != cfg.sd_cols) {
    std::ostringstream m;
    m << "dist_config.sd_rows/sd_cols: the global mesh must be square (got "
      << cfg.sd_rows << "x" << cfg.sd_cols << " SDs)";
    err(m);
  }
  if (cfg.sd_size <= 0) {
    std::ostringstream m;
    m << "dist_config.sd_size: DPs per SD side must be positive (got "
      << cfg.sd_size << ")";
    err(m);
  }
  if (cfg.epsilon_factor < 1) {
    std::ostringstream m;
    m << "dist_config.epsilon_factor: ghost width must be at least 1 (got "
      << cfg.epsilon_factor << ")";
    err(m);
  } else if (cfg.sd_size > 0 && cfg.epsilon_factor > cfg.sd_size) {
    std::ostringstream m;
    m << "dist_config.epsilon_factor: ghost width " << cfg.epsilon_factor
      << " exceeds sd_size " << cfg.sd_size
      << "; one neighbor ring can no longer cover the nonlocal horizon "
         "(shrink epsilon_factor or enlarge the SDs)";
    err(m);
  }
  if (cfg.conductivity <= 0.0) {
    std::ostringstream m;
    m << "dist_config.conductivity: must be positive (got " << cfg.conductivity
      << ")";
    err(m);
  }
  if (cfg.dt < 0.0) {
    std::ostringstream m;
    m << "dist_config.dt: must be non-negative; 0 selects the stability bound "
         "* dt_safety (got "
      << cfg.dt << ")";
    err(m);
  }
  if (cfg.dt_safety <= 0.0) {
    std::ostringstream m;
    m << "dist_config.dt_safety: must be positive (got " << cfg.dt_safety << ")";
    err(m);
  }
  if (cfg.threads_per_locality < 1) {
    std::ostringstream m;
    m << "dist_config.threads_per_locality: must be at least 1 (got "
      << cfg.threads_per_locality << ")";
    err(m);
  }
  return errs;
}

namespace {

/// Throwing gate run before any member construction, so a bad config never
/// reaches the tiling/grid asserts.
dist_config validated(dist_config cfg) {
  const auto errs = validate(cfg);
  if (!errs.empty()) {
    std::ostringstream msg;
    msg << "invalid dist_config (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }
  return cfg;
}

}  // namespace

dist_solver::dist_solver(const dist_config& cfg, ownership_map own,
                         std::shared_ptr<const api::scenario> scn)
    : cfg_(validated(cfg)),
      tiling_(cfg.sd_rows, cfg.sd_cols, cfg.sd_size, cfg.epsilon_factor),
      own_(std::move(own)),
      grid_(cfg.sd_cols * cfg.sd_size,
            static_cast<double>(cfg.epsilon_factor) / (cfg.sd_cols * cfg.sd_size)),
      J_(cfg.kind),
      stencil_(grid_, J_),
      c_(J_.scaling_constant(2, cfg.conductivity, grid_.epsilon())),
      dt_(cfg.dt > 0.0 ? cfg.dt : cfg.dt_safety * nonlocal::stable_dt(c_, stencil_)),
      plan_(stencil_),
      scenario_(scn ? std::move(scn)
                    : std::make_shared<const api::manufactured_scenario>()),
      comm_(own_.num_nodes()),
      w_field_(grid_.make_field()),
      b_field_(grid_.make_field()) {
  NLH_ASSERT(own_.num_sds() == tiling_.num_sds());
  NLH_ASSERT_MSG(grid_.ghost() == cfg.epsilon_factor,
                 "dist_solver: grid ghost width must equal epsilon_factor");

  pools_.reserve(static_cast<std::size_t>(own_.num_nodes()));
  for (int l = 0; l < own_.num_nodes(); ++l)
    pools_.push_back(std::make_unique<amt::thread_pool>(
        static_cast<unsigned>(cfg.threads_per_locality)));

  blocks_.reserve(static_cast<std::size_t>(tiling_.num_sds()));
  lu_.reserve(static_cast<std::size_t>(tiling_.num_sds()));
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    blocks_.push_back(std::make_unique<sd_block>(tiling_, sd));
    lu_.emplace_back(
        static_cast<std::size_t>(blocks_.back()->stride()) * blocks_.back()->stride(),
        0.0);
  }
  pack_scratch_.resize(static_cast<std::size_t>(tiling_.num_sds()));
  unpack_scratch_.resize(static_cast<std::size_t>(tiling_.num_sds()));

  if (cfg_.backend) plan_.set_backend(*cfg_.backend);
}

net::byte_buffer dist_solver::acquire_buffer() {
  std::lock_guard<std::mutex> lk(buffer_pool_mu_);
  if (buffer_pool_.empty()) return {};
  auto buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buf;
}

void dist_solver::release_buffer(net::byte_buffer buf) {
  std::lock_guard<std::mutex> lk(buffer_pool_mu_);
  buffer_pool_.push_back(std::move(buf));
}

void dist_solver::unpack_ghost(int sd, direction d, net::byte_buffer buf) {
  auto& strip = unpack_scratch_[static_cast<std::size_t>(sd)];
  net::archive_reader r(buf);
  r.read_vector_into(strip);
  blocks_[static_cast<std::size_t>(sd)]->unpack(tiling_, d, strip);
  release_buffer(std::move(buf));
}

std::uint64_t dist_solver::ghost_tag(int step, int sd, direction d) const {
  return (static_cast<std::uint64_t>(step) * static_cast<std::uint64_t>(tiling_.num_sds()) +
          static_cast<std::uint64_t>(sd)) *
             num_directions +
         static_cast<std::uint64_t>(d);
}

std::uint64_t dist_solver::migration_tag(int sd) const {
  return (1ull << 63) | static_cast<std::uint64_t>(sd);
}

void dist_solver::set_initial_condition() {
  const int s = tiling_.sd_size();
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    auto& blk = *blocks_[static_cast<std::size_t>(sd)];
    for (int i = 0; i < s; ++i)
      for (int j = 0; j < s; ++j)
        blk.u()[blk.flat(i, j)] = scenario_->initial(
            grid_.x(blk.origin_col() + j), grid_.y(blk.origin_row() + i));
  }
}

void dist_solver::compute_rect(int sd, const nonlocal::dp_rect& rect, double t_now) {
  if (rect.empty()) return;
  auto& blk = *blocks_[static_cast<std::size_t>(sd)];
  auto& lu = lu_[static_cast<std::size_t>(sd)];

  // The per-SD blocks and the scenario's source term share one compiled
  // plan, applied through the process-wide backend.
  nonlocal::apply_nonlocal_operator_raw(blk.u().data(), lu.data(), blk.stride(),
                                        blk.ghost(), plan_, c_, rect);

  // The scenario source over the matching global rectangle. Rects of
  // concurrent tasks are disjoint, so the shared scratch is race-free.
  const nonlocal::dp_rect grect{rect.row_begin + blk.origin_row(),
                                rect.row_end + blk.origin_row(),
                                rect.col_begin + blk.origin_col(),
                                rect.col_end + blk.origin_col()};
  scenario_->source_into(context(), t_now, w_field_, grect, b_field_);

  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const auto idx = blk.flat(i, j);
      const auto gidx = grid_.flat(blk.origin_row() + i, blk.origin_col() + j);
      blk.u_next()[idx] = blk.u()[idx] + dt_ * (lu[idx] + b_field_[gidx]);
    }
}

void dist_solver::step() {
  const double t_now = step_ * dt_;

  // The scenario's auxiliary field on the global grid (manufactured: the
  // analytic w(t_k), so no communication is needed); each locality
  // evaluates its own SDs' rectangles (disjoint writes). Everything must
  // land before compute tasks read across SD boundaries, so these futures
  // are awaited below, before the computes are posted.
  std::vector<amt::future<void>> w_pending;
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    w_pending.push_back(amt::async(
        *pools_[static_cast<std::size_t>(own_.owner(sd))], [this, sd, t_now] {
          const auto& blk = *blocks_[static_cast<std::size_t>(sd)];
          const nonlocal::dp_rect grect{
              blk.origin_row(), blk.origin_row() + tiling_.sd_size(),
              blk.origin_col(), blk.origin_col() + tiling_.sd_size()};
          scenario_->fill_aux(context(), t_now, grect, w_field_);
        }));
  }

  // Same-locality collar fills: direct copies, no serialization.
  for (int sd = 0; sd < tiling_.num_sds(); ++sd)
    for (const auto& [d, nb] : tiling_.neighbors(sd))
      if (own_.owner(nb) == own_.owner(sd))
        blocks_[static_cast<std::size_t>(sd)]->fill_from_local(
            tiling_, d, *blocks_[static_cast<std::size_t>(nb)]);

  // Post the futurized receives, then the pack/send tasks on the sender
  // pools. Receiver-centric enumeration: each cross-locality (sd, d) pair
  // is one message.
  std::vector<std::vector<amt::future<net::byte_buffer>>> futs(
      static_cast<std::size_t>(tiling_.num_sds()));
  std::vector<std::vector<direction>> fut_dirs(
      static_cast<std::size_t>(tiling_.num_sds()));
  std::vector<amt::future<void>> pending;
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const int dst = own_.owner(sd);
    for (const auto& [d, nb] : tiling_.neighbors(sd)) {
      // Plain locals: lambdas cannot capture structured bindings in C++17.
      const direction dir = d;
      const int sender_sd = nb;
      const int src = own_.owner(sender_sd);
      if (src == dst) continue;
      const auto tag = ghost_tag(step_, sd, dir);
      futs[static_cast<std::size_t>(sd)].push_back(comm_.recv(dst, src, tag));
      fut_dirs[static_cast<std::size_t>(sd)].push_back(dir);
      pending.push_back(amt::async(
          *pools_[static_cast<std::size_t>(src)],
          [this, sender_sd, src, dst, tag, pack_dir = opposite(dir)] {
            auto& strip = pack_scratch_[static_cast<std::size_t>(sender_sd)]
                                       [static_cast<std::size_t>(pack_dir)];
            blocks_[static_cast<std::size_t>(sender_sd)]->pack_into(tiling_, pack_dir,
                                                                    strip);
            net::archive_writer w(acquire_buffer());
            w.write(strip);
            auto buf = w.take();
            ghost_bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
            comm_.send(src, dst, tag, std::move(buf));
          }));
    }
  }

  // The source evaluation inside compute_rect reads w up to `ghost` cells
  // beyond its own SD: every w rectangle must be in place first.
  for (auto& f : w_pending) f.wait();

  if (!cfg_.overlap_communication) {
    // Bulk-synchronous baseline: drain every ghost before any compute.
    for (int sd = 0; sd < tiling_.num_sds(); ++sd)
      for (std::size_t i = 0; i < futs[static_cast<std::size_t>(sd)].size(); ++i)
        unpack_ghost(sd, fut_dirs[static_cast<std::size_t>(sd)][i],
                     futs[static_cast<std::size_t>(sd)][i].get());
  }

  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    auto& pool = *pools_[static_cast<std::size_t>(own_.owner(sd))];
    const auto split = compute_case_split(tiling_, sd, own_.raw());

    // Case 2: needs no foreign data — runs while messages are in flight.
    pending.push_back(amt::async(
        pool, [this, sd, rect = split.interior, t_now] { compute_rect(sd, rect, t_now); }));

    if (split.remote_strips.empty()) continue;
    if (!cfg_.overlap_communication) {
      pending.push_back(amt::async(pool, [this, sd, strips = split.remote_strips, t_now] {
        for (const auto& rect : strips) compute_rect(sd, rect, t_now);
      }));
      continue;
    }
    // Case 1: chained on the arrival of all of this SD's remote ghosts;
    // the continuation hops onto the owner's pool (amt::dataflow).
    pending.push_back(amt::dataflow(
        pool, std::move(futs[static_cast<std::size_t>(sd)]),
        [this, sd, dirs = fut_dirs[static_cast<std::size_t>(sd)],
         strips = split.remote_strips,
         t_now](std::vector<amt::future<net::byte_buffer>> ready) {
          for (std::size_t i = 0; i < ready.size(); ++i)
            unpack_ghost(sd, dirs[i], ready[i].get());
          for (const auto& rect : strips) compute_rect(sd, rect, t_now);
        }));
  }

  for (auto& f : pending) f.wait();

  for (auto& blk : blocks_) blk->swap_fields();
  ++step_;
}

void dist_solver::run(int steps) {
  for (int k = 0; k < steps; ++k) step();
}

std::vector<double> dist_solver::gather() const {
  auto field = grid_.make_field();
  const int s = tiling_.sd_size();
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const auto& blk = *blocks_[static_cast<std::size_t>(sd)];
    for (int i = 0; i < s; ++i)
      for (int j = 0; j < s; ++j)
        field[grid_.flat(blk.origin_row() + i, blk.origin_col() + j)] =
            blk.u()[blk.flat(i, j)];
  }
  return field;
}

double dist_solver::busy_fraction(int locality) const {
  NLH_ASSERT(locality >= 0 && locality < own_.num_nodes());
  return pools_[static_cast<std::size_t>(locality)]->busy_fraction();
}

void dist_solver::reset_busy_counters() {
  for (auto& pool : pools_) pool->reset_busy_time();
}

void dist_solver::migrate_sd(int sd, int to_node) {
  NLH_ASSERT(sd >= 0 && sd < tiling_.num_sds());
  NLH_ASSERT(to_node >= 0 && to_node < own_.num_nodes());
  const int from = own_.owner(sd);
  if (from == to_node) return;

  auto& blk = *blocks_[static_cast<std::size_t>(sd)];
  net::archive_writer w;
  w.write(blk.interior());
  comm_.send(from, to_node, migration_tag(sd), w.take());

  const auto buf = comm_.recv(to_node, from, migration_tag(sd)).get();
  net::archive_reader r(buf);
  blk.set_interior(r.read_vector<double>());

  own_.set_owner(sd, to_node);
}

net::byte_buffer dist_solver::checkpoint() const {
  net::archive_writer w;
  w.write(static_cast<std::int64_t>(step_));
  w.write(own_.raw());
  for (int sd = 0; sd < tiling_.num_sds(); ++sd)
    w.write(blocks_[static_cast<std::size_t>(sd)]->interior());
  return w.take();
}

void dist_solver::restore(const net::byte_buffer& state) {
  net::archive_reader r(state);
  step_ = static_cast<int>(r.read<std::int64_t>());
  const auto owners = r.read_vector<int>();
  NLH_ASSERT_MSG(owners.size() == static_cast<std::size_t>(tiling_.num_sds()),
                 "dist_solver::restore: SD count mismatch");
  for (int sd = 0; sd < tiling_.num_sds(); ++sd)
    own_.set_owner(sd, owners[static_cast<std::size_t>(sd)]);

  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    auto& blk = *blocks_[static_cast<std::size_t>(sd)];
    std::fill(blk.u().begin(), blk.u().end(), 0.0);
    std::fill(blk.u_next().begin(), blk.u_next().end(), 0.0);
    blk.set_interior(r.read_vector<double>());
  }
  NLH_ASSERT_MSG(r.exhausted(), "dist_solver::restore: trailing bytes in snapshot");
}

}  // namespace nlh::dist

///
/// \file dist_solver.cpp
/// \brief Implementation of the asynchronous distributed solver: the cached
/// step_plan, per-direction futurized ghost exchange, case-1/case-2 compute
/// tasks (through the compiled kernel plan), SD migration and
/// checkpoint/restore.
///

#include "dist/dist_solver.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "amt/async.hpp"
#include "balance/auto_rebalancer.hpp"
#include "net/serializer.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "obs/tracer.hpp"
#include "support/stopwatch.hpp"

namespace nlh::dist {

const char* overlap_schedule_name(overlap_schedule s) {
  switch (s) {
    case overlap_schedule::bulk_sync: return "bulk_sync";
    case overlap_schedule::coarse: return "coarse";
    case overlap_schedule::per_direction: return "per_direction";
  }
  return "unknown";
}

std::optional<overlap_schedule> parse_overlap_schedule(const std::string& name) {
  if (name == "bulk_sync") return overlap_schedule::bulk_sync;
  if (name == "coarse") return overlap_schedule::coarse;
  if (name == "per_direction") return overlap_schedule::per_direction;
  return std::nullopt;
}

std::vector<std::string> validate(const dist_config& cfg) {
  std::vector<std::string> errs;
  auto err = [&errs](const std::ostringstream& msg) { errs.push_back(msg.str()); };

  if (cfg.sd_rows < 1 || cfg.sd_cols < 1) {
    std::ostringstream m;
    m << "dist_config.sd_rows/sd_cols: the SD grid must be at least 1x1 (got "
      << cfg.sd_rows << "x" << cfg.sd_cols << ")";
    err(m);
  } else if (cfg.sd_rows != cfg.sd_cols) {
    std::ostringstream m;
    m << "dist_config.sd_rows/sd_cols: the global mesh must be square (got "
      << cfg.sd_rows << "x" << cfg.sd_cols << " SDs)";
    err(m);
  }
  if (cfg.sd_size <= 0) {
    std::ostringstream m;
    m << "dist_config.sd_size: DPs per SD side must be positive (got "
      << cfg.sd_size << ")";
    err(m);
  }
  if (cfg.epsilon_factor < 1) {
    std::ostringstream m;
    m << "dist_config.epsilon_factor: ghost width must be at least 1 (got "
      << cfg.epsilon_factor << ")";
    err(m);
  } else if (cfg.sd_size > 0 && cfg.epsilon_factor > cfg.sd_size) {
    std::ostringstream m;
    m << "dist_config.epsilon_factor: ghost width " << cfg.epsilon_factor
      << " exceeds sd_size " << cfg.sd_size
      << "; one neighbor ring can no longer cover the nonlocal horizon "
         "(shrink epsilon_factor or enlarge the SDs)";
    err(m);
  }
  if (cfg.conductivity <= 0.0) {
    std::ostringstream m;
    m << "dist_config.conductivity: must be positive (got " << cfg.conductivity
      << ")";
    err(m);
  }
  if (cfg.dt < 0.0) {
    std::ostringstream m;
    m << "dist_config.dt: must be non-negative; 0 selects the stability bound "
         "* dt_safety (got "
      << cfg.dt << ")";
    err(m);
  }
  if (cfg.dt_safety <= 0.0) {
    std::ostringstream m;
    m << "dist_config.dt_safety: must be positive (got " << cfg.dt_safety << ")";
    err(m);
  }
  if (cfg.threads_per_locality < 1) {
    std::ostringstream m;
    m << "dist_config.threads_per_locality: must be at least 1 (got "
      << cfg.threads_per_locality << ")";
    err(m);
  }
  for (auto& e : balance::validate_rebalance_policy(cfg.rebalance,
                                                    "dist_config.rebalance."))
    errs.push_back(std::move(e));
  if (ckpt::find_codec(cfg.checkpoint.codec) == nullptr) {
    std::ostringstream m;
    m << "dist_config.checkpoint.codec: unknown codec '" << cfg.checkpoint.codec
      << "' (have:";
    for (const auto& n : ckpt::codec_names()) m << " " << n;
    m << ")";
    err(m);
  }
  return errs;
}

namespace {

/// Throwing gate run before any member construction, so a bad config never
/// reaches the tiling/grid asserts.
dist_config validated(dist_config cfg) {
  const auto errs = validate(cfg);
  if (!errs.empty()) {
    std::ostringstream msg;
    msg << "invalid dist_config (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }
  return cfg;
}

}  // namespace

dist_solver::dist_solver(const dist_config& cfg, ownership_map own,
                         std::shared_ptr<const api::scenario> scn)
    : cfg_(validated(cfg)),
      tiling_(cfg.sd_rows, cfg.sd_cols, cfg.sd_size, cfg.epsilon_factor),
      own_(std::move(own)),
      grid_(cfg.sd_cols * cfg.sd_size,
            static_cast<double>(cfg.epsilon_factor) / (cfg.sd_cols * cfg.sd_size)),
      J_(cfg.kind),
      stencil_(grid_, J_),
      c_(J_.scaling_constant(2, cfg.conductivity, grid_.epsilon())),
      dt_(cfg.dt > 0.0 ? cfg.dt : cfg.dt_safety * nonlocal::stable_dt(c_, stencil_)),
      kernel_plan_(stencil_),
      scenario_(scn ? std::move(scn)
                    : std::make_shared<const api::manufactured_scenario>()),
      comm_(own_.num_nodes()),
      w_field_(grid_.make_field()),
      b_field_(grid_.make_field()) {
  NLH_ASSERT(own_.num_sds() == tiling_.num_sds());
  NLH_ASSERT_MSG(grid_.ghost() == cfg.epsilon_factor,
                 "dist_solver: grid ghost width must equal epsilon_factor");

  pools_.reserve(static_cast<std::size_t>(own_.num_nodes()));
  for (int l = 0; l < own_.num_nodes(); ++l)
    pools_.push_back(std::make_unique<amt::thread_pool>(
        static_cast<unsigned>(cfg.threads_per_locality)));

  blocks_.reserve(static_cast<std::size_t>(tiling_.num_sds()));
  lu_.reserve(static_cast<std::size_t>(tiling_.num_sds()));
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    blocks_.push_back(std::make_unique<sd_block>(tiling_, sd));
    lu_.emplace_back(
        static_cast<std::size_t>(blocks_.back()->stride()) * blocks_.back()->stride(),
        0.0);
  }
  pack_scratch_.resize(static_cast<std::size_t>(tiling_.num_sds()));
  unpack_scratch_.resize(static_cast<std::size_t>(tiling_.num_sds()));
  migration_epoch_.assign(static_cast<std::size_t>(tiling_.num_sds()), 0);

  if (cfg_.backend) kernel_plan_.set_backend(*cfg_.backend);
  kernel_plan_.set_tuning(cfg_.tuning);
  if (cfg_.rebalance.enabled)
    rebalancer_ = std::make_unique<balance::auto_rebalancer>(cfg_.rebalance);
}

// Out of line: ~unique_ptr<balance::auto_rebalancer> needs the complete type.
dist_solver::~dist_solver() = default;

balance::rebalance_stats dist_solver::rebalance_stats() const {
  return rebalancer_ ? rebalancer_->stats() : balance::rebalance_stats{};
}

net::byte_buffer dist_solver::acquire_buffer() {
  std::lock_guard<std::mutex> lk(buffer_pool_mu_);
  if (buffer_pool_.empty()) return {};
  auto buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buf;
}

void dist_solver::release_buffer(net::byte_buffer buf) {
  std::lock_guard<std::mutex> lk(buffer_pool_mu_);
  buffer_pool_.push_back(std::move(buf));
}

void dist_solver::unpack_ghost(int sd, direction d, net::byte_buffer buf) {
  NLH_TRACE_SPAN_ARG("dist/unpack", static_cast<std::uint64_t>(sd));
  // Per-(SD, direction) scratch: under the per-direction schedule two
  // ghosts of one SD may unpack concurrently on different workers.
  auto& strip =
      unpack_scratch_[static_cast<std::size_t>(sd)][static_cast<std::size_t>(d)];
  net::archive_reader r(buf);
  r.read_vector_into(strip);
  blocks_[static_cast<std::size_t>(sd)]->unpack(tiling_, d, strip);
  release_buffer(std::move(buf));
  ghosts_inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

std::uint64_t dist_solver::ghost_tag(int step, std::uint64_t tag_base) const {
  // The historical (step, sd, direction) encoding, affine in the step: the
  // plan caches tag_base = sd * num_directions + direction.
  return static_cast<std::uint64_t>(step) * plan_.tag_stride + tag_base;
}

std::uint64_t dist_solver::migration_tag(int sd) const {
  // Bit 63 separates migration traffic from ghost tags; the per-SD
  // migration epoch in bits [32, 63) makes every migration of one SD a
  // distinct tag, so interleaved migrations cannot cross-deliver.
  const std::uint64_t epoch =
      migration_epoch_[static_cast<std::size_t>(sd)] & 0x7fffffffull;
  return (1ull << 63) | (epoch << 32) | static_cast<std::uint64_t>(sd);
}

std::uint64_t dist_solver::migration_epoch(int sd) const {
  NLH_ASSERT(sd >= 0 && sd < tiling_.num_sds());
  return migration_epoch_[static_cast<std::size_t>(sd)];
}

overlap_stats dist_solver::stats() const {
  overlap_stats s;
  s.messages = stat_messages_.load(std::memory_order_relaxed);
  s.interior_early = stat_interior_early_.load(std::memory_order_relaxed);
  s.strips_early = stat_strips_early_.load(std::memory_order_relaxed);
  s.wait_seconds = wait_seconds_.load(std::memory_order_relaxed);
  return s;
}

nonlocal::kernel_exec_stats dist_solver::kernel_stats() const {
  nonlocal::kernel_exec_stats s;
  s.applies = kernel_applies_.load(std::memory_order_relaxed);
  s.blocks = kernel_blocks_.load(std::memory_order_relaxed);
  s.dps = kernel_dps_.load(std::memory_order_relaxed);
  s.seconds = kernel_seconds_.load(std::memory_order_relaxed);
  return s;
}

void dist_solver::metrics_into(obs::metrics_snapshot& snap) const {
  snap.add_counter("dist/ghost/messages",
                   stat_messages_.load(std::memory_order_relaxed));
  snap.add_counter("dist/ghost/bytes", ghost_bytes_.load(std::memory_order_relaxed));
  snap.add_counter("dist/overlap/interior_early",
                   stat_interior_early_.load(std::memory_order_relaxed));
  snap.add_counter("dist/overlap/strips_early",
                   stat_strips_early_.load(std::memory_order_relaxed));
  snap.add_gauge("dist/step/wait_seconds",
                 wait_seconds_.load(std::memory_order_relaxed));
  snap.add_gauge("dist/step/current", static_cast<double>(step_));
  snap.add_counter("dist/plan/compiles", plan_compiles_);
  // Blocked-kernel execution (docs/kernels.md): counters accumulate across
  // every compute_rect on every locality; the gauges report the plan's
  // chosen block geometry and the effective hot-loop throughput.
  {
    const auto ks = kernel_stats();
    snap.add_counter("kernel/applies", ks.applies);
    snap.add_counter("kernel/blocks", ks.blocks);
    snap.add_counter("kernel/dps", ks.dps);
    snap.add_gauge("kernel/mdps", ks.mdps());
    snap.add_gauge("kernel/block_rows",
                   static_cast<double>(kernel_plan_.blocking().row_block));
    snap.add_gauge("kernel/col_tile",
                   static_cast<double>(kernel_plan_.blocking().col_tile));
  }
  snap.add_histogram("dist/ghost/message_bytes", ghost_msg_bytes_hist_.summary());
  snap.add_histogram("dist/step/drain_wait_seconds", drain_wait_hist_.summary());
  for (int l = 0; l < own_.num_nodes(); ++l)
    snap.add_gauge("amt/pool#" + std::to_string(l) + "/busy_fraction",
                   pools_[static_cast<std::size_t>(l)]->busy_fraction());
  // Plan shape: only meaningful once compiled; a dirty plan (fresh
  // construction, or just after migrate_sd/restore) is skipped rather than
  // reported as all-zero.
  if (!plan_dirty_) {
    snap.add_gauge("dist/plan/messages", static_cast<double>(plan_.total_messages));
    snap.add_gauge("dist/plan/strips", static_cast<double>(plan_.total_strips));
    snap.add_gauge("dist/plan/ready_strips",
                   static_cast<double>(plan_.total_ready_strips));
    snap.add_gauge("dist/plan/local_fills",
                   static_cast<double>(plan_.total_local_fills));
    snap.add_gauge("dist/plan/boundary_sds",
                   static_cast<double>(plan_.boundary_sds));
  }
  if (ckpt_checkpoints_ > 0) {
    snap.add_counter("dist/ckpt/checkpoints", ckpt_checkpoints_);
    snap.add_counter("dist/ckpt/bytes_raw", ckpt_bytes_raw_);
    snap.add_counter("dist/ckpt/bytes_encoded", ckpt_bytes_encoded_);
    snap.add_counter("dist/ckpt/frames_full", ckpt_frames_full_);
    snap.add_counter("dist/ckpt/frames_delta", ckpt_frames_delta_);
    snap.add_gauge("dist/ckpt/compression_ratio",
                   ckpt_bytes_encoded_
                       ? static_cast<double>(ckpt_bytes_raw_) /
                             static_cast<double>(ckpt_bytes_encoded_)
                       : 0.0);
  }
  if (rebalancer_) {
    const auto& rs = rebalancer_->stats();
    snap.add_counter("balance/checks", rs.checks);
    snap.add_counter("balance/epochs", rs.epochs);
    snap.add_counter("balance/moves", rs.moves);
    snap.add_gauge("balance/imbalance_before", rs.last_imbalance_before);
    snap.add_gauge("balance/imbalance_after", rs.last_imbalance_after);
  }
}

void dist_solver::ensure_plan() {
  if (!plan_dirty_) return;
  plan_ = compile_step_plan(tiling_, own_);
  ++plan_compiles_;
  NLH_TRACE_INSTANT("dist/plan_compile",
                    static_cast<std::uint64_t>(plan_.total_messages));
  recv_slots_.assign(static_cast<std::size_t>(plan_.total_messages),
                     amt::future<net::byte_buffer>{});
  ghost_ready_.assign(static_cast<std::size_t>(plan_.total_messages),
                      amt::future<void>{});
  plan_dirty_ = false;
}

const step_plan& dist_solver::plan() {
  ensure_plan();
  return plan_;
}

void dist_solver::set_initial_condition() {
  const int s = tiling_.sd_size();
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    auto& blk = *blocks_[static_cast<std::size_t>(sd)];
    for (int i = 0; i < s; ++i)
      for (int j = 0; j < s; ++j)
        blk.u()[blk.flat(i, j)] = scenario_->initial(
            grid_.x(blk.origin_col() + j), grid_.y(blk.origin_row() + i));
  }
}

void dist_solver::compute_rect(int sd, const nonlocal::dp_rect& rect, double t_now) {
  if (rect.empty()) return;
  auto& blk = *blocks_[static_cast<std::size_t>(sd)];
  auto& lu = lu_[static_cast<std::size_t>(sd)];

  // The per-SD blocks and the scenario's source term share this solver's
  // compiled plan, dispatching to its pinned backend (or the process
  // default when dist_config::backend was unset).
  const auto kt0 = std::chrono::steady_clock::now();
  nonlocal::apply_nonlocal_operator_raw(blk.u().data(), lu.data(), blk.stride(),
                                        blk.ghost(), kernel_plan_, c_, rect);
  const auto kt1 = std::chrono::steady_clock::now();
  kernel_applies_.fetch_add(1, std::memory_order_relaxed);
  kernel_blocks_.fetch_add(
      static_cast<std::uint64_t>(nonlocal::count_blocks(
          kernel_plan_.blocking(), rect.row_begin, rect.row_end, rect.col_begin,
          rect.col_end)),
      std::memory_order_relaxed);
  kernel_dps_.fetch_add(static_cast<std::uint64_t>(rect.row_end - rect.row_begin) *
                            static_cast<std::uint64_t>(rect.col_end - rect.col_begin),
                        std::memory_order_relaxed);
  // C++17 atomic<double> has no fetch_add; CAS loop (contention is a few
  // tasks per step, so this never spins long).
  const double dsec = std::chrono::duration<double>(kt1 - kt0).count();
  double cur = kernel_seconds_.load(std::memory_order_relaxed);
  while (!kernel_seconds_.compare_exchange_weak(cur, cur + dsec,
                                                std::memory_order_relaxed)) {
  }

  // The scenario source over the matching global rectangle. Rects of
  // concurrent tasks are disjoint, so the shared scratch is race-free.
  const nonlocal::dp_rect grect{rect.row_begin + blk.origin_row(),
                                rect.row_end + blk.origin_row(),
                                rect.col_begin + blk.origin_col(),
                                rect.col_end + blk.origin_col()};
  scenario_->source_into(context(), t_now, w_field_, grect, b_field_);

  for (int i = rect.row_begin; i < rect.row_end; ++i)
    for (int j = rect.col_begin; j < rect.col_end; ++j) {
      const auto idx = blk.flat(i, j);
      const auto gidx = grid_.flat(blk.origin_row() + i, blk.origin_col() + j);
      blk.u_next()[idx] = blk.u()[idx] + dt_ * (lu[idx] + b_field_[gidx]);
    }
}

void dist_solver::step() {
  NLH_TRACE_SPAN_ARG("dist/step", static_cast<std::uint64_t>(step_));
  ensure_plan();
  const double t_now = step_ * dt_;
  const overlap_schedule sched = schedule();

  ghosts_inflight_.store(plan_.total_messages, std::memory_order_release);
  stat_messages_.fetch_add(static_cast<std::uint64_t>(plan_.total_messages),
                           std::memory_order_relaxed);
  pending_.clear();
  aux_pending_.clear();

  // 1. Futurized receives from the cached message table (parking a promise
  // in the destination mailbox — no task is spent). Under the
  // per-direction schedule each arrival immediately gets its unpack
  // continuation, hopped onto the owner's pool, so the collar side fills
  // the moment its message lands; the other schedules keep the raw payload
  // future and drain later.
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const int dst = own_.owner(sd);
    for (const auto& rv : plan_.sds[static_cast<std::size_t>(sd)].recvs) {
      auto fut = comm_.recv(dst, rv.src_locality, ghost_tag(step_, rv.tag_base));
      if (sched == overlap_schedule::per_direction) {
        ghost_ready_[static_cast<std::size_t>(rv.slot)] = amt::dataflow_one(
            *pools_[static_cast<std::size_t>(dst)], std::move(fut),
            [this, sd, dir = rv.dir](amt::future<net::byte_buffer> ready) {
              unpack_ghost(sd, dir, ready.get());
            });
      } else {
        recv_slots_[static_cast<std::size_t>(rv.slot)] = std::move(fut);
      }
    }
  }

  // 2. Boundary-first posting: every pack/send task is enqueued before any
  // aux-field or compute work, so ghost messages leave each locality's
  // pool as early as possible.
  for (const auto& snd : plan_.sends) {
    const auto tag = ghost_tag(step_, snd.tag_base);
    pending_.push_back(amt::async(
        *pools_[static_cast<std::size_t>(snd.src_locality)],
        [this, sender_sd = snd.sender_sd, pack_dir = snd.pack_dir,
         src = snd.src_locality, dst = snd.dst_locality, tag] {
          NLH_TRACE_SPAN_ARG("dist/pack_send", static_cast<std::uint64_t>(sender_sd));
          auto& strip = pack_scratch_[static_cast<std::size_t>(sender_sd)]
                                     [static_cast<std::size_t>(pack_dir)];
          blocks_[static_cast<std::size_t>(sender_sd)]->pack_into(tiling_, pack_dir,
                                                                  strip);
          net::archive_writer w(acquire_buffer());
          w.write(strip);
          auto buf = w.take();
          ghost_bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
          ghost_msg_bytes_hist_.record(static_cast<double>(buf.size()));
          comm_.send(src, dst, tag, std::move(buf));
        }));
  }

  // 3. The scenario's auxiliary field on the global grid (manufactured:
  // the analytic w(t_k), so no communication is needed); each locality
  // evaluates its own SDs' rectangles (disjoint writes), boundary SDs
  // first. Everything must land before compute tasks read across SD
  // boundaries, so these futures are awaited below.
  for (const int sd : plan_.post_order) {
    aux_pending_.push_back(amt::async(
        *pools_[static_cast<std::size_t>(own_.owner(sd))], [this, sd, t_now] {
          NLH_TRACE_SPAN_ARG("dist/aux", static_cast<std::uint64_t>(sd));
          const auto& blk = *blocks_[static_cast<std::size_t>(sd)];
          const nonlocal::dp_rect grect{
              blk.origin_row(), blk.origin_row() + tiling_.sd_size(),
              blk.origin_col(), blk.origin_col() + tiling_.sd_size()};
          scenario_->fill_aux(context(), t_now, grect, w_field_);
        }));
  }

  // 4. Same-locality collar fills: direct copies, no serialization. These
  // write disjoint collar rectangles, so they may overlap with arriving
  // unpacks of *other* directions.
  for (int sd = 0; sd < tiling_.num_sds(); ++sd)
    for (const auto& [d, nb] : plan_.sds[static_cast<std::size_t>(sd)].local_fills)
      blocks_[static_cast<std::size_t>(sd)]->fill_from_local(
          tiling_, d, *blocks_[static_cast<std::size_t>(nb)]);

  // The source evaluation inside compute_rect reads w up to `ghost` cells
  // beyond its own SD: every w rectangle must be in place first.
  for (auto& f : aux_pending_) f.wait();

  if (sched == overlap_schedule::bulk_sync) {
    // Bulk-synchronous baseline: drain every ghost before any compute.
    // This stall is communication wait just like the end-of-step drain, so
    // it counts toward the same observable.
    support::stopwatch drain_sw;
    {
      NLH_TRACE_SPAN("dist/drain");
      for (int sd = 0; sd < tiling_.num_sds(); ++sd)
        for (const auto& rv : plan_.sds[static_cast<std::size_t>(sd)].recvs)
          unpack_ghost(sd, rv.dir,
                       recv_slots_[static_cast<std::size_t>(rv.slot)].get());
    }
    const double drained_s = drain_sw.elapsed_s();
    drain_wait_hist_.record(drained_s);
    // Single writer (the serialized stepping thread): load+store suffices.
    wait_seconds_.store(wait_seconds_.load(std::memory_order_relaxed) + drained_s,
                        std::memory_order_relaxed);
  }

  for (const int sd : plan_.post_order) {
    auto& pool = *pools_[static_cast<std::size_t>(own_.owner(sd))];
    const auto& sd_plan = plan_.sds[static_cast<std::size_t>(sd)];

    // Case 2: needs no foreign data — runs while messages are in flight.
    pending_.push_back(amt::async(pool, [this, sd, rect = sd_plan.split.interior,
                                         t_now] {
      NLH_TRACE_SPAN_ARG("dist/interior", static_cast<std::uint64_t>(sd));
      compute_rect_counted(sd, rect, t_now, stat_interior_early_);
    }));

    switch (sched) {
      case overlap_schedule::bulk_sync: {
        if (sd_plan.split.remote_strips.empty()) break;
        pending_.push_back(
            amt::async(pool, [this, sd, &strips = sd_plan.split.remote_strips, t_now] {
              NLH_TRACE_SPAN_ARG("dist/strip", static_cast<std::uint64_t>(sd));
              for (const auto& rect : strips)
                compute_rect_counted(sd, rect, t_now, stat_strips_early_);
            }));
        break;
      }
      case overlap_schedule::coarse: {
        // Case 1, PR-1 style: all of this SD's strips gate on the arrival
        // of all of its ghosts (amt::dataflow hops onto the owner's pool).
        if (sd_plan.recvs.empty()) break;
        std::vector<amt::future<net::byte_buffer>> futs;
        std::vector<direction> dirs;
        futs.reserve(sd_plan.recvs.size());
        dirs.reserve(sd_plan.recvs.size());
        for (const auto& rv : sd_plan.recvs) {
          futs.push_back(std::move(recv_slots_[static_cast<std::size_t>(rv.slot)]));
          dirs.push_back(rv.dir);
        }
        pending_.push_back(amt::dataflow(
            pool, std::move(futs),
            [this, sd, dirs = std::move(dirs), &strips = sd_plan.split.remote_strips,
             t_now](std::vector<amt::future<net::byte_buffer>> ready) {
              NLH_TRACE_SPAN_ARG("dist/strip", static_cast<std::uint64_t>(sd));
              for (std::size_t i = 0; i < ready.size(); ++i)
                unpack_ghost(sd, dirs[i], ready[i].get());
              for (const auto& rect : strips)
                compute_rect_counted(sd, rect, t_now, stat_strips_early_);
            }));
        break;
      }
      case overlap_schedule::per_direction: {
        // Ready strips read no cross-locality collar: they run with the
        // interior instead of waiting on any message.
        for (const auto& rect : sd_plan.ready_strips)
          pending_.push_back(amt::async(pool, [this, sd, rect, t_now] {
            NLH_TRACE_SPAN_ARG("dist/strip", static_cast<std::uint64_t>(sd));
            compute_rect_counted(sd, rect, t_now, stat_strips_early_);
          }));
        // Case 1, per direction: each strip chains on exactly the unpack
        // completions its halo reads — one `.then` for side strips, a
        // small-N readiness gate for corners. The continuation runs inline
        // on the worker that finished the last needed unpack (already on
        // the owner's pool), so no extra task hop is paid.
        for (const auto& strip : sd_plan.strips) {
          auto compute = [this, sd, rect = strip.rect, t_now](amt::future<void>) {
            NLH_TRACE_SPAN_ARG("dist/strip", static_cast<std::uint64_t>(sd));
            compute_rect_counted(sd, rect, t_now, stat_strips_early_);
          };
          if (strip.dep_slots.size() == 1) {
            auto dep = ghost_ready_[static_cast<std::size_t>(strip.dep_slots[0])];
            pending_.push_back(dep.then(std::move(compute)));
          } else {
            std::array<amt::future<void>, num_directions> deps;
            for (std::size_t i = 0; i < strip.dep_slots.size(); ++i)
              deps[i] = ghost_ready_[static_cast<std::size_t>(strip.dep_slots[i])];
            auto gate = amt::when_all_ready(deps.data(), strip.dep_slots.size());
            pending_.push_back(gate.then(std::move(compute)));
          }
        }
        // The unpacks themselves must complete before the field swap even
        // when (in degenerate geometries) no waited strip reads them.
        for (const auto& rv : sd_plan.recvs)
          pending_.push_back(ghost_ready_[static_cast<std::size_t>(rv.slot)]);
        break;
      }
    }
  }

  // 5. End-of-step drain. The stall measured here is the per-step
  // overlap/wait observable exposed through stats() and the api metrics.
  support::stopwatch sw;
  {
    NLH_TRACE_SPAN("dist/drain");
    for (auto& f : pending_) f.wait();
  }
  const double drained_s = sw.elapsed_s();
  drain_wait_hist_.record(drained_s);
  wait_seconds_.store(wait_seconds_.load(std::memory_order_relaxed) + drained_s,
                      std::memory_order_relaxed);

  for (auto& blk : blocks_) blk->swap_fields();
  ++step_;

  // 6. The live Algorithm 1 loop (docs/balance.md): with the step fully
  // drained and the fields swapped, ownership can change safely — any
  // migrations it performs dirty the plan, which recompiles at the top of
  // the next step.
  if (rebalancer_) rebalancer_->on_step(*this);
}

void dist_solver::compute_rect_counted(int sd, const nonlocal::dp_rect& rect,
                                       double t_now,
                                       std::atomic<std::uint64_t>& early_counter) {
  if (rect.empty()) return;
  compute_rect(sd, rect, t_now);
  if (ghosts_inflight_.load(std::memory_order_acquire) > 0)
    early_counter.fetch_add(1, std::memory_order_relaxed);
}

void dist_solver::run(int steps) {
  for (int k = 0; k < steps; ++k) step();
}

std::vector<double> dist_solver::gather() const {
  auto field = grid_.make_field();
  const int s = tiling_.sd_size();
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const auto& blk = *blocks_[static_cast<std::size_t>(sd)];
    for (int i = 0; i < s; ++i)
      for (int j = 0; j < s; ++j)
        field[grid_.flat(blk.origin_row() + i, blk.origin_col() + j)] =
            blk.u()[blk.flat(i, j)];
  }
  return field;
}

double dist_solver::busy_fraction(int locality) const {
  NLH_ASSERT(locality >= 0 && locality < own_.num_nodes());
  return pools_[static_cast<std::size_t>(locality)]->busy_fraction();
}

double dist_solver::busy_seconds(int locality) const {
  NLH_ASSERT(locality >= 0 && locality < own_.num_nodes());
  return pools_[static_cast<std::size_t>(locality)]->busy_time_s();
}

void dist_solver::reset_busy_counters() {
  for (auto& pool : pools_) pool->reset_busy_time();
}

void dist_solver::migrate_sd(int sd, int to_node) {
  NLH_ASSERT(sd >= 0 && sd < tiling_.num_sds());
  NLH_ASSERT(to_node >= 0 && to_node < own_.num_nodes());
  const int from = own_.owner(sd);
  if (from == to_node) return;

  // New epoch => new tag: a second migration of this SD can never match a
  // message still in flight from an earlier one.
  ++migration_epoch_[static_cast<std::size_t>(sd)];

  auto& blk = *blocks_[static_cast<std::size_t>(sd)];
  net::archive_writer w;
  w.write(blk.interior());
  comm_.send(from, to_node, migration_tag(sd), w.take());

  const auto buf = comm_.recv(to_node, from, migration_tag(sd)).get();
  net::archive_reader r(buf);
  blk.set_interior(r.read_vector<double>());

  own_.set_owner(sd, to_node);
  plan_dirty_ = true;  // the schedule depends on the ownership map
}

namespace {

/// Snapshot header magic ("NLK1"): rejects the PR-7-era raw format and
/// arbitrary byte garbage before any frame decoding starts.
constexpr std::uint32_t kCkptMagic = 0x4e4c4b31;

}  // namespace

net::byte_buffer dist_solver::checkpoint() {
  return encode_checkpoint(cfg_.checkpoint.incremental);
}

net::byte_buffer dist_solver::checkpoint_full() { return encode_checkpoint(false); }

net::byte_buffer dist_solver::encode_checkpoint(bool incremental) {
  NLH_TRACE_SPAN("dist/checkpoint");
  const ckpt::codec* codec = ckpt::find_codec(cfg_.checkpoint.codec);
  NLH_ASSERT_MSG(codec != nullptr, "dist_solver: unknown checkpoint codec");

  // A delta blob needs a baseline to diff against; the first incremental
  // checkpoint (and any checkpoint when incremental is off) is full.
  const bool delta_kind = incremental && ckpt_baseline_.has_value();
  const std::uint64_t seq = ckpt_seq_++;

  net::archive_writer w;
  w.write(kCkptMagic);
  w.write(static_cast<std::uint8_t>(delta_kind ? 'I' : 'F'));
  w.write(codec->name());
  w.write(seq);
  if (delta_kind) w.write(ckpt_baseline_->seq);
  w.write(static_cast<std::int64_t>(step_));
  w.write(own_.raw());

  ckpt_baseline next_baseline;
  if (incremental && !delta_kind) {
    next_baseline.seq = seq;
    next_baseline.interiors.resize(static_cast<std::size_t>(tiling_.num_sds()));
    next_baseline.epochs = migration_epoch_;
  }

  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const auto i = static_cast<std::size_t>(sd);
    std::vector<double> vals = blocks_[i]->interior();
    // Per-SD fallback: an SD that migrated since the baseline was anchored
    // gets a full frame (real deployments lose the baseline copy with the
    // move); everything else diffs against the anchor.
    const bool delta_frame =
        delta_kind && migration_epoch_[i] == ckpt_baseline_->epochs[i];
    w.write(static_cast<std::uint8_t>(delta_frame ? 'D' : 'F'));
    w.write(migration_epoch_[i]);
    const auto st = codec->encode(
        vals.data(), vals.size(),
        delta_frame ? ckpt_baseline_->interiors[i].data() : nullptr, w);
    ckpt_bytes_raw_ += st.raw_bytes;
    ckpt_bytes_encoded_ += st.encoded_bytes;
    (delta_frame ? ckpt_frames_delta_ : ckpt_frames_full_) += 1;
    if (incremental && !delta_kind) next_baseline.interiors[i] = std::move(vals);
  }
  ++ckpt_checkpoints_;

  if (incremental && !delta_kind) ckpt_baseline_ = std::move(next_baseline);
  return w.take();
}

void dist_solver::restore(const net::byte_buffer& state) {
  NLH_TRACE_SPAN("dist/restore");
  net::archive_reader r(state);
  NLH_ASSERT_MSG(r.read<std::uint32_t>() == kCkptMagic,
                 "dist_solver::restore: not a checkpoint blob");
  const auto kind = r.read<std::uint8_t>();
  NLH_ASSERT_MSG(kind == 'F' || kind == 'I',
                 "dist_solver::restore: unknown snapshot kind");
  const ckpt::codec* codec = ckpt::find_codec(r.read_string());
  NLH_ASSERT_MSG(codec != nullptr, "dist_solver::restore: unknown codec in blob");
  const auto seq = r.read<std::uint64_t>();
  if (kind == 'I') {
    const auto base_seq = r.read<std::uint64_t>();
    NLH_ASSERT_MSG(ckpt_baseline_.has_value() && ckpt_baseline_->seq == base_seq,
                   "dist_solver::restore: delta snapshot without its baseline");
  }
  step_ = static_cast<int>(r.read<std::int64_t>());
  const auto owners = r.read_vector<int>();
  NLH_ASSERT_MSG(owners.size() == static_cast<std::size_t>(tiling_.num_sds()),
                 "dist_solver::restore: SD count mismatch");
  for (int sd = 0; sd < tiling_.num_sds(); ++sd)
    own_.set_owner(sd, owners[static_cast<std::size_t>(sd)]);

  const auto n_interior =
      static_cast<std::size_t>(tiling_.sd_size()) * tiling_.sd_size();
  std::vector<double> vals(n_interior);
  ckpt_baseline next_baseline;
  if (kind == 'F') {
    next_baseline.seq = seq;
    next_baseline.interiors.resize(static_cast<std::size_t>(tiling_.num_sds()));
    next_baseline.epochs = migration_epoch_;
  }
  for (int sd = 0; sd < tiling_.num_sds(); ++sd) {
    const auto i = static_cast<std::size_t>(sd);
    const auto frame_kind = r.read<std::uint8_t>();
    NLH_ASSERT_MSG(frame_kind == 'F' || frame_kind == 'D',
                   "dist_solver::restore: unknown frame kind");
    r.read<std::uint64_t>();  // encode-time migration epoch, informational
    const double* prev = nullptr;
    if (frame_kind == 'D') {
      NLH_ASSERT_MSG(ckpt_baseline_.has_value(),
                     "dist_solver::restore: delta frame without a baseline");
      prev = ckpt_baseline_->interiors[i].data();
    }
    codec->decode(r, vals.data(), vals.size(), prev);
    auto& blk = *blocks_[i];
    std::fill(blk.u().begin(), blk.u().end(), 0.0);
    std::fill(blk.u_next().begin(), blk.u_next().end(), 0.0);
    blk.set_interior(vals);
    if (kind == 'F') next_baseline.interiors[i] = vals;
  }
  NLH_ASSERT_MSG(r.exhausted(), "dist_solver::restore: trailing bytes in snapshot");
  // Restoring a full snapshot re-anchors the incremental chain on it, the
  // way taking one does; restoring a delta leaves the baseline standing so
  // its siblings stay restorable.
  if (kind == 'F') ckpt_baseline_ = std::move(next_baseline);
  if (ckpt_seq_ <= seq) ckpt_seq_ = seq + 1;
  plan_dirty_ = true;  // the snapshot may carry a different ownership map
}

}  // namespace nlh::dist

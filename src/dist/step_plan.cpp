///
/// \file step_plan.cpp
/// \brief step_plan compilation: case splits, message tables and the
/// per-direction strip dependency graph, resolved once per (tiling,
/// ownership) pair.
///

#include "dist/step_plan.hpp"

#include <utility>

namespace nlh::dist {

step_plan compile_step_plan(const tiling& t, const ownership_map& own) {
  NLH_ASSERT(own.num_sds() == t.num_sds());

  step_plan plan;
  plan.tag_stride =
      static_cast<std::uint64_t>(t.num_sds()) * static_cast<std::uint64_t>(num_directions);
  plan.sds.resize(static_cast<std::size_t>(t.num_sds()));

  int slot = 0;
  for (int sd = 0; sd < t.num_sds(); ++sd) {
    auto& sched = plan.sds[static_cast<std::size_t>(sd)];
    const int dst = own.owner(sd);

    // Receiver-major message enumeration in direction-enum order — the
    // historical tag assignment, so serialized traffic stays bit-identical.
    for (const auto& [d, nb] : t.neighbors(sd)) {
      if (own.owner(nb) == dst) {
        sched.local_fills.emplace_back(d, nb);
        continue;
      }
      sched.boundary = true;
      plan_recv rv;
      rv.dir = d;
      rv.src_locality = own.owner(nb);
      rv.tag_base = static_cast<std::uint64_t>(sd) * num_directions +
                    static_cast<std::uint64_t>(d);
      rv.slot = slot++;
      plan.sends.push_back(
          {nb, opposite(d), rv.src_locality, dst, rv.tag_base});
      sched.recvs.push_back(rv);
    }

    sched.split = compute_case_split(t, sd, own.raw());

    // Refine the case-1 margins into per-direction strips and resolve each
    // strip's direction set to the message slots posted above.
    long long fine_area = 0;
    for (auto& fine : compute_fine_strips(t, sd, own.raw())) {
      fine_area += fine.rect.area();
      if (fine.deps.empty()) {
        sched.ready_strips.push_back(fine.rect);
        continue;
      }
      plan_strip strip;
      strip.rect = fine.rect;
      strip.dep_slots.reserve(fine.deps.size());
      for (const direction d : fine.deps)
        for (const auto& rv : sched.recvs)
          if (rv.dir == d) strip.dep_slots.push_back(rv.slot);
      NLH_ASSERT_MSG(strip.dep_slots.size() == fine.deps.size(),
                     "step_plan: a strip depends on a direction with no "
                     "posted receive");
      sched.strips.push_back(std::move(strip));
    }
    NLH_ASSERT_MSG(fine_area == sched.split.strip_dps(),
                   "step_plan: fine strips must tile the coarse case-1 region");
  }
  plan.total_messages = slot;
  for (const auto& sched : plan.sds) {
    plan.total_strips += static_cast<int>(sched.strips.size());
    plan.total_ready_strips += static_cast<int>(sched.ready_strips.size());
    plan.total_local_fills += static_cast<int>(sched.local_fills.size());
    if (sched.boundary) ++plan.boundary_sds;
  }

  plan.post_order.reserve(static_cast<std::size_t>(t.num_sds()));
  for (int sd = 0; sd < t.num_sds(); ++sd)
    if (plan.sds[static_cast<std::size_t>(sd)].boundary) plan.post_order.push_back(sd);
  for (int sd = 0; sd < t.num_sds(); ++sd)
    if (!plan.sds[static_cast<std::size_t>(sd)].boundary) plan.post_order.push_back(sd);

  return plan;
}

}  // namespace nlh::dist

#pragma once
///
/// \file crack.hpp
/// \brief Peridynamics-motivated crack workload (paper §7).
///
/// In nonlocal fracture models, DPs on opposite sides of a crack line stop
/// interacting, so SDs crossed by the crack carry less work. This module
/// turns a (possibly growing) crack segment in [0,1]^2 into per-SD work
/// multipliers consumed by the simulator's cost model — exercising exactly
/// the load-imbalance source the paper's balancer targets.
///

#include <vector>

#include "dist/tiling.hpp"

namespace nlh::model {

/// Line segment in domain coordinates ([0,1]^2).
struct crack_line {
  double x0 = 0.0, y0 = 0.0;
  double x1 = 0.0, y1 = 0.0;
};

/// True when the segment intersects the axis-aligned rectangle
/// [rx0, rx1] x [ry0, ry1] (endpoint containment counts).
bool segment_intersects_rect(const crack_line& c, double rx0, double ry0, double rx1,
                             double ry1);

/// Per-SD work multipliers: SDs crossed by the crack get
/// 1 - work_reduction, everyone else 1. work_reduction in [0, 1).
std::vector<double> crack_work_scale(const dist::tiling& t, const crack_line& c,
                                     double work_reduction);

/// A crack growing linearly from `start` towards `full` over [0, t_grown];
/// at time t the active segment is the proportional prefix.
crack_line crack_at_time(const crack_line& full, double t, double t_grown);

}  // namespace nlh::model

#include "model/crack.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace nlh::model {

namespace {

/// Liang-Barsky style clip test: does the parametric segment enter the box?
bool clip_test(double p, double q, double& t0, double& t1) {
  if (p == 0.0) return q >= 0.0;  // parallel: inside iff q >= 0
  const double r = q / p;
  if (p < 0.0) {
    if (r > t1) return false;
    if (r > t0) t0 = r;
  } else {
    if (r < t0) return false;
    if (r < t1) t1 = r;
  }
  return true;
}

}  // namespace

bool segment_intersects_rect(const crack_line& c, double rx0, double ry0, double rx1,
                             double ry1) {
  NLH_ASSERT(rx0 <= rx1 && ry0 <= ry1);
  const double dx = c.x1 - c.x0;
  const double dy = c.y1 - c.y0;
  double t0 = 0.0, t1 = 1.0;
  if (!clip_test(-dx, c.x0 - rx0, t0, t1)) return false;
  if (!clip_test(dx, rx1 - c.x0, t0, t1)) return false;
  if (!clip_test(-dy, c.y0 - ry0, t0, t1)) return false;
  if (!clip_test(dy, ry1 - c.y0, t0, t1)) return false;
  return t0 <= t1;
}

std::vector<double> crack_work_scale(const dist::tiling& t, const crack_line& c,
                                     double work_reduction) {
  NLH_ASSERT(work_reduction >= 0.0 && work_reduction < 1.0);
  // SD physical extent: the domain is [0,1]^2 tiled uniformly by the SD grid.
  const double sd_w = 1.0 / t.sd_cols();
  const double sd_h = 1.0 / t.sd_rows();
  std::vector<double> scale(static_cast<std::size_t>(t.num_sds()), 1.0);
  for (int sd = 0; sd < t.num_sds(); ++sd) {
    const double x0 = t.sd_col(sd) * sd_w;
    const double y0 = t.sd_row(sd) * sd_h;
    if (segment_intersects_rect(c, x0, y0, x0 + sd_w, y0 + sd_h))
      scale[static_cast<std::size_t>(sd)] = 1.0 - work_reduction;
  }
  return scale;
}

crack_line crack_at_time(const crack_line& full, double t, double t_grown) {
  NLH_ASSERT(t_grown > 0.0);
  const double f = std::clamp(t / t_grown, 0.0, 1.0);
  crack_line c;
  c.x0 = full.x0;
  c.y0 = full.y0;
  c.x1 = full.x0 + f * (full.x1 - full.x0);
  c.y1 = full.y0 + f * (full.y1 - full.y0);
  return c;
}

}  // namespace nlh::model

#include "model/capacity.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace nlh::model {

std::vector<sim::capacity_trace> uniform_cluster(int nodes, double speed) {
  NLH_ASSERT(nodes >= 1 && speed > 0.0);
  return std::vector<sim::capacity_trace>(static_cast<std::size_t>(nodes),
                                          sim::capacity_trace::constant(speed));
}

std::vector<sim::capacity_trace> heterogeneous_cluster(const std::vector<double>& speeds) {
  std::vector<sim::capacity_trace> out;
  out.reserve(speeds.size());
  for (double s : speeds) {
    NLH_ASSERT(s > 0.0);
    out.push_back(sim::capacity_trace::constant(s));
  }
  return out;
}

std::vector<sim::capacity_trace> step_interference(int nodes, double speed, int victim,
                                                   double interference_factor,
                                                   double t_start, double t_end) {
  NLH_ASSERT(victim >= 0 && victim < nodes);
  NLH_ASSERT(t_start > 0.0 && t_end > t_start);
  NLH_ASSERT(interference_factor > 0.0);
  auto out = uniform_cluster(nodes, speed);
  sim::capacity_trace t;
  t.add_segment(0.0, speed);
  t.add_segment(t_start, speed * interference_factor);
  t.add_segment(t_end, speed);
  out[static_cast<std::size_t>(victim)] = std::move(t);
  return out;
}

std::vector<sim::capacity_trace> ramp_degradation(int nodes, double speed, int victim,
                                                  double end_factor, double t_end,
                                                  int segments) {
  NLH_ASSERT(victim >= 0 && victim < nodes);
  NLH_ASSERT(segments >= 1 && t_end > 0.0);
  auto out = uniform_cluster(nodes, speed);
  sim::capacity_trace t;
  for (int s = 0; s < segments; ++s) {
    const double frac = static_cast<double>(s) / segments;
    t.add_segment(frac * t_end, speed * (1.0 + frac * (end_factor - 1.0)));
  }
  t.add_segment(t_end, speed * end_factor);
  out[static_cast<std::size_t>(victim)] = std::move(t);
  return out;
}

std::vector<sim::capacity_trace> random_walk_cluster(int nodes, double speed,
                                                     double lo_factor, double hi_factor,
                                                     double interval, int num_segments,
                                                     unsigned seed) {
  NLH_ASSERT(nodes >= 1 && speed > 0.0);
  NLH_ASSERT(lo_factor > 0.0 && hi_factor >= lo_factor);
  NLH_ASSERT(interval > 0.0 && num_segments >= 1);
  support::rng gen(seed);
  std::vector<sim::capacity_trace> out;
  out.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    sim::capacity_trace t;
    double factor = 1.0;
    t.add_segment(0.0, speed);
    for (int s = 1; s < num_segments; ++s) {
      factor = std::clamp(factor * gen.uniform(0.85, 1.18), lo_factor, hi_factor);
      t.add_segment(s * interval, speed * factor);
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace nlh::model

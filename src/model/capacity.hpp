#pragma once
///
/// \file capacity.hpp
/// \brief Builders for node capacity scenarios: static heterogeneity,
/// step interference (another job lands on a node), ramps and random walks.
///

#include <vector>

#include "sim/capacity_trace.hpp"

namespace nlh::model {

/// All nodes the same constant speed.
std::vector<sim::capacity_trace> uniform_cluster(int nodes, double speed);

/// Per-node constant speeds (e.g. {1, 2, 3, 4} for a 1:2:3:4 cluster).
std::vector<sim::capacity_trace> heterogeneous_cluster(const std::vector<double>& speeds);

/// All nodes at `speed`; `victim` drops to speed*interference_factor at
/// t_start and recovers at t_end (an external job borrowing the node).
std::vector<sim::capacity_trace> step_interference(int nodes, double speed, int victim,
                                                   double interference_factor,
                                                   double t_start, double t_end);

/// Node `victim` degrades linearly (piecewise, `segments` pieces) from
/// `speed` to `speed * end_factor` over [0, t_end]; others constant.
std::vector<sim::capacity_trace> ramp_degradation(int nodes, double speed, int victim,
                                                  double end_factor, double t_end,
                                                  int segments);

/// Every node performs an independent bounded random walk around `speed`
/// (new segment every `interval` virtual seconds, `num_segments` segments,
/// multiplicative steps within [lo_factor, hi_factor]); deterministic in
/// `seed`.
std::vector<sim::capacity_trace> random_walk_cluster(int nodes, double speed,
                                                     double lo_factor, double hi_factor,
                                                     double interval, int num_segments,
                                                     unsigned seed);

}  // namespace nlh::model

///
/// \file metrics.cpp
/// \brief Histogram bucketing/quantiles, the instrument registry and the
/// amt::counter_registry bridge.
///

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "amt/counters.hpp"
#include "support/assert.hpp"

namespace nlh::obs {

histogram::histogram(histogram_options opt) : opt_(opt) {
  NLH_ASSERT_MSG(opt_.min_value > 0.0 && opt_.max_value > opt_.min_value,
                 "histogram: bounds must satisfy 0 < min < max");
  NLH_ASSERT_MSG(opt_.buckets_per_decade >= 1,
                 "histogram: need at least 1 bucket per decade");
  log_min_ = std::log(opt_.min_value);
  // b buckets per decade => bucket width ln(10)/b in log space.
  inv_log_step_ = static_cast<double>(opt_.buckets_per_decade) / std::log(10.0);
  const auto decades = std::log(opt_.max_value / opt_.min_value) / std::log(10.0);
  const auto regular = static_cast<std::size_t>(
      std::ceil(decades * opt_.buckets_per_decade - 1e-9));
  buckets_.assign(regular + 2, 0);  // + underflow + overflow
}

void histogram::record(double value) {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t idx;
  if (!(value >= opt_.min_value)) {  // also catches NaN -> underflow
    idx = 0;
  } else if (value >= opt_.max_value) {
    idx = buckets_.size() - 1;
  } else {
    idx = 1 + static_cast<std::size_t>((std::log(value) - log_min_) * inv_log_step_);
    idx = std::min(idx, buckets_.size() - 2);  // guard fp edge at max_value
  }
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil: the sample such that a fraction
  // q of the population is at or below it).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets_[i];
    if (cum < rank) continue;
    // The quantile falls in bucket i: geometric interpolation between its
    // bounds by the within-bucket rank fraction, clamped to observed range.
    double lo, hi;
    if (i == 0) {
      lo = min_;
      hi = opt_.min_value;
    } else if (i == buckets_.size() - 1) {
      lo = opt_.max_value;
      hi = max_;
    } else {
      lo = std::exp(log_min_ + static_cast<double>(i - 1) / inv_log_step_);
      hi = std::exp(log_min_ + static_cast<double>(i) / inv_log_step_);
    }
    lo = std::clamp(lo, min_, max_);
    hi = std::clamp(hi, min_, max_);
    if (!(lo > 0.0) || !(hi > 0.0) || hi <= lo)
      return std::clamp(hi, min_, max_);
    const double frac = static_cast<double>(rank - prev) /
                        static_cast<double>(buckets_[i]);
    return lo * std::exp(frac * std::log(hi / lo));
  }
  return max_;
}

double histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lk(m_);
  return quantile_locked(q);
}

histogram_summary histogram::summary() const {
  std::lock_guard<std::mutex> lk(m_);
  histogram_summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  s.p50 = quantile_locked(0.50);
  s.p90 = quantile_locked(0.90);
  s.p99 = quantile_locked(0.99);
  return s;
}

void histogram::reset() {
  std::lock_guard<std::mutex> lk(m_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void metrics_snapshot::merge(const metrics_snapshot& other,
                             const std::string& prefix) {
  for (const auto& [n, v] : other.counters) counters.emplace_back(prefix + n, v);
  for (const auto& [n, v] : other.gauges) gauges.emplace_back(prefix + n, v);
  for (const auto& [n, v] : other.histograms) histograms.emplace_back(prefix + n, v);
}

counter& metrics_registry::get_counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<counter>();
  return *slot;
}

gauge& metrics_registry::get_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<gauge>();
  return *slot;
}

histogram& metrics_registry::get_histogram(const std::string& name,
                                           histogram_options opt) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<histogram>(opt);
  return *slot;
}

metrics_snapshot metrics_registry::snapshot() const {
  metrics_snapshot s;
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, c] : counters_) s.add_counter(name, c->value());
  for (const auto& [name, g] : gauges_) s.add_gauge(name, g->value());
  for (const auto& [name, h] : histograms_) s.add_histogram(name, h->summary());
  return s;
}

metrics_registry& metrics_registry::global() {
  static metrics_registry reg;
  return reg;
}

void bridge_counter_registry(metrics_snapshot& into, const std::string& substring) {
  auto& reg = amt::counter_registry::instance();
  for (const auto& path : reg.paths_matching(substring)) {
    // try_value: a counter unregistered between the enumeration and the
    // poll (e.g. a pool torn down during migration) is skipped, not fatal.
    if (const auto v = reg.try_value(path)) into.add_gauge(path, *v);
  }
}

}  // namespace nlh::obs

///
/// \file metrics_export.cpp
/// \brief Metrics snapshot JSON writers.
///

#include "obs/metrics_export.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace nlh::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_key(std::string& out, const std::string& name) {
  out += '"';
  append_escaped(out, name);
  out += "\": ";
}

}  // namespace

std::string metrics_json(const metrics_snapshot& snap) {
  std::string out;
  out += "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    append_key(out, snap.counters[i].first);
    out += std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    append_key(out, snap.gauges[i].first);
    append_double(out, snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, s] = snap.histograms[i];
    out += i ? ",\n    " : "\n    ";
    append_key(out, name);
    out += "{\"count\": " + std::to_string(s.count) + ", \"sum\": ";
    append_double(out, s.sum);
    out += ", \"min\": ";
    append_double(out, s.min);
    out += ", \"max\": ";
    append_double(out, s.max);
    out += ", \"mean\": ";
    append_double(out, s.mean);
    out += ", \"p50\": ";
    append_double(out, s.p50);
    out += ", \"p90\": ";
    append_double(out, s.p90);
    out += ", \"p99\": ";
    append_double(out, s.p99);
    out += "}";
  }
  out += snap.histograms.empty() ? "}\n}" : "\n  }\n}";
  return out;
}

std::string metrics_series_json(const std::vector<timed_snapshot>& series) {
  std::string out = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += "{\"t_seconds\": ";
    append_double(out, series[i].t_seconds);
    out += ", \"metrics\": " + metrics_json(series[i].metrics) + "}";
  }
  out += "\n]";
  return out;
}

bool write_metrics_json(const std::string& path, const metrics_snapshot& snap) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "obs: cannot write metrics to " << path << "\n";
    return false;
  }
  const auto json = metrics_json(snap) + "\n";
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace nlh::obs

#pragma once
///
/// \file sampler.hpp
/// \brief Periodic metrics sampler for long soaks: a background thread
/// snapshots a caller-supplied source on a fixed interval, building the
/// timestamped series `obs::metrics_series_json` exports
/// (docs/observability.md).
///

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics_export.hpp"

namespace nlh::obs {

class periodic_sampler {
 public:
  /// Start sampling `source` every `interval` (first sample after one
  /// interval). `source` runs on the sampler thread; it must be safe to
  /// call concurrently with the workload (registry snapshots are).
  periodic_sampler(std::chrono::milliseconds interval,
                   std::function<metrics_snapshot()> source);
  /// Stops and joins.
  ~periodic_sampler();

  periodic_sampler(const periodic_sampler&) = delete;
  periodic_sampler& operator=(const periodic_sampler&) = delete;

  /// Take one final sample, then stop the thread. Idempotent.
  void stop();

  /// Copy of the series collected so far.
  std::vector<timed_snapshot> samples() const;

  /// stop() + write the series to `path`; false on I/O failure.
  bool write_json(const std::string& path);

 private:
  void loop();

  std::chrono::milliseconds interval_;
  std::function<metrics_snapshot()> source_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<timed_snapshot> samples_;
  std::thread thread_;  ///< last member: joined before state above dies
};

}  // namespace nlh::obs

#pragma once
///
/// \file metrics.hpp
/// \brief Counters, gauges and fixed-bucket latency histograms with
/// p50/p90/p99 estimation — the metrics pillar of `src/obs/`
/// (docs/observability.md).
///
/// Naming convention: `subsystem/entity/metric`, e.g.
/// `dist/ghost/message_bytes` or `api/batch/queue_wait_seconds`. A
/// `metrics_registry` maps names to instruments with stable addresses
/// (look the instrument up once, record through the reference on the hot
/// path); `snapshot()` freezes everything into a plain `metrics_snapshot`
/// that `obs/metrics_export.hpp` serializes to JSON.
///
/// Histograms use log-spaced buckets (`buckets_per_decade` per decade
/// between `min_value` and `max_value`, plus underflow/overflow): the
/// relative quantile error is bounded by the bucket ratio (~33% per bucket
/// at the default 8/decade, interpolated geometrically within the bucket),
/// which is the right trade for latency tails spanning microseconds to
/// seconds. All instruments are thread safe; recording is a handful of
/// arithmetic ops plus one uncontended mutex acquisition.
///

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nlh::obs {

/// Monotonic event/byte counter.
class counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value.
class gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct histogram_options {
  double min_value = 1e-7;    ///< lower bound of the first regular bucket
  double max_value = 1e3;     ///< upper bound of the last regular bucket
  int buckets_per_decade = 8; ///< log-spaced resolution
};

/// Frozen view of one histogram; quantiles are geometric interpolations
/// within their bucket. All fields are 0 when `count` is 0.
struct histogram_summary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class histogram {
 public:
  explicit histogram(histogram_options opt = {});

  void record(double value);
  /// Estimate quantile `q` in [0, 1] from the bucket counts.
  double quantile(double q) const;
  histogram_summary summary() const;
  void reset();

 private:
  /// Caller holds m_.
  double quantile_locked(double q) const;

  histogram_options opt_;
  double log_min_;
  double inv_log_step_;  ///< buckets per natural-log unit
  mutable std::mutex m_;
  std::vector<std::uint64_t> buckets_;  ///< [underflow, b0..bn-1, overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Plain-data snapshot of a registry (plus anything callers append by
/// hand, e.g. per-job summaries or bridged amt::counter_registry paths).
struct metrics_snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, histogram_summary>> histograms;

  void add_counter(std::string name, std::uint64_t v) {
    counters.emplace_back(std::move(name), v);
  }
  void add_gauge(std::string name, double v) { gauges.emplace_back(std::move(name), v); }
  void add_histogram(std::string name, histogram_summary s) {
    histograms.emplace_back(std::move(name), s);
  }
  /// Append everything from `other` (prefix applied to its names).
  void merge(const metrics_snapshot& other, const std::string& prefix = "");
};

/// Named instrument registry; instruments have stable addresses for the
/// lifetime of the registry, so hot paths hold references, not names.
class metrics_registry {
 public:
  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  /// Find-or-create by name. The options of an existing histogram win over
  /// the ones passed later.
  counter& get_counter(const std::string& name);
  gauge& get_gauge(const std::string& name);
  histogram& get_histogram(const std::string& name, histogram_options opt = {});

  metrics_snapshot snapshot() const;

  /// Process-wide registry for code without a natural owner (sessions and
  /// runners own their local registries; bridged snapshots combine both).
  static metrics_registry& global();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<gauge>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>> histograms_;
};

/// Adapter over the existing `amt::counter_registry` (HPX-style AGAS
/// counter paths): append every registered path containing `substring`
/// (empty = all) to `into` as a gauge, polled race-safely through
/// `try_value` — a counter unregistered mid-enumeration is skipped, never
/// a crash.
void bridge_counter_registry(metrics_snapshot& into,
                             const std::string& substring = "");

}  // namespace nlh::obs

#pragma once
///
/// \file tracer.hpp
/// \brief Low-overhead per-thread span recorder (docs/observability.md).
///
/// Every thread that records gets its own fixed-capacity ring of POD
/// `trace_event`s, registered with the process-wide `tracer` singleton on
/// first use and kept alive after the thread exits (a snapshot taken later
/// still sees its events). Rings wrap silently — the newest
/// `config::ring_capacity` events per thread survive; `dropped()` counts
/// the overwritten ones. Each ring is guarded by its own mutex, taken once
/// per recorded event; the lock is uncontended except while a snapshot is
/// being taken, so the steady-state cost per event is one timestamp read
/// plus one uncontended lock/unlock (measured in bench/micro_obs, gated
/// <= 5% of a traced solver step in CI).
///
/// The API is the usual tracing triple:
///   - `span` — RAII guard emitting one complete ('X') event at scope exit
///   - `trace_begin` / `trace_end` — explicit 'B'/'E' pairs for regions
///     that cannot be scoped (e.g. spanning a future continuation)
///   - `trace_instant` — point events ('i')
///
/// Event names must be string literals (or otherwise outlive the tracer):
/// events store the pointer, never a copy — this keeps the record path
/// allocation-free. The numeric `arg` rides into the exporter's `args`
/// object for per-event detail (SD id, byte count, job sequence, ...).
///
/// Use the `NLH_TRACE_*` macros rather than the classes directly: they
/// compile to nothing when `NLH_OBS_TRACING_COMPILED` is 0 (obs/config.hpp).
///

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hpp"

namespace nlh::obs {

/// One trace record. POD, 40 bytes; `name` points at a string literal.
struct trace_event {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< nanoseconds since the tracer epoch
  std::int64_t dur_ns = 0;  ///< complete ('X') events only
  std::uint64_t arg = 0;    ///< free-form detail (SD id, bytes, seq, ...)
  std::uint32_t tid = 0;    ///< tracer-assigned thread id (dense from 1)
  char phase = 'i';         ///< 'X' complete, 'B' begin, 'E' end, 'i' instant
};

/// Process-wide trace recorder; thread safe. All sessions/solvers record
/// into the one instance so a multi-tenant run exports as one timeline.
class tracer {
 public:
  static tracer& instance();

  /// Nanoseconds since the tracer epoch (process-stable monotonic base).
  std::int64_t now_ns() const;

  /// Record into the calling thread's ring (creates + registers it on
  /// first use). `ts_ns`/`tid` of `e` are filled in here.
  void record(const char* name, char phase, std::uint64_t arg,
              std::int64_t ts_ns, std::int64_t dur_ns);

  /// Label the calling thread's ring (shown as the Perfetto track name).
  void set_thread_name(std::string name);

  /// Copy out every ring's events, oldest first per thread, merged and
  /// sorted by timestamp. Safe while other threads keep recording.
  std::vector<trace_event> snapshot() const;

  /// tid -> name for every ring that was given one.
  std::vector<std::pair<std::uint32_t, std::string>> thread_names() const;

  /// Events lost to ring wraparound since construction / clear().
  std::uint64_t dropped() const;

  /// Drop all recorded events (rings stay registered; tids are kept).
  void clear();

 private:
  tracer();

  struct ring;
  ring& local_ring();

  mutable std::mutex rings_m_;
  std::vector<std::shared_ptr<ring>> rings_;
  std::uint32_t next_tid_ = 1;
  std::int64_t epoch_ns_ = 0;
};

/// RAII guard: one complete event covering construction -> destruction.
/// Records nothing when tracing was disabled at construction.
class span {
 public:
  explicit span(const char* name, std::uint64_t arg = 0) {
    if (tracing_enabled()) open(name, arg);
  }
  ~span() {
    if (name_) close();
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  void open(const char* name, std::uint64_t arg);
  void close();

  const char* name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::int64_t start_ns_ = 0;
};

/// Point event at the current time.
void trace_instant(const char* name, std::uint64_t arg = 0);
/// Explicit begin/end pair ('B'/'E'); match them on the same thread — the
/// Chrome trace viewer pairs B/E per tid.
void trace_begin(const char* name, std::uint64_t arg = 0);
void trace_end(const char* name);

}  // namespace nlh::obs

// Instrumentation macros — the only spelling used inside solver/runtime
// code, so a build with NLH_ENABLE_TRACING=OFF contains no tracing code at
// all (obs/config.hpp).
#define NLH_OBS_CONCAT2(a, b) a##b
#define NLH_OBS_CONCAT(a, b) NLH_OBS_CONCAT2(a, b)

#if NLH_OBS_TRACING_COMPILED
#define NLH_TRACE_SPAN(name) ::nlh::obs::span NLH_OBS_CONCAT(nlh_trace_span_, __LINE__)(name)
#define NLH_TRACE_SPAN_ARG(name, arg) \
  ::nlh::obs::span NLH_OBS_CONCAT(nlh_trace_span_, __LINE__)(name, (arg))
#define NLH_TRACE_INSTANT(name, arg) ::nlh::obs::trace_instant((name), (arg))
#define NLH_TRACE_BEGIN(name, arg) ::nlh::obs::trace_begin((name), (arg))
#define NLH_TRACE_END(name) ::nlh::obs::trace_end((name))
#else
#define NLH_TRACE_SPAN(name) static_cast<void>(0)
#define NLH_TRACE_SPAN_ARG(name, arg) static_cast<void>(0)
#define NLH_TRACE_INSTANT(name, arg) static_cast<void>(0)
#define NLH_TRACE_BEGIN(name, arg) static_cast<void>(0)
#define NLH_TRACE_END(name) static_cast<void>(0)
#endif

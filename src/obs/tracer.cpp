///
/// \file tracer.cpp
/// \brief Tracer implementation: per-thread rings, registration, snapshot
/// merge, and the runtime config globals.
///

#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>

namespace nlh::obs {

namespace detail {
std::atomic<bool> tracing_enabled{false};
}  // namespace detail

namespace {

std::mutex config_m;
config active_config;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void set_tracing_enabled(bool on) {
  detail::tracing_enabled.store(on, std::memory_order_relaxed);
}

void configure(const config& cfg) {
  std::lock_guard<std::mutex> lk(config_m);
  active_config = cfg;
  if (active_config.ring_capacity < 16) active_config.ring_capacity = 16;
}

config current_config() {
  std::lock_guard<std::mutex> lk(config_m);
  return active_config;
}

/// Fixed-capacity event ring of one thread. `head` is the next write slot;
/// once `total > capacity` the ring has wrapped and the oldest events live
/// at `head`. The mutex serializes the owning writer against snapshot
/// readers; writers from other threads never touch it.
struct tracer::ring {
  explicit ring(std::size_t capacity, std::uint32_t id) : tid(id) {
    ev.resize(capacity);
  }
  mutable std::mutex m;
  std::vector<trace_event> ev;
  std::size_t head = 0;
  std::uint64_t total = 0;  ///< events ever recorded into this ring
  std::uint32_t tid = 0;
  std::string name;
};

tracer::tracer() : epoch_ns_(steady_ns()) {}

tracer& tracer::instance() {
  static tracer t;
  return t;
}

std::int64_t tracer::now_ns() const { return steady_ns() - epoch_ns_; }

tracer::ring& tracer::local_ring() {
  // One cached ring per (thread, process): the tracer is a singleton, so a
  // plain thread_local shared_ptr suffices. The registry keeps its own
  // reference, so events of exited threads survive into later snapshots.
  thread_local std::shared_ptr<ring> tls;
  if (!tls) {
    const auto cap = current_config().ring_capacity;
    std::lock_guard<std::mutex> lk(rings_m_);
    tls = std::make_shared<ring>(cap, next_tid_++);
    rings_.push_back(tls);
  }
  return *tls;
}

void tracer::record(const char* name, char phase, std::uint64_t arg,
                    std::int64_t ts_ns, std::int64_t dur_ns) {
  auto& r = local_ring();
  std::lock_guard<std::mutex> lk(r.m);
  auto& e = r.ev[r.head];
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg = arg;
  e.tid = r.tid;
  e.phase = phase;
  r.head = (r.head + 1) % r.ev.size();
  ++r.total;
}

void tracer::set_thread_name(std::string name) {
  auto& r = local_ring();
  std::lock_guard<std::mutex> lk(r.m);
  r.name = std::move(name);
}

std::vector<trace_event> tracer::snapshot() const {
  std::vector<std::shared_ptr<ring>> rings;
  {
    std::lock_guard<std::mutex> lk(rings_m_);
    rings = rings_;
  }
  std::vector<trace_event> out;
  for (const auto& rp : rings) {
    std::lock_guard<std::mutex> lk(rp->m);
    const std::size_t cap = rp->ev.size();
    const std::size_t n = rp->total < cap ? static_cast<std::size_t>(rp->total) : cap;
    // Oldest first: a wrapped ring's oldest event sits at head.
    const std::size_t start = rp->total < cap ? 0 : rp->head;
    for (std::size_t i = 0; i < n; ++i) out.push_back(rp->ev[(start + i) % cap]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trace_event& a, const trace_event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> tracer::thread_names() const {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  std::lock_guard<std::mutex> lk(rings_m_);
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->m);
    if (!rp->name.empty()) out.emplace_back(rp->tid, rp->name);
  }
  return out;
}

std::uint64_t tracer::dropped() const {
  std::uint64_t lost = 0;
  std::lock_guard<std::mutex> lk(rings_m_);
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->m);
    const auto cap = static_cast<std::uint64_t>(rp->ev.size());
    if (rp->total > cap) lost += rp->total - cap;
  }
  return lost;
}

void tracer::clear() {
  std::lock_guard<std::mutex> lk(rings_m_);
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->m);
    rp->head = 0;
    rp->total = 0;
  }
}

void span::open(const char* name, std::uint64_t arg) {
  name_ = name;
  arg_ = arg;
  start_ns_ = tracer::instance().now_ns();
}

void span::close() {
  auto& t = tracer::instance();
  // Spans opened while enabled always close: a toggle mid-span must not
  // leave an unmatched event, so `close` checks name_, not the flag.
  t.record(name_, 'X', arg_, start_ns_, t.now_ns() - start_ns_);
}

void trace_instant(const char* name, std::uint64_t arg) {
  if (!tracing_enabled()) return;
  auto& t = tracer::instance();
  t.record(name, 'i', arg, t.now_ns(), 0);
}

void trace_begin(const char* name, std::uint64_t arg) {
  if (!tracing_enabled()) return;
  auto& t = tracer::instance();
  t.record(name, 'B', arg, t.now_ns(), 0);
}

void trace_end(const char* name) {
  if (!tracing_enabled()) return;
  auto& t = tracer::instance();
  t.record(name, 'E', 0, t.now_ns(), 0);
}

}  // namespace nlh::obs

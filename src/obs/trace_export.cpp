///
/// \file trace_export.cpp
/// \brief Chrome Trace Event JSON serialization.
///

#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace nlh::obs {

namespace {

/// Event names are C++ identifiers-with-slashes by convention, but escape
/// defensively: the exporter must never emit invalid JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, std::int64_t ns) {
  // Microseconds with nanosecond precision kept as decimals.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<trace_event>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& thread_names) {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"";
    append_escaped(out, name.c_str());
    out += "\"}}";
  }
  for (const auto& e : events) {
    if (!e.name) continue;  // never recorded (defensive)
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":0,\"tid\":" + std::to_string(e.tid) + ",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    }
    // Instant events default to thread scope; make it explicit so strict
    // viewers render them.
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{\"v\":" + std::to_string(e.arg) + "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<trace_event>& events,
                        const std::vector<std::pair<std::uint32_t, std::string>>&
                            thread_names) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  const auto json = chrome_trace_json(events, thread_names);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

bool write_chrome_trace(const std::string& path) {
  auto& t = tracer::instance();
  return write_chrome_trace(path, t.snapshot(), t.thread_names());
}

}  // namespace nlh::obs

///
/// \file sampler.cpp
/// \brief Periodic metrics sampler implementation.
///

#include "obs/sampler.hpp"

#include <fstream>
#include <iostream>

namespace nlh::obs {

periodic_sampler::periodic_sampler(std::chrono::milliseconds interval,
                                   std::function<metrics_snapshot()> source)
    : interval_(interval < std::chrono::milliseconds(1)
                    ? std::chrono::milliseconds(1)
                    : interval),
      source_(std::move(source)),
      start_(std::chrono::steady_clock::now()),
      thread_([this] { loop(); }) {}

periodic_sampler::~periodic_sampler() { stop(); }

void periodic_sampler::loop() {
  std::unique_lock<std::mutex> lk(m_);
  while (!stop_) {
    if (cv_.wait_for(lk, interval_, [this] { return stop_; })) return;
    // Sample outside the lock: the source may itself take locks (registry
    // snapshots, solver stats) and must not block stop() meanwhile.
    lk.unlock();
    timed_snapshot ts;
    ts.t_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    ts.metrics = source_();
    lk.lock();
    if (!stop_) samples_.push_back(std::move(ts));
  }
}

void periodic_sampler::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stop_) return;
    stop_ = true;
    // Final sample so short runs (< one interval) still export one point.
    timed_snapshot ts;
    ts.t_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    ts.metrics = source_();
    samples_.push_back(std::move(ts));
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<timed_snapshot> periodic_sampler::samples() const {
  std::lock_guard<std::mutex> lk(m_);
  return samples_;
}

bool periodic_sampler::write_json(const std::string& path) {
  stop();
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "obs: cannot write metrics series to " << path << "\n";
    return false;
  }
  const auto json = metrics_series_json(samples()) + "\n";
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace nlh::obs

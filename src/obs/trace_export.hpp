#pragma once
///
/// \file trace_export.hpp
/// \brief Chrome-tracing / Perfetto JSON exporter for recorded trace
/// events: the output loads directly in chrome://tracing or ui.perfetto.dev
/// (docs/observability.md).
///

#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace nlh::obs {

/// Serialize `events` into the Chrome Trace Event JSON object format:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Complete events carry
/// `ph:"X"` with microsecond `ts`/`dur`; named threads become `ph:"M"`
/// thread_name metadata records.
std::string chrome_trace_json(
    const std::vector<trace_event>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& thread_names = {});

/// Snapshot the process tracer and write it to `path`; false (with a
/// message on stderr) when the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Write an explicit event list (tests / partial snapshots).
bool write_chrome_trace(const std::string& path,
                        const std::vector<trace_event>& events,
                        const std::vector<std::pair<std::uint32_t, std::string>>&
                            thread_names = {});

}  // namespace nlh::obs

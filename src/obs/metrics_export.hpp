#pragma once
///
/// \file metrics_export.hpp
/// \brief JSON serialization of metrics snapshots and the periodic sampler
/// output (docs/observability.md).
///

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nlh::obs {

/// One snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, mean, p50, p90, p99}, ...}}`.
std::string metrics_json(const metrics_snapshot& snap);

/// A timestamped series of snapshots (periodic_sampler output) as a JSON
/// array of `{"t_seconds": ..., "metrics": {...}}` objects.
struct timed_snapshot {
  double t_seconds = 0.0;  ///< seconds since the sampler started
  metrics_snapshot metrics;
};
std::string metrics_series_json(const std::vector<timed_snapshot>& series);

/// Write `snap` to `path`; false (with a message on stderr) on failure.
bool write_metrics_json(const std::string& path, const metrics_snapshot& snap);

}  // namespace nlh::obs

#pragma once
///
/// \file config.hpp
/// \brief Observability switches: the compile-time tracing master switch and
/// the process-wide runtime toggles (docs/observability.md).
///
/// Tracing has two gates. `NLH_OBS_TRACING_COMPILED` (CMake option
/// `NLH_ENABLE_TRACING`, default ON) decides whether the `NLH_TRACE_*`
/// macros emit any code at all — with it off the instrumentation is
/// compile-time zero-cost. When compiled in, `set_tracing_enabled(bool)`
/// toggles recording at runtime; the disabled fast path is one relaxed
/// atomic load and a predictable branch per instrumentation site.
///
/// Metrics (obs/metrics.hpp) have no compile-time switch: histograms and
/// counters are recorded at step/job granularity, far off any hot loop.
///

#include <atomic>
#include <cstddef>

#ifndef NLH_OBS_TRACING_COMPILED
#define NLH_OBS_TRACING_COMPILED 1
#endif

namespace nlh::obs {

/// Tunables applied to trace rings created after `configure()`; existing
/// per-thread rings keep their capacity (they are fixed-size by design).
struct config {
  /// Events each thread's ring holds before wrapping (oldest overwritten).
  /// 16384 events x 40 B is well under 1 MiB per traced thread.
  std::size_t ring_capacity = 16384;
};

namespace detail {
extern std::atomic<bool> tracing_enabled;
}  // namespace detail

/// Runtime master switch for trace recording. Off by default; flipping it
/// on/off mid-run is safe from any thread (spans opened while enabled still
/// close and record).
void set_tracing_enabled(bool on);

inline bool tracing_enabled() {
  return detail::tracing_enabled.load(std::memory_order_relaxed);
}

/// Install `cfg` for rings created from now on (typically called once,
/// before the first traced region).
void configure(const config& cfg);
config current_config();

}  // namespace nlh::obs

#pragma once
///
/// \file event_queue.hpp
/// \brief Deterministic time-ordered event queue.
///
/// Ties on time are broken by insertion sequence so simulations are exactly
/// reproducible regardless of heap internals.
///

#include <cstdint>
#include <queue>
#include <vector>

#include "amt/unique_function.hpp"
#include "support/assert.hpp"

namespace nlh::sim {

class event_queue {
 public:
  void push(double time, amt::unique_function<void()> action) {
    NLH_ASSERT_MSG(time >= now_, "event_queue: scheduling into the past");
    heap_.push(item{time, seq_++, std::move(action)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  double now() const { return now_; }

  /// Next event time; queue must be non-empty.
  double peek_time() const {
    NLH_ASSERT(!heap_.empty());
    return heap_.top().time;
  }

  /// Pop and execute the earliest event, advancing the clock.
  void step() {
    NLH_ASSERT(!heap_.empty());
    // priority_queue::top is const; the action must be moved out, so pop via
    // const_cast on the known-unique top element.
    auto& top = const_cast<item&>(heap_.top());
    now_ = top.time;
    auto action = std::move(top.action);
    heap_.pop();
    action();
  }

  /// Run until the queue drains.
  void run() {
    while (!heap_.empty()) step();
  }

 private:
  struct item {
    double time;
    std::uint64_t seq;
    amt::unique_function<void()> action;
    bool operator>(const item& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<item, std::vector<item>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace nlh::sim

#include "sim/capacity_trace.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace nlh::sim {

capacity_trace capacity_trace::constant(double speed) {
  capacity_trace t;
  t.add_segment(0.0, speed);
  return t;
}

void capacity_trace::add_segment(double start_time, double speed) {
  NLH_ASSERT_MSG(speed >= 0.0, "capacity_trace: negative speed");
  if (starts_.empty()) {
    NLH_ASSERT_MSG(start_time == 0.0, "capacity_trace: first segment must start at 0");
  } else {
    NLH_ASSERT_MSG(start_time > starts_.back(), "capacity_trace: segments out of order");
  }
  starts_.push_back(start_time);
  speeds_.push_back(speed);
}

double capacity_trace::speed_at(double t) const {
  NLH_ASSERT(!starts_.empty());
  // Last segment whose start <= t.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  const auto idx = static_cast<std::size_t>(it - starts_.begin());
  NLH_ASSERT(idx >= 1);
  return speeds_[idx - 1];
}

double capacity_trace::work_done(double t0, double t1) const {
  NLH_ASSERT(!starts_.empty());
  if (t1 <= t0) return 0.0;
  double work = 0.0;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    const double seg_start = starts_[i];
    const double seg_end =
        i + 1 < starts_.size() ? starts_[i + 1] : std::numeric_limits<double>::infinity();
    const double lo = std::max(t0, seg_start);
    const double hi = std::min(t1, seg_end);
    if (hi > lo) work += speeds_[i] * (hi - lo);
    if (seg_end >= t1) break;
  }
  return work;
}

double capacity_trace::finish_time(double start, double work) const {
  NLH_ASSERT(!starts_.empty());
  NLH_ASSERT(work >= 0.0);
  if (work == 0.0) return start;
  double remaining = work;
  double t = start;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    const double seg_end =
        i + 1 < starts_.size() ? starts_[i + 1] : std::numeric_limits<double>::infinity();
    if (seg_end <= t) continue;
    const double speed = speeds_[i];
    if (speed > 0.0) {
      const double capacity = (seg_end - t) * speed;
      if (remaining <= capacity) return t + remaining / speed;
      remaining -= capacity;
    }
    t = seg_end;
  }
  NLH_ASSERT_MSG(false, "capacity_trace: work never completes (zero tail speed)");
  return t;
}

}  // namespace nlh::sim

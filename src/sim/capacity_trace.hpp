#pragma once
///
/// \file capacity_trace.hpp
/// \brief Piecewise-constant compute-capacity profile of a virtual node.
///
/// The paper motivates load balancing with nodes whose capacity varies over
/// time ("scheduling of some other task"). A trace maps virtual time to
/// speed in work-units per second; the simulator integrates it to turn task
/// work into task duration, so a node that loses half its capacity mid-run
/// takes proportionally longer for tasks spanning the change.
///

#include <vector>

namespace nlh::sim {

class capacity_trace {
 public:
  /// Constant speed for all time.
  static capacity_trace constant(double speed);

  /// Speed becomes `speed` from `start_time` onward (segments must be added
  /// in increasing start_time order; the first segment must start at 0).
  void add_segment(double start_time, double speed);

  double speed_at(double t) const;

  /// Work completed between t0 and t1 (integral of speed).
  double work_done(double t0, double t1) const;

  /// Earliest time at which `work` units complete when started at `start`.
  /// Requires the trace to eventually have positive speed.
  double finish_time(double start, double work) const;

  bool empty() const { return starts_.empty(); }

 private:
  std::vector<double> starts_;  ///< segment start times, ascending, starts_[0] == 0
  std::vector<double> speeds_;  ///< speed on [starts_[i], starts_[i+1])
};

}  // namespace nlh::sim

#pragma once
///
/// \file cluster_sim.hpp
/// \brief Virtual-time execution of a static task DAG on a model cluster.
///
/// This is the performance substrate substituting for the paper's Skylake
/// cluster (see DESIGN.md): N nodes, C cores each, per-node capacity traces,
/// and an alpha/beta (latency + bandwidth) network. Tasks carry abstract
/// work units (calibrated from real kernel timings by the benches); edges
/// are either same-run dependencies or cross-node messages that incur
/// transfer time. Scheduling is FIFO-by-ready-time per node onto the
/// earliest free core — the behaviour of a work queue per locality.
///
/// The simulator reports makespan, per-task start/finish and per-node busy
/// time, which is exactly the observable (busy_time performance counter)
/// the load balancer consumes.
///

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/capacity_trace.hpp"

namespace nlh::sim {

/// Network model: transfer_time(bytes) = latency + bytes / bandwidth.
/// Intra-node messages are free.
struct network_model {
  double latency_s = 1e-6;            ///< per-message latency (alpha)
  double bandwidth_bytes_per_s = 1e10;///< link bandwidth (beta)

  double transfer_time(double bytes) const {
    return latency_s + bytes / bandwidth_bytes_per_s;
  }
};

class cluster_sim {
 public:
  /// \param nodes           number of virtual compute nodes
  /// \param cores_per_node  virtual cores per node (CPUs in the paper's terms)
  cluster_sim(int nodes, int cores_per_node);

  void set_network(network_model net) { net_ = net; }
  void set_capacity(int node, capacity_trace trace);
  /// Convenience: constant speed in work-units/second.
  void set_speed(int node, double work_units_per_s);

  int num_nodes() const { return static_cast<int>(node_traces_.size()); }
  int cores_per_node() const { return cores_per_node_; }

  /// Add a task bound to `node` costing `work` units; returns its id.
  /// `deps` are task ids that must finish before this task becomes ready.
  /// `label` is carried into execution traces (see task_records()).
  int add_task(int node, double work, const std::vector<int>& deps = {},
               std::string label = {});

  /// Message edge: `to_task` additionally waits for `bytes` sent when
  /// `from_task` finishes. Transfer time applies only when the two tasks
  /// live on different nodes.
  void add_message(int from_task, int to_task, double bytes);

  /// Execute the DAG; callable once. Asserts on dependency cycles.
  void run();

  bool has_run() const { return ran_; }
  double makespan() const;
  double task_start(int id) const;
  double task_finish(int id) const;

  /// Virtual seconds node's cores spent executing tasks (sum over cores).
  double node_busy_time(int node) const;
  /// Busy time clipped to the window [t0, t1].
  double node_busy_in_window(int node, double t0, double t1) const;
  /// busy / (window * cores): the busy_time counter fraction.
  double node_busy_fraction(int node, double t0, double t1) const;

  /// Total bytes that crossed the network (inter-node messages only).
  double network_bytes() const { return network_bytes_; }
  std::int64_t network_messages() const { return network_messages_; }

  /// One executed task for trace export (valid after run()).
  struct task_record {
    int id;
    int node;
    int core;          ///< core index within the node the task ran on
    double start;
    double finish;
    double work;
    std::string label;
  };

  /// All tasks in execution order (sorted by start time).
  std::vector<task_record> task_records() const;

  /// Write the schedule as a Chrome tracing JSON (chrome://tracing /
  /// Perfetto): one process per node, one thread lane per core,
  /// microsecond timestamps (virtual seconds * 1e6).
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct task {
    int node;
    double work;
    std::vector<int> dependents;       ///< dep edges out of this task
    std::vector<std::pair<int, double>> msg_out;  ///< (to_task, bytes)
    int pending = 0;                   ///< unmet deps + unarrived messages
    double ready_time = 0.0;
    double start = -1.0;
    double finish = -1.0;
    int core = -1;
    std::string label;
  };

  struct busy_interval {
    double start;
    double end;
  };

  int cores_per_node_;
  network_model net_;
  std::vector<capacity_trace> node_traces_;
  std::vector<task> tasks_;
  std::vector<std::vector<busy_interval>> node_busy_;
  double makespan_ = 0.0;
  double network_bytes_ = 0.0;
  std::int64_t network_messages_ = 0;
  bool ran_ = false;
};

}  // namespace nlh::sim

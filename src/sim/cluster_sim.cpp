#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <ostream>
#include <queue>

#include "support/assert.hpp"

namespace nlh::sim {

cluster_sim::cluster_sim(int nodes, int cores_per_node)
    : cores_per_node_(cores_per_node) {
  NLH_ASSERT(nodes >= 1 && cores_per_node >= 1);
  node_traces_.resize(static_cast<std::size_t>(nodes), capacity_trace::constant(1.0));
  node_busy_.resize(static_cast<std::size_t>(nodes));
}

void cluster_sim::set_capacity(int node, capacity_trace trace) {
  NLH_ASSERT(node >= 0 && node < num_nodes());
  NLH_ASSERT(!trace.empty());
  node_traces_[static_cast<std::size_t>(node)] = std::move(trace);
}

void cluster_sim::set_speed(int node, double work_units_per_s) {
  set_capacity(node, capacity_trace::constant(work_units_per_s));
}

int cluster_sim::add_task(int node, double work, const std::vector<int>& deps,
                          std::string label) {
  NLH_ASSERT(!ran_);
  NLH_ASSERT(node >= 0 && node < num_nodes());
  NLH_ASSERT(work >= 0.0);
  const int id = static_cast<int>(tasks_.size());
  tasks_.push_back(task{node, work, {}, {}, 0, 0.0, -1.0, -1.0, -1, std::move(label)});
  for (int d : deps) {
    NLH_ASSERT_MSG(d >= 0 && d < id, "cluster_sim: dep must be an earlier task");
    tasks_[static_cast<std::size_t>(d)].dependents.push_back(id);
    ++tasks_.back().pending;
  }
  return id;
}

void cluster_sim::add_message(int from_task, int to_task, double bytes) {
  NLH_ASSERT(!ran_);
  NLH_ASSERT(from_task >= 0 && from_task < static_cast<int>(tasks_.size()));
  NLH_ASSERT(to_task >= 0 && to_task < static_cast<int>(tasks_.size()));
  NLH_ASSERT_MSG(from_task != to_task, "cluster_sim: self message");
  NLH_ASSERT(bytes >= 0.0);
  tasks_[static_cast<std::size_t>(from_task)].msg_out.emplace_back(to_task, bytes);
  ++tasks_[static_cast<std::size_t>(to_task)].pending;
}

void cluster_sim::run() {
  NLH_ASSERT_MSG(!ran_, "cluster_sim::run called twice");
  ran_ = true;

  // Per-node core free times (indexed so traces can attribute tasks to a
  // concrete core lane).
  std::vector<std::vector<double>> cores(
      node_traces_.size(), std::vector<double>(static_cast<std::size_t>(cores_per_node_), 0.0));

  // Ready queue ordered by (ready_time, id) for determinism.
  using entry = std::pair<double, int>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> ready;

  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].pending == 0) ready.push({0.0, static_cast<int>(i)});

  std::size_t executed = 0;
  while (!ready.empty()) {
    const auto [rt, id] = ready.top();
    ready.pop();
    task& t = tasks_[static_cast<std::size_t>(id)];
    const auto node = static_cast<std::size_t>(t.node);

    auto& free_times = cores[node];
    const auto core_idx = static_cast<std::size_t>(
        std::min_element(free_times.begin(), free_times.end()) - free_times.begin());
    t.core = static_cast<int>(core_idx);
    t.start = std::max(t.ready_time, free_times[core_idx]);
    t.finish = node_traces_[node].finish_time(t.start, t.work);
    free_times[core_idx] = t.finish;
    if (t.finish > t.start)
      node_busy_[node].push_back(busy_interval{t.start, t.finish});
    makespan_ = std::max(makespan_, t.finish);
    ++executed;

    for (int dep_id : t.dependents) {
      task& d = tasks_[static_cast<std::size_t>(dep_id)];
      d.ready_time = std::max(d.ready_time, t.finish);
      if (--d.pending == 0) ready.push({d.ready_time, dep_id});
    }
    for (const auto& [to_id, bytes] : t.msg_out) {
      task& d = tasks_[static_cast<std::size_t>(to_id)];
      double arrival = t.finish;
      if (d.node != t.node) {
        arrival += net_.transfer_time(bytes);
        network_bytes_ += bytes;
        ++network_messages_;
      }
      d.ready_time = std::max(d.ready_time, arrival);
      if (--d.pending == 0) ready.push({d.ready_time, to_id});
    }
  }
  NLH_ASSERT_MSG(executed == tasks_.size(), "cluster_sim: dependency cycle detected");
}

double cluster_sim::makespan() const {
  NLH_ASSERT(ran_);
  return makespan_;
}

double cluster_sim::task_start(int id) const {
  NLH_ASSERT(ran_ && id >= 0 && id < static_cast<int>(tasks_.size()));
  return tasks_[static_cast<std::size_t>(id)].start;
}

double cluster_sim::task_finish(int id) const {
  NLH_ASSERT(ran_ && id >= 0 && id < static_cast<int>(tasks_.size()));
  return tasks_[static_cast<std::size_t>(id)].finish;
}

std::vector<cluster_sim::task_record> cluster_sim::task_records() const {
  NLH_ASSERT(ran_);
  std::vector<task_record> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const auto& t = tasks_[i];
    out.push_back(task_record{static_cast<int>(i), t.node, t.core, t.start,
                              t.finish, t.work, t.label});
  }
  std::sort(out.begin(), out.end(), [](const task_record& a, const task_record& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  });
  return out;
}

void cluster_sim::write_chrome_trace(std::ostream& os) const {
  NLH_ASSERT(ran_);
  os << "[\n";
  bool first = true;
  for (const auto& r : task_records()) {
    if (r.finish <= r.start) continue;  // zero-duration sinks clutter traces
    if (!first) os << ",\n";
    first = false;
    const std::string name = r.label.empty() ? "task" + std::to_string(r.id) : r.label;
    os << "  {\"name\": \"" << name << "\", \"ph\": \"X\", \"ts\": "
       << r.start * 1e6 << ", \"dur\": " << (r.finish - r.start) * 1e6
       << ", \"pid\": " << r.node << ", \"tid\": " << r.core << "}";
  }
  os << "\n]\n";
}

double cluster_sim::node_busy_time(int node) const {
  NLH_ASSERT(ran_ && node >= 0 && node < num_nodes());
  double total = 0.0;
  for (const auto& iv : node_busy_[static_cast<std::size_t>(node)])
    total += iv.end - iv.start;
  return total;
}

double cluster_sim::node_busy_in_window(int node, double t0, double t1) const {
  NLH_ASSERT(ran_ && node >= 0 && node < num_nodes());
  NLH_ASSERT(t1 >= t0);
  double total = 0.0;
  for (const auto& iv : node_busy_[static_cast<std::size_t>(node)]) {
    const double lo = std::max(iv.start, t0);
    const double hi = std::min(iv.end, t1);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

double cluster_sim::node_busy_fraction(int node, double t0, double t1) const {
  const double window = t1 - t0;
  if (window <= 0.0) return 0.0;
  return node_busy_in_window(node, t0, t1) / (window * cores_per_node_);
}

}  // namespace nlh::sim

#include "ckpt/hibernation.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <sstream>

#include "ckpt/codec.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace nlh::ckpt {

namespace {

std::filesystem::path scratch_directory() {
  // One unique directory per manager instance: pid disambiguates across
  // processes sharing a temp root, the counter across managers in-process.
  static std::atomic<std::uint64_t> seq{0};
  std::ostringstream name;
  name << "nlh-hibernate-" << ::getpid() << "-" << seq.fetch_add(1);
  return std::filesystem::temp_directory_path() / name.str();
}

}  // namespace

std::string hibernation_options::validate() const {
  if (resident_cap == 0) return "hibernation.resident_cap must be >= 1";
  if (find_codec(codec) == nullptr)
    return "hibernation.codec: unknown codec '" + codec + "'";
  return {};
}

hibernation_manager::hibernation_manager(hibernation_options opt)
    : opt_(std::move(opt)),
      hibernate_s_(obs::histogram_options{1e-7, 1e2, 8}),
      restore_s_(obs::histogram_options{1e-7, 1e2, 8}) {
  const auto err = opt_.validate();
  NLH_ASSERT_MSG(err.empty(), "hibernation_manager: invalid options");
  const bool scratch = opt_.directory.empty();
  store_ = std::make_unique<checkpoint_store>(
      scratch ? scratch_directory() : std::filesystem::path(opt_.directory),
      /*purge_on_close=*/true);
}

hibernation_manager::~hibernation_manager() = default;

hibernation_manager::entry* hibernation_manager::find_locked(const std::string& key) {
  for (auto& e : entries_)
    if (e->key == key) return e.get();
  return nullptr;
}

const hibernation_manager::entry* hibernation_manager::find_locked(
    const std::string& key) const {
  for (const auto& e : entries_)
    if (e->key == key) return e.get();
  return nullptr;
}

void hibernation_manager::add_session(const std::string& key, callbacks cb) {
  NLH_ASSERT_MSG(cb.snapshot_and_release && cb.restore,
                 "hibernation_manager: both callbacks required");
  std::lock_guard<std::mutex> lk(mu_);
  NLH_ASSERT_MSG(find_locked(key) == nullptr,
                 "hibernation_manager: duplicate session key");
  auto e = std::make_unique<entry>();
  e->key = key;
  e->blob_key = "s" + std::to_string(next_blob_id_++);
  e->cb = std::move(cb);
  e->last_used = ++tick_;
  entries_.push_back(std::move(e));
  enforce_cap_locked();
}

void hibernation_manager::remove_session(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const auto& e) { return e->key == key; });
  if (it == entries_.end()) return;
  store_->erase((*it)->blob_key);
  entries_.erase(it);
}

void hibernation_manager::activate(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  entry* e = find_locked(key);
  NLH_ASSERT_MSG(e != nullptr, "hibernation_manager: activate of unknown key");
  NLH_ASSERT_MSG(!e->active, "hibernation_manager: activate does not nest");
  if (!e->resident) restore_locked(*e);
  e->active = true;
  e->last_used = ++tick_;
  enforce_cap_locked();
}

void hibernation_manager::park(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  entry* e = find_locked(key);
  NLH_ASSERT_MSG(e != nullptr, "hibernation_manager: park of unknown key");
  e->active = false;
  e->last_used = ++tick_;
  enforce_cap_locked();
}

bool hibernation_manager::hibernate(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  entry* e = find_locked(key);
  if (e == nullptr || e->active || !e->resident) return false;
  hibernate_locked(*e);
  return true;
}

bool hibernation_manager::hibernated(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const entry* e = find_locked(key);
  return e != nullptr && !e->resident;
}

std::size_t hibernation_manager::session_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::size_t hibernation_manager::resident_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& e : entries_) n += e->resident ? 1 : 0;
  return n;
}

std::size_t hibernation_manager::hibernated_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& e : entries_) n += e->resident ? 0 : 1;
  return n;
}

void hibernation_manager::hibernate_locked(entry& e) {
  NLH_TRACE_SPAN("ckpt/hibernate");
  support::stopwatch sw;
  snapshot_blob blob = e.cb.snapshot_and_release(store_->acquire_buffer());
  bytes_raw_.add(blob.raw_bytes);
  bytes_encoded_.add(blob.bytes.size());
  store_->put(e.blob_key, std::move(blob.bytes));
  e.resident = false;
  hibernates_.add(1);
  hibernate_s_.record(sw.elapsed_s());
}

void hibernation_manager::restore_locked(entry& e) {
  NLH_TRACE_SPAN("ckpt/restore");
  support::stopwatch sw;
  auto buf = store_->acquire_buffer();
  store_->get(e.blob_key, buf);
  e.cb.restore(buf);
  store_->release_buffer(std::move(buf));
  // The blob is stale the moment the session steps again; drop it so
  // bytes_on_disk counts genuinely cold sessions only.
  store_->erase(e.blob_key);
  e.resident = true;
  restores_.add(1);
  restore_s_.record(sw.elapsed_s());
}

void hibernation_manager::enforce_cap_locked() {
  for (;;) {
    std::size_t residents = 0;
    entry* victim = nullptr;
    for (auto& e : entries_) {
      if (!e->resident) continue;
      ++residents;
      if (e->active) continue;  // pinned
      if (victim == nullptr || e->last_used < victim->last_used) victim = e.get();
    }
    if (residents <= opt_.resident_cap || victim == nullptr) return;
    hibernate_locked(*victim);
  }
}

hibernation_manager::stats hibernation_manager::current_stats() const {
  return {hibernates_.value(), restores_.value(), bytes_raw_.value(),
          bytes_encoded_.value()};
}

void hibernation_manager::metrics_into(obs::metrics_snapshot& into,
                                       const std::string& prefix) const {
  into.add_counter(prefix + "hibernates", hibernates_.value());
  into.add_counter(prefix + "restores", restores_.value());
  into.add_counter(prefix + "bytes_raw", bytes_raw_.value());
  into.add_counter(prefix + "bytes_encoded", bytes_encoded_.value());
  const auto raw = bytes_raw_.value();
  const auto enc = bytes_encoded_.value();
  into.add_gauge(prefix + "compression_ratio",
                 enc ? static_cast<double>(raw) / static_cast<double>(enc) : 0.0);
  into.add_gauge(prefix + "sessions", static_cast<double>(session_count()));
  into.add_gauge(prefix + "resident", static_cast<double>(resident_count()));
  into.add_gauge(prefix + "hibernated", static_cast<double>(hibernated_count()));
  into.add_gauge(prefix + "bytes_on_disk",
                 static_cast<double>(store_->bytes_on_disk()));
  into.add_histogram(prefix + "hibernate_seconds", hibernate_s_.summary());
  into.add_histogram(prefix + "restore_seconds", restore_s_.summary());
}

}  // namespace nlh::ckpt

#pragma once
///
/// \file codec.hpp
/// \brief Lossless frame codecs for per-SD field snapshots — the encoding
/// layer of the `src/ckpt/` checkpoint/hibernation subsystem
/// (docs/checkpoint.md).
///
/// A *frame* is one encoded array of doubles (an SD interior, a whole
/// padded field, ...). Every codec is **bitwise lossless**: decode(encode(v))
/// reproduces each double bit for bit, including signed zeros, denormals
/// and NaN payloads — the property the hibernate→restore→run ==
/// uninterrupted-run guarantee rests on (tests/ckpt_test.cpp).
///
/// `raw` stores the IEEE-754 bytes verbatim (the ablation baseline and the
/// PR-7-era checkpoint format, one level down). `delta` is the production
/// codec: values are mapped to 64-bit integer *keys* — exact fixed-point
/// lattice coordinates when the whole frame sits on one (q * 2^s with q in
/// int64), else the order-preserving IEEE bit-cast key — then
/// delta-predicted (against the caller's baseline frame when given: the
/// incremental-checkpoint path; against the previous element otherwise),
/// zigzag-mapped and LEB128-varint packed, with a run-length fast path
/// that collapses runs of zero deltas (constant stretches of a full frame,
/// untouched stretches of an incremental one) to a couple of bytes. The
/// quiescent majority of a localized workload — exactly-zero far field,
/// SDs the activity front has not reached — is what makes compressed
/// checkpoints 3-10x smaller than raw on pulse-type scenarios
/// (bench/micro_checkpoint); dense full-entropy fields (crack,
/// manufactured) stay near 1x, which the bench reports but does not gate.
///

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/serializer.hpp"

namespace nlh::ckpt {

/// Per-frame accounting returned by encode() — the source of the
/// `ckpt/bytes_{raw,encoded}` observables.
struct frame_stats {
  std::uint64_t raw_bytes = 0;      ///< n * sizeof(double)
  std::uint64_t encoded_bytes = 0;  ///< bytes appended to the writer
  /// Codec-specific mode tag ('r' raw; 'f' fixed-point lattice, 'b' IEEE
  /// bit-cast keys for the delta codec).
  char mode = '?';
};

/// Abstract frame codec. Implementations are stateless and thread-safe;
/// the registry hands out process-lifetime singletons.
class codec {
 public:
  virtual ~codec() = default;

  /// Registry key ("raw", "delta").
  virtual std::string name() const = 0;

  /// Append one encoded frame of `vals[0..n)` to `w`. `prev` is either
  /// null (self-contained frame) or `n` baseline doubles the decoder will
  /// present identically — the incremental-checkpoint contract.
  virtual frame_stats encode(const double* vals, std::size_t n,
                             const double* prev, net::archive_writer& w) const = 0;

  /// Decode exactly one frame produced by encode() with the same (n, prev
  /// nullness) into `out[0..n)`; `prev` must hold the encode-side baseline
  /// values when the frame was encoded against one.
  virtual void decode(net::archive_reader& r, double* out, std::size_t n,
                      const double* prev) const = 0;
};

/// Knobs for the dist_solver checkpoint path (`dist_config::checkpoint`)
/// and anything else that emits codec frames.
struct checkpoint_options {
  /// Registry key of the frame codec ("delta", "raw").
  std::string codec = "delta";
  /// Diff each checkpoint against the previous one (per SD, falling back
  /// to a full frame whenever the SD migrated since the baseline).
  bool incremental = true;
};

/// Singletons (stateless, safe to share across threads).
const codec& raw_codec();
const codec& delta_codec();

/// Registry lookup; nullptr for unknown names.
const codec* find_codec(const std::string& name);
/// Sorted registry keys ({"delta", "raw"}).
std::vector<std::string> codec_names();

// --------------------------------------------------------------- details --
// Exposed for direct property testing (tests/ckpt_test.cpp) and reuse; not
// part of the stable surface.
namespace detail {

/// Order-preserving bijection double bits <-> uint64: negative values map
/// below positives, so keys of numerically close same-sign doubles are
/// numerically close integers. Total (works on every bit pattern).
std::uint64_t ieee_key(double v);
double ieee_unkey(std::uint64_t k);

/// Zigzag mapping of a wrapping signed delta into the small-magnitude
/// corner of uint64.
std::uint64_t zigzag(std::uint64_t delta);
std::uint64_t unzigzag(std::uint64_t z);

/// LEB128 base-128 varint (1..10 bytes).
void write_varint(net::archive_writer& w, std::uint64_t v);
std::uint64_t read_varint(net::archive_reader& r);

/// True when every value of `vals` is exactly q * 2^scale with q in int64
/// (and |q| < 2^62); fills `q` and `scale` on success — the delta codec's
/// fixed-point lattice fast path.
bool fixed_point_lattice(const double* vals, std::size_t n,
                         std::vector<std::int64_t>& q, int& scale);

}  // namespace detail

}  // namespace nlh::ckpt

#include "ckpt/store.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/tracer.hpp"
#include "support/assert.hpp"

namespace nlh::ckpt {

namespace fs = std::filesystem;

namespace {

/// Keys become file names verbatim, so they must stay flat.
bool flat_key(const std::string& key) {
  return !key.empty() && key.find('/') == std::string::npos &&
         key.find('\\') == std::string::npos && key != "." && key != "..";
}

}  // namespace

checkpoint_store::checkpoint_store(fs::path directory, bool purge_on_close)
    : dir_(std::move(directory)), purge_on_close_(purge_on_close) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  NLH_ASSERT_MSG(!ec && fs::is_directory(dir_), "checkpoint_store: cannot create directory");
}

checkpoint_store::~checkpoint_store() {
  if (purge_on_close_) clear();
}

fs::path checkpoint_store::blob_path(const std::string& key) const {
  NLH_ASSERT_MSG(flat_key(key), "checkpoint_store: key must be a flat name");
  return dir_ / (key + ".ckpt");
}

void checkpoint_store::put(const std::string& key, net::byte_buffer bytes) {
  NLH_TRACE_SPAN_ARG("ckpt/store_put", static_cast<std::uint64_t>(bytes.size()));
  const auto path = blob_path(key);
  {
    // Plain stdio keeps this dependency-free; the blob is rewritten whole,
    // so a same-key reader can never observe a torn file under the
    // manager's per-session serialization.
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    NLH_ASSERT_MSG(f != nullptr, "checkpoint_store: cannot open blob for write");
    if (!bytes.empty()) {
      const auto written = std::fwrite(bytes.data(), 1, bytes.size(), f);
      NLH_ASSERT_MSG(written == bytes.size(), "checkpoint_store: short write");
    }
    std::fclose(f);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const auto& e) { return e.first == key; });
    if (it == entries_.end())
      entries_.emplace_back(key, bytes.size());
    else
      it->second = bytes.size();
  }
  release_buffer(std::move(bytes));
}

void checkpoint_store::get(const std::string& key, net::byte_buffer& out) const {
  NLH_TRACE_SPAN("ckpt/store_get");
  {
    std::lock_guard<std::mutex> lk(mu_);
    const bool known = std::any_of(entries_.begin(), entries_.end(),
                                   [&](const auto& e) { return e.first == key; });
    NLH_ASSERT_MSG(known, "checkpoint_store: get of absent key");
  }
  const auto path = blob_path(key);
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  NLH_ASSERT_MSG(f != nullptr, "checkpoint_store: cannot open blob for read");
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  NLH_ASSERT_MSG(len >= 0, "checkpoint_store: cannot stat blob");
  std::fseek(f, 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    const auto got = std::fread(out.data(), 1, out.size(), f);
    NLH_ASSERT_MSG(got == out.size(), "checkpoint_store: short read");
  }
  std::fclose(f);
}

bool checkpoint_store::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == key; });
}

bool checkpoint_store::erase(const std::string& key) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const auto& e) { return e.first == key; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
  }
  std::error_code ec;
  fs::remove(blob_path(key), ec);
  return true;
}

void checkpoint_store::clear() {
  std::vector<std::pair<std::string, std::uint64_t>> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    doomed.swap(entries_);
  }
  for (const auto& [key, size] : doomed) {
    std::error_code ec;
    fs::remove(blob_path(key), ec);
  }
}

std::vector<std::string> checkpoint_store::keys() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, size] : entries_) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t checkpoint_store::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::uint64_t checkpoint_store::bytes_on_disk() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, size] : entries_) total += size;
  return total;
}

net::byte_buffer checkpoint_store::acquire_buffer() const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_.empty()) return {};
  auto buf = std::move(pool_.back());
  pool_.pop_back();
  return buf;
}

void checkpoint_store::release_buffer(net::byte_buffer buf) const {
  buf.clear();
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_.push_back(std::move(buf));
}

}  // namespace nlh::ckpt

#pragma once
///
/// \file store.hpp
/// \brief Cold storage for encoded checkpoint blobs.
///
/// The checkpoint_store owns a directory of key-named blob files and a
/// recirculating byte-buffer pool: every put() consumes a buffer the caller
/// usually obtained from acquire_buffer() (so an `archive_writer(reuse)`
/// keeps its warm capacity), and every get() decodes through a pooled
/// buffer the caller hands back with release_buffer(). Once the pool is
/// warm, a hibernate/restore cycle allocates nothing on the byte-buffer
/// side — the NVMSorting pooled-partition shape applied to session state.
///
/// Thread-safe; keys are flat names (no path separators). Files are
/// removed on erase()/clear() and, for stores created with
/// purge_on_close, on destruction.
///

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "net/serializer.hpp"

namespace nlh::ckpt {

class checkpoint_store {
 public:
  /// Opens (creating if needed) `directory` as the blob root.
  /// `purge_on_close` deletes every blob this store wrote when it is
  /// destroyed — the hibernation default, where blobs are scratch state.
  explicit checkpoint_store(std::filesystem::path directory,
                            bool purge_on_close = true);
  ~checkpoint_store();

  checkpoint_store(const checkpoint_store&) = delete;
  checkpoint_store& operator=(const checkpoint_store&) = delete;

  /// Write `bytes` as the blob for `key`, replacing any previous blob.
  /// The buffer is recycled into the pool after the write.
  void put(const std::string& key, net::byte_buffer bytes);

  /// Read the blob for `key` into `out` (capacity reused). Asserts the
  /// key exists — callers track membership via contains().
  void get(const std::string& key, net::byte_buffer& out) const;

  bool contains(const std::string& key) const;

  /// Drop the blob for `key`; false when absent.
  bool erase(const std::string& key);

  /// Remove every blob this store wrote.
  void clear();

  /// Sorted keys of the stored blobs.
  std::vector<std::string> keys() const;

  std::size_t size() const;

  /// Sum of stored blob sizes in bytes (as written, i.e. encoded).
  std::uint64_t bytes_on_disk() const;

  const std::filesystem::path& directory() const { return dir_; }

  /// Recirculating buffer pool: feed acquire_buffer() into
  /// `archive_writer(reuse)` (or use as a get() target), hand the storage
  /// back with release_buffer() when done.
  net::byte_buffer acquire_buffer() const;
  void release_buffer(net::byte_buffer buf) const;

 private:
  std::filesystem::path blob_path(const std::string& key) const;

  std::filesystem::path dir_;
  bool purge_on_close_;

  mutable std::mutex mu_;
  // key -> encoded size, the authoritative membership map (bytes_on_disk
  // without stat()ing, and the purge list on close).
  std::vector<std::pair<std::string, std::uint64_t>> entries_;

  mutable std::mutex pool_mu_;
  mutable std::vector<net::byte_buffer> pool_;
};

}  // namespace nlh::ckpt

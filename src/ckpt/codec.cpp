#include "ckpt/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/assert.hpp"

namespace nlh::ckpt {

namespace detail {

std::uint64_t ieee_key(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  // Negatives: flip every bit so more-negative doubles get smaller keys.
  // Non-negatives: set the sign bit so they land above every negative.
  return (b >> 63) ? ~b : (b | 0x8000000000000000ull);
}

double ieee_unkey(std::uint64_t k) {
  const std::uint64_t b = (k & 0x8000000000000000ull) ? (k ^ 0x8000000000000000ull) : ~k;
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

std::uint64_t zigzag(std::uint64_t delta) {
  // Interpret the wrapping difference as signed and fold the sign into
  // bit 0, so small |delta| in either direction packs into few bytes.
  const auto d = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(d) << 1) ^ static_cast<std::uint64_t>(d >> 63);
}

std::uint64_t unzigzag(std::uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

void write_varint(net::archive_writer& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.write_byte(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.write_byte(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(net::archive_reader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    const std::uint8_t b = r.read_byte();
    NLH_ASSERT_MSG(shift < 64, "ckpt: varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
  }
  NLH_ASSERT_MSG(false, "ckpt: varint too long");
  return 0;
}

namespace {

/// Decompose a finite double into odd-significand form v = q * 2^s
/// (q == 0 for +0.0). False for non-finite values and for -0.0, which has
/// no lattice representative distinct from +0.0.
bool decompose(double v, std::int64_t& q, int& s) {
  if (!std::isfinite(v)) return false;
  if (v == 0.0) {
    if (std::signbit(v)) return false;
    q = 0;
    s = std::numeric_limits<int>::max();  // neutral under min()
    return true;
  }
  int e;
  const double m = std::frexp(v, &e);  // v = m * 2^e, 0.5 <= |m| < 1
  auto mant = static_cast<std::int64_t>(std::ldexp(m, 53));  // exact: 53-bit int
  s = e - 53;
  while ((mant & 1) == 0) {
    mant >>= 1;
    ++s;
  }
  q = mant;
  return true;
}

}  // namespace

bool fixed_point_lattice(const double* vals, std::size_t n,
                         std::vector<std::int64_t>& q, int& scale) {
  q.resize(n);
  std::vector<int> per_scale(n);
  scale = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < n; ++i) {
    if (!decompose(vals[i], q[i], per_scale[i])) return false;
    scale = std::min(scale, per_scale[i]);
  }
  if (scale == std::numeric_limits<int>::max()) scale = 0;  // all-zero frame
  for (std::size_t i = 0; i < n; ++i) {
    if (q[i] == 0) continue;
    const int shift = per_scale[i] - scale;
    // Keep |q| < 2^62 so key deltas never overflow-surprise and the
    // decoder's (double)q stays exact (the shift only appends zero bits).
    if (shift >= 62) return false;
    const std::int64_t lim = std::int64_t{1} << (62 - shift);
    if (q[i] >= lim || q[i] <= -lim) return false;
    q[i] <<= shift;
  }
  return true;
}

}  // namespace detail

namespace {

using detail::ieee_key;
using detail::ieee_unkey;
using detail::read_varint;
using detail::unzigzag;
using detail::write_varint;
using detail::zigzag;

class raw_codec_impl final : public codec {
 public:
  std::string name() const override { return "raw"; }

  frame_stats encode(const double* vals, std::size_t n, const double* /*prev*/,
                     net::archive_writer& w) const override {
    const auto before = w.size();
    w.write_byte('r');
    w.write_raw(vals, n * sizeof(double));
    return {n * sizeof(double), w.size() - before, 'r'};
  }

  void decode(net::archive_reader& r, double* out, std::size_t n,
              const double* /*prev*/) const override {
    const auto mode = r.read_byte();
    NLH_ASSERT_MSG(mode == 'r', "ckpt: raw codec frame expected");
    r.read_raw(out, n * sizeof(double));
  }
};

/// One encoded group of the delta stream: ctrl = (count << 1) | zero_flag.
/// zero_flag set → `count` zero deltas and nothing else; clear → `count`
/// literal zigzag varints follow.
constexpr std::size_t kMinZeroRun = 2;  // below this a literal is no larger

class delta_codec_impl final : public codec {
 public:
  std::string name() const override { return "delta"; }

  frame_stats encode(const double* vals, std::size_t n, const double* prev,
                     net::archive_writer& w) const override {
    const auto before = w.size();

    // Pick the key space: the fixed-point lattice when the frame (and the
    // baseline, which the decoder must be able to quantize with the same
    // scale) sits on one exactly, else order-preserving IEEE bit keys.
    std::vector<std::int64_t> q;
    int scale = 0;
    bool fixed = detail::fixed_point_lattice(vals, n, q, scale);
    std::vector<std::int64_t> qprev;
    if (fixed && prev) {
      int pscale = 0;
      std::vector<std::int64_t> tmp;
      fixed = detail::fixed_point_lattice(prev, n, tmp, pscale) &&
              merge_lattices(q, scale, tmp, pscale);
      if (fixed) qprev = std::move(tmp);
    }

    std::vector<std::uint64_t> keys(n);
    if (fixed) {
      w.write_byte('f');
      write_varint(w, zigzag(static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(scale))));
      for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<std::uint64_t>(q[i]);
    } else {
      w.write_byte('b');
      for (std::size_t i = 0; i < n; ++i) keys[i] = ieee_key(vals[i]);
    }

    // Predict: baseline keys for incremental frames, the previous element
    // (seeded with key-of-zero so leading quiescent stretches run-length
    // away) for self-contained ones. All arithmetic wraps mod 2^64.
    std::vector<std::uint64_t> z(n);
    std::uint64_t pred = fixed ? 0 : ieee_key(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p =
          prev ? (fixed ? static_cast<std::uint64_t>(qprev[i]) : ieee_key(prev[i]))
               : pred;
      z[i] = zigzag(keys[i] - p);
      pred = keys[i];
    }

    // Group emission: zero runs of length >= kMinZeroRun become a single
    // ctrl varint; everything between them a literal group.
    std::size_t lit_begin = 0;
    std::size_t i = 0;
    while (i < n) {
      if (z[i] == 0) {
        std::size_t j = i;
        while (j < n && z[j] == 0) ++j;
        if (j - i >= kMinZeroRun) {
          flush_literals(w, z, lit_begin, i);
          write_varint(w, (static_cast<std::uint64_t>(j - i) << 1) | 1);
          lit_begin = j;
        }
        i = j;
      } else {
        ++i;
      }
    }
    flush_literals(w, z, lit_begin, n);

    return {n * sizeof(double), w.size() - before, fixed ? 'f' : 'b'};
  }

  void decode(net::archive_reader& r, double* out, std::size_t n,
              const double* prev) const override {
    const auto mode = r.read_byte();
    NLH_ASSERT_MSG(mode == 'f' || mode == 'b', "ckpt: delta codec frame expected");
    const bool fixed = mode == 'f';
    int scale = 0;
    if (fixed)
      scale = static_cast<int>(
          static_cast<std::int64_t>(unzigzag(read_varint(r))));

    std::uint64_t pred = fixed ? 0 : ieee_key(0.0);
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t ctrl = read_varint(r);
      std::uint64_t count = ctrl >> 1;
      NLH_ASSERT_MSG(count >= 1 && count <= n - i, "ckpt: frame group overruns");
      const bool zeros = ctrl & 1;
      for (; count; --count, ++i) {
        const std::uint64_t delta = zeros ? 0 : unzigzag(read_varint(r));
        const std::uint64_t p =
            prev ? (fixed ? quantize(prev[i], scale) : ieee_key(prev[i])) : pred;
        const std::uint64_t key = p + delta;
        out[i] = fixed ? std::ldexp(static_cast<double>(
                                        static_cast<std::int64_t>(key)),
                                    scale)
                       : ieee_unkey(key);
        pred = key;
      }
    }
  }

 private:
  /// Rescale both integer arrays onto the finer of the two lattices; false
  /// when the rescale would overflow the 2^62 budget.
  static bool merge_lattices(std::vector<std::int64_t>& a, int& as,
                             std::vector<std::int64_t>& b, int bs) {
    const int common = std::min(as, bs);
    if (!rescale(a, as - common) || !rescale(b, bs - common)) return false;
    as = common;
    return true;
  }

  static bool rescale(std::vector<std::int64_t>& q, int shift) {
    if (shift == 0) return true;
    if (shift >= 62) return std::all_of(q.begin(), q.end(),
                                        [](std::int64_t v) { return v == 0; });
    const std::int64_t lim = std::int64_t{1} << (62 - shift);
    for (auto& v : q) {
      if (v >= lim || v <= -lim) return false;
      v <<= shift;
    }
    return true;
  }

  /// Baseline value -> lattice coordinate; exact by the encoder's merged
  /// lattice check.
  static std::uint64_t quantize(double v, int scale) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::ldexp(v, -scale)));
  }

  static void flush_literals(net::archive_writer& w,
                             const std::vector<std::uint64_t>& z,
                             std::size_t begin, std::size_t end) {
    if (begin == end) return;
    write_varint(w, static_cast<std::uint64_t>(end - begin) << 1);
    for (std::size_t k = begin; k < end; ++k) write_varint(w, z[k]);
  }
};

}  // namespace

const codec& raw_codec() {
  static const raw_codec_impl c;
  return c;
}

const codec& delta_codec() {
  static const delta_codec_impl c;
  return c;
}

const codec* find_codec(const std::string& name) {
  if (name == "raw") return &raw_codec();
  if (name == "delta") return &delta_codec();
  return nullptr;
}

std::vector<std::string> codec_names() { return {"delta", "raw"}; }

}  // namespace nlh::ckpt

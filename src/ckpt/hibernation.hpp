#pragma once
///
/// \file hibernation.hpp
/// \brief LRU hibernation of parked sessions to cold storage.
///
/// The hibernation_manager holds the full roster of registered sessions
/// but lets only `resident_cap` of them keep their solver state in memory.
/// A session is *active* while a caller is stepping it (pinned, never
/// evicted) and *parked* between uses; when residents exceed the cap, the
/// least-recently-used parked session is snapshotted through its client
/// callback, compressed frames land in a checkpoint_store blob, and the
/// in-memory state is released. activate() transparently restores a
/// hibernated session before handing it back — the caller never sees the
/// round trip except in the `ckpt/*` latency histograms.
///
/// The manager is generic over what a "session" is: clients register two
/// callbacks per key (snapshot-and-release, restore-from-bytes), which is
/// how `api::solver_handle` plugs in without this layer depending on the
/// api facade. Callbacks run under the manager mutex, so hibernates and
/// restores serialize across sessions; per-session callers must already be
/// serialized (batch_runner admission guarantees it) since activate/park
/// pairs for one key must not interleave.
///

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "net/serializer.hpp"
#include "obs/metrics.hpp"

namespace nlh::ckpt {

/// Knobs surfaced as `api::session_options::hibernation` and the
/// batch_runner equivalents.
struct hibernation_options {
  bool enabled = false;
  /// Soft ceiling on in-memory sessions: parked residents are evicted
  /// down to it, active sessions are never evicted (so a burst of
  /// concurrently-active sessions may exceed it).
  std::size_t resident_cap = 8;
  /// Blob directory; empty picks a unique scratch directory under the
  /// system temp path, purged when the manager dies.
  std::string directory;
  /// Frame codec for snapshots ("delta", "raw").
  std::string codec = "delta";

  /// Empty string when valid, else a description of the first problem.
  std::string validate() const;
};

/// What a snapshot callback returns: the encoded session state plus the
/// raw (pre-codec) byte count for the compression-ratio observables.
struct snapshot_blob {
  net::byte_buffer bytes;
  std::uint64_t raw_bytes = 0;
};

class hibernation_manager {
 public:
  struct callbacks {
    /// Serialize the session's full solver state into a blob (the passed
    /// buffer is pooled scratch to encode into) and release the in-memory
    /// state. Must leave the session restorable via `restore`.
    std::function<snapshot_blob(net::byte_buffer reuse)> snapshot_and_release;
    /// Rebuild in-memory state from bytes produced by snapshot_and_release.
    std::function<void(const net::byte_buffer&)> restore;
  };

  /// `opt` must validate clean; `opt.enabled` is the caller's business
  /// (a constructed manager always manages).
  explicit hibernation_manager(hibernation_options opt);
  ~hibernation_manager();

  hibernation_manager(const hibernation_manager&) = delete;
  hibernation_manager& operator=(const hibernation_manager&) = delete;

  /// Register a session (initially resident and parked). Parks may evict
  /// it later; registering can evict *other* parked sessions to honor the
  /// cap.
  void add_session(const std::string& key, callbacks cb);

  /// Drop a session and any cold blob it left behind.
  void remove_session(const std::string& key);

  /// Pin `key` for use, restoring it from cold storage first when needed.
  /// Balance every activate() with park(); activates don't nest.
  void activate(const std::string& key);

  /// Unpin `key`; it becomes LRU-eligible and the cap is re-enforced.
  void park(const std::string& key);

  /// Hibernate `key` immediately. False when it is active, unknown or
  /// already cold.
  bool hibernate(const std::string& key);

  bool hibernated(const std::string& key) const;

  std::size_t session_count() const;
  std::size_t resident_count() const;
  std::size_t hibernated_count() const;

  const hibernation_options& options() const { return opt_; }
  checkpoint_store& store() { return *store_; }

  /// Lifetime totals for programmatic checks (bench gate, batch summary).
  struct stats {
    std::uint64_t hibernates = 0;
    std::uint64_t restores = 0;
    std::uint64_t bytes_raw = 0;      ///< pre-codec bytes across hibernates
    std::uint64_t bytes_encoded = 0;  ///< blob bytes across hibernates
  };
  stats current_stats() const;

  /// Append the `ckpt/*` observables (counters, residency gauges,
  /// compression ratio, hibernate/restore latency histograms).
  void metrics_into(obs::metrics_snapshot& into,
                    const std::string& prefix = "ckpt/") const;

 private:
  struct entry {
    std::string key;
    /// Flat blob name inside the store ("s<id>"): session keys are
    /// caller-chosen and may contain path separators the store rejects.
    std::string blob_key;
    callbacks cb;
    bool resident = true;
    bool active = false;
    std::uint64_t last_used = 0;  ///< LRU tick, bumped on activate/park
  };

  entry* find_locked(const std::string& key);
  const entry* find_locked(const std::string& key) const;
  void hibernate_locked(entry& e);
  void restore_locked(entry& e);
  void enforce_cap_locked();

  hibernation_options opt_;
  std::unique_ptr<checkpoint_store> store_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<entry>> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_blob_id_ = 0;

  obs::counter hibernates_;
  obs::counter restores_;
  obs::counter bytes_raw_;
  obs::counter bytes_encoded_;
  obs::histogram hibernate_s_;
  obs::histogram restore_s_;
};

}  // namespace nlh::ckpt

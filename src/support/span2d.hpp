#pragma once
///
/// \file span2d.hpp
/// \brief Non-owning 2-D view over contiguous row-major storage.
///
/// The nonlocal solver stores every field (temperature, source, exact
/// solution) as a flat `std::vector<double>` indexed by (row, col); span2d
/// provides bounds-checked 2-D access without copying.
///

#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace nlh::support {

/// Non-owning row-major 2-D view. `T` may be const for read-only views.
template <class T>
class span2d {
 public:
  span2d() = default;
  span2d(T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  /// View over a vector interpreted as rows x cols (must match exactly).
  template <class U>
  span2d(std::vector<U>& v, std::size_t rows, std::size_t cols)
      : data_(v.data()), rows_(rows), cols_(cols) {
    NLH_ASSERT_MSG(v.size() == rows * cols, "span2d: vector size mismatch");
  }
  template <class U>
  span2d(const std::vector<U>& v, std::size_t rows, std::size_t cols)
      : data_(v.data()), rows_(rows), cols_(cols) {
    NLH_ASSERT_MSG(v.size() == rows * cols, "span2d: vector size mismatch");
  }

  T& operator()(std::size_t r, std::size_t c) const {
    NLH_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* row(std::size_t r) const {
    NLH_ASSERT(r < rows_);
    return data_ + r * cols_;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  T* data() const { return data_; }
  bool empty() const { return size() == 0; }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace nlh::support

#pragma once
///
/// \file assert.hpp
/// \brief Always-on assertion macro with message, used across the library.
///
/// Unlike `assert`, NLH_ASSERT stays active in Release builds: the invariants
/// it guards (SD conservation, partition coverage, ghost-geometry bounds) are
/// cheap relative to the numerical kernels and failures must never pass
/// silently in a solver.
///

#include <cstdio>
#include <cstdlib>

namespace nlh::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "NLH_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace nlh::support

#define NLH_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) ::nlh::support::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NLH_ASSERT_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::nlh::support::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

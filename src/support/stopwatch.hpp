#pragma once
///
/// \file stopwatch.hpp
/// \brief Monotonic wall-clock stopwatch used for kernel calibration and the
/// real (non-simulated) busy-time performance counters.
///

#include <chrono>

namespace nlh::support {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace nlh::support

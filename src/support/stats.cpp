#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace nlh::support {

void running_stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void running_stats::reset() { *this = running_stats{}; }

double running_stats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  running_stats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  NLH_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double imbalance_cov(const std::vector<double>& busy_times) {
  const double m = mean(busy_times);
  if (m == 0.0) return 0.0;
  return stddev(busy_times) / m;
}

double imbalance_ratio(const std::vector<double>& busy_times) {
  if (busy_times.empty()) return 0.0;
  const double m = mean(busy_times);
  if (m == 0.0) return 0.0;
  const double mx = *std::max_element(busy_times.begin(), busy_times.end());
  return mx / m - 1.0;
}

}  // namespace nlh::support

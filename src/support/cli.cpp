#include "support/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>

namespace nlh::support {

cli::cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        kv_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "true";  // bare flag
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool cli::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string cli::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int cli::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  // Malformed, trailing-garbage or out-of-range values keep the default
  // instead of the silent 0 / truncated garbage std::atoi would produce.
  if (end == it->second.c_str() || *end != '\0') return def;
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    return def;
  return static_cast<int>(v);
}

double cli::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return def;
  return v;
}

bool cli::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool cli::get_flag(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::string v = it->second;
  for (auto& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return def;  // malformed value keeps the default, like get_int/get_double
}

std::string cli::get_string(const std::string& key, const std::string& def,
                            const std::vector<std::string>& allowed) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  for (const auto& a : allowed)
    if (it->second == a) return it->second;
  return def;  // value outside the closed set keeps the default
}

std::string cli::get_string(const std::string& key, const std::string& def) const {
  return get(key, def);
}

}  // namespace nlh::support

#pragma once
///
/// \file cli.hpp
/// \brief Minimal `--key value` / `--flag` command-line parser so every
/// example and bench binary exposes its parameters without a dependency.
///

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nlh::support {

class cli {
 public:
  cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Hardened boolean: recognizes true/1/yes/on and false/0/no/off (any
  /// case); anything else keeps the default instead of silently reading as
  /// false the way get_bool does (same malformed-input contract as
  /// get_int/get_double).
  bool get_flag(const std::string& key, bool def) const;

  /// get() with a closed value set: returns the stored value only when it
  /// is one of `allowed`, otherwise the default — so a typo'd
  /// `--policy priorty` keeps the documented default instead of silently
  /// selecting an unintended branch in hand-rolled string comparisons.
  std::string get_string(const std::string& key, const std::string& def,
                         const std::vector<std::string>& allowed) const;
  /// Unvalidated synonym for get(), for symmetry with the typed getters.
  std::string get_string(const std::string& key, const std::string& def) const;

  /// Closed string set mapped straight to an enum: an absent key yields
  /// `def`; a present value outside `table` throws std::invalid_argument
  /// naming the key, the offending value and every valid spelling. Use this
  /// over get_string when a typo should stop the program with a usable
  /// message rather than silently pick the default.
  template <class E>
  E get_enum(const std::string& key, E def,
             const std::vector<std::pair<std::string, E>>& table) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    for (const auto& [name, value] : table)
      if (name == it->second) return value;
    std::string valid;
    for (const auto& [name, value] : table) {
      (void)value;
      if (!valid.empty()) valid += ", ";
      valid += name;
    }
    throw std::invalid_argument("--" + key + ": unknown value '" + it->second +
                                "' (valid: " + valid + ")");
  }

  /// Positional arguments (anything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace nlh::support

#pragma once
///
/// \file cli.hpp
/// \brief Minimal `--key value` / `--flag` command-line parser so every
/// example and bench binary exposes its parameters without a dependency.
///

#include <string>
#include <unordered_map>
#include <vector>

namespace nlh::support {

class cli {
 public:
  cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Positional arguments (anything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace nlh::support

#pragma once
///
/// \file stats.hpp
/// \brief Streaming and batch descriptive statistics used by the benchmark
/// harness and the load balancer's busy-time analysis.
///

#include <cstddef>
#include <vector>

namespace nlh::support {

/// Welford streaming accumulator: numerically stable mean/variance without
/// storing samples. Used for per-node busy-time summaries.
class running_stats {
 public:
  void add(double x);
  void merge(const running_stats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a sample vector (copied so the input stays unsorted).
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);
double percentile(std::vector<double> xs, double p);  ///< p in [0,100]

/// Coefficient of variation of busy times: the paper's implicit imbalance
/// signal ("significantly different busy times ... indicate a load
/// imbalance"). 0 = perfectly balanced.
double imbalance_cov(const std::vector<double>& busy_times);

/// max/mean - 1: classic load-imbalance metric (0 = perfect).
double imbalance_ratio(const std::vector<double>& busy_times);

}  // namespace nlh::support

#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace nlh::support {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NLH_ASSERT(!headers_.empty());
}

table& table::row() {
  rows_.emplace_back();
  return *this;
}

table& table::add(const std::string& cell) {
  NLH_ASSERT_MSG(!rows_.empty(), "table::add before table::row");
  NLH_ASSERT_MSG(rows_.back().size() < headers_.size(), "table: too many cells in row");
  rows_.back().push_back(cell);
  return *this;
}

table& table::add(double v, int precision) { return add(fmt_double(v, precision)); }

table& table::add(long long v) { return add(std::to_string(v)); }

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << cell;
      if (c + 1 < headers_.size())
        os << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace nlh::support

#pragma once
///
/// \file table.hpp
/// \brief Aligned console table + CSV writer. Every benchmark harness prints
/// its figure/table data through this so the output format is uniform and
/// machine-parsable.
///

#include <iosfwd>
#include <string>
#include <vector>

namespace nlh::support {

/// Column-aligned text table. Cells are strings; helpers format numerics.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls fill it left to right.
  table& row();
  table& add(const std::string& cell);
  table& add(double v, int precision = 4);
  table& add(long long v);
  table& add(int v) { return add(static_cast<long long>(v)); }
  table& add(std::size_t v) { return add(static_cast<long long>(v)); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with padded columns and a header underline.
  void print(std::ostream& os) const;

  /// Render as CSV (comma-separated, no quoting of commas: callers keep
  /// cells comma-free by construction).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed precision without trailing garbage.
std::string fmt_double(double v, int precision = 4);

}  // namespace nlh::support

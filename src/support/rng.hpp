#pragma once
///
/// \file rng.hpp
/// \brief Deterministic, seedable PRNG (xoshiro256**) for reproducible
/// workloads, capacity traces and property-test inputs.
///
/// std::mt19937 distributions are not guaranteed bit-identical across
/// standard-library implementations; the experiment harness needs exact
/// reproducibility, so both the generator and the distributions live here.
///

#include <cmath>
#include <cstdint>
#include <limits>

namespace nlh::support {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& w : s_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return (next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive, unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() - std::numeric_limits<std::uint64_t>::max() % span;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + v % span;
  }

  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return mean + stddev * u * m;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace nlh::support

#pragma once
///
/// \file traffic_gen.hpp
/// \brief Deterministic open-loop traffic generation for the `src/svc/`
/// front-end: Poisson arrivals modulated by bursty on/off phases, a
/// tenant/class mix, and a replay driver (docs/service.md).
///
/// `generate_traffic` is a pure function of `traffic_options` (the PRNG is
/// the repo's seedable xoshiro256**, bit-stable across platforms), so a
/// trace — every arrival time, tenant, class and job shape — is exactly
/// reproducible from its seed; `trace_checksum` fingerprints one for the
/// determinism gate in `BENCH_service.json`. Arrivals are open loop: the
/// offered load never waits for the service (the heavy-traffic model —
/// thousands of independent clients do not slow down because the server
/// queues), which is what makes saturation and shedding reachable in a
/// bench.
///
/// The arrival process is a two-state MMPP: exponential interarrivals at
/// `mean_rate` in the quiet phase and `mean_rate * burst_factor` in the
/// burst phase, with exponentially distributed phase durations — bursty
/// enough to exercise queue caps and deadline shedding, simple enough to
/// reason about the offered rate.
///

#include <cstdint>
#include <string>
#include <vector>

#include "amt/future.hpp"
#include "svc/qos.hpp"
#include "svc/service.hpp"

namespace nlh::svc {

struct traffic_options {
  std::uint64_t seed = 42;
  /// Stop after this many arrivals (0 = use duration_seconds instead).
  int arrivals = 200;
  /// When arrivals == 0: generate until trace time reaches this.
  double duration_seconds = 0.0;
  /// Quiet-phase arrival rate (jobs per second of trace time).
  double mean_rate = 100.0;
  /// Burst-phase rate multiplier (>= 1; 1 = plain Poisson).
  double burst_factor = 4.0;
  double mean_on_seconds = 0.25;  ///< exponential mean of burst phases
  double mean_off_seconds = 0.75; ///< exponential mean of quiet phases
  int tenants = 8;                ///< tenant ids drawn uniformly
  /// Class mix; soak gets the remainder of 1.
  double interactive_fraction = 0.5;
  double batch_fraction = 0.3;
  // --- job shape (per class step budgets model the latency hierarchy) ---
  int n = 24;
  int eps_factor = 2;
  int steps_interactive = 2;
  int steps_batch = 6;
  int steps_soak = 12;
  std::string scenario = "manufactured";
  std::string kernel_backend;  ///< empty = process default

  std::vector<std::string> validate() const;
};

/// One generated submission.
struct arrival {
  double t = 0.0;  ///< seconds from trace start
  std::uint64_t id = 0;
  std::string tenant;
  qos_class cls = qos_class::batch;
  svc_job job;
};

/// Deterministic trace from `opt` (throws std::invalid_argument on
/// validation failure). Arrival times strictly increase.
std::vector<arrival> generate_traffic(const traffic_options& opt);

/// FNV-1a fingerprint over every field of every arrival (times quantized
/// to nanoseconds) — equal checksums <=> equal offered load.
std::uint64_t trace_checksum(const std::vector<arrival>& trace);

/// Replay `trace` into `svc` open loop: each arrival is submitted at
/// `t * time_scale` seconds of wall time after the first (time_scale 0 =
/// submit back-to-back, preserving order). Returns one future per arrival,
/// in trace order.
std::vector<amt::future<svc_result>> replay(service_loop& svc,
                                            const std::vector<arrival>& trace,
                                            double time_scale);

}  // namespace nlh::svc

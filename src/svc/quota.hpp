#pragma once
///
/// \file quota.hpp
/// \brief Per-tenant policing for the `src/svc/` front-end: token-bucket
/// rate limiting plus an in-flight cap, with a three-way decision —
/// `admit`, `delay` or `shed` (docs/service.md).
///
/// Each tenant owns a token bucket (`rate_per_second` refill up to `burst`
/// capacity; one token per job) and an `max_in_flight` cap on jobs that
/// have been admitted but not yet finished. Policing one submission:
///
///   - in-flight at the cap            -> `shed` (fail fast — the tenant
///     already holds its full share of the service; queueing more for it
///     would just convert its overload into everyone's latency)
///   - a token available               -> `admit` (token debited)
///   - under the cap, bucket empty     -> `delay`: the job is *reserved*
///     the next future token (the bucket balance goes negative, so
///     successive delayed jobs line up at rate-spaced `ready_at` times)
///     and sits in its class queue until that time arrives.
///
/// The distinction matters for fairness: a tenant briefly over its rate is
/// smoothed (`delay`), not punished; only a tenant monopolizing in-flight
/// capacity is refused outright (`shed`). Time is passed in by the caller
/// (seconds on the service clock), which keeps the ledger deterministic
/// under test-controlled clocks.
///

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nlh::svc {

/// What policing decided for one submission.
enum class policing_decision {
  admit,  ///< run as soon as the scheduler has a slot
  delay,  ///< rate-limited: eligible at decision::ready_at, not before
  shed,   ///< refused: fail the job fast with a distinct error
};

const char* to_string(policing_decision d);

/// Per-tenant limits; the service applies `service_options::default_quota`
/// unless a per-tenant override is registered.
struct tenant_quota {
  double rate_per_second = 50.0;  ///< sustained jobs/second (> 0)
  double burst = 10.0;            ///< bucket capacity: max unspent credit (>= 1)
  int max_in_flight = 8;          ///< admitted-but-unfinished cap (>= 1)

  /// Every validation failure, one message each; empty = valid.
  std::vector<std::string> validate() const;
};

/// Thread-safe per-tenant bucket + in-flight ledger with `svc/quota/*`
/// observables.
class quota_ledger {
 public:
  explicit quota_ledger(tenant_quota defaults = {});

  /// Install a per-tenant override (replaces the default for that tenant;
  /// takes effect on its next police() call, existing debt preserved).
  void set_quota(const std::string& tenant, tenant_quota q);

  struct decision {
    policing_decision action = policing_decision::admit;
    /// When `action == delay`: the service-clock second at which the
    /// reserved token exists and the job becomes eligible to start.
    double ready_at = 0.0;
  };

  /// Police one submission at service-clock time `now_s`. On admit/delay
  /// the tenant's in-flight count is taken immediately (the job is
  /// committed); `release` must be called exactly once when it finishes
  /// (or is shed downstream, e.g. by deadline expiry or drain).
  decision police(const std::string& tenant, double now_s);

  /// Finish one admitted/delayed job of `tenant`.
  void release(const std::string& tenant);

  /// Current in-flight count (0 for unknown tenants).
  int in_flight(const std::string& tenant) const;
  /// Tenants ever seen.
  std::size_t tenant_count() const;

  std::uint64_t admitted() const { return admitted_.value(); }
  std::uint64_t delayed() const { return delayed_.value(); }
  std::uint64_t shed() const { return shed_.value(); }

  /// Append the `svc/quota/*` view: admitted/delayed/shed counters, tenant
  /// gauge and the distribution of imposed delays.
  void metrics_into(obs::metrics_snapshot& snap) const;

 private:
  struct bucket {
    tenant_quota q;
    double tokens = 0.0;       ///< may go negative: delayed reservations
    double last_refill = 0.0;  ///< service-clock second of the last refill
    int in_flight = 0;
    bool initialized = false;  ///< tokens start at burst on first police()
  };

  /// Caller holds mu_.
  bucket& bucket_locked(const std::string& tenant);

  tenant_quota defaults_;
  mutable std::mutex mu_;
  std::map<std::string, bucket> buckets_;
  obs::counter admitted_;
  obs::counter delayed_;
  obs::counter shed_;
  obs::histogram delay_hist_;  ///< imposed delay (ready_at - now) in seconds
};

}  // namespace nlh::svc

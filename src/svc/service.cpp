///
/// \file service.cpp
/// \brief service_loop implementation: policing -> classed enqueue ->
/// deficit dispatch -> session execution, with per-class latency
/// accounting and the svc/* metrics view.
///

#include "svc/service.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics_export.hpp"
#include "obs/tracer.hpp"

namespace nlh::svc {

namespace {

int resolved_slots(const service_options& o) {
  return o.max_concurrent == 0 ? static_cast<int>(o.pool_threads)
                               : o.max_concurrent;
}

}  // namespace

std::vector<std::string> validate(const service_options& opt) {
  std::vector<std::string> errs;
  if (opt.pool_threads < 1)
    errs.push_back("service_options.pool_threads: the shared pool needs at "
                   "least 1 worker (got " +
                   std::to_string(opt.pool_threads) + ")");
  if (opt.max_concurrent < 0)
    errs.push_back("service_options.max_concurrent: must be >= 0 (0 = "
                   "pool_threads; got " +
                   std::to_string(opt.max_concurrent) + ")");
  if (opt.pool_threads >= 1 && opt.max_concurrent >= 1 &&
      static_cast<unsigned>(opt.max_concurrent) > opt.pool_threads)
    errs.push_back(
        "service_options.max_concurrent: " + std::to_string(opt.max_concurrent) +
        " slots exceed pool_threads " + std::to_string(opt.pool_threads) +
        "; every running job occupies one worker, so excess slots can never fill");
  if (opt.tick_seconds < 0.0)
    errs.push_back("service_options.tick_seconds: must be >= 0 (0 disables "
                   "the ticker; got " +
                   std::to_string(opt.tick_seconds) + ")");
  for (auto e : opt.qos.validate())
    errs.push_back("service_options." + std::move(e));
  for (auto e : opt.default_quota.validate())
    errs.push_back("service_options.default_quota: " + std::move(e));
  for (const auto& [tenant, q] : opt.tenant_quotas)
    for (auto e : q.validate())
      errs.push_back("service_options.tenant_quotas['" + tenant +
                     "']: " + std::move(e));
  return errs;
}

namespace {

service_options validated(service_options opt) {
  const auto errs = validate(opt);
  if (!errs.empty()) {
    std::ostringstream msg;
    msg << "invalid service_options (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }
  return opt;
}

}  // namespace

service_loop::service_loop(service_options opt)
    : opt_(validated(std::move(opt))),
      epoch_(std::chrono::steady_clock::now()),
      quota_(opt_.default_quota),
      sched_(scheduler_options{opt_.qos, resolved_slots(opt_)}, pool_,
             [this] { return now_s(); }),
      pool_(opt_.pool_threads) {
  for (const auto& [tenant, q] : opt_.tenant_quotas) quota_.set_quota(tenant, q);
  if (opt_.tick_seconds > 0.0) {
    ticker_ = std::thread([this] {
      std::unique_lock<std::mutex> lk(tick_mu_);
      while (!tick_stop_) {
        tick_cv_.wait_for(lk, std::chrono::duration<double>(opt_.tick_seconds));
        if (tick_stop_) break;
        lk.unlock();
        sched_.pump();
        lk.lock();
      }
    });
  }
}

service_loop::~service_loop() {
  // Honor every accepted future first (drained queues were already shed),
  // then stop the ticker; pool_ (declared last) joins its workers while
  // sched_ and the histograms the tasks touch are still alive.
  wait_idle();
  {
    std::lock_guard<std::mutex> lk(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

double service_loop::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

amt::future<svc_result> service_loop::submit(std::string tenant, qos_class cls,
                                             svc_job job) {
  auto ctx = std::make_shared<job_ctx>();
  ctx->tenant = std::move(tenant);
  ctx->cls = cls;
  ctx->job = std::move(job);
  auto fut = ctx->done.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctx->seq = next_seq_++;
    ctx->submitted_s = now_s();
    if (!clock_started_) {
      clock_started_ = true;
      first_submit_s_ = ctx->submitted_s;
    }
  }
  if (ctx->job.label.empty()) ctx->job.label = "svc-" + std::to_string(ctx->seq);
  ctx->label = ctx->job.label;
  submitted_[static_cast<int>(cls)].add();
  NLH_TRACE_INSTANT("svc/submit", ctx->seq);

  // Police before queueing: a shed here never cost a queue slot. admit and
  // delay both commit the tenant's in-flight count (released on any
  // terminal outcome).
  const auto dec = quota_.police(ctx->tenant, ctx->submitted_s);
  if (dec.action == policing_decision::shed) {
    fail_shed(ctx, "quota",
              "tenant '" + ctx->tenant + "' is at its max_in_flight cap",
              /*release_quota=*/false);
    return fut;
  }

  sched_item item;
  item.cls = cls;
  item.seq = ctx->seq;
  item.enqueued_s = ctx->submitted_s;
  item.ready_at_s =
      dec.action == policing_decision::delay ? dec.ready_at : 0.0;
  item.run = [this, ctx] { execute(ctx); };
  item.shed = [this, ctx](const std::string& reason) {
    fail_shed(ctx, reason,
              reason == "expired"
                  ? "class deadline passed before a slot freed"
                  : "service drained before execution",
              /*release_quota=*/true);
  };
  switch (sched_.enqueue(std::move(item))) {
    case class_scheduler::enqueue_result::queued:
      break;
    case class_scheduler::enqueue_result::queue_full:
      fail_shed(ctx, "queue_full",
                "class '" + std::string(to_string(cls)) +
                    "' queue at its cap of " +
                    std::to_string(opt_.qos.policy(cls).queue_cap),
                /*release_quota=*/true);
      break;
    case class_scheduler::enqueue_result::draining:
      fail_shed(ctx, "draining", "service is draining; admission stopped",
                /*release_quota=*/true);
      break;
  }
  return fut;
}

void service_loop::execute(const std::shared_ptr<job_ctx>& ctx) {
  svc_result res;
  res.label = ctx->label;
  res.tenant = ctx->tenant;
  res.cls = ctx->cls;
  const int c = static_cast<int>(ctx->cls);
  {
    NLH_TRACE_SPAN_ARG("svc/job", ctx->seq);
    const double start = now_s();
    res.queue_wait_seconds = start - ctx->submitted_s;
    queue_wait_hist_[c].record(res.queue_wait_seconds);
    try {
      api::session s(ctx->job.options);
      auto& h = s.solver();
      // Client-centric step latency: each step is measured from the
      // previous result the client saw — the first from submission — so
      // queueing delay shows up in the distribution (docs/service.md).
      double last = ctx->submitted_s;
      h.set_observer([this, c, &last](const api::step_event&) {
        const double t = now_s();
        step_latency_hist_[c].record(t - last);
        last = t;
      });
      const int steps =
          ctx->job.num_steps > 0 ? ctx->job.num_steps : ctx->job.options.num_steps;
      h.run(steps);
      h.set_observer({});
      res.metrics = h.metrics();
      res.ok = true;
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown exception";
    }
    quota_.release(ctx->tenant);
    if (res.ok)
      completed_[c].add();
    else
      failed_[c].add();
    note_terminal();
  }
  // Fulfill outside the span: continuations run inline here and may call
  // back into the service.
  ctx->done.set_value(std::move(res));
}

void service_loop::fail_shed(const std::shared_ptr<job_ctx>& ctx,
                             const std::string& reason,
                             const std::string& detail, bool release_quota) {
  if (release_quota) quota_.release(ctx->tenant);
  shed_[static_cast<int>(ctx->cls)].add();
  NLH_TRACE_INSTANT("svc/shed", ctx->seq);
  note_terminal();
  svc_result res;
  res.label = ctx->label;
  res.tenant = ctx->tenant;
  res.cls = ctx->cls;
  res.shed = true;
  res.error = "shed (" + reason + "): " + detail;
  ctx->done.set_value(std::move(res));
}

void service_loop::note_terminal() {
  std::lock_guard<std::mutex> lk(mu_);
  last_done_s_ = now_s();
}

void service_loop::wait_idle() {
  for (;;) {
    sched_.pump();
    bool idle = sched_.running() == 0;
    for (int c = 0; c < qos_class_count && idle; ++c)
      idle = sched_.queue_depth(static_cast<qos_class>(c)) == 0;
    if (idle) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

class_scheduler::drain_report service_loop::drain(double timeout_s) {
  return sched_.drain(timeout_s);
}

service_stats service_loop::stats() const {
  service_stats st;
  std::uint64_t total_completed = 0;
  for (int c = 0; c < qos_class_count; ++c) {
    auto& cs = st.per_class[static_cast<std::size_t>(c)];
    cs.submitted = submitted_[c].value();
    cs.completed = completed_[c].value();
    cs.failed = failed_[c].value();
    cs.shed = shed_[c].value();
    cs.queue_wait = queue_wait_hist_[c].summary();
    cs.step_latency = step_latency_hist_[c].summary();
    total_completed += cs.completed;
  }
  st.quota_delayed = quota_.delayed();
  st.quota_shed = quota_.shed();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (clock_started_) {
      // A busy service reads "so far"; an idle one reads the settled span.
      bool busy = sched_.running() > 0;
      for (int c = 0; c < qos_class_count && !busy; ++c)
        busy = sched_.queue_depth(static_cast<qos_class>(c)) > 0;
      const double end =
          busy ? now_s() : std::max(last_done_s_, first_submit_s_);
      st.wall_seconds = end - first_submit_s_;
    }
  }
  if (st.wall_seconds > 0.0)
    st.jobs_per_second =
        static_cast<double>(total_completed) / st.wall_seconds;
  return st;
}

obs::metrics_snapshot service_loop::metrics_snapshot() const {
  const auto st = stats();
  obs::metrics_snapshot snap;
  for (int c = 0; c < qos_class_count; ++c) {
    const auto& cs = st.per_class[static_cast<std::size_t>(c)];
    const std::string base =
        std::string("svc/") + to_string(static_cast<qos_class>(c)) + "/";
    snap.add_counter(base + "submitted", cs.submitted);
    snap.add_counter(base + "completed", cs.completed);
    snap.add_counter(base + "failed", cs.failed);
    snap.add_counter(base + "shed", cs.shed);
    snap.add_histogram(base + "queue_wait_seconds", cs.queue_wait);
    snap.add_histogram(base + "step_latency_seconds", cs.step_latency);
  }
  snap.add_gauge("svc/wall_seconds", st.wall_seconds);
  snap.add_gauge("svc/jobs_per_second", st.jobs_per_second);
  quota_.metrics_into(snap);
  sched_.metrics_into(snap);
  // Live AGAS counter paths (pool busy times) ride along so one exported
  // file carries the whole process view.
  obs::bridge_counter_registry(snap);
  return snap;
}

void service_loop::dump_metrics(const std::string& path) const {
  obs::write_metrics_json(path, metrics_snapshot());
}

}  // namespace nlh::svc

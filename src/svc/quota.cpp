///
/// \file quota.cpp
/// \brief quota_ledger: token-bucket refill, three-way policing, in-flight
/// accounting and the svc/quota/* metrics view.
///

#include "svc/quota.hpp"

#include <algorithm>

namespace nlh::svc {

const char* to_string(policing_decision d) {
  switch (d) {
    case policing_decision::admit:
      return "admit";
    case policing_decision::delay:
      return "delay";
    case policing_decision::shed:
      return "shed";
  }
  return "unknown";
}

std::vector<std::string> tenant_quota::validate() const {
  std::vector<std::string> errs;
  if (!(rate_per_second > 0.0))
    errs.push_back("tenant_quota.rate_per_second: must be > 0 (got " +
                   std::to_string(rate_per_second) + ")");
  if (!(burst >= 1.0))
    errs.push_back("tenant_quota.burst: must be >= 1 (one whole token; got " +
                   std::to_string(burst) + ")");
  if (max_in_flight < 1)
    errs.push_back("tenant_quota.max_in_flight: must be >= 1 (got " +
                   std::to_string(max_in_flight) + ")");
  return errs;
}

quota_ledger::quota_ledger(tenant_quota defaults) : defaults_(defaults) {}

void quota_ledger::set_quota(const std::string& tenant, tenant_quota q) {
  std::lock_guard<std::mutex> lk(mu_);
  bucket_locked(tenant).q = q;
}

quota_ledger::bucket& quota_ledger::bucket_locked(const std::string& tenant) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end())
    it = buckets_.emplace(tenant, bucket{defaults_, 0.0, 0.0, 0, false}).first;
  return it->second;
}

quota_ledger::decision quota_ledger::police(const std::string& tenant,
                                            double now_s) {
  std::lock_guard<std::mutex> lk(mu_);
  bucket& b = bucket_locked(tenant);
  if (!b.initialized) {
    // A fresh tenant starts with a full bucket: its first burst up to
    // `burst` jobs is admitted without delay.
    b.tokens = b.q.burst;
    b.last_refill = now_s;
    b.initialized = true;
  }
  // Refill up to capacity; never clamp a negative balance upward past what
  // the elapsed time earned — outstanding reservations must stay paid for.
  b.tokens = std::min(b.q.burst,
                      b.tokens + (now_s - b.last_refill) * b.q.rate_per_second);
  b.last_refill = now_s;

  if (b.in_flight >= b.q.max_in_flight) {
    shed_.add();
    return {policing_decision::shed, 0.0};
  }
  ++b.in_flight;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    admitted_.add();
    return {policing_decision::admit, 0.0};
  }
  // Reserve the next future token: the deficit below one whole token,
  // earned back at rate_per_second. Successive delayed jobs drive tokens
  // further negative, so their ready_at times are spaced 1/rate apart —
  // the open-loop burst is smoothed, not reordered.
  const double wait = (1.0 - b.tokens) / b.q.rate_per_second;
  b.tokens -= 1.0;
  delayed_.add();
  delay_hist_.record(wait);
  return {policing_decision::delay, now_s + wait};
}

void quota_ledger::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.in_flight > 0)
    --it->second.in_flight;
}

int quota_ledger::in_flight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? 0 : it->second.in_flight;
}

std::size_t quota_ledger::tenant_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return buckets_.size();
}

void quota_ledger::metrics_into(obs::metrics_snapshot& snap) const {
  snap.add_counter("svc/quota/admitted", admitted_.value());
  snap.add_counter("svc/quota/delayed", delayed_.value());
  snap.add_counter("svc/quota/shed", shed_.value());
  snap.add_gauge("svc/quota/tenants", static_cast<double>(tenant_count()));
  snap.add_histogram("svc/quota/delay_seconds", delay_hist_.summary());
}

}  // namespace nlh::svc

#pragma once
///
/// \file service.hpp
/// \brief `service_loop`: the long-running QoS-classed service front door
/// over `api::session` (docs/service.md).
///
/// `submit(tenant, class, job)` polices the tenant's quota
/// (admit / delay / shed — svc/quota.hpp), enqueues admitted work into the
/// class's bounded queue and returns an `amt::future<svc_result>`
/// immediately. A `class_scheduler` maps queued work onto the shared
/// `amt::thread_pool` by deficit round-robin over the class weights, sheds
/// expired interactive work, and a built-in ticker thread keeps
/// quota-delayed jobs and deadlines firing even when no submissions or
/// completions arrive. Every terminal outcome resolves the future: `ok`,
/// a captured per-job error, or a fast-failed shed with a distinct
/// `"shed (<reason>)"` error (reasons: quota, queue_full, expired,
/// drained, draining).
///
/// Latency accounting is client-centric: the per-class step-latency
/// histogram measures each step from the *previous result the client saw*
/// — the first step from submission — so queueing delay lands in the
/// distribution exactly where a polling client would feel it. That is the
/// metric the `BENCH_service.json` gate compares QoS vs the no-QoS
/// baseline on (bench/ablation_service.cpp).
///
/// Observability: `svc/<class>/...` submitted/completed/failed/shed
/// counters and queue-wait + step-latency histograms, `svc/quota/*` and
/// `svc/sched/*` views, jobs/sec — all through `metrics_snapshot()`;
/// lifecycle `NLH_TRACE_*` spans/instants ride the process tracer.
///

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amt/future.hpp"
#include "amt/thread_pool.hpp"
#include "api/session.hpp"
#include "obs/metrics.hpp"
#include "svc/qos.hpp"
#include "svc/quota.hpp"
#include "svc/scheduler.hpp"

namespace nlh::svc {

/// One unit of service work: a full session description plus a step
/// budget (the same shape as api::batch_job, minus batch-only metadata).
struct svc_job {
  api::session_options options;
  int num_steps = 0;  ///< steps to advance; 0 = options.num_steps
  std::string label;  ///< echoed into the result; empty = "svc-<sequence>"
};

/// Terminal outcome of one submission.
struct svc_result {
  std::string label;
  std::string tenant;
  qos_class cls = qos_class::batch;
  bool ok = false;
  /// True when the job never ran: the error starts with "shed (<reason>)".
  bool shed = false;
  std::string error;
  /// Admission -> execution-start wait (seconds); 0 for shed jobs.
  double queue_wait_seconds = 0.0;
  api::runtime_metrics metrics;  ///< meaningful only when ok
};

struct service_options {
  qos_config qos;
  /// Policing defaults for tenants without an explicit entry below.
  tenant_quota default_quota;
  std::map<std::string, tenant_quota> tenant_quotas;
  /// Workers of the shared pool; each running job occupies one for its
  /// whole duration.
  unsigned pool_threads = 4;
  /// Execution slots; 0 = pool_threads. Must not exceed pool_threads.
  int max_concurrent = 0;
  /// Ticker cadence for time-driven work (quota ready_at, deadlines).
  /// 0 disables the ticker — then tests must drive scheduler().pump().
  double tick_seconds = 0.001;
};

/// Validate `opt`, one actionable message per offence; empty = valid.
std::vector<std::string> validate(const service_options& opt);

/// Per-class slice of service_stats.
struct class_stats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished OK
  std::uint64_t failed = 0;     ///< ran but threw
  std::uint64_t shed = 0;       ///< never ran (all shed reasons)
  obs::histogram_summary queue_wait;
  obs::histogram_summary step_latency;
};

struct service_stats {
  std::array<class_stats, qos_class_count> per_class;
  std::uint64_t quota_delayed = 0;
  std::uint64_t quota_shed = 0;
  double wall_seconds = 0.0;      ///< first submit -> last completion (so far)
  double jobs_per_second = 0.0;   ///< completed (all classes) / wall
  const class_stats& of(qos_class c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

class service_loop {
 public:
  /// Throws std::invalid_argument when validate(opt) reports problems.
  explicit service_loop(service_options opt = {});
  /// Finishes every accepted job (drained queues stay shed), then joins
  /// the ticker and pool.
  ~service_loop();

  service_loop(const service_loop&) = delete;
  service_loop& operator=(const service_loop&) = delete;

  /// Police, enqueue, return the result future immediately. Job-level
  /// problems (invalid options, stepping errors, sheds) resolve into
  /// svc_result, never throw here.
  amt::future<svc_result> submit(std::string tenant, qos_class cls,
                                 svc_job job);

  /// Block until every accepted job has reached a terminal state.
  void wait_idle();

  /// Graceful shutdown: stop admission, finish in-flight jobs (bounded by
  /// `timeout_s`), shed everything still queued with reason "drained".
  class_scheduler::drain_report drain(double timeout_s);

  /// Seconds on the service clock (steady, 0 at construction) — the time
  /// base of every svc histogram and quota decision.
  double now_s() const;

  service_stats stats() const;

  /// The full `svc/*` view (per-class counters + histograms, quota,
  /// scheduler, jobs/sec) with the process AGAS counter paths bridged in.
  obs::metrics_snapshot metrics_snapshot() const;
  /// Write metrics_snapshot() as JSON to `path` (obs/metrics_export.hpp).
  void dump_metrics(const std::string& path) const;

  const service_options& options() const { return opt_; }
  amt::thread_pool& pool() { return pool_; }
  quota_ledger& quota() { return quota_; }
  class_scheduler& scheduler() { return sched_; }

 private:
  /// Shared between the run and shed closures of one submission (exactly
  /// one of them fires).
  struct job_ctx {
    amt::promise<svc_result> done;
    std::string tenant;
    std::string label;
    qos_class cls = qos_class::batch;
    std::uint64_t seq = 0;
    double submitted_s = 0.0;
    svc_job job;
  };

  /// Pool-worker body: build the session, run the steps, record per-class
  /// latency, resolve the promise.
  void execute(const std::shared_ptr<job_ctx>& ctx);
  /// Fail-fast terminal path; `release_quota` is false only for the
  /// policing shed (in-flight was never taken).
  void fail_shed(const std::shared_ptr<job_ctx>& ctx, const std::string& reason,
                 const std::string& detail, bool release_quota);
  /// Stamp the wall clock's "last completion" edge.
  void note_terminal();

  service_options opt_;
  std::chrono::steady_clock::time_point epoch_;
  quota_ledger quota_;

  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  bool clock_started_ = false;
  double first_submit_s_ = 0.0;
  double last_done_s_ = 0.0;
  std::array<obs::counter, qos_class_count> submitted_;
  std::array<obs::counter, qos_class_count> completed_;
  std::array<obs::counter, qos_class_count> failed_;
  std::array<obs::counter, qos_class_count> shed_;
  std::array<obs::histogram, qos_class_count> queue_wait_hist_;
  std::array<obs::histogram, qos_class_count> step_latency_hist_;

  /// Ticker: pumps the scheduler every tick_seconds so ready_at times and
  /// deadlines fire without traffic. Joined in ~service_loop before any
  /// member dies.
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  bool tick_stop_ = false;
  std::thread ticker_;

  /// sched_ before pool_ on purpose: pool tasks call back into sched_, so
  /// the pool must be destroyed (workers joined) first — i.e. declared
  /// last. The scheduler's constructor only *stores* the pool reference,
  /// so binding it to the not-yet-constructed pool_ below is safe.
  class_scheduler sched_;
  amt::thread_pool pool_;  ///< last member: joins before the state above dies
};

}  // namespace nlh::svc

///
/// \file qos.cpp
/// \brief qos_class names and qos_config validation.
///

#include "svc/qos.hpp"

namespace nlh::svc {

const char* to_string(qos_class c) {
  switch (c) {
    case qos_class::interactive:
      return "interactive";
    case qos_class::batch:
      return "batch";
    case qos_class::soak:
      return "soak";
  }
  return "unknown";
}

std::optional<qos_class> parse_qos_class(const std::string& name) {
  if (name == "interactive") return qos_class::interactive;
  if (name == "batch") return qos_class::batch;
  if (name == "soak") return qos_class::soak;
  return std::nullopt;
}

const class_policy& qos_config::policy(qos_class c) const {
  switch (c) {
    case qos_class::interactive:
      return interactive;
    case qos_class::batch:
      return batch;
    case qos_class::soak:
      return soak;
  }
  return interactive;  // unreachable for valid enumerators
}

class_policy& qos_config::policy(qos_class c) {
  return const_cast<class_policy&>(
      static_cast<const qos_config&>(*this).policy(c));
}

std::vector<std::string> qos_config::validate() const {
  std::vector<std::string> errs;
  for (int i = 0; i < qos_class_count; ++i) {
    const auto c = static_cast<qos_class>(i);
    const auto& p = policy(c);
    const std::string where = std::string("qos_config.") + to_string(c);
    if (p.weight < 1)
      errs.push_back(where + ".weight: must be >= 1 (got " +
                     std::to_string(p.weight) +
                     "); weight 0 would starve the class forever");
    if (p.queue_cap < 1)
      errs.push_back(where + ".queue_cap: must be >= 1 (got " +
                     std::to_string(p.queue_cap) + ")");
    if (p.deadline_seconds < 0.0)
      errs.push_back(where +
                     ".deadline_seconds: must be >= 0 (0 disables expiry; got " +
                     std::to_string(p.deadline_seconds) + ")");
  }
  return errs;
}

}  // namespace nlh::svc

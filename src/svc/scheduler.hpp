#pragma once
///
/// \file scheduler.hpp
/// \brief Weighted-deficit scheduling of QoS-classed work onto the shared
/// `amt::thread_pool` (docs/service.md).
///
/// One bounded FIFO queue per `qos_class`; at most
/// `scheduler_options::max_concurrent` items execute simultaneously, each
/// occupying one pool worker for its duration (the same slot model as
/// `api::batch_runner`). Slot assignment is deficit round-robin: every
/// class carries a credit balance capped at its weight; a dispatch costs
/// one credit, and when no backlogged class has credit left a new round
/// tops every class back up to its weight — so under saturation class
/// service rates converge to the weight ratio (8:3:1 by default) while
/// any single backlogged class gets the whole pool when the others are
/// idle (work conserving).
///
/// Backpressure and load shedding are explicit, never implicit latency:
///   - a class queue at its `queue_cap` refuses the enqueue (the caller
///     fails the job fast),
///   - queued items whose class `deadline_seconds` has passed are shed at
///     dispatch time (their `shed` callback fires with reason "expired"),
///   - `drain()` stops dispatching, lets in-flight items finish (bounded
///     by a timeout) and sheds everything still queued ("drained").
///
/// Items delayed by quota policing carry a `ready_at_s`; they keep their
/// queue position but are skipped until the service clock reaches it.
/// Callbacks (`run`, `shed`) are always invoked outside the scheduler
/// lock, so they may re-enter `enqueue` (promise continuations do).
///

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "amt/thread_pool.hpp"
#include "amt/unique_function.hpp"
#include "obs/metrics.hpp"
#include "svc/qos.hpp"

namespace nlh::svc {

/// One schedulable unit. Exactly one of `run` / `shed` ever fires.
struct sched_item {
  qos_class cls = qos_class::batch;
  std::uint64_t seq = 0;     ///< submission order (FIFO baseline tiebreak)
  double enqueued_s = 0.0;   ///< service-clock enqueue time (deadline origin)
  double ready_at_s = 0.0;   ///< quota-imposed earliest start (0 = now)
  /// Executes the job on a pool worker; must not throw (the service wraps
  /// job failures into its result future before handing `run` over).
  amt::unique_function<void()> run;
  /// Fail-fast path ("expired" / "drained"); runs on the caller of
  /// pump()/drain(), never concurrently with `run`.
  amt::unique_function<void(const std::string&)> shed;
};

struct scheduler_options {
  qos_config qos;
  /// Execution slots: items running simultaneously (each holds one pool
  /// worker). Keep <= the pool's worker count.
  int max_concurrent = 2;
};

/// Thread-safe; owns the queues and slot accounting, borrows the pool.
class class_scheduler {
 public:
  /// `clock` returns seconds on the service clock (monotonic; injectable
  /// for deterministic tests).
  class_scheduler(scheduler_options opt, amt::thread_pool& pool,
                  std::function<double()> clock);

  enum class enqueue_result {
    queued,      ///< accepted; will run or be shed by deadline/drain
    queue_full,  ///< class queue at queue_cap — caller sheds the job
    draining,    ///< drain() started — caller sheds the job
  };

  /// Hand one item over; on `queued` the scheduler now owns the callbacks
  /// and fires exactly one of them eventually. On the other outcomes the
  /// caller keeps ownership (nothing was consumed).
  enqueue_result enqueue(sched_item item);

  /// Dispatch every eligible item into free slots and shed expired queued
  /// work. Called internally on enqueue and completion; the service's
  /// ticker also calls it periodically so quota `ready_at` times and
  /// deadlines fire without traffic.
  void pump();

  /// Block until every queue is empty and no item is running.
  void wait_idle();

  struct drain_report {
    int abandoned = 0;      ///< queued items shed with reason "drained"
    int in_flight = 0;      ///< items that were running when drain began
    int still_running = 0;  ///< of those, still running when the timeout hit
    bool clean() const { return still_running == 0; }
  };

  /// Stop dispatching (enqueue starts refusing with `draining`), wait up
  /// to `timeout_s` for in-flight items, then shed everything still
  /// queued. Idempotent; the scheduler stays drained afterwards.
  drain_report drain(double timeout_s);

  bool draining() const;

  int queue_depth(qos_class c) const;
  int running() const;
  std::uint64_t served(qos_class c) const;
  std::uint64_t shed_expired() const;
  std::uint64_t shed_drained() const;
  /// Credit top-up rounds so far (the deficit scheduler's progress pulse).
  std::uint64_t rounds() const;

  /// Append the `svc/sched/*` view (per-class depth gauges and served
  /// counters, shed counters, rounds).
  void metrics_into(obs::metrics_snapshot& snap) const;

 private:
  /// Shed callbacks must run outside mu_ (they resolve user promises whose
  /// continuations may re-enter enqueue); pump_locked collects them here.
  struct pending_shed {
    amt::unique_function<void(const std::string&)> shed;
    std::string reason;
  };

  /// Caller holds mu_. Fills `sheds` with expired items and posts ready
  /// items into free slots.
  void pump_locked(std::vector<pending_shed>& sheds);
  /// Caller holds mu_: first queued item of `c` with ready_at <= now, or
  /// queue end.
  std::deque<sched_item>::iterator first_ready_locked(qos_class c, double now);
  void run_sheds(std::vector<pending_shed>& sheds);
  /// Pool-task epilogue: free the slot, re-pump, wake waiters.
  void on_item_done();

  scheduler_options opt_;
  amt::thread_pool& pool_;
  std::function<double()> clock_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::array<std::deque<sched_item>, qos_class_count> queues_;
  std::array<int, qos_class_count> credits_{};  ///< deficit balances
  int running_ = 0;
  bool draining_ = false;
  std::array<std::uint64_t, qos_class_count> served_{};
  std::uint64_t rounds_ = 0;
  obs::counter shed_expired_;
  obs::counter shed_drained_;
};

}  // namespace nlh::svc
